package texcache_test

import (
	"fmt"

	"texcache"
)

// Example renders one frame of the Goblet benchmark, replays its texel
// address trace through the paper's 32KB 2-way cache, and derives the
// memory bandwidth at 50M textured fragments per second.
func Example() {
	scene, err := texcache.SceneByNameChecked("goblet", 8) // 1/8 resolution
	if err != nil {
		panic(err)
	}
	trace, _, err := scene.Trace(
		texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		scene.DefaultTraversal())
	if err != nil {
		panic(err)
	}

	c, err := texcache.NewClassifyingCache(texcache.CacheConfig{
		SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
	if err != nil {
		panic(err)
	}
	trace.Replay(c.Sink())

	s := c.Stats()
	model := texcache.DefaultPerfModel()
	fmt.Printf("accesses: %d\n", s.Accesses)
	fmt.Printf("all misses cold: %v\n", s.Misses == s.Cold)
	fmt.Printf("uncached bandwidth: %.1f GB/s\n",
		model.UncachedBandwidthBytesPerSecond()/1e9)
	// Output:
	// accesses: 29692
	// all misses cold: true
	// uncached bandwidth: 1.6 GB/s
}

// ExampleStackDist shows the one-pass working-set profiler: one replay
// yields the fully-associative miss rate at every cache size.
func ExampleStackDist() {
	sd := texcache.NewStackDist(32)
	// A cyclic sweep over 2KB of addresses.
	for i := 0; i < 10000; i++ {
		sd.Access(uint64(i*4) % 2048)
	}
	// Each 32B line is touched by 8 consecutive 4B accesses (7 hits),
	// then revisited a full 64-line sweep later: a 1KB cache (32 lines)
	// misses once per line visit, a 2KB cache (64 lines) holds the whole
	// sweep and only cold-misses.
	fmt.Printf("1KB cache misses: %d\n", sd.MissesAt(1<<10/32))
	fmt.Printf("2KB cache misses: %d (cold only: %v)\n",
		sd.MissesAt(2<<10/32), sd.MissesAt(2<<10/32) == sd.ColdMisses())
	// Output:
	// 1KB cache misses: 1250
	// 2KB cache misses: 64 (cold only: true)
}
