package texcache_test

// Golden-output tests: every registered experiment runs at Scale 4 and
// its text output is compared byte-for-byte against a committed fixture.
// The fixtures pin the exact output of the text rendering path, so the
// Reporter abstraction and future refactors cannot silently change what
// the paper-reproduction tables look like.
//
// Regenerate with:
//
//	go test -run TestGoldenExperimentOutputs -update .

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"texcache"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment fixtures")

// goldenScale matches claims_test.go: scale 4 keeps every qualitative
// shape of the paper with margin while staying tractable under -race.
const goldenScale = 4

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

func TestGoldenExperimentOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-4 sweep of every experiment; skipped in short mode")
	}
	if raceEnabled {
		t.Skip("run without -race (make test's golden leg); byte-identity gains nothing from the race detector")
	}
	// One engine batch shares every (scene, layout, traversal) render
	// across the experiments, which is far cheaper than 25 serial runs.
	results, err := texcache.Run(context.Background(),
		texcache.ExperimentRequest{Scale: goldenScale})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		got[r.ID] = r.Output
	}

	ids := texcache.ExperimentIDs()
	if len(got) != len(ids) {
		t.Fatalf("engine returned %d results, want %d", len(got), len(ids))
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		out := got[id]
		path := goldenPath(id)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing fixture (run with -update): %v", id, err)
		}
		if out != string(want) {
			t.Errorf("%s: output differs from %s (regenerate with -update if the change is intended)\ngot:\n%s",
				id, path, out)
		}
	}
}
