package texcache_test

// End-to-end acceptance for the content-addressed result cache: warm
// repeats of an experiment request must be byte-identical to the fresh
// stream (pinned against a committed fixture) and at least 10x faster
// than a trace-warm replay, because a result hit writes stored bytes
// instead of re-simulating.
//
// Regenerate the fixture with:
//
//	go test -run TestResultCacheStreamGolden -update .

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"texcache"
)

// resultBenchReq is the request the result-cache gate and benchmarks
// replay: the same render-dominated batch as the trace-store gate.
func resultBenchReq(scale int) texcache.ExperimentRequest {
	return texcache.ExperimentRequest{
		Experiments: storeBenchIDs, Scale: scale, Scenes: []string{"goblet"},
	}
}

// runNDJSON executes req through the streaming facade and returns the
// exact bytes a texsim -json run (and a texserve response body) carries.
func runNDJSON(tb testing.TB, req texcache.ExperimentRequest, opts ...texcache.ExperimentOption) []byte {
	tb.Helper()
	var buf bytes.Buffer
	err := texcache.RunNDJSON(context.Background(), req, &buf, func(r texcache.ExperimentResult) {
		if r.Err != nil {
			tb.Fatalf("%s: %v", r.ID, r.Err)
		}
	}, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestResultCacheNDJSONIdentical pins byte-identity across every tier:
// the same request produces the same NDJSON bytes with no cache, from a
// cold cache, from a warm memory hit, and from a fresh process reading
// the persistent tier.
func TestResultCacheNDJSONIdentical(t *testing.T) {
	req := texcache.ExperimentRequest{
		Experiments: []string{"fig5.4"}, Scale: 8, Scenes: []string{"goblet"},
	}
	want := runNDJSON(t, req)

	dir := t.TempDir()
	rc := texcache.NewResultCache()
	if err := rc.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	if cold := runNDJSON(t, req, texcache.WithResultCache(rc)); !bytes.Equal(cold, want) {
		t.Error("cold result-cache stream differs from uncached stream")
	}
	if warm := runNDJSON(t, req, texcache.WithResultCache(rc)); !bytes.Equal(warm, want) {
		t.Error("warm result-cache stream differs from uncached stream")
	}
	if rc.Produced() != 1 || rc.Hits() != 1 {
		t.Errorf("Produced %d Hits %d, want 1/1", rc.Produced(), rc.Hits())
	}
	// A fresh cache on the same directory restores the stream from disk.
	if stored := runNDJSON(t, req, texcache.WithResultDir(dir)); !bytes.Equal(stored, want) {
		t.Error("persisted result stream differs from uncached stream")
	}

	// Execution-only knobs do not fork the key: a request differing only
	// in workers and tenant is served the same cached bytes.
	alias := req
	alias.Workers = 3
	alias.Tenant = "someone-else"
	if got := runNDJSON(t, alias, texcache.WithResultCache(rc)); !bytes.Equal(got, want) {
		t.Error("worker/tenant change forked the cached stream")
	}
	if rc.Produced() != 1 {
		t.Errorf("alias request re-simulated: Produced = %d", rc.Produced())
	}
}

// TestResultCacheStreamGolden pins the exact cached NDJSON bytes
// against a committed fixture, so neither the serializer nor the cache
// tiers can drift silently. ResultFormatVersion must be bumped whenever
// this fixture legitimately changes.
func TestResultCacheStreamGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-identity gains nothing from the race detector")
	}
	req := texcache.ExperimentRequest{
		Experiments: []string{"fig5.4"}, Scale: goldenScale, Scenes: []string{"goblet"},
	}
	rc := texcache.NewResultCache()
	cold := runNDJSON(t, req, texcache.WithResultCache(rc))
	warm := runNDJSON(t, req, texcache.WithResultCache(rc))
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm stream differs from cold before the fixture comparison")
	}

	path := filepath.Join("testdata", "golden", "result-stream.ndjson")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, warm, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(warm, want) {
		t.Errorf("cached NDJSON stream differs from %s (regenerate with -update and bump ResultFormatVersion if intended)", path)
	}
}

// TestResultCacheWarmSpeedup is a bench-check gate (`make bench-check`):
// a request served from a warm result cache must run at least 10x
// faster than the same request replayed from a warm trace store,
// because a result hit writes stored bytes instead of simulating. The
// margin is structural — replay walks millions of addresses, a hit is
// one buffer copy — so the gate holds on a single core.
func TestResultCacheWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	const scale = 4
	req := resultBenchReq(scale)

	// Populate both tiers untimed: traces for the baseline, results for
	// the cache under test.
	traceDir := t.TempDir()
	runNDJSON(t, req, texcache.WithTraceDir(traceDir))
	rc := texcache.NewResultCache()
	runNDJSON(t, req, texcache.WithResultCache(rc), texcache.WithTraceDir(traceDir))

	best := func(run func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	traceWarm := best(func() { runNDJSON(t, req, texcache.WithTraceDir(traceDir)) })
	resultWarm := best(func() { runNDJSON(t, req, texcache.WithResultCache(rc), texcache.WithTraceDir(traceDir)) })

	speedup := float64(traceWarm) / float64(resultWarm)
	t.Logf("trace-warm %v, result-warm %v: %.1fx", traceWarm, resultWarm, speedup)
	if speedup < 10 {
		t.Errorf("warm result-cache speedup %.1fx, want >= 10x (trace-warm %v, result-warm %v)",
			speedup, traceWarm, resultWarm)
	}
}
