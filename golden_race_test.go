//go:build race

package texcache_test

// raceEnabled reports whether this test binary was built with -race.
// The golden sweep runs every experiment and is ~10x slower under the
// race detector; byte-identity is a determinism property the race
// detector cannot strengthen, so the golden test defers to the
// dedicated non-race leg (see the Makefile test target).
const raceEnabled = true
