package texcache_test

// Trace determinism: the tile-parallel renderer must produce the exact
// serial texel address stream at every worker count. The fixture
// testdata/golden/trace_sha256.txt pins SHA-256 hashes of the serial
// renderer's traces — all four scenes at scale 1 in their default
// rasterization order, and every scene x traversal combination at
// scale 4 — and this test re-renders each row at several worker counts
// (including the serial path) and requires byte-identical streams.
// It runs under -race as well: the race leg is what proves the worker
// pool's tile ownership is sound.
//
// The fixture was generated from the serial renderer and is not meant
// to be regenerated casually: a hash change means the simulated address
// stream — the substrate of every experiment — changed.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"texcache"
)

// traceHash hashes the address stream as little-endian uint64s.
func traceHash(addrs []uint64) string {
	h := sha256.New()
	var b [8]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint64(b[:], a)
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fbHash hashes the rendered image: every color channel in pixel order,
// then every depth value's bit pattern. Two renders hash equal only if
// the framebuffer and z-buffer are bit-identical.
func fbHash(r *texcache.Renderer) string {
	h := sha256.New()
	for _, c := range r.FB.Color {
		h.Write([]byte{c.R, c.G, c.B, c.A})
	}
	var b [4]byte
	for _, d := range r.FB.Depth {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(d))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fbGoldenPath is the framebuffer-hash fixture, keyed like the trace
// fixture (scene, scale, order). It pins the serial renderer's image so
// the worker sweep below proves the tile pass reproduces pixels and
// depth exactly, not just the address stream.
var fbGoldenPath = filepath.Join("testdata", "golden", "fb_sha256.txt")

func readGoldenFBHashes(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(fbGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var scene, order, hash string
		var scale int
		if _, err := fmt.Sscanf(sc.Text(), "%s %d %s %s", &scene, &scale, &order, &hash); err != nil {
			t.Fatalf("bad fixture line %q: %v", sc.Text(), err)
		}
		out[fmt.Sprintf("%s/%d/%s", scene, scale, order)] = hash
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty framebuffer hash fixture")
	}
	return out
}

// updateGoldenFBHashes regenerates the framebuffer fixture from serial
// renders of every trace-fixture row.
func updateGoldenFBHashes(t *testing.T, rows []goldenTraceRow) {
	t.Helper()
	layout := texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8}
	var buf []byte
	for _, row := range rows {
		scene, err := texcache.SceneByNameChecked(row.scene, row.scale)
		if err != nil {
			t.Fatal(err)
		}
		_, r, err := scene.Trace(layout, goldenTraversal(t, row.order))
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, fmt.Sprintf("%s %d %s %s\n", row.scene, row.scale, row.order, fbHash(r))...)
	}
	if err := os.WriteFile(fbGoldenPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// goldenTraceRow is one line of trace_sha256.txt.
type goldenTraceRow struct {
	scene string
	scale int
	order string
	addrs int
	hash  string
}

func readGoldenTraceRows(t *testing.T) []goldenTraceRow {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "golden", "trace_sha256.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var rows []goldenTraceRow
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r goldenTraceRow
		if _, err := fmt.Sscanf(sc.Text(), "%s %d %s %d %s",
			&r.scene, &r.scale, &r.order, &r.addrs, &r.hash); err != nil {
			t.Fatalf("bad fixture line %q: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty trace hash fixture")
	}
	return rows
}

// goldenTraversal maps a fixture order name to its traversal.
func goldenTraversal(t *testing.T, name string) texcache.Traversal {
	switch name {
	case "horizontal":
		return texcache.Traversal{Order: texcache.Horizontal}
	case "vertical":
		return texcache.Traversal{Order: texcache.Vertical}
	case "hilbert":
		return texcache.Traversal{Order: texcache.Hilbert}
	case "tiled8":
		return texcache.Traversal{Order: texcache.Horizontal, TileW: 8, TileH: 8}
	}
	t.Fatalf("unknown traversal %q in fixture", name)
	return texcache.Traversal{}
}

// determinismWorkerCounts is the worker matrix: the serial reference
// path, the smallest truly parallel pool, and the machine's full width.
func determinismWorkerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// TestTraceDeterminism renders every fixture row at every worker count
// and requires the exact golden stream. Scale-1 rows are the paper's
// full-resolution frames and dominate the runtime, so they are skipped
// in -short mode; scale-4 rows (the full scene x traversal matrix)
// always run.
func TestTraceDeterminism(t *testing.T) {
	layout := texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8}
	rows := readGoldenTraceRows(t)
	if *updateGolden {
		updateGoldenFBHashes(t, rows)
	}
	fbWant := readGoldenFBHashes(t)
	for _, row := range rows {
		row := row
		t.Run(fmt.Sprintf("%s/scale%d/%s", row.scene, row.scale, row.order), func(t *testing.T) {
			if row.scale == 1 && testing.Short() {
				t.Skip("full-resolution render; skipped in short mode")
			}
			scene, err := texcache.SceneByNameChecked(row.scene, row.scale)
			if err != nil {
				t.Fatal(err)
			}
			trav := goldenTraversal(t, row.order)
			wantFB, haveFB := fbWant[fmt.Sprintf("%s/%d/%s", row.scene, row.scale, row.order)]
			if !haveFB {
				t.Fatalf("no framebuffer hash fixture row (regenerate with -update)")
			}
			for _, workers := range determinismWorkerCounts() {
				tr, r, err := scene.TraceParallel(layout, trav, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(tr.Addrs) != row.addrs {
					t.Fatalf("workers=%d: %d addresses, golden has %d",
						workers, len(tr.Addrs), row.addrs)
				}
				if got := traceHash(tr.Addrs); got != row.hash {
					t.Fatalf("workers=%d: trace hash %s, golden %s — "+
						"the parallel merge diverged from the serial stream",
						workers, got, row.hash)
				}
				if got := fbHash(r); got != wantFB {
					t.Fatalf("workers=%d: framebuffer hash %s, golden %s — "+
						"the tile pass diverged from the serial image",
						workers, got, wantFB)
				}
			}
		})
	}
}
