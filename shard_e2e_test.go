package texcache_test

// End-to-end contracts of the sharded design-space exploration: a grid
// split across n workers merges back byte-identical to the
// single-process run with every trace rendered exactly once
// machine-wide, Pareto pruning never changes the frontier, and (as a
// bench-check gate) real coordinated worker processes beat one process
// on a warm trace store.
//
// The in-process tests replicate exactly what texsim does: workers
// stream bare NDJSON rows, and whoever owns the full view — the plain
// run or the merger — tees the stream through a GridCollector and
// appends the frontier.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"texcache"
)

func shardGrid() texcache.RequestGrid {
	return texcache.RequestGrid{
		Scenes: []string{"flight", "town", "guitar"},
		Scales: []int{8},
		Configs: []texcache.RequestCacheConfig{
			{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1},
			{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2},
		},
	}
}

// runGridShard runs one worker's slice of a grid request in-process with
// its own trace cache, returning the NDJSON row stream (no frontier) and
// how many renders the worker performed.
func runGridShard(t testing.TB, grid texcache.RequestGrid, sh *texcache.RequestShard, tc *texcache.TraceCache) ([]byte, int) {
	t.Helper()
	req := texcache.ExperimentRequest{Scale: 8, Workers: 1, Grid: &grid, Shard: sh}
	results, err := texcache.Run(context.Background(), req, texcache.WithTraceProvider(tc))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := texcache.WriteResultsNDJSON(&buf, results, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tc.Renders()
}

// fullView appends the Pareto frontier to a complete grid row stream,
// the way the plain run and the coordinator both do.
func fullView(t testing.TB, rows []byte) []byte {
	t.Helper()
	col := texcache.NewGridCollector()
	if _, err := col.Write(rows); err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), rows...)
	w := bytes.NewBuffer(out)
	if err := col.WriteFrontier(w); err != nil {
		t.Fatal(err)
	}
	return w.Bytes()
}

// TestShardedGridByteIdentity is the tentpole contract: for n in {1, 2,
// NumCPU}, running the n shard slices independently and merging their
// streams reproduces the unsharded output byte for byte (frontier
// included), and the per-worker render counts sum to exactly the trace
// count — each trace rendered once machine-wide, with no shared store
// needed.
func TestShardedGridByteIdentity(t *testing.T) {
	grid := shardGrid()
	traces, err := texcache.GridTraceCount(grid, 8)
	if err != nil {
		t.Fatal(err)
	}
	if traces != 3 {
		t.Fatalf("GridTraceCount = %d, want 3", traces)
	}

	plainRows, renders := runGridShard(t, grid, nil, texcache.NewTraceCache())
	if renders != traces {
		t.Errorf("plain run renders = %d, want %d", renders, traces)
	}
	plain := fullView(t, plainRows)

	counts := map[int]bool{1: true, 2: true, runtime.NumCPU(): true}
	for n := range counts {
		if n < 1 {
			continue
		}
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			streams := make([]io.Reader, n)
			total := 0
			for i := 0; i < n; i++ {
				rows, r := runGridShard(t, grid, &texcache.RequestShard{Index: i, Count: n},
					texcache.NewTraceCache())
				streams[i] = bytes.NewReader(rows)
				total += r
			}
			if total != traces {
				t.Errorf("sum of worker renders = %d, want %d (each trace exactly once machine-wide)", total, traces)
			}
			var merged bytes.Buffer
			col := texcache.NewGridCollector()
			if err := texcache.MergeGridStreams(io.MultiWriter(&merged, col), streams, traces); err != nil {
				t.Fatal(err)
			}
			if err := col.WriteFrontier(&merged); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged.Bytes(), plain) {
				t.Errorf("merged %d-shard output differs from unsharded run:\n--- merged ---\n%s\n--- plain ---\n%s",
					n, merged.Bytes(), plain)
			}
		})
	}
}

// TestParetoPruningLossless pins the pruner's soundness end to end: a
// grid of ascending-cost LRU configurations runs exhaustively and
// pruned, the pruned run measures strictly fewer design points, and the
// two frontiers are byte-identical.
func TestParetoPruningLossless(t *testing.T) {
	grid := texcache.RequestGrid{
		Scenes: []string{"town"},
		Scales: []int{8},
		Configs: []texcache.RequestCacheConfig{
			{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, Policy: "lru"},
			{SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, Policy: "lru"},
			{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Policy: "lru"},
			{SizeBytes: 128 << 10, LineBytes: 64, Ways: 8, Policy: "lru"},
		},
	}
	tc := texcache.NewTraceCache()
	exhaustive, _ := runGridShard(t, grid, nil, tc)

	req := texcache.ExperimentRequest{Scale: 8, Workers: 1, Grid: &grid}
	results, err := texcache.Run(context.Background(), req,
		texcache.WithTraceProvider(tc), texcache.WithPruning(true))
	if err != nil {
		t.Fatal(err)
	}
	var pruned bytes.Buffer
	if err := texcache.WriteResultsNDJSON(&pruned, results, nil); err != nil {
		t.Fatal(err)
	}

	countRows := func(b []byte) int {
		return bytes.Count(b, []byte(`"type":"row","table":"grid"`))
	}
	ex, pr := countRows(exhaustive), countRows(pruned.Bytes())
	if pr >= ex {
		t.Errorf("pruned run measured %d rows, exhaustive %d; expected at least one dominated config skipped", pr, ex)
	}
	if !bytes.Contains(pruned.Bytes(), []byte("pruned u")) {
		t.Error("pruned run emitted no skip note")
	}

	frontier := func(b []byte) string {
		var lines []string
		for _, l := range strings.Split(string(b), "\n") {
			if strings.Contains(l, `"exp":"pareto"`) {
				lines = append(lines, l)
			}
		}
		return strings.Join(lines, "\n")
	}
	fx, fp := frontier(fullView(t, exhaustive)), frontier(fullView(t, pruned.Bytes()))
	if fx != fp {
		t.Errorf("pruning changed the frontier:\n--- exhaustive ---\n%s\n--- pruned ---\n%s", fx, fp)
	}
	if fx == "" {
		t.Error("empty frontier; the differential proves nothing")
	}
}

// texsimBinary builds cmd/texsim once per test binary for the
// process-level gates.
var texsimBinary struct {
	once sync.Once
	path string
	err  error
}

func buildTexsim(tb testing.TB) string {
	tb.Helper()
	texsimBinary.once.Do(func() {
		// Not tb.TempDir(): the binary must outlive whichever test built
		// it, since later tests and benchmarks share it.
		dir, err := os.MkdirTemp("", "texsim-bin-")
		if err != nil {
			texsimBinary.err = err
			return
		}
		path := filepath.Join(dir, "texsim")
		out, err := exec.Command("go", "build", "-o", path, "./cmd/texsim").CombinedOutput()
		if err != nil {
			texsimBinary.err = fmt.Errorf("go build ./cmd/texsim: %v\n%s", err, out)
			return
		}
		texsimBinary.path = path
	})
	if texsimBinary.err != nil {
		tb.Fatal(texsimBinary.err)
	}
	return texsimBinary.path
}

// coordinatedRun executes one texsim -coordinate n run over gridFile
// with a shared trace store, returning stdout.
func coordinatedRun(tb testing.TB, bin, gridFile, store string, n int) []byte {
	tb.Helper()
	cmd := exec.Command(bin, "-grid", gridFile, "-coordinate", fmt.Sprint(n),
		"-trace-dir", store, "-workers", "1", "-scale", "8")
	out, err := cmd.Output()
	if err != nil {
		tb.Fatalf("texsim -coordinate %d: %v", n, err)
	}
	return out
}

const scalingGridJSON = `{"scenes":["flight","town","guitar","goblet"],"scales":[8,16],"configs":[
 {"size_bytes":2048,"ways":1,"line_bytes":64},
 {"size_bytes":8192,"ways":2,"line_bytes":64},
 {"size_bytes":16384,"ways":2,"line_bytes":128},
 {"size_bytes":32768,"ways":4,"line_bytes":128}]}`

// writeScalingGrid writes the scaling grid and pre-warms the shared
// store so timing measures replay scheduling, not rendering.
func writeScalingGrid(tb testing.TB, bin string) (gridFile, store string) {
	tb.Helper()
	dir := tb.TempDir()
	gridFile = filepath.Join(dir, "grid.json")
	store = filepath.Join(dir, "traces")
	if err := os.WriteFile(gridFile, []byte(scalingGridJSON), 0o644); err != nil {
		tb.Fatal(err)
	}
	coordinatedRun(tb, bin, gridFile, store, 1)
	return gridFile, store
}

// TestShardScaling is the bench-check gate for the coordinator: on a
// warm trace store, n=NumCPU real worker processes must beat a single
// worker process by at least 1.5x on the same grid. Process-level
// parallelism is the whole point of sharding, so — like the trace-gen
// gate — it needs real cores and skips on a single-CPU host.
func TestShardScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	n := runtime.NumCPU()
	if n < 2 {
		t.Skip("shard scaling needs more than one CPU")
	}
	bin := buildTexsim(t)
	gridFile, store := writeScalingGrid(t, bin)

	var single, sharded []byte
	serial := bestOf3(func() { single = coordinatedRun(t, bin, gridFile, store, 1) })
	parallel := bestOf3(func() { sharded = coordinatedRun(t, bin, gridFile, store, n) })
	if !bytes.Equal(single, sharded) {
		t.Error("sharded output differs from single-worker output")
	}

	speedup := float64(serial) / float64(parallel)
	t.Logf("1 worker %v, %d workers %v: %.2fx", serial, n, parallel, speedup)
	if speedup < 1.5 {
		t.Errorf("coordinated shard speedup %.2fx, want >= 1.5x (serial %v, parallel %v)",
			speedup, serial, parallel)
	}
}

// BenchmarkShardedGrid times coordinated multi-process grid runs over a
// warm trace store — the workers render nothing, so the numbers isolate
// the sharding machinery plus replay. The n=1 case is the
// single-process baseline the scaling claim divides by.
func BenchmarkShardedGrid(b *testing.B) {
	bin := buildTexsim(b)
	gridFile, store := writeScalingGrid(b, bin)
	for _, n := range benchShardCounts() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				coordinatedRun(b, bin, gridFile, store, n)
			}
		})
	}
}

// benchShardCounts picks the worker counts BenchmarkShardedGrid
// reports: the serial baseline and the full machine (when they differ).
func benchShardCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}
