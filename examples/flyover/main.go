// Flyover: the workload the paper's introduction motivates — a flight
// simulator draping large satellite textures over terrain. Renders the
// Flight benchmark, sweeps cache sizes, and prints the memory-bandwidth
// table a hardware architect would use to size the on-chip texture cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"texcache"
)

func main() {
	scale := flag.Int("scale", 4, "resolution divisor (1 = the paper's 1280x1024)")
	flag.Parse()

	scene, err := texcache.SceneByNameChecked("flight", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flight scene: %dx%d, %d triangles, %d textures (%.1f MB)\n",
		scene.Width, scene.Height, scene.Triangles(), len(scene.Mips),
		float64(scene.TextureStorageBytes())/(1<<20))

	// One rendering pass records the texel address trace; every cache
	// configuration replays it.
	trace, r, err := scene.Trace(
		texcache.LayoutSpec{Kind: texcache.PaddedBlocked, BlockW: 8, PadBlocks: 4},
		scene.DefaultTraversal())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame: %d textured fragments, %d texel accesses\n\n",
		r.Stats.FragmentsTextured, trace.Len())

	model := texcache.DefaultPerfModel()
	fmt.Printf("%-10s %10s %12s %14s %10s\n",
		"cache", "miss rate", "DRAM MB/s", "vs uncached", "misses")
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		c, err := texcache.NewCache(texcache.CacheConfig{
			SizeBytes: size, LineBytes: 128, Ways: 2})
		if err != nil {
			log.Fatal(err)
		}
		trace.Replay(c.Sink())
		s := c.Stats()
		fmt.Printf("%-10s %9.2f%% %12.0f %13.1fx %10d\n",
			fmtSize(size), 100*s.MissRate(),
			model.BandwidthBytesPerSecond(s.MissRate(), 128)/1e6,
			model.BandwidthReduction(s.MissRate(), 128),
			s.Misses)
	}
	fmt.Printf("\nuncached requirement: %.0f MB/s at %.0fM fragments/s\n",
		model.UncachedBandwidthBytesPerSecond()/1e6,
		model.PeakFragmentsPerSecond()/1e6)

	f, err := os.Create("flyover.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := r.FB.WritePNG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote flyover.png")
}

func fmtSize(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}
