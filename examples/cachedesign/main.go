// Cachedesign: explore the texture-cache design space the way Section 7
// does — sweep size, line size and associativity over all four benchmark
// scenes, score each organization by its worst-case memory bandwidth,
// and report the design an architect would pick under an on-chip SRAM
// budget.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"texcache"
)

type design struct {
	cfg       texcache.CacheConfig
	worstMBps float64 // worst-case bandwidth across scenes
	perScene  map[string]float64
}

func main() {
	scale := flag.Int("scale", 4, "resolution divisor")
	budget := flag.Int("budget", 32<<10, "on-chip SRAM budget in bytes")
	flag.Parse()

	// Record one trace per (scene, block size): the layout's block must
	// match the candidate line size (the Section 5.3.2 rule), so line
	// sweeps need a trace per block.
	type key struct {
		scene  string
		blockW int
	}
	traces := map[key]*texcache.Trace{}
	for _, name := range texcache.SceneNames() {
		scene, err := texcache.SceneByNameChecked(name, *scale)
		if err != nil {
			log.Fatal(err)
		}
		for _, bw := range []int{4, 8} {
			tr, _, err := scene.Trace(
				texcache.LayoutSpec{Kind: texcache.PaddedBlocked, BlockW: bw, PadBlocks: 4},
				scene.DefaultTraversal())
			if err != nil {
				log.Fatal(err)
			}
			traces[key{name, bw}] = tr
		}
	}

	model := texcache.DefaultPerfModel()
	blockFor := map[int]int{64: 4, 128: 8}
	var candidates []design
	for size := 4 << 10; size <= *budget; size <<= 1 {
		for _, line := range []int{64, 128} {
			for _, ways := range []int{1, 2, 4} {
				d := design{
					cfg:      texcache.CacheConfig{SizeBytes: size, LineBytes: line, Ways: ways},
					perScene: map[string]float64{},
				}
				for _, name := range texcache.SceneNames() {
					c, err := texcache.NewCache(d.cfg)
					if err != nil {
						log.Fatal(err)
					}
					traces[key{name, blockFor[line]}].Replay(c.Sink())
					mbps := model.BandwidthBytesPerSecond(c.Stats().MissRate(), line) / 1e6
					d.perScene[name] = mbps
					if mbps > d.worstMBps {
						d.worstMBps = mbps
					}
				}
				candidates = append(candidates, d)
			}
		}
	}

	// Rank by worst-case bandwidth: the paper's robustness criterion
	// ("guaranteed performance under worst-case conditions").
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].worstMBps < candidates[j].worstMBps
	})

	fmt.Printf("texture cache design space at scale %d (budget %dKB):\n\n", *scale, *budget>>10)
	fmt.Printf("%-32s %12s   %s\n", "organization", "worst MB/s", "per-scene MB/s")
	for i, d := range candidates {
		if i >= 10 {
			break
		}
		fmt.Printf("%-32s %12.0f   ", d.cfg, d.worstMBps)
		for _, name := range texcache.SceneNames() {
			fmt.Printf("%s=%.0f ", name, d.perScene[name])
		}
		fmt.Println()
	}
	best := candidates[0]
	fmt.Printf("\npick: %v — worst-case %.0f MB/s, %.1fx below the uncached %.0f MB/s\n",
		best.cfg, best.worstMBps,
		model.UncachedBandwidthBytesPerSecond()/1e6/best.worstMBps,
		model.UncachedBandwidthBytesPerSecond()/1e6)
}
