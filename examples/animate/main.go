// Animate: render a short orbit around the Goblet, keeping one texture
// cache warm across frames, and watch how much (or little) consecutive
// frames share — the Section 3.1.2 inter-frame temporal locality
// question. Also writes the frames as PNGs for a flip-book check.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"texcache"
)

func main() {
	var (
		scale  = flag.Int("scale", 4, "resolution divisor")
		frames = flag.Int("frames", 5, "frames to render")
		fps    = flag.Float64("fps", 30, "animation rate")
		size   = flag.Int("cache", 256<<10, "cache size in bytes")
		outDir = flag.String("o", "", "PNG output directory (empty = no images)")
	)
	flag.Parse()

	scene, err := texcache.SceneByNameChecked("goblet", *scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg := texcache.CacheConfig{SizeBytes: *size, LineBytes: 128, Ways: 2}
	c, err := texcache.NewCache(cfg)
	if err != nil {
		log.Fatal(err) // e.g. a -cache value that is not a power of two
	}

	fmt.Printf("goblet orbit, %d frames at %g fps, shared %s cache\n\n",
		*frames, *fps, fmtKB(*size))
	fmt.Printf("%6s %12s %12s %12s\n", "frame", "accesses", "misses", "miss rate")

	var prev texcache.CacheStats
	for f := 0; f < *frames; f++ {
		r, err := scene.Render(texcache.RenderOptions{
			Layout:    texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
			Traversal: scene.DefaultTraversal(),
			Sink:      c.Sink(),
			Time:      float64(f) / *fps,
		})
		if err != nil {
			log.Fatal(err)
		}
		cur := c.Stats()
		frame := texcache.CacheStats{
			Accesses: cur.Accesses - prev.Accesses,
			Misses:   cur.Misses - prev.Misses,
		}
		prev = cur
		fmt.Printf("%6d %12d %12d %11.2f%%\n",
			f, frame.Accesses, frame.Misses, 100*frame.MissRate())

		if *outDir != "" {
			if err := writePNG(r, filepath.Join(*outDir, fmt.Sprintf("frame%03d.png", f))); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nframes after the first reuse whatever survives in the cache;")
	fmt.Println("rerun with -cache 33554432 to see inter-frame locality appear")
}

func writePNG(r *texcache.Renderer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.FB.WritePNG(f); err != nil {
		return err
	}
	return f.Close()
}

func fmtKB(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}
