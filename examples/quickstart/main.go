// Quickstart: render a textured quad through the full pipeline, feed the
// texel address stream into a cache simulator, and report the miss rate
// breakdown — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"texcache"
)

func main() {
	// A 256x256 brick texture in blocked (8x8-texel) representation.
	arena := texcache.NewArena()
	tex, err := texcache.NewTexture(0, texcache.Brick(256, 256),
		texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8}, arena)
	if err != nil {
		log.Fatal(err)
	}

	// A renderer with a 32KB 2-way cache attached to the texel stream.
	r := texcache.NewRenderer(512, 512)
	r.Textures = []*texcache.TextureObject{tex}
	c, err := texcache.NewClassifyingCache(texcache.CacheConfig{
		SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
	if err != nil {
		log.Fatal(err)
	}
	r.Sink = c.Sink()

	// A quad facing the camera, textured with 2x2 repetitions.
	mesh := quad(2.0, 0)
	cam := texcache.LookAtCamera(
		texcache.Vec3{Z: 2.2}, texcache.Vec3{}, texcache.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	r.DrawMesh(mesh, texcache.Identity(), cam)

	s := c.Stats()
	fmt.Printf("fragments textured: %d\n", r.Stats.FragmentsTextured)
	fmt.Printf("texel accesses:     %d\n", s.Accesses)
	fmt.Printf("miss rate:          %.2f%% (cold %.2f%%, capacity %.2f%%, conflict %.2f%%)\n",
		100*s.MissRate(),
		100*float64(s.Cold)/float64(s.Accesses),
		100*float64(s.Capacity)/float64(s.Accesses),
		100*float64(s.Conflict)/float64(s.Accesses))

	model := texcache.DefaultPerfModel()
	fmt.Printf("bandwidth at 50M fragments/s: %.0f MB/s (uncached: %.0f MB/s)\n",
		model.BandwidthBytesPerSecond(s.MissRate(), 128)/1e6,
		model.UncachedBandwidthBytesPerSecond()/1e6)

	f, err := os.Create("quickstart.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := r.FB.WritePNG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png")
}

// quad builds a unit quad of half-size hs with 2x-repeated UVs.
func quad(hs float64, texID int) *texcache.Mesh {
	n := texcache.Vec3{Z: 1}
	white := texcache.Vec3{X: 1, Y: 1, Z: 1}
	v := func(x, y, u, vv float64) texcache.Vertex {
		return texcache.Vertex{
			Pos: texcache.Vec3{X: x, Y: y}, Normal: n,
			UV: texcache.Vec2{X: u, Y: vv}, Color: white,
		}
	}
	m := &texcache.Mesh{}
	m.AddQuad(
		v(-hs, -hs, 0, 2), v(hs, -hs, 2, 2),
		v(hs, hs, 2, 0), v(-hs, hs, 0, 0), texID)
	return m
}
