// Tilestudy: how screen-space tiled rasterization shrinks the texture
// working set (Section 6). Builds a worst-case workload — one enormous
// textured triangle pair spanning the whole screen — and shows the
// fully-associative miss-rate curve for a range of tile sizes, including
// the degenerate extremes the paper discusses (tiny tiles converge to
// untiled; huge tiles overflow the cache).
package main

import (
	"flag"
	"fmt"
	"log"

	"texcache"
)

func main() {
	size := flag.Int("screen", 512, "screen size in pixels")
	flag.Parse()

	// A full-screen quad textured 1:1 (one texel per pixel at lambda 0+),
	// the paper's worst-case large-triangle scenario.
	arena := texcache.NewArena()
	tex, err := texcache.NewTexture(0, texcache.Noise(1024, 1024, 7),
		texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8}, arena)
	if err != nil {
		log.Fatal(err)
	}

	cacheSizes := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
	fmt.Printf("full-screen textured quad, %dx%d, blocked 8x8, 128B lines\n\n", *size, *size)
	fmt.Printf("%-10s", "tile")
	for _, cs := range cacheSizes {
		fmt.Printf("%8dKB", cs>>10)
	}
	fmt.Println()

	for _, tile := range []int{0, 4, 8, 16, 32, 128, 512} {
		trace := texcache.NewTrace(1 << 20)
		r := texcache.NewRenderer(*size, *size)
		r.Textures = []*texcache.TextureObject{tex}
		r.Sink = trace
		r.Traversal = texcache.Traversal{Order: texcache.Horizontal, TileW: tile, TileH: tile}

		cam := texcache.LookAtCamera(
			texcache.Vec3{Z: 1}, texcache.Vec3{}, texcache.Vec3{Y: 1},
			1.5708, 1, 0.1, 10)
		r.DrawMesh(fullScreenQuad(), texcache.Identity(), cam)

		sd := texcache.NewStackDist(128)
		trace.Replay(sd)
		label := "untiled"
		if tile > 0 {
			label = fmt.Sprintf("%dx%d", tile, tile)
		}
		fmt.Printf("%-10s", label)
		for _, cs := range cacheSizes {
			fmt.Printf("%8.2f%%", 100*sd.MissRateAt(cs))
		}
		fmt.Println()
	}
	fmt.Println("\nmedium tiles should push low miss rates down to much smaller caches")
}

// fullScreenQuad covers the 90-degree frustum at z=0 from a camera at
// z=1: a quad spanning [-1,1]^2 textured with ~2 texels per pixel.
func fullScreenQuad() *texcache.Mesh {
	n := texcache.Vec3{Z: 1}
	white := texcache.Vec3{X: 1, Y: 1, Z: 1}
	v := func(x, y, u, vv float64) texcache.Vertex {
		return texcache.Vertex{
			Pos: texcache.Vec3{X: x, Y: y}, Normal: n,
			UV: texcache.Vec2{X: u, Y: vv}, Color: white,
		}
	}
	m := &texcache.Mesh{}
	m.AddQuad(v(-1, -1, 0, 1), v(1, -1, 1, 1), v(1, 1, 1, 0), v(-1, 1, 0, 0), 0)
	return m
}
