//go:build !race

package texcache_test

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
