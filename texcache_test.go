package texcache_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"texcache"
)

// mustScene builds a benchmark scene through the checked lookup, failing
// the test on unknown names.
func mustScene(tb testing.TB, name string, scale int) *texcache.Scene {
	tb.Helper()
	s, err := texcache.SceneByNameChecked(name, scale)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestPublicAPIRenderAndSimulate drives the full public surface: build a
// texture, render geometry, trace the accesses, replay through caches.
func TestPublicAPIRenderAndSimulate(t *testing.T) {
	arena := texcache.NewArena()
	tex, err := texcache.NewTexture(0, texcache.Checker(64, 64, 8,
		texcache.Texel{R: 255, A: 255}, texcache.Texel{G: 255, A: 255}),
		texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 4}, arena)
	if err != nil {
		t.Fatal(err)
	}

	r := texcache.NewRenderer(64, 64)
	r.Textures = []*texcache.TextureObject{tex}
	trace := texcache.NewTrace(0)
	r.Sink = trace

	mesh := &texcache.Mesh{}
	white := texcache.Vec3{X: 1, Y: 1, Z: 1}
	v := func(x, y, u, vv float64) texcache.Vertex {
		return texcache.Vertex{Pos: texcache.Vec3{X: x, Y: y},
			Normal: texcache.Vec3{Z: 1}, UV: texcache.Vec2{X: u, Y: vv}, Color: white}
	}
	mesh.AddQuad(v(-1, -1, 0, 1), v(1, -1, 1, 1), v(1, 1, 1, 0), v(-1, 1, 0, 0), 0)

	cam := texcache.LookAtCamera(texcache.Vec3{Z: 2}, texcache.Vec3{}, texcache.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	r.DrawMesh(mesh, texcache.Identity(), cam)

	if r.Stats.FragmentsTextured == 0 || trace.Len() == 0 {
		t.Fatal("nothing rendered through the public API")
	}

	c, err := texcache.NewClassifyingCache(texcache.CacheConfig{
		SizeBytes: 4 << 10, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace.Replay(c.Sink())
	s := c.Stats()
	if s.Accesses != uint64(trace.Len()) {
		t.Errorf("cache saw %d accesses, trace has %d", s.Accesses, trace.Len())
	}
	if s.Cold+s.Capacity+s.Conflict != s.Misses {
		t.Errorf("3C partition broken: %+v", s)
	}

	sd := texcache.NewStackDist(64)
	trace.Replay(sd)
	if sd.Accesses() != uint64(trace.Len()) {
		t.Error("stack distance profiler missed accesses")
	}
}

func TestSceneFacade(t *testing.T) {
	names := texcache.SceneNames()
	if len(names) != 4 {
		t.Fatalf("scene names = %v", names)
	}
	s := mustScene(t, "goblet", 8)
	tr, r, err := s.Trace(texcache.LayoutSpec{Kind: texcache.NonBlocked}, s.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 || r.Stats.FragmentsTextured == 0 {
		t.Error("scene trace empty")
	}
	if _, err := texcache.SceneByNameChecked("nope", 1); err == nil {
		t.Error("unknown scene should error")
	}
}

func TestRunFacade(t *testing.T) {
	ids := texcache.ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	results, err := texcache.Run(context.Background(), texcache.ExperimentRequest{
		Experiments: []string{"table4.1"}, Scale: 8, Scenes: []string{"goblet"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		out.WriteString(r.Output)
	}
	if !strings.Contains(out.String(), "goblet") {
		t.Errorf("experiment output malformed: %s", out.String())
	}
	_, err = texcache.Run(context.Background(), texcache.ExperimentRequest{
		Experiments: []string{"bogus"},
	})
	var unknown *texcache.UnknownExperimentError
	if err == nil {
		t.Error("bogus experiment accepted")
	} else if !errors.As(err, &unknown) || unknown.ID != "bogus" {
		t.Errorf("error %v does not unwrap to *UnknownExperimentError{bogus}", err)
	}
}

func TestPerfModelFacade(t *testing.T) {
	m := texcache.DefaultPerfModel()
	if m.PeakFragmentsPerSecond() != 50e6 {
		t.Error("default model changed")
	}
}

func TestMemoryModelFacades(t *testing.T) {
	d, err := texcache.NewDRAMSim(texcache.DefaultDRAM(), 128)
	if err != nil {
		t.Fatal(err)
	}
	d.Fill(0)
	d.Fill(128)
	if d.Stats().Fills != 2 || d.Stats().PageHits != 1 {
		t.Errorf("dram facade stats = %+v", d.Stats())
	}

	s := mustScene(t, "goblet", 8)
	tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		s.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	ac := texcache.DefaultArch(texcache.CacheConfig{
		SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}, texcache.ArchPrefetch)
	res, err := texcache.SimulateArch(ac, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != uint64(tr.Len()) || res.Utilization() <= 0 {
		t.Errorf("arch facade result = %+v", res)
	}

	// One replay, several timing points: the timeline must agree with the
	// direct simulation at the same configuration.
	tl, err := texcache.NewArchTimeline(ac.Cache, tr)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tl.Simulate(ac)
	if err != nil {
		t.Fatal(err)
	}
	if again != res {
		t.Errorf("timeline result %+v != direct %+v", again, res)
	}
}

func TestParallelFacade(t *testing.T) {
	s := mustScene(t, "goblet", 8)
	res, err := texcache.RunParallel(s, texcache.TileInterleave, 2, 8,
		texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		texcache.CacheConfig{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2 || res.TotalFragments() == 0 {
		t.Errorf("parallel facade result = %+v", res)
	}
}

func TestGLFacade(t *testing.T) {
	r := texcache.NewRenderer(16, 16)
	cam := texcache.LookAtCamera(texcache.Vec3{Z: 2}, texcache.Vec3{}, texcache.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	var buf strings.Builder
	rec := texcache.NewGLRecorder(&buf)
	api := texcache.GLTee(texcache.NewGLContext(r, cam), rec)
	texcache.EmitMesh(api, quadMesh())
	if err := api.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Stats.TrianglesIn != 2 {
		t.Errorf("GL rendered %d triangles", r.Stats.TrianglesIn)
	}
	// Replay the recorded trace into a fresh renderer.
	r2 := texcache.NewRenderer(16, 16)
	if err := texcache.GLReplay(strings.NewReader(buf.String()),
		texcache.NewGLContext(r2, cam)); err != nil {
		t.Fatal(err)
	}
	if r2.Stats.TrianglesIn != 2 {
		t.Errorf("replay rendered %d triangles", r2.Stats.TrianglesIn)
	}
}

func quadMesh() *texcache.Mesh {
	m := &texcache.Mesh{}
	white := texcache.Vec3{X: 1, Y: 1, Z: 1}
	v := func(x, y, u, vv float64) texcache.Vertex {
		return texcache.Vertex{Pos: texcache.Vec3{X: x, Y: y},
			Normal: texcache.Vec3{Z: 1}, UV: texcache.Vec2{X: u, Y: vv}, Color: white}
	}
	m.AddQuad(v(-1, -1, 0, 1), v(1, -1, 1, 1), v(1, 1, 1, 0), v(-1, 1, 0, 0), -1)
	return m
}

func TestSectoredFacade(t *testing.T) {
	sc, err := texcache.NewSectoredCache(texcache.CacheConfig{
		SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}, 32)
	if err != nil {
		t.Fatal(err)
	}
	sc.Access(0)
	sc.Access(32)
	if sc.Stats().Misses != 2 {
		t.Errorf("sectored facade stats = %+v", sc.Stats())
	}
	c, err := texcache.NewCache(texcache.CacheConfig{
		SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, Policy: texcache.ReplaceFIFO})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)
	if !c.Access(0) {
		t.Error("FIFO policy facade broken")
	}
}

func TestBankAnalyzerFacade(t *testing.T) {
	a := texcache.NewBankAnalyzer()
	for _, d := range [4][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		a.Record(texcache.AccessEvent{TU: d[0], TV: d[1]})
	}
	if a.Quads() != 1 {
		t.Errorf("quads = %d", a.Quads())
	}
}
