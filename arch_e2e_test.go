package texcache_test

// End-to-end gates on the cycle-level architecture model: the Igehy
// latency-tolerance claim on all four benchmark scenes, and bitwise
// determinism of architecture requests across worker counts.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"texcache"
)

// archTimeline renders one scene at scale 8 and captures its miss
// timeline under the paper's 32KB 2-way 128B cache.
func archTimeline(t *testing.T, scene string) *texcache.ArchTimeline {
	t.Helper()
	s := mustScene(t, scene, 8)
	tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		s.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	tl, err := texcache.NewArchTimeline(
		texcache.CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestArchLatencyTolerance is the acceptance gate on the Igehy et al.
// 1998 claim, and part of `make bench-check`: at 100 cycles of memory
// latency the blocking cache must cost at least 1.5x the prefetching
// pipeline on every benchmark scene, while the prefetching pipeline
// stays within 10% of its own zero-latency bound. The margins are
// simulated cycles, not wall-clock, so the gate is exact and
// deterministic.
func TestArchLatencyTolerance(t *testing.T) {
	for _, scene := range texcache.SceneNames() {
		t.Run(scene, func(t *testing.T) {
			tl := archTimeline(t, scene)

			at := func(p texcache.ArchPipeline, lat int) texcache.ArchResult {
				cfg := texcache.DefaultArch(tl.CacheConfig(), p)
				cfg.FillLatency = lat
				res, err := tl.Simulate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			blocking := at(texcache.ArchBlocking, 100)
			prefetch := at(texcache.ArchPrefetch, 100)
			bound := at(texcache.ArchPrefetch, 0)

			if float64(blocking.TotalCyc) < 1.5*float64(prefetch.TotalCyc) {
				t.Errorf("blocking %d cycles vs prefetch %d: want >= 1.5x",
					blocking.TotalCyc, prefetch.TotalCyc)
			}
			if float64(prefetch.TotalCyc) > 1.1*float64(bound.TotalCyc) {
				t.Errorf("prefetch at 100-cycle latency = %d cycles, zero-latency bound %d: want within 10%%",
					prefetch.TotalCyc, bound.TotalCyc)
			}
			// Blocking pays every miss in full: its stall time must grow
			// linearly with latency.
			b200 := at(texcache.ArchBlocking, 200)
			if b200.TotalCyc <= blocking.TotalCyc {
				t.Errorf("blocking did not degrade with latency: %d at 100, %d at 200",
					blocking.TotalCyc, b200.TotalCyc)
			}
		})
	}
}

// archRequestNDJSON runs one architecture-kind request through the
// facade and returns the serialized NDJSON stream.
func archRequestNDJSON(t *testing.T, workers, renderWorkers int) []byte {
	t.Helper()
	var req texcache.ExperimentRequest
	body := `{"scene":"goblet","scale":8,"architecture":{"pipeline":"both","fill_latency":100}}`
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	req.Workers = workers
	req.RenderWorkers = renderWorkers
	results, err := texcache.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := texcache.WriteResultsNDJSON(&buf, results, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestArchRequestDeterminism pins the wire contract: the NDJSON bytes
// of an architecture request are identical at any worker or
// render-worker count (the cycle model is a pure function of the trace,
// and the trace is bit-identical at any render parallelism).
func TestArchRequestDeterminism(t *testing.T) {
	base := archRequestNDJSON(t, 1, 1)
	if len(base) == 0 {
		t.Fatal("empty NDJSON stream")
	}
	for _, wc := range []struct{ workers, renderWorkers int }{
		{1, 1}, {4, 0}, {2, 4},
	} {
		got := archRequestNDJSON(t, wc.workers, wc.renderWorkers)
		if !bytes.Equal(base, got) {
			t.Errorf("workers=%d render-workers=%d: NDJSON differs from serial run",
				wc.workers, wc.renderWorkers)
		}
	}
}
