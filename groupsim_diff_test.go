package texcache_test

// Differential tests of the grouped single-pass sweep simulator against
// per-configuration replay on real rendered traces, plus the bench-check
// speedup gate the Makefile runs.

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"texcache"
)

// mixedSweep extends the acceptance sweep with randomized configurations
// across all three replacement policies, so the grouped path and its
// FIFO/Random fallback path are both exercised on real traces.
func mixedSweep(seed int64, n int) []texcache.CacheConfig {
	rng := rand.New(rand.NewSource(seed))
	cfgs := sweep8()
	policies := []texcache.Replacement{texcache.ReplaceLRU, texcache.ReplaceFIFO, texcache.ReplaceRandom}
	for len(cfgs) < n {
		line := 32 << rng.Intn(4)
		lines := 1 << (3 + rng.Intn(8))
		cfg := texcache.CacheConfig{SizeBytes: line * lines, LineBytes: line}
		if rng.Intn(4) > 0 {
			cfg.Ways = 1 << rng.Intn(4)
			cfg.Policy = policies[rng.Intn(len(policies))]
		}
		if cfg.Validate() != nil {
			continue
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestGroupedSweepMatchesSerialOnScenes is the real-trace differential
// gate: for two rendered scenes and a sweep mixing the acceptance
// configurations with randomized ones (all replacement policies), the
// grouped single-pass simulator must report statistics bit-identical to
// per-configuration serial simulation — every field, including the
// cold/capacity/conflict miss classification.
func TestGroupedSweepMatchesSerialOnScenes(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"goblet", "town"} {
		s := mustScene(t, name, 8)
		tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
			s.DefaultTraversal())
		if err != nil {
			t.Fatal(err)
		}
		cfgs := mixedSweep(int64(len(name)), 24)

		want := tr.SimulateConfigs(cfgs)
		got, err := tr.SimulateConfigsGrouped(ctx, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			if got[i] != want[i] {
				t.Errorf("%s %+v: grouped %+v != serial %+v", name, cfg, got[i], want[i])
			}
		}

		rates, err := tr.MissRatesGrouped(ctx, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			if rates[i] != want[i].MissRate() {
				t.Errorf("%s %+v: grouped rate %v != serial %v", name, cfgs[i], rates[i], want[i].MissRate())
			}
		}
	}
}

// TestSweepModesProduceIdenticalOutput runs a sweep-heavy experiment
// under both sweep modes and requires byte-identical report text, pinning
// the engine/exp threading: SweepGrouped (the default) may change only
// wall-clock, never output.
func TestSweepModesProduceIdenticalOutput(t *testing.T) {
	ids := []string{"fig5.7", "replacement"}
	outputs := map[texcache.SweepMode]string{}
	for _, mode := range []texcache.SweepMode{texcache.SweepGrouped, texcache.SweepPerConfig} {
		req := texcache.ExperimentRequest{
			Experiments: ids, Scale: 8, Scenes: []string{"goblet"},
		}
		results, err := texcache.Run(context.Background(), req,
			texcache.WithSweepMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		// Results stream in completion order; reassemble request order so
		// the comparison sees only the experiment output itself.
		byIndex := make([]string, len(ids))
		for r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			byIndex[r.Index] = r.ID + "\n" + r.Output
		}
		outputs[mode] = strings.Join(byIndex, "")
	}
	if outputs[texcache.SweepGrouped] != outputs[texcache.SweepPerConfig] {
		t.Error("grouped and per-config sweep modes produced different experiment output")
	}
}

// TestGroupedSweepSpeedup is the bench-check gate (`make bench-check`):
// on the acceptance sweep over a real trace, the grouped single-pass
// simulator must beat per-configuration serial simulation by at least 2x
// per simulated configuration. The margin is algorithmic — one trace
// walk per line size instead of one per configuration — so it holds on a
// single core and the gate needs no parallelism.
func TestGroupedSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	s := mustScene(t, "goblet", 4)
	tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		s.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := sweep8()
	ctx := context.Background()

	// Best-of-3 on each side rejects scheduler noise; one warm-up pass
	// per side pages the trace in before anything is timed.
	tr.SimulateConfigs(cfgs)
	if _, err := tr.SimulateConfigsGrouped(ctx, cfgs); err != nil {
		t.Fatal(err)
	}
	best := func(run func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	serial := best(func() { tr.SimulateConfigs(cfgs) })
	grouped := best(func() {
		if _, err := tr.SimulateConfigsGrouped(ctx, cfgs); err != nil {
			t.Fatal(err)
		}
	})

	speedup := float64(serial) / float64(grouped)
	t.Logf("serial %v, grouped %v: %.2fx over %d configs", serial, grouped, speedup, len(cfgs))
	if speedup < 2 {
		t.Errorf("grouped sweep speedup %.2fx, want >= 2x (serial %v, grouped %v)", speedup, serial, grouped)
	}
}
