package texcache_test

// Bench-check speedup gates for the two fast paths this engine leans
// on: tile-parallel trace generation and batched trace replay. Both run
// best-of-3 against a warmed baseline, like TestGroupedSweepSpeedup.

import (
	"runtime"
	"testing"
	"time"

	"texcache"
)

// bestOf3 times three runs of f and returns the fastest, rejecting
// scheduler noise the way the grouped-sweep gate does.
func bestOf3(f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestTraceGenParallelSpeedup is the bench-check gate for the tile
// pass: generating the four benchmark traces with a full-width worker
// pool must beat the serial scan by at least 1.5x. The margin comes
// from rasterizing tiles concurrently while the caller drains the
// rank-ordered merge, so — unlike the grouped-sweep gate — it needs
// real cores and skips on a single-CPU host.
func TestTraceGenParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		t.Skip("parallel speedup needs more than one CPU")
	}

	layout := texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8}
	var scenes []*texcache.Scene
	for _, name := range []string{"flight", "guitar", "goblet", "town"} {
		scenes = append(scenes, mustScene(t, name, 4))
	}
	gen := func(workers int) func() {
		return func() {
			for _, s := range scenes {
				if _, _, err := s.TraceParallel(layout, s.DefaultTraversal(), workers); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Warm both paths (scene meshes, tile-stream pools) before timing.
	gen(1)()
	gen(workers)()

	serial := bestOf3(gen(1))
	parallel := bestOf3(gen(workers))

	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, %d workers %v: %.2fx", serial, workers, parallel, speedup)
	if speedup < 1.5 {
		t.Errorf("parallel trace generation speedup %.2fx, want >= 1.5x (serial %v, parallel %v)",
			speedup, serial, parallel)
	}
}

// TestBatchReplaySpeedup is the bench-check gate for the batch replay
// kernel: feeding the Goblet trace to a cache in Replay-sized blocks
// through AccessBatch must beat the per-address Sink loop by at least
// 1.3x. The margin is per-access overhead — one interface call and one
// statistics update per block instead of per address — so it holds on a
// single core.
func TestBatchReplaySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	s := mustScene(t, "goblet", 4)
	tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		s.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	cfg := texcache.CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}
	newCache := func() *texcache.Cache {
		c, err := texcache.NewCache(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	const block = 1 << 14 // Replay's chunk size
	perAddress := func() {
		var sink texcache.Sink = newCache().Sink()
		for _, a := range tr.Addrs {
			sink.Access(a)
		}
	}
	batched := func() {
		c := newCache()
		for lo := 0; lo < len(tr.Addrs); lo += block {
			c.AccessBatch(tr.Addrs[lo:min(lo+block, len(tr.Addrs))])
		}
	}
	perAddress() // warm-up: page the trace in
	batched()

	scalar := bestOf3(perAddress)
	batch := bestOf3(batched)

	speedup := float64(scalar) / float64(batch)
	t.Logf("per-address %v, batched %v: %.2fx over %d addresses",
		scalar, batch, speedup, tr.Len())
	if speedup < 1.3 {
		t.Errorf("batch replay speedup %.2fx, want >= 1.3x (per-address %v, batched %v)",
			speedup, scalar, batch)
	}
}
