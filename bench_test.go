package texcache_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, regenerating the artifact from a fresh simulation, plus
// micro-benchmarks of the simulator's hot paths. Benchmarks run the
// scenes at scale 8 by default so `go test -bench=.` completes quickly;
// set TEXCACHE_BENCH_SCALE=1 for the paper's full-resolution runs.

import (
	"context"
	"io"
	"math"
	"os"
	"strconv"
	"testing"

	"texcache"
)

func benchScale() int {
	if v, err := strconv.Atoi(os.Getenv("TEXCACHE_BENCH_SCALE")); err == nil && v >= 1 {
		return v
	}
	return 8
}

// benchExperiment regenerates one paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	req := texcache.ExperimentRequest{Experiments: []string{id}, Scale: benchScale()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := texcache.Run(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		for r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkTable2_1(b *testing.B)  { benchExperiment(b, "table2.1") }
func BenchmarkTable4_1(b *testing.B)  { benchExperiment(b, "table4.1") }
func BenchmarkLocality(b *testing.B)  { benchExperiment(b, "locality") }
func BenchmarkRunlength(b *testing.B) { benchExperiment(b, "runlength") }
func BenchmarkFig5_2(b *testing.B)    { benchExperiment(b, "fig5.2") }
func BenchmarkFig5_4(b *testing.B)    { benchExperiment(b, "fig5.4") }
func BenchmarkFig5_5(b *testing.B)    { benchExperiment(b, "fig5.5") }
func BenchmarkFig5_6(b *testing.B)    { benchExperiment(b, "fig5.6") }
func BenchmarkFig5_7(b *testing.B)    { benchExperiment(b, "fig5.7") }
func BenchmarkFig5_7NB(b *testing.B)  { benchExperiment(b, "fig5.7nb") }
func BenchmarkFig6_2(b *testing.B)    { benchExperiment(b, "fig6.2") }
func BenchmarkFig6_4(b *testing.B)    { benchExperiment(b, "fig6.4") }
func BenchmarkTable7_1(b *testing.B)  { benchExperiment(b, "table7.1") }
func BenchmarkBanks(b *testing.B)     { benchExperiment(b, "banks") }
func BenchmarkWilliams(b *testing.B)  { benchExperiment(b, "williams") }

// Extension experiments (footnote 1 and Section 8 future work).
func BenchmarkHilbert(b *testing.B)     { benchExperiment(b, "hilbert") }
func BenchmarkCompress(b *testing.B)    { benchExperiment(b, "compress") }
func BenchmarkParallel(b *testing.B)    { benchExperiment(b, "parallel") }
func BenchmarkLatency(b *testing.B)     { benchExperiment(b, "latency") }
func BenchmarkDRAM(b *testing.B)        { benchExperiment(b, "dram") }
func BenchmarkPrefetch(b *testing.B)    { benchExperiment(b, "prefetch") }
func BenchmarkInterframe(b *testing.B)  { benchExperiment(b, "interframe") }
func BenchmarkReplacement(b *testing.B) { benchExperiment(b, "replacement") }
func BenchmarkSectored(b *testing.B)    { benchExperiment(b, "sectored") }
func BenchmarkWorstCase(b *testing.B)   { benchExperiment(b, "worstcase") }

// --- Sweep benchmarks -----------------------------------------------

// benchSweepConfigs is the eight-configuration sweep both sweep
// benchmarks replay, so their ratio measures the engine's single-pass
// fan-out against one-config-at-a-time serial replay.
func benchSweepConfigs() []texcache.CacheConfig {
	return []texcache.CacheConfig{
		{SizeBytes: 1 << 10, LineBytes: 32, Ways: 1},
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2},
		{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		{SizeBytes: 16 << 10, LineBytes: 128, Ways: 0},
		{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2},
		{SizeBytes: 64 << 10, LineBytes: 128, Ways: 4},
		{SizeBytes: 128 << 10, LineBytes: 256, Ways: 8},
	}
}

// BenchmarkSerialSweep replays the Goblet trace once per configuration.
func BenchmarkSerialSweep(b *testing.B) {
	tr := gobletTrace(b)
	cfgs := benchSweepConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SimulateConfigs(cfgs)
	}
}

// BenchmarkEngineSweep replays the Goblet trace through all
// configurations in a single concurrent pass; compare with
// BenchmarkSerialSweep on a multi-core machine for the fan-out speedup.
func BenchmarkEngineSweep(b *testing.B) {
	tr := gobletTrace(b)
	cfgs := benchSweepConfigs()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.SimulateConfigsConcurrent(ctx, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupedSweep replays the Goblet trace through all
// configurations with the grouped single-pass simulator: one stack walk
// per distinct line size instead of one replay per configuration.
// Compare with BenchmarkSerialSweep for the per-configuration speedup
// the bench-check gate enforces.
func BenchmarkGroupedSweep(b *testing.B) {
	tr := gobletTrace(b)
	cfgs := benchSweepConfigs()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.SimulateConfigsGrouped(ctx, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatch runs a small experiment batch through the full
// engine (shared trace cache, concurrent experiments).
func BenchmarkEngineBatch(b *testing.B) {
	req := texcache.ExperimentRequest{
		Experiments: []string{"fig5.7", "replacement", "sectored"},
		Scenes:      []string{"goblet"},
		Scale:       benchScale(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := texcache.Run(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		for r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// --- Compact trace and trace-store benchmarks -----------------------

// BenchmarkTraceEncode measures delta-encoding a rendered trace into
// the compact form; ratio is the footprint reduction versus the
// materialized 8 bytes/address.
func BenchmarkTraceEncode(b *testing.B) {
	tr := gobletTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	var c *texcache.CompactTrace
	for i := 0; i < b.N; i++ {
		c = texcache.CompactTraceFromTrace(tr)
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "addrs/s")
	b.ReportMetric(c.Ratio(), "ratio")
}

// BenchmarkTraceDecode measures streaming a compact trace back out
// block by block — the per-sink cost a stream replay pays per pass.
func BenchmarkTraceDecode(b *testing.B) {
	c := texcache.CompactTraceFromTrace(gobletTrace(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := c.Cursor()
		for blk := cur.Next(); blk != nil; blk = cur.Next() {
		}
	}
	b.ReportMetric(float64(c.Len())*float64(b.N)/b.Elapsed().Seconds(), "addrs/s")
}

// benchStoreBatch runs the store acceptance batch against dir.
func benchStoreBatch(b *testing.B, dir string) {
	req := texcache.ExperimentRequest{
		Experiments: []string{"fig5.2", "fig5.7"},
		Scenes:      []string{"goblet"},
		Scale:       benchScale(),
	}
	results, err := texcache.Run(context.Background(), req, texcache.WithTraceDir(dir))
	if err != nil {
		b.Fatal(err)
	}
	for r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkTraceStoreCold runs an experiment batch against an empty
// trace store each iteration: every trace is rendered and written back.
func BenchmarkTraceStoreCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchStoreBatch(b, b.TempDir())
	}
}

// BenchmarkTraceStoreWarm runs the same batch against a populated
// store: every trace loads from disk and nothing renders. The ratio to
// BenchmarkTraceStoreCold is the warm-start speedup the bench-check
// gate enforces.
func BenchmarkTraceStoreWarm(b *testing.B) {
	dir := b.TempDir()
	benchStoreBatch(b, dir) // populate, untimed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStoreBatch(b, dir)
	}
}

// benchResultBatch streams the store batch's NDJSON through the given
// options, discarding the bytes.
func benchResultBatch(b *testing.B, opts ...texcache.ExperimentOption) {
	req := texcache.ExperimentRequest{
		Experiments: []string{"fig5.2", "fig5.7"},
		Scenes:      []string{"goblet"},
		Scale:       benchScale(),
	}
	err := texcache.RunNDJSON(context.Background(), req, io.Discard, func(r texcache.ExperimentResult) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}, opts...)
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResultCacheCold streams the batch with an empty result cache
// each iteration: full simulation plus the cache's tee overhead.
func BenchmarkResultCacheCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchResultBatch(b, texcache.WithResultCache(texcache.NewResultCache()))
	}
}

// BenchmarkResultCacheWarm streams the same batch from a populated
// result cache: nothing renders, nothing replays, the stored bytes are
// written out. The ratio to BenchmarkTraceStoreWarm is the result-tier
// speedup the TestResultCacheWarmSpeedup gate enforces.
func BenchmarkResultCacheWarm(b *testing.B) {
	rc := texcache.NewResultCache()
	benchResultBatch(b, texcache.WithResultCache(rc)) // populate, untimed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchResultBatch(b, texcache.WithResultCache(rc))
	}
}

// --- Tile-parallel render benchmarks --------------------------------

// benchTraceGen generates all four benchmark scenes' traces at one
// worker count per iteration. The Serial/Parallel pair measures the
// tile-pass speedup recorded in BENCH_engine.json; the parallel leg
// needs a multi-core host to show it (on one core the tile pass is the
// serial scan plus merge overhead).
func benchTraceGen(b *testing.B, workers int) {
	layout := texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8}
	var scenes []*texcache.Scene
	for _, name := range []string{"flight", "guitar", "goblet", "town"} {
		scenes = append(scenes, mustScene(b, name, benchScale()))
	}
	b.ResetTimer()
	var addrs uint64
	for i := 0; i < b.N; i++ {
		for _, s := range scenes {
			tr, _, err := s.TraceParallel(layout, s.DefaultTraversal(), workers)
			if err != nil {
				b.Fatal(err)
			}
			addrs += uint64(len(tr.Addrs))
		}
	}
	b.ReportMetric(float64(addrs)/b.Elapsed().Seconds(), "addrs/s")
}

func BenchmarkTraceGenSerial(b *testing.B)   { benchTraceGen(b, 1) }
func BenchmarkTraceGenParallel(b *testing.B) { benchTraceGen(b, 4) }

// --- Simulator micro-benchmarks -------------------------------------

// gobletTrace renders the Goblet benchmark once and returns its trace.
func gobletTrace(b *testing.B) *texcache.Trace {
	b.Helper()
	s := mustScene(b, "goblet", benchScale())
	tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		s.DefaultTraversal())
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkCacheAccess measures raw simulator throughput: accesses/sec
// through a 32KB 2-way cache.
func BenchmarkCacheAccess(b *testing.B) {
	tr := gobletTrace(b)
	c, err := texcache.NewCache(texcache.CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		c.Access(tr.Addrs[n])
		n++
		if n == len(tr.Addrs) {
			n = 0
		}
	}
}

// BenchmarkCacheAccessBatch measures the same cache fed in Replay-sized
// blocks through the batch kernel; ns/op stays per-address, so the ratio
// to BenchmarkCacheAccess is the batch speedup the bench-check gate
// enforces.
func BenchmarkCacheAccessBatch(b *testing.B) {
	tr := gobletTrace(b)
	c, err := texcache.NewCache(texcache.CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
	if err != nil {
		b.Fatal(err)
	}
	const block = 1 << 14
	b.ResetTimer()
	n := 0
	for left := b.N; left > 0; {
		k := min(block, left, len(tr.Addrs)-n)
		c.AccessBatch(tr.Addrs[n : n+k])
		left -= k
		if n += k; n == len(tr.Addrs) {
			n = 0
		}
	}
}

// BenchmarkCacheAccessClassifying measures the 3C-classification slowdown.
func BenchmarkCacheAccessClassifying(b *testing.B) {
	tr := gobletTrace(b)
	c, err := texcache.NewClassifyingCache(texcache.CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		c.Access(tr.Addrs[n])
		n++
		if n == len(tr.Addrs) {
			n = 0
		}
	}
}

// BenchmarkStackDist measures the one-pass working-set profiler.
func BenchmarkStackDist(b *testing.B) {
	tr := gobletTrace(b)
	sd := texcache.NewStackDist(128)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		sd.Access(tr.Addrs[n])
		n++
		if n == len(tr.Addrs) {
			n = 0
		}
	}
}

// BenchmarkStackDistBatch measures the profiler fed in Replay-sized
// blocks; ns/op stays per-address for comparison with
// BenchmarkStackDist.
func BenchmarkStackDistBatch(b *testing.B) {
	tr := gobletTrace(b)
	sd := texcache.NewStackDist(128)
	const block = 1 << 14
	b.ResetTimer()
	n := 0
	for left := b.N; left > 0; {
		k := min(block, left, len(tr.Addrs)-n)
		sd.AccessBatch(tr.Addrs[n : n+k])
		left -= k
		if n += k; n == len(tr.Addrs) {
			n = 0
		}
	}
}

// BenchmarkRenderFrame measures full-pipeline frame rendering (fragments
// per second is the metric the Section 7 machine model cares about).
func BenchmarkRenderFrame(b *testing.B) {
	s := mustScene(b, "goblet", benchScale())
	b.ResetTimer()
	var frags uint64
	for i := 0; i < b.N; i++ {
		r, err := s.Render(texcache.RenderOptions{
			Layout:    texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
			Traversal: s.DefaultTraversal(),
		})
		if err != nil {
			b.Fatal(err)
		}
		frags += r.Stats.FragmentsTextured
	}
	b.ReportMetric(float64(frags)/b.Elapsed().Seconds(), "fragments/s")
}

// BenchmarkSamplerTrilinear measures the 8-texel filter path.
func BenchmarkSamplerTrilinear(b *testing.B) {
	arena := texcache.NewArena()
	tex, err := texcache.NewTexture(0, texcache.Noise(256, 256, 1),
		texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8}, arena)
	if err != nil {
		b.Fatal(err)
	}
	r := texcache.NewRenderer(64, 64)
	r.Textures = []*texcache.TextureObject{tex}
	cam := texcache.LookAtCamera(texcache.Vec3{Z: 2}, texcache.Vec3{}, texcache.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	mesh := &texcache.Mesh{}
	white := texcache.Vec3{X: 1, Y: 1, Z: 1}
	v := func(x, y, u, vv float64) texcache.Vertex {
		return texcache.Vertex{Pos: texcache.Vec3{X: x, Y: y},
			Normal: texcache.Vec3{Z: 1}, UV: texcache.Vec2{X: u, Y: vv}, Color: white}
	}
	mesh.AddQuad(v(-1, -1, 0, 4), v(1, -1, 4, 4), v(1, 1, 4, 0), v(-1, 1, 0, 0), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FB.Clear()
		r.DrawMesh(mesh, texcache.Identity(), cam)
	}
}

// --- Architecture model benchmarks ----------------------------------

// benchArch times the cycle recurrence of one texture-unit machine over
// the Goblet trace. The timeline capture (the cache replay) is paid
// once outside the loop, exactly as a latency or FIFO-depth sweep does.
func benchArch(b *testing.B, p texcache.ArchPipeline) {
	tr := gobletTrace(b)
	tl, err := texcache.NewArchTimeline(
		texcache.CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}, tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := texcache.DefaultArch(tl.CacheConfig(), p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tl.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchBlocking times the blocking baseline's cycle loop.
func BenchmarkArchBlocking(b *testing.B) { benchArch(b, texcache.ArchBlocking) }

// BenchmarkArchPrefetch times the prefetching pipeline's cycle loop.
func BenchmarkArchPrefetch(b *testing.B) { benchArch(b, texcache.ArchPrefetch) }
