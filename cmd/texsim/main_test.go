package main

import (
	"strings"
	"testing"

	"texcache"
)

// TestBuildRequest pins the flag → ExperimentRequest mapping and the
// shared validation path: the same api.Validate that gates texserve
// requests is what exits 2 here.
func TestBuildRequest(t *testing.T) {
	cases := []struct {
		name    string
		f       flags
		stdin   string
		wantErr string // substring of build or validation error; empty = valid
	}{
		{name: "defaults", f: flags{id: "all", scale: 2, grouped: true}},
		{name: "full size", f: flags{id: "fig5.2", scale: 1, workers: 8, renderW: 4, grouped: true}},
		// Scale 0 is the wire form's "use the default" (an omitted JSON
		// field), so it normalizes to the default rather than erroring.
		{name: "zero scale is default", f: flags{id: "all", scale: 0, grouped: true}},
		{name: "negative scale", f: flags{id: "all", scale: -3, grouped: true}, wantErr: "scale"},
		{name: "negative workers", f: flags{id: "all", scale: 2, workers: -1, grouped: true}, wantErr: "workers"},
		{name: "negative render workers", f: flags{id: "all", scale: 2, renderW: -2, grouped: true}, wantErr: "render_workers"},
		{name: "unknown experiment", f: flags{id: "bogus", scale: 2, grouped: true}, wantErr: "unknown experiment"},
		{name: "unknown scene", f: flags{id: "all", scale: 2, scenes: "nowhere", grouped: true}, wantErr: "unknown scene"},
		{name: "request file plus exp", f: flags{id: "all", scale: 2, grouped: true, requestFile: "-"}, wantErr: "-request"},
		{name: "request file plus arch", f: flags{arch: "both", scale: 2, grouped: true, requestFile: "-"}, wantErr: "-request"},
		{name: "arch request", f: flags{arch: "both", scenes: "goblet", scale: 2, grouped: true}},
		{name: "arch plus exp", f: flags{id: "all", arch: "both", scenes: "goblet", scale: 2, grouped: true}, wantErr: "-arch"},
		{name: "arch multi scene", f: flags{arch: "both", scenes: "town,guitar", scale: 2, grouped: true}, wantErr: "single"},
		{name: "arch no scene", f: flags{arch: "both", scale: 2, grouped: true}, wantErr: "scene"},
		{name: "arch bad pipeline", f: flags{arch: "warp", scenes: "goblet", scale: 2, grouped: true}, wantErr: "architecture.pipeline"},
		{name: "arch bad fifo", f: flags{arch: "both", scenes: "goblet", archFIFO: -1, scale: 2, grouped: true}, wantErr: "architecture.fragment_fifo"},
		{name: "request from stdin", f: flags{scale: 2, grouped: true, requestFile: "-"},
			stdin: `{"scene":"goblet","configs":[{"size_bytes":32768,"line_bytes":128,"ways":2}]}`},
		{name: "bad request json", f: flags{scale: 2, grouped: true, requestFile: "-"},
			stdin: `{"scene":`, wantErr: "parsing"},
		{name: "request bad config", f: flags{scale: 2, grouped: true, requestFile: "-"},
			stdin:   `{"scene":"goblet","configs":[{"size_bytes":100,"line_bytes":128,"ways":2}]}`,
			wantErr: "configs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := buildRequest(tc.f, strings.NewReader(tc.stdin))
			if err == nil {
				err = texcache.ValidateRequest(texcache.NormalizeRequest(req))
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("buildRequest(%+v) = %v, want nil", tc.f, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("buildRequest(%+v) = nil error, want one naming %q", tc.f, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}

// TestBuildRequestGrid pins the -grid/-shard/-coordinate/-prune flag
// surface: shape errors (malformed -shard syntax, flags without a grid)
// fail locally, range errors (i >= n, n < 1) flow through the same
// shared validator texserve uses, and both exit 2.
func TestBuildRequestGrid(t *testing.T) {
	const grid = `{"scenes":["town"],"configs":[{"size_bytes":2048,"ways":1,"line_bytes":64}]}`
	cases := []struct {
		name    string
		f       flags
		stdin   string
		wantErr string
	}{
		{name: "plain grid", f: flags{gridFile: "-", scale: 2, grouped: true}, stdin: grid},
		{name: "worker slice", f: flags{gridFile: "-", shard: "1/4", scale: 2, grouped: true}, stdin: grid},
		{name: "last slice", f: flags{gridFile: "-", shard: "3/4", scale: 2, grouped: true}, stdin: grid},
		{name: "coordinate", f: flags{gridFile: "-", coordinate: 2, scale: 2, grouped: true}, stdin: grid},
		{name: "prune with frontier", f: flags{gridFile: "-", prune: true, frontier: "f.ndjson", scale: 2, grouped: true}, stdin: grid},
		{name: "shard missing slash", f: flags{gridFile: "-", shard: "2", scale: 2, grouped: true}, stdin: grid, wantErr: "want i/n"},
		{name: "shard non-numeric", f: flags{gridFile: "-", shard: "a/b", scale: 2, grouped: true}, stdin: grid, wantErr: "bad index"},
		{name: "shard non-numeric count", f: flags{gridFile: "-", shard: "0/b", scale: 2, grouped: true}, stdin: grid, wantErr: "bad count"},
		{name: "shard zero count", f: flags{gridFile: "-", shard: "0/0", scale: 2, grouped: true}, stdin: grid, wantErr: "shard.count"},
		{name: "shard negative index", f: flags{gridFile: "-", shard: "-1/2", scale: 2, grouped: true}, stdin: grid, wantErr: "shard.index"},
		{name: "shard index at count", f: flags{gridFile: "-", shard: "2/2", scale: 2, grouped: true}, stdin: grid, wantErr: "shard.index"},
		{name: "shard index past count", f: flags{gridFile: "-", shard: "3/2", scale: 2, grouped: true}, stdin: grid, wantErr: "shard.index"},
		{name: "shard plus coordinate", f: flags{gridFile: "-", shard: "0/2", coordinate: 2, scale: 2, grouped: true}, stdin: grid, wantErr: "mutually exclusive"},
		{name: "shard without grid", f: flags{id: "all", shard: "0/2", scale: 2, grouped: true}, wantErr: "-shard needs a -grid"},
		{name: "coordinate without grid", f: flags{id: "all", coordinate: 2, scale: 2, grouped: true}, wantErr: "-coordinate needs a -grid"},
		{name: "prune without grid", f: flags{id: "all", prune: true, scale: 2, grouped: true}, wantErr: "-prune applies only"},
		{name: "frontier without grid", f: flags{id: "all", frontier: "f.ndjson", scale: 2, grouped: true}, wantErr: "-frontier applies only"},
		{name: "frontier without prune", f: flags{gridFile: "-", frontier: "f.ndjson", scale: 2, grouped: true}, stdin: grid, wantErr: "-frontier requires -prune"},
		{name: "negative coordinate", f: flags{gridFile: "-", coordinate: -1, scale: 2, grouped: true}, stdin: grid, wantErr: "-coordinate"},
		{name: "grid plus exp", f: flags{gridFile: "-", id: "all", scale: 2, grouped: true}, stdin: grid, wantErr: "-grid replaces"},
		{name: "grid plus arch", f: flags{gridFile: "-", arch: "both", scale: 2, grouped: true}, stdin: grid, wantErr: "-grid replaces"},
		{name: "grid plus request", f: flags{gridFile: "-", requestFile: "-", scale: 2, grouped: true}, stdin: grid, wantErr: "-grid replaces"},
		{name: "grid plus scenes", f: flags{gridFile: "-", scenes: "town", scale: 2, grouped: true}, stdin: grid, wantErr: "-grid replaces"},
		{name: "bad grid json", f: flags{gridFile: "-", scale: 2, grouped: true}, stdin: `{"scenes":`, wantErr: "parsing"},
		{name: "grid no configs", f: flags{gridFile: "-", scale: 2, grouped: true}, stdin: `{"scenes":["town"]}`, wantErr: "grid.configs"},
		{name: "grid unknown scene", f: flags{gridFile: "-", scale: 2, grouped: true},
			stdin: `{"scenes":["nowhere"],"configs":[{"size_bytes":2048,"ways":1,"line_bytes":64}]}`, wantErr: "grid.scenes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := buildRequest(tc.f, strings.NewReader(tc.stdin))
			if err == nil {
				err = texcache.ValidateRequest(texcache.NormalizeRequest(req))
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("buildRequest(%+v) = %v, want nil", tc.f, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("buildRequest(%+v) = nil error, want one naming %q", tc.f, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseShard pins the i/n syntax parser shared by workers and the
// coordinator's spawn loop.
func TestParseShard(t *testing.T) {
	sl, err := parseShard("3/8")
	if err != nil || sl.Index != 3 || sl.Count != 8 {
		t.Fatalf("parseShard(3/8) = %+v, %v", sl, err)
	}
	for _, bad := range []string{"", "3", "/", "x/2", "2/y", "1.5/4"} {
		if _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) = nil error, want parse failure", bad)
		}
	}
}

// TestBuildRequestMapping spot-checks field mapping details.
func TestBuildRequestMapping(t *testing.T) {
	req, err := buildRequest(flags{id: "fig5.2,fig5.7", scale: 4, scenes: "town,guitar", grouped: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(req.Experiments, "+"); got != "fig5.2+fig5.7" {
		t.Errorf("Experiments = %q", got)
	}
	if got := strings.Join(req.Scenes, "+"); got != "town+guitar" {
		t.Errorf("Scenes = %q", got)
	}
	if req.Scale != 4 {
		t.Errorf("Scale = %d, want 4", req.Scale)
	}
	if req.Sweep != texcache.RequestSweepPerConfig {
		t.Errorf("Sweep = %q, want per-config", req.Sweep)
	}
	ar, err := buildRequest(flags{arch: "prefetch", scenes: "goblet", archFIFO: 16, archLatency: 200, scale: 4, grouped: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Scene != "goblet" || len(ar.Scenes) != 0 {
		t.Errorf("arch request scene mapping: Scene=%q Scenes=%v", ar.Scene, ar.Scenes)
	}
	if ar.Architecture == nil || ar.Architecture.Pipeline != "prefetch" ||
		ar.Architecture.FragmentFIFO != 16 || ar.Architecture.FillLatency != 200 {
		t.Errorf("arch request block mapping: %+v", ar.Architecture)
	}
	all, err := buildRequest(flags{id: "all", scale: 2, grouped: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Experiments) != 0 {
		t.Errorf("-exp all should leave Experiments empty, got %v", all.Experiments)
	}
	if all.Sweep != "" {
		t.Errorf("grouped default should leave Sweep empty, got %q", all.Sweep)
	}
}
