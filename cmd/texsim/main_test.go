package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                    string
		scale, workers, renderW int
		wantErr                 string // substring; empty = valid
	}{
		{"defaults", 2, 0, 0, ""},
		{"full size", 1, 8, 4, ""},
		{"zero scale", 0, 0, 0, "-scale 0"},
		{"negative scale", -3, 0, 0, "-scale -3"},
		{"negative workers", 2, -1, 0, "-workers -1"},
		{"negative render workers", 2, 0, -2, "-render-workers -2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.scale, tc.workers, tc.renderW)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d, %d) = %v, want nil", tc.scale, tc.workers, tc.renderW, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%d, %d, %d) = nil, want error naming %q", tc.scale, tc.workers, tc.renderW, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}
