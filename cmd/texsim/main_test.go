package main

import (
	"strings"
	"testing"

	"texcache"
)

// TestBuildRequest pins the flag → ExperimentRequest mapping and the
// shared validation path: the same api.Validate that gates texserve
// requests is what exits 2 here.
func TestBuildRequest(t *testing.T) {
	cases := []struct {
		name    string
		f       flags
		stdin   string
		wantErr string // substring of build or validation error; empty = valid
	}{
		{name: "defaults", f: flags{id: "all", scale: 2, grouped: true}},
		{name: "full size", f: flags{id: "fig5.2", scale: 1, workers: 8, renderW: 4, grouped: true}},
		// Scale 0 is the wire form's "use the default" (an omitted JSON
		// field), so it normalizes to the default rather than erroring.
		{name: "zero scale is default", f: flags{id: "all", scale: 0, grouped: true}},
		{name: "negative scale", f: flags{id: "all", scale: -3, grouped: true}, wantErr: "scale"},
		{name: "negative workers", f: flags{id: "all", scale: 2, workers: -1, grouped: true}, wantErr: "workers"},
		{name: "negative render workers", f: flags{id: "all", scale: 2, renderW: -2, grouped: true}, wantErr: "render_workers"},
		{name: "unknown experiment", f: flags{id: "bogus", scale: 2, grouped: true}, wantErr: "unknown experiment"},
		{name: "unknown scene", f: flags{id: "all", scale: 2, scenes: "nowhere", grouped: true}, wantErr: "unknown scene"},
		{name: "request file plus exp", f: flags{id: "all", scale: 2, grouped: true, requestFile: "-"}, wantErr: "-request"},
		{name: "request file plus arch", f: flags{arch: "both", scale: 2, grouped: true, requestFile: "-"}, wantErr: "-request"},
		{name: "arch request", f: flags{arch: "both", scenes: "goblet", scale: 2, grouped: true}},
		{name: "arch plus exp", f: flags{id: "all", arch: "both", scenes: "goblet", scale: 2, grouped: true}, wantErr: "-arch"},
		{name: "arch multi scene", f: flags{arch: "both", scenes: "town,guitar", scale: 2, grouped: true}, wantErr: "single"},
		{name: "arch no scene", f: flags{arch: "both", scale: 2, grouped: true}, wantErr: "scene"},
		{name: "arch bad pipeline", f: flags{arch: "warp", scenes: "goblet", scale: 2, grouped: true}, wantErr: "architecture.pipeline"},
		{name: "arch bad fifo", f: flags{arch: "both", scenes: "goblet", archFIFO: -1, scale: 2, grouped: true}, wantErr: "architecture.fragment_fifo"},
		{name: "request from stdin", f: flags{scale: 2, grouped: true, requestFile: "-"},
			stdin: `{"scene":"goblet","configs":[{"size_bytes":32768,"line_bytes":128,"ways":2}]}`},
		{name: "bad request json", f: flags{scale: 2, grouped: true, requestFile: "-"},
			stdin: `{"scene":`, wantErr: "parsing"},
		{name: "request bad config", f: flags{scale: 2, grouped: true, requestFile: "-"},
			stdin:   `{"scene":"goblet","configs":[{"size_bytes":100,"line_bytes":128,"ways":2}]}`,
			wantErr: "configs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := buildRequest(tc.f, strings.NewReader(tc.stdin))
			if err == nil {
				err = texcache.ValidateRequest(texcache.NormalizeRequest(req))
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("buildRequest(%+v) = %v, want nil", tc.f, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("buildRequest(%+v) = nil error, want one naming %q", tc.f, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}

// TestBuildRequestMapping spot-checks field mapping details.
func TestBuildRequestMapping(t *testing.T) {
	req, err := buildRequest(flags{id: "fig5.2,fig5.7", scale: 4, scenes: "town,guitar", grouped: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(req.Experiments, "+"); got != "fig5.2+fig5.7" {
		t.Errorf("Experiments = %q", got)
	}
	if got := strings.Join(req.Scenes, "+"); got != "town+guitar" {
		t.Errorf("Scenes = %q", got)
	}
	if req.Scale != 4 {
		t.Errorf("Scale = %d, want 4", req.Scale)
	}
	if req.Sweep != texcache.RequestSweepPerConfig {
		t.Errorf("Sweep = %q, want per-config", req.Sweep)
	}
	ar, err := buildRequest(flags{arch: "prefetch", scenes: "goblet", archFIFO: 16, archLatency: 200, scale: 4, grouped: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Scene != "goblet" || len(ar.Scenes) != 0 {
		t.Errorf("arch request scene mapping: Scene=%q Scenes=%v", ar.Scene, ar.Scenes)
	}
	if ar.Architecture == nil || ar.Architecture.Pipeline != "prefetch" ||
		ar.Architecture.FragmentFIFO != 16 || ar.Architecture.FillLatency != 200 {
		t.Errorf("arch request block mapping: %+v", ar.Architecture)
	}
	all, err := buildRequest(flags{id: "all", scale: 2, grouped: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Experiments) != 0 {
		t.Errorf("-exp all should leave Experiments empty, got %v", all.Experiments)
	}
	if all.Sweep != "" {
		t.Errorf("grouped default should leave Sweep empty, got %q", all.Sweep)
	}
}
