// The -coordinate mode: fan a design-space grid out over n real texsim
// worker processes and merge their NDJSON streams back into the
// canonical unsharded order.
//
// Each worker runs `texsim -grid <file> -shard i/n` over the same grid
// file with every axis-affecting flag forwarded, so the n slices
// enumerate identically and partition the trace groups exactly. All
// workers share one content-addressed trace store (-trace-dir, a temp
// directory when the caller didn't name one): shard assignment is
// trace-affine, so each distinct trace is rendered by exactly one
// worker machine-wide, and a re-run against a warm store renders
// nothing at all. The coordinator k-way merges the worker streams by
// their trace-group tags and appends the Pareto frontier computed from
// the merged rows — byte-identical to a plain single-process
// `texsim -grid` run.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"

	"texcache"
)

// coordinate spawns f.coordinate worker processes over the validated
// grid request and merges their output onto stdout. Returns the process
// exit code.
func coordinate(ctx context.Context, f flags, req texcache.ExperimentRequest, traceDir string) int {
	n := f.coordinate

	tmp, err := os.MkdirTemp("", "texsim-coordinate-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(tmp)

	// Workers parse the same grid the coordinator validated; stdin grids
	// are materialized so every worker can read them.
	gridPath := filepath.Join(tmp, "grid.json")
	gridJSON, err := json.Marshal(req.Grid)
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(gridPath, gridJSON, 0o644); err != nil {
		return fail(err)
	}

	// The shared content-addressed store is what makes each trace render
	// exactly once machine-wide. A caller-named -trace-dir persists it
	// across runs; otherwise it lives and dies with the coordination.
	td := traceDir
	if td == "" {
		td = filepath.Join(tmp, "traces")
	}

	// Unless the caller pinned -workers, split the machine between the
	// worker processes instead of letting each assume it owns every CPU.
	workers := f.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0) / n
		if workers < 1 {
			workers = 1
		}
	}

	exe, err := os.Executable()
	if err != nil {
		return fail(err)
	}
	cmds := make([]*exec.Cmd, n)
	streams := make([]io.Reader, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-grid", gridPath,
			"-shard", fmt.Sprintf("%d/%d", i, n),
			"-scale", strconv.Itoa(req.Scale),
			"-trace-dir", td,
			"-workers", strconv.Itoa(workers),
		}
		if f.renderW != 0 {
			args = append(args, "-render-workers", strconv.Itoa(f.renderW))
		}
		if f.prune {
			args = append(args, "-prune")
			if f.frontier != "" {
				args = append(args, "-frontier", f.frontier)
			}
		}
		cmd := exec.CommandContext(ctx, exe, args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		cmds[i] = cmd
		streams[i] = pipe
	}
	for i, cmd := range cmds {
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:i] {
				c.Process.Kill()
				c.Wait()
			}
			return fail(err)
		}
	}

	traces, err := texcache.GridTraceCount(*req.Grid, req.Scale)
	if err != nil {
		return fail(err)
	}
	bw := bufio.NewWriter(os.Stdout)
	col := texcache.NewGridCollector()
	mergeErr := texcache.MergeGridStreams(io.MultiWriter(bw, col), streams, traces)

	var waitErr error
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil && waitErr == nil {
			waitErr = fmt.Errorf("worker %d/%d: %w", i, n, err)
		}
	}
	switch {
	case waitErr != nil:
		bw.Flush()
		return fail(waitErr)
	case mergeErr != nil:
		bw.Flush()
		return fail(mergeErr)
	}
	if err := col.WriteFrontier(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	return 0
}
