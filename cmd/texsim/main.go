// Command texsim regenerates the paper's tables and figures from fresh
// simulations of the four benchmark scenes.
//
// Usage:
//
//	texsim -list
//	texsim -exp fig5.2 -scale 2
//	texsim -exp all -scale 4 -scenes town,guitar
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"texcache/internal/exp"
)

func main() {
	var (
		id     = flag.String("exp", "", "experiment ID, or 'all'")
		scale  = flag.Int("scale", 2, "resolution divisor (1 = the paper's full size)")
		list   = flag.Bool("list", false, "list available experiments")
		scenes = flag.String("scenes", "", "comma-separated scene subset (default: each experiment's own)")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := exp.Config{Scale: *scale}
	if *scenes != "" {
		cfg.Scenes = strings.Split(*scenes, ",")
	}

	run := func(e exp.Experiment) error {
		start := time.Now()
		fmt.Printf("=== %s: %s (scale %d) ===\n", e.ID, e.Title, *scale)
		if err := e.Run(cfg, os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *id == "all" {
		for _, e := range exp.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "texsim:", err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := exp.Lookup(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "texsim: unknown experiment %q; try -list\n", *id)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "texsim:", err)
		os.Exit(1)
	}
}
