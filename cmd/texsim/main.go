// Command texsim regenerates the paper's tables and figures from fresh
// simulations of the four benchmark scenes.
//
// Experiments run concurrently through the texcache engine: each needed
// (scene, layout, traversal) trace is rendered exactly once across the
// batch, and multi-configuration sweeps replay each trace in a single
// pass. Output is re-serialized into the requested order, so it is
// byte-for-byte the serial output regardless of -workers.
//
// Usage:
//
//	texsim -list
//	texsim -exp fig5.2 -scale 2
//	texsim -exp all -scale 4 -scenes town,guitar -workers 8
//	texsim -exp fig6.2 -render-workers 4      # tile-parallel rendering
//	texsim -exp table7.1 -json            # NDJSON rows on stdout
//	texsim -exp all -metrics :8080        # expvar + pprof while running
//	texsim -exp all -cpuprofile cpu.out -memprofile mem.out
//	texsim -exp fig5.7 -grouped=false     # per-configuration sweep replay
//	texsim -exp all -trace-dir .traces    # persist renders across runs
//
// -trace-dir keeps every rendered texel trace in a content-addressed,
// checksummed store under the given directory (created if needed): a
// second run with the same flags loads the stored traces and skips
// rendering entirely. Entries are keyed by scene, scale, layout,
// traversal and trace-format version, so stale or corrupted files are
// simply regenerated; output is byte-identical with or without the
// store.
//
// Sweeps default to the grouped single-pass simulator (-grouped): every
// LRU configuration sharing a line size is answered from one walk of the
// trace. -grouped=false replays one cache per configuration instead; the
// output is bit-identical either way. -cpuprofile and -memprofile write
// runtime/pprof profiles covering the whole run.
//
// -json emits each experiment's tables as newline-delimited JSON objects
// (one per row/note, each stamped with its experiment ID) instead of the
// fixed-width text. -metrics serves /debug/vars and /debug/pprof on the
// given address for the duration of the run; pass :0 to pick a free
// port, printed on stderr. A summary of the run's metrics (experiments,
// renders, replayed addresses, timings) is printed to stderr at exit.
//
// SIGINT / SIGTERM cancel the batch; experiments stop between frames.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"texcache"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.String("exp", "", "experiment ID, comma-separated list, or 'all'")
		scale    = flag.Int("scale", 2, "resolution divisor (1 = the paper's full size)")
		list     = flag.Bool("list", false, "list available experiments")
		scenes   = flag.String("scenes", "", "comma-separated scene subset (default: each experiment's own)")
		workers  = flag.Int("workers", 0, "concurrent experiments (0 = GOMAXPROCS)")
		renderW  = flag.Int("render-workers", 0, "tile-parallel rasterization workers per render (0 = GOMAXPROCS, 1 = serial; traces are bit-identical at any setting)")
		jsonOut  = flag.Bool("json", false, "emit NDJSON rows on stdout instead of text tables")
		metrics  = flag.String("metrics", "", "serve /debug/vars and /debug/pprof on this address (e.g. :8080, :0)")
		progress = flag.Bool("progress", false, "print per-experiment completion lines on stderr")
		grouped  = flag.Bool("grouped", true, "answer each sweep's LRU configurations from one grouped trace walk (false = one cache per configuration; output is identical)")
		traceDir = flag.String("trace-dir", "", "persist rendered traces in this directory and reuse them across runs (output is identical)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if err := validateFlags(*scale, *workers, *renderW); err != nil {
		fmt.Fprintln(os.Stderr, "texsim:", err)
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "texsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "texsim:", err)
			}
		}()
	}

	if *list || *id == "" {
		fmt.Println("experiments:")
		for _, eid := range texcache.ExperimentIDs() {
			fmt.Printf("  %s\n", eid)
		}
		if *id == "" && !*list {
			return 2
		}
		return 0
	}

	// The CLI always collects metrics (the library itself stays no-op
	// unless attached); -metrics additionally serves them live.
	reg := texcache.NewMetricsRegistry()
	texcache.AttachMetrics(reg)
	defer texcache.DetachMetrics()
	if *metrics != "" {
		texcache.PublishMetricsExpvar("texcache", reg)
		srv, ln, err := texcache.ServeMetrics(*metrics)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "texsim: metrics at http://%s/debug/vars\n", ln.Addr())
	}

	cfg := texcache.ExperimentConfig{Scale: *scale, RenderWorkers: *renderW}
	if !*grouped {
		cfg.Sweep = texcache.SweepPerConfig
	}
	if *scenes != "" {
		cfg.Scenes = strings.Split(*scenes, ",")
	}

	var ids []string
	if *id != "all" {
		ids = strings.Split(*id, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []texcache.ExperimentOption{
		texcache.WithWorkers(*workers),
		texcache.WithRenderWorkers(*renderW),
	}
	if *traceDir != "" {
		opts = append(opts, texcache.WithTraceDir(*traceDir))
	}
	if *progress {
		opts = append(opts, texcache.WithProgress(func(p texcache.ExperimentProgress) {
			status := "ok"
			if p.Err != nil {
				status = p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "texsim: [%d/%d] %s %v (%s)\n",
				p.Completed, p.Total, p.ID, p.Elapsed.Round(time.Millisecond), status)
		}))
	}

	start := time.Now()
	results, err := texcache.RunExperiments(ctx, ids, cfg, opts...)
	if err != nil {
		return fail(err)
	}

	// Results arrive in completion order; buffer and print in request
	// order so the output is deterministic.
	if ids == nil {
		ids = texcache.ExperimentIDs()
	}
	pending := make(map[int]texcache.ExperimentResult, len(ids))
	next := 0
	var firstErr error
	flush := func(r texcache.ExperimentResult) {
		if *jsonOut {
			// Pure NDJSON on stdout: replay the recorded report through a
			// JSON reporter stamping every line with the experiment ID.
			if r.Report != nil {
				jr := texcache.NewJSONReporter(os.Stdout)
				jr.Exp = r.ID
				r.Report.Replay(jr)
				if err := jr.Err(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "texsim: %s: %v\n", r.ID, r.Err)
				if firstErr == nil {
					firstErr = r.Err
				}
			}
			return
		}
		fmt.Printf("=== %s: %s (scale %d) ===\n", r.ID, r.Title, *scale)
		os.Stdout.WriteString(r.Output)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "texsim: %s: %v\n", r.ID, r.Err)
			if firstErr == nil {
				firstErr = r.Err
			}
			return
		}
		fmt.Printf("--- %s done in %v ---\n\n", r.ID, r.Elapsed.Round(time.Millisecond))
	}
	for r := range results {
		pending[r.Index] = r
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			flush(r)
		}
	}
	fmt.Fprintf(os.Stderr, "texsim: summary: %s\n", reg.SummaryLine())
	if firstErr != nil {
		return fail(firstErr)
	}
	if !*jsonOut {
		fmt.Printf("=== %d experiments in %v ===\n", len(ids), time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// validateFlags rejects numeric flag values that would otherwise be
// silently clamped, with an error naming the flag and the accepted
// range.
func validateFlags(scale, workers, renderWorkers int) error {
	if scale < 1 {
		return fmt.Errorf("-scale %d: must be >= 1 (1 = the paper's full size)", scale)
	}
	if workers < 0 {
		return fmt.Errorf("-workers %d: must be >= 0 (0 = GOMAXPROCS)", workers)
	}
	if renderWorkers < 0 {
		return fmt.Errorf("-render-workers %d: must be >= 0 (0 = GOMAXPROCS)", renderWorkers)
	}
	return nil
}

// fail prints err in the friendliest applicable form and returns the
// process exit code.
func fail(err error) int {
	var (
		ce *texcache.ConfigError
		ue *texcache.UnknownExperimentError
		se *texcache.UnknownSceneError
	)
	switch {
	case errors.As(err, &ce):
		fmt.Fprintf(os.Stderr, "texsim: bad cache configuration: %s\n", ce.Reason)
		fmt.Fprintf(os.Stderr, "  (size=%dB line=%dB ways=%d)\n",
			ce.Config.SizeBytes, ce.Config.LineBytes, ce.Config.Ways)
		return 1
	case errors.As(err, &ue):
		fmt.Fprintf(os.Stderr, "texsim: unknown experiment %q; try -list\n", ue.ID)
		return 2
	case errors.As(err, &se):
		fmt.Fprintf(os.Stderr, "texsim: unknown scene %q (want flight, town, guitar or goblet)\n", se.Name)
		return 2
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "texsim: interrupted")
		return 1
	default:
		fmt.Fprintln(os.Stderr, "texsim:", err)
		return 1
	}
}
