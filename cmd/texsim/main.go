// Command texsim regenerates the paper's tables and figures from fresh
// simulations of the four benchmark scenes.
//
// Every invocation builds one texcache.ExperimentRequest — the same
// versioned struct the texserve server accepts over HTTP — validates it
// through the shared request validator, and runs it through the engine.
// Experiments run concurrently: each needed (scene, layout, traversal)
// trace is rendered exactly once across the batch, and
// multi-configuration sweeps replay each trace in a single pass. Output
// is re-serialized into the requested order, so it is byte-for-byte the
// serial output regardless of -workers.
//
// Usage:
//
//	texsim -list
//	texsim -exp fig5.2 -scale 2
//	texsim -exp all -scale 4 -scenes town,guitar -workers 8
//	texsim -exp fig6.2 -render-workers 4      # tile-parallel rendering
//	texsim -exp table7.1 -json            # NDJSON rows on stdout
//	texsim -exp all -metrics :8080        # expvar + pprof while running
//	texsim -exp all -cpuprofile cpu.out -memprofile mem.out
//	texsim -exp fig5.7 -grouped=false     # per-configuration sweep replay
//	texsim -exp all -trace-dir .traces    # persist renders across runs
//	texsim -request sweep.json -json      # run a wire-form request file
//	texsim -arch both -scenes goblet -scale 4   # cycle-level pipelines
//
// -arch compares the cycle-level texture-unit architectures (the Igehy
// et al. 1998 prefetching pipeline and/or the blocking baseline) over a
// single scene named by -scenes, instead of running registered
// experiments; -arch-fifo and -arch-latency override the paper-default
// fragment FIFO depth and memory fill latency (0 keeps the defaults).
//
// -request reads a JSON texcache.ExperimentRequest from the given file
// ("-" for stdin) — the exact body texserve accepts — so any request a
// client would POST can be reproduced locally; the output is
// byte-identical to the server's NDJSON stream for the same request.
// The experiment-selection flags (-exp, -scenes, -scale, -workers,
// -render-workers, -grouped) are rejected alongside -request: the file
// is the whole request.
//
// -grid runs a design-space cross-product from a JSON file ("-" for
// stdin) naming scene/scale/layout/traversal/config axes; output is
// always NDJSON — one row per (trace, config) unit with its classified
// misses and hardware cost, then the Pareto frontier of miss rate
// against cost ("exp":"pareto" lines). -coordinate n fans the grid out
// over n worker processes sharing one trace store and merges their
// streams byte-identically to the single-process run; -shard i/n runs
// one worker's deterministic slice alone, emitting rows only. -prune
// skips design points provably dominated on the measured plane (the
// frontier never changes), and -frontier FILE persists measured points
// so later runs prune against them.
//
//	texsim -grid grid.json                      # whole grid, one process
//	texsim -grid grid.json -coordinate 4 -trace-dir .traces
//	texsim -grid grid.json -shard 0/4 -trace-dir .traces
//	texsim -grid grid.json -prune -frontier frontier.ndjson
//
// -trace-dir keeps every rendered texel trace in a content-addressed,
// checksummed store under the given directory (created if needed): a
// second run with the same flags loads the stored traces and skips
// rendering entirely. Entries are keyed by scene, scale, layout,
// traversal and trace-format version, so stale or corrupted files are
// simply regenerated; output is byte-identical with or without the
// store.
//
// -result-dir adds the tier above that for -json runs: the finished
// NDJSON stream itself is stored content-addressed (keyed by the
// canonical request plus the API, trace-codec and result-format
// versions), so repeating the same request replays stored bytes in
// microseconds instead of re-simulating — byte-identical output either
// way. Grid requests always simulate: with -prune their row set depends
// on the accumulated frontier, so they bypass the result cache.
//
//	texsim -exp all -json -result-dir .results  # warm repeats are instant
//
// Sweeps default to the grouped single-pass simulator (-grouped): every
// LRU configuration sharing a line size is answered from one walk of the
// trace. -grouped=false replays one cache per configuration instead; the
// output is bit-identical either way. -cpuprofile and -memprofile write
// runtime/pprof profiles covering the whole run.
//
// -json emits each experiment's tables as newline-delimited JSON objects
// (one per row/note, each stamped with its experiment ID) instead of the
// fixed-width text. -metrics serves /debug/vars and /debug/pprof on the
// given address for the duration of the run; pass :0 to pick a free
// port, printed on stderr. A summary of the run's metrics (experiments,
// renders, replayed addresses, timings) is printed to stderr at exit.
//
// Invalid requests (bad scale, unknown experiment or scene, malformed
// request file) exit 2 before any work starts. SIGINT / SIGTERM cancel
// the batch; experiments stop between frames.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"texcache"
)

func main() {
	os.Exit(run())
}

// flags bundles the command line for request building and testing.
type flags struct {
	id          string
	scale       int
	scenes      string
	workers     int
	renderW     int
	grouped     bool
	requestFile string
	arch        string
	archFIFO    int
	archLatency int
	gridFile    string
	shard       string
	coordinate  int
	prune       bool
	frontier    string
}

// parseShard parses the -shard i/n worker-slice syntax. Range errors
// (i >= n, n < 1) are left to the shared request validator so the CLI
// and the server reject them identically.
func parseShard(s string) (texcache.RequestShard, error) {
	iStr, nStr, ok := strings.Cut(s, "/")
	if !ok {
		return texcache.RequestShard{}, fmt.Errorf("-shard %q: want i/n (e.g. 0/4)", s)
	}
	i, err := strconv.Atoi(iStr)
	if err != nil {
		return texcache.RequestShard{}, fmt.Errorf("-shard %q: bad index: %v", s, err)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		return texcache.RequestShard{}, fmt.Errorf("-shard %q: bad count: %v", s, err)
	}
	return texcache.RequestShard{Index: i, Count: n}, nil
}

// buildRequest maps the experiment-selection flags onto the shared
// request struct, or loads the wire form from -request. The returned
// request is exactly what texcache.Run (and texserve) consume; all
// validation happens in the shared api validator, not here.
func buildRequest(f flags, stdin io.Reader) (texcache.ExperimentRequest, error) {
	if f.gridFile == "" {
		switch {
		case f.shard != "":
			return texcache.ExperimentRequest{}, errors.New("-shard needs a -grid to slice")
		case f.coordinate != 0:
			return texcache.ExperimentRequest{}, errors.New("-coordinate needs a -grid to fan out")
		case f.prune:
			return texcache.ExperimentRequest{}, errors.New("-prune applies only to -grid runs")
		case f.frontier != "":
			return texcache.ExperimentRequest{}, errors.New("-frontier applies only to -grid runs")
		}
	}
	if f.gridFile != "" {
		if f.id != "" || f.arch != "" || f.requestFile != "" || f.scenes != "" {
			return texcache.ExperimentRequest{}, errors.New("-grid replaces -exp/-scenes/-arch/-request; the grid file names its own axes")
		}
		if f.frontier != "" && !f.prune {
			return texcache.ExperimentRequest{}, errors.New("-frontier requires -prune")
		}
		if f.coordinate < 0 {
			return texcache.ExperimentRequest{}, fmt.Errorf("-coordinate %d: worker count must be >= 1", f.coordinate)
		}
		r := stdin
		if f.gridFile != "-" {
			file, err := os.Open(f.gridFile)
			if err != nil {
				return texcache.ExperimentRequest{}, err
			}
			defer file.Close()
			r = file
		}
		var grid texcache.RequestGrid
		if err := json.NewDecoder(r).Decode(&grid); err != nil {
			return texcache.ExperimentRequest{}, fmt.Errorf("parsing %s: %w", f.gridFile, err)
		}
		req := texcache.ExperimentRequest{
			Scale:         f.scale,
			Workers:       f.workers,
			RenderWorkers: f.renderW,
			Grid:          &grid,
		}
		if f.shard != "" {
			if f.coordinate != 0 {
				return texcache.ExperimentRequest{}, errors.New("-shard and -coordinate are mutually exclusive: the coordinator assigns shards itself")
			}
			sl, err := parseShard(f.shard)
			if err != nil {
				return texcache.ExperimentRequest{}, err
			}
			req.Shard = &sl
		}
		return req, nil
	}
	if f.requestFile != "" {
		if f.id != "" || f.scenes != "" || f.arch != "" {
			return texcache.ExperimentRequest{}, errors.New("-request replaces -exp/-scenes/-arch; drop them")
		}
		r := stdin
		if f.requestFile != "-" {
			file, err := os.Open(f.requestFile)
			if err != nil {
				return texcache.ExperimentRequest{}, err
			}
			defer file.Close()
			r = file
		}
		var req texcache.ExperimentRequest
		dec := json.NewDecoder(r)
		if err := dec.Decode(&req); err != nil {
			return texcache.ExperimentRequest{}, fmt.Errorf("parsing %s: %w", f.requestFile, err)
		}
		return req, nil
	}
	req := texcache.ExperimentRequest{
		Scale:         f.scale,
		Workers:       f.workers,
		RenderWorkers: f.renderW,
	}
	if f.arch != "" {
		if f.id != "" {
			return texcache.ExperimentRequest{}, errors.New("-arch replaces -exp; drop one")
		}
		if strings.Contains(f.scenes, ",") {
			return texcache.ExperimentRequest{}, errors.New("-arch compares pipelines over one scene; give -scenes a single name")
		}
		req.Scene = f.scenes
		req.Architecture = &texcache.RequestArchitecture{
			Pipeline:     f.arch,
			FragmentFIFO: f.archFIFO,
			FillLatency:  f.archLatency,
		}
		return req, nil
	}
	if f.id != "all" {
		req.Experiments = strings.Split(f.id, ",")
	}
	if f.scenes != "" {
		req.Scenes = strings.Split(f.scenes, ",")
	}
	if !f.grouped {
		req.Sweep = texcache.RequestSweepPerConfig
	}
	return req, nil
}

func run() int {
	var f flags
	flag.StringVar(&f.id, "exp", "", "experiment ID, comma-separated list, or 'all'")
	flag.IntVar(&f.scale, "scale", 2, "resolution divisor (1 = the paper's full size)")
	list := flag.Bool("list", false, "list available experiments")
	flag.StringVar(&f.scenes, "scenes", "", "comma-separated scene subset (default: each experiment's own)")
	flag.IntVar(&f.workers, "workers", 0, "concurrent experiments (0 = GOMAXPROCS)")
	flag.IntVar(&f.renderW, "render-workers", 0, "tile-parallel rasterization workers per render (0 = GOMAXPROCS, 1 = serial; traces are bit-identical at any setting)")
	jsonOut := flag.Bool("json", false, "emit NDJSON rows on stdout instead of text tables")
	metrics := flag.String("metrics", "", "serve /debug/vars and /debug/pprof on this address (e.g. :8080, :0)")
	progress := flag.Bool("progress", false, "print per-experiment completion lines on stderr")
	flag.BoolVar(&f.grouped, "grouped", true, "answer each sweep's LRU configurations from one grouped trace walk (false = one cache per configuration; output is identical)")
	flag.StringVar(&f.requestFile, "request", "", "run a JSON ExperimentRequest from this file ('-' = stdin), the texserve wire form")
	flag.StringVar(&f.arch, "arch", "", "compare cycle-level texture-unit pipelines (blocking, prefetch or both) over the single -scenes scene")
	flag.IntVar(&f.archFIFO, "arch-fifo", 0, "fragment FIFO depth in fragments for -arch (0 = the paper's 64)")
	flag.IntVar(&f.archLatency, "arch-latency", 0, "memory fill latency in cycles for -arch (0 = the paper's 100)")
	flag.StringVar(&f.gridFile, "grid", "", "run a design-space grid from this JSON file ('-' = stdin): axes scenes/scales/layouts/traversals/configs, output is NDJSON rows plus a Pareto frontier")
	flag.StringVar(&f.shard, "shard", "", "run only this worker slice of the -grid, as i/n (e.g. 2/8); rows only, no frontier")
	flag.IntVar(&f.coordinate, "coordinate", 0, "spawn this many texsim worker processes over the -grid, sharing one trace store, and merge their streams into the canonical order")
	flag.BoolVar(&f.prune, "prune", false, "skip -grid design points provably dominated on the miss-rate/cost frontier (the reported frontier is identical)")
	flag.StringVar(&f.frontier, "frontier", "", "persist measured frontier points in this NDJSON file across -prune runs (requires -prune)")
	traceDir := flag.String("trace-dir", "", "persist rendered traces in this directory and reuse them across runs (output is identical)")
	resultDir := flag.String("result-dir", "", "persist finished -json result streams in this directory and serve repeat runs from it without re-simulating (output is byte-identical; grid requests always simulate)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	// Grid-only flags without -grid are not "no work": fall through so
	// buildRequest can say which flag needs the -grid.
	noWork := f.id == "" && f.requestFile == "" && f.arch == "" && f.gridFile == "" &&
		f.shard == "" && f.coordinate == 0 && !f.prune && f.frontier == ""
	if *list || noWork {
		fmt.Println("experiments:")
		for _, eid := range texcache.ExperimentIDs() {
			fmt.Printf("  %s\n", eid)
		}
		if noWork && !*list {
			return 2
		}
		return 0
	}

	req, err := buildRequest(f, os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texsim:", err)
		return 2
	}
	// One shared validation path with texserve and the library: an
	// invalid request exits 2 here exactly as it would 400 there.
	if err := texcache.ValidateRequest(texcache.NormalizeRequest(req)); err != nil {
		fmt.Fprintln(os.Stderr, "texsim:", err)
		return 2
	}

	if f.coordinate > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		return coordinate(ctx, f, texcache.NormalizeRequest(req), *traceDir)
	}

	if *cpuProf != "" {
		file, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		defer file.Close()
		if err := pprof.StartCPUProfile(file); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			file, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "texsim:", err)
				return
			}
			defer file.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(file); err != nil {
				fmt.Fprintln(os.Stderr, "texsim:", err)
			}
		}()
	}

	// The CLI always collects metrics (the library itself stays no-op
	// unless attached); -metrics additionally serves them live.
	reg := texcache.NewMetricsRegistry()
	texcache.AttachMetrics(reg)
	defer texcache.DetachMetrics()
	if *metrics != "" {
		texcache.PublishMetricsExpvar("texcache", reg)
		srv, ln, err := texcache.ServeMetrics(*metrics)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "texsim: metrics at http://%s/debug/vars\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var opts []texcache.ExperimentOption
	if *traceDir != "" {
		opts = append(opts, texcache.WithTraceDir(*traceDir))
	}
	if *resultDir != "" {
		// Consulted only on the NDJSON-serving path (-json, non-grid):
		// the result cache stores finished NDJSON streams, so text tables
		// and frontier-dependent grid runs always simulate.
		opts = append(opts, texcache.WithResultDir(*resultDir))
	}
	if f.prune {
		opts = append(opts, texcache.WithPruning(true))
		if f.frontier != "" {
			opts = append(opts, texcache.WithFrontierFile(f.frontier))
		}
	}
	if *progress {
		opts = append(opts, texcache.WithProgress(func(p texcache.ExperimentProgress) {
			status := "ok"
			if p.Err != nil {
				status = p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "texsim: [%d/%d] %s %v (%s)\n",
				p.Completed, p.Total, p.ID, p.Elapsed.Round(time.Millisecond), status)
		}))
	}

	start := time.Now()
	if req.Grid == nil && *jsonOut {
		// Pure NDJSON on stdout, the exact bytes texserve streams for
		// this request, served through the result cache when -result-dir
		// is set: a warm repeat writes the stored stream without
		// simulating. Failures go to stderr only.
		firstErr := texcache.RunNDJSON(ctx, req, os.Stdout, func(r texcache.ExperimentResult) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "texsim: %s: %v\n", r.ID, r.Err)
			}
		}, opts...)
		fmt.Fprintf(os.Stderr, "texsim: summary: %s\n", reg.SummaryLine())
		if firstErr != nil {
			return fail(firstErr)
		}
		return 0
	}

	results, err := texcache.Run(ctx, req, opts...)
	if err != nil {
		return fail(err)
	}

	var firstErr error
	if req.Grid != nil {
		// Grid output is always NDJSON. A full (unsharded) run owns the
		// whole view, so it tees the stream through a collector and
		// appends the Pareto frontier; a -shard worker emits rows only —
		// the coordinator appends the frontier after its merge, from the
		// same collector logic, which keeps the bytes identical.
		var out io.Writer = os.Stdout
		var col *texcache.GridCollector
		if req.Shard == nil {
			col = texcache.NewGridCollector()
			out = io.MultiWriter(os.Stdout, col)
		}
		firstErr = texcache.WriteResultsNDJSON(out, results, func(r texcache.ExperimentResult) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "texsim: %s: %v\n", r.ID, r.Err)
			}
		})
		if col != nil && firstErr == nil {
			firstErr = col.WriteFrontier(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "texsim: summary: %s\n", reg.SummaryLine())
		if firstErr != nil {
			return fail(firstErr)
		}
		return 0
	}
	// Results arrive in completion order; buffer and print in request
	// order so the output is deterministic.
	done := 0
	flush := func(r texcache.ExperimentResult) {
		done++
		fmt.Printf("=== %s: %s (scale %d) ===\n", r.ID, r.Title, texcache.NormalizeRequest(req).Scale)
		os.Stdout.WriteString(r.Output)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "texsim: %s: %v\n", r.ID, r.Err)
			if firstErr == nil {
				firstErr = r.Err
			}
			return
		}
		fmt.Printf("--- %s done in %v ---\n\n", r.ID, r.Elapsed.Round(time.Millisecond))
	}
	pending := map[int]texcache.ExperimentResult{}
	next := 0
	for r := range results {
		pending[r.Index] = r
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			flush(r)
		}
	}
	fmt.Fprintf(os.Stderr, "texsim: summary: %s\n", reg.SummaryLine())
	if firstErr != nil {
		return fail(firstErr)
	}
	fmt.Printf("=== %d experiments in %v ===\n", done, time.Since(start).Round(time.Millisecond))
	return 0
}

// fail prints err in the friendliest applicable form and returns the
// process exit code.
func fail(err error) int {
	var (
		ce *texcache.ConfigError
		ue *texcache.UnknownExperimentError
		se *texcache.UnknownSceneError
		re *texcache.RequestError
	)
	switch {
	case errors.As(err, &ce):
		fmt.Fprintf(os.Stderr, "texsim: bad cache configuration: %s\n", ce.Reason)
		fmt.Fprintf(os.Stderr, "  (size=%dB line=%dB ways=%d)\n",
			ce.Config.SizeBytes, ce.Config.LineBytes, ce.Config.Ways)
		return 1
	case errors.As(err, &ue):
		fmt.Fprintf(os.Stderr, "texsim: unknown experiment %q; try -list\n", ue.ID)
		return 2
	case errors.As(err, &se):
		fmt.Fprintf(os.Stderr, "texsim: unknown scene %q (want flight, town, guitar or goblet)\n", se.Name)
		return 2
	case errors.As(err, &re):
		fmt.Fprintf(os.Stderr, "texsim: invalid request: %v\n", re)
		return 2
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "texsim: interrupted")
		return 1
	default:
		fmt.Fprintln(os.Stderr, "texsim:", err)
		return 1
	}
}
