// Command benchjson parses `go test -bench` output from stdin into a
// stable JSON document for regression tracking:
//
//	go test -bench 'Sweep' -benchmem . | benchjson -o BENCH_engine.json
//
// Each benchmark line becomes one object with its run count, ns/op and
// any extra metrics (B/op, allocs/op, custom ReportMetric units). The
// goos/goarch/pkg header lines are carried through as context. Unparsed
// lines are ignored, so PASS/ok trailers and test log noise are safe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Runs is the iteration count the harness settled on.
	Runs int64 `json:"runs"`
	// NsPerOp is the headline nanoseconds-per-iteration figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional "value unit" pair on the line
	// (B/op, allocs/op, fragments/s, ...), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parse consumes go test -bench output, passing it through to stderr is
// the caller's job (tee) — here we only extract.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkSerialSweep-8   493   5112379 ns/op   160 B/op   2 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix if it is purely numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Runs: runs}
	// The rest of the line is "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}
