// Command benchdiff compares two benchjson documents and fails when a
// gated benchmark's ns/op regressed past a threshold:
//
//	go test -bench 'Sweep' . | benchjson -o /tmp/bench.json
//	benchdiff BENCH_engine.json /tmp/bench.json
//
// Every benchmark present in both documents is listed with its delta.
// Benchmarks matching the -gate expression are enforced: a new ns/op
// more than -threshold percent above the old one exits non-zero, so a
// committed baseline turns into a regression gate (`make bench-diff`).
// Benchmarks present on only one side are reported but never fail —
// baselines grow as benchmarks are added.
//
// With -server the inputs are flat metric maps instead (the
// BENCH_server.json shape `make bench-server` records): every numeric
// metric present on both sides is listed, and the throughput gates —
// cold_rps, warm_rps, warm_over_cold_speedup, where bigger is better —
// fail when the new value drops more than -threshold percent below the
// baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// defaultGate matches the engine's hot-path benchmarks — the ones whose
// speedups the bench-check gates enforce, so a silent slowdown there
// undermines a recorded performance claim.
const defaultGate = `^(SerialSweep|EngineSweep|GroupedSweep|CacheAccess|CacheAccessBatch|CacheAccessClassifying|StackDist|StackDistBatch|TraceGenSerial|TraceGenParallel|TraceEncode|TraceDecode|ResultCacheWarm)$`

// Benchmark mirrors benchjson's per-benchmark object.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc mirrors benchjson's output document.
type Doc struct {
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	threshold := flag.Float64("threshold", 15, "max allowed ns/op regression, percent")
	gate := flag.String("gate", defaultGate, "regexp of benchmark names the threshold applies to")
	server := flag.Bool("server", false, "diff flat server metric maps (BENCH_server.json) instead of benchjson documents")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *server {
		oldM, err := readFlat(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		curM, err := readFlat(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		regressions := diffServer(os.Stdout, oldM, curM, *threshold)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d gated server metric(s) regressed more than %.0f%%:\n", len(regressions), *threshold)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		return
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -gate:", err)
		os.Exit(2)
	}
	old, err := readDoc(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, err := readDoc(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	regressions := diff(os.Stdout, old, cur, gateRe, *threshold)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d gated benchmark(s) regressed more than %.0f%%:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

// serverGates are the BENCH_server.json metrics the threshold enforces.
// All are throughputs or speedups: bigger is better, so a regression is
// the new value falling below the baseline.
var serverGates = []string{"cold_rps", "warm_rps", "warm_over_cold_speedup"}

// readFlat loads a flat JSON object, keeping its numeric fields.
func readFlat(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			m[k] = f
		}
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no numeric metrics", path)
	}
	return m, nil
}

// diffServer prints the server-metric comparison and returns every
// gated metric that dropped more than threshold percent.
func diffServer(w io.Writer, old, cur map[string]float64, threshold float64) []string {
	gated := make(map[string]bool, len(serverGates))
	for _, g := range serverGates {
		gated[g] = true
	}
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		o, ok := old[k]
		if !ok {
			fmt.Fprintf(w, "%-24s %14s -> %12.2f  (new)\n", k, "-", cur[k])
			continue
		}
		c := cur[k]
		var pct float64
		if o != 0 {
			pct = (c/o - 1) * 100
		}
		mark := ""
		if gated[k] {
			mark = "  [gated]"
			if o > 0 && pct < -threshold {
				mark = "  [REGRESSED]"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f -> %.2f (%+.1f%%)", k, o, c, pct))
			}
		}
		fmt.Fprintf(w, "%-24s %12.2f -> %12.2f  %+6.1f%%%s\n", k, o, c, pct, mark)
	}
	var gone []string
	for k := range old {
		if _, ok := cur[k]; !ok {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		fmt.Fprintf(w, "%-24s %12.2f -> %14s          (missing from new run)\n", k, old[k], "-")
	}
	return regressions
}

func readDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &d, nil
}

// diff prints the comparison table and returns a description of every
// gated benchmark whose ns/op regressed past threshold percent.
func diff(w io.Writer, old, cur *Doc, gate *regexp.Regexp, threshold float64) []string {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	var regressions []string
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		o, ok := oldBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %14s -> %12.0f ns/op  (new)\n", b.Name, "-", b.NsPerOp)
			continue
		}
		if o.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		pct := (b.NsPerOp/o.NsPerOp - 1) * 100
		gated := gate.MatchString(b.Name)
		mark := ""
		if gated {
			mark = "  [gated]"
			if pct > threshold {
				mark = "  [REGRESSED]"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", b.Name, o.NsPerOp, b.NsPerOp, pct))
			}
		}
		fmt.Fprintf(w, "%-28s %12.0f -> %12.0f ns/op  %+6.1f%%%s\n", b.Name, o.NsPerOp, b.NsPerOp, pct, mark)
	}
	var gone []string
	for name := range oldBy {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-28s %12.0f -> %14s          (missing from new run)\n", name, oldBy[name].NsPerOp, "-")
	}
	return regressions
}
