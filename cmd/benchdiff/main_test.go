package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func doc(pairs ...any) *Doc {
	d := &Doc{}
	for i := 0; i+1 < len(pairs); i += 2 {
		d.Benchmarks = append(d.Benchmarks, Benchmark{
			Name:    pairs[i].(string),
			NsPerOp: float64(pairs[i+1].(int)),
		})
	}
	return d
}

func runDiff(t *testing.T, old, cur *Doc) (string, []string) {
	t.Helper()
	var sb strings.Builder
	regs := diff(&sb, old, cur, regexp.MustCompile(defaultGate), 15)
	return sb.String(), regs
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := doc("GroupedSweep", 1000, "CacheAccess", 100)
	cur := doc("GroupedSweep", 1100, "CacheAccess", 90) // +10%, -10%
	out, regs := runDiff(t, old, cur)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v\n%s", regs, out)
	}
	if !strings.Contains(out, "[gated]") {
		t.Errorf("gated benchmarks not marked:\n%s", out)
	}
}

func TestDiffFailsPastThreshold(t *testing.T) {
	old := doc("GroupedSweep", 1000, "CacheAccessBatch", 100)
	cur := doc("GroupedSweep", 1200, "CacheAccessBatch", 101) // +20%, +1%
	out, regs := runDiff(t, old, cur)
	if len(regs) != 1 || !strings.Contains(regs[0], "GroupedSweep") {
		t.Fatalf("want one GroupedSweep regression, got %v\n%s", regs, out)
	}
	if !strings.Contains(out, "[REGRESSED]") {
		t.Errorf("regression not marked in table:\n%s", out)
	}
}

func TestDiffIgnoresUngatedRegression(t *testing.T) {
	old := doc("Fig5_2", 1000)
	cur := doc("Fig5_2", 2000) // +100%, but not a gated hot path
	_, regs := runDiff(t, old, cur)
	if len(regs) != 0 {
		t.Fatalf("ungated benchmark failed the gate: %v", regs)
	}
}

func TestDiffNewAndMissingBenchmarks(t *testing.T) {
	old := doc("CacheAccess", 100, "OldOnly", 50)
	cur := doc("CacheAccess", 100, "StackDistBatch", 80)
	out, regs := runDiff(t, old, cur)
	if len(regs) != 0 {
		t.Fatalf("presence changes must not fail the gate: %v", regs)
	}
	if !strings.Contains(out, "(new)") || !strings.Contains(out, "missing from new run") {
		t.Errorf("presence changes not reported:\n%s", out)
	}
}

func TestDefaultGateCoversBenchCheckPaths(t *testing.T) {
	re := regexp.MustCompile(defaultGate)
	for _, name := range []string{
		"SerialSweep", "GroupedSweep", "EngineSweep",
		"CacheAccess", "CacheAccessBatch", "StackDist", "StackDistBatch",
		"TraceGenSerial", "TraceGenParallel", "ResultCacheWarm",
	} {
		if !re.MatchString(name) {
			t.Errorf("default gate does not cover %s", name)
		}
	}
	for _, name := range []string{"Fig5_2", "TraceStoreCold", "EngineBatch", "ResultCacheCold"} {
		if re.MatchString(name) {
			t.Errorf("default gate unexpectedly covers %s", name)
		}
	}
}

// TestDiffServer drives the -server flat-metric mode: throughput gates
// are bigger-is-better, latency metrics report but never fail, new and
// missing metrics are listed.
func TestDiffServer(t *testing.T) {
	old := map[string]float64{
		"cold_rps": 60, "warm_rps": 170, "warm_over_cold_speedup": 2.8,
		"warm_p99_ms": 100, "gone_metric": 1,
	}
	cur := map[string]float64{
		"cold_rps": 58, "warm_rps": 180, "warm_over_cold_speedup": 3.1,
		"warm_p99_ms": 500, "new_metric": 1,
	}
	var sb strings.Builder
	regs := diffServer(&sb, old, cur, 15)
	out := sb.String()
	if len(regs) != 0 {
		t.Fatalf("within-threshold diff regressed: %v\n%s", regs, out)
	}
	for _, want := range []string{"[gated]", "(new)", "(missing from new run)"} {
		if !strings.Contains(out, want) {
			t.Errorf("server diff output missing %q:\n%s", want, out)
		}
	}
	// warm_p99_ms quintupled but is not gated: still no failure above.

	cur["warm_rps"] = 100 // -41%: past the 15% gate
	regs = diffServer(&sb, old, cur, 15)
	if len(regs) != 1 || !strings.Contains(regs[0], "warm_rps") {
		t.Fatalf("want one warm_rps regression, got %v", regs)
	}
	// A throughput gain is never a regression, no matter how large.
	cur["warm_rps"] = 1000
	if regs := diffServer(&sb, old, cur, 15); len(regs) != 0 {
		t.Fatalf("throughput gain flagged as regression: %v", regs)
	}
}

// TestReadFlat pins the flat-map loader against the recorded
// BENCH_server.json shape.
func TestReadFlat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.json")
	if err := os.WriteFile(path, []byte(`{"cold_rps": 60.5, "note": "text", "warm_renders": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := readFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if m["cold_rps"] != 60.5 || len(m) != 2 {
		t.Errorf("readFlat = %v, want cold_rps and warm_renders only", m)
	}
	if err := os.WriteFile(path, []byte(`{"note": "text"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readFlat(path); err == nil {
		t.Error("all-text map should fail: nothing to compare")
	}
}
