package main

import (
	"regexp"
	"strings"
	"testing"
)

func doc(pairs ...any) *Doc {
	d := &Doc{}
	for i := 0; i+1 < len(pairs); i += 2 {
		d.Benchmarks = append(d.Benchmarks, Benchmark{
			Name:    pairs[i].(string),
			NsPerOp: float64(pairs[i+1].(int)),
		})
	}
	return d
}

func runDiff(t *testing.T, old, cur *Doc) (string, []string) {
	t.Helper()
	var sb strings.Builder
	regs := diff(&sb, old, cur, regexp.MustCompile(defaultGate), 15)
	return sb.String(), regs
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := doc("GroupedSweep", 1000, "CacheAccess", 100)
	cur := doc("GroupedSweep", 1100, "CacheAccess", 90) // +10%, -10%
	out, regs := runDiff(t, old, cur)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v\n%s", regs, out)
	}
	if !strings.Contains(out, "[gated]") {
		t.Errorf("gated benchmarks not marked:\n%s", out)
	}
}

func TestDiffFailsPastThreshold(t *testing.T) {
	old := doc("GroupedSweep", 1000, "CacheAccessBatch", 100)
	cur := doc("GroupedSweep", 1200, "CacheAccessBatch", 101) // +20%, +1%
	out, regs := runDiff(t, old, cur)
	if len(regs) != 1 || !strings.Contains(regs[0], "GroupedSweep") {
		t.Fatalf("want one GroupedSweep regression, got %v\n%s", regs, out)
	}
	if !strings.Contains(out, "[REGRESSED]") {
		t.Errorf("regression not marked in table:\n%s", out)
	}
}

func TestDiffIgnoresUngatedRegression(t *testing.T) {
	old := doc("Fig5_2", 1000)
	cur := doc("Fig5_2", 2000) // +100%, but not a gated hot path
	_, regs := runDiff(t, old, cur)
	if len(regs) != 0 {
		t.Fatalf("ungated benchmark failed the gate: %v", regs)
	}
}

func TestDiffNewAndMissingBenchmarks(t *testing.T) {
	old := doc("CacheAccess", 100, "OldOnly", 50)
	cur := doc("CacheAccess", 100, "StackDistBatch", 80)
	out, regs := runDiff(t, old, cur)
	if len(regs) != 0 {
		t.Fatalf("presence changes must not fail the gate: %v", regs)
	}
	if !strings.Contains(out, "(new)") || !strings.Contains(out, "missing from new run") {
		t.Errorf("presence changes not reported:\n%s", out)
	}
}

func TestDefaultGateCoversBenchCheckPaths(t *testing.T) {
	re := regexp.MustCompile(defaultGate)
	for _, name := range []string{
		"SerialSweep", "GroupedSweep", "EngineSweep",
		"CacheAccess", "CacheAccessBatch", "StackDist", "StackDistBatch",
		"TraceGenSerial", "TraceGenParallel",
	} {
		if !re.MatchString(name) {
			t.Errorf("default gate does not cover %s", name)
		}
	}
	for _, name := range []string{"Fig5_2", "TraceStoreCold", "EngineBatch"} {
		if re.MatchString(name) {
			t.Errorf("default gate unexpectedly covers %s", name)
		}
	}
}
