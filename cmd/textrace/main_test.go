package main

import (
	"os"
	"path/filepath"
	"testing"

	"texcache/internal/texture"
)

func TestParseLayout(t *testing.T) {
	cases := []struct {
		name string
		kind texture.LayoutKind
	}{
		{"nonblocked", texture.NonBlockedKind},
		{"blocked", texture.BlockedKind},
		{"padded", texture.PaddedBlockedKind},
		{"williams", texture.WilliamsKind},
	}
	for _, c := range cases {
		spec, err := parseLayout(c.name, 8, 4)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if spec.Kind != c.kind {
			t.Errorf("%s -> %v", c.name, spec.Kind)
		}
	}
	if _, err := parseLayout("bogus", 8, 4); err == nil {
		t.Error("bogus layout accepted")
	}
}

func TestRecordInfoSimRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	if err := record([]string{"-scene", "goblet", "-scale", "8", "-o", path}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	if err := info([]string{path}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := sim([]string{"-size", "8192", "-line", "64", "-ways", "2", path}); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRecordErrors(t *testing.T) {
	if err := record([]string{"-scene", "goblet"}); err == nil {
		t.Error("missing -o accepted")
	}
	if err := record([]string{"-scene", "nope", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown scene accepted")
	}
	if err := record([]string{"-scene", "goblet", "-order", "diagonal",
		"-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("bad order accepted")
	}
}

func TestSimErrors(t *testing.T) {
	if err := sim([]string{"-size", "1000", "/nonexistent"}); err == nil {
		t.Error("missing file / bad size accepted")
	}
	if err := sim([]string{}); err == nil {
		t.Error("no file accepted")
	}
}

func TestInfoErrors(t *testing.T) {
	if err := info([]string{}); err == nil {
		t.Error("no file accepted")
	}
	if err := info([]string{"/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLocateSubcommand(t *testing.T) {
	if err := locate([]string{"-scene", "goblet", "-scale", "8", "0", "64"}); err != nil {
		t.Fatalf("locate: %v", err)
	}
	if err := locate([]string{"-scene", "goblet", "-scale", "8"}); err == nil {
		t.Error("no addresses accepted")
	}
	if err := locate([]string{"-scene", "goblet", "-scale", "8", "zzz"}); err == nil {
		t.Error("bad address accepted")
	}
	if err := locate([]string{"-scene", "nope", "1"}); err == nil {
		t.Error("unknown scene accepted")
	}
}
