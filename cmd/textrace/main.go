// Command textrace records, saves, inspects and replays texel address
// traces — the raw material of the study. A saved trace can be replayed
// through arbitrary cache configurations without re-rendering.
//
// Usage:
//
//	textrace record -scene goblet -scale 4 -layout blocked -block 8 -o goblet.trace
//	textrace info goblet.trace
//	textrace sim -size 32768 -line 128 -ways 2 goblet.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "sim":
		err = sim(os.Args[2:])
	case "locate":
		err = locate(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "textrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  textrace record -scene <name> [-scale N] [-layout kind] [-block N] [-pad N] [-tile N] [-order dir] -o <file>
  textrace info <file>
  textrace sim [-size N] [-line N] [-ways N] <file>
  textrace locate -scene <name> [-scale N] [-layout kind] [-block N] [-pad N] <addr>...`)
}

func parseLayout(kind string, block, pad int) (texture.LayoutSpec, error) {
	switch kind {
	case "nonblocked":
		return texture.LayoutSpec{Kind: texture.NonBlockedKind}, nil
	case "blocked":
		return texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: block}, nil
	case "padded":
		return texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: block, PadBlocks: pad}, nil
	case "williams":
		return texture.LayoutSpec{Kind: texture.WilliamsKind}, nil
	default:
		return texture.LayoutSpec{}, fmt.Errorf("unknown layout %q", kind)
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	scene := fs.String("scene", "goblet", "scene: "+strings.Join(scenes.Names(), ", "))
	scale := fs.Int("scale", 4, "resolution divisor")
	layout := fs.String("layout", "blocked", "layout: nonblocked, blocked, padded, williams")
	block := fs.Int("block", 8, "block width in texels")
	pad := fs.Int("pad", 4, "pad blocks per row (padded layout)")
	tile := fs.Int("tile", 0, "screen tile size in pixels (0 = untiled)")
	order := fs.String("order", "", "horizontal or vertical (default: scene's)")
	out := fs.String("o", "", "output trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -o is required")
	}
	s, err := scenes.ByNameChecked(*scene, *scale)
	if err != nil {
		return err
	}
	spec, err := parseLayout(*layout, *block, *pad)
	if err != nil {
		return err
	}
	trav := s.DefaultTraversal()
	switch *order {
	case "horizontal":
		trav.Order = raster.RowMajor
	case "vertical":
		trav.Order = raster.ColumnMajor
	case "":
	default:
		return fmt.Errorf("unknown order %q", *order)
	}
	trav.TileW, trav.TileH = *tile, *tile

	tr, r, err := s.Trace(spec, trav)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses (%d textured fragments) to %s (%d bytes, %.2f bits/access)\n",
		tr.Len(), r.Stats.FragmentsTextured, *out, n, 8*float64(n)/float64(tr.Len()))
	return nil
}

// locate resolves raw trace addresses back to (texture, level, texel)
// under the same scene and layout parameters the trace was recorded with.
func locate(args []string) error {
	fs := flag.NewFlagSet("locate", flag.ExitOnError)
	scene := fs.String("scene", "goblet", "scene the trace was recorded from")
	scale := fs.Int("scale", 4, "resolution divisor used at record time")
	layout := fs.String("layout", "blocked", "layout used at record time")
	block := fs.Int("block", 8, "block width used at record time")
	pad := fs.Int("pad", 4, "pad blocks used at record time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("locate: expected at least one address")
	}
	s, err := scenes.ByNameChecked(*scene, *scale)
	if err != nil {
		return err
	}
	spec, err := parseLayout(*layout, *block, *pad)
	if err != nil {
		return err
	}
	layouts, err := s.Layouts(spec)
	if err != nil {
		return err
	}
	for _, arg := range fs.Args() {
		addr, err := strconv.ParseUint(arg, 0, 64)
		if err != nil {
			return fmt.Errorf("locate: bad address %q: %v", arg, err)
		}
		found := false
		for texID, l := range layouts {
			if addr < l.Base() || addr >= l.Base()+l.SizeBytes() {
				continue
			}
			found = true
			loc, ok := l.(texture.Locator)
			if !ok {
				fmt.Printf("%d: texture %d (%s), texel unresolvable\n", addr, texID, l.Name())
				break
			}
			if level, tu, tv, comp, ok := loc.Locate(addr); ok {
				fmt.Printf("%d: texture %d level %d texel (%d,%d) component %d\n",
					addr, texID, level, tu, tv, comp)
			} else {
				fmt.Printf("%d: texture %d (%s), padding\n", addr, texID, l.Name())
			}
			break
		}
		if !found {
			fmt.Printf("%d: outside all textures\n", addr)
		}
	}
	return nil
}

func loadTrace(path string) (*cache.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cache.ReadTrace(f)
}

func info(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info: expected one trace file")
	}
	tr, err := loadTrace(args[0])
	if err != nil {
		return err
	}
	var lo, hi uint64 = ^uint64(0), 0
	for _, a := range tr.Addrs {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	sd := cache.NewStackDist(32)
	tr.Replay(sd)
	fmt.Printf("accesses:       %d\n", tr.Len())
	fmt.Printf("address range:  [%d, %d] (%.2f MB span)\n", lo, hi, float64(hi-lo)/(1<<20))
	fmt.Printf("distinct 32B lines: %d (%.2f MB touched)\n",
		sd.DistinctLines(), float64(sd.DistinctLines())*32/(1<<20))
	fmt.Printf("cold miss rate (32B lines): %.2f%%\n",
		100*float64(sd.ColdMisses())/float64(sd.Accesses()))
	fmt.Println("fully-associative miss rates:")
	for _, size := range []int{4 << 10, 16 << 10, 64 << 10} {
		fmt.Printf("  %6s: %.2f%%\n", cache.FormatSize(size), 100*sd.MissRateAt(size))
	}
	return nil
}

func sim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	size := fs.Int("size", 32<<10, "cache size in bytes")
	line := fs.Int("line", 128, "line size in bytes")
	ways := fs.Int("ways", 2, "associativity (0 = fully associative)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sim: expected one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := cache.Config{SizeBytes: *size, LineBytes: *line, Ways: *ways}
	if err := cfg.Validate(); err != nil {
		return err
	}
	cc := cache.NewClassifying(cfg)
	tr.Replay(cc.Sink())
	s := cc.Stats()
	fmt.Printf("%v: %d accesses, %d misses (%.2f%%)\n", cfg, s.Accesses, s.Misses, 100*s.MissRate())
	fmt.Printf("  cold %.2f%%  capacity %.2f%%  conflict %.2f%%\n",
		100*float64(s.Cold)/float64(s.Accesses),
		100*float64(s.Capacity)/float64(s.Accesses),
		100*float64(s.Conflict)/float64(s.Accesses))
	fmt.Printf("  memory traffic: %.2f MB per frame\n", float64(s.BytesFetched(*line))/(1<<20))
	return nil
}
