// Command texload is the texserve load-generator client: it posts one
// ExperimentRequest document — built from flags exactly as cmd/texsim
// builds its own, or loaded from a wire-form file — at a running server
// from N concurrent clients and reports throughput, latency percentiles
// and the status-code mix.
//
// Usage:
//
//	texload -url http://127.0.0.1:8321 -clients 8 -n 32 -exp fig5.2 -scale 8
//	texload -url http://127.0.0.1:8321 -clients 4 -n 16 \
//	    -scene goblet -configs 32768:128:2,16384:64:1
//	texload -url http://127.0.0.1:8321 -request sweep.json -tenant bench
//	texload -url http://127.0.0.1:8321 -scene goblet -arch both -n 4
//
// -configs takes SIZE:LINE:WAYS[:POLICY] triples (bytes; policy lru,
// fifo or random) and makes the request a custom sweep over -scene.
// -arch instead posts a cycle-level architecture comparison (blocking,
// prefetch or both) over -scene; -configs optionally overrides the
// cache design point.
// The exit status encodes the verdict scripts care about: 0 when at
// least one request completed and the server returned no 5xx, 1
// otherwise — `make serve-smoke` is exactly that check.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"texcache"
	"texcache/internal/load"
)

func main() {
	os.Exit(run())
}

// parseConfigs turns "SIZE:LINE:WAYS[:POLICY],..." into wire cache
// configurations.
func parseConfigs(s string) ([]texcache.RequestCacheConfig, error) {
	var out []texcache.RequestCacheConfig
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("config %q: want SIZE:LINE:WAYS[:POLICY]", part)
		}
		nums := make([]int, 3)
		for i := range nums {
			v, err := strconv.Atoi(fields[i])
			if err != nil {
				return nil, fmt.Errorf("config %q: %v", part, err)
			}
			nums[i] = v
		}
		cc := texcache.RequestCacheConfig{SizeBytes: nums[0], LineBytes: nums[1], Ways: nums[2]}
		if len(fields) == 4 {
			cc.Policy = fields[3]
		}
		out = append(out, cc)
	}
	return out, nil
}

// buildRequest assembles the request body from flags or a wire file.
func buildRequest(reqFile, exps, scenes, scene, configs, arch string, scale, renderW int, tenant string) ([]byte, error) {
	if reqFile != "" {
		return os.ReadFile(reqFile)
	}
	req := texcache.ExperimentRequest{Tenant: tenant, Scale: scale, RenderWorkers: renderW}
	if exps != "" && exps != "all" {
		req.Experiments = strings.Split(exps, ",")
	}
	if scenes != "" {
		req.Scenes = strings.Split(scenes, ",")
	}
	if scene != "" {
		req.Scene = scene
		if arch == "" || configs != "" {
			cfgs, err := parseConfigs(configs)
			if err != nil {
				return nil, err
			}
			req.Configs = cfgs
		}
	}
	if arch != "" {
		req.Architecture = &texcache.RequestArchitecture{Pipeline: arch}
	}
	if err := texcache.ValidateRequest(texcache.NormalizeRequest(req)); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

// getToStdout fetches one server path and copies the body to stdout —
// the scriptable way to read /metrics or /healthz after a burst.
func getToStdout(base, path string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// captureOne posts the request body once and writes the full response
// stream to a file, so scripts can compare repeat responses byte for
// byte (the serve-smoke result-cache check).
func captureOne(ctx context.Context, base, tenant string, body []byte, outPath string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/experiments", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Texcache-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/experiments: status %d: %s", resp.StatusCode, data)
	}
	return os.WriteFile(outPath, data, 0o644)
}

func run() int {
	url := flag.String("url", "http://127.0.0.1:8321", "texserve base URL")
	clients := flag.Int("clients", 4, "concurrent posting clients")
	n := flag.Int("n", 0, "total requests (default: one per client)")
	tenant := flag.String("tenant", "", "tenant name sent with each request")
	exps := flag.String("exp", "", "experiment IDs for the posted request (comma-separated, or 'all')")
	scenes := flag.String("scenes", "", "scene subset for the posted request")
	scene := flag.String("scene", "", "sweep scene (with -configs)")
	configs := flag.String("configs", "", "sweep cache configs, SIZE:LINE:WAYS[:POLICY],...")
	arch := flag.String("arch", "", "architecture pipelines (blocking, prefetch or both) to compare over -scene instead of a sweep")
	scale := flag.Int("scale", 8, "resolution divisor for the posted request")
	renderW := flag.Int("render-workers", 0, "render workers requested per render")
	reqFile := flag.String("request", "", "post this wire-form JSON request file instead of building one from flags")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall run deadline")
	jsonOut := flag.Bool("json", false, "print the stats as JSON instead of a summary line")
	getPath := flag.String("get", "", "GET this server path (e.g. /metrics), print the body to stdout and exit")
	capture := flag.String("capture", "", "post the request once and write the response body to this file instead of bursting")
	flag.Parse()

	if *scene == "" && *configs != "" {
		fmt.Fprintln(os.Stderr, "texload: -configs needs -scene")
		return 2
	}
	if *getPath != "" {
		if err := getToStdout(*url, *getPath, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "texload:", err)
			return 1
		}
		return 0
	}
	body, err := buildRequest(*reqFile, *exps, *scenes, *scene, *configs, *arch, *scale, *renderW, *tenant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texload:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	if *capture != "" {
		if err := captureOne(ctx, *url, *tenant, body, *capture); err != nil {
			fmt.Fprintln(os.Stderr, "texload:", err)
			return 1
		}
		return 0
	}

	stats, err := load.Run(ctx, load.Options{
		BaseURL:  *url,
		Clients:  *clients,
		Requests: *n,
		Body:     body,
		Tenant:   *tenant,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "texload:", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(stats)
	} else {
		fmt.Println(stats)
	}
	if stats.Completed == 0 || stats.ServerErrors > 0 {
		fmt.Fprintln(os.Stderr, "texload: FAIL: zero completed requests or server errors seen")
		return 1
	}
	return 0
}
