package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRendersPNG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "goblet.png")
	if err := run("goblet", 8, out, "", 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("PNG missing: %v", err)
	}
}

func TestRunOrderAndTile(t *testing.T) {
	dir := t.TempDir()
	if err := run("town", 8, filepath.Join(dir, "a.png"), "horizontal", 8); err != nil {
		t.Fatalf("horizontal tiled: %v", err)
	}
	if err := run("town", 8, filepath.Join(dir, "b.png"), "vertical", 0); err != nil {
		t.Fatalf("vertical: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 8, "", "", 0); err == nil {
		t.Error("unknown scene accepted")
	}
	if err := run("goblet", 8, "", "diagonal", 0); err == nil {
		t.Error("unknown order accepted")
	}
	if err := run("goblet", 8, "/nonexistent-dir/x.png", "", 0); err == nil {
		t.Error("unwritable output accepted")
	}
}
