// Command texrender renders one of the four benchmark scenes to a PNG and
// prints its frame statistics, providing the visual verification step of
// Section 4.1 ("the images allow us to verify that the interpretation of
// the trace is accurate").
//
// Usage:
//
//	texrender -scene town -scale 2 -o town.png
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func main() {
	var (
		sceneName = flag.String("scene", "goblet", "scene: "+strings.Join(scenes.Names(), ", "))
		scale     = flag.Int("scale", 2, "resolution divisor (1 = paper's full size)")
		out       = flag.String("o", "", "output PNG path (default <scene>.png)")
		order     = flag.String("order", "", "rasterization order: horizontal, vertical (default: the scene's)")
		tile      = flag.Int("tile", 0, "square screen tile size in pixels (0 = untiled)")
	)
	flag.Parse()

	if err := run(*sceneName, *scale, *out, *order, *tile); err != nil {
		fmt.Fprintln(os.Stderr, "texrender:", err)
		os.Exit(1)
	}
}

func run(sceneName string, scale int, out, order string, tile int) error {
	s, err := scenes.ByNameChecked(sceneName, scale)
	if err != nil {
		return fmt.Errorf("unknown scene %q (have %s)", sceneName, strings.Join(scenes.Names(), ", "))
	}
	trav := s.DefaultTraversal()
	switch order {
	case "horizontal":
		trav.Order = raster.RowMajor
	case "vertical":
		trav.Order = raster.ColumnMajor
	case "":
	default:
		return fmt.Errorf("unknown order %q", order)
	}
	trav.TileW, trav.TileH = tile, tile

	r, err := s.Render(scenes.RenderOptions{
		Layout:    texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		Traversal: trav,
	})
	if err != nil {
		return err
	}

	st := r.Stats
	fmt.Printf("scene=%s %dx%d order=%s tile=%d\n", s.Name, s.Width, s.Height, trav.Order, tile)
	fmt.Printf("triangles=%d clipped=%d textured-tris=%d\n",
		st.TrianglesIn, st.TrianglesClipped, st.TexturedTris)
	fmt.Printf("fragments: shaded=%d textured=%d covered-pixels=%d (%.0f%% of screen)\n",
		st.FragmentsShaded, st.FragmentsTextured, r.FB.CoveredPixels(),
		100*float64(r.FB.CoveredPixels())/float64(s.Width*s.Height))
	if st.TexturedTris > 0 {
		fmt.Printf("avg textured triangle: area=%.0f px, bbox %.0fx%.0f\n",
			st.TriangleAreaSum/float64(st.TexturedTris),
			st.TriangleWidthSum/float64(st.TexturedTris),
			st.TriangleHeightSum/float64(st.TexturedTris))
	}
	fmt.Printf("textures=%d storage=%.1f MB\n", len(s.Mips),
		float64(s.TextureStorageBytes())/(1<<20))

	if out == "" {
		out = s.Name + ".png"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.FB.WritePNG(f); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return f.Close()
}
