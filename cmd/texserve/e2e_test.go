package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"texcache"
)

var update = flag.Bool("update", false, "rewrite the golden NDJSON fixture")

// e2eRequest is the request both paths run: a custom sweep plus one
// registered experiment would differ in kind, so pin one of each.
func e2eSweepBody() string {
	return `{"scene":"goblet","scale":8,"configs":[` +
		`{"size_bytes":32768,"line_bytes":128,"ways":2},` +
		`{"size_bytes":16384,"line_bytes":64,"ways":1,"policy":"fifo"}]}`
}

// texsimNDJSON produces the bytes `texsim -request - -json` writes for
// the same request: the facade Run plus the shared NDJSON serializer.
func texsimNDJSON(t *testing.T, body string) []byte {
	t.Helper()
	var req texcache.ExperimentRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	results, err := texcache.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := texcache.WriteResultsNDJSON(&buf, results, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func serverNDJSON(t *testing.T, ts string, body string) []byte {
	t.Helper()
	resp, err := http.Post(ts+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	return b
}

// TestServerNDJSONByteIdentity is the API contract test: for the same
// ExperimentRequest, the texserve response body is byte-for-byte the
// local `texsim -json` output, and both match the checked-in golden
// fixture (refresh with -update).
func TestServerNDJSONByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name, body, golden string
	}{
		{"sweep", e2eSweepBody(), "sweep.ndjson"},
		{"experiment", `{"experiments":["fig5.2"],"scenes":["goblet"],"scale":8}`, "experiment.ndjson"},
		{"architecture", `{"scene":"goblet","scale":8,"architecture":{"pipeline":"both","fill_latency":100}}`, "architecture.ndjson"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			local := texsimNDJSON(t, tc.body)
			_, ts := testServer(t, serverConfig{Workers: 2})
			remote := serverNDJSON(t, ts.URL, tc.body)
			if !bytes.Equal(local, remote) {
				t.Fatalf("server NDJSON differs from texsim -json:\nlocal:\n%s\nremote:\n%s", local, remote)
			}
			golden := filepath.Join("testdata", "golden", tc.golden)
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, local, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(local, want) {
				t.Errorf("NDJSON drifted from golden fixture %s:\ngot:\n%s\nwant:\n%s", golden, local, want)
			}
		})
	}
}

// TestServerCoalescing is the single-flight contract under load: N
// concurrent clients posting the identical request cost exactly one
// render through the server's shared trace cache.
func TestServerCoalescing(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 4, Queue: 32})
	const clients = 16
	body := e2eSweepBody()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			if len(b) == 0 {
				errs <- io.ErrUnexpectedEOF
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.traces.Renders(); got != 1 {
		t.Errorf("Renders() = %d after %d identical requests, want 1", got, clients)
	}
}
