package main

import (
	"context"
	"sync"
	"time"

	"texcache"
)

// errSaturated is returned by acquire when the tenant's waiter queue is
// at capacity; the handler maps it to 429 + Retry-After.
var errSaturated = texcache.RequestErrorf(texcache.RequestCodeSaturated,
	"server saturated: tenant queue full, retry later")

// scheduler is a bounded worker pool with per-tenant fair queuing. A
// fixed number of slots bounds how many requests replay at once; when
// every slot is busy, requests wait in per-tenant FIFO queues that are
// granted slots round-robin across tenants, so one chatty tenant cannot
// starve the rest. Each tenant's queue has a fixed depth; beyond it,
// acquire fails fast with errSaturated instead of queuing — the
// backpressure signal the handler turns into 429.
type scheduler struct {
	mu       sync.Mutex
	slots    int // free slots
	maxQueue int // per-tenant waiter cap
	queues   map[string][]*waiter
	ring     []string // round-robin tenant grant order
	next     int      // ring cursor
}

// waiter is one queued acquire. All fields are guarded by scheduler.mu;
// ready is closed exactly once, under the lock, when the waiter is
// granted a slot.
type waiter struct {
	ready     chan struct{}
	granted   bool
	cancelled bool
}

func newScheduler(workers, maxQueue int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	return &scheduler{
		slots:    workers,
		maxQueue: maxQueue,
		queues:   map[string][]*waiter{},
	}
}

// acquire blocks until the tenant is granted a worker slot or ctx is
// done. It returns errSaturated immediately — without queuing — when the
// tenant already has maxQueue requests waiting. Every successful acquire
// must be paired with exactly one release.
func (s *scheduler) acquire(ctx context.Context, tenant string) error {
	s.mu.Lock()
	if s.slots > 0 && s.waiting() == 0 {
		s.slots--
		s.mu.Unlock()
		return nil
	}
	if len(s.queues[tenant]) >= s.maxQueue {
		s.mu.Unlock()
		sched().Counter("saturated").Inc()
		return errSaturated
	}
	w := &waiter{ready: make(chan struct{})}
	if _, known := s.queues[tenant]; !known {
		s.ring = append(s.ring, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], w)
	// A slot may be free when waiters exist (release grants under the
	// same lock, so only transiently) — hand it to the fairest waiter,
	// possibly this one.
	if s.slots > 0 {
		s.slots--
		s.grantNext()
	}
	s.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ready:
		sched().Timer("queue_wait").Observe(time.Since(start))
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Lost the race: the slot was already handed to us. Pass it
			// on (or free it) before reporting cancellation.
			s.releaseLocked()
			s.mu.Unlock()
			return ctx.Err()
		}
		w.cancelled = true
		s.mu.Unlock()
		return ctx.Err()
	}
}

// release returns a slot to the pool, granting it to the next waiter in
// round-robin tenant order when one exists.
func (s *scheduler) release() {
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
}

func (s *scheduler) releaseLocked() {
	s.grantNext()
	// grantNext either handed the slot to a waiter or left it with us.
}

// grantNext pops the next non-cancelled waiter in round-robin tenant
// order and hands it the caller's slot (the caller must own one: either
// a releasing request or an acquire that just took the last free slot).
// If no waiter is live, the slot goes back to the free pool.
func (s *scheduler) grantNext() {
	for range s.ring {
		tenant := s.ring[s.next%len(s.ring)]
		q := s.queues[tenant]
		// Drop abandoned waiters without granting.
		for len(q) > 0 && q[0].cancelled {
			q = q[1:]
		}
		if len(q) == 0 {
			// Tenant idle: drop it from the ring so it does not inflate
			// the rotation. Its map entry goes too (recreated on next
			// use).
			delete(s.queues, tenant)
			s.ring = append(s.ring[:s.next%len(s.ring)], s.ring[s.next%len(s.ring)+1:]...)
			if len(s.ring) == 0 {
				break
			}
			continue
		}
		w := q[0]
		s.queues[tenant] = q[1:]
		w.granted = true
		close(w.ready)
		s.next = (s.next%len(s.ring) + 1) % len(s.ring)
		return
	}
	s.slots++
}

// waiting reports the total queued waiter count (lock held).
func (s *scheduler) waiting() int {
	n := 0
	for _, q := range s.queues {
		for _, w := range q {
			if !w.cancelled {
				n++
			}
		}
	}
	return n
}

// sched is the scheduler's metrics scope.
func sched() *texcache.MetricsRegistry {
	return texcache.AttachedMetrics().Sub("server").Sub("sched")
}
