package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"texcache"
)

func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// errorBody decodes a typed error response.
func errorBody(t *testing.T, resp *http.Response) texcache.RequestError {
	t.Helper()
	var re texcache.RequestError
	if err := json.NewDecoder(resp.Body).Decode(&re); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return re
}

// TestHandlerErrors is the handler truth table: each bad request gets
// the right status and a typed JSON body with the right wire code.
func TestHandlerErrors(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 1})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", `{"scene":`, http.StatusBadRequest, texcache.RequestCodeBadRequest},
		{"unknown field", `{"scnee":"goblet"}`, http.StatusBadRequest, texcache.RequestCodeBadRequest},
		{"bad version", `{"v":9}`, http.StatusBadRequest, texcache.RequestCodeBadRequest},
		{"unknown experiment", `{"experiments":["bogus"]}`, http.StatusNotFound, texcache.RequestCodeUnknownExperiment},
		{"unknown scene", `{"scene":"nowhere","configs":[{"size_bytes":32768,"line_bytes":128,"ways":2}]}`,
			http.StatusNotFound, texcache.RequestCodeUnknownScene},
		{"sweep without configs", `{"scene":"goblet"}`, http.StatusBadRequest, texcache.RequestCodeBadRequest},
		{"bad cache geometry", `{"scene":"goblet","configs":[{"size_bytes":100,"line_bytes":128,"ways":2}]}`,
			http.StatusBadRequest, texcache.RequestCodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if got := resp.Header.Get("X-Texcache-Api-Version"); got != "1" {
				t.Errorf("version header = %q, want 1", got)
			}
			re := errorBody(t, resp)
			if re.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", re.Code, tc.wantCode)
			}
			if re.V != texcache.APIVersion {
				t.Errorf("error body v = %d, want %d", re.V, texcache.APIVersion)
			}
			if re.Message == "" {
				t.Error("error body has no message")
			}
		})
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 1})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/experiments", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Errorf("Allow = %q, want GET, POST", allow)
	}
}

func TestHandlerList(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		V           int      `json:"v"`
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.V != 1 || len(body.Experiments) == 0 {
		t.Errorf("list = %+v, want v1 and a non-empty registry", body)
	}
	want := texcache.ExperimentIDs()
	if len(body.Experiments) != len(want) {
		t.Errorf("listed %d experiments, registry has %d", len(body.Experiments), len(want))
	}
}

// TestHandlerGrid pins grid requests over HTTP: the response body is
// byte-identical to the engine's row stream for the same request — the
// server streams rows only, like a -shard worker; frontier computation
// belongs to whoever owns the full view (a coordinating client).
func TestHandlerGrid(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 1})
	body := `{"scale":8,"grid":{"scenes":["town"],"configs":[` +
		`{"size_bytes":2048,"line_bytes":64,"ways":1},` +
		`{"size_bytes":8192,"line_bytes":64,"ways":2}]}}`
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid request status = %d, want 200", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var req texcache.ExperimentRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	results, err := texcache.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := texcache.WriteResultsNDJSON(&want, results, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("grid response differs from engine stream:\n--- server ---\n%s\n--- engine ---\n%s", got, want.Bytes())
	}
	if bytes.Contains(got, []byte(`"exp":"pareto"`)) {
		t.Error("server stream contains frontier lines; those belong to the full-view owner")
	}

	// Shard slices work over the wire too: each worker's rows are a
	// subset the coordinator can merge.
	shardBody := `{"scale":8,"grid":{"scenes":["town"],"configs":[` +
		`{"size_bytes":2048,"line_bytes":64,"ways":1}]},"shard":{"index":1,"count":2}}`
	resp2, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(shardBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("sharded grid request status = %d, want 200", resp2.StatusCode)
	}
}

// postBody issues one experiment POST and returns the full response
// body, failing on any non-200.
func postBody(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	return data
}

// TestHandlerResultCacheSingleFlight pins the tentpole invariant under
// the race detector: 16 concurrent clients posting the same request
// cost exactly one simulation, and every client receives byte-identical
// NDJSON.
func TestHandlerResultCacheSingleFlight(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 4, Queue: 64})
	const clients = 16
	body := `{"experiments":["fig5.2"],"scenes":["goblet"],"scale":8}`

	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d body differs from client 0", i)
		}
	}
	if len(bodies[0]) == 0 {
		t.Fatal("empty response body")
	}
	if got := s.results.Produced(); got != 1 {
		t.Errorf("%d concurrent clients caused %d simulations, want 1", clients, got)
	}
}

// TestHandlerResultCacheWarm pins the warm path: a repeated request is
// a result-cache hit with a byte-identical body, and a tenant change
// does not fork the cache key.
func TestHandlerResultCacheWarm(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 1})
	body := `{"scene":"goblet","scale":8,"configs":[{"size_bytes":16384,"line_bytes":64,"ways":2}]}`

	cold := postBody(t, ts.URL, body)
	warm := postBody(t, ts.URL, body)
	if !bytes.Equal(cold, warm) {
		t.Error("warm response differs from cold")
	}
	if s.results.Hits() != 1 || s.results.Produced() != 1 {
		t.Errorf("hits %d produced %d, want 1/1", s.results.Hits(), s.results.Produced())
	}

	// The cache is shared across tenants: only output-relevant fields key
	// the entry.
	other := `{"tenant":"other","scene":"goblet","scale":8,"configs":[{"size_bytes":16384,"line_bytes":64,"ways":2}]}`
	if got := postBody(t, ts.URL, other); !bytes.Equal(got, cold) {
		t.Error("tenant change forked the cached stream")
	}
	if s.results.Produced() != 1 {
		t.Errorf("tenant change re-simulated: produced = %d", s.results.Produced())
	}
}

// TestHandlerGridBypassesResultCache documents the bypass: grid rows
// depend on pruning frontier state, so grid requests never enter the
// result cache — but repeats are still byte-identical because the
// exhaustive replay is deterministic.
func TestHandlerGridBypassesResultCache(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 1})
	body := `{"scale":8,"grid":{"scenes":["town"],"configs":[{"size_bytes":2048,"line_bytes":64,"ways":1}]}}`
	a := postBody(t, ts.URL, body)
	b := postBody(t, ts.URL, body)
	if !bytes.Equal(a, b) {
		t.Error("repeated grid responses differ")
	}
	if s.results.Produced() != 0 || s.results.Hits() != 0 || s.results.Misses() != 0 {
		t.Errorf("grid request touched the result cache: %d/%d/%d",
			s.results.Produced(), s.results.Hits(), s.results.Misses())
	}
}

// TestHandlerResultDirPersists pins the persistent tier over HTTP: a
// fresh server on the same result directory serves the stored bytes
// without simulating.
func TestHandlerResultDirPersists(t *testing.T) {
	dir := t.TempDir()
	body := `{"experiments":["table2.1"],"scenes":["goblet"],"scale":8}`

	_, ts := testServer(t, serverConfig{Workers: 1, ResultDir: dir})
	cold := postBody(t, ts.URL, body)

	s2, ts2 := testServer(t, serverConfig{Workers: 1, ResultDir: dir})
	warm := postBody(t, ts2.URL, body)
	if !bytes.Equal(cold, warm) {
		t.Error("restarted server serves different bytes")
	}
	if s2.results.Produced() != 0 || s2.results.StoreHits() != 1 {
		t.Errorf("restart re-simulated: produced %d storeHits %d", s2.results.Produced(), s2.results.StoreHits())
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 1})
	for _, path := range []string{"/healthz", "/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestHandlerSaturation pins the backpressure path: with the only slot
// held and the tenant's queue full, a request gets 429, a saturated
// error body and a Retry-After header — deterministically, because the
// test owns the slot.
func TestHandlerSaturation(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 1, Queue: 1})
	ctx := context.Background()
	if err := s.sched.acquire(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- s.sched.acquire(ctx, "t") }()
	waitQueued(t, s.sched, 1)
	t.Cleanup(func() {
		s.sched.release() // frees the held slot, granting the queued waiter
		if err := <-queued; err == nil {
			s.sched.release()
		}
	})

	body := `{"tenant":"t","experiments":["fig5.2"],"scale":8}`
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	if re := errorBody(t, resp); re.Code != texcache.RequestCodeSaturated {
		t.Errorf("code = %q, want saturated", re.Code)
	}
}
