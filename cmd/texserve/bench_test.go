package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"texcache/internal/load"
)

// benchBodies is the saturation workload: 16 render-dominated custom
// sweeps over distinct (layout, traversal) trace keys, rotated across
// benchRequests posts. Cold, the burst must render each key once
// — coalescing caps renders at the distinct-key count — while a warm
// server answers every one from the store, so the cold/warm contrast
// isolates exactly the render cost the persistence tier removes.
func benchBodies() [][]byte {
	configs := `"configs":[` +
		`{"size_bytes":32768,"line_bytes":128,"ways":2},` +
		`{"size_bytes":16384,"line_bytes":64,"ways":4}]`
	layouts := []string{
		`"layout":{"kind":"blocked","block_w":4}`,
		`"layout":{"kind":"blocked","block_w":8}`,
		`"layout":{"kind":"blocked","block_w":16}`,
		`"layout":{"kind":"blocked","block_w":32}`,
		`"layout":{"kind":"nonblocked"}`,
		`"layout":{"kind":"padded","block_w":8,"pad_blocks":1}`,
		`"layout":{"kind":"padded","block_w":16,"pad_blocks":1}`,
		`"layout":{"kind":"6d","block_w":8,"super_bytes":32768}`,
	}
	var bodies [][]byte
	for _, trav := range []string{`"order":"horizontal"`, `"order":"hilbert"`} {
		for _, layout := range layouts {
			bodies = append(bodies, []byte(`{"scene":"goblet","scale":4,`+
				layout+`,"traversal":{`+trav+`},`+configs+`}`))
		}
	}
	return bodies
}

const (
	benchClients  = 16
	benchRequests = 24 // > benchKeys, so the burst demonstrates coalescing
	benchKeys     = 16 // distinct trace keys in benchBodies
)

// benchRun saturates a fresh server backed by the given trace and
// result directories and returns the run stats, the render count and
// how many simulations the result cache actually ran.
func benchRun(t testing.TB, dir, resultDir string) (load.Stats, int, int) {
	t.Helper()
	s, err := newServer(serverConfig{Workers: 4, Queue: 64, TraceDir: dir, ResultDir: resultDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	stats, err := load.Run(context.Background(), load.Options{
		BaseURL:  ts.URL,
		Clients:  benchClients,
		Requests: benchRequests,
		Bodies:   benchBodies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != benchRequests || stats.ServerErrors > 0 {
		t.Fatalf("bench run unhealthy: %v", stats)
	}
	return stats, s.traces.Renders(), s.results.Produced()
}

// serverBench is the BENCH_server.json document.
type serverBench struct {
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests"`
	ColdRPS     float64 `json:"cold_rps"`
	ColdP50Ms   float64 `json:"cold_p50_ms"`
	ColdP99Ms   float64 `json:"cold_p99_ms"`
	WarmRPS     float64 `json:"warm_rps"`
	WarmP50Ms   float64 `json:"warm_p50_ms"`
	WarmP99Ms   float64 `json:"warm_p99_ms"`
	Speedup     float64 `json:"warm_over_cold_speedup"`
	ColdRenders int     `json:"cold_renders"`
	WarmRenders int     `json:"warm_renders"`
	ColdSims    int     `json:"cold_simulations"`
	WarmSims    int     `json:"warm_simulations"`
}

// TestServerWarmSpeedup is the third bench-check gate (`make
// bench-check`): a 16-client saturation burst against a warm server
// (trace and result stores populated, every request answered as stored
// bytes) must complete at least 2x faster than the cold burst that has
// to render. It also pins the coalescing acceptance bounds — the cold
// burst performs exactly as many renders as the workload has distinct
// trace keys and as many simulations as distinct result keys, never one
// per request; the warm burst renders and simulates nothing — and, when
// TEXSERVE_BENCH_OUT is set (`make bench-server`), writes the measured
// requests/s and latency percentiles to that file.
func TestServerWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	warmDir, warmResults := t.TempDir(), t.TempDir()
	if _, renders, _ := benchRun(t, warmDir, warmResults); renders != benchKeys {
		// Populate the stores, untimed. 2x requests per key, but renders
		// coalesce to the distinct-key count.
		t.Fatalf("cold renders = %d, want %d (one per distinct trace key)", renders, benchKeys)
	}

	best := func(run func() load.Stats) load.Stats {
		bestS := run()
		for i := 0; i < 2; i++ {
			if s := run(); s.Elapsed < bestS.Elapsed {
				bestS = s
			}
		}
		return bestS
	}
	var coldRenders, warmRenders, coldSims, warmSims int
	cold := best(func() load.Stats {
		s, r, p := benchRun(t, t.TempDir(), t.TempDir()) // fresh dirs: really simulates
		coldRenders, coldSims = r, p
		return s
	})
	warm := best(func() load.Stats {
		s, r, p := benchRun(t, warmDir, warmResults) // fresh server, warm stores
		warmRenders, warmSims = r, p
		return s
	})
	if coldRenders != benchKeys {
		t.Errorf("cold renders = %d, want %d (coalesced to the distinct key count)", coldRenders, benchKeys)
	}
	if coldSims != benchKeys {
		t.Errorf("cold simulations = %d, want %d (identical requests coalesce)", coldSims, benchKeys)
	}
	if warmRenders != 0 {
		t.Errorf("warm renders = %d, want 0 (served from the store)", warmRenders)
	}
	if warmSims != 0 {
		t.Errorf("warm simulations = %d, want 0 (served from the result store)", warmSims)
	}

	speedup := float64(cold.Elapsed) / float64(warm.Elapsed)
	t.Logf("cold %v (%0.1f req/s), warm %v (%0.1f req/s): %.2fx", cold.Elapsed, cold.RPS, warm.Elapsed, warm.RPS, speedup)
	if speedup < 2 {
		t.Errorf("warm saturation speedup %.2fx, want >= 2x (cold %v, warm %v)", speedup, cold.Elapsed, warm.Elapsed)
	}

	if out := os.Getenv("TEXSERVE_BENCH_OUT"); out != "" {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		doc := serverBench{
			Clients: benchClients, Requests: benchRequests,
			ColdRPS: cold.RPS, ColdP50Ms: ms(cold.P50), ColdP99Ms: ms(cold.P99),
			WarmRPS: warm.RPS, WarmP50Ms: ms(warm.P50), WarmP99Ms: ms(warm.P99),
			Speedup: speedup, ColdRenders: coldRenders, WarmRenders: warmRenders,
			ColdSims: coldSims, WarmSims: warmSims,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
