package main

import (
	"context"
	"errors"
	"testing"
	"time"
)

// queued reports the live waiter count, for test synchronization.
func (s *scheduler) queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting()
}

// waitQueued polls until n waiters are queued.
func waitQueued(t *testing.T, s *scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.queued() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queued() = %d, want %d", s.queued(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerFastPath(t *testing.T) {
	s := newScheduler(2, 4)
	ctx := context.Background()
	if err := s.acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.acquire(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	s.release()
	s.release()
	if s.slots != 2 {
		t.Errorf("slots = %d after paired release, want 2", s.slots)
	}
}

// TestSchedulerFairness pins the round-robin grant order: with one slot
// held and the queue A1, A2, B1, releases grant A1, then B1 (the other
// tenant), then A2.
func TestSchedulerFairness(t *testing.T) {
	s := newScheduler(1, 4)
	ctx := context.Background()
	if err := s.acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 3)
	enqueue := func(tenant, label string, want int) {
		go func() {
			if err := s.acquire(ctx, tenant); err == nil {
				order <- label
			}
		}()
		waitQueued(t, s, want)
	}
	enqueue("a", "a1", 1)
	enqueue("a", "a2", 2)
	enqueue("b", "b1", 3)
	want := []string{"a1", "b1", "a2"}
	for _, w := range want {
		s.release()
		got := <-order
		if got != w {
			t.Fatalf("grant order got %s, want %s", got, w)
		}
	}
	s.release()
}

func TestSchedulerSaturation(t *testing.T) {
	s := newScheduler(1, 1)
	ctx := context.Background()
	if err := s.acquire(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.acquire(ctx, "t") }()
	waitQueued(t, s, 1)
	// Queue full for t: immediate saturation, no queuing.
	if err := s.acquire(ctx, "t"); !errors.Is(err, errSaturated) {
		t.Fatalf("third acquire = %v, want errSaturated", err)
	}
	// A different tenant still queues fine... but its queue cap holds too.
	go s.acquire(ctx, "u")
	waitQueued(t, s, 2)
	if err := s.acquire(ctx, "u"); !errors.Is(err, errSaturated) {
		t.Fatalf("tenant u over cap = %v, want errSaturated", err)
	}
	s.release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	s.release() // t's granted slot
	s.release() // u's granted slot
}

func TestSchedulerCancel(t *testing.T) {
	s := newScheduler(1, 4)
	if err := s.acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.acquire(ctx, "t") }()
	waitQueued(t, s, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not absorb the released slot.
	s.release()
	if err := s.acquire(context.Background(), "t"); err != nil {
		t.Fatalf("acquire after cancel = %v", err)
	}
	s.release()
}
