//go:build race

package main

// raceEnabled reports whether this test binary was built with -race.
// The warm/cold timing gate is meaningless under the detector's ~10x
// slowdown and defers to the non-race bench-check leg.
const raceEnabled = true
