package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"texcache"
)

// maxRequestBody bounds the POST body: requests are small JSON
// documents, and a megabyte is already hundreds of cache configurations.
const maxRequestBody = 1 << 20

// serverConfig parameterizes newServer; the zero value of each field
// means its default.
type serverConfig struct {
	// Workers bounds how many requests replay concurrently (default
	// GOMAXPROCS via the scheduler's floor of 1... set by main).
	Workers int
	// Queue is the per-tenant waiter cap; beyond it requests get 429.
	Queue int
	// RetryAfter is the interval advertised on 429 responses.
	RetryAfter time.Duration
	// TraceDir, when set, attaches a persistent trace store tier.
	TraceDir string
	// ResultDir, when set, attaches a persistent tier to the shared
	// result cache: finished NDJSON streams survive restarts as
	// <sha256(key)>.result files.
	ResultDir string
	// RenderWorkers bounds tile-parallel rasterization per render.
	RenderWorkers int
}

// server is the texserve HTTP state: one shared single-flight trace
// cache (the coalescing tier — identical concurrent requests cost one
// render), one shared result cache (the memoization tier — repeated
// requests replay nothing and are served stored bytes), one fair
// scheduler (the capacity tier), and the handler mux.
type server struct {
	traces     *texcache.TraceCache
	results    *texcache.ResultCache
	sched      *scheduler
	retryAfter time.Duration
	mux        *http.ServeMux
}

func newServer(cfg serverConfig) (*server, error) {
	tc := texcache.NewTraceCache()
	tc.RenderWorkers = cfg.RenderWorkers
	if cfg.TraceDir != "" {
		store, err := texcache.OpenTraceStore(cfg.TraceDir)
		if err != nil {
			return nil, err
		}
		tc.Store = store
	}
	// One result cache for all tenants: results are pure functions of
	// the request (tenant and worker counts are erased from the key), so
	// cross-tenant sharing leaks nothing and saves every repeat.
	rc := texcache.NewResultCache()
	if cfg.ResultDir != "" {
		if err := rc.AttachDir(cfg.ResultDir); err != nil {
			return nil, err
		}
	}
	if cfg.Queue == 0 {
		cfg.Queue = 16
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	s := &server{
		traces:     tc,
		results:    rc,
		sched:      newScheduler(cfg.Workers, cfg.Queue),
		retryAfter: cfg.RetryAfter,
		mux:        http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", expvar.Handler())
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// Handler is the server's root handler; every response carries the wire
// version header.
func (s *server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Texcache-Api-Version", fmt.Sprint(texcache.APIVersion))
		s.mux.ServeHTTP(w, r)
	})
}

// writeError sends the typed JSON error body with its mapped status.
func writeError(w http.ResponseWriter, err error) {
	re := texcache.WrapRequestError(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(re.HTTPStatus())
	json.NewEncoder(w).Encode(re)
}

// handleExperiments serves the request API: GET lists the experiment
// registry, POST runs one ExperimentRequest and streams its NDJSON rows.
func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			V           int      `json:"v"`
			Experiments []string `json:"experiments"`
		}{texcache.APIVersion, texcache.ExperimentIDs()})
	case http.MethodPost:
		s.handleRun(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		re := texcache.RequestErrorf(texcache.RequestCodeBadRequest, "method %s not allowed; use GET or POST", r.Method)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMethodNotAllowed)
		json.NewEncoder(w).Encode(re)
	}
}

// handleRun decodes, validates, schedules and streams one request.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	reg := texcache.AttachedMetrics().Sub("server")
	reg.Counter("requests").Inc()

	var req texcache.ExperimentRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields() // additive versioning: unknown fields mean a newer client
	if err := dec.Decode(&req); err != nil {
		writeError(w, texcache.RequestErrorf(texcache.RequestCodeBadRequest, "parsing request body: %v", err))
		return
	}
	req = texcache.NormalizeRequest(req)
	if err := texcache.ValidateRequest(req); err != nil {
		writeError(w, err)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Texcache-Tenant")
	}

	// Admission: one scheduler slot per running request, fair across
	// tenants, 429 once this tenant's queue is full.
	if err := s.sched.acquire(r.Context(), tenant); err != nil {
		if re := texcache.WrapRequestError(err); re.Code == texcache.RequestCodeSaturated {
			w.Header().Set("Retry-After", fmt.Sprint(int(s.retryAfter.Seconds())))
			writeError(w, re)
			return
		}
		// Client went away while queued; nothing useful to write.
		return
	}
	defer s.sched.release()

	// From here the stream is exactly texsim -json: the same NDJSON
	// serializer over the same result channel, fronted by the shared
	// result cache (warm repeats are served stored bytes without
	// touching the engine; grid requests always simulate). Per-result
	// errors append a typed trailer line (the row stream for successful
	// results is untouched, preserving byte-identity).
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	cw := &trackingWriter{w: w}
	start := time.Now()
	streamErr := texcache.RunNDJSON(r.Context(), req, cw, func(res texcache.ExperimentResult) {
		if res.Err != nil {
			json.NewEncoder(cw).Encode(texcache.WrapRequestError(res.Err))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}, texcache.WithTraceProvider(s.traces), texcache.WithResultCache(s.results))
	reg.Timer("request").Observe(time.Since(start))
	if streamErr != nil {
		if !cw.wrote {
			// Nothing streamed yet (unknown experiment, bad scene): the
			// client still gets the typed JSON error with its status code.
			// Once rows are out, per-result errors already appended their
			// trailer line and the status is fixed at 200.
			writeError(w, streamErr)
		}
		reg.Counter("request_errors").Inc()
	} else {
		reg.Counter("completed").Inc()
	}
}

// trackingWriter records whether any body bytes have been written, which
// decides between a typed error response and an in-stream trailer.
type trackingWriter struct {
	w     io.Writer
	wrote bool
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		t.wrote = true
	}
	return t.w.Write(p)
}

// handleHealthz is the liveness probe.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
