// Command texserve is the multi-tenant experiment server: it accepts
// texcache.ExperimentRequest documents over HTTP — the same versioned
// struct cmd/texsim builds from its flags — and streams each result back
// as NDJSON, byte-identical to `texsim -json` for the same request.
//
// Identical concurrent requests coalesce: every render goes through one
// shared single-flight trace cache keyed by (scene, layout, traversal,
// scale), so N clients asking for the same sweep cost one render (plus
// one disk load each across restarts when -trace-dir is set). Replay
// capacity is bounded by a fair scheduler: -workers requests run at
// once, waiters queue FIFO per tenant and are granted slots round-robin
// across tenants, and once a tenant has -queue requests waiting, further
// ones are rejected with 429 and a Retry-After header.
//
// Above the trace cache sits a shared result cache: the finished NDJSON
// stream of each request is memoized by its canonical content key, so a
// repeated request skips rendering AND replay and is served the stored
// bytes (byte-identical to a fresh run). The cache is shared across
// tenants — results are pure functions of the request — and -result-dir
// persists finished streams across restarts. Grid requests bypass it:
// their row set depends on pruning frontier state.
//
// Usage:
//
//	texserve -addr :8321 -trace-dir /var/cache/texcache -result-dir /var/cache/texresults
//	texserve -addr 127.0.0.1:0 -addr-file /tmp/texserve.addr
//
// Endpoints:
//
//	POST /v1/experiments   run a request, stream NDJSON rows
//	GET  /v1/experiments   list registered experiment IDs
//	GET  /healthz          liveness probe
//	GET  /metrics          expvar metrics (also /debug/vars)
//	GET  /debug/pprof/     runtime profiles
//
// A request names its tenant in the body ("tenant") or the
// X-Texcache-Tenant header; requests without one share an anonymous
// bucket. Every response carries X-Texcache-Api-Version; error bodies
// are JSON {"v","code","error","field"} documents with wire-stable
// codes. SIGINT / SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"texcache"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8321", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent requests replaying at once")
	queue := flag.Int("queue", 16, "queued requests allowed per tenant before 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After interval advertised on 429 responses")
	traceDir := flag.String("trace-dir", "", "persist rendered traces in this directory across requests and restarts")
	resultDir := flag.String("result-dir", "", "persist finished result streams in this directory; repeat requests are served without re-simulating")
	renderWorkers := flag.Int("render-workers", 0, "tile-parallel rasterization workers per render (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")
	flag.Parse()

	reg := texcache.NewMetricsRegistry()
	texcache.AttachMetrics(reg)
	defer texcache.DetachMetrics()
	texcache.PublishMetricsExpvar("texcache", reg)

	srv, err := newServer(serverConfig{
		Workers:       *workers,
		Queue:         *queue,
		RetryAfter:    *retryAfter,
		TraceDir:      *traceDir,
		ResultDir:     *resultDir,
		RenderWorkers: *renderWorkers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "texserve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texserve:", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "texserve:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "texserve: listening on %s (workers %d, queue %d/tenant)\n",
		ln.Addr(), *workers, *queue)

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "texserve:", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "texserve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "texserve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "texserve: summary: %s\n", reg.SummaryLine())
	return 0
}
