# Tier-1 gate: everything CI (and every PR) must keep green.
.PHONY: ci vet build staticcheck test golden bench

ci: vet build staticcheck test

vet:
	go vet ./...

build:
	go build ./...

# staticcheck is optional tooling: run it when installed, skip with a
# notice otherwise so CI works on toolchain-only machines.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

# The race leg skips the golden sweep (build-tag gated: byte-identity
# gains nothing from the race detector and costs ~10x); the golden leg
# reruns it without -race.
test:
	go test -race ./...
	$(MAKE) golden

golden:
	go test -count=1 -run TestGoldenExperimentOutputs .

# bench runs the engine-focused benchmark set and writes the parsed
# results to BENCH_engine.json for regression tracking.
bench:
	go test -run '^$$' -bench 'BenchmarkSerialSweep|BenchmarkEngineSweep|BenchmarkEngineBatch|BenchmarkCacheAccess|BenchmarkStackDist' \
		-benchmem -count 1 . | go run ./cmd/benchjson -o BENCH_engine.json
