# Tier-1 gate: everything CI (and every PR) must keep green.
.PHONY: ci vet gofmt build staticcheck deprecated test golden cover bench bench-diff bench-check bench-server serve-smoke shard-smoke

ci: vet gofmt build staticcheck deprecated test cover bench-check serve-smoke shard-smoke

vet:
	go vet ./...

# Formatting is a gate, not a suggestion: the tree must be gofmt-clean.
gofmt:
	@out=$$(gofmt -l .) ; \
	if [ -n "$$out" ] ; then \
		echo "gofmt needed on:" ; echo "$$out" ; exit 1 ; \
	fi

build:
	go build ./...

# staticcheck is optional tooling: run it when installed, skip with a
# notice otherwise so CI works on toolchain-only machines.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

# Deprecated symbols are a one-PR migration device, not a parking lot:
# the facade's wrapper generation has been migrated and deleted, so the
# tree now carries no markers at all — a new one may appear only
# alongside its replacement and must be gone by the following PR. This
# is the grep half of staticcheck's SA1019 discipline and runs even
# where staticcheck is not installed.
deprecated:
	@if grep -rn --include='*.go' '^// Deprecated:' . ; then \
		echo "deprecated symbols found; migrate the callers and delete the wrappers instead" ; \
		exit 1 ; \
	fi

# The race leg skips the golden sweep (build-tag gated: byte-identity
# gains nothing from the race detector and costs ~10x); the golden leg
# reruns it without -race.
test:
	go test -race ./...
	$(MAKE) golden

golden:
	go test -count=1 -run TestGoldenExperimentOutputs .
	go test -count=1 -run '^Fuzz' ./internal/cache ./internal/texture

# cover enforces ratcheted coverage floors on the simulator-core
# packages: raise a floor when coverage improves, never lower it.
cover:
	@set -e; \
	for pf in ./internal/cache:92.0 ./internal/texture:90.0 ./internal/trace:90.0 ./internal/pipeline:85.0 ./internal/parallel:85.0 ./internal/cost:95.0 ./internal/shard:85.0 ./internal/engine:85.0 ; do \
		pkg=$${pf%:*} ; floor=$${pf#*:} ; \
		pct=$$(go test -count=1 -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p') ; \
		echo "coverage $$pkg: $$pct% (floor $$floor%)" ; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p+0 >= f+0) }' || { \
			echo "coverage of $$pkg fell below the $$floor% floor" ; exit 1 ; } ; \
	done

# bench runs the engine-focused benchmark set and writes the parsed
# results to BENCH_engine.json for regression tracking. The TraceGen
# pair measures the tile-parallel render path against the serial scan;
# the TraceEncode/TraceDecode pair and the TraceStore cold/warm pair
# track the compact trace codec and the persistent store.
BENCH_REGEX = BenchmarkSerialSweep|BenchmarkGroupedSweep|BenchmarkEngineSweep|BenchmarkEngineBatch|BenchmarkCacheAccess|BenchmarkStackDist|BenchmarkTraceGen|BenchmarkTraceEncode|BenchmarkTraceDecode|BenchmarkTraceStore|BenchmarkArch|BenchmarkShardedGrid|BenchmarkResultCache

bench:
	go test -run '^$$' -bench '$(BENCH_REGEX)' \
		-benchmem -count 1 . | go run ./cmd/benchjson -o BENCH_engine.json

# bench-diff reruns the recorded benchmark set and compares it against
# the committed BENCH_engine.json baseline: a gated hot-path benchmark
# more than 15% slower than its recorded ns/op fails. Timing is
# host-sensitive, so this is not a ci leg — run it on the baseline's
# host when touching the simulator's hot paths, and `make bench` to
# re-baseline when a slowdown is intended.
BENCH_DIFF_OUT ?= /tmp/texcache-bench-new.json
BENCH_SERVER_DIFF_OUT ?= /tmp/texcache-bench-server-new.json
bench-diff:
	go test -run '^$$' -bench '$(BENCH_REGEX)' \
		-benchmem -count 1 . | go run ./cmd/benchjson -o $(BENCH_DIFF_OUT)
	go run ./cmd/benchdiff BENCH_engine.json $(BENCH_DIFF_OUT)
	rm -f $(BENCH_SERVER_DIFF_OUT)
	TEXSERVE_BENCH_OUT=$(BENCH_SERVER_DIFF_OUT) \
		go test -count=1 -run 'TestServerWarmSpeedup' ./cmd/texserve
	@if [ -s $(BENCH_SERVER_DIFF_OUT) ] ; then \
		go run ./cmd/benchdiff -server BENCH_server.json $(BENCH_SERVER_DIFF_OUT) ; \
	else \
		echo "server gate skipped (no new BENCH_server metrics); server diff not run" ; \
	fi

# bench-check gates the performance claims: the grouped simulator must
# beat per-configuration serial simulation by at least 2x on the
# acceptance sweep, a warm trace store must run the acceptance batch at
# least 2x faster than the cold run that populated it, a warm result
# cache must serve the acceptance batch at least 10x faster than a
# trace-warm replay, a warm texserve must absorb the saturation burst at
# least 2x faster than a cold one (renders coalesced to the distinct-key
# count either way), and the prefetching texture-unit pipeline must beat
# the blocking baseline by at least 1.5x in simulated cycles at 100
# cycles of memory latency on every benchmark scene, and n=NumCPU
# coordinated shard workers must beat one worker process by at least
# 1.5x on a warm trace store. The timing gates are plain tests (skipped
# under -short and under -race); the cycle gate is exact and runs
# everywhere.
bench-check:
	go test -count=1 -run 'TestGroupedSweepSpeedup|TestTraceStoreWarmSpeedup|TestResultCacheWarmSpeedup|TestArchLatencyTolerance|TestTraceGenParallelSpeedup|TestBatchReplaySpeedup|TestShardScaling' .
	go test -count=1 -run 'TestServerWarmSpeedup' ./cmd/texserve

# bench-server reruns the texserve saturation gate and records its
# requests/s and latency percentiles (cold vs warm) in BENCH_server.json.
bench-server:
	TEXSERVE_BENCH_OUT=$(CURDIR)/BENCH_server.json \
		go test -count=1 -run 'TestServerWarmSpeedup' -v ./cmd/texserve

# serve-smoke boots a real texserve on a random port, bursts it with
# texload (mixed registered-experiment requests) and fails on zero
# completed requests or any 5xx — the end-to-end liveness check for the
# server binaries, with the trace store exercised via a temp dir. It
# then posts the same request twice under different tenants and demands
# byte-identical bodies plus a result-cache hit on /metrics: the repeat
# must be served from the result store, not re-simulated.
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d) ; \
	trap 'kill $$srv 2>/dev/null; rm -rf "$$tmp"' EXIT ; \
	go build -o "$$tmp/texserve" ./cmd/texserve ; \
	go build -o "$$tmp/texload" ./cmd/texload ; \
	"$$tmp/texserve" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" \
		-trace-dir "$$tmp/traces" -result-dir "$$tmp/results" \
		-workers 2 2>"$$tmp/server.log" & \
	srv=$$! ; \
	for i in $$(seq 1 50); do [ -s "$$tmp/addr" ] && break ; sleep 0.1 ; done ; \
	[ -s "$$tmp/addr" ] || { echo "texserve did not come up:"; cat "$$tmp/server.log"; exit 1 ; } ; \
	addr=$$(cat "$$tmp/addr") ; \
	"$$tmp/texload" -url "http://$$addr" -clients 4 -n 12 -tenant smoke \
		-exp fig5.2 -scenes goblet -scale 8 || { cat "$$tmp/server.log"; exit 1 ; } ; \
	"$$tmp/texload" -url "http://$$addr" -clients 2 -n 4 -tenant smoke-arch \
		-scene goblet -arch both -scale 8 || { cat "$$tmp/server.log"; exit 1 ; } ; \
	"$$tmp/texload" -url "http://$$addr" -tenant smoke -capture "$$tmp/first.ndjson" \
		-exp table2.1 -scenes goblet -scale 8 || { cat "$$tmp/server.log"; exit 1 ; } ; \
	"$$tmp/texload" -url "http://$$addr" -tenant smoke2 -capture "$$tmp/second.ndjson" \
		-exp table2.1 -scenes goblet -scale 8 || { cat "$$tmp/server.log"; exit 1 ; } ; \
	cmp "$$tmp/first.ndjson" "$$tmp/second.ndjson" || { \
		echo "repeat response body differs from the first" ; exit 1 ; } ; \
	"$$tmp/texload" -url "http://$$addr" -get /metrics > "$$tmp/metrics.json" ; \
	grep -Eq '"engine\.result_cache\.hits": *[1-9]' "$$tmp/metrics.json" || { \
		echo "repeat request did not hit the result cache:" ; \
		cat "$$tmp/metrics.json" ; exit 1 ; } ; \
	echo "serve-smoke ok"

# shard-smoke is the multi-process end-to-end check for the sweep
# coordinator: a tiny grid runs once unsharded and once as two real
# worker processes sharing a temp trace store, and the merged stream
# must be byte-identical to the single-process run.
shard-smoke:
	@set -e; \
	tmp=$$(mktemp -d) ; \
	trap 'rm -rf "$$tmp"' EXIT ; \
	go build -o "$$tmp/texsim" ./cmd/texsim ; \
	printf '%s' '{"scenes":["flight","town"],"scales":[8],"configs":[{"size_bytes":2048,"ways":1,"line_bytes":64},{"size_bytes":8192,"ways":2,"line_bytes":64}]}' \
		> "$$tmp/grid.json" ; \
	"$$tmp/texsim" -grid "$$tmp/grid.json" -scale 8 -trace-dir "$$tmp/traces" \
		> "$$tmp/plain.ndjson" 2>/dev/null ; \
	"$$tmp/texsim" -grid "$$tmp/grid.json" -scale 8 -coordinate 2 -trace-dir "$$tmp/traces" \
		> "$$tmp/merged.ndjson" 2>/dev/null ; \
	cmp "$$tmp/plain.ndjson" "$$tmp/merged.ndjson" || { \
		echo "coordinated output differs from single-process run" ; exit 1 ; } ; \
	echo "shard-smoke ok"
