# Tier-1 gate: everything CI (and every PR) must keep green.
.PHONY: ci vet build test bench

ci: vet build test

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...
