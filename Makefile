# Tier-1 gate: everything CI (and every PR) must keep green.
.PHONY: ci vet gofmt build staticcheck deprecated test golden cover bench bench-check

ci: vet gofmt build staticcheck deprecated test cover bench-check

vet:
	go vet ./...

# Formatting is a gate, not a suggestion: the tree must be gofmt-clean.
gofmt:
	@out=$$(gofmt -l .) ; \
	if [ -n "$$out" ] ; then \
		echo "gofmt needed on:" ; echo "$$out" ; exit 1 ; \
	fi

build:
	go build ./...

# staticcheck is optional tooling: run it when installed, skip with a
# notice otherwise so CI works on toolchain-only machines.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

# The public API carries no deprecated symbols: deprecations are removed
# in the next PR, not accumulated. This is the grep half of staticcheck's
# SA1019 discipline and runs even where staticcheck is not installed.
deprecated:
	@if grep -rn --include='*.go' '^// Deprecated:' . ; then \
		echo "deprecated symbols remain; remove them and migrate callers" ; \
		exit 1 ; \
	fi

# The race leg skips the golden sweep (build-tag gated: byte-identity
# gains nothing from the race detector and costs ~10x); the golden leg
# reruns it without -race.
test:
	go test -race ./...
	$(MAKE) golden

golden:
	go test -count=1 -run TestGoldenExperimentOutputs .
	go test -count=1 -run '^Fuzz' ./internal/cache ./internal/texture

# cover enforces ratcheted coverage floors on the simulator-core
# packages: raise a floor when coverage improves, never lower it.
cover:
	@set -e; \
	for pf in ./internal/cache:92.0 ./internal/texture:90.0 ./internal/trace:90.0 ; do \
		pkg=$${pf%:*} ; floor=$${pf#*:} ; \
		pct=$$(go test -count=1 -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p') ; \
		echo "coverage $$pkg: $$pct% (floor $$floor%)" ; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p+0 >= f+0) }' || { \
			echo "coverage of $$pkg fell below the $$floor% floor" ; exit 1 ; } ; \
	done

# bench runs the engine-focused benchmark set and writes the parsed
# results to BENCH_engine.json for regression tracking. The TraceGen
# pair measures the tile-parallel render path against the serial scan;
# the TraceEncode/TraceDecode pair and the TraceStore cold/warm pair
# track the compact trace codec and the persistent store.
bench:
	go test -run '^$$' -bench 'BenchmarkSerialSweep|BenchmarkGroupedSweep|BenchmarkEngineSweep|BenchmarkEngineBatch|BenchmarkCacheAccess|BenchmarkStackDist|BenchmarkTraceGen|BenchmarkTraceEncode|BenchmarkTraceDecode|BenchmarkTraceStore' \
		-benchmem -count 1 . | go run ./cmd/benchjson -o BENCH_engine.json

# bench-check gates the performance claims: the grouped simulator must
# beat per-configuration serial simulation by at least 2x on the
# acceptance sweep, and a warm trace store must run the acceptance
# batch at least 2x faster than the cold run that populated it. The
# gates are plain tests (skipped under -short and under -race) so they
# run anywhere the suite does.
bench-check:
	go test -count=1 -run 'TestGroupedSweepSpeedup|TestTraceStoreWarmSpeedup' .
