package texcache_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"texcache"
)

// sweep8 is the eight-configuration sweep the acceptance criteria name:
// concurrent single-pass replay must match serial replay on it exactly.
func sweep8() []texcache.CacheConfig {
	return []texcache.CacheConfig{
		{SizeBytes: 1 << 10, LineBytes: 32, Ways: 1},
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2},
		{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		{SizeBytes: 16 << 10, LineBytes: 128, Ways: 0}, // fully associative
		{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2},
		{SizeBytes: 64 << 10, LineBytes: 128, Ways: 4},
		{SizeBytes: 128 << 10, LineBytes: 256, Ways: 8},
	}
}

// TestConcurrentSweepMatchesSerial verifies the single-pass multi-config
// replay is bit-identical to serial replay on real rendered traces: two
// scenes, eight configurations each.
func TestConcurrentSweepMatchesSerial(t *testing.T) {
	for _, name := range []string{"goblet", "town"} {
		s, err := texcache.SceneByNameChecked(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
			s.DefaultTraversal())
		if err != nil {
			t.Fatal(err)
		}
		want := tr.SimulateConfigs(sweep8())
		got, err := tr.SimulateConfigsConcurrent(context.Background(), sweep8())
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range sweep8() {
			if got[i] != want[i] {
				t.Errorf("%s %+v: concurrent %+v != serial %+v", name, cfg, got[i], want[i])
			}
		}
	}
}

// runOutput executes a single-experiment request and returns its text
// output, failing the test on any error — the serial reference the
// batch comparison below measures against.
func runOutput(t *testing.T, id string, scale int, scenes []string) string {
	t.Helper()
	results, err := texcache.Run(context.Background(), texcache.ExperimentRequest{
		Experiments: []string{id}, Scale: scale, Scenes: scenes,
	})
	if err != nil {
		t.Fatalf("serial %s: %v", id, err)
	}
	var out string
	for r := range results {
		if r.Err != nil {
			t.Fatalf("serial %s: %v", id, r.Err)
		}
		out = r.Output
	}
	return out
}

// TestRunBatchMatchesSerial checks the engine's streamed output is
// byte-identical to one-experiment-at-a-time runs for every experiment
// in the batch.
func TestRunBatchMatchesSerial(t *testing.T) {
	ids := []string{"fig5.2", "fig5.7", "sectored"}
	scenes := []string{"goblet"}

	want := map[string]string{}
	for _, id := range ids {
		want[id] = runOutput(t, id, 8, scenes)
	}

	results, err := texcache.Run(context.Background(), texcache.ExperimentRequest{
		Experiments: ids, Scale: 8, Scenes: scenes,
	}, texcache.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for r := range results {
		n++
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
			continue
		}
		if r.ID != ids[r.Index] {
			t.Errorf("result %s has index %d", r.ID, r.Index)
		}
		if r.Output != want[r.ID] {
			t.Errorf("%s: engine output differs from serial", r.ID)
		}
	}
	if n != len(ids) {
		t.Errorf("got %d results, want %d", n, len(ids))
	}
}

func TestRunUnknownID(t *testing.T) {
	_, err := texcache.Run(context.Background(), texcache.ExperimentRequest{
		Experiments: []string{"nope"}, Scale: 8,
	})
	var ue *texcache.UnknownExperimentError
	if !errors.As(err, &ue) || ue.ID != "nope" {
		t.Fatalf("err = %v, want *UnknownExperimentError{nope}", err)
	}
}

// TestRunCancellation verifies a cancelled context stops the batch
// promptly, reporting the context error per experiment.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := texcache.Run(ctx, texcache.ExperimentRequest{
		Experiments: []string{"fig5.2", "fig5.7"}, Scale: 8, Scenes: []string{"goblet"},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			if r.Err == nil {
				t.Errorf("%s completed under a cancelled context", r.ID)
			} else if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled", r.ID, r.Err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not drain promptly")
	}
}

// TestCheckedConstructors covers the error-returning constructor family:
// every invalid configuration comes back as a *ConfigError.
func TestCheckedConstructors(t *testing.T) {
	bad := []texcache.CacheConfig{
		{SizeBytes: 0, LineBytes: 32, Ways: 1},        // zero size
		{SizeBytes: 1 << 10, LineBytes: 48, Ways: 1},  // non-power-of-two line
		{SizeBytes: 1 << 10, LineBytes: 32, Ways: 64}, // ways > lines
	}
	for _, cfg := range bad {
		var ce *texcache.ConfigError
		if _, err := texcache.NewCache(cfg); !errors.As(err, &ce) {
			t.Errorf("NewCache(%+v) = %v, want *ConfigError", cfg, err)
		}
		if _, err := texcache.NewClassifyingCache(cfg); !errors.As(err, &ce) {
			t.Errorf("NewClassifyingCache(%+v) = %v, want *ConfigError", cfg, err)
		}
		if _, err := texcache.NewSectoredCache(cfg, 32); !errors.As(err, &ce) {
			t.Errorf("NewSectoredCache(%+v) = %v, want *ConfigError", cfg, err)
		}
	}

	good := texcache.CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}
	c, err := texcache.NewCache(good)
	if err != nil || c == nil {
		t.Fatalf("NewCache(valid) = %v, %v", c, err)
	}
	cc, err := texcache.NewClassifyingCache(good)
	if err != nil || cc == nil {
		t.Fatalf("NewClassifyingCache(valid) = %v, %v", cc, err)
	}
	cc.Access(0)
	if s := cc.Stats(); s.Cold != 1 {
		t.Errorf("checked classifying cache does not classify: %+v", s)
	}
}

// TestUnknownSceneError covers the typed error from the checked scene
// lookup.
func TestUnknownSceneError(t *testing.T) {
	var ue *texcache.UnknownSceneError
	if _, err := texcache.SceneByNameChecked("nope", 1); !errors.As(err, &ue) || ue.Name != "nope" {
		t.Fatalf("SceneByNameChecked(nope) err = %v, want *UnknownSceneError{nope}", err)
	}
	if s, err := texcache.SceneByNameChecked("goblet", 8); err != nil || s == nil {
		t.Fatalf("SceneByNameChecked(goblet) = %v, %v", s, err)
	}
}
