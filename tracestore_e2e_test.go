package texcache_test

// End-to-end acceptance for the compact trace encoding and the
// persistent trace store: on a real rendered scene, the compact form
// must be at least 3x smaller than the materialized trace and replay
// bit-identically through every simulation path, and a warm store must
// make a repeat experiment run at least 2x faster than the cold run
// that populated it (the store replaces rendering with a file read).

import (
	"context"
	"testing"
	"time"

	"texcache"
)

// TestCompactTraceDifferentialStats replays one rendered goblet frame
// both materialized and compact-encoded through the serial, concurrent
// and grouped simulation paths, comparing classified statistics exactly.
func TestCompactTraceDifferentialStats(t *testing.T) {
	s := mustScene(t, "goblet", 4)
	tr, _, err := s.Trace(texcache.LayoutSpec{Kind: texcache.Blocked, BlockW: 8},
		s.DefaultTraversal())
	if err != nil {
		t.Fatal(err)
	}
	c := texcache.CompactTraceFromTrace(tr)
	if c.Len() != tr.Len() {
		t.Fatalf("compact trace has %d addresses, trace %d", c.Len(), tr.Len())
	}
	if r := c.Ratio(); r < 3 {
		t.Errorf("compact footprint ratio %.2fx on goblet, want >= 3x (%d -> %d bytes)",
			r, 8*tr.Len(), c.SizeBytes())
	}

	cfgs := sweep8()
	ctx := context.Background()
	want := tr.SimulateConfigs(cfgs)

	streamed, err := texcache.SimulateConfigsStream(ctx, c, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := texcache.SimulateConfigsGroupedStream(ctx, c, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if streamed[i] != want[i] {
			t.Errorf("%+v: compact concurrent stats %+v != serial %+v", cfg, streamed[i], want[i])
		}
		if grouped[i] != want[i] {
			t.Errorf("%+v: compact grouped stats %+v != serial %+v", cfg, grouped[i], want[i])
		}
	}

	// Single-sink serial replay, including the stack-distance profiler.
	wantSD := texcache.NewStackDist(128)
	tr.Replay(wantSD)
	gotSD := texcache.NewStackDist(128)
	texcache.ReplayStream(c, gotSD)
	for _, size := range []int{4 << 10, 32 << 10, 256 << 10} {
		if g, w := gotSD.MissRateAt(size), wantSD.MissRateAt(size); g != w {
			t.Errorf("stack-distance miss rate at %d bytes: compact %v != trace %v", size, g, w)
		}
	}
}

// storeBenchIDs is the experiment set the store timing gate and the
// cold/warm benchmarks run: render-dominated experiments over one scene.
var storeBenchIDs = []string{"fig5.2", "fig5.7"}

// runWithTraceDir runs the gate's experiment batch against the given
// store directory and fails the test on any experiment error.
func runWithTraceDir(tb testing.TB, dir string, scale int) {
	tb.Helper()
	req := texcache.ExperimentRequest{
		Experiments: storeBenchIDs, Scale: scale, Scenes: []string{"goblet"},
	}
	results, err := texcache.Run(context.Background(), req, texcache.WithTraceDir(dir))
	if err != nil {
		tb.Fatal(err)
	}
	for r := range results {
		if r.Err != nil {
			tb.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
}

// TestTraceStoreWarmSpeedup is the second bench-check gate (`make
// bench-check`): a batch served from a warm trace store must run at
// least 2x faster than the cold batch that populated it, because the
// store turns every render into a checksummed file read. The margin is
// structural — rendering dominates these experiments — so the gate
// holds on a single core.
func TestTraceStoreWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	const scale = 4
	warmDir := t.TempDir()
	runWithTraceDir(t, warmDir, scale) // populate, untimed

	// Best-of-3 on each side rejects scheduler noise. Every cold run
	// gets a fresh directory so it really renders.
	best := func(run func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	cold := best(func() { runWithTraceDir(t, t.TempDir(), scale) })
	warm := best(func() { runWithTraceDir(t, warmDir, scale) })

	speedup := float64(cold) / float64(warm)
	t.Logf("cold %v, warm %v: %.2fx", cold, warm, speedup)
	if speedup < 2 {
		t.Errorf("warm trace-store speedup %.2fx, want >= 2x (cold %v, warm %v)", speedup, cold, warm)
	}
}

// TestTraceDirOutputIdentical pins byte-identity across the store
// tiers at the texsim API level: the same experiment produces the same
// text with no store, with a cold store, and with a warm store.
func TestTraceDirOutputIdentical(t *testing.T) {
	const id = "fig5.4"
	req := texcache.ExperimentRequest{
		Experiments: []string{id}, Scale: 8, Scenes: []string{"goblet"},
	}
	run := func(opts ...texcache.ExperimentOption) string {
		t.Helper()
		results, err := texcache.Run(context.Background(), req, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var out string
		for r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.ID, r.Err)
			}
			out = r.Output
		}
		return out
	}
	want := run()
	dir := t.TempDir()
	if cold := run(texcache.WithTraceDir(dir)); cold != want {
		t.Error("cold trace-store run differs from storeless run")
	}
	if warm := run(texcache.WithTraceDir(dir)); warm != want {
		t.Error("warm trace-store run differs from storeless run")
	}
}
