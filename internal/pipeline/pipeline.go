// Package pipeline assembles the full software 3D polygonal graphics
// pipeline of Section 4.1: geometry transform, frustum clipping, vertex
// lighting, rasterization (via internal/raster), Mip Mapped texture
// mapping per the OpenGL specification (via internal/texture), Z-buffer
// hidden-surface removal and framebuffer output. Every texel fetched
// during texturing is reported to the attached cache simulator.
package pipeline

import (
	"fmt"
	"math"

	"texcache/internal/cache"
	"texcache/internal/cost"
	"texcache/internal/fb"
	"texcache/internal/geom"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// Camera bundles the view and projection transforms.
type Camera struct {
	View vecmath.Mat4
	Proj vecmath.Mat4
}

// LookAtCamera builds a camera at eye looking at center with a standard
// perspective projection.
func LookAtCamera(eye, center, up vecmath.Vec3, fovy, aspect, near, far float64) Camera {
	return Camera{
		View: vecmath.LookAt(eye, center, up),
		Proj: vecmath.Perspective(fovy, aspect, near, far),
	}
}

// DirectionalLight is a simple diffuse light for vertex shading.
type DirectionalLight struct {
	Dir     vecmath.Vec3 // direction the light travels
	Ambient float64
	Diffuse float64
}

// FrameStats accumulates per-frame pipeline counters, the raw material
// for the Table 4.1 benchmark characterization.
type FrameStats struct {
	TrianglesIn       int
	TrianglesClipped  int // dropped entirely by the frustum
	FragmentsTextured uint64
	FragmentsShaded   uint64
	TriangleAreaSum   float64 // total covered pixels, textured triangles
	TriangleWidthSum  float64 // bounding box widths, textured triangles
	TriangleHeightSum float64
	TexturedTris      int
}

// Renderer drives the pipeline for one output image.
type Renderer struct {
	Width, Height int
	FB            *fb.Framebuffer
	Traversal     raster.Traversal
	Light         *DirectionalLight
	Textures      []*texture.Texture
	// CullBack drops back-facing triangles (clockwise on a y-down screen)
	// before fragment generation, as closed-surface scenes enable in GL.
	CullBack bool
	// FragmentMask, when non-nil, restricts the renderer to the screen
	// pixels it claims — the image-space work partition of a parallel
	// machine with multiple fragment generators (Section 8). Fragments
	// outside the mask are dropped before shading and texturing.
	FragmentMask func(x, y int) bool

	// Sink receives every texel address fetched during texturing; nil
	// renders without tracing.
	Sink cache.Sink
	// OnAccess optionally observes every logical texel touch.
	OnAccess func(texture.AccessEvent)
	// Counters optionally accumulates the Table 2.1 operation costs.
	Counters *cost.Counters

	// RenderWorkers above one enables tile-parallel rasterization: the
	// frame's triangles are captured during DrawMesh and rasterized
	// across that many goroutines when Finish is called, with the texel
	// address stream merged back into the exact serial order. Zero or
	// one keeps the fully serial path. Frames with an OnAccess or
	// Counters consumer always render serially (those observe the
	// stream as it is produced).
	RenderWorkers int
	// TilePx is the screen-tile edge for the parallel path
	// (DefaultTilePx when zero or negative).
	TilePx int
	// TraceHint is the expected number of texel addresses the frame
	// will emit (scene-scale hint). The tile-parallel path divides it
	// across tiles by pixel share to pre-size per-tile trace buffers;
	// zero falls back to the trilinear eight-per-pixel estimate.
	TraceHint int

	Stats FrameStats

	sampler  texture.Sampler
	scratch  [2][]clipVertex
	deferred []screenTri
}

// NewRenderer returns a renderer for a width x height frame.
func NewRenderer(width, height int) *Renderer {
	return &Renderer{
		Width:  width,
		Height: height,
		FB:     fb.New(width, height),
	}
}

// TexelFetches returns the number of logical texel reads the renderer's
// sampler has performed, cumulative across frames.
func (r *Renderer) TexelFetches() uint64 { return r.sampler.Fetches }

// TextureByID returns the texture for a triangle's TexID, or nil when the
// triangle is untextured.
func (r *Renderer) TextureByID(id int) *texture.Texture {
	if id < 0 || id >= len(r.Textures) {
		return nil
	}
	return r.Textures[id]
}

// DrawMesh renders every triangle of the mesh in input order under the
// model transform, matching the paper's "triangles are rasterized in the
// same order that they are specified in the input".
func (r *Renderer) DrawMesh(m *geom.Mesh, model vecmath.Mat4, cam Camera) {
	mvp := cam.Proj.Mul(cam.View).Mul(model)
	for i := range m.Tris {
		r.drawTriangle(&m.Tris[i], model, mvp)
	}
}

func (r *Renderer) drawTriangle(tr *geom.Triangle, model, mvp vecmath.Mat4) {
	r.Stats.TrianglesIn++
	if r.Counters != nil {
		r.Counters.TriangleSetup()
	}

	var cv [3]clipVertex
	for i, v := range tr.V {
		shade := r.shadeVertex(v, model)
		cv[i] = clipVertex{
			Pos:   mvp.MulVec(vecmath.Point4(v.Pos)),
			UV:    v.UV,
			Color: shade,
		}
	}

	poly := clipTriangle(cv[0], cv[1], cv[2], &r.scratch)
	if len(poly) < 3 {
		r.Stats.TrianglesClipped++
		return
	}

	tex := r.TextureByID(tr.TexID)
	verts := make([]raster.Vert, len(poly))
	for i, p := range poly {
		verts[i] = r.toScreen(p)
	}
	if r.CullBack && len(verts) >= 3 {
		// Signed area of the projected polygon's first triangle: the clip
		// polygon is planar and convex, so one triangle determines the
		// winding. With this pipeline's y-down viewport, front faces (GL
		// counter-clockwise) project to positive signed area.
		a := (verts[1].X-verts[0].X)*(verts[2].Y-verts[0].Y) -
			(verts[1].Y-verts[0].Y)*(verts[2].X-verts[0].X)
		if a <= 0 {
			return
		}
	}
	// Fan-triangulate the clipped polygon.
	for i := 1; i+1 < len(verts); i++ {
		r.rasterizeScreenTri(verts[0], verts[i], verts[i+1], tex)
	}
	if tex != nil {
		r.Stats.TexturedTris++
		r.accumulateTriangleDims(verts)
	}
}

// shadeVertex computes the vertex color: base color modulated by a
// directional diffuse light, or the base color alone without a light.
func (r *Renderer) shadeVertex(v geom.Vertex, model vecmath.Mat4) vecmath.Vec3 {
	if r.Light == nil {
		return v.Color
	}
	n := model.TransformDir(v.Normal).Normalize()
	l := r.Light.Dir.Normalize().Scale(-1)
	diff := math.Max(0, n.Dot(l))
	k := vecmath.Clamp(r.Light.Ambient+r.Light.Diffuse*diff, 0, 1)
	return v.Color.Scale(k)
}

// toScreen maps a clip-space vertex to a rasterizer vertex: viewport
// transform plus the perspective pre-division of attributes.
func (r *Renderer) toScreen(p clipVertex) raster.Vert {
	invW := 1 / p.Pos.W
	ndcX := p.Pos.X * invW
	ndcY := p.Pos.Y * invW
	ndcZ := p.Pos.Z * invW
	return raster.Vert{
		X:    (ndcX + 1) * 0.5 * float64(r.Width),
		Y:    (1 - ndcY) * 0.5 * float64(r.Height), // y-down screen
		Z:    ndcZ,
		InvW: invW,
		UW:   p.UV.X * invW,
		VW:   p.UV.Y * invW,
		RW:   p.Color.X * invW,
		GW:   p.Color.Y * invW,
		BW:   p.Color.Z * invW,
	}
}

func (r *Renderer) rasterizeScreenTri(v0, v1, v2 raster.Vert, tex *texture.Texture) {
	if r.deferTri(v0, v1, v2, tex) {
		return
	}
	r.sampler.Sink = r.Sink
	r.sampler.OnAccess = r.OnAccess
	texW, texH := 0, 0
	if tex != nil {
		texW = tex.Mip.Levels[0].W
		texH = tex.Mip.Levels[0].H
	}
	raster.Rasterize(v0, v1, v2, r.Width, r.Height, texW, texH, r.Traversal,
		func(f *raster.Fragment) {
			r.shadeFragment(f, tex)
		})
}

// shadeFragment textures and shades one fragment, then resolves
// visibility. Texturing happens before the depth test, as in the OpenGL
// pipeline the paper models — occluded fragments still cost texture
// bandwidth.
func (r *Renderer) shadeFragment(f *raster.Fragment, tex *texture.Texture) {
	if r.FragmentMask != nil && !r.FragmentMask(f.X, f.Y) {
		return
	}
	r.Stats.FragmentsShaded++
	if r.Counters != nil {
		r.Counters.FragmentShade()
	}
	cr, cg, cb := f.R, f.G, f.B
	if tex != nil {
		r.Stats.FragmentsTextured++
		if r.Counters != nil {
			r.Counters.FragmentTexture(f.Lambda <= 0, tex.Layout.Cost())
		}
		c := r.sampler.Sample(tex, f.U, f.V, f.Lambda)
		cr *= c.R
		cg *= c.G
		cb *= c.B
	}
	if r.FB.DepthTest(f.X, f.Y, f.Z) {
		r.FB.SetPixel(f.X, f.Y, cr, cg, cb)
	}
}

func (r *Renderer) accumulateTriangleDims(verts []raster.Vert) {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, v := range verts {
		minX = math.Min(minX, v.X)
		maxX = math.Max(maxX, v.X)
		minY = math.Min(minY, v.Y)
		maxY = math.Max(maxY, v.Y)
	}
	// Polygon area via the shoelace formula over the clipped fan.
	area := 0.0
	for i := 1; i+1 < len(verts); i++ {
		a, b, c := verts[0], verts[i], verts[i+1]
		area += math.Abs((b.X-a.X)*(c.Y-a.Y)-(b.Y-a.Y)*(c.X-a.X)) / 2
	}
	r.Stats.TriangleAreaSum += area
	r.Stats.TriangleWidthSum += maxX - minX
	r.Stats.TriangleHeightSum += maxY - minY
}

// Validate checks the renderer is fully wired before a frame.
func (r *Renderer) Validate() error {
	if r.Width <= 0 || r.Height <= 0 {
		return fmt.Errorf("pipeline: invalid dimensions %dx%d", r.Width, r.Height)
	}
	if r.FB == nil {
		return fmt.Errorf("pipeline: nil framebuffer")
	}
	if r.FB.W != r.Width || r.FB.H != r.Height {
		return fmt.Errorf("pipeline: framebuffer %dx%d does not match renderer %dx%d",
			r.FB.W, r.FB.H, r.Width, r.Height)
	}
	return nil
}
