package pipeline

import (
	"math"
	"math/rand"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/cost"
	"texcache/internal/geom"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// clutterScene builds a renderer plus a mesh of many small random
// textured triangles, so triangles overlap in depth, straddle tile
// boundaries and arrive in an order the depth test cares about.
func clutterScene(t testing.TB, w, h, tris int) (*geom.Mesh, Camera, func() *Renderer) {
	t.Helper()
	mesh := &geom.Mesh{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < tris; i++ {
		cx := rng.Float64()*2.4 - 1.2
		cy := rng.Float64()*2.4 - 1.2
		cz := rng.Float64()*0.8 - 0.4
		var v [3]geom.Vertex
		for j := range v {
			v[j] = geom.Vertex{
				Pos: vecmath.Vec3{
					X: cx + rng.Float64()*0.5 - 0.25,
					Y: cy + rng.Float64()*0.5 - 0.25,
					Z: cz + rng.Float64()*0.1,
				},
				Normal: vecmath.Vec3{Z: 1},
				UV:     vecmath.Vec2{X: rng.Float64() * 3, Y: rng.Float64() * 3},
				Color:  vecmath.Vec3{X: 1, Y: 1, Z: 1},
			}
		}
		mesh.Add(v[0], v[1], v[2], 0)
	}
	cam := LookAtCamera(vecmath.Vec3{Z: 2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, float64(w)/float64(h), 0.1, 10)
	newRenderer := func() *Renderer {
		r := NewRenderer(w, h)
		arena := texture.NewArena()
		tex, err := texture.NewTexture(0, texture.Checker(64, 64, 8,
			texture.Texel{R: 255, G: 255, B: 255, A: 255}, texture.Texel{R: 40, G: 80, B: 120, A: 255}),
			texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}, arena)
		if err != nil {
			t.Fatal(err)
		}
		r.Textures = []*texture.Texture{tex}
		return r
	}
	return mesh, cam, newRenderer
}

// renderClutter draws the mesh and finishes the frame, returning the
// renderer and its recorded trace.
func renderClutter(mesh *geom.Mesh, cam Camera, r *Renderer) *cache.Trace {
	tr := cache.NewTrace(0)
	r.Sink = tr
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	r.Finish()
	return tr
}

// TestTileParallelMatchesSerial is the pipeline-level equivalence
// check: trace, framebuffer (color and depth), statistics and fetch
// counts must all be identical between the serial path and the tile
// pass at several worker counts and tile sizes, for each traversal.
func TestTileParallelMatchesSerial(t *testing.T) {
	const w, h = 120, 90
	mesh, cam, newRenderer := clutterScene(t, w, h, 120)
	travs := map[string]raster.Traversal{
		"horizontal": {Order: raster.RowMajor},
		"vertical":   {Order: raster.ColumnMajor},
		"hilbert":    {Order: raster.HilbertOrder},
		"tiled8":     {Order: raster.RowMajor, TileW: 8, TileH: 8},
	}
	for name, trav := range travs {
		t.Run(name, func(t *testing.T) {
			serial := newRenderer()
			serial.Traversal = trav
			serialTrace := renderClutter(mesh, cam, serial)
			if serialTrace.Len() == 0 {
				t.Fatal("serial trace empty")
			}
			for _, workers := range []int{2, 3, 8} {
				for _, tilePx := range []int{0, 16, 33} {
					par := newRenderer()
					par.Traversal = trav
					par.RenderWorkers = workers
					par.TilePx = tilePx
					parTrace := renderClutter(mesh, cam, par)

					if len(parTrace.Addrs) != len(serialTrace.Addrs) {
						t.Fatalf("workers=%d tile=%d: %d addrs, serial %d",
							workers, tilePx, len(parTrace.Addrs), len(serialTrace.Addrs))
					}
					for i := range serialTrace.Addrs {
						if parTrace.Addrs[i] != serialTrace.Addrs[i] {
							t.Fatalf("workers=%d tile=%d: addr %d = %#x, serial %#x",
								workers, tilePx, i, parTrace.Addrs[i], serialTrace.Addrs[i])
						}
					}
					if par.Stats != serial.Stats {
						t.Fatalf("workers=%d tile=%d: stats %+v, serial %+v",
							workers, tilePx, par.Stats, serial.Stats)
					}
					if par.TexelFetches() != serial.TexelFetches() {
						t.Fatalf("workers=%d tile=%d: fetches %d, serial %d",
							workers, tilePx, par.TexelFetches(), serial.TexelFetches())
					}
					for i := range serial.FB.Color {
						if par.FB.Color[i] != serial.FB.Color[i] || par.FB.Depth[i] != serial.FB.Depth[i] {
							t.Fatalf("workers=%d tile=%d: framebuffer differs at pixel %d",
								workers, tilePx, i)
						}
					}
				}
			}
		})
	}
}

// recordingSink is a generic (non-*cache.Trace) Sink, forcing the merge
// through the per-address interface path.
type recordingSink struct{ addrs []uint64 }

func (s *recordingSink) Access(a uint64) { s.addrs = append(s.addrs, a) }

// TestTileParallelGenericSink checks stream identity through the
// interface emission path, which the bulk *cache.Trace fast path
// bypasses.
func TestTileParallelGenericSink(t *testing.T) {
	const w, h = 96, 64
	mesh, cam, newRenderer := clutterScene(t, w, h, 60)

	serial := newRenderer()
	var want recordingSink
	serial.Sink = &want
	serial.DrawMesh(mesh, vecmath.Identity(), cam)
	serial.Finish()

	par := newRenderer()
	par.RenderWorkers = 4
	par.TilePx = 16
	var got recordingSink
	par.Sink = &got
	par.DrawMesh(mesh, vecmath.Identity(), cam)
	par.Finish()

	if len(got.addrs) != len(want.addrs) {
		t.Fatalf("%d addrs, serial %d", len(got.addrs), len(want.addrs))
	}
	for i := range want.addrs {
		if got.addrs[i] != want.addrs[i] {
			t.Fatalf("addr %d = %#x, serial %#x", i, got.addrs[i], want.addrs[i])
		}
	}
}

// TestTileParallelMaskMatchesSerial checks the parallel path under a
// FragmentMask (pure pixel predicate, so it stays parallel-eligible).
func TestTileParallelMaskMatchesSerial(t *testing.T) {
	const w, h = 96, 64
	mesh, cam, newRenderer := clutterScene(t, w, h, 60)
	mask := func(x, y int) bool { return (x/8+y/8)%2 == 0 }

	serial := newRenderer()
	serial.FragmentMask = mask
	serialTrace := renderClutter(mesh, cam, serial)

	par := newRenderer()
	par.FragmentMask = mask
	par.RenderWorkers = 3
	parTrace := renderClutter(mesh, cam, par)

	if serialTrace.Len() == 0 {
		t.Fatal("masked serial trace empty")
	}
	if len(parTrace.Addrs) != len(serialTrace.Addrs) {
		t.Fatalf("%d addrs, serial %d", len(parTrace.Addrs), len(serialTrace.Addrs))
	}
	for i := range serialTrace.Addrs {
		if parTrace.Addrs[i] != serialTrace.Addrs[i] {
			t.Fatalf("addr %d differs", i)
		}
	}
	if par.Stats != serial.Stats {
		t.Fatalf("stats %+v, serial %+v", par.Stats, serial.Stats)
	}
}

// TestOrderedConsumersStaySerial pins the fallback rule: frames with an
// OnAccess or Counters consumer render serially even when RenderWorkers
// asks for parallelism, because those observe the stream while it is
// produced.
func TestOrderedConsumersStaySerial(t *testing.T) {
	const w, h = 64, 64
	mesh, cam, newRenderer := clutterScene(t, w, h, 20)

	r := newRenderer()
	r.RenderWorkers = 4
	r.OnAccess = func(texture.AccessEvent) {}
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	if len(r.deferred) != 0 {
		t.Fatal("OnAccess frame deferred triangles for the tile pass")
	}

	r = newRenderer()
	r.RenderWorkers = 4
	r.Counters = &cost.Counters{}
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	if len(r.deferred) != 0 {
		t.Fatal("Counters frame deferred triangles for the tile pass")
	}
	if r.Stats.FragmentsShaded == 0 {
		t.Fatal("serial fallback rendered nothing")
	}

	// And a worker count of one is the serial path outright.
	r = newRenderer()
	r.RenderWorkers = 1
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	if len(r.deferred) != 0 {
		t.Fatal("single-worker frame deferred triangles")
	}
}

// TestFinishIsIdempotent checks Finish on a serial or already-finished
// frame is a no-op.
func TestFinishIsIdempotent(t *testing.T) {
	const w, h = 64, 64
	mesh, cam, newRenderer := clutterScene(t, w, h, 20)
	r := newRenderer()
	r.RenderWorkers = 2
	tr := cache.NewTrace(0)
	r.Sink = tr
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	r.Finish()
	n := tr.Len()
	if n == 0 {
		t.Fatal("no addresses")
	}
	stats := r.Stats
	r.Finish()
	if tr.Len() != n || r.Stats != stats {
		t.Fatal("second Finish changed the frame")
	}
}

// skewScene builds the adversarial load-imbalance frame: one giant quad
// covering the whole screen (two triangles binned to every tile) drawn
// first, then many tiny triangles crowded into one corner tile, then a
// light scatter elsewhere. One tile carries far more work than the rest,
// so the overlapped merge must wait on the straggler for the early
// triangles while the remaining tiles finish and drain around it.
func skewScene(t testing.TB, w, h int) (*geom.Mesh, Camera, func() *Renderer) {
	t.Helper()
	_, cam, newRenderer := clutterScene(t, w, h, 1)
	mesh := &geom.Mesh{}
	vert := func(x, y, z, u, v float64) geom.Vertex {
		return geom.Vertex{
			Pos:    vecmath.Vec3{X: x, Y: y, Z: z},
			Normal: vecmath.Vec3{Z: 1},
			UV:     vecmath.Vec2{X: u, Y: v},
			Color:  vecmath.Vec3{X: 1, Y: 1, Z: 1},
		}
	}
	// Fullscreen backdrop: overlaps every tile at depth 0.45.
	mesh.AddQuad(
		vert(-3, -3, 0.45, 0, 0), vert(3, -3, 0.45, 4, 0),
		vert(3, 3, 0.45, 4, 4), vert(-3, 3, 0.45, 0, 4), 0)
	rng := rand.New(rand.NewSource(42))
	tiny := func(cx, cy float64) {
		var v [3]geom.Vertex
		for j := range v {
			v[j] = vert(
				cx+rng.Float64()*0.06-0.03,
				cy+rng.Float64()*0.06-0.03,
				rng.Float64()*0.4-0.2,
				rng.Float64()*2, rng.Float64()*2)
		}
		mesh.Add(v[0], v[1], v[2], 0)
	}
	for i := 0; i < 300; i++ { // crowd the top-left corner tile
		tiny(-1.1+rng.Float64()*0.2, 0.9+rng.Float64()*0.2)
	}
	for i := 0; i < 40; i++ { // light scatter across the rest
		tiny(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return mesh, cam, newRenderer
}

// TestTileSkewDeterminism is the stress case for the pipelined merge:
// with one tile holding an order of magnitude more triangles than any
// other and a backdrop binned everywhere, the parallel trace, image and
// statistics must still match the serial frame exactly at every worker
// count and tile size.
func TestTileSkewDeterminism(t *testing.T) {
	const w, h = 128, 96
	mesh, cam, newRenderer := skewScene(t, w, h)

	serial := newRenderer()
	serialTrace := renderClutter(mesh, cam, serial)
	if serialTrace.Len() == 0 {
		t.Fatal("serial trace empty")
	}

	for _, workers := range []int{2, 4, 16} {
		for _, tilePx := range []int{0, 16} {
			par := newRenderer()
			par.RenderWorkers = workers
			par.TilePx = tilePx
			parTrace := renderClutter(mesh, cam, par)

			if len(parTrace.Addrs) != len(serialTrace.Addrs) {
				t.Fatalf("workers=%d tile=%d: %d addrs, serial %d",
					workers, tilePx, len(parTrace.Addrs), len(serialTrace.Addrs))
			}
			for i := range serialTrace.Addrs {
				if parTrace.Addrs[i] != serialTrace.Addrs[i] {
					t.Fatalf("workers=%d tile=%d: addr %d = %#x, serial %#x",
						workers, tilePx, i, parTrace.Addrs[i], serialTrace.Addrs[i])
				}
			}
			if par.Stats != serial.Stats {
				t.Fatalf("workers=%d tile=%d: stats %+v, serial %+v",
					workers, tilePx, par.Stats, serial.Stats)
			}
			for i := range serial.FB.Color {
				if par.FB.Color[i] != serial.FB.Color[i] || par.FB.Depth[i] != serial.FB.Depth[i] {
					t.Fatalf("workers=%d tile=%d: framebuffer differs at pixel %d",
						workers, tilePx, i)
				}
			}
		}
	}
}
