package pipeline

import (
	"math/rand"
	"testing"

	"texcache/internal/vecmath"
)

func cv(x, y, z, w float64) clipVertex {
	return clipVertex{Pos: vecmath.Vec4{X: x, Y: y, Z: z, W: w}}
}

func TestClipInsideTriangleUnchanged(t *testing.T) {
	var scratch [2][]clipVertex
	a, b, c := cv(0, 0, 0, 1), cv(0.5, 0, 0, 1), cv(0, 0.5, 0, 1)
	out := clipTriangle(a, b, c, &scratch)
	if len(out) != 3 {
		t.Fatalf("inside triangle clipped to %d vertices", len(out))
	}
	for i, want := range []clipVertex{a, b, c} {
		if out[i].Pos != want.Pos {
			t.Errorf("vertex %d changed: %v", i, out[i].Pos)
		}
	}
}

func TestClipOutsideTriangleEmpty(t *testing.T) {
	var scratch [2][]clipVertex
	// Entirely beyond the right plane: x > w.
	out := clipTriangle(cv(2, 0, 0, 1), cv(3, 0, 0, 1), cv(2, 1, 0, 1), &scratch)
	if len(out) != 0 {
		t.Errorf("outside triangle kept %d vertices", len(out))
	}
	// Entirely behind the eye: w < 0 fails every w+x / w-x pair.
	out = clipTriangle(cv(0, 0, 0, -1), cv(1, 0, 0, -1), cv(0, 1, 0, -1), &scratch)
	if len(out) != 0 {
		t.Errorf("behind-eye triangle kept %d vertices", len(out))
	}
}

func TestClipStraddlingProducesValidPolygon(t *testing.T) {
	// Property: every output vertex of a clipped triangle satisfies all
	// six plane inequalities (within epsilon), the polygon has at most 9
	// vertices, and attributes stay within the interpolation hull.
	rng := rand.New(rand.NewSource(77))
	var scratch [2][]clipVertex
	const eps = 1e-9
	for trial := 0; trial < 2000; trial++ {
		rv := func() clipVertex {
			v := cv(rng.NormFloat64()*2, rng.NormFloat64()*2, rng.NormFloat64()*2,
				rng.Float64()*3+0.01)
			v.UV = vecmath.Vec2{X: rng.Float64(), Y: rng.Float64()}
			return v
		}
		a, b, c := rv(), rv(), rv()
		out := clipTriangle(a, b, c, &scratch)
		if len(out) > 9 {
			t.Fatalf("trial %d: %d vertices", trial, len(out))
		}
		minU := min(a.UV.X, min(b.UV.X, c.UV.X))
		maxU := max(a.UV.X, max(b.UV.X, c.UV.X))
		for _, v := range out {
			for pi, plane := range frustumPlanes {
				if plane(v.Pos) < -eps*(1+abs64(v.Pos.W)) {
					t.Fatalf("trial %d: vertex %v violates plane %d by %g",
						trial, v.Pos, pi, plane(v.Pos))
				}
			}
			if v.UV.X < minU-eps || v.UV.X > maxU+eps {
				t.Fatalf("trial %d: interpolated u %g escapes [%g, %g]",
					trial, v.UV.X, minU, maxU)
			}
		}
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestClipEdgeIntersectionExact(t *testing.T) {
	// A segment from w=1,x=0 to w=1,x=2 crosses x=w at x=1; the clipped
	// vertex interpolates attributes at t=0.5.
	var scratch [2][]clipVertex
	a := cv(0, 0, 0, 1)
	a.UV = vecmath.Vec2{X: 0}
	b := cv(2, 0, 0, 1)
	b.UV = vecmath.Vec2{X: 1}
	c := cv(0, 0.5, 0, 1)
	c.UV = vecmath.Vec2{X: 0}
	out := clipTriangle(a, b, c, &scratch)
	foundBoundary := false
	for _, v := range out {
		if abs64(v.Pos.X-v.Pos.W) < 1e-12 { // on the x=w plane
			foundBoundary = true
			if abs64(v.UV.X-0.5) > 0.26 { // two boundary points exist; both have u in [0.24, 0.5]
				t.Errorf("boundary u = %g", v.UV.X)
			}
		}
	}
	if !foundBoundary {
		t.Error("no vertex on the clipping plane")
	}
}
