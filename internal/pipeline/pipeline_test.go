package pipeline

import (
	"math"
	"testing"

	"texcache/internal/cache"
	"texcache/internal/cost"
	"texcache/internal/geom"
	"texcache/internal/raster"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

// frontQuadScene builds a renderer looking straight at a textured quad
// that covers most of the view.
func frontQuadScene(t *testing.T, w, h int) (*Renderer, *geom.Mesh, Camera) {
	t.Helper()
	r := NewRenderer(w, h)
	arena := texture.NewArena()
	tex, err := texture.NewTexture(0, texture.Checker(64, 64, 8,
		texture.Texel{R: 255, G: 255, B: 255, A: 255}, texture.Texel{R: 0, G: 0, B: 0, A: 255}),
		texture.LayoutSpec{Kind: texture.NonBlockedKind}, arena)
	if err != nil {
		t.Fatal(err)
	}
	r.Textures = []*texture.Texture{tex}
	mesh := geom.Quad(2, 2, 0)
	cam := LookAtCamera(vecmath.Vec3{Z: 2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, float64(w)/float64(h), 0.1, 10)
	return r, mesh, cam
}

func TestRenderTexturedQuadCoverage(t *testing.T) {
	r, mesh, cam := frontQuadScene(t, 64, 64)
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	if r.Stats.TrianglesIn != 2 {
		t.Errorf("TrianglesIn = %d", r.Stats.TrianglesIn)
	}
	if r.Stats.FragmentsTextured == 0 {
		t.Fatal("no textured fragments")
	}
	// Quad spans [-1,1] at z=0 seen from z=2 with 90-degree fov: it covers
	// the middle half of the screen, so roughly 32x32 = 1024 pixels.
	got := float64(r.Stats.FragmentsTextured)
	if got < 900 || got > 1200 {
		t.Errorf("textured fragments = %v, want ~1024", got)
	}
	if r.FB.CoveredPixels() != int(r.Stats.FragmentsShaded) {
		t.Errorf("covered %d pixels but shaded %d fragments (no overlap expected)",
			r.FB.CoveredPixels(), r.Stats.FragmentsShaded)
	}
}

func TestRenderEmitsTexelAccesses(t *testing.T) {
	r, mesh, cam := frontQuadScene(t, 64, 64)
	tr := cache.NewTrace(0)
	r.Sink = tr
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	// Trilinear or bilinear: 4 or 8 accesses per textured fragment.
	n := uint64(tr.Len())
	if n < 4*r.Stats.FragmentsTextured || n > 8*r.Stats.FragmentsTextured {
		t.Errorf("%d accesses for %d fragments", n, r.Stats.FragmentsTextured)
	}
	// All addresses must fall inside the texture's layout region.
	l := r.Textures[0].Layout
	for _, a := range tr.Addrs {
		if a < l.Base() || a >= l.Base()+l.SizeBytes() {
			t.Fatalf("address %d outside texture memory", a)
		}
	}
}

func TestMagnifiedQuadUsesBilinear(t *testing.T) {
	// Small texture stretched over the screen: magnification everywhere,
	// so every fragment performs a 4-access bilinear fetch.
	r := NewRenderer(64, 64)
	arena := texture.NewArena()
	tex, err := texture.NewTexture(0, texture.Checker(8, 8, 2,
		texture.Texel{R: 255, A: 255}, texture.Texel{G: 255, A: 255}),
		texture.LayoutSpec{Kind: texture.NonBlockedKind}, arena)
	if err != nil {
		t.Fatal(err)
	}
	r.Textures = []*texture.Texture{tex}
	kinds := map[texture.AccessKind]int{}
	r.OnAccess = func(e texture.AccessEvent) { kinds[e.Kind]++ }
	cam := LookAtCamera(vecmath.Vec3{Z: 1.2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	r.DrawMesh(geom.Quad(2, 2, 0), vecmath.Identity(), cam)
	if kinds[texture.AccessBilinear] == 0 {
		t.Error("expected bilinear accesses for magnified texture")
	}
	if kinds[texture.AccessTrilinearLower] != kinds[texture.AccessTrilinearUpper] {
		t.Error("trilinear lower/upper counts should match")
	}
}

func TestMinifiedQuadUsesTrilinear(t *testing.T) {
	// Large texture on a small on-screen quad: minification, trilinear.
	r := NewRenderer(32, 32)
	arena := texture.NewArena()
	tex, err := texture.NewTexture(0, texture.Checker(256, 256, 8,
		texture.Texel{R: 255, A: 255}, texture.Texel{G: 255, A: 255}),
		texture.LayoutSpec{Kind: texture.NonBlockedKind}, arena)
	if err != nil {
		t.Fatal(err)
	}
	r.Textures = []*texture.Texture{tex}
	kinds := map[texture.AccessKind]int{}
	r.OnAccess = func(e texture.AccessEvent) { kinds[e.Kind]++ }
	cam := LookAtCamera(vecmath.Vec3{Z: 3}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	r.DrawMesh(geom.Quad(2, 2, 0), vecmath.Identity(), cam)
	if kinds[texture.AccessBilinear] != 0 {
		t.Errorf("unexpected bilinear accesses: %v", kinds)
	}
	if kinds[texture.AccessTrilinearLower] == 0 {
		t.Error("expected trilinear accesses")
	}
}

func TestZBufferOcclusion(t *testing.T) {
	// Two overlapping quads: the nearer one wins regardless of draw order.
	draw := func(nearFirst bool) [3]uint8 {
		r := NewRenderer(16, 16)
		near := geom.Quad(2, 2, -1)
		for i := range near.Tris {
			for j := range near.Tris[i].V {
				near.Tris[i].V[j].Color = vecmath.Vec3{X: 1} // red
			}
		}
		far := geom.Quad(2, 2, -1).Transform(vecmath.Translate(vecmath.Vec3{Z: -0.5}))
		for i := range far.Tris {
			for j := range far.Tris[i].V {
				far.Tris[i].V[j].Color = vecmath.Vec3{Y: 1} // green
			}
		}
		cam := LookAtCamera(vecmath.Vec3{Z: 2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
			math.Pi/2, 1, 0.1, 10)
		if nearFirst {
			r.DrawMesh(near, vecmath.Identity(), cam)
			r.DrawMesh(far, vecmath.Identity(), cam)
		} else {
			r.DrawMesh(far, vecmath.Identity(), cam)
			r.DrawMesh(near, vecmath.Identity(), cam)
		}
		c := r.FB.At(8, 8)
		return [3]uint8{c.R, c.G, c.B}
	}
	for _, nearFirst := range []bool{true, false} {
		c := draw(nearFirst)
		if c[0] == 0 || c[1] != 0 {
			t.Errorf("nearFirst=%v: center pixel = %v, want red", nearFirst, c)
		}
	}
}

func TestClippingDropsOffscreenTriangles(t *testing.T) {
	r := NewRenderer(16, 16)
	cam := LookAtCamera(vecmath.Vec3{Z: 2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	behind := geom.Quad(2, 2, -1).Transform(vecmath.Translate(vecmath.Vec3{Z: 5}))
	r.DrawMesh(behind, vecmath.Identity(), cam)
	if r.Stats.TrianglesClipped != 2 {
		t.Errorf("clipped = %d, want 2", r.Stats.TrianglesClipped)
	}
	if r.Stats.FragmentsShaded != 0 {
		t.Errorf("shaded %d fragments from an off-screen quad", r.Stats.FragmentsShaded)
	}
}

func TestClippingPartialTriangle(t *testing.T) {
	// A quad straddling the near plane still renders its visible part.
	r := NewRenderer(32, 32)
	cam := LookAtCamera(vecmath.Vec3{Z: 1}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.5, 10)
	// Rotate the quad so part of it crosses the near plane.
	m := geom.Quad(6, 6, -1).Transform(vecmath.RotateX(math.Pi / 2.5))
	r.DrawMesh(m, vecmath.Identity(), cam)
	if r.Stats.FragmentsShaded == 0 {
		t.Error("partially clipped quad rendered nothing")
	}
}

func TestLightingDarkensFacingAway(t *testing.T) {
	r := NewRenderer(16, 16)
	r.Light = &DirectionalLight{Dir: vecmath.Vec3{Z: -1}, Ambient: 0.2, Diffuse: 0.8}
	cam := LookAtCamera(vecmath.Vec3{Z: 2}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	r.DrawMesh(geom.Quad(2, 2, -1), vecmath.Identity(), cam)
	lit := r.FB.At(8, 8)

	r2 := NewRenderer(16, 16)
	r2.Light = &DirectionalLight{Dir: vecmath.Vec3{Z: 1}, Ambient: 0.2, Diffuse: 0.8}
	r2.DrawMesh(geom.Quad(2, 2, -1), vecmath.Identity(), cam)
	unlit := r2.FB.At(8, 8)
	if lit.R <= unlit.R {
		t.Errorf("front-lit %d should be brighter than back-lit %d", lit.R, unlit.R)
	}
	if unlit.R == 0 {
		t.Error("ambient term missing")
	}
}

func TestCountersWired(t *testing.T) {
	r, mesh, cam := frontQuadScene(t, 32, 32)
	r.Counters = cost.NewCounters()
	r.DrawMesh(mesh, vecmath.Identity(), cam)
	if r.Counters.Triangles != 2 {
		t.Errorf("counter triangles = %d", r.Counters.Triangles)
	}
	if r.Counters.TexturedFragments != r.Stats.FragmentsTextured {
		t.Error("counter/stat mismatch")
	}
	if r.Counters.TotalAccesses() == 0 {
		t.Error("no texture accesses counted")
	}
}

func TestTraversalAffectsOrderNotResult(t *testing.T) {
	render := func(trav raster.Traversal) (uint64, [3]uint8) {
		r, mesh, cam := frontQuadScene(t, 64, 64)
		r.Traversal = trav
		r.DrawMesh(mesh, vecmath.Identity(), cam)
		c := r.FB.At(32, 32)
		return r.Stats.FragmentsTextured, [3]uint8{c.R, c.G, c.B}
	}
	base, basePix := render(raster.Traversal{})
	for _, trav := range []raster.Traversal{
		{Order: raster.ColumnMajor},
		{Order: raster.RowMajor, TileW: 8, TileH: 8},
		{Order: raster.ColumnMajor, TileW: 16, TileH: 16},
	} {
		n, pix := render(trav)
		if n != base || pix != basePix {
			t.Errorf("traversal %+v changed output: %d/%v vs %d/%v", trav, n, pix, base, basePix)
		}
	}
}

func TestValidate(t *testing.T) {
	r := NewRenderer(8, 8)
	if err := r.Validate(); err != nil {
		t.Errorf("valid renderer rejected: %v", err)
	}
	r.Width = 0
	if err := r.Validate(); err == nil {
		t.Error("zero width accepted")
	}
	r2 := NewRenderer(8, 8)
	r2.FB = nil
	if err := r2.Validate(); err == nil {
		t.Error("nil framebuffer accepted")
	}
	r3 := NewRenderer(8, 8)
	r3.Width = 16
	if err := r3.Validate(); err == nil {
		t.Error("mismatched framebuffer accepted")
	}
}

func TestTextureByID(t *testing.T) {
	r, _, _ := frontQuadScene(t, 8, 8)
	if r.TextureByID(-1) != nil || r.TextureByID(5) != nil {
		t.Error("out-of-range TexID should be nil")
	}
	if r.TextureByID(0) == nil {
		t.Error("texture 0 missing")
	}
}
