// Tile-parallel rendering: the frame is decomposed into screen-space
// tiles, triangles are binned to the tiles their bounding boxes overlap,
// tiles are rasterized concurrently (each worker owns its tiles' pixels,
// so the Z-buffer and color writes need no locks), and the per-tile
// texel-access streams are merged back into the exact serial emission
// order. The merged cache.Trace is bit-identical to the serial
// renderer's for every traversal order: within a triangle, fragments
// carry their serial-traversal rank (internal/raster), and across
// triangles the input order is preserved, so a per-triangle k-way merge
// by rank reconstructs the serial sequence.
package pipeline

import (
	"sync"
	"time"

	"texcache/internal/cache"
	"texcache/internal/obs"
	"texcache/internal/raster"
	"texcache/internal/texture"
)

// DefaultTilePx is the default edge, in pixels, of the screen tiles the
// parallel renderer uses. 64 keeps the per-tile working set small while
// leaving enough tiles to load a pool at the paper's resolutions.
const DefaultTilePx = 64

// screenTri is one screen-space triangle captured during the geometry
// pass of a deferred frame, ready for rasterization.
type screenTri struct {
	v0, v1, v2 raster.Vert
	tex        *texture.Texture
}

// fragRec locates one textured fragment's addresses within its tile
// stream: rank is the fragment's serial-traversal rank within its
// triangle, n the number of addresses it emitted.
type fragRec struct {
	rank uint64
	n    uint32
}

// tileRange is the inclusive rectangle of grid tiles a triangle's
// clamped bounding box overlaps; tx1 < tx0 marks a triangle outside the
// screen. It is both the binning footprint and the merge's wait set.
type tileRange struct {
	tx0, ty0, tx1, ty1 int32
}

// triSpan is one triangle's contiguous slice of a tile stream, in frame
// triangle order.
type triSpan struct {
	seq            int // triangle sequence number within the frame
	fragLo, fragHi int
	addrLo, addrHi int
}

// tileStream accumulates one tile's rasterization output. It doubles as
// the tile sampler's cache.Sink so address emission stays a slice
// append.
type tileStream struct {
	rect raster.Rect
	tris []int32 // bound triangle sequence numbers, ascending

	addrs []uint64
	frags []fragRec
	spans []triSpan

	shaded, textured uint64
	fetches          uint64

	// done is closed by the rendering worker when the tile's stream is
	// complete; the overlapped merge waits on it per tile instead of on
	// a whole-frame barrier, so early tiles drain while later tiles
	// still rasterize.
	done chan struct{}
}

// Access implements cache.Sink.
func (ts *tileStream) Access(addr uint64) { ts.addrs = append(ts.addrs, addr) }

// tilePools recycles tile streams between frames, bucketed by tile
// pixel capacity (full tiles and the narrower edge tiles carry very
// different address volumes, so mixing them would bleed large buffers
// into small tiles and vice versa). Each bucket is a sync.Pool of
// *tileStream whose slices keep their grown capacity across frames —
// the per-frame allocation churn of the parallel render path was its
// biggest regression against the serial scan.
var tilePools sync.Map // tile pixel capacity (int) → *sync.Pool

// getTileStream returns a recycled (or fresh) stream for the rect,
// bound to the given triangle list. addrHint is the expected address
// volume of the tile (from the frame's scene-scale trace hint): a fresh
// or undersized stream pre-grows to it, so first frames reach steady-
// state capacity without walking the doubling ladder per tile.
func getTileStream(rect raster.Rect, tris []int32, addrHint int) *tileStream {
	capPx := (rect.X1 - rect.X0 + 1) * (rect.Y1 - rect.Y0 + 1)
	p, _ := tilePools.LoadOrStore(capPx, &sync.Pool{})
	ts, _ := p.(*sync.Pool).Get().(*tileStream)
	if ts == nil {
		ts = &tileStream{}
	}
	if addrHint > cap(ts.addrs) {
		ts.addrs = make([]uint64, 0, addrHint)
	}
	if capPx > cap(ts.frags) {
		ts.frags = make([]fragRec, 0, capPx)
	}
	ts.rect = rect
	ts.tris = tris
	ts.done = make(chan struct{})
	return ts
}

// putTileStream truncates the stream's buffers (keeping their capacity)
// and returns it to its capacity bucket. The caller must not touch the
// stream afterwards; in particular the address slices handed to the
// merge are dead once this runs.
func putTileStream(ts *tileStream) {
	capPx := (ts.rect.X1 - ts.rect.X0 + 1) * (ts.rect.Y1 - ts.rect.Y0 + 1)
	ts.tris = nil
	ts.done = nil
	ts.addrs = ts.addrs[:0]
	ts.frags = ts.frags[:0]
	ts.spans = ts.spans[:0]
	ts.shaded, ts.textured, ts.fetches = 0, 0, 0
	if p, ok := tilePools.Load(capPx); ok {
		p.(*sync.Pool).Put(ts)
	}
}

// parallelEligible reports whether the configured frame may take the
// tile-parallel path. OnAccess and Counters observe the stream while it
// is produced, in order, so frames using them keep the serial path; the
// trace Sink is ordered too, but its stream is reconstructed exactly by
// the merge.
func (r *Renderer) parallelEligible() bool {
	return r.RenderWorkers > 1 && r.OnAccess == nil && r.Counters == nil
}

// deferredPool recycles the captured-triangle slice across frames and
// renderers. Scene drivers build a fresh Renderer per frame, so without
// recycling every parallel frame re-walks the append doubling ladder
// over tens of thousands of screen triangles — the largest remaining
// per-frame allocation once the tile streams themselves were pooled.
var deferredPool sync.Pool

// deferTri captures a screen triangle for the tile pass, returning false
// when the frame is not running in deferred mode.
func (r *Renderer) deferTri(v0, v1, v2 raster.Vert, tex *texture.Texture) bool {
	if !r.parallelEligible() {
		return false
	}
	if r.deferred == nil {
		if s, ok := deferredPool.Get().(*[]screenTri); ok {
			r.deferred = (*s)[:0]
		}
	}
	r.deferred = append(r.deferred, screenTri{v0: v0, v1: v1, v2: v2, tex: tex})
	return true
}

// Finish completes the frame. For a deferred (tile-parallel) frame it
// bins the captured triangles, rasterizes the tiles across
// RenderWorkers goroutines and merges the texel-access streams back
// into serial order; for a serial frame it is a no-op, so callers may
// invoke it unconditionally after the frame's draws.
//
// The merge is pipelined: it runs on the calling goroutine concurrently
// with the tile workers, consuming each tile's spans as soon as that
// tile's stream completes instead of waiting for a whole-frame barrier.
// Triangles are merged in frame order, and the merge of triangle seq
// only waits on the tiles seq was binned to, so the long tail of a
// skewed frame (one huge tile, many small ones) overlaps with draining
// everything that is already done.
func (r *Renderer) Finish() {
	tris := r.deferred
	if len(tris) == 0 {
		return
	}
	r.deferred = nil
	// The capture slice is dead once the frame completes; recycle it for
	// the next frame's deferTri (this renderer's or any other's).
	defer func() {
		tris = tris[:0]
		deferredPool.Put(&tris)
	}()

	tile := r.TilePx
	if tile <= 0 {
		tile = DefaultTilePx
	}
	grid := raster.NewGrid(r.Width, r.Height, tile)

	// Bin triangles to the tiles their clamped bounding boxes overlap.
	// Binning is two counting passes into one flat slab instead of
	// per-tile append growth: a frame makes a handful of allocations
	// regardless of triangle count, and the stored per-triangle tile
	// ranges double as the merge's triangle -> tiles map.
	nTiles := grid.NumTiles()
	ranges := make([]tileRange, len(tris))
	cnt := make([]int32, nTiles+1)
	total := 0
	for seq := range tris {
		st := &tris[seq]
		bbox, ok := raster.Bounds(st.v0, st.v1, st.v2, r.Width, r.Height)
		if !ok {
			ranges[seq] = tileRange{tx0: 0, ty0: 0, tx1: -1, ty1: -1}
			continue
		}
		tx0, ty0, tx1, ty1 := grid.TileRange(bbox)
		ranges[seq] = tileRange{tx0: int32(tx0), ty0: int32(ty0), tx1: int32(tx1), ty1: int32(ty1)}
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				cnt[ty*grid.NX+tx]++
			}
		}
		total += (tx1 - tx0 + 1) * (ty1 - ty0 + 1)
	}
	// binOff[i]..binOff[i+1] brackets tile i's triangle list in binFlat;
	// cnt is reused as the per-tile fill cursor.
	binOff := make([]int32, nTiles+1)
	for i := 0; i < nTiles; i++ {
		binOff[i+1] = binOff[i] + cnt[i]
		cnt[i] = binOff[i]
	}
	binFlat := make([]int32, total)
	for seq := range tris {
		rg := ranges[seq]
		for ty := rg.ty0; ty <= rg.ty1; ty++ {
			for tx := rg.tx0; tx <= rg.tx1; tx++ {
				i := int(ty)*grid.NX + int(tx)
				binFlat[cnt[i]] = int32(seq)
				cnt[i]++
			}
		}
	}
	// Per-tile address pre-sizing: share of the frame's expected address
	// volume proportional to the tile's pixel count.
	perPx := 8 // trilinear footprint: eight texels per textured fragment
	if r.TraceHint > 0 && r.Width > 0 && r.Height > 0 {
		if p := r.TraceHint / (r.Width * r.Height); p > 0 {
			perPx = p
		}
	}
	// streamOf maps a tile index to its stream (-1 for empty tiles), for
	// the merge's range walk.
	streamOf := make([]int32, nTiles)
	var streams []*tileStream
	for i := 0; i < nTiles; i++ {
		if binOff[i+1] == binOff[i] {
			streamOf[i] = -1
			continue
		}
		rect := grid.Rect(i)
		hint := (rect.X1 - rect.X0 + 1) * (rect.Y1 - rect.Y0 + 1) * perPx
		streamOf[i] = int32(len(streams))
		streams = append(streams, getTileStream(rect, binFlat[binOff[i]:binOff[i+1]], hint))
	}
	if len(streams) == 0 {
		return
	}

	// Rasterize the tiles on the worker pool. Tiles partition the
	// screen, so each worker writes disjoint framebuffer indices —
	// no locks on the hot path. The work channel is pre-loaded so the
	// caller is free to merge while the workers run.
	start := time.Now()
	workers := r.RenderWorkers
	if workers > len(streams) {
		workers = len(streams)
	}
	work := make(chan *tileStream, len(streams))
	for _, ts := range streams {
		work <- ts
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ts := range work {
				r.renderTile(ts, tris)
				close(ts.done)
			}
		}()
	}

	// Overlapped merge: drain completed tiles' spans while later tiles
	// still render. Each tile's stream is written only by its rendering
	// worker before done closes, so the merge reads it race-free.
	if r.Sink != nil {
		r.mergeStreams(tris, streams, ranges, streamOf, grid.NX)
	}
	wg.Wait()

	// Fold the tile counters into the frame statistics; every counter is
	// a plain sum over the partition, so the totals match a serial frame.
	for _, ts := range streams {
		r.Stats.FragmentsShaded += ts.shaded
		r.Stats.FragmentsTextured += ts.textured
		r.sampler.Fetches += ts.fetches
	}
	// Tile metrics flush once per frame, never per tile element. The
	// tile_pass timer covers rasterization plus the overlapped merge.
	rend := obs.Default().Sub("render")
	rend.Counter("tiles").Add(uint64(len(streams)))
	rend.Timer("tile_pass").ObserveSince(start)

	for _, ts := range streams {
		putTileStream(ts)
	}
}

// renderTile rasterizes every triangle bound to the tile, in frame
// order, clipped to the tile rect. Depth resolution is exact: the tile
// owns its pixels, and triangles arrive in the same relative order as
// the serial frame, so every depth test sees the same prior state.
func (r *Renderer) renderTile(ts *tileStream, tris []screenTri) {
	var smp texture.Sampler
	if r.Sink != nil {
		smp.Sink = ts
	}
	for _, seq := range ts.tris {
		st := &tris[seq]
		span := triSpan{seq: int(seq), fragLo: len(ts.frags), addrLo: len(ts.addrs)}
		texW, texH := 0, 0
		if st.tex != nil {
			texW = st.tex.Mip.Levels[0].W
			texH = st.tex.Mip.Levels[0].H
		}
		raster.RasterizeRect(st.v0, st.v1, st.v2, r.Width, r.Height, texW, texH, r.Traversal, ts.rect,
			func(f *raster.Fragment, rank uint64) {
				if r.FragmentMask != nil && !r.FragmentMask(f.X, f.Y) {
					return
				}
				ts.shaded++
				cr, cg, cb := f.R, f.G, f.B
				if st.tex != nil {
					ts.textured++
					before := len(ts.addrs)
					c := smp.Sample(st.tex, f.U, f.V, f.Lambda)
					cr *= c.R
					cg *= c.G
					cb *= c.B
					if n := len(ts.addrs) - before; n > 0 {
						ts.frags = append(ts.frags, fragRec{rank: rank, n: uint32(n)})
					}
				}
				if r.FB.DepthTest(f.X, f.Y, f.Z) {
					r.FB.SetPixel(f.X, f.Y, cr, cg, cb)
				}
			})
		span.fragHi, span.addrHi = len(ts.frags), len(ts.addrs)
		if span.addrHi > span.addrLo {
			ts.spans = append(ts.spans, span)
		}
	}
	ts.fetches = smp.Fetches
}

// mergeStreams replays the per-tile address streams into the frame Sink
// in the exact serial emission order: triangles in frame order, and
// within a triangle a k-way merge of the participating tiles' fragment
// runs by rank. Each tile's stream is already rank-sorted (a clipped
// scan visits pixels in serial order), so the merge is linear.
//
// The merge runs concurrently with the tile workers: before touching a
// triangle's spans it waits (receives on a closed channel are nearly
// free after the first) for the tiles the triangle was binned to — its
// stored tileRange — so spans of completed tiles flow into the sink
// while unrelated tiles are still rasterizing. The range walk also
// keeps the per-triangle scan away from tiles that cannot hold it,
// making the merge O(bin entries) instead of O(triangles x tiles).
func (r *Renderer) mergeStreams(tris []screenTri, streams []*tileStream,
	ranges []tileRange, streamOf []int32, nx int) {
	bulk, _ := r.Sink.(cache.BulkSink)
	emitRun := func(addrs []uint64) {
		if bulk != nil {
			// Bulk append (Trace grows by doubling) instead of a
			// per-address interface call.
			bulk.AccessBulk(addrs)
			return
		}
		for _, a := range addrs {
			r.Sink.Access(a)
		}
	}

	// merge_backlog tracks how many tile streams the merge has not yet
	// fully consumed; it drains to zero as their spans are emitted.
	backlog := obs.Default().Sub("render").Gauge("merge_backlog")
	backlog.Set(int64(len(streams)))
	defer backlog.Set(0)

	// cur[i] walks stream i's span list; spans are in ascending seq.
	cur := make([]int, len(streams))
	drained := make([]bool, len(streams))
	type head struct {
		ts   *tileStream
		span triSpan
		frag int // next fragment record
		addr int // next address
	}
	var heads []head
	for seq := range tris {
		heads = heads[:0]
		rg := ranges[seq]
		for ty := rg.ty0; ty <= rg.ty1; ty++ {
			for tx := rg.tx0; tx <= rg.tx1; tx++ {
				si := streamOf[int(ty)*nx+int(tx)]
				ts := streams[si]
				<-ts.done
				if cur[si] < len(ts.spans) && ts.spans[cur[si]].seq == seq {
					heads = append(heads, head{ts: ts, span: ts.spans[cur[si]]})
					cur[si]++
				}
				if !drained[si] && cur[si] >= len(ts.spans) {
					// Stream fully consumed (or empty): counted once.
					drained[si] = true
					backlog.Add(-1)
				}
			}
		}
		switch len(heads) {
		case 0:
			continue
		case 1:
			// Single-tile triangle: its stream already is the serial
			// order — bulk append.
			sp := heads[0].span
			emitRun(heads[0].ts.addrs[sp.addrLo:sp.addrHi])
			continue
		}
		for i := range heads {
			heads[i].frag = heads[i].span.fragLo
			heads[i].addr = heads[i].span.addrLo
		}
		for len(heads) > 0 {
			// Smallest rank across the heads is the next serial
			// fragment; ranks are distinct across tiles because tiles
			// partition the pixels.
			best := 0
			for i := 1; i < len(heads); i++ {
				if heads[i].ts.frags[heads[i].frag].rank < heads[best].ts.frags[heads[best].frag].rank {
					best = i
				}
			}
			h := &heads[best]
			n := int(h.ts.frags[h.frag].n)
			emitRun(h.ts.addrs[h.addr : h.addr+n])
			h.frag++
			h.addr += n
			if h.frag == h.span.fragHi {
				heads[best] = heads[len(heads)-1]
				heads = heads[:len(heads)-1]
			}
		}
	}
}
