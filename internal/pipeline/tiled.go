// Tile-parallel rendering: the frame is decomposed into screen-space
// tiles, triangles are binned to the tiles their bounding boxes overlap,
// tiles are rasterized concurrently (each worker owns its tiles' pixels,
// so the Z-buffer and color writes need no locks), and the per-tile
// texel-access streams are merged back into the exact serial emission
// order. The merged cache.Trace is bit-identical to the serial
// renderer's for every traversal order: within a triangle, fragments
// carry their serial-traversal rank (internal/raster), and across
// triangles the input order is preserved, so a per-triangle k-way merge
// by rank reconstructs the serial sequence.
package pipeline

import (
	"sync"
	"time"

	"texcache/internal/cache"
	"texcache/internal/obs"
	"texcache/internal/raster"
	"texcache/internal/texture"
)

// DefaultTilePx is the default edge, in pixels, of the screen tiles the
// parallel renderer uses. 64 keeps the per-tile working set small while
// leaving enough tiles to load a pool at the paper's resolutions.
const DefaultTilePx = 64

// screenTri is one screen-space triangle captured during the geometry
// pass of a deferred frame, ready for rasterization.
type screenTri struct {
	v0, v1, v2 raster.Vert
	tex        *texture.Texture
}

// fragRec locates one textured fragment's addresses within its tile
// stream: rank is the fragment's serial-traversal rank within its
// triangle, n the number of addresses it emitted.
type fragRec struct {
	rank uint64
	n    uint32
}

// triSpan is one triangle's contiguous slice of a tile stream, in frame
// triangle order.
type triSpan struct {
	seq            int // triangle sequence number within the frame
	fragLo, fragHi int
	addrLo, addrHi int
}

// tileStream accumulates one tile's rasterization output. It doubles as
// the tile sampler's cache.Sink so address emission stays a slice
// append.
type tileStream struct {
	rect raster.Rect
	tris []int // bound triangle sequence numbers, ascending

	addrs []uint64
	frags []fragRec
	spans []triSpan

	shaded, textured uint64
	fetches          uint64
}

// Access implements cache.Sink.
func (ts *tileStream) Access(addr uint64) { ts.addrs = append(ts.addrs, addr) }

// tilePools recycles tile streams between frames, bucketed by tile
// pixel capacity (full tiles and the narrower edge tiles carry very
// different address volumes, so mixing them would bleed large buffers
// into small tiles and vice versa). Each bucket is a sync.Pool of
// *tileStream whose slices keep their grown capacity across frames —
// the per-frame allocation churn of the parallel render path was its
// biggest regression against the serial scan.
var tilePools sync.Map // tile pixel capacity (int) → *sync.Pool

// getTileStream returns a recycled (or fresh) stream for the rect,
// bound to the given triangle list.
func getTileStream(rect raster.Rect, tris []int) *tileStream {
	capPx := (rect.X1 - rect.X0 + 1) * (rect.Y1 - rect.Y0 + 1)
	p, _ := tilePools.LoadOrStore(capPx, &sync.Pool{})
	ts, _ := p.(*sync.Pool).Get().(*tileStream)
	if ts == nil {
		ts = &tileStream{}
	}
	ts.rect = rect
	ts.tris = tris
	return ts
}

// putTileStream truncates the stream's buffers (keeping their capacity)
// and returns it to its capacity bucket. The caller must not touch the
// stream afterwards; in particular the address slices handed to the
// merge are dead once this runs.
func putTileStream(ts *tileStream) {
	capPx := (ts.rect.X1 - ts.rect.X0 + 1) * (ts.rect.Y1 - ts.rect.Y0 + 1)
	ts.tris = nil
	ts.addrs = ts.addrs[:0]
	ts.frags = ts.frags[:0]
	ts.spans = ts.spans[:0]
	ts.shaded, ts.textured, ts.fetches = 0, 0, 0
	if p, ok := tilePools.Load(capPx); ok {
		p.(*sync.Pool).Put(ts)
	}
}

// parallelEligible reports whether the configured frame may take the
// tile-parallel path. OnAccess and Counters observe the stream while it
// is produced, in order, so frames using them keep the serial path; the
// trace Sink is ordered too, but its stream is reconstructed exactly by
// the merge.
func (r *Renderer) parallelEligible() bool {
	return r.RenderWorkers > 1 && r.OnAccess == nil && r.Counters == nil
}

// deferTri captures a screen triangle for the tile pass, returning false
// when the frame is not running in deferred mode.
func (r *Renderer) deferTri(v0, v1, v2 raster.Vert, tex *texture.Texture) bool {
	if !r.parallelEligible() {
		return false
	}
	r.deferred = append(r.deferred, screenTri{v0: v0, v1: v1, v2: v2, tex: tex})
	return true
}

// Finish completes the frame. For a deferred (tile-parallel) frame it
// bins the captured triangles, rasterizes the tiles across
// RenderWorkers goroutines and merges the texel-access streams back
// into serial order; for a serial frame it is a no-op, so callers may
// invoke it unconditionally after the frame's draws.
func (r *Renderer) Finish() {
	tris := r.deferred
	if len(tris) == 0 {
		return
	}
	r.deferred = r.deferred[:0]

	tile := r.TilePx
	if tile <= 0 {
		tile = DefaultTilePx
	}
	grid := raster.NewGrid(r.Width, r.Height, tile)

	// Bin triangles to the tiles their clamped bounding boxes overlap.
	bins := make([][]int, grid.NumTiles())
	for seq := range tris {
		st := &tris[seq]
		bbox, ok := raster.Bounds(st.v0, st.v1, st.v2, r.Width, r.Height)
		if !ok {
			continue
		}
		tx0, ty0, tx1, ty1 := grid.TileRange(bbox)
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				i := ty*grid.NX + tx
				bins[i] = append(bins[i], seq)
			}
		}
	}
	streams := make([]*tileStream, 0, len(bins))
	for i, bin := range bins {
		if len(bin) > 0 {
			streams = append(streams, getTileStream(grid.Rect(i), bin))
		}
	}
	if len(streams) == 0 {
		return
	}

	// Rasterize the tiles on the worker pool. Tiles partition the
	// screen, so each worker writes disjoint framebuffer indices —
	// no locks on the hot path.
	start := time.Now()
	workers := r.RenderWorkers
	if workers > len(streams) {
		workers = len(streams)
	}
	work := make(chan *tileStream)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ts := range work {
				r.renderTile(ts, tris)
			}
		}()
	}
	for _, ts := range streams {
		work <- ts
	}
	close(work)
	wg.Wait()

	// Fold the tile counters into the frame statistics; every counter is
	// a plain sum over the partition, so the totals match a serial frame.
	for _, ts := range streams {
		r.Stats.FragmentsShaded += ts.shaded
		r.Stats.FragmentsTextured += ts.textured
		r.sampler.Fetches += ts.fetches
	}
	// Tile metrics flush once per frame, never per tile element.
	rend := obs.Default().Sub("render")
	rend.Counter("tiles").Add(uint64(len(streams)))
	rend.Timer("tile_pass").ObserveSince(start)

	if r.Sink != nil {
		r.mergeStreams(tris, streams)
	}
	for _, ts := range streams {
		putTileStream(ts)
	}
}

// renderTile rasterizes every triangle bound to the tile, in frame
// order, clipped to the tile rect. Depth resolution is exact: the tile
// owns its pixels, and triangles arrive in the same relative order as
// the serial frame, so every depth test sees the same prior state.
func (r *Renderer) renderTile(ts *tileStream, tris []screenTri) {
	var smp texture.Sampler
	if r.Sink != nil {
		smp.Sink = ts
	}
	for _, seq := range ts.tris {
		st := &tris[seq]
		span := triSpan{seq: seq, fragLo: len(ts.frags), addrLo: len(ts.addrs)}
		texW, texH := 0, 0
		if st.tex != nil {
			texW = st.tex.Mip.Levels[0].W
			texH = st.tex.Mip.Levels[0].H
		}
		raster.RasterizeRect(st.v0, st.v1, st.v2, r.Width, r.Height, texW, texH, r.Traversal, ts.rect,
			func(f *raster.Fragment, rank uint64) {
				if r.FragmentMask != nil && !r.FragmentMask(f.X, f.Y) {
					return
				}
				ts.shaded++
				cr, cg, cb := f.R, f.G, f.B
				if st.tex != nil {
					ts.textured++
					before := len(ts.addrs)
					c := smp.Sample(st.tex, f.U, f.V, f.Lambda)
					cr *= c.R
					cg *= c.G
					cb *= c.B
					if n := len(ts.addrs) - before; n > 0 {
						ts.frags = append(ts.frags, fragRec{rank: rank, n: uint32(n)})
					}
				}
				if r.FB.DepthTest(f.X, f.Y, f.Z) {
					r.FB.SetPixel(f.X, f.Y, cr, cg, cb)
				}
			})
		span.fragHi, span.addrHi = len(ts.frags), len(ts.addrs)
		if span.addrHi > span.addrLo {
			ts.spans = append(ts.spans, span)
		}
	}
	ts.fetches = smp.Fetches
}

// mergeStreams replays the per-tile address streams into the frame Sink
// in the exact serial emission order: triangles in frame order, and
// within a triangle a k-way merge of the participating tiles' fragment
// runs by rank. Each tile's stream is already rank-sorted (a clipped
// scan visits pixels in serial order), so the merge is linear.
func (r *Renderer) mergeStreams(tris []screenTri, streams []*tileStream) {
	bulk, _ := r.Sink.(cache.BulkSink)
	emitRun := func(addrs []uint64) {
		if bulk != nil {
			// Bulk append (Trace grows by doubling) instead of a
			// per-address interface call.
			bulk.AccessBulk(addrs)
			return
		}
		for _, a := range addrs {
			r.Sink.Access(a)
		}
	}

	// merge_backlog tracks how many tile streams still hold unmerged
	// spans; it drains to zero as the merge consumes them.
	pending := 0
	for _, ts := range streams {
		if len(ts.spans) > 0 {
			pending++
		}
	}
	backlog := obs.Default().Sub("render").Gauge("merge_backlog")
	backlog.Set(int64(pending))
	defer backlog.Set(0)

	// cur[i] walks stream i's span list; spans are in ascending seq.
	cur := make([]int, len(streams))
	type head struct {
		ts   *tileStream
		span triSpan
		frag int // next fragment record
		addr int // next address
	}
	var heads []head
	for seq := range tris {
		heads = heads[:0]
		for i, ts := range streams {
			if cur[i] < len(ts.spans) && ts.spans[cur[i]].seq == seq {
				heads = append(heads, head{ts: ts, span: ts.spans[cur[i]]})
				cur[i] = cur[i] + 1
				if cur[i] == len(ts.spans) {
					backlog.Add(-1)
				}
			}
		}
		switch len(heads) {
		case 0:
			continue
		case 1:
			// Single-tile triangle: its stream already is the serial
			// order — bulk append.
			sp := heads[0].span
			emitRun(heads[0].ts.addrs[sp.addrLo:sp.addrHi])
			continue
		}
		for i := range heads {
			heads[i].frag = heads[i].span.fragLo
			heads[i].addr = heads[i].span.addrLo
		}
		for len(heads) > 0 {
			// Smallest rank across the heads is the next serial
			// fragment; ranks are distinct across tiles because tiles
			// partition the pixels.
			best := 0
			for i := 1; i < len(heads); i++ {
				if heads[i].ts.frags[heads[i].frag].rank < heads[best].ts.frags[heads[best].frag].rank {
					best = i
				}
			}
			h := &heads[best]
			n := int(h.ts.frags[h.frag].n)
			emitRun(h.ts.addrs[h.addr : h.addr+n])
			h.frag++
			h.addr += n
			if h.frag == h.span.fragHi {
				heads[best] = heads[len(heads)-1]
				heads = heads[:len(heads)-1]
			}
		}
	}
}
