package pipeline

import "texcache/internal/vecmath"

// clipVertex is a vertex in homogeneous clip space with the attributes
// that must survive clipping.
type clipVertex struct {
	Pos   vecmath.Vec4
	UV    vecmath.Vec2
	Color vecmath.Vec3
}

// lerpClip interpolates every attribute between a and b.
func lerpClip(a, b clipVertex, t float64) clipVertex {
	return clipVertex{
		Pos:   a.Pos.Lerp(b.Pos, t),
		UV:    a.UV.Lerp(b.UV, t),
		Color: a.Color.Lerp(b.Color, t),
	}
}

// clipPlane evaluates one frustum half-space: inside when the returned
// distance is >= 0. The six planes of the canonical clip volume are
// w+x, w-x, w+y, w-y, w+z, w-z >= 0.
type clipPlane func(vecmath.Vec4) float64

var frustumPlanes = []clipPlane{
	func(p vecmath.Vec4) float64 { return p.W + p.X },
	func(p vecmath.Vec4) float64 { return p.W - p.X },
	func(p vecmath.Vec4) float64 { return p.W + p.Y },
	func(p vecmath.Vec4) float64 { return p.W - p.Y },
	func(p vecmath.Vec4) float64 { return p.W + p.Z },
	func(p vecmath.Vec4) float64 { return p.W - p.Z },
}

// clipTriangle clips the triangle (a, b, c) against the full canonical
// view frustum using Sutherland-Hodgman reclipping, returning the
// surviving polygon as a vertex loop (possibly empty, up to 9 vertices).
// The scratch slices avoid per-triangle allocation.
func clipTriangle(a, b, c clipVertex, scratch *[2][]clipVertex) []clipVertex {
	in := append(scratch[0][:0], a, b, c)
	out := scratch[1][:0]
	for _, plane := range frustumPlanes {
		out = out[:0]
		n := len(in)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			cur, next := in[i], in[(i+1)%n]
			dc, dn := plane(cur.Pos), plane(next.Pos)
			if dc >= 0 {
				out = append(out, cur)
			}
			if (dc >= 0) != (dn >= 0) {
				t := dc / (dc - dn)
				out = append(out, lerpClip(cur, next, t))
			}
		}
		in, out = out, in
	}
	scratch[0], scratch[1] = in, out
	return in
}
