// Package prefetch simulates the latency-hiding scheme of Section 7.1.1:
// the triangles are rasterized twice, with the first pass computing texel
// addresses and prefetching missing lines, and the second pass — a FIFO
// of fragments behind — performing the actual texturing. A miss is
// harmless when the FIFO gives the memory system enough lead time to
// finish the fill before the consuming fragment arrives.
//
// The model advances in fragment-generator cycles (4 texel reads per
// cycle, as in the Section 7 machine). The front rasterizer runs a fixed
// number of texel accesses ahead of the back rasterizer; each miss
// becomes a fill request stamped with its issue time; fills are serviced
// in order by a single memory channel with a fixed latency and occupancy
// per line. The back rasterizer stalls whenever it reaches a texel whose
// fill has not completed.
package prefetch

import (
	"fmt"

	"texcache/internal/cache"
)

// Config describes the prefetching texture unit.
type Config struct {
	// Cache is the organization of the texture cache.
	Cache cache.Config
	// FIFODepth is the lead of the address rasterizer over the texturing
	// rasterizer, in fragments. Zero models a non-prefetching design
	// that stalls on every miss.
	FIFODepth int
	// TexelsPerCycle is the cache read rate (4 in the paper's machine).
	TexelsPerCycle int
	// TexelsPerFragment is the filter cost (8 for trilinear).
	TexelsPerFragment int
	// FillLatency is the fixed DRAM access latency in cycles before a
	// line starts arriving.
	FillLatency int
	// FillOccupancy is the cycles one fill occupies the memory channel
	// (the line transfer time); back-to-back fills serialize on it.
	FillOccupancy int
}

// Default returns the paper's machine with the given cache and FIFO
// depth: 4 texels/cycle, 8 texels/fragment, a 50-cycle 128-byte fill
// split into 18 cycles of latency and 32 of transfer occupancy.
func Default(c cache.Config, fifoDepth int) Config {
	return Config{
		Cache:             c,
		FIFODepth:         fifoDepth,
		TexelsPerCycle:    4,
		TexelsPerFragment: 8,
		FillLatency:       18,
		FillOccupancy:     32,
	}
}

// ConfigError reports a rejected prefetch configuration; Validate (and
// Simulate) return errors of this type, so callers can distinguish bad
// input from simulation failures with errors.As. Field uses wire-style
// names ("fifo_depth", "fill_latency", ...), matching the
// cache.ConfigError convention.
type ConfigError struct {
	// Config is the rejected configuration.
	Config Config
	// Field names the parameter at fault, in wire form.
	Field string
	// Reason explains what was wrong with it.
	Reason string
}

func (e *ConfigError) Error() string {
	return "prefetch: invalid config: " + e.Field + ": " + e.Reason
}

// errf builds a *ConfigError for the configuration.
func (c Config) errf(field, format string, args ...any) *ConfigError {
	return &ConfigError{Config: c, Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate reports whether the configuration is usable. A non-nil
// result is a *ConfigError naming the field, except for cache problems,
// which pass through as the cache package's own *cache.ConfigError.
func (c Config) Validate() error {
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.FIFODepth < 0 {
		return c.errf("fifo_depth", "%d: must be >= 0 (0 stalls on every miss)", c.FIFODepth)
	}
	if c.TexelsPerCycle <= 0 {
		return c.errf("texels_per_cycle", "%d: must be >= 1", c.TexelsPerCycle)
	}
	if c.TexelsPerFragment <= 0 {
		return c.errf("texels_per_fragment", "%d: must be >= 1", c.TexelsPerFragment)
	}
	if c.FillLatency < 0 {
		return c.errf("fill_latency", "%d: must be >= 0", c.FillLatency)
	}
	if c.FillOccupancy <= 0 {
		return c.errf("fill_occupancy", "%d: must be >= 1 (the line transfer time)", c.FillOccupancy)
	}
	return nil
}

// Result reports the timing outcome of one frame.
type Result struct {
	Accesses   uint64
	Misses     uint64
	ComputeCyc uint64 // cycles the back rasterizer needed for reads alone
	StallCyc   uint64 // cycles lost waiting for fills
	TotalCyc   uint64
}

// Utilization returns compute cycles over total cycles (1 = fully
// hidden latency).
func (r Result) Utilization() float64 {
	if r.TotalCyc == 0 {
		return 0
	}
	return float64(r.ComputeCyc) / float64(r.TotalCyc)
}

// FragmentsPerSecond converts the cycle counts into rendering
// performance at the given clock, for texelsPerFragment-texel fragments.
func (r Result) FragmentsPerSecond(clockHz float64, texelsPerFragment int) float64 {
	if r.TotalCyc == 0 {
		return 0
	}
	fragments := float64(r.Accesses) / float64(texelsPerFragment)
	return fragments / (float64(r.TotalCyc) / clockHz)
}

// Simulate replays a texel address stream through the prefetching unit.
func Simulate(cfg Config, trace cache.AddrStream) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	c := cache.New(cfg.Cache)

	// The front rasterizer leads by FIFODepth fragments' worth of texel
	// accesses. Cache state is updated at prefetch time (the fill is
	// already in flight when the back rasterizer arrives), so the miss
	// pattern itself is unchanged — only the timing moves.
	leadAccesses := uint64(cfg.FIFODepth * cfg.TexelsPerFragment)

	// fillDone[i] holds the completion time of the fill for access i
	// when access i missed; hits carry zero.
	var res Result
	res.Accesses = uint64(trace.Len())

	// Walk the trace once. Times are in access units (texelsPerCycle
	// accesses per pipeline cycle) to keep the math integral. The fill
	// for access i — if i misses — is issued when the front rasterizer
	// reaches i, i.e. leadAccesses of back-rasterizer progress earlier,
	// and the back rasterizer consumes i at idx + accumulated stalls.
	perCycle := uint64(cfg.TexelsPerCycle)
	latency := uint64(cfg.FillLatency) * perCycle
	occupancy := uint64(cfg.FillOccupancy) * perCycle

	var channelFree uint64 // single memory channel, in access units
	var stallAccUnits uint64
	var backDelay uint64 // total stall so far; shifts both rasterizers

	// Walk the stream block by block, keeping an absolute access index —
	// the timing math depends on each access's position in the frame.
	cur := trace.Cursor()
	var next uint64
	for block := cur.Next(); block != nil; block = cur.Next() {
		for _, a := range block {
			idx := next
			next++
			if c.Access(a) {
				continue
			}
			res.Misses++
			issueTime := backDelay
			if idx > leadAccesses {
				issueTime += idx - leadAccesses
			}
			start := max64(issueTime, channelFree)
			done := start + latency + occupancy
			channelFree = start + occupancy

			if useTime := idx + backDelay; done > useTime {
				stall := done - useTime
				backDelay += stall
				stallAccUnits += stall
			}
		}
	}

	res.ComputeCyc = (res.Accesses + perCycle - 1) / perCycle
	res.StallCyc = (stallAccUnits + perCycle - 1) / perCycle
	res.TotalCyc = res.ComputeCyc + res.StallCyc
	return res, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
