package prefetch

import (
	"errors"
	"testing"

	"texcache/internal/cache"
)

func testCacheCfg() cache.Config {
	return cache.Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}
}

// strideTrace builds a trace with a controllable miss rate: repeated
// groups of `reuse` accesses to one line before moving to the next.
func strideTrace(lines, reuse int) *cache.Trace {
	tr := cache.NewTrace(lines * reuse)
	for l := 0; l < lines; l++ {
		for r := 0; r < reuse; r++ {
			tr.Access(uint64(l)*128 + uint64(r*4%128))
		}
	}
	return tr
}

func TestValidate(t *testing.T) {
	good := Default(testCacheCfg(), 32)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for _, tc := range []struct {
		field  string
		mutate func(*Config)
	}{
		{"fifo_depth", func(c *Config) { c.FIFODepth = -1 }},
		{"texels_per_cycle", func(c *Config) { c.TexelsPerCycle = 0 }},
		{"texels_per_fragment", func(c *Config) { c.TexelsPerFragment = 0 }},
		{"fill_latency", func(c *Config) { c.FillLatency = -1 }},
		{"fill_occupancy", func(c *Config) { c.FillOccupancy = 0 }},
	} {
		bad := good
		tc.mutate(&bad)
		var ce *ConfigError
		if err := bad.Validate(); !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("%s: want *ConfigError naming the field, got %v", tc.field, err)
		}
	}
	bad := good
	bad.Cache.SizeBytes = 100
	var cce *cache.ConfigError
	if err := bad.Validate(); !errors.As(err, &cce) {
		t.Errorf("invalid cache not a *cache.ConfigError: %v", err)
	}
	if _, err := Simulate(bad, cache.NewTrace(0)); err == nil {
		t.Error("Simulate accepted invalid config")
	}
}

func TestNoMissesRunsAtPeak(t *testing.T) {
	tr := cache.NewTrace(0)
	for i := 0; i < 4096; i++ {
		tr.Access(0) // one line, all hits after the first
	}
	res, err := Simulate(Default(testCacheCfg(), 0), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 1 {
		t.Errorf("misses = %d", res.Misses)
	}
	if res.Utilization() < 0.95 {
		t.Errorf("utilization = %v, want ~1", res.Utilization())
	}
}

func TestZeroFIFOStallsEveryMiss(t *testing.T) {
	tr := strideTrace(2000, 8) // one miss per 8 accesses
	res, err := Simulate(Default(testCacheCfg(), 0), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses < 1900 {
		t.Fatalf("misses = %d, want ~2000", res.Misses)
	}
	// Every miss stalls ~latency+occupancy cycles: utilization is low.
	if res.Utilization() > 0.2 {
		t.Errorf("zero-FIFO utilization = %v, want low", res.Utilization())
	}
}

func TestDeeperFIFOHidesLatency(t *testing.T) {
	tr := strideTrace(2000, 8)
	var prev float64
	for i, depth := range []int{0, 4, 16, 64, 256} {
		res, err := Simulate(Default(testCacheCfg(), depth), tr)
		if err != nil {
			t.Fatal(err)
		}
		u := res.Utilization()
		if i > 0 && u+1e-9 < prev {
			t.Errorf("depth %d: utilization %v below shallower FIFO's %v", depth, u, prev)
		}
		prev = u
	}
	// A deep FIFO on this stream still cannot reach peak: the channel
	// occupancy (32 cycles per fill at one fill per 2 fragment-cycles of
	// work) exceeds the compute time — bandwidth-bound, as Section 7
	// distinguishes from latency-bound.
	deep, _ := Simulate(Default(testCacheCfg(), 1024), tr)
	if deep.Utilization() > 0.5 {
		t.Errorf("bandwidth-bound stream reached %v utilization", deep.Utilization())
	}
}

func TestDeepFIFOReachesPeakWhenBandwidthSuffices(t *testing.T) {
	// One miss per 256 accesses = one fill per 256 access units against
	// 128 access units of channel occupancy — bandwidth is ample, so a
	// deep FIFO hides everything.
	tr := strideTrace(500, 256)
	shallow, err := Simulate(Default(testCacheCfg(), 0), tr)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Simulate(Default(testCacheCfg(), 128), tr)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Utilization() < 0.99 {
		t.Errorf("deep FIFO utilization = %v, want ~1", deep.Utilization())
	}
	if shallow.Utilization() > 0.6 {
		t.Errorf("shallow utilization = %v unexpectedly high", shallow.Utilization())
	}
}

func TestFragmentsPerSecond(t *testing.T) {
	tr := strideTrace(100, 256)
	res, err := Simulate(Default(testCacheCfg(), 128), tr)
	if err != nil {
		t.Fatal(err)
	}
	fps := res.FragmentsPerSecond(100e6, 8)
	// ~full utilization: 4 texels/cycle / 8 texels/fragment * 100MHz = 50M/s.
	if fps < 45e6 || fps > 51e6 {
		t.Errorf("fragments/s = %v, want ~50e6", fps)
	}
	var zero Result
	if zero.FragmentsPerSecond(100e6, 8) != 0 || zero.Utilization() != 0 {
		t.Error("zero result helpers should be 0")
	}
}

func TestCycleAccounting(t *testing.T) {
	tr := strideTrace(100, 8)
	res, err := Simulate(Default(testCacheCfg(), 16), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCyc != res.ComputeCyc+res.StallCyc {
		t.Errorf("cycle accounting broken: %+v", res)
	}
	if res.Accesses != uint64(tr.Len()) {
		t.Errorf("accesses = %d, want %d", res.Accesses, tr.Len())
	}
}
