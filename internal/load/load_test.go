package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestRunClassification drives the generator at a scripted server and
// checks every response class lands in the right counter.
func TestRunClassification(t *testing.T) {
	var n atomic.Int64
	var sawTenant atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/experiments" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		if r.Header.Get("X-Texcache-Tenant") == "bench" {
			sawTenant.Store(true)
		}
		switch n.Add(1) {
		case 1:
			http.Error(w, "boom", http.StatusInternalServerError)
		case 2:
			http.Error(w, "later", http.StatusTooManyRequests)
		default:
			w.Write([]byte(`{"exp":"x"}` + "\n"))
		}
	}))
	defer ts.Close()

	stats, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Clients:  1, // serial so the scripted status order holds
		Requests: 6,
		Body:     []byte(`{}`),
		Tenant:   "bench",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 6 || stats.Completed != 4 || stats.Rejected != 1 ||
		stats.Failed != 1 || stats.ServerErrors != 1 {
		t.Errorf("stats = %+v, want 6 requests: 4 completed, 1 rejected, 1 failed (1 5xx)", stats)
	}
	if !sawTenant.Load() {
		t.Error("tenant header not sent")
	}
	if stats.RPS <= 0 || stats.P50 <= 0 || stats.P99 < stats.P50 {
		t.Errorf("latency stats not populated: %+v", stats)
	}
	if stats.Bytes == 0 {
		t.Error("bytes not counted")
	}
	if stats.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunOptionDefaults(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("missing BaseURL should error")
	}
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
	}))
	defer ts.Close()
	stats, err := Run(context.Background(), Options{BaseURL: ts.URL, Clients: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("defaulted Requests issued %d posts, want one per client (3)", got)
	}
	if stats.Completed != 3 {
		t.Errorf("Completed = %d, want 3", stats.Completed)
	}
}
