// Package load is the texserve load-generator core: it drives a fixed
// number of concurrent clients posting the same ExperimentRequest
// document at a server and reports completion counts, status-code
// distribution and latency percentiles. cmd/texload is the CLI wrapper;
// the texserve saturation benchmark drives it in-process against
// httptest servers.
package load

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options parameterizes one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// Clients is the number of concurrent posting clients (default 1).
	Clients int
	// Requests is the total request count across all clients (default
	// Clients).
	Requests int
	// Body is the JSON ExperimentRequest document each client posts.
	Body []byte
	// Bodies, when non-empty, overrides Body with a rotation: request i
	// posts Bodies[i % len(Bodies)]. Use it to mix distinct work into
	// one run (e.g. several trace keys in a saturation burst).
	Bodies [][]byte
	// Tenant, when set, is sent as the X-Texcache-Tenant header.
	Tenant string
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// Stats is the outcome of a load run.
type Stats struct {
	// Requests is the number attempted.
	Requests int `json:"requests"`
	// Completed counts 2xx responses read to EOF.
	Completed int `json:"completed"`
	// Rejected counts 429 backpressure responses.
	Rejected int `json:"rejected"`
	// Failed counts transport errors and non-2xx, non-429 statuses.
	Failed int `json:"failed"`
	// ServerErrors counts 5xx responses (a subset of Failed).
	ServerErrors int `json:"server_errors"`
	// Bytes is the total response body volume read.
	Bytes int64 `json:"bytes"`
	// Elapsed is the wall-clock span of the whole run.
	Elapsed time.Duration `json:"elapsed_ns"`
	// P50 and P99 are completion-latency percentiles over successful
	// requests.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// RPS is Completed divided by Elapsed.
	RPS float64 `json:"rps"`
}

// String renders the stats as a one-line human summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d requests: %d completed, %d rejected (429), %d failed (%d 5xx); %.1f req/s, p50 %v, p99 %v, %dB",
		s.Requests, s.Completed, s.Rejected, s.Failed, s.ServerErrors,
		s.RPS, s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Bytes)
}

// Run drives Options.Requests posts through Options.Clients concurrent
// clients and aggregates the outcome. A cancelled ctx stops issuing new
// requests; in-flight ones fail with the context error. Run itself only
// errors on unusable options.
func Run(ctx context.Context, o Options) (Stats, error) {
	if o.BaseURL == "" {
		return Stats{}, errors.New("load: BaseURL required")
	}
	if o.Clients < 1 {
		o.Clients = 1
	}
	if o.Requests < 1 {
		o.Requests = o.Clients
	}
	client := o.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := o.BaseURL + "/v1/experiments"

	var (
		next      atomic.Int64
		mu        sync.Mutex
		stats     Stats
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	stats.Requests = o.Requests
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := int(next.Add(1))
				if seq > o.Requests {
					return
				}
				if ctx.Err() != nil {
					mu.Lock()
					stats.Failed++
					mu.Unlock()
					continue
				}
				body := o.Body
				if len(o.Bodies) > 0 {
					body = o.Bodies[(seq-1)%len(o.Bodies)]
				}
				status, n, d, err := post(ctx, client, url, body, o.Tenant)
				mu.Lock()
				stats.Bytes += n
				switch {
				case err != nil:
					stats.Failed++
				case status == http.StatusTooManyRequests:
					stats.Rejected++
				case status >= 500:
					stats.Failed++
					stats.ServerErrors++
				case status >= 200 && status < 300:
					stats.Completed++
					latencies = append(latencies, d)
				default:
					stats.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		stats.P50 = latencies[len(latencies)*50/100]
		stats.P99 = latencies[min(len(latencies)-1, len(latencies)*99/100)]
	}
	if stats.Elapsed > 0 {
		stats.RPS = float64(stats.Completed) / stats.Elapsed.Seconds()
	}
	return stats, nil
}

// post issues one request and reads the body to EOF (the full NDJSON
// stream), returning status, bytes read and latency.
func post(ctx context.Context, client *http.Client, url string, body []byte, tenant string) (status int, n int64, d time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Texcache-Tenant", tenant)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, time.Since(start), err
	}
	defer resp.Body.Close()
	n, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, n, time.Since(start), err
}
