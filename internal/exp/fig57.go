package exp

import (
	"fmt"
	"io"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "fig5.7",
		Title: "Effect of cache associativity on conflict misses " +
			"(8x8 blocks, 128B lines; Goblet-horizontal, Town-vertical)",
		Run: runFig57,
	})
	register(Experiment{
		ID: "fig5.7nb",
		Title: "Associativity needed without blocking (Goblet, nonblocked " +
			"representation, 128B lines)",
		Run: runFig57NB,
	})
}

// assocWays is the associativity sweep of Figure 5.7: direct mapped,
// 2/4/8-way, fully associative.
var assocWays = []int{1, 2, 4, 8, 0}

func assocLabel(ways int) string {
	switch ways {
	case 0:
		return "fully-assoc"
	case 1:
		return "direct"
	default:
		return fmt.Sprintf("%d-way", ways)
	}
}

// runAssocSweep prints miss rate vs cache size for each associativity.
func runAssocSweep(w io.Writer, tr *cache.Trace, lineBytes int) {
	for _, ways := range assocWays {
		rates := make([]float64, 0, len(curveSizes()))
		for _, size := range curveSizes() {
			c := cache.New(cache.Config{SizeBytes: size, LineBytes: lineBytes, Ways: ways})
			tr.Replay(c.Sink())
			rates = append(rates, c.Stats().MissRate())
		}
		printCurve(w, assocLabel(ways), rates)
	}
}

// runFig57 reproduces Figure 5.7. Expected shapes: for Goblet, direct
// mapped is notably worse but 2-way already matches fully associative
// (conflicts are between adjacent Mip levels, and trilinear touches at
// most two); for Town-vertical, a gap remains between 2-way and fully
// associative because vertically-traversed upright textures conflict
// between blocks within one 2D array.
func runFig57(cfg Config, w io.Writer) error {
	const lineBytes = 128
	for _, sc := range []struct {
		name string
		dir  raster.Order
	}{{"goblet", raster.RowMajor}, {"town", raster.ColumnMajor}} {
		if !containsScene(cfg, sc.name) {
			continue
		}
		tr, err := traceScene(cfg, sc.name, blocked8(), raster.Traversal{Order: sc.dir})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s (%s), blocked 8x8, 128B lines ---\n", sc.name, sc.dir)
		printCurveHeader(w, "associativity")
		runAssocSweep(w, tr, lineBytes)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper: goblet 2-way == fully associative; town keeps a 2-way vs FA gap")
	return nil
}

// runFig57NB reproduces the Section 5.3.3 claim that without blocking,
// the Goblet scene needs eight-way associativity to match the fully
// associative miss rates at small cache sizes (neighboring rows of the
// power-of-two-wide arrays conflict).
func runFig57NB(cfg Config, w io.Writer) error {
	tr, err := traceScene(cfg, "goblet",
		texture.LayoutSpec{Kind: texture.NonBlockedKind}, raster.Traversal{Order: raster.RowMajor})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "--- goblet (horizontal), NONBLOCKED, 128B lines ---")
	printCurveHeader(w, "associativity")
	runAssocSweep(w, tr, 128)
	fmt.Fprintln(w, "\npaper: with the nonblocked representation an 8-way cache is required to")
	fmt.Fprintln(w, "match fully-associative miss rates among the small cache sizes")
	return nil
}
