package exp

import (
	"context"
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "fig5.7",
		Title: "Effect of cache associativity on conflict misses " +
			"(8x8 blocks, 128B lines; Goblet-horizontal, Town-vertical)",
		Run: runFig57,
		Needs: func(cfg Config) []TraceKey {
			var keys []TraceKey
			for _, sc := range fig57Scenes {
				if containsScene(cfg, sc.name) {
					keys = append(keys, TraceKey{Scene: sc.name, Layout: blocked8(),
						Traversal: raster.Traversal{Order: sc.dir}})
				}
			}
			return keys
		},
	})
	register(Experiment{
		ID: "fig5.7nb",
		Title: "Associativity needed without blocking (Goblet, nonblocked " +
			"representation, 128B lines)",
		Run: runFig57NB,
		Needs: func(cfg Config) []TraceKey {
			return []TraceKey{{Scene: "goblet",
				Layout:    texture.LayoutSpec{Kind: texture.NonBlockedKind},
				Traversal: raster.Traversal{Order: raster.RowMajor}}}
		},
	})
}

// assocWays is the associativity sweep of Figure 5.7: direct mapped,
// 2/4/8-way, fully associative.
var assocWays = []int{1, 2, 4, 8, 0}

func assocLabel(ways int) string {
	switch ways {
	case 0:
		return "fully-assoc"
	case 1:
		return "direct"
	default:
		return fmt.Sprintf("%d-way", ways)
	}
}

// fig57Scenes pairs each figure panel with its rasterization direction.
var fig57Scenes = []struct {
	name string
	dir  raster.Order
}{{"goblet", raster.RowMajor}, {"town", raster.ColumnMajor}}

// runAssocSweep prints miss rate vs cache size for each associativity,
// replaying the trace through the whole (ways x size) grid in one
// concurrent pass.
func runAssocSweep(ctx context.Context, cfg Config, rep report.Reporter, tr cache.AddrStream, lineBytes int) error {
	var cfgs []cache.Config
	for _, ways := range assocWays {
		for _, size := range curveSizes() {
			cfgs = append(cfgs, cache.Config{SizeBytes: size, LineBytes: lineBytes, Ways: ways})
		}
	}
	rates, err := sweepRates(ctx, cfg, tr, cfgs)
	if err != nil {
		return err
	}
	per := len(curveSizes())
	for i, ways := range assocWays {
		curveRow(rep, assocLabel(ways), rates[i*per:(i+1)*per])
	}
	return nil
}

// runFig57 reproduces Figure 5.7. Expected shapes: for Goblet, direct
// mapped is notably worse but 2-way already matches fully associative
// (conflicts are between adjacent Mip levels, and trilinear touches at
// most two); for Town-vertical, a gap remains between 2-way and fully
// associative because vertically-traversed upright textures conflict
// between blocks within one 2D array.
func runFig57(ctx context.Context, cfg Config, rep report.Reporter) error {
	const lineBytes = 128
	for _, sc := range fig57Scenes {
		if !containsScene(cfg, sc.name) {
			continue
		}
		tr, err := traceScene(ctx, cfg, sc.name, blocked8(), raster.Traversal{Order: sc.dir})
		if err != nil {
			return err
		}
		rep.Note("--- %s (%s), blocked 8x8, 128B lines ---", sc.name, sc.dir)
		beginCurve(rep, "assoc-"+sc.name, "associativity")
		if err := runAssocSweep(ctx, cfg, rep, tr, lineBytes); err != nil {
			return err
		}
		rep.Note("")
	}
	rep.Note("%s", "paper: goblet 2-way == fully associative; town keeps a 2-way vs FA gap")
	return nil
}

// runFig57NB reproduces the Section 5.3.3 claim that without blocking,
// the Goblet scene needs eight-way associativity to match the fully
// associative miss rates at small cache sizes (neighboring rows of the
// power-of-two-wide arrays conflict).
func runFig57NB(ctx context.Context, cfg Config, rep report.Reporter) error {
	tr, err := traceScene(ctx, cfg, "goblet",
		texture.LayoutSpec{Kind: texture.NonBlockedKind}, raster.Traversal{Order: raster.RowMajor})
	if err != nil {
		return err
	}
	rep.Note("%s", "--- goblet (horizontal), NONBLOCKED, 128B lines ---")
	beginCurve(rep, "assoc-nonblocked", "associativity")
	if err := runAssocSweep(ctx, cfg, rep, tr, 128); err != nil {
		return err
	}
	rep.Note("")
	rep.Note("%s", "paper: with the nonblocked representation an 8-way cache is required to")
	rep.Note("%s", "match fully-associative miss rates among the small cache sizes")
	return nil
}
