// Package exp is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation, each regenerating the
// corresponding rows or curve series from a fresh simulation of the four
// benchmark scenes. The cmd/texsim command and the repository's benchmark
// suite are thin wrappers over this registry.
package exp

import (
	"fmt"
	"io"
	"sort"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale divides the screen and texture resolutions: 1 reproduces the
	// paper's full-size benchmarks, larger powers of two run faster. The
	// qualitative shapes (who wins, where curves knee) are stable in
	// scale; absolute miss rates shift slightly.
	Scale int
	// Scenes restricts the benchmark set; empty means each experiment's
	// own default (usually the scenes the paper shows).
	Scenes []string
}

// DefaultConfig runs everything at half resolution, a good
// fidelity/runtime tradeoff.
func DefaultConfig() Config { return Config{Scale: 2} }

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

// sceneList returns the configured scene subset, defaulting to defs.
func (c Config) sceneList(defs ...string) []string {
	if len(c.Scenes) > 0 {
		return c.Scenes
	}
	return defs
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	// ID is the registry key, e.g. "fig5.2" or "table7.1".
	ID string
	// Title describes the artifact as the paper captions it.
	Title string
	// Run executes the experiment, writing rows/series to w.
	Run func(cfg Config, w io.Writer) error
}

var registry = map[string]Experiment{}

// register adds an experiment at package init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the sorted registry keys.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// buildScene constructs a benchmark scene at the configured scale.
func buildScene(cfg Config, name string) (*scenes.Scene, error) {
	s := scenes.ByName(name, cfg.scale())
	if s == nil {
		return nil, fmt.Errorf("exp: unknown scene %q", name)
	}
	return s, nil
}

// traceScene renders one frame and returns the texel address trace.
func traceScene(cfg Config, name string, layout texture.LayoutSpec, trav raster.Traversal) (*cache.Trace, error) {
	s, err := buildScene(cfg, name)
	if err != nil {
		return nil, err
	}
	tr, _, err := s.Trace(layout, trav)
	return tr, err
}

// curveSizes are the cache sizes (bytes) of the miss-rate-versus-size
// figures, a log-scale sweep as in the paper's plots.
func curveSizes() []int {
	var out []int
	for s := 1 << 10; s <= 256<<10; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// printCurveHeader writes the size-axis header row.
func printCurveHeader(w io.Writer, label string) {
	fmt.Fprintf(w, "%-28s", label)
	for _, s := range curveSizes() {
		fmt.Fprintf(w, "%9s", cache.FormatSize(s))
	}
	fmt.Fprintln(w)
}

// printCurve writes one miss-rate series as percentages.
func printCurve(w io.Writer, label string, rates []float64) {
	fmt.Fprintf(w, "%-28s", label)
	for _, r := range rates {
		fmt.Fprintf(w, "%8.2f%%", 100*r)
	}
	fmt.Fprintln(w)
}

// blocked8 is the 8x8-texel blocked layout used with 128-byte lines
// throughout Sections 5.3.3-6.
func blocked8() texture.LayoutSpec {
	return texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
}

// lineForBlock returns the line size matching a square block in bytes.
func lineForBlock(blockW int) int { return blockW * blockW * texture.TexelBytes }
