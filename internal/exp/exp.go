// Package exp is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation, each regenerating the
// corresponding rows or curve series from a fresh simulation of the four
// benchmark scenes. The cmd/texsim command, the internal/engine worker
// pool and the repository's benchmark suite are thin wrappers over this
// registry.
package exp

import (
	"context"
	"runtime"
	"sort"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// TraceKey identifies one rendered texel address stream: the stream is
// fully determined by (scene, layout, traversal) at a given scale, so a
// key plus the run's scale names a memoizable render.
type TraceKey struct {
	Scene     string
	Layout    texture.LayoutSpec
	Traversal raster.Traversal
}

// TraceProvider supplies rendered traces as address streams. The engine
// implements it with a keyed, single-flight memoizing cache so
// concurrent experiments that need the same (scene, layout, traversal)
// render it exactly once; the stream it hands back may be a materialized
// *cache.Trace or a compact delta-encoded form — replay statistics are
// bit-identical either way.
type TraceProvider interface {
	SceneTrace(ctx context.Context, key TraceKey, scale int) (cache.AddrStream, error)
}

// SweepMode selects how an experiment replays a configuration sweep
// over a trace.
type SweepMode int

const (
	// SweepGrouped (the default) runs each sweep through the single-pass
	// grouped simulator: every LRU configuration sharing a line size is
	// answered from one trace walk, with non-LRU configurations falling
	// back to per-configuration replay. Results are bit-identical to
	// SweepPerConfig.
	SweepGrouped SweepMode = iota
	// SweepPerConfig replays one cache per configuration concurrently,
	// the pre-grouping behavior. Useful as a differential reference and
	// when profiling the per-configuration simulator itself.
	SweepPerConfig
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale divides the screen and texture resolutions: 1 reproduces the
	// paper's full-size benchmarks, larger powers of two run faster. The
	// qualitative shapes (who wins, where curves knee) are stable in
	// scale; absolute miss rates shift slightly.
	Scale int
	// Scenes restricts the benchmark set; empty means each experiment's
	// own default (usually the scenes the paper shows).
	Scenes []string
	// Traces, when non-nil, supplies rendered traces instead of each
	// experiment rendering privately — the hook through which the engine
	// shares one memoized render across every experiment that needs it.
	Traces TraceProvider
	// RenderWorkers is the tile-parallel rasterization worker count for
	// private renders (when Traces is nil): zero or negative means
	// GOMAXPROCS, one forces the serial reference path. Traces are
	// bit-identical at any setting, so results never depend on it.
	RenderWorkers int
	// Sweep selects the sweep replay strategy; the zero value is
	// SweepGrouped. Both modes produce identical statistics.
	Sweep SweepMode
}

// DefaultConfig runs everything at half resolution, a good
// fidelity/runtime tradeoff.
func DefaultConfig() Config { return Config{Scale: 2} }

// EffectiveScale returns the scale clamped to a minimum of 1, the value
// trace keys resolve against.
func (c Config) EffectiveScale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

func (c Config) scale() int { return c.EffectiveScale() }

// sceneList returns the configured scene subset, defaulting to defs.
func (c Config) sceneList(defs ...string) []string {
	if len(c.Scenes) > 0 {
		return c.Scenes
	}
	return defs
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	// ID is the registry key, e.g. "fig5.2" or "table7.1".
	ID string
	// Title describes the artifact as the paper captions it.
	Title string
	// Run executes the experiment, emitting tables, rows and notes
	// through rep. It must honor ctx: long sweeps check for cancellation
	// at least once per rendered frame.
	Run func(ctx context.Context, cfg Config, rep report.Reporter) error
	// Needs, when non-nil, declares the traces the experiment will
	// request for the given configuration, so a batching engine can
	// prewarm its trace cache across workers before Run starts. Purely
	// an optimization hint: Run must work without it.
	Needs func(cfg Config) []TraceKey
}

// UnknownExperimentError reports an experiment ID that is not in the
// registry.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "texcache: unknown experiment " + e.ID
}

var registry = map[string]Experiment{}

// register adds an experiment at package init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the sorted registry keys.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// buildScene constructs a benchmark scene at the configured scale.
func buildScene(cfg Config, name string) (*scenes.Scene, error) {
	return scenes.ByNameChecked(name, cfg.scale())
}

// traceScene returns the texel address stream of one rendered frame,
// through the configured provider when one is installed (sharing renders
// across experiments) and by rendering privately otherwise.
func traceScene(ctx context.Context, cfg Config, name string, layout texture.LayoutSpec, trav raster.Traversal) (cache.AddrStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Traces != nil {
		return cfg.Traces.SceneTrace(ctx, TraceKey{Scene: name, Layout: layout, Traversal: trav}, cfg.scale())
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return nil, err
	}
	tr, _, err := s.TraceParallel(layout, trav, cfg.EffectiveRenderWorkers())
	return tr, err
}

// sweepRates replays a configuration sweep over tr and returns the
// per-configuration miss rates, honoring the configured SweepMode. The
// two modes are bit-identical; grouped is the default because it
// answers every LRU configuration of a line size from one trace walk.
func sweepRates(ctx context.Context, cfg Config, tr cache.AddrStream, cfgs []cache.Config) ([]float64, error) {
	if cfg.Sweep == SweepPerConfig {
		return cache.MissRatesStream(ctx, tr, cfgs)
	}
	return cache.MissRatesGroupedStream(ctx, tr, cfgs)
}

// EffectiveRenderWorkers returns the render worker count clamped to a
// minimum of 1, defaulting to GOMAXPROCS.
func (c Config) EffectiveRenderWorkers() int {
	if c.RenderWorkers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.RenderWorkers
}

// curveSizes are the cache sizes (bytes) of the miss-rate-versus-size
// figures, a log-scale sweep as in the paper's plots.
func curveSizes() []int {
	var out []int
	for s := 1 << 10; s <= 256<<10; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// curveColumns builds the columns of a miss-rate-versus-size table: a
// label column followed by one column per swept cache size.
func curveColumns(label string) []report.Column {
	cols := []report.Column{{Name: label, Head: "%-28s", Cell: "%-28s"}}
	for _, s := range curveSizes() {
		cols = append(cols, report.Column{Name: cache.FormatSize(s), Head: "%9s", Cell: "%8.2f%%"})
	}
	return cols
}

// beginCurve starts a miss-rate-versus-size table.
func beginCurve(rep report.Reporter, id, label string) {
	rep.BeginTable(id, curveColumns(label))
}

// curveRow emits one miss-rate series as percentages.
func curveRow(rep report.Reporter, label string, rates []float64) {
	vals := make([]any, 0, 1+len(rates))
	vals = append(vals, label)
	for _, r := range rates {
		vals = append(vals, 100*r)
	}
	rep.Row(vals...)
}

// blocked8 is the 8x8-texel blocked layout used with 128-byte lines
// throughout Sections 5.3.3-6.
func blocked8() texture.LayoutSpec {
	return texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
}

// lineForBlock returns the line size matching a square block in bytes.
func lineForBlock(blockW int) int { return blockW * blockW * texture.TexelBytes }

// DefaultTraversalFor returns the untiled traversal in the named scene's
// reported rasterization direction — the static metadata Needs
// declarations and the api package's sweep defaults use without building
// the scene.
func DefaultTraversalFor(name string) raster.Traversal {
	if name == "town" {
		return raster.Traversal{Order: raster.ColumnMajor}
	}
	return raster.Traversal{Order: raster.RowMajor}
}
