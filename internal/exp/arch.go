package exp

import (
	"context"
	"fmt"

	"texcache/internal/arch"
	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// The Igehy et al. 1998 miss-latency-tolerance experiment: sweep the
// memory latency against the cycle-level pipelines and watch the
// blocking baseline degrade linearly while the prefetching machine,
// given enough fragment-FIFO depth, stays at its zero-latency bound.

func init() {
	register(Experiment{
		ID: "igehy",
		Title: "Miss-latency tolerance of the prefetching texture cache " +
			"vs the blocking baseline (Igehy et al. 1998)",
		Run: runIgehy,
		Needs: func(cfg Config) []TraceKey {
			var keys []TraceKey
			for _, name := range cfg.sceneList(scenes.Names()...) {
				keys = append(keys, TraceKey{Scene: name,
					Layout:    archLayout(),
					Traversal: archTraversal()})
			}
			return keys
		},
	})
}

// archLayout and archTraversal are the rendering keys of the
// architecture experiments, shared with the prefetch and latency
// experiments so one engine prewarm serves all three.
func archLayout() texture.LayoutSpec {
	return texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4}
}

func archTraversal() raster.Traversal {
	return raster.Traversal{TileW: 8, TileH: 8}
}

// igehyLatencies is the swept fill latency in cycles; 0 is the ideal
// memory bound each row normalizes against.
var igehyLatencies = []int{0, 25, 50, 100, 200, 400}

// igehyDepths is the swept fragment-FIFO depth in fragments.
var igehyDepths = []int{4, 16, 64}

// runIgehy builds one miss timeline per scene (the cache replay) and
// reruns only the cycle recurrence across pipelines, FIFO depths and
// latencies. Each cell is execution time normalized to that machine's
// own zero-latency run. Expected shape: blocking grows linearly with
// latency; prefetch flattens as the FIFO deepens, and at depth 64 the
// 100-cycle column stays within 10% of the zero-latency bound.
func runIgehy(ctx context.Context, cfg Config, rep report.Reporter) error {
	cols := []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "machine", Head: " %-10s", Cell: " %-10s"},
	}
	for _, lat := range igehyLatencies {
		cols = append(cols, report.Column{Name: fmt.Sprintf("lat=%d", lat), Head: "%9s", Cell: "%9.3f"})
	}
	// Header-only annotation column: rows supply no value for it.
	cols = append(cols, report.Column{Name: "    (time / zero-latency bound)", Head: "%s"})
	rep.BeginTable("igehy", cols)

	ccfg := cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}
	for _, name := range cfg.sceneList(scenes.Names()...) {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr, err := traceScene(ctx, cfg, name, archLayout(), archTraversal())
		if err != nil {
			return err
		}
		tl, err := arch.NewTimeline(ccfg, tr)
		if err != nil {
			return err
		}
		machines := []struct {
			label string
			cfg   arch.Config
		}{{"blocking", arch.Default(ccfg, arch.Blocking)}}
		for _, d := range igehyDepths {
			m := arch.Default(ccfg, arch.Prefetch)
			m.FragmentFIFO = d
			machines = append(machines, struct {
				label string
				cfg   arch.Config
			}{fmt.Sprintf("fifo=%d", d), m})
		}
		for _, m := range machines {
			vals := []any{name, m.label}
			var bound uint64
			for _, lat := range igehyLatencies {
				mc := m.cfg
				mc.FillLatency = lat
				res, err := tl.Simulate(mc)
				if err != nil {
					return err
				}
				if lat == 0 {
					bound = res.TotalCyc
				}
				vals = append(vals, float64(res.TotalCyc)/float64(bound))
			}
			rep.Row(vals...)
		}
	}
	rep.Note("")
	rep.Note("%s", "Igehy et al. 1998: the fragment FIFO buys the memory system lead time,")
	rep.Note("%s", "so a deep enough FIFO holds the prefetching pipeline at its zero-latency")
	rep.Note("%s", "bound while the blocking cache pays every miss in full")
	return nil
}
