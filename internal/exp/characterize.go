package exp

import (
	"context"
	"fmt"
	"io"

	"texcache/internal/cost"
	"texcache/internal/scenes"
	"texcache/internal/stats"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID:    "table4.1",
		Title: "Texture mapping benchmark characteristics",
		Run:   runTable41,
	})
	register(Experiment{
		ID:    "table2.1",
		Title: "Computational costs of the fragment generator phases",
		Run:   runTable21,
	})
	register(Experiment{
		ID:    "locality",
		Title: "Accesses per texel and texture repetition (Section 3.1.2)",
		Run:   runLocality,
	})
	register(Experiment{
		ID:    "runlength",
		Title: "Average texture runlengths (Section 5.2.3)",
		Run:   runRunlength,
	})
}

// characterize renders one scene with the locality collector attached.
func characterize(ctx context.Context, cfg Config, name string) (*scenes.Scene, *stats.Locality, *cost.Counters, *frameInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, nil, err
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	loc := stats.NewLocality()
	counters := cost.NewCounters()
	r, err := s.Render(scenes.RenderOptions{
		Layout:    texture.LayoutSpec{Kind: texture.NonBlockedKind},
		Traversal: s.DefaultTraversal(),
		OnAccess:  loc.Record,
		Counters:  counters,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fi := &frameInfo{
		Triangles:    r.Stats.TrianglesIn,
		TexturedTris: r.Stats.TexturedTris,
		Fragments:    r.Stats.FragmentsTextured,
		AvgArea:      safeDiv(r.Stats.TriangleAreaSum, float64(r.Stats.TexturedTris)),
		AvgW:         safeDiv(r.Stats.TriangleWidthSum, float64(r.Stats.TexturedTris)),
		AvgH:         safeDiv(r.Stats.TriangleHeightSum, float64(r.Stats.TexturedTris)),
	}
	return s, loc, counters, fi, nil
}

type frameInfo struct {
	Triangles    int
	TexturedTris int
	Fragments    uint64
	AvgArea      float64
	AvgW, AvgH   float64
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func runTable41(ctx context.Context, cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-8s %-11s %6s %8s %6s %6s %5s %9s %9s %6s %9s\n",
		"Scene", "Resolution", "Tris", "AvgArea", "AvgW", "AvgH",
		"Texs", "Store(MB)", "Used(MB)", "Used%", "PixTex(M)")
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, loc, _, fi, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		storage := float64(s.TextureStorageBytes()) / (1 << 20)
		used := float64(loc.TextureUsedBytes()) / (1 << 20)
		fmt.Fprintf(w, "%-8s %4dx%-6d %6d %8.0f %6.0f %6.0f %5d %9.1f %9.2f %5.0f%% %9.2f\n",
			s.Name, s.Width, s.Height, fi.Triangles, fi.AvgArea, fi.AvgW, fi.AvgH,
			len(s.Mips), storage, used, 100*used/storage,
			float64(fi.Fragments)/1e6)
	}
	return nil
}

func runTable21(ctx context.Context, cfg Config, w io.Writer) error {
	for _, name := range cfg.sceneList("goblet") {
		_, _, counters, _, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s: per-frame operation totals (Table 2.1 unit costs) ---\n", name)
		if err := counters.WriteTable(w); err != nil {
			return err
		}
	}
	return nil
}

func runLocality(ctx context.Context, cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-8s %12s %12s %12s %11s %12s\n",
		"Scene", "lower/texel", "upper/texel", "bili/texel", "repetition", "uniqueTexels")
	for _, name := range cfg.sceneList(scenes.Names()...) {
		_, loc, _, _, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %12.1f %12.1f %12.1f %11.2f %12d\n", name,
			loc.AccessesPerTexel(texture.AccessTrilinearLower),
			loc.AccessesPerTexel(texture.AccessTrilinearUpper),
			loc.AccessesPerTexel(texture.AccessBilinear),
			loc.RepetitionFactor(),
			loc.UniqueTexels())
	}
	fmt.Fprintln(w, "\npaper: lower=4, upper=14, bilinear=18 (avg across scenes);")
	fmt.Fprintln(w, "repetition: town=2.9 guitar=1.7 goblet=1.1 flight=1.0")
	return nil
}

func runRunlength(ctx context.Context, cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-8s %14s %8s\n", "Scene", "avg runlength", "runs")
	for _, name := range cfg.sceneList("town", "guitar", "flight") {
		_, loc, _, _, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %14.0f %8d\n", name, loc.AverageRunlength(), loc.Runs())
	}
	fmt.Fprintln(w, "\npaper: town=223629 guitar=553745 flight=562154 (multi-texture scenes)")
	return nil
}
