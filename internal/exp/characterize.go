package exp

import (
	"context"
	"fmt"
	"strings"

	"texcache/internal/cost"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/stats"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID:    "table4.1",
		Title: "Texture mapping benchmark characteristics",
		Run:   runTable41,
	})
	register(Experiment{
		ID:    "table2.1",
		Title: "Computational costs of the fragment generator phases",
		Run:   runTable21,
	})
	register(Experiment{
		ID:    "locality",
		Title: "Accesses per texel and texture repetition (Section 3.1.2)",
		Run:   runLocality,
	})
	register(Experiment{
		ID:    "runlength",
		Title: "Average texture runlengths (Section 5.2.3)",
		Run:   runRunlength,
	})
}

// characterize renders one scene with the locality collector attached.
func characterize(ctx context.Context, cfg Config, name string) (*scenes.Scene, *stats.Locality, *cost.Counters, *frameInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, nil, err
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	loc := stats.NewLocality()
	counters := cost.NewCounters()
	r, err := s.Render(scenes.RenderOptions{
		Layout:    texture.LayoutSpec{Kind: texture.NonBlockedKind},
		Traversal: s.DefaultTraversal(),
		OnAccess:  loc.Record,
		Counters:  counters,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fi := &frameInfo{
		Triangles:    r.Stats.TrianglesIn,
		TexturedTris: r.Stats.TexturedTris,
		Fragments:    r.Stats.FragmentsTextured,
		AvgArea:      safeDiv(r.Stats.TriangleAreaSum, float64(r.Stats.TexturedTris)),
		AvgW:         safeDiv(r.Stats.TriangleWidthSum, float64(r.Stats.TexturedTris)),
		AvgH:         safeDiv(r.Stats.TriangleHeightSum, float64(r.Stats.TexturedTris)),
	}
	return s, loc, counters, fi, nil
}

type frameInfo struct {
	Triangles    int
	TexturedTris int
	Fragments    uint64
	AvgArea      float64
	AvgW, AvgH   float64
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func runTable41(ctx context.Context, cfg Config, rep report.Reporter) error {
	rep.BeginTable("benchmarks", []report.Column{
		{Name: "Scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "Resolution", Head: " %-11s", Cell: " %s"},
		{Name: "Tris", Head: " %6s", Cell: " %6d"},
		{Name: "AvgArea", Head: " %8s", Cell: " %8.0f"},
		{Name: "AvgW", Head: " %6s", Cell: " %6.0f"},
		{Name: "AvgH", Head: " %6s", Cell: " %6.0f"},
		{Name: "Texs", Head: " %5s", Cell: " %5d"},
		{Name: "Store(MB)", Head: " %9s", Cell: " %9.1f"},
		{Name: "Used(MB)", Head: " %9s", Cell: " %9.2f"},
		{Name: "Used%", Head: " %6s", Cell: " %5.0f%%"},
		{Name: "PixTex(M)", Head: " %9s", Cell: " %9.2f"},
	})
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, loc, _, fi, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		storage := float64(s.TextureStorageBytes()) / (1 << 20)
		used := float64(loc.TextureUsedBytes()) / (1 << 20)
		rep.Row(s.Name, fmt.Sprintf("%4dx%-6d", s.Width, s.Height),
			fi.Triangles, fi.AvgArea, fi.AvgW, fi.AvgH,
			len(s.Mips), storage, used, 100*used/storage,
			float64(fi.Fragments)/1e6)
	}
	return nil
}

func runTable21(ctx context.Context, cfg Config, rep report.Reporter) error {
	for _, name := range cfg.sceneList("goblet") {
		_, _, counters, _, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		rep.Note("--- %s: per-frame operation totals (Table 2.1 unit costs) ---", name)
		var sb strings.Builder
		if err := counters.WriteTable(&sb); err != nil {
			return err
		}
		for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
			rep.Note("%s", line)
		}
	}
	return nil
}

func runLocality(ctx context.Context, cfg Config, rep report.Reporter) error {
	rep.BeginTable("locality", []report.Column{
		{Name: "Scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "lower/texel", Head: " %12s", Cell: " %12.1f"},
		{Name: "upper/texel", Head: " %12s", Cell: " %12.1f"},
		{Name: "bili/texel", Head: " %12s", Cell: " %12.1f"},
		{Name: "repetition", Head: " %11s", Cell: " %11.2f"},
		{Name: "uniqueTexels", Head: " %12s", Cell: " %12d"},
	})
	for _, name := range cfg.sceneList(scenes.Names()...) {
		_, loc, _, _, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		rep.Row(name,
			loc.AccessesPerTexel(texture.AccessTrilinearLower),
			loc.AccessesPerTexel(texture.AccessTrilinearUpper),
			loc.AccessesPerTexel(texture.AccessBilinear),
			loc.RepetitionFactor(),
			loc.UniqueTexels())
	}
	rep.Note("")
	rep.Note("%s", "paper: lower=4, upper=14, bilinear=18 (avg across scenes);")
	rep.Note("%s", "repetition: town=2.9 guitar=1.7 goblet=1.1 flight=1.0")
	return nil
}

func runRunlength(ctx context.Context, cfg Config, rep report.Reporter) error {
	rep.BeginTable("runlength", []report.Column{
		{Name: "Scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "avg runlength", Head: " %14s", Cell: " %14.0f"},
		{Name: "runs", Head: " %8s", Cell: " %8d"},
	})
	for _, name := range cfg.sceneList("town", "guitar", "flight") {
		_, loc, _, _, err := characterize(ctx, cfg, name)
		if err != nil {
			return err
		}
		rep.Row(name, loc.AverageRunlength(), loc.Runs())
	}
	rep.Note("")
	rep.Note("%s", "paper: town=223629 guitar=553745 flight=562154 (multi-texture scenes)")
	return nil
}
