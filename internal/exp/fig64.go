package exp

import (
	"context"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "fig6.4",
		Title: "Effect of tiled rasterization plus padding/6D blocking on " +
			"conflict misses (Town-vertical, Flight; 8x8 blocks, 128B lines, 8x8 tiles)",
		Run: runFig64,
	})
}

// fig64Specs builds the layout variants compared in Figure 6.4 for a
// given cache size (the 6D super-block is sized to the cache, per the
// figure caption: "the largest block size ... less than or equal to the
// cache size").
func fig64Specs(cacheSize int) []texture.LayoutSpec {
	return []texture.LayoutSpec{
		{Kind: texture.BlockedKind, BlockW: 8},
		{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4},
		{Kind: texture.SixDBlockedKind, BlockW: 8, SuperBytes: cacheSize},
	}
}

// runFig64 reproduces Figure 6.4: direct-mapped and 2-way miss rates
// with untiled versus tiled rasterization, and with plain, padded and 6D
// blocked representations. Expected shapes: tiling alone sharply cuts
// block conflicts for Town; Flight's large terrain textures also need
// padding or 6D blocking before the conflicts subside.
func runFig64(ctx context.Context, cfg Config, rep report.Reporter) error {
	const lineBytes = 128
	for _, sc := range []struct {
		name string
		dir  raster.Order
	}{{"town", raster.ColumnMajor}, {"flight", raster.RowMajor}} {
		if !containsScene(cfg, sc.name) {
			continue
		}
		rep.Note("--- %s (%s within and between tiles) ---", sc.name, sc.dir)
		cols := []report.Column{{Name: "config", Head: "%-34s", Cell: "%-34s"}}
		for _, s := range curveSizes() {
			cols = append(cols, report.Column{Name: cache.FormatSize(s), Head: "%9s", Cell: "%8.2f%%"})
		}
		rep.BeginTable("conflicts-"+sc.name, cols)

		type variant struct {
			label string
			tiled bool
			spec  texture.LayoutSpec
		}
		variants := []variant{
			{"untiled blocked", false, texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}},
			{"tiled 8x8 blocked", true, texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}},
			{"tiled 8x8 padded(4)", true, texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4}},
			{"tiled 8x8 6D", true, texture.LayoutSpec{}}, // super-block set per size below
		}
		for _, v := range variants {
			trav := raster.Traversal{Order: sc.dir}
			if v.tiled {
				trav.TileW, trav.TileH = 8, 8
			}
			// The 6D super-block tracks the cache size, so its address
			// stream changes per point; the other variants share one
			// trace across the sweep.
			sixD := v.label == "tiled 8x8 6D"
			var tr cache.AddrStream
			if !sixD {
				var err error
				if tr, err = traceScene(ctx, cfg, sc.name, v.spec, trav); err != nil {
					return err
				}
			}
			vals := []any{v.label + " 2-way"}
			for _, size := range curveSizes() {
				if sixD {
					spec := texture.LayoutSpec{Kind: texture.SixDBlockedKind, BlockW: 8, SuperBytes: size}
					var err error
					if tr, err = traceScene(ctx, cfg, sc.name, spec, trav); err != nil {
						return err
					}
				}
				c := cache.New(cache.Config{SizeBytes: size, LineBytes: lineBytes, Ways: 2})
				cache.ReplayStream(tr, c.Sink())
				vals = append(vals, 100*c.Stats().MissRate())
			}
			rep.Row(vals...)
		}

		// Fully-associative floor for reference (conflict-free).
		trav := raster.Traversal{Order: sc.dir, TileW: 8, TileH: 8}
		tr, err := traceScene(ctx, cfg, sc.name, texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}, trav)
		if err != nil {
			return err
		}
		sd := cache.NewStackDist(lineBytes)
		cache.ReplayStream(tr, sd)
		vals := []any{"tiled 8x8 blocked FA floor"}
		for _, r := range sd.Curve(curveSizes()) {
			vals = append(vals, 100*r)
		}
		rep.Row(vals...)
		rep.Note("")
	}
	rep.Note("%s", "paper: tiling cuts town's block conflicts by itself; flight's 1024x1024")
	rep.Note("%s", "textures also need padding or 6D blocking before conflicts subside")
	return nil
}
