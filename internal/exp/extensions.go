package exp

import (
	"context"

	"texcache/internal/cache"
	"texcache/internal/parallel"
	"texcache/internal/perf"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// Extension experiments: the directions the paper proposes but does not
// evaluate — the Peano-Hilbert rasterization path of footnote 1,
// rendering from compressed textures (Section 8 / Beers et al.), the
// parallel fragment-generator question from the conclusion, and the
// latency-hiding sensitivity of Section 7.1.1.

func init() {
	register(Experiment{
		ID: "hilbert",
		Title: "Peano-Hilbert rasterization path vs scanline and tiled " +
			"orders (footnote 1 ablation)",
		Run: runHilbert,
		Needs: func(cfg Config) []TraceKey {
			name := "guitar"
			if len(cfg.Scenes) > 0 {
				name = cfg.Scenes[0]
			}
			base := DefaultTraversalFor(name)
			tiled := base
			tiled.TileW, tiled.TileH = 8, 8
			return []TraceKey{
				{Scene: name, Layout: blocked8(), Traversal: base},
				{Scene: name, Layout: blocked8(), Traversal: tiled},
				{Scene: name, Layout: blocked8(), Traversal: raster.Traversal{Order: raster.HilbertOrder}},
			}
		},
	})
	register(Experiment{
		ID: "compress",
		Title: "Rendering from 4:1 compressed textures vs uncompressed " +
			"(Section 8 future work)",
		Run: runCompress,
	})
	register(Experiment{
		ID: "parallel",
		Title: "Parallel fragment generators sharing texture memory: " +
			"balance vs locality (Section 8 future work)",
		Run: runParallel,
	})
	register(Experiment{
		ID: "latency",
		Title: "Rendering performance with and without latency hiding " +
			"(Section 7.1.1)",
		Run: runLatency,
		Needs: func(cfg Config) []TraceKey {
			var keys []TraceKey
			for _, name := range cfg.sceneList(scenes.Names()...) {
				keys = append(keys, TraceKey{Scene: name,
					Layout:    texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4},
					Traversal: raster.Traversal{TileW: 8, TileH: 8}})
			}
			return keys
		},
	})
}

// runHilbert compares the working-set curves of scanline, tiled and
// Hilbert traversals. Expected: Hilbert matches or beats tiled at small
// caches — it is the limit case of recursive tiling.
func runHilbert(ctx context.Context, cfg Config, rep report.Reporter) error {
	name := "guitar"
	if len(cfg.Scenes) > 0 {
		name = cfg.Scenes[0]
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return err
	}
	rep.Note("--- %s, blocked 8x8, 128B lines, fully associative ---", name)
	beginCurve(rep, "traversals", "traversal")
	for _, tc := range []struct {
		label string
		trav  raster.Traversal
	}{
		{"scanline", raster.Traversal{Order: s.DefaultOrder}},
		{"tiled 8x8", raster.Traversal{Order: s.DefaultOrder, TileW: 8, TileH: 8}},
		{"hilbert", raster.Traversal{Order: raster.HilbertOrder}},
	} {
		tr, err := traceScene(ctx, cfg, name, blocked8(), tc.trav)
		if err != nil {
			return err
		}
		sd := cache.NewStackDist(128)
		cache.ReplayStream(tr, sd)
		curveRow(rep, tc.label, sd.Curve(curveSizes()))
	}
	rep.Note("")
	rep.Note("%s", "footnote 1: the Peano-Hilbert path minimizes the working set by")
	rep.Note("%s", "traversing texture regions in a spatially contiguous manner")
	return nil
}

// runCompress compares blocked uncompressed against 4:1 compressed
// texture memory: the compressed line covers four times the texels, so
// both the miss rate and the bytes per miss drop.
func runCompress(ctx context.Context, cfg Config, rep report.Reporter) error {
	model := perf.Default()
	rep.BeginTable("compress", []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "layout", Head: " %-12s", Cell: " %-12s"},
		{Name: "miss rate", Head: " %12s", Cell: " %11.2f%%"},
		{Name: "MB/frame", Head: " %12s", Cell: " %12.2f"},
		{Name: "MB/s @50Mf/s", Head: " %14s", Cell: " %14.0f"},
	})
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		for _, spec := range []texture.LayoutSpec{
			{Kind: texture.BlockedKind, BlockW: 8},
			{Kind: texture.CompressedKind, BlockW: 8, Ratio: 4},
		} {
			tr, err := traceScene(ctx, cfg, name, spec, s.DefaultTraversal())
			if err != nil {
				return err
			}
			c := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
			cache.ReplayStream(tr, c.Sink())
			st := c.Stats()
			rep.Row(name, spec.Kind, 100*st.MissRate(),
				float64(st.BytesFetched(128))/(1<<20),
				model.BandwidthBytesPerSecond(st.MissRate(), 128)/1e6)
		}
	}
	rep.Note("")
	rep.Note("%s", "expected: ~4x traffic reduction — fewer misses (denser lines) at the")
	rep.Note("%s", "same line size, with decompression moved into the fill path")
	return nil
}

// runParallel evaluates image-space work partitions for 1-8 fragment
// generators, each with a private 32KB 2-way cache over a shared texture
// memory: load imbalance vs aggregate miss traffic.
func runParallel(ctx context.Context, cfg Config, rep report.Reporter) error {
	name := "town"
	if len(cfg.Scenes) > 0 {
		name = cfg.Scenes[0]
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return err
	}
	layout := texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4}
	cc := cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}
	rep.Note("--- %s, per-FG 32KB 2-way 128B lines ---", name)
	rep.BeginTable("partitions", []report.Column{
		{Name: "partition", Head: "%-22s", Cell: "%-22s"},
		{Name: "FGs", Head: " %4s", Cell: " %4d"},
		{Name: "imbalance", Head: " %12s", Cell: " %12.3f"},
		{Name: "agg miss%", Head: " %12s", Cell: " %11.2f%%"},
		{Name: "misses/frame", Head: " %14s", Cell: " %14d"},
	})
	for _, n := range []int{1, 2, 4, 8} {
		for _, p := range []parallel.Partition{
			parallel.ScanlineInterleave, parallel.StripPartition, parallel.TileInterleave,
		} {
			if n == 1 && p != parallel.StripPartition {
				continue // all partitions are identical with one FG
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			res, err := parallel.Run(s, p, n, 8, layout, cc)
			if err != nil {
				return err
			}
			rep.Row(p, n, res.LoadImbalance(), 100*res.AggregateMissRate(), res.TotalMisses())
		}
	}
	rep.Note("")
	rep.Note("%s", "the conclusion's open question: interleaved scanlines balance load but")
	rep.Note("%s", "shred per-stream locality; strips keep locality but unbalance; tiles trade")
	return nil
}

// runLatency quantifies Section 7.1.1: how far below the 50M fragments/s
// peak an un-hidden ~50-cycle miss latency drags each scene, versus the
// prefetching dual-rasterizer design that hides it.
func runLatency(ctx context.Context, cfg Config, rep report.Reporter) error {
	model := perf.Default()
	rep.BeginTable("latency", []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "miss rate", Head: " %10s", Cell: " %9.2f%%"},
		{Name: "stalled Mfrag/s", Head: " %16s", Cell: " %16.1f"},
		{Name: "hidden Mfrag/s", Head: " %16s", Cell: " %16.1f"},
		{Name: "slowdown", Head: " %8s", Cell: " %7.1fx"},
	})
	for _, name := range cfg.sceneList(scenes.Names()...) {
		tr, err := traceScene(ctx, cfg, name,
			texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4},
			raster.Traversal{TileW: 8, TileH: 8})
		if err != nil {
			return err
		}
		c := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
		cache.ReplayStream(tr, c.Sink())
		mr := c.Stats().MissRate()
		stalled := model.SustainedFragmentsPerSecond(mr, 128, false)
		hidden := model.SustainedFragmentsPerSecond(mr, 128, true)
		rep.Row(name, 100*mr, stalled/1e6, hidden/1e6, hidden/stalled)
	}
	rep.Note("")
	rep.Note("%s", "Section 7.1.1: the memory latency 'must be completely hidden to achieve")
	rep.Note("%s", "the maximum rate of fragments textured per second'")
	return nil
}
