package exp

import (
	"context"

	"texcache/internal/banks"
	"texcache/internal/cache"
	"texcache/internal/report"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "williams",
		Title: "Caching pathologies of the Williams component-separated " +
			"representation (Section 5.1)",
		Run: runWilliams,
	})
}

// newBankAnalyzer adapts banks.Analyzer so table71.go does not import the
// package directly at its call sites.
type bankAnalyzer struct{ a *banks.Analyzer }

func newBankAnalyzer() *bankAnalyzer { return &bankAnalyzer{a: banks.New()} }

func (b *bankAnalyzer) Record(e texture.AccessEvent) { b.a.Record(e) }
func (b *bankAnalyzer) CyclesPerQuadMorton() float64 { return b.a.CyclesPerQuad(banks.Morton) }
func (b *bankAnalyzer) CyclesPerQuadLinear() float64 { return b.a.CyclesPerQuad(banks.Linear) }
func (b *bankAnalyzer) Speedup() float64             { return b.a.Speedup() }

// runWilliams compares the Williams representation against the base
// nonblocked representation: the component planes separated by powers of
// two bytes triple the access count and collide in low-associativity
// caches, which is why Section 5.1 rejects it as the baseline.
func runWilliams(ctx context.Context, cfg Config, rep report.Reporter) error {
	rep.BeginTable("williams", []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "layout", Head: " %-12s", Cell: " %-12s"},
		{Name: "accesses", Head: " %10s", Cell: " %10d"},
		{Name: "DM miss%", Head: " %12s", Cell: " %11.2f%%"},
		{Name: "2-way miss%", Head: " %12s", Cell: " %11.2f%%"},
		{Name: "FA miss%", Head: " %12s", Cell: " %11.2f%%"},
	})
	for _, name := range cfg.sceneList("goblet", "guitar") {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		for _, spec := range []texture.LayoutSpec{
			{Kind: texture.NonBlockedKind},
			{Kind: texture.WilliamsKind},
		} {
			tr, err := traceScene(ctx, cfg, name, spec, s.DefaultTraversal())
			if err != nil {
				return err
			}
			var cfgs []cache.Config
			for _, ways := range []int{1, 2, 0} {
				cfgs = append(cfgs, cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: ways})
			}
			row, err := sweepRates(ctx, cfg, tr, cfgs)
			if err != nil {
				return err
			}
			rep.Row(name, spec.Kind, tr.Len(), 100*row[0], 100*row[1], 100*row[2])
		}
	}
	rep.Note("")
	rep.Note("%s", "paper: the Williams layout needs three accesses per texel and its")
	rep.Note("%s", "power-of-two component strides conflict in the cache")
	return nil
}
