package exp

import (
	"context"
	"fmt"
	"io"

	"texcache/internal/cache"
	"texcache/internal/raster"
)

func init() {
	register(Experiment{
		ID: "fig6.2",
		Title: "Effect of tiled rasterization on working set size (Guitar, " +
			"fully associative, 8x8 blocks, 128B lines)",
		Run: runFig62,
	})
}

// fig62Tiles is the tile-dimension sweep in pixels (0 = untiled).
var fig62Tiles = []int{0, 2, 4, 8, 16, 32, 64, 128, 256}

// runFig62 reproduces Figure 6.2: miss rate vs cache size for screen tile
// sizes from tiny to huge. Expected shape: medium tiles cut capacity
// misses for caches that previously couldn't hold the working set; tiny
// tiles converge to the untiled pattern; huge tiles overflow the cache
// again.
func runFig62(ctx context.Context, cfg Config, w io.Writer) error {
	name := "guitar"
	if len(cfg.Scenes) > 0 {
		name = cfg.Scenes[0]
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "--- %s, blocked 8x8, 128B lines, fully associative ---\n", name)
	printCurveHeader(w, "tile")
	for _, tile := range fig62Tiles {
		trav := raster.Traversal{Order: s.DefaultOrder, TileW: tile, TileH: tile}
		tr, err := traceScene(ctx, cfg, name, blocked8(), trav)
		if err != nil {
			return err
		}
		sd := cache.NewStackDist(128)
		tr.Replay(sd)
		label := "untiled"
		if tile > 0 {
			label = fmt.Sprintf("%dx%d px", tile, tile)
		}
		printCurve(w, label, sd.Curve(curveSizes()))
	}
	fmt.Fprintln(w, "\npaper: small->medium tiles cut misses at cache sizes below the untiled")
	fmt.Fprintln(w, "working set; medium->huge tiles bring capacity misses back")
	return nil
}
