package exp

import (
	"context"
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/report"
)

func init() {
	register(Experiment{
		ID: "fig6.2",
		Title: "Effect of tiled rasterization on working set size (Guitar, " +
			"fully associative, 8x8 blocks, 128B lines)",
		Run: runFig62,
	})
}

// fig62Tiles is the tile-dimension sweep in pixels (0 = untiled).
var fig62Tiles = []int{0, 2, 4, 8, 16, 32, 64, 128, 256}

// runFig62 reproduces Figure 6.2: miss rate vs cache size for screen tile
// sizes from tiny to huge. Expected shape: medium tiles cut capacity
// misses for caches that previously couldn't hold the working set; tiny
// tiles converge to the untiled pattern; huge tiles overflow the cache
// again.
func runFig62(ctx context.Context, cfg Config, rep report.Reporter) error {
	name := "guitar"
	if len(cfg.Scenes) > 0 {
		name = cfg.Scenes[0]
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return err
	}
	rep.Note("--- %s, blocked 8x8, 128B lines, fully associative ---", name)
	beginCurve(rep, "tile-sweep", "tile")
	for _, tile := range fig62Tiles {
		trav := raster.Traversal{Order: s.DefaultOrder, TileW: tile, TileH: tile}
		tr, err := traceScene(ctx, cfg, name, blocked8(), trav)
		if err != nil {
			return err
		}
		sd := cache.NewStackDist(128)
		cache.ReplayStream(tr, sd)
		label := "untiled"
		if tile > 0 {
			label = fmt.Sprintf("%dx%d px", tile, tile)
		}
		curveRow(rep, label, sd.Curve(curveSizes()))
	}
	rep.Note("")
	rep.Note("%s", "paper: small->medium tiles cut misses at cache sizes below the untiled")
	rep.Note("%s", "working set; medium->huge tiles bring capacity misses back")
	return nil
}
