package exp

import (
	"context"
	"fmt"
	"math"

	"texcache/internal/cache"
	"texcache/internal/geom"
	"texcache/internal/pipeline"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/texture"
	"texcache/internal/vecmath"
)

func init() {
	register(Experiment{
		ID: "worstcase",
		Title: "Worst-case working set vs texture orientation " +
			"(the Section 5.2.3 analysis)",
		Run: runWorstCase,
	})
}

// runWorstCase builds the scenario of the Section 5.2.3 worst-case
// analysis — one huge textured surface spanning the screen, with the
// texture at a controlled orientation — and measures the working-set
// curve of the nonblocked representation under horizontal rasterization.
// Expected shape: at 0 degrees the scanline direction matches row-major
// storage and the working set stays near one line; at 90 degrees every
// scanline streams down texture columns, and the working set approaches
// the analytic bound of line size x screen height; 45 degrees lands
// between. A blocked reference shows the orientation dependence vanish.
func runWorstCase(ctx context.Context, cfg Config, rep report.Reporter) error {
	screen := 1024 / cfg.scale()
	if screen < 64 {
		screen = 64
	}
	ts := 1024
	for s := cfg.scale(); s > 1; s /= 2 {
		ts /= 2
	}
	if ts < 64 {
		ts = 64
	}

	rep.Note("full-screen textured quad, %dx%d screen, %dx%d texture, 1:1 sampling",
		screen, screen, ts, ts)
	rep.Note("analytic bound (Section 5.2.3): 32B line x %d screen rows = %s",
		screen, cache.FormatSize(32*screen))
	rep.Note("")

	for _, spec := range []texture.LayoutSpec{
		{Kind: texture.NonBlockedKind},
		{Kind: texture.BlockedKind, BlockW: 4},
	} {
		rep.Note("--- %s representation ---", spec.Kind)
		beginCurve(rep, fmt.Sprintf("worstcase-%s", spec.Kind), "texture angle")
		for _, deg := range []float64{0, 45, 90} {
			if err := ctx.Err(); err != nil {
				return err
			}
			tr, err := traceRotatedQuad(screen, ts, deg, spec)
			if err != nil {
				return err
			}
			sd := cache.NewStackDist(32)
			tr.Replay(sd)
			curveRow(rep, fmt.Sprintf("%.0f deg", deg), sd.Curve(curveSizes()))
		}
		rep.Note("")
	}
	rep.Note("%s", "paper: the nonblocked representation is sensitive to the direction of")
	rep.Note("%s", "texture accesses; blocking removes the orientation dependence")
	return nil
}

// traceRotatedQuad renders one full-screen quad whose texture axes are
// rotated by deg degrees in the view plane, sampling roughly one texel
// per pixel, and returns the texel address trace.
func traceRotatedQuad(screen, texSize int, deg float64, spec texture.LayoutSpec) (*cache.Trace, error) {
	arena := texture.NewArena()
	tex, err := texture.NewTexture(0, texture.Checker(texSize, texSize, 8,
		texture.Texel{R: 230, G: 220, B: 200, A: 255},
		texture.Texel{R: 60, G: 70, B: 90, A: 255}), spec, arena)
	if err != nil {
		return nil, err
	}

	r := pipeline.NewRenderer(screen, screen)
	r.Textures = []*texture.Texture{tex}
	trace := cache.NewTrace(screen * screen * 4)
	r.Sink = trace
	r.Traversal = raster.Traversal{Order: raster.RowMajor}

	// The quad is oversized so the rotated surface still covers the
	// whole screen; UVs scale so one texel maps to about one pixel
	// (lambda ~ 0, bilinear), the regime of the paper's analysis.
	side := 2.0 * math.Sqrt2
	uvScale := side / 2 * float64(screen) / float64(texSize)
	white := vecmath.Vec3{X: 1, Y: 1, Z: 1}
	v := func(x, y, u, vv float64) geom.Vertex {
		return geom.Vertex{
			Pos:    vecmath.Vec3{X: x, Y: y},
			Normal: vecmath.Vec3{Z: 1},
			UV:     vecmath.Vec2{X: u * uvScale, Y: vv * uvScale},
			Color:  white,
		}
	}
	m := &geom.Mesh{}
	m.AddQuad(
		v(-side/2, -side/2, 0, 1), v(side/2, -side/2, 1, 1),
		v(side/2, side/2, 1, 0), v(-side/2, side/2, 0, 0), 0)

	rot := vecmath.RotateZ(deg * math.Pi / 180)
	cam := pipeline.LookAtCamera(vecmath.Vec3{Z: 1}, vecmath.Vec3{}, vecmath.Vec3{Y: 1},
		math.Pi/2, 1, 0.1, 10)
	r.DrawMesh(m, rot, cam)
	return trace, nil
}
