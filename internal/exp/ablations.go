package exp

import (
	"fmt"
	"io"

	"texcache/internal/cache"
	"texcache/internal/scenes"
)

// Cache-organization ablations beyond the paper's sweeps: replacement
// policy (the paper fixes LRU without comment) and sectored lines (the
// classic alternative when large lines are wanted cheaply).

func init() {
	register(Experiment{
		ID: "replacement",
		Title: "Replacement policy ablation: LRU vs FIFO vs random " +
			"(the paper assumes LRU)",
		Run: runReplacement,
	})
	register(Experiment{
		ID: "sectored",
		Title: "Sectored (sub-block) lines vs full-line fills: miss rate " +
			"vs fill traffic",
		Run: runSectored,
	})
}

// runReplacement sweeps cache size for the three policies at the paper's
// standard 2-way / 128B / blocked-8x8 point. Expected shape: LRU lowest,
// FIFO and random close behind — texture streams are so sequential that
// policy matters little, which is itself a finding.
func runReplacement(cfg Config, w io.Writer) error {
	for _, name := range cfg.sceneList("goblet", "town") {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		tr, _, err := s.Trace(blocked8(), s.DefaultTraversal())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s, 2-way, 128B lines, blocked 8x8 ---\n", name)
		printCurveHeader(w, "policy")
		for _, p := range []cache.Replacement{cache.LRU, cache.FIFO, cache.Random} {
			rates := make([]float64, 0, len(curveSizes()))
			for _, size := range curveSizes() {
				c := cache.New(cache.Config{SizeBytes: size, LineBytes: 128, Ways: 2, Policy: p})
				tr.Replay(c.Sink())
				rates = append(rates, c.Stats().MissRate())
			}
			printCurve(w, p.String(), rates)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "LRU exploits the re-reference of filter footprints; the gap to FIFO and")
	fmt.Fprintln(w, "random shows how much of the hit rate is recency rather than streaming")
	return nil
}

// runSectored compares a full-line cache against sectored variants with
// the same tags but smaller fetch granularity. Expected shape: sectors
// raise the miss (fetch) count — the texture stream profits from the
// full-line prefetch of neighboring texels — but each fetch moves fewer
// bytes, so the traffic comparison decides the design.
func runSectored(cfg Config, w io.Writer) error {
	const lineBytes = 128
	fmt.Fprintf(w, "%-8s %-18s %12s %12s %12s\n",
		"scene", "organization", "fetch rate", "tag misses", "MB moved")
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		tr, _, err := s.Trace(blocked8(), s.DefaultTraversal())
		if err != nil {
			return err
		}
		ccfg := cache.Config{SizeBytes: 32 << 10, LineBytes: lineBytes, Ways: 2}

		full := cache.New(ccfg)
		tr.Replay(full.Sink())
		fs := full.Stats()
		fmt.Fprintf(w, "%-8s %-18s %11.2f%% %12d %12.2f\n",
			name, "full 128B fills", 100*fs.MissRate(), fs.Misses,
			float64(fs.BytesFetched(lineBytes))/(1<<20))

		for _, sector := range []int{64, 32} {
			sc, err := cache.NewSectored(ccfg, sector)
			if err != nil {
				return err
			}
			tr.Replay(sc.Sink())
			ss := sc.Stats()
			fmt.Fprintf(w, "%-8s %-18s %11.2f%% %12d %12.2f\n",
				name, fmt.Sprintf("%dB sectors", sector), 100*ss.MissRate(),
				sc.TagMisses(), float64(sc.TrafficBytes())/(1<<20))
		}
	}
	fmt.Fprintln(w, "\nfull-line fills act as spatial prefetch for blocked textures; sectors")
	fmt.Fprintln(w, "trade extra fetches for less traffic per fetch")
	return nil
}
