package exp

import (
	"context"
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/report"
	"texcache/internal/scenes"
)

// Cache-organization ablations beyond the paper's sweeps: replacement
// policy (the paper fixes LRU without comment) and sectored lines (the
// classic alternative when large lines are wanted cheaply).

func init() {
	register(Experiment{
		ID: "replacement",
		Title: "Replacement policy ablation: LRU vs FIFO vs random " +
			"(the paper assumes LRU)",
		Run: runReplacement,
		Needs: func(cfg Config) []TraceKey {
			var keys []TraceKey
			for _, name := range cfg.sceneList("goblet", "town") {
				keys = append(keys, TraceKey{Scene: name, Layout: blocked8(),
					Traversal: DefaultTraversalFor(name)})
			}
			return keys
		},
	})
	register(Experiment{
		ID: "sectored",
		Title: "Sectored (sub-block) lines vs full-line fills: miss rate " +
			"vs fill traffic",
		Run: runSectored,
		Needs: func(cfg Config) []TraceKey {
			var keys []TraceKey
			for _, name := range cfg.sceneList(scenes.Names()...) {
				keys = append(keys, TraceKey{Scene: name, Layout: blocked8(),
					Traversal: DefaultTraversalFor(name)})
			}
			return keys
		},
	})
}

// runReplacement sweeps cache size for the three policies at the paper's
// standard 2-way / 128B / blocked-8x8 point. Expected shape: LRU lowest,
// FIFO and random close behind — texture streams are so sequential that
// policy matters little, which is itself a finding.
func runReplacement(ctx context.Context, cfg Config, rep report.Reporter) error {
	policies := []cache.Replacement{cache.LRU, cache.FIFO, cache.Random}
	for _, name := range cfg.sceneList("goblet", "town") {
		tr, err := traceScene(ctx, cfg, name, blocked8(), DefaultTraversalFor(name))
		if err != nil {
			return err
		}
		rep.Note("--- %s, 2-way, 128B lines, blocked 8x8 ---", name)
		beginCurve(rep, "replacement-"+name, "policy")
		// One pass replays the whole (policy x size) grid concurrently.
		var cfgs []cache.Config
		for _, p := range policies {
			for _, size := range curveSizes() {
				cfgs = append(cfgs, cache.Config{SizeBytes: size, LineBytes: 128, Ways: 2, Policy: p})
			}
		}
		rates, err := sweepRates(ctx, cfg, tr, cfgs)
		if err != nil {
			return err
		}
		per := len(curveSizes())
		for i, p := range policies {
			curveRow(rep, p.String(), rates[i*per:(i+1)*per])
		}
		rep.Note("")
	}
	rep.Note("%s", "LRU exploits the re-reference of filter footprints; the gap to FIFO and")
	rep.Note("%s", "random shows how much of the hit rate is recency rather than streaming")
	return nil
}

// runSectored compares a full-line cache against sectored variants with
// the same tags but smaller fetch granularity. Expected shape: sectors
// raise the miss (fetch) count — the texture stream profits from the
// full-line prefetch of neighboring texels — but each fetch moves fewer
// bytes, so the traffic comparison decides the design.
func runSectored(ctx context.Context, cfg Config, rep report.Reporter) error {
	const lineBytes = 128
	rep.BeginTable("sectored", []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "organization", Head: " %-18s", Cell: " %-18s"},
		{Name: "fetch rate", Head: " %12s", Cell: " %11.2f%%"},
		{Name: "tag misses", Head: " %12s", Cell: " %12d"},
		{Name: "MB moved", Head: " %12s", Cell: " %12.2f"},
	})
	for _, name := range cfg.sceneList(scenes.Names()...) {
		tr, err := traceScene(ctx, cfg, name, blocked8(), DefaultTraversalFor(name))
		if err != nil {
			return err
		}
		ccfg := cache.Config{SizeBytes: 32 << 10, LineBytes: lineBytes, Ways: 2}

		// The full-line cache and both sectored variants share one
		// concurrent pass over the trace.
		full := cache.New(ccfg)
		sectors := []int{64, 32}
		scs := make([]*cache.Sectored, len(sectors))
		sinks := []cache.Sink{full.Sink()}
		for i, sector := range sectors {
			sc, err := cache.NewSectored(ccfg, sector)
			if err != nil {
				return err
			}
			scs[i] = sc
			sinks = append(sinks, sc.Sink())
		}
		if err := cache.ReplayStreamConcurrent(ctx, tr, sinks...); err != nil {
			return err
		}

		fs := full.Stats()
		rep.Row(name, "full 128B fills", 100*fs.MissRate(), fs.Misses,
			float64(fs.BytesFetched(lineBytes))/(1<<20))
		for i, sector := range sectors {
			ss := scs[i].Stats()
			rep.Row(name, fmt.Sprintf("%dB sectors", sector), 100*ss.MissRate(),
				scs[i].TagMisses(), float64(scs[i].TrafficBytes())/(1<<20))
		}
	}
	rep.Note("")
	rep.Note("%s", "full-line fills act as spatial prefetch for blocked textures; sectors")
	rep.Note("%s", "trade extra fetches for less traffic per fetch")
	return nil
}
