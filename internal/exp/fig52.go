package exp

import (
	"context"
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "fig5.2",
		Title: "Miss rate vs cache size, base nonblocked representation, " +
			"fully associative, 32B lines, horizontal and vertical rasterization",
		Run: runFig52,
		Needs: func(cfg Config) []TraceKey {
			var keys []TraceKey
			layout := texture.LayoutSpec{Kind: texture.NonBlockedKind}
			for _, dir := range []raster.Order{raster.RowMajor, raster.ColumnMajor} {
				for _, name := range cfg.sceneList(scenes.Names()...) {
					keys = append(keys, TraceKey{Scene: name, Layout: layout,
						Traversal: raster.Traversal{Order: dir}})
				}
			}
			return keys
		},
	})
}

// runFig52 reproduces Figure 5.2: working-set curves for the base
// representation under both rasterization directions. The paper's
// headline observations: first-level working sets of 4-16KB, cold miss
// floors of 0.55-2.8%, and the Town scene's working set doubling under
// vertical rasterization because its upright textures are then traversed
// against the row-major storage order.
func runFig52(ctx context.Context, cfg Config, rep report.Reporter) error {
	layout := texture.LayoutSpec{Kind: texture.NonBlockedKind}
	for _, dir := range []raster.Order{raster.RowMajor, raster.ColumnMajor} {
		rep.Note("--- (%s rasterization) ---", dir)
		beginCurve(rep, fmt.Sprintf("missrate-%s", dir), "scene")
		for _, name := range cfg.sceneList(scenes.Names()...) {
			tr, err := traceScene(ctx, cfg, name, layout, raster.Traversal{Order: dir})
			if err != nil {
				return err
			}
			sd := cache.NewStackDist(32)
			cache.ReplayStream(tr, sd)
			curveRow(rep, name, sd.Curve(curveSizes()))
		}
		rep.Note("")
	}
	rep.Note("%s", "paper (horizontal): working sets flight=4KB town=8KB guitar=16KB goblet=16KB;")
	rep.Note("%s", "cold miss floors: town=0.55% guitar=0.87% goblet=1.5% flight=2.8%;")
	rep.Note("%s", "vertical: town's small-cache miss rates rise sharply (working set 8KB->16KB)")
	return nil
}
