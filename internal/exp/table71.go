package exp

import (
	"fmt"
	"io"

	"texcache/internal/cache"
	"texcache/internal/perf"
	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "table7.1",
		Title: "Memory bandwidth requirements (MB/s) at 50M textured " +
			"fragments/s, blocked+padded layout, 8x8-pixel tiled rasterization",
		Run: runTable71,
	})
	register(Experiment{
		ID:    "banks",
		Title: "Morton vs linear 4-bank interleaving (Section 7.1.2)",
		Run:   runBanks,
	})
}

// table71Col is one column of Table 7.1.
type table71Col struct {
	cacheSize int
	ways      int
	lineBytes int
	blockW    int
}

// table71Cols transcribes the table's nine columns: 4KB and 32KB 2-way
// and 128KB direct-mapped, each with 32B/4x4, 64B/4x4 and 128B/8x8
// line/block pairs.
func table71Cols() []table71Col {
	var cols []table71Col
	for _, sz := range []struct {
		size, ways int
	}{{4 << 10, 2}, {32 << 10, 2}, {128 << 10, 1}} {
		for _, lb := range []struct{ line, block int }{{32, 4}, {64, 4}, {128, 8}} {
			cols = append(cols, table71Col{sz.size, sz.ways, lb.line, lb.block})
		}
	}
	return cols
}

// runTable71 reproduces Table 7.1: memory bandwidth in MB/s (miss rate in
// parentheses) for each scene and cache configuration, using the padded
// blocked representation and 8x8-pixel tiled rasterization.
func runTable71(cfg Config, w io.Writer) error {
	model := perf.Default()
	cols := table71Cols()

	fmt.Fprintf(w, "%-8s", "scene")
	for _, c := range cols {
		assoc := "2way"
		if c.ways == 1 {
			assoc = "DM"
		}
		fmt.Fprintf(w, "%16s", fmt.Sprintf("%s/%s/%dB",
			cache.FormatSize(c.cacheSize), assoc, c.lineBytes))
	}
	fmt.Fprintln(w)

	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		trav := raster.Traversal{Order: s.DefaultOrder, TileW: 8, TileH: 8}
		// One trace per block size; the cache sweep replays them.
		traces := map[int]*cache.Trace{}
		for _, bw := range []int{4, 8} {
			spec := texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: bw, PadBlocks: 4}
			tr, _, err := s.Trace(spec, trav)
			if err != nil {
				return err
			}
			traces[bw] = tr
		}
		fmt.Fprintf(w, "%-8s", name)
		for _, col := range cols {
			c := cache.New(cache.Config{SizeBytes: col.cacheSize, LineBytes: col.lineBytes, Ways: col.ways})
			traces[col.blockW].Replay(c.Sink())
			mr := c.Stats().MissRate()
			bwMBps := model.BandwidthBytesPerSecond(mr, col.lineBytes) / 1e6
			fmt.Fprintf(w, "%16s", fmt.Sprintf("%.0f (%.2f)", bwMBps, 100*mr))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nuncached requirement: %.1f GB/s; paper's 32KB bandwidths span ~100-450 MB/s (3-15x reduction)\n",
		model.UncachedBandwidthBytesPerSecond()/1e9)
	return nil
}

// runBanks reproduces the Section 7.1.2 analysis: with texels morton-
// interleaved across four banks, every bilinear footprint reads in one
// cycle; linear interleaving conflicts on power-of-two strides.
func runBanks(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-8s %16s %16s %9s\n", "scene", "morton cyc/quad", "linear cyc/quad", "speedup")
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		a := newBankAnalyzer()
		if _, err := s.Render(scenes.RenderOptions{
			Layout:    texture.LayoutSpec{Kind: texture.NonBlockedKind},
			Traversal: s.DefaultTraversal(),
			OnAccess:  a.Record,
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %16.3f %16.3f %8.2fx\n", name,
			a.CyclesPerQuadMorton(), a.CyclesPerQuadLinear(), a.Speedup())
	}
	fmt.Fprintln(w, "\npaper: morton order allows up to four texels per cycle conflict-free")
	return nil
}
