package exp

import (
	"context"
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/perf"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "table7.1",
		Title: "Memory bandwidth requirements (MB/s) at 50M textured " +
			"fragments/s, blocked+padded layout, 8x8-pixel tiled rasterization",
		Run: runTable71,
		Needs: func(cfg Config) []TraceKey {
			var keys []TraceKey
			for _, name := range cfg.sceneList(scenes.Names()...) {
				trav := DefaultTraversalFor(name)
				trav.TileW, trav.TileH = 8, 8
				for _, bw := range []int{4, 8} {
					keys = append(keys, TraceKey{Scene: name,
						Layout:    texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: bw, PadBlocks: 4},
						Traversal: trav})
				}
			}
			return keys
		},
	})
	register(Experiment{
		ID:    "banks",
		Title: "Morton vs linear 4-bank interleaving (Section 7.1.2)",
		Run:   runBanks,
	})
}

// table71Col is one column of Table 7.1.
type table71Col struct {
	cacheSize int
	ways      int
	lineBytes int
	blockW    int
}

// table71Cols transcribes the table's nine columns: 4KB and 32KB 2-way
// and 128KB direct-mapped, each with 32B/4x4, 64B/4x4 and 128B/8x8
// line/block pairs.
func table71Cols() []table71Col {
	var cols []table71Col
	for _, sz := range []struct {
		size, ways int
	}{{4 << 10, 2}, {32 << 10, 2}, {128 << 10, 1}} {
		for _, lb := range []struct{ line, block int }{{32, 4}, {64, 4}, {128, 8}} {
			cols = append(cols, table71Col{sz.size, sz.ways, lb.line, lb.block})
		}
	}
	return cols
}

// runTable71 reproduces Table 7.1: memory bandwidth in MB/s (miss rate in
// parentheses) for each scene and cache configuration, using the padded
// blocked representation and 8x8-pixel tiled rasterization.
func runTable71(ctx context.Context, cfg Config, rep report.Reporter) error {
	model := perf.Default()
	cols := table71Cols()

	rcols := []report.Column{{Name: "scene", Head: "%-8s", Cell: "%-8s"}}
	for _, c := range cols {
		assoc := "2way"
		if c.ways == 1 {
			assoc = "DM"
		}
		rcols = append(rcols, report.Column{
			Name: fmt.Sprintf("%s/%s/%dB", cache.FormatSize(c.cacheSize), assoc, c.lineBytes),
			Head: "%16s", Cell: "%16s"})
	}
	rep.BeginTable("bandwidth", rcols)

	for _, name := range cfg.sceneList(scenes.Names()...) {
		trav := DefaultTraversalFor(name)
		trav.TileW, trav.TileH = 8, 8
		// One trace per block size; each trace replays its columns in a
		// single concurrent pass.
		rates := map[int][]float64{} // blockW -> per-column miss rate (nil entries elsewhere)
		for _, bw := range []int{4, 8} {
			spec := texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: bw, PadBlocks: 4}
			tr, err := traceScene(ctx, cfg, name, spec, trav)
			if err != nil {
				return err
			}
			var cfgs []cache.Config
			for _, col := range cols {
				if col.blockW == bw {
					cfgs = append(cfgs, cache.Config{SizeBytes: col.cacheSize, LineBytes: col.lineBytes, Ways: col.ways})
				}
			}
			r, err := sweepRates(ctx, cfg, tr, cfgs)
			if err != nil {
				return err
			}
			rates[bw] = r
		}
		next := map[int]int{}
		vals := []any{name}
		for _, col := range cols {
			mr := rates[col.blockW][next[col.blockW]]
			next[col.blockW]++
			bwMBps := model.BandwidthBytesPerSecond(mr, col.lineBytes) / 1e6
			vals = append(vals, fmt.Sprintf("%.0f (%.2f)", bwMBps, 100*mr))
		}
		rep.Row(vals...)
	}
	rep.Note("")
	rep.Note("uncached requirement: %.1f GB/s; paper's 32KB bandwidths span ~100-450 MB/s (3-15x reduction)",
		model.UncachedBandwidthBytesPerSecond()/1e9)
	return nil
}

// runBanks reproduces the Section 7.1.2 analysis: with texels morton-
// interleaved across four banks, every bilinear footprint reads in one
// cycle; linear interleaving conflicts on power-of-two strides.
func runBanks(ctx context.Context, cfg Config, rep report.Reporter) error {
	rep.BeginTable("banks", []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "morton cyc/quad", Head: " %16s", Cell: " %16.3f"},
		{Name: "linear cyc/quad", Head: " %16s", Cell: " %16.3f"},
		{Name: "speedup", Head: " %9s", Cell: " %8.2fx"},
	})
	for _, name := range cfg.sceneList(scenes.Names()...) {
		if err := ctx.Err(); err != nil {
			return err
		}
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		a := newBankAnalyzer()
		if _, err := s.Render(scenes.RenderOptions{
			Layout:    texture.LayoutSpec{Kind: texture.NonBlockedKind},
			Traversal: s.DefaultTraversal(),
			OnAccess:  a.Record,
		}); err != nil {
			return err
		}
		rep.Row(name, a.CyclesPerQuadMorton(), a.CyclesPerQuadLinear(), a.Speedup())
	}
	rep.Note("")
	rep.Note("%s", "paper: morton order allows up to four texels per cycle conflict-free")
	return nil
}
