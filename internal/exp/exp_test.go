package exp

import (
	"context"
	"strings"
	"testing"

	"texcache/internal/report"
	"texcache/internal/scenes"
)

// testCfg runs experiments at scale 8 so the whole suite stays fast; the
// experiment code paths are identical at every scale.
var testCfg = Config{Scale: 8}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"banks", "compress", "dram", "fig5.2", "fig5.4", "fig5.5",
		"fig5.6", "fig5.7", "fig5.7nb", "fig6.2", "fig6.4", "hilbert", "igehy",
		"interframe", "latency", "locality", "parallel", "prefetch",
		"replacement", "runlength", "sectored", "table2.1", "table4.1",
		"table7.1", "williams", "worstcase",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig5.2"); !ok {
		t.Error("fig5.2 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus ID found")
	}
}

// runOne executes an experiment and returns its output.
func runOne(t *testing.T, id string, cfg Config) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var sb strings.Builder
	if err := e.Run(context.Background(), cfg, report.NewText(&sb)); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return sb.String()
}

func TestTable41Output(t *testing.T) {
	out := runOne(t, "table4.1", testCfg)
	for _, scene := range []string{"flight", "town", "guitar", "goblet"} {
		if !strings.Contains(out, scene) {
			t.Errorf("table4.1 missing %s:\n%s", scene, out)
		}
	}
	if !strings.Contains(out, "160x128") {
		t.Errorf("table4.1 missing scaled resolution:\n%s", out)
	}
}

func TestTable21Output(t *testing.T) {
	out := runOne(t, "table2.1", testCfg)
	for _, want := range []string{"Per Triangle Setup", "Trilinear Interpolation", "triangles=7200"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2.1 missing %q:\n%s", want, out)
		}
	}
}

func TestLocalityOutput(t *testing.T) {
	out := runOne(t, "locality", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "goblet") || !strings.Contains(out, "repetition") {
		t.Errorf("locality output malformed:\n%s", out)
	}
}

func TestRunlengthOutput(t *testing.T) {
	out := runOne(t, "runlength", Config{Scale: 8, Scenes: []string{"guitar"}})
	if !strings.Contains(out, "guitar") {
		t.Errorf("runlength output malformed:\n%s", out)
	}
}

func TestFig52Output(t *testing.T) {
	out := runOne(t, "fig5.2", Config{Scale: 8, Scenes: []string{"town"}})
	if !strings.Contains(out, "horizontal") || !strings.Contains(out, "vertical") {
		t.Errorf("fig5.2 missing directions:\n%s", out)
	}
	if !strings.Contains(out, "town") || !strings.Contains(out, "%") {
		t.Errorf("fig5.2 missing series:\n%s", out)
	}
}

func TestFig54Output(t *testing.T) {
	out := runOne(t, "fig5.4", Config{Scale: 8, Scenes: []string{"guitar"}})
	if !strings.Contains(out, "guitar") || !strings.Contains(out, "8x8") {
		t.Errorf("fig5.4 malformed:\n%s", out)
	}
	if strings.Contains(out, "town") {
		t.Error("scene filter ignored")
	}
}

func TestFig55Fig56Output(t *testing.T) {
	out := runOne(t, "fig5.5", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "goblet") {
		t.Errorf("fig5.5 malformed:\n%s", out)
	}
	out = runOne(t, "fig5.6", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "goblet") || !strings.Contains(out, "256B/8x8") {
		t.Errorf("fig5.6 malformed:\n%s", out)
	}
}

func TestFig57Output(t *testing.T) {
	out := runOne(t, "fig5.7", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"direct", "2-way", "fully-assoc"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5.7 missing %q:\n%s", want, out)
		}
	}
	out = runOne(t, "fig5.7nb", testCfg)
	if !strings.Contains(out, "NONBLOCKED") {
		t.Errorf("fig5.7nb malformed:\n%s", out)
	}
}

func TestFig62Output(t *testing.T) {
	out := runOne(t, "fig6.2", Config{Scale: 8, Scenes: []string{"guitar"}})
	for _, want := range []string{"untiled", "8x8 px", "256x256 px"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6.2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig64Output(t *testing.T) {
	out := runOne(t, "fig6.4", Config{Scale: 8, Scenes: []string{"town"}})
	for _, want := range []string{"untiled blocked", "padded(4)", "6D", "FA floor"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6.4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable71Output(t *testing.T) {
	out := runOne(t, "table7.1", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"4KB/2way/32B", "128KB/DM/128B", "goblet", "uncached"} {
		if !strings.Contains(out, want) {
			t.Errorf("table7.1 missing %q:\n%s", want, out)
		}
	}
}

func TestBanksOutput(t *testing.T) {
	out := runOne(t, "banks", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "morton") || !strings.Contains(out, "speedup") {
		t.Errorf("banks malformed:\n%s", out)
	}
}

func TestWilliamsOutput(t *testing.T) {
	out := runOne(t, "williams", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "williams") || !strings.Contains(out, "nonblocked") {
		t.Errorf("williams malformed:\n%s", out)
	}
}

func TestExtensionOutputs(t *testing.T) {
	out := runOne(t, "hilbert", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"scanline", "tiled 8x8", "hilbert"} {
		if !strings.Contains(out, want) {
			t.Errorf("hilbert missing %q:\n%s", want, out)
		}
	}
	out = runOne(t, "compress", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "compressed") || !strings.Contains(out, "blocked") {
		t.Errorf("compress malformed:\n%s", out)
	}
	out = runOne(t, "parallel", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"scanline-interleave", "strips", "tile-interleave"} {
		if !strings.Contains(out, want) {
			t.Errorf("parallel missing %q:\n%s", want, out)
		}
	}
	out = runOne(t, "latency", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "stalled") || !strings.Contains(out, "hidden") {
		t.Errorf("latency malformed:\n%s", out)
	}
}

func TestMemoryExperimentOutputs(t *testing.T) {
	out := runOne(t, "dram", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"page-hit", "bus-util", "256B"} {
		if !strings.Contains(out, want) {
			t.Errorf("dram missing %q:\n%s", want, out)
		}
	}
	out = runOne(t, "prefetch", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "fifo=512") || !strings.Contains(out, "goblet") {
		t.Errorf("prefetch malformed:\n%s", out)
	}
	out = runOne(t, "interframe", Config{Scale: 8, Scenes: []string{"goblet"}})
	if !strings.Contains(out, "footprint") || !strings.Contains(out, "->") {
		t.Errorf("interframe malformed:\n%s", out)
	}
	out = runOne(t, "igehy", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"blocking", "fifo=64", "lat=400", "zero-latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("igehy missing %q:\n%s", want, out)
		}
	}
}

func TestAblationOutputs(t *testing.T) {
	out := runOne(t, "replacement", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"LRU", "FIFO", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("replacement missing %q:\n%s", want, out)
		}
	}
	out = runOne(t, "sectored", Config{Scale: 8, Scenes: []string{"goblet"}})
	for _, want := range []string{"full 128B fills", "32B sectors", "MB moved"} {
		if !strings.Contains(out, want) {
			t.Errorf("sectored missing %q:\n%s", want, out)
		}
	}
}

func TestWorstCaseOutput(t *testing.T) {
	out := runOne(t, "worstcase", Config{Scale: 16})
	for _, want := range []string{"0 deg", "90 deg", "nonblocked representation", "blocked representation"} {
		if !strings.Contains(out, want) {
			t.Errorf("worstcase missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownSceneErrors(t *testing.T) {
	e, _ := Lookup("table4.1")
	var sb strings.Builder
	if err := e.Run(context.Background(), Config{Scale: 8, Scenes: []string{"bogus"}}, report.NewText(&sb)); err == nil {
		t.Error("unknown scene accepted")
	}
}

func TestCurveSizes(t *testing.T) {
	sizes := curveSizes()
	if sizes[0] != 1<<10 || sizes[len(sizes)-1] != 256<<10 {
		t.Errorf("curve sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Errorf("curve sizes not doubling: %v", sizes)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != 1 {
		t.Errorf("zero config scale = %d", c.scale())
	}
	if got := c.sceneList("a", "b"); len(got) != 2 {
		t.Errorf("default scene list = %v", got)
	}
	c.Scenes = []string{"x"}
	if got := c.sceneList("a"); len(got) != 1 || got[0] != "x" {
		t.Errorf("override scene list = %v", got)
	}
	if DefaultConfig().Scale != 2 {
		t.Error("DefaultConfig changed")
	}
}

// TestNeedsKeysRunnable checks every declared Needs key is renderable:
// the scenes exist and the declared traversal direction matches what the
// experiment would render privately, so an engine prewarming from Needs
// populates exactly the traces Run will ask for.
func TestNeedsKeysRunnable(t *testing.T) {
	cfg := Config{Scale: 16}
	for _, e := range All() {
		if e.Needs == nil {
			continue
		}
		for _, k := range e.Needs(cfg) {
			if _, err := scenes.ByNameChecked(k.Scene, cfg.scale()); err != nil {
				t.Errorf("%s: Needs names unknown scene %q", e.ID, k.Scene)
			}
		}
	}
}

// TestRunHonorsCancelledContext verifies experiments return promptly with
// the context's error when cancelled before any work happens.
func TestRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"fig5.2", "fig5.7", "replacement", "worstcase", "dram"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		var sb strings.Builder
		if err := e.Run(ctx, Config{Scale: 16, Scenes: []string{"goblet"}}, report.NewText(&sb)); err == nil {
			t.Errorf("%s ran to completion under a cancelled context", id)
		}
	}
}
