package exp

import (
	"context"
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/dram"
	"texcache/internal/prefetch"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// Memory-system experiments: the DRAM burst-efficiency claims of
// Section 3.2, the prefetch FIFO of Section 7.1.1, and the inter-frame
// temporal locality Section 3.1.2 discusses but does not measure.

func init() {
	register(Experiment{
		ID: "dram",
		Title: "DRAM page behavior and bus utilization of the fill stream " +
			"vs line size (Section 3.2)",
		Run: runDRAM,
	})
	register(Experiment{
		ID: "prefetch",
		Title: "Sustained fragment rate vs prefetch FIFO depth " +
			"(Section 7.1.1 dual-rasterizer design)",
		Run: runPrefetch,
	})
	register(Experiment{
		ID: "interframe",
		Title: "Temporal locality between consecutive frames vs cache size " +
			"(Section 3.1.2)",
		Run: runInterframe,
	})
}

// runDRAM replays each scene's 32KB-cache fill stream through the SDRAM
// model for several line sizes. Expected shape: larger lines raise both
// the page-hit rate (denser fills) and the bus utilization (longer
// bursts amortize the activate/precharge setup) — the Section 3.2
// argument for cache-line block transfers.
func runDRAM(ctx context.Context, cfg Config, rep report.Reporter) error {
	rep.BeginTable("dram", []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "line", Head: " %6s", Cell: " %5dB"},
		{Name: "fills", Head: " %10s", Cell: " %10d"},
		{Name: "page-hit", Head: " %10s", Cell: " %9.1f%%"},
		{Name: "bus-util", Head: " %10s", Cell: " %9.1f%%"},
		{Name: "eff MB/s", Head: " %12s", Cell: " %12.0f"},
	})
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		for _, line := range []int{32, 64, 128, 256} {
			if err := ctx.Err(); err != nil {
				return err
			}
			bw := 8
			if line < 256 {
				bw = line / (4 * texture.TexelBytes) // block matched to line
				if bw < 1 {
					bw = 1
				}
			}
			spec := texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: maxInt(2, bw)}
			c := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: line, Ways: 2})
			d, err := dram.NewSim(dram.Default(), line)
			if err != nil {
				return err
			}
			c.SetMissObserver(func(a uint64) { d.Fill(a) })
			if _, err := s.Render(scenes.RenderOptions{
				Layout:    spec,
				Traversal: s.DefaultTraversal(),
				Sink:      c.Sink(),
			}); err != nil {
				return err
			}
			st := d.Stats()
			rep.Row(name, line, st.Fills, 100*st.PageHitRate(), 100*st.BusUtilization(),
				d.EffectiveBandwidth()/1e6)
		}
	}
	rep.Note("")
	rep.Note("%s", "Section 3.2: block transfers amortize DRAM setup over many bytes,")
	rep.Note("%s", "so longer lines extract a larger fraction of the raw 800 MB/s bus")
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runPrefetch sweeps the FIFO depth of the dual-rasterizer prefetch for
// each scene, reporting the sustained fragment rate. Expected shape:
// rate climbs with depth until either the 50M/s compute peak or the
// memory bandwidth bound is reached.
func runPrefetch(ctx context.Context, cfg Config, rep report.Reporter) error {
	depths := []int{0, 2, 8, 32, 128, 512}
	cols := []report.Column{{Name: "scene", Head: "%-8s", Cell: "%-8s"}}
	for _, d := range depths {
		cols = append(cols, report.Column{Name: fmt.Sprintf("fifo=%d", d), Head: "%12s", Cell: "%12.1f"})
	}
	// Header-only annotation column: rows supply no value for it.
	cols = append(cols, report.Column{Name: "    (Mfragments/s at 100MHz)", Head: "%s"})
	rep.BeginTable("prefetch", cols)
	for _, name := range cfg.sceneList(scenes.Names()...) {
		tr, err := traceScene(ctx, cfg, name,
			texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4},
			raster.Traversal{TileW: 8, TileH: 8})
		if err != nil {
			return err
		}
		vals := []any{name}
		for _, d := range depths {
			pcfg := prefetch.Default(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}, d)
			res, err := prefetch.Simulate(pcfg, tr)
			if err != nil {
				return err
			}
			vals = append(vals, res.FragmentsPerSecond(100e6, 8)/1e6)
		}
		rep.Row(vals...)
	}
	rep.Note("")
	rep.Note("%s", "Section 7.1.1: computing texel addresses 'far in advance of the cache")
	rep.Note("%s", "accesses' hides the ~50-cycle fill latency behind the FIFO")
	return nil
}

// runInterframe renders two consecutive frames of each scene's camera
// motion into one cache and compares the second frame's miss rate with
// the first. Expected shape: at cache sizes far below the per-frame
// texture footprint the second frame gains nothing (the paper's stated
// reason for studying single frames); once the cache approaches the
// footprint, frame two becomes nearly free.
func runInterframe(ctx context.Context, cfg Config, rep report.Reporter) error {
	const dt = 1.0 / 30 // one frame of 30Hz motion
	sizes := []int{32 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	cols := []report.Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "footprint", Head: " %10s", Cell: " %10s"},
	}
	for _, sz := range sizes {
		cols = append(cols, report.Column{Name: cache.FormatSize(sz), Head: "%16s", Cell: "%16s"})
	}
	// Header-only annotation column: rows supply no value for it.
	cols = append(cols, report.Column{Name: "    (frame1% -> frame2%)", Head: "%s"})
	rep.BeginTable("interframe", cols)
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		spec := texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
		// Record both frames' traces once. Frame zero routes through the
		// shared provider; the t=dt frame is keyed by time, so it renders
		// privately.
		tr0, err := traceScene(ctx, cfg, name, spec, s.DefaultTraversal())
		if err != nil {
			return err
		}
		tr1 := cache.NewTrace(tr0.Len())
		if _, err := s.Render(scenes.RenderOptions{
			Layout: spec, Traversal: s.DefaultTraversal(), Sink: tr1, Time: dt,
		}); err != nil {
			return err
		}
		sd := cache.NewStackDist(128)
		cache.ReplayStream(tr0, sd)
		footprint := sd.DistinctLines() * 128
		vals := []any{name, cache.FormatSize(footprint)}
		for _, sz := range sizes {
			c := cache.New(cache.Config{SizeBytes: sz, LineBytes: 128, Ways: 2})
			cache.ReplayStream(tr0, c.Sink())
			f1 := c.Stats()
			tr1.Replay(c.Sink())
			f2 := cache.Stats{
				Accesses: c.Stats().Accesses - f1.Accesses,
				Misses:   c.Stats().Misses - f1.Misses,
			}
			vals = append(vals, fmt.Sprintf("%.2f->%.2f", 100*f1.MissRate(), 100*f2.MissRate()))
		}
		rep.Row(vals...)
	}
	rep.Note("")
	rep.Note("%s", "Section 3.1.2: 'we generally do not expect our caches to exploit temporal")
	rep.Note("%s", "locality between consecutive frames because the cache sizes ... are much")
	rep.Note("%s", "smaller than the amount of texture data used by a single frame'")
	return nil
}
