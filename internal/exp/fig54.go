package exp

import (
	"context"
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func init() {
	register(Experiment{
		ID: "fig5.4",
		Title: "Interaction between block size and cache line size " +
			"(32KB fully associative; Town-vertical, Guitar-horizontal)",
		Run: runFig54,
	})
	register(Experiment{
		ID: "fig5.5",
		Title: "Effect of matched line/block size on miss rate, all scenes " +
			"(32KB fully associative)",
		Run: runFig55,
	})
	register(Experiment{
		ID: "fig5.6",
		Title: "Blocked representation across cache sizes (Guitar, fully " +
			"associative, line = block)",
		Run: runFig56,
	})
}

// fig54Lines is the line-size sweep of Figure 5.4 in bytes.
var fig54Lines = []int{16, 32, 64, 128, 256}

// fig54Blocks are the block dimensions swept (1x1 = nonblocked ordering).
var fig54Blocks = []int{1, 2, 4, 8, 16}

// runFig54 reproduces Figure 5.4: for a 32KB fully-associative cache,
// miss rate versus line size for a range of block sizes. The paper's
// conclusion: the best block size matches the cache line size
// (a 4x4x4B = 64B block for a 64B line, 8x8 for 128B), and growing the
// line without blocking makes things worse.
func runFig54(ctx context.Context, cfg Config, rep report.Reporter) error {
	const cacheSize = 32 << 10
	for _, sc := range []struct {
		name string
		dir  raster.Order
	}{{"town", raster.ColumnMajor}, {"guitar", raster.RowMajor}} {
		if !containsScene(cfg, sc.name) {
			continue
		}
		rep.Note("--- %s (%s rasterization), 32KB fully associative ---", sc.name, sc.dir)
		cols := []report.Column{{Name: "block \\ line", Head: "%-18s", Cell: "%-18s"}}
		for _, l := range fig54Lines {
			cols = append(cols, report.Column{Name: cache.FormatSize(l), Head: "%9s", Cell: "%8.2f%%"})
		}
		rep.BeginTable("line-sweep-"+sc.name, cols)
		for _, bw := range fig54Blocks {
			spec := texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: bw}
			if bw == 1 {
				spec = texture.LayoutSpec{Kind: texture.NonBlockedKind}
			}
			tr, err := traceScene(ctx, cfg, sc.name, spec, raster.Traversal{Order: sc.dir})
			if err != nil {
				return err
			}
			vals := []any{fmt.Sprintf("%dx%d (%s)", bw, bw, cache.FormatSize(lineForBlock(bw)))}
			for _, line := range fig54Lines {
				sd := cache.NewStackDist(line)
				cache.ReplayStream(tr, sd)
				vals = append(vals, 100*sd.MissRateAt(cacheSize))
			}
			rep.Row(vals...)
		}
		rep.Note("")
	}
	rep.Note("%s", "paper: lowest miss rate on each line-size column occurs where block bytes = line bytes")
	return nil
}

// runFig55 reproduces Figure 5.5: miss rate for all four scenes with the
// block size matched to the line size, on a 32KB fully-associative cache.
// Expected shape: miss rates fall substantially from 32B to 128B lines
// (flight 2.8%->0.87%, goblet 1.5%->0.41%, guitar 1.2%->0.36%,
// town 0.8%->0.21%).
func runFig55(ctx context.Context, cfg Config, rep report.Reporter) error {
	const cacheSize = 32 << 10
	blocks := []int{2, 4, 8, 16} // 16B..1KB lines
	cols := []report.Column{{Name: "scene", Head: "%-10s", Cell: "%-10s"}}
	for _, bw := range blocks {
		cols = append(cols, report.Column{
			Name: fmt.Sprintf("%dx%d/%s", bw, bw, cache.FormatSize(lineForBlock(bw))),
			Head: "%12s", Cell: "%11.2f%%"})
	}
	rep.BeginTable("matched-line-block", cols)
	for _, name := range cfg.sceneList(scenes.Names()...) {
		s, err := buildScene(cfg, name)
		if err != nil {
			return err
		}
		vals := []any{name}
		for _, bw := range blocks {
			tr, err := traceScene(ctx, cfg, name,
				texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: bw}, s.DefaultTraversal())
			if err != nil {
				return err
			}
			sd := cache.NewStackDist(lineForBlock(bw))
			cache.ReplayStream(tr, sd)
			vals = append(vals, 100*sd.MissRateAt(cacheSize))
		}
		rep.Row(vals...)
	}
	rep.Note("")
	rep.Note("%s", "paper at 32B: flight=2.8 goblet=1.5 guitar=1.2 town=0.8 (%);")
	rep.Note("%s", "at 128B: flight=0.87 goblet=0.41 guitar=0.36 town=0.21 (%)")
	return nil
}

// runFig56 reproduces Figure 5.6: the blocked representation with larger
// matched line/block sizes reduces capacity misses even for caches
// smaller than the working set (Guitar scene).
func runFig56(ctx context.Context, cfg Config, rep report.Reporter) error {
	name := "guitar"
	if len(cfg.Scenes) > 0 {
		name = cfg.Scenes[0]
	}
	s, err := buildScene(cfg, name)
	if err != nil {
		return err
	}
	beginCurve(rep, "blocked-sizes", name+" line/block")
	for _, bw := range []int{2, 4, 8, 16} {
		tr, err := traceScene(ctx, cfg, name,
			texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: bw}, s.DefaultTraversal())
		if err != nil {
			return err
		}
		sd := cache.NewStackDist(lineForBlock(bw))
		cache.ReplayStream(tr, sd)
		curveRow(rep, fmt.Sprintf("%s/%dx%d", cache.FormatSize(lineForBlock(bw)), bw, bw),
			sd.Curve(curveSizes()))
	}
	rep.Note("")
	rep.Note("%s", "paper: larger matched line/block pairs lower the whole curve, including")
	rep.Note("%s", "cache sizes below the working set (fewer capacity misses)")
	return nil
}

func containsScene(cfg Config, name string) bool {
	if len(cfg.Scenes) == 0 {
		return true
	}
	for _, s := range cfg.Scenes {
		if s == name {
			return true
		}
	}
	return false
}
