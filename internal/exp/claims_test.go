package exp

import (
	"testing"

	"texcache/internal/banks"
	"texcache/internal/cache"
	"texcache/internal/perf"
	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// These tests pin the paper's qualitative claims — the actual
// reproduction targets — as assertions at scale 4 (320x256 / 200x200
// screens), where each holds with margin. They are the regression net
// for the whole simulator: a change that flips any of them has broken
// the physics of the reproduction, not just a number.

const claimScale = 4

func claimTrace(t *testing.T, scene string, spec texture.LayoutSpec, trav raster.Traversal) *cache.Trace {
	t.Helper()
	s, err := scenes.ByNameChecked(scene, claimScale)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := s.Trace(spec, trav)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func missRateFA(tr *cache.Trace, sizeBytes, lineBytes int) float64 {
	sd := cache.NewStackDist(lineBytes)
	tr.Replay(sd)
	return sd.MissRateAt(sizeBytes)
}

func missRate(tr *cache.Trace, cfg cache.Config) float64 {
	c := cache.New(cfg)
	tr.Replay(c.Sink())
	return c.Stats().MissRate()
}

// Claim (Fig 5.2): vertical rasterization of the Town scene's upright
// textures inflates small-cache miss rates over horizontal.
func TestClaimTownVerticalPathology(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := texture.LayoutSpec{Kind: texture.NonBlockedKind}
	h := claimTrace(t, "town", spec, raster.Traversal{Order: raster.RowMajor})
	v := claimTrace(t, "town", spec, raster.Traversal{Order: raster.ColumnMajor})
	const size = 512 // scale-4 equivalent of the paper's small caches
	mh, mv := missRateFA(h, size, 32), missRateFA(v, size, 32)
	if mv < 1.5*mh {
		t.Errorf("vertical %v not >> horizontal %v at %dB", mv, mh, size)
	}
}

// Claim (Fig 5.4): growing the line without blocking hurts; blocking
// restores the benefit.
func TestClaimLongLinesNeedBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	trav := raster.Traversal{Order: raster.RowMajor}
	nb := claimTrace(t, "guitar", texture.LayoutSpec{Kind: texture.NonBlockedKind}, trav)
	bl := claimTrace(t, "guitar", texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}, trav)
	const size, line = 8 << 10, 256
	mn, mb := missRateFA(nb, size, line), missRateFA(bl, size, line)
	if mb >= mn {
		t.Errorf("blocked %v not below nonblocked %v at %dB lines", mb, mn, line)
	}
}

// Claim (Fig 5.7a): for the Goblet scene, two-way associativity
// eliminates the Mip-level conflicts — direct mapped is much worse,
// 2-way is close to fully associative.
func TestClaimTwoWaySufficesForGoblet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tr := claimTrace(t, "goblet", texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		raster.Traversal{Order: raster.RowMajor})
	const size, line = 2 << 10, 128
	dm := missRate(tr, cache.Config{SizeBytes: size, LineBytes: line, Ways: 1})
	w2 := missRate(tr, cache.Config{SizeBytes: size, LineBytes: line, Ways: 2})
	fa := missRateFA(tr, size, line)
	if dm < 1.5*w2 {
		t.Errorf("direct mapped %v not >> 2-way %v", dm, w2)
	}
	if w2 > fa+0.01 {
		t.Errorf("2-way %v not within 1%% of fully associative %v", w2, fa)
	}
}

// Claim (Section 5.3.3): without blocking, Goblet needs 8-way to match
// fully associative at small sizes; 2-way is far off.
func TestClaimNonblockedNeedsEightWay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tr := claimTrace(t, "goblet", texture.LayoutSpec{Kind: texture.NonBlockedKind},
		raster.Traversal{Order: raster.RowMajor})
	const size, line = 1 << 10, 128
	w2 := missRate(tr, cache.Config{SizeBytes: size, LineBytes: line, Ways: 2})
	w8 := missRate(tr, cache.Config{SizeBytes: size, LineBytes: line, Ways: 8})
	fa := missRateFA(tr, size, line)
	if w8 > fa+0.02 {
		t.Errorf("8-way %v not near fully associative %v", w8, fa)
	}
	if w2 < w8+0.01 {
		t.Errorf("2-way %v should be clearly worse than 8-way %v", w2, w8)
	}
}

// Claim (Fig 6.2): medium screen tiles shrink the working set; giant
// tiles converge back to untiled.
func TestClaimTilingShrinksWorkingSet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
	untiled := claimTrace(t, "guitar", spec, raster.Traversal{Order: raster.RowMajor})
	tiled := claimTrace(t, "guitar", spec, raster.Traversal{Order: raster.RowMajor, TileW: 8, TileH: 8})
	giant := claimTrace(t, "guitar", spec, raster.Traversal{Order: raster.RowMajor, TileW: 256, TileH: 256})
	const size, line = 512, 128
	mu, mt, mg := missRateFA(untiled, size, line), missRateFA(tiled, size, line), missRateFA(giant, size, line)
	if mt >= mu {
		t.Errorf("tiled %v not below untiled %v", mt, mu)
	}
	if mg < 0.8*mu {
		t.Errorf("giant tiles %v should be near untiled %v", mg, mu)
	}
}

// Claim (Table 7.1 / abstract): a 32KB cache cuts the memory bandwidth
// requirement at least three-fold versus the uncached 1.6 GB/s for
// every scene.
func TestClaimBandwidthReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	model := perf.Default()
	atLeast3x := 0
	for _, name := range scenes.Names() {
		tr := claimTrace(t, name,
			texture.LayoutSpec{Kind: texture.PaddedBlockedKind, BlockW: 8, PadBlocks: 4},
			raster.Traversal{TileW: 8, TileH: 8})
		// The paper's configuration: a 32KB 2-way cache with 128B lines.
		mr := missRate(tr, cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2})
		red := model.BandwidthReduction(mr, 128)
		// Our synthetic Flight touches its large terrain textures with
		// slightly less reuse than the SGI original, landing at ~2.8x;
		// every scene must clear 2.5x and most must clear the paper's 3x.
		if red < 2.5 {
			t.Errorf("%s: bandwidth reduction %.1fx below 2.5x", name, red)
		}
		if red >= 3 {
			atLeast3x++
		}
	}
	if atLeast3x < 3 {
		t.Errorf("only %d/4 scenes reached the paper's 3x reduction", atLeast3x)
	}
}

// Claim (Section 7.1.2): morton interleaving reads every bilinear
// footprint in one cycle.
func TestClaimMortonConflictFree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := scenes.ByNameChecked("goblet", claimScale)
	if err != nil {
		t.Fatal(err)
	}
	a := banks.New()
	if _, err := s.Render(scenes.RenderOptions{
		Layout:    texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		Traversal: s.DefaultTraversal(),
		OnAccess:  a.Record,
	}); err != nil {
		t.Fatal(err)
	}
	if cyc := a.CyclesPerQuad(banks.Morton); cyc > 1.01 {
		t.Errorf("morton cycles/quad = %v, want ~1.0", cyc)
	}
	if a.CyclesPerQuad(banks.Linear) < 1.5 {
		t.Errorf("linear interleave unexpectedly conflict-free: %v", a.CyclesPerQuad(banks.Linear))
	}
}

// Claim (Section 5.1): the Williams representation triples the access
// count and collides catastrophically in low-associativity caches.
func TestClaimWilliamsPathology(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	trav := raster.Traversal{Order: raster.RowMajor}
	base := claimTrace(t, "goblet", texture.LayoutSpec{Kind: texture.NonBlockedKind}, trav)
	will := claimTrace(t, "goblet", texture.LayoutSpec{Kind: texture.WilliamsKind}, trav)
	if will.Len() != 3*base.Len() {
		t.Errorf("williams trace %d, want 3x %d", will.Len(), base.Len())
	}
	cfg := cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2}
	mw, mb := missRate(will, cfg), missRate(base, cfg)
	if mw < 5*mb {
		t.Errorf("williams 2-way %v not catastrophically above nonblocked %v", mw, mb)
	}
}
