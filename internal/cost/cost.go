// Package cost reproduces the Table 2.1 accounting of the computational
// costs of a fragment generator. The per-phase operation counts are the
// paper's constants; Counters scales them by the triangles and fragments
// actually processed in a frame, and by the memory-representation-
// dependent texel addressing cost of Section 5.
package cost

import (
	"fmt"
	"io"

	"texcache/internal/texture"
)

// Phase identifies one row of Table 2.1.
type Phase int

const (
	// PhaseTriangleSetup is the per-triangle setup row.
	PhaseTriangleSetup Phase = iota
	// PhaseRasterShade is per-fragment rasterization and shading.
	PhaseRasterShade
	// PhaseLOD is per-fragment level-of-detail computation.
	PhaseLOD
	// PhaseTexelCoord is the texel-coordinate computation nearest (u,v,d).
	PhaseTexelCoord
	// PhaseTexelAddr is the representation-dependent address calculation.
	PhaseTexelAddr
	// PhaseTrilinear is trilinear interpolation (8 texture accesses).
	PhaseTrilinear
	// PhaseBilinear is bilinear interpolation (4 texture accesses).
	PhaseBilinear
	// PhaseModulate is modulation with the fragment color.
	PhaseModulate
	numPhases
)

// String names the phase as Table 2.1 does.
func (p Phase) String() string {
	switch p {
	case PhaseTriangleSetup:
		return "Per Triangle Setup"
	case PhaseRasterShade:
		return "Per Fragment Rasterization and Shading"
	case PhaseLOD:
		return "Level-of-detail, d"
	case PhaseTexelCoord:
		return "Texel coordinates nearest (u,v,d)"
	case PhaseTexelAddr:
		return "Texel address calculation"
	case PhaseTrilinear:
		return "Trilinear Interpolation"
	case PhaseBilinear:
		return "Bilinear Interpolation"
	case PhaseModulate:
		return "Modulation with fragment color"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Ops is one row's operation counts per unit of work (per triangle for
// setup, per fragment otherwise).
type Ops struct {
	Adds       int // add/subtract/shift class
	Multiplies int
	Divides    int
	Accesses   int // texture memory accesses
}

// unitCosts transcribes Table 2.1 (Section 2): the unoptimized per-unit
// computational cost of each fragment-generator phase.
var unitCosts = [numPhases]Ops{
	PhaseTriangleSetup: {Adds: 89, Multiplies: 64, Divides: 1},
	PhaseRasterShade:   {Adds: 11, Multiplies: 1},
	PhaseLOD:           {Adds: 9, Multiplies: 9},
	PhaseTexelCoord:    {Adds: 5 + 14, Multiplies: 5},
	PhaseTexelAddr:     {}, // representation dependent; filled per access
	PhaseTrilinear:     {Adds: 56, Multiplies: 28, Accesses: 8},
	PhaseBilinear:      {Adds: 24, Multiplies: 12, Accesses: 4},
	PhaseModulate:      {Adds: 8, Multiplies: 4},
}

// UnitCost returns the Table 2.1 per-unit cost of a phase.
func UnitCost(p Phase) Ops { return unitCosts[p] }

// Counters accumulates operation totals for a frame.
type Counters struct {
	Triangles         uint64
	Fragments         uint64
	TexturedFragments uint64
	Bilinear          uint64
	Trilinear         uint64

	totals [numPhases]struct {
		Adds, Multiplies, Divides, Accesses uint64
	}
}

// NewCounters returns zeroed counters.
func NewCounters() *Counters { return &Counters{} }

// TriangleSetup charges one triangle's setup cost.
func (c *Counters) TriangleSetup() {
	c.Triangles++
	c.charge(PhaseTriangleSetup, unitCosts[PhaseTriangleSetup], 1)
}

// FragmentShade charges the rasterization/shading cost of one fragment.
func (c *Counters) FragmentShade() {
	c.Fragments++
	c.charge(PhaseRasterShade, unitCosts[PhaseRasterShade], 1)
}

// FragmentTexture charges the texturing cost of one fragment: LOD, texel
// coordinates, the representation-dependent addressing (8 texel addresses
// for trilinear, 4 for bilinear), filtering, and modulation.
func (c *Counters) FragmentTexture(bilinear bool, addr texture.AddrCost) {
	c.TexturedFragments++
	c.charge(PhaseLOD, unitCosts[PhaseLOD], 1)
	c.charge(PhaseTexelCoord, unitCosts[PhaseTexelCoord], 1)

	filter := PhaseTrilinear
	n := uint64(8)
	if bilinear {
		filter = PhaseBilinear
		n = 4
		c.Bilinear++
	} else {
		c.Trilinear++
	}
	c.charge(PhaseTexelAddr, Ops{Adds: addr.Adds + addr.Shifts + addr.Ands}, n)
	c.charge(filter, unitCosts[filter], 1)
	c.charge(PhaseModulate, unitCosts[PhaseModulate], 1)
}

func (c *Counters) charge(p Phase, ops Ops, times uint64) {
	t := &c.totals[p]
	t.Adds += uint64(ops.Adds) * times
	t.Multiplies += uint64(ops.Multiplies) * times
	t.Divides += uint64(ops.Divides) * times
	t.Accesses += uint64(ops.Accesses) * times
}

// Total returns the accumulated operations for one phase.
func (c *Counters) Total(p Phase) (adds, multiplies, divides, accesses uint64) {
	t := c.totals[p]
	return t.Adds, t.Multiplies, t.Divides, t.Accesses
}

// TotalAccesses returns the texture memory accesses across all phases.
func (c *Counters) TotalAccesses() uint64 {
	var n uint64
	for p := Phase(0); p < numPhases; p++ {
		n += c.totals[p].Accesses
	}
	return n
}

// WriteTable renders the Table 2.1 style summary: per-unit costs plus the
// frame's accumulated totals.
func (c *Counters) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-42s %12s %12s %8s %10s\n",
		"Phase", "Add/Sub/Shift", "Multiply", "Divide", "TexAccess"); err != nil {
		return err
	}
	for p := Phase(0); p < numPhases; p++ {
		u := unitCosts[p]
		t := c.totals[p]
		unit := fmt.Sprintf("%d/%d/%d/%d", u.Adds, u.Multiplies, u.Divides, u.Accesses)
		if p == PhaseTexelAddr {
			unit = "per-layout"
		}
		if _, err := fmt.Fprintf(w, "%-42s %12d %12d %8d %10d   (unit %s)\n",
			p, t.Adds, t.Multiplies, t.Divides, t.Accesses, unit); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "triangles=%d fragments=%d textured=%d (trilinear=%d bilinear=%d)\n",
		c.Triangles, c.Fragments, c.TexturedFragments, c.Trilinear, c.Bilinear)
	return err
}
