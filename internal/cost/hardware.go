// Hardware cost of a cache organization, the second axis of the
// design-space search: where cost.go accounts the paper's Table 2.1
// computational cost of generating fragments, this file accounts the
// silicon a cache configuration itself would spend. The model is
// deliberately simple — storage bits plus comparator bits, the classic
// register-bit-equivalent (RBE) style of cache cost models — but it is
// deterministic and strictly monotone in both capacity and
// associativity, which is what the Pareto pruner in internal/shard
// relies on: a bigger or more associative cache is always costlier, so
// a cheap configuration that already sits at the compulsory miss floor
// provably dominates every costlier point at the same line size.
package cost

import (
	"math/bits"

	"texcache/internal/cache"
)

// addressBits is the simulated texture address width: layouts emit
// byte addresses into a 32-bit simulated memory.
const addressBits = 32

// HardwareCost breaks the silicon cost of one cache configuration into
// its storage and logic components, all in bit equivalents.
type HardwareCost struct {
	// DataBits is the data array: 8 bits per byte of capacity.
	DataBits int64
	// TagBits is the tag array: per line, the address tag plus a valid
	// bit.
	TagBits int64
	// StateBits is the replacement state: per-way LRU rank bits, or a
	// per-set pointer/counter for FIFO and random replacement.
	StateBits int64
	// CompareBits is the tag-match logic: one comparator per way, one
	// bit equivalent per tag bit.
	CompareBits int64
}

// Total is the configuration's scalar cost, the y-axis the Pareto
// frontier trades against miss rate.
func (h HardwareCost) Total() int64 {
	return h.DataBits + h.TagBits + h.StateBits + h.CompareBits
}

// log2 returns floor(log2(n)) for power-of-two n (the only shapes a
// validated cache.Config produces).
func log2(n int) int { return bits.Len(uint(n)) - 1 }

// ceilLog2 returns ceil(log2(n)), the bits needed to count n states.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// ConfigCost returns the hardware cost of a validated cache
// configuration. Fully associative organizations (Ways 0) are costed as
// a single set of NumLines ways — the honest price of their comparator
// fan-out. The model is monotone: at a fixed line size, growing either
// SizeBytes or Ways strictly increases Total.
func ConfigCost(c cache.Config) HardwareCost {
	lines := c.NumLines()
	sets := c.NumSets()
	ways := c.Ways
	if ways == 0 {
		ways = lines
	}
	tag := addressBits - log2(sets) - log2(c.LineBytes)

	var state int64
	switch c.Policy {
	case cache.LRU:
		// A rank per way, per set.
		state = int64(sets) * int64(ways) * int64(ceilLog2(ways))
	default:
		// FIFO keeps a fill pointer per set; random a counter of the
		// same width.
		state = int64(sets) * int64(ceilLog2(ways))
	}
	return HardwareCost{
		DataBits:    int64(c.SizeBytes) * 8,
		TagBits:     int64(lines) * int64(tag+1),
		StateBits:   state,
		CompareBits: int64(ways) * int64(tag),
	}
}
