package cost

import (
	"strings"
	"testing"

	"texcache/internal/texture"
)

func TestUnitCostsMatchPaper(t *testing.T) {
	// Spot checks against Table 2.1.
	if u := UnitCost(PhaseTriangleSetup); u.Adds != 89 || u.Multiplies != 64 || u.Divides != 1 {
		t.Errorf("triangle setup = %+v", u)
	}
	if u := UnitCost(PhaseTrilinear); u.Adds != 56 || u.Multiplies != 28 || u.Accesses != 8 {
		t.Errorf("trilinear = %+v", u)
	}
	if u := UnitCost(PhaseBilinear); u.Adds != 24 || u.Multiplies != 12 || u.Accesses != 4 {
		t.Errorf("bilinear = %+v", u)
	}
	if u := UnitCost(PhaseModulate); u.Adds != 8 || u.Multiplies != 4 {
		t.Errorf("modulate = %+v", u)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := NewCounters()
	c.TriangleSetup()
	c.TriangleSetup()
	adds, muls, divs, _ := c.Total(PhaseTriangleSetup)
	if adds != 178 || muls != 128 || divs != 2 {
		t.Errorf("setup totals = %d/%d/%d", adds, muls, divs)
	}
	if c.Triangles != 2 {
		t.Errorf("triangles = %d", c.Triangles)
	}
}

func TestFragmentTextureTrilinear(t *testing.T) {
	c := NewCounters()
	addr := texture.AddrCost{Adds: 4, Shifts: 1}
	c.FragmentTexture(false, addr)
	if c.Trilinear != 1 || c.Bilinear != 0 {
		t.Error("filter counters wrong")
	}
	_, _, _, acc := c.Total(PhaseTrilinear)
	if acc != 8 {
		t.Errorf("trilinear accesses = %d, want 8", acc)
	}
	// Addressing charged 8 times (once per texel).
	adds, _, _, _ := c.Total(PhaseTexelAddr)
	if adds != 8*5 {
		t.Errorf("addressing adds = %d, want 40", adds)
	}
	if c.TotalAccesses() != 8 {
		t.Errorf("TotalAccesses = %d", c.TotalAccesses())
	}
}

func TestFragmentTextureBilinear(t *testing.T) {
	c := NewCounters()
	c.FragmentTexture(true, texture.AddrCost{Adds: 2, Shifts: 1})
	if c.Bilinear != 1 {
		t.Error("bilinear counter wrong")
	}
	if c.TotalAccesses() != 4 {
		t.Errorf("TotalAccesses = %d, want 4", c.TotalAccesses())
	}
	adds, _, _, _ := c.Total(PhaseTexelAddr)
	if adds != 4*3 {
		t.Errorf("addressing adds = %d, want 12", adds)
	}
}

func TestWriteTable(t *testing.T) {
	c := NewCounters()
	c.TriangleSetup()
	c.FragmentShade()
	c.FragmentTexture(false, texture.AddrCost{Adds: 2, Shifts: 1})
	var sb strings.Builder
	if err := c.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Per Triangle Setup", "Trilinear Interpolation", "triangles=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseLOD.String() != "Level-of-detail, d" {
		t.Errorf("got %q", PhaseLOD.String())
	}
	if !strings.Contains(Phase(99).String(), "99") {
		t.Error("unknown phase string")
	}
}
