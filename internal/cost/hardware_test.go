package cost

import (
	"testing"

	"texcache/internal/cache"
)

// TestConfigCostPinned pins the cost model on the paper's design point
// and a few neighbors: the numbers are arithmetic, so a change here is a
// deliberate model change, not drift.
func TestConfigCostPinned(t *testing.T) {
	tests := []struct {
		cfg  cache.Config
		want HardwareCost
	}{
		{
			// The paper point: 32KB 2-way 128B lines. 256 lines, 128
			// sets, tag = 32-7-7 = 18 bits.
			cfg:  cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2},
			want: HardwareCost{DataBits: 262144, TagBits: 256 * 19, StateBits: 128 * 2 * 1, CompareBits: 2 * 18},
		},
		{
			// Direct-mapped has no replacement state and one comparator.
			// 16KB 1-way 64B: 256 lines = 256 sets, tag = 32-8-6 = 18.
			cfg:  cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 1},
			want: HardwareCost{DataBits: 131072, TagBits: 256 * 19, StateBits: 0, CompareBits: 18},
		},
		{
			// Fully associative pays a comparator per line. 2KB FA 128B:
			// 16 lines, 1 set, tag = 32-0-7 = 25.
			cfg:  cache.Config{SizeBytes: 2 << 10, LineBytes: 128, Ways: 0},
			want: HardwareCost{DataBits: 16384, TagBits: 16 * 26, StateBits: 16 * 4, CompareBits: 16 * 25},
		},
		{
			// FIFO keeps a per-set pointer instead of per-way ranks.
			// 8KB 4-way 64B FIFO: 128 lines, 32 sets, tag = 32-5-6 = 21.
			cfg:  cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, Policy: cache.FIFO},
			want: HardwareCost{DataBits: 65536, TagBits: 128 * 22, StateBits: 32 * 2, CompareBits: 4 * 21},
		},
	}
	for _, tt := range tests {
		if err := tt.cfg.Validate(); err != nil {
			t.Fatalf("%v: %v", tt.cfg, err)
		}
		got := ConfigCost(tt.cfg)
		if got != tt.want {
			t.Errorf("ConfigCost(%v) = %+v, want %+v", tt.cfg, got, tt.want)
		}
		if got.Total() != got.DataBits+got.TagBits+got.StateBits+got.CompareBits {
			t.Errorf("Total() inconsistent for %v", tt.cfg)
		}
	}
}

// TestConfigCostMonotone checks the property the Pareto pruner depends
// on: at a fixed line size, cost strictly increases with capacity and
// with associativity.
func TestConfigCostMonotone(t *testing.T) {
	for _, line := range []int{64, 128} {
		for _, ways := range []int{1, 2, 4} {
			prev := int64(-1)
			for size := 4 << 10; size <= 256<<10; size <<= 1 {
				c := cache.Config{SizeBytes: size, LineBytes: line, Ways: ways}
				if err := c.Validate(); err != nil {
					t.Fatalf("%v: %v", c, err)
				}
				total := ConfigCost(c).Total()
				if total <= prev {
					t.Errorf("cost not monotone in size: %v total %d <= %d", c, total, prev)
				}
				prev = total
			}
		}
		// More ways at fixed geometry.
		prev := int64(-1)
		for _, ways := range []int{1, 2, 4, 8} {
			c := cache.Config{SizeBytes: 32 << 10, LineBytes: line, Ways: ways}
			total := ConfigCost(c).Total()
			if total <= prev {
				t.Errorf("cost not monotone in ways: %v total %d <= %d", c, total, prev)
			}
			prev = total
		}
	}
	// FA is the costliest organization at its size and line.
	sa := ConfigCost(cache.Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 8}).Total()
	fa := ConfigCost(cache.Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 0}).Total()
	if fa <= sa {
		t.Errorf("fully associative (%d) should cost more than 8-way (%d)", fa, sa)
	}
}
