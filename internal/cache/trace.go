package cache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"texcache/internal/obs"
)

// AddrStream is a read-only texel address stream consumable in ordered
// blocks. *Trace is the fully materialized implementation; compact
// delta-encoded traces (internal/trace) stream their blocks out of the
// encoded form without ever materializing the whole []uint64. The
// stream-based replay entry points (ReplayStream, SimulateConfigs*Stream)
// accept either.
type AddrStream interface {
	// Len returns the number of addresses in the stream.
	Len() int
	// Cursor returns a fresh iterator positioned at the start of the
	// stream. Cursors are independent: each walks the whole stream, so
	// concurrent consumers each take their own.
	Cursor() Cursor
}

// Cursor iterates an address stream block by block, in order.
type Cursor interface {
	// Next returns the next block of addresses, or nil at end of
	// stream. The returned slice is only valid until the following
	// Next call: decoding cursors reuse their block buffer.
	Next() []uint64
}

// BulkSink is a Sink that can absorb a whole run of addresses at once.
// The tile-parallel merge uses it to move per-tile spans into the frame
// sink without a per-address interface call.
type BulkSink interface {
	Sink
	// AccessBulk appends every address of the run, exactly as len(addrs)
	// Access calls would.
	AccessBulk(addrs []uint64)
}

// batchSink is the replay loops' fast-path contract: a sink that can
// consume a whole ordered block per call, bit-identically to per-address
// Access. Cache (via Sink), StackDist and the grouped simulator satisfy
// it, so every replay entry point pays one interface call per block
// instead of one per address.
type batchSink interface {
	AccessBatch(addrs []uint64)
}

// Trace records a texel address stream in memory so one rendering pass can
// be replayed through many cache configurations — the address stream
// depends on the scene, texture layout and rasterization order but never
// on the cache parameters, so re-rendering per configuration would be
// wasted work.
type Trace struct {
	Addrs []uint64
}

// NewTrace returns a Trace with capacity for sizeHint addresses.
func NewTrace(sizeHint int) *Trace {
	return &Trace{Addrs: make([]uint64, 0, sizeHint)}
}

// traceGrowMin is the smallest capacity Access grows an exhausted trace
// to: one growth step covers the short traces tests record, while real
// renders immediately enter the doubling regime.
const traceGrowMin = 1024

// Access appends one address; Trace satisfies Sink.
//
// Growth doubles explicitly rather than relying on append: append's
// growth factor decays to ~1.25x for large slices, and a full-resolution
// frame records hundreds of millions of addresses, where doubling cuts
// both the number of reallocations and the total bytes copied.
func (t *Trace) Access(addr uint64) {
	if len(t.Addrs) == cap(t.Addrs) {
		t.Grow(1)
	}
	t.Addrs = append(t.Addrs, addr)
}

// Grow ensures capacity for at least n more addresses, at minimum
// doubling the current capacity so repeated growth stays amortized O(1)
// with a bounded copy volume. Bulk producers (the tile merge, trace
// deserialization) call it once with their known size.
func (t *Trace) Grow(n int) {
	need := len(t.Addrs) + n
	if need <= cap(t.Addrs) {
		return
	}
	newCap := 2 * cap(t.Addrs)
	if newCap < traceGrowMin {
		newCap = traceGrowMin
	}
	if newCap < need {
		newCap = need
	}
	a := make([]uint64, len(t.Addrs), newCap)
	copy(a, t.Addrs)
	t.Addrs = a
}

// AccessBulk appends a whole run of addresses; Trace satisfies BulkSink.
// Grow doubles, keeping large-frame merges off append's decaying growth
// factor.
func (t *Trace) AccessBulk(addrs []uint64) {
	t.Grow(len(addrs))
	t.Addrs = append(t.Addrs, addrs...)
}

// Len returns the number of recorded accesses.
func (t *Trace) Len() int { return len(t.Addrs) }

// Cursor returns an iterator over the materialized addresses; the blocks
// are views into Addrs, so iteration copies nothing.
func (t *Trace) Cursor() Cursor { return &traceCursor{addrs: t.Addrs} }

// traceCursor hands out replayChunkLen-sized views of a trace.
type traceCursor struct {
	addrs []uint64
	pos   int
}

func (c *traceCursor) Next() []uint64 {
	if c.pos >= len(c.addrs) {
		return nil
	}
	hi := min(c.pos+replayChunkLen, len(c.addrs))
	b := c.addrs[c.pos:hi]
	c.pos = hi
	return b
}

// Replay feeds the whole trace to each sink in turn. *StackDist is a Sink;
// use Cache.Sink to replay into a cache simulator.
//
// Metrics are flushed in bulk after the pass (replay.addresses,
// replay.pass): the per-address loops carry no instrumentation, and with
// no registry attached the whole accounting reduces to one nil check.
func (t *Trace) Replay(sinks ...Sink) {
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	for _, s := range sinks {
		if bs, ok := s.(batchSink); ok {
			// Batch dispatch: the whole trace in one call keeps the
			// sink's hot loop free of interface-call overhead.
			bs.AccessBatch(t.Addrs)
			continue
		}
		for _, a := range t.Addrs {
			s.Access(a)
		}
	}
	if reg != nil {
		flushReplay(reg, start, uint64(t.Len())*uint64(len(sinks)), "pass")
	}
}

// flushReplay records one finished replay pass: the address volume (the
// numerator of addresses/sec) and the wall time under the given timer.
func flushReplay(reg *obs.Registry, start time.Time, addrs uint64, timer string) {
	rep := reg.Sub("replay")
	rep.Counter("addresses").Add(addrs)
	rep.Timer(timer).ObserveSince(start)
}

// SimulateConfigs replays the trace through a fresh classifying cache per
// configuration and returns the resulting statistics, index-aligned with
// cfgs.
func (t *Trace) SimulateConfigs(cfgs []Config) []Stats {
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	out := make([]Stats, len(cfgs))
	for i, cfg := range cfgs {
		c := NewClassifying(cfg)
		c.AccessBatch(t.Addrs)
		out[i] = c.Stats()
	}
	if reg != nil {
		flushReplay(reg, start, uint64(t.Len())*uint64(len(cfgs)), "pass")
	}
	return out
}

// traceMagic begins the on-disk trace format: "TXTR" then version 1.
var traceMagic = [8]byte{'T', 'X', 'T', 'R', 1, 0, 0, 0}

// WriteTo serializes the trace in a simple little-endian binary format
// (magic, count, delta-encoded varint addresses). It implements
// io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	wr := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := wr(traceMagic[:]); err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Addrs)))
	if err := wr(hdr[:]); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	var prev uint64
	for _, a := range t.Addrs {
		// Zig-zag delta encoding: texture accesses are local, so deltas
		// are short and the trace compresses several-fold.
		delta := int64(a) - int64(prev)
		prev = a
		k := binary.PutUvarint(buf[:], zigzag(delta))
		if err := wr(buf[:k]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("cache: reading trace magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("cache: bad trace magic %q", magic[:4])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("cache: reading trace length: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxTraceLen = 1 << 32
	if count > maxTraceLen {
		return nil, fmt.Errorf("cache: trace length %d exceeds limit", count)
	}
	// Cap the preallocation: the header is untrusted, and a hostile
	// count must not allocate gigabytes before the body fails to parse.
	hint := int(count)
	if hint > 1<<20 {
		hint = 1 << 20
	}
	t := NewTrace(hint)
	var prev int64
	for i := uint64(0); i < count; i++ {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cache: reading trace entry %d: %w", i, err)
		}
		prev += unzigzag(u)
		t.Access(uint64(prev))
	}
	return t, nil
}

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
