package cache

import (
	"context"
	"sync"
	"time"

	"texcache/internal/obs"
)

// Stream-based replay: every replay entry point in this file consumes an
// AddrStream instead of a materialized *Trace, so a compact delta-encoded
// trace (internal/trace) replays block by block straight out of its
// encoded form. *Trace arguments take the existing zero-copy paths — the
// statistics any sink accumulates are bit-identical regardless of the
// stream's representation, because every cursor yields the exact
// recorded address order.

// ReplayStream feeds the whole stream to each sink in turn, as Replay
// does for a materialized trace (to which it defers when s is a *Trace).
func ReplayStream(s AddrStream, sinks ...Sink) {
	if t, ok := s.(*Trace); ok {
		t.Replay(sinks...)
		return
	}
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	for _, sink := range sinks {
		replayCursor(s.Cursor(), sink)
	}
	if reg != nil {
		flushReplay(reg, start, uint64(s.Len())*uint64(len(sinks)), "pass")
	}
}

// replayCursor drains one cursor into one sink. Batch-capable sinks
// (caches, the profilers, the grouped simulator) consume whole blocks,
// so their hot loops avoid the per-address interface call, as in Replay.
func replayCursor(cur Cursor, sink Sink) {
	if bs, ok := sink.(batchSink); ok {
		for block := cur.Next(); block != nil; block = cur.Next() {
			bs.AccessBatch(block)
		}
		return
	}
	for block := cur.Next(); block != nil; block = cur.Next() {
		for _, a := range block {
			sink.Access(a)
		}
	}
}

// ReplayStreamConcurrent feeds the whole stream to every sink
// concurrently, one sink per goroutine. A materialized *Trace takes the
// shared-chunk channel path of ReplayConcurrent; any other stream gives
// each sink its own cursor, so sinks decode independently and no decoded
// block ever crosses a goroutine boundary.
//
// On cancellation the pass stops between blocks and the context's error
// is returned; the sinks are then partially updated and should be
// discarded.
func ReplayStreamConcurrent(ctx context.Context, s AddrStream, sinks ...Sink) error {
	if t, ok := s.(*Trace); ok {
		return t.ReplayConcurrent(ctx, sinks...)
	}
	if len(sinks) == 0 {
		return ctx.Err()
	}
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	var wg sync.WaitGroup
	done := ctx.Done()
	for _, sink := range sinks {
		wg.Add(1)
		go func(sink Sink) {
			defer wg.Done()
			cur := s.Cursor()
			if done == nil {
				replayCursor(cur, sink)
				return
			}
			bs, _ := sink.(batchSink)
			for block := cur.Next(); block != nil; block = cur.Next() {
				select {
				case <-done:
					return
				default:
				}
				if bs != nil {
					bs.AccessBatch(block)
					continue
				}
				for _, a := range block {
					sink.Access(a)
				}
			}
		}(sink)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if reg != nil {
		flushReplay(reg, start, uint64(s.Len())*uint64(len(sinks)), "concurrent_pass")
	}
	return nil
}

// SimulateConfigsStream is SimulateConfigsConcurrent over any address
// stream: one fresh classifying cache per configuration, all fed in a
// single concurrent pass, statistics index-aligned with cfgs.
func SimulateConfigsStream(ctx context.Context, s AddrStream, cfgs []Config) ([]Stats, error) {
	caches := make([]*Cache, len(cfgs))
	sinks := make([]Sink, len(cfgs))
	for i, cfg := range cfgs {
		c, err := TryNewClassifying(cfg)
		if err != nil {
			return nil, err
		}
		caches[i] = c
		sinks[i] = c.Sink()
	}
	if err := ReplayStreamConcurrent(ctx, s, sinks...); err != nil {
		return nil, err
	}
	out := make([]Stats, len(cfgs))
	for i, c := range caches {
		out[i] = c.Stats()
	}
	return out, nil
}

// MissRatesStream is MissRatesConcurrent over any address stream: the
// miss rate of one plain cache per configuration from a single
// concurrent pass, index-aligned with cfgs.
func MissRatesStream(ctx context.Context, s AddrStream, cfgs []Config) ([]float64, error) {
	caches := make([]*Cache, len(cfgs))
	sinks := make([]Sink, len(cfgs))
	for i, cfg := range cfgs {
		c, err := TryNew(cfg)
		if err != nil {
			return nil, err
		}
		caches[i] = c
		sinks[i] = c.Sink()
	}
	if err := ReplayStreamConcurrent(ctx, s, sinks...); err != nil {
		return nil, err
	}
	out := make([]float64, len(cfgs))
	for i, c := range caches {
		out[i] = c.Stats().MissRate()
	}
	return out, nil
}

// SimulateConfigsGroupedStream is SimulateConfigsGrouped over any
// address stream: per-configuration statistics from one grouped stack
// simulation per distinct line size, bit-identical to per-configuration
// replay.
func SimulateConfigsGroupedStream(ctx context.Context, s AddrStream, cfgs []Config) ([]Stats, error) {
	p, err := planSweep(cfgs, true)
	if err != nil {
		return nil, err
	}
	if err := ReplayStreamConcurrent(ctx, s, p.sinks()...); err != nil {
		return nil, err
	}
	return p.stats(), nil
}

// MissRatesGroupedStream is MissRatesGrouped over any address stream.
func MissRatesGroupedStream(ctx context.Context, s AddrStream, cfgs []Config) ([]float64, error) {
	p, err := planSweep(cfgs, false)
	if err != nil {
		return nil, err
	}
	if err := ReplayStreamConcurrent(ctx, s, p.sinks()...); err != nil {
		return nil, err
	}
	stats := p.stats()
	out := make([]float64, len(stats))
	for i, st := range stats {
		out[i] = st.MissRate()
	}
	return out, nil
}
