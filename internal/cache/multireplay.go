package cache

import (
	"context"
	"sync"
	"time"

	"texcache/internal/obs"
)

// Concurrent multi-configuration replay: one pass over a recorded trace
// feeds every cache configuration of a sweep at once. Each sink runs on
// its own goroutine and receives the trace as shared read-only chunks
// over a bounded channel, so a sweep of N configurations costs one trace
// walk and scales across cores, while each sink still sees the exact
// serial access order — statistics are bit-identical to Replay.

// replayChunkLen is the number of addresses handed to a sink per channel
// send: large enough that channel overhead vanishes against the ~ns cost
// of one Access, small enough that cancellation stays prompt.
const replayChunkLen = 1 << 14

// replayChanDepth bounds the per-sink channel, limiting how far a fast
// sink can run ahead of a slow one (bounded skew, bounded memory).
const replayChanDepth = 4

// replayChanPool recycles per-sink chunk channels across passes: a sweep
// replays once per experiment and per configuration group, and the
// channel plus its chunk buffer are the only per-sink allocations a pass
// makes. Channels end a clean pass open and drained (termination is a
// nil-chunk sentinel, not close), so they can be handed to the next
// pass; cancelled passes close their channels and let them go.
var replayChanPool = sync.Pool{
	New: func() any { return make(chan []uint64, replayChanDepth) },
}

// ReplayConcurrent feeds the whole trace to every sink in a single pass,
// each sink on its own goroutine. The trace is never copied: sinks share
// read-only views of the address slice. Replay order within each sink is
// identical to Replay, so any deterministic sink (Cache, StackDist)
// accumulates exactly the same statistics either way.
//
// On cancellation the pass stops between chunks, the workers drain, and
// the context's error is returned; the sinks are then partially updated
// and should be discarded.
func (t *Trace) ReplayConcurrent(ctx context.Context, sinks ...Sink) error {
	if len(sinks) == 0 {
		return ctx.Err()
	}
	return t.replayConcurrent(ctx, replayChunkLen, sinks)
}

// replayConcurrent is ReplayConcurrent with an explicit chunk length,
// separated so tests can exercise many-chunk schedules on short traces.
func (t *Trace) replayConcurrent(ctx context.Context, chunkLen int, sinks []Sink) error {
	if chunkLen < 1 {
		chunkLen = 1
	}
	// Metric accounting runs at chunk granularity (one gauge move per
	// ~16K addresses) and flushes totals after the pass; the per-address
	// loops stay untouched. backlog is a nil-safe handle: detached, every
	// update is a single branch.
	reg := obs.Default()
	var backlog *obs.Gauge
	var start time.Time
	if reg != nil {
		backlog = reg.Sub("replay").Gauge("backlog_chunks")
		start = time.Now()
	}
	chans := make([]chan []uint64, len(sinks))
	var wg sync.WaitGroup
	for i, s := range sinks {
		ch := replayChanPool.Get().(chan []uint64)
		chans[i] = ch
		wg.Add(1)
		go func(s Sink, ch <-chan []uint64) {
			defer wg.Done()
			// A nil chunk is the end-of-trace sentinel; a closed channel
			// (cancelled pass) also delivers nil. Never sent as a real
			// chunk: the producer slices a non-empty trace. Batch-capable
			// sinks absorb each chunk in one call, as in Replay.
			bs, _ := s.(batchSink)
			for chunk := range ch {
				if chunk == nil {
					break
				}
				if bs != nil {
					bs.AccessBatch(chunk)
				} else {
					for _, a := range chunk {
						s.Access(a)
					}
				}
				backlog.Add(-1)
			}
		}(s, ch)
	}

	var err error
producer:
	for lo := 0; lo < len(t.Addrs); lo += chunkLen {
		hi := min(lo+chunkLen, len(t.Addrs))
		chunk := t.Addrs[lo:hi]
		for _, ch := range chans {
			select {
			case ch <- chunk:
				backlog.Add(1)
			case <-ctx.Done():
				err = ctx.Err()
				break producer
			}
		}
	}
	for _, ch := range chans {
		if err != nil {
			// Cancelled: close so workers drain and exit; the channel may
			// still hold chunks, so it cannot be pooled.
			close(ch)
			continue
		}
		ch <- nil // bounded wait: the worker is draining toward the sentinel
	}
	wg.Wait()
	if err == nil {
		// Workers consumed every chunk and the sentinel: the channels are
		// empty and open, ready for the next pass.
		for _, ch := range chans {
			replayChanPool.Put(ch)
		}
		err = ctx.Err()
	}
	if reg != nil && err == nil {
		flushReplay(reg, start, uint64(t.Len())*uint64(len(sinks)), "concurrent_pass")
	}
	return err
}

// SimulateConfigsConcurrent is the concurrent form of SimulateConfigs:
// it replays the trace through a fresh classifying cache per
// configuration in a single pass, one cache per goroutine, and returns
// statistics index-aligned with cfgs. The result is identical to
// SimulateConfigs; only the wall-clock differs. Invalid configurations
// surface as *ConfigError before any replay work happens.
func (t *Trace) SimulateConfigsConcurrent(ctx context.Context, cfgs []Config) ([]Stats, error) {
	return SimulateConfigsStream(ctx, t, cfgs)
}

// MissRatesConcurrent replays the trace through one plain (non-
// classifying) cache per configuration in a single concurrent pass and
// returns the miss rates, index-aligned with cfgs. It is the cheap form
// the figure sweeps use when only the rate matters.
func (t *Trace) MissRatesConcurrent(ctx context.Context, cfgs []Config) ([]float64, error) {
	return MissRatesStream(ctx, t, cfgs)
}
