package cache

import (
	"math/rand"
	"testing"
)

func TestNewSectoredValidation(t *testing.T) {
	base := Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}
	if _, err := NewSectored(base, 32); err != nil {
		t.Errorf("valid sectored config rejected: %v", err)
	}
	cases := []struct {
		cfg    Config
		sector int
	}{
		{Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 0}, 32},               // FA
		{Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2, Policy: FIFO}, 32}, // non-LRU
		{base, 3},   // not power of two
		{base, 2},   // too small
		{base, 256}, // bigger than line
		{Config{SizeBytes: 1 << 20, LineBytes: 1 << 10, Ways: 2}, 4}, // 256 sectors
		{Config{SizeBytes: 100, LineBytes: 128, Ways: 2}, 32},        // bad cache
	}
	for _, c := range cases {
		if _, err := NewSectored(c.cfg, c.sector); err == nil {
			t.Errorf("cfg %+v sector %d accepted", c.cfg, c.sector)
		}
	}
}

func TestSectoredSectorGranularity(t *testing.T) {
	s, err := NewSectored(Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s.Access(0) {
		t.Error("cold access hit")
	}
	if !s.Access(4) {
		t.Error("same sector should hit")
	}
	if s.Access(32) {
		t.Error("different sector of a present line should sector-miss")
	}
	if !s.Access(32) {
		t.Error("fetched sector should hit")
	}
	if s.Access(96) {
		t.Error("fourth sector should miss")
	}
	st := s.Stats()
	if st.Accesses != 5 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 5 accesses 3 misses", st)
	}
	if s.TagMisses() != 1 {
		t.Errorf("tag misses = %d, want 1", s.TagMisses())
	}
	if s.TrafficBytes() != 3*32 {
		t.Errorf("traffic = %d, want 96", s.TrafficBytes())
	}
	if s.SectorBytes() != 32 {
		t.Errorf("SectorBytes = %d", s.SectorBytes())
	}
}

func TestSectoredEvictionClearsValidBits(t *testing.T) {
	// One set, one way, 128B lines, 32B sectors: line B evicts line A;
	// returning to A's sector must miss again.
	s, err := NewSectored(Config{SizeBytes: 128, LineBytes: 128, Ways: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(0)   // A sector 0
	s.Access(128) // B evicts A
	if s.Access(0) {
		t.Error("evicted line's sector survived")
	}
}

// TestSectoredVsFullLineTradeoff verifies the defining property: on a
// sparse access pattern the sectored cache moves less memory, and it can
// never hit where the full-line cache of identical organization misses.
func TestSectoredVsFullLineTradeoff(t *testing.T) {
	cfg := Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}
	full := New(cfg)
	sect, err := NewSectored(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	// Sparse strided walk: touch one word of every line.
	for i := 0; i < 30000; i++ {
		addr := uint64(rng.Intn(1<<16)) &^ 3
		fullHit := full.Access(addr)
		sectHit := sect.Access(addr)
		if sectHit && !fullHit {
			t.Fatal("sectored hit where full-line cache missed")
		}
	}
	fullTraffic := full.Stats().BytesFetched(cfg.LineBytes)
	if sect.TrafficBytes() >= fullTraffic {
		t.Errorf("sectored traffic %d not below full-line %d on sparse pattern",
			sect.TrafficBytes(), fullTraffic)
	}
}

func TestReplacementPolicies(t *testing.T) {
	// Distinguish LRU from FIFO: fill a 2-way set with A then B, touch A
	// (refreshing it under LRU), insert C. LRU evicts B (A survives);
	// FIFO evicts A (oldest fill).
	run := func(p Replacement) (aHit bool) {
		c := New(Config{SizeBytes: 64, LineBytes: 32, Ways: 2, Policy: p})
		c.Access(0)  // A
		c.Access(32) // B
		c.Access(0)  // touch A
		c.Access(64) // C evicts per policy
		return c.Access(0)
	}
	if !run(LRU) {
		t.Error("LRU evicted the recently used line")
	}
	if run(FIFO) {
		t.Error("FIFO kept the oldest-filled line")
	}
}

func TestRandomReplacementDeterministicAndLegal(t *testing.T) {
	mk := func() *Cache {
		return New(Config{SizeBytes: 256, LineBytes: 32, Ways: 4, Policy: Random})
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(4))
	addrs := make([]uint64, 20000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 12))
	}
	for _, ad := range addrs {
		if a.Access(ad) != b.Access(ad) {
			t.Fatal("random replacement is not deterministic across runs")
		}
	}
	// Random still hits on immediate re-access.
	c := mk()
	c.Access(100)
	if !c.Access(100) {
		t.Error("random policy broke basic residency")
	}
}

func TestPolicyValidation(t *testing.T) {
	if err := (Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 0, Policy: FIFO}).Validate(); err == nil {
		t.Error("FIFO with full associativity accepted")
	}
	if err := (Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, Policy: Replacement(9)}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if got := (Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, Policy: FIFO}).String(); got != "1KB 2-way 32B lines FIFO" {
		t.Errorf("String = %q", got)
	}
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "random" {
		t.Error("policy names wrong")
	}
}
