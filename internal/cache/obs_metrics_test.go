package cache

import (
	"context"
	"testing"

	"texcache/internal/obs"
)

// TestReplayMetricsBulkFlush verifies the serial replay paths account
// their address volume exactly once per pass.
func TestReplayMetricsBulkFlush(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Attach(reg)
	defer obs.Detach()

	tr := NewTrace(0)
	for i := 0; i < 5000; i++ {
		tr.Access(uint64(i*64) % (1 << 16))
	}
	c := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2})
	tr.Replay(c.Sink(), NewStackDist(32))
	if got := reg.Sub("replay").Counter("addresses").Value(); got != 2*uint64(tr.Len()) {
		t.Errorf("replay.addresses = %d after Replay, want %d", got, 2*tr.Len())
	}
	if n := reg.Sub("replay").Timer("pass").Count(); n != 1 {
		t.Errorf("replay.pass count = %d, want 1", n)
	}

	tr.SimulateConfigs([]Config{
		{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2},
		{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2},
	})
	want := 2*uint64(tr.Len()) + 2*uint64(tr.Len())
	if got := reg.Sub("replay").Counter("addresses").Value(); got != want {
		t.Errorf("replay.addresses = %d after SimulateConfigs, want %d", got, want)
	}
}

// TestReplayConcurrentMetricsConsistent drives the concurrent replay's
// per-sink goroutines against the shared registry and checks the final
// metric values are exact — under -race this also proves the metric
// updates from concurrent sinks are data-race free.
func TestReplayConcurrentMetricsConsistent(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Attach(reg)
	defer obs.Detach()

	tr := NewTrace(0)
	for i := 0; i < 200000; i++ {
		tr.Access(uint64(i*64) % (1 << 18))
	}
	const nSinks = 8
	sinks := make([]Sink, nSinks)
	caches := make([]*Cache, nSinks)
	for i := range sinks {
		c, err := TryNew(Config{SizeBytes: 1 << (10 + uint(i%4)), LineBytes: 64, Ways: 2})
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
		sinks[i] = c.Sink()
	}
	// Small chunks force many backlog gauge transitions across all
	// goroutines.
	if err := tr.replayConcurrent(context.Background(), 512, sinks); err != nil {
		t.Fatal(err)
	}

	rep := reg.Sub("replay")
	if got, want := rep.Counter("addresses").Value(), uint64(tr.Len())*nSinks; got != want {
		t.Errorf("replay.addresses = %d, want %d", got, want)
	}
	if got := rep.Gauge("backlog_chunks").Value(); got != 0 {
		t.Errorf("replay.backlog_chunks = %d after drain, want 0", got)
	}
	if n := rep.Timer("concurrent_pass").Count(); n != 1 {
		t.Errorf("replay.concurrent_pass count = %d, want 1", n)
	}
	// The metrics must not have perturbed the simulation itself.
	for i, c := range caches {
		if c.Stats().Accesses != uint64(tr.Len()) {
			t.Errorf("sink %d saw %d accesses, want %d", i, c.Stats().Accesses, tr.Len())
		}
	}
}
