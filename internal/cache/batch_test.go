package cache

import (
	"math/rand"
	"testing"
)

// Differential tests for the batch replay kernels: AccessBatch on every
// sink must be observationally equivalent to a loop of Access calls —
// same hit/miss decisions, same statistics, same final cache state, same
// observer callback sequence — for every configuration, including the
// ones that route through the scalar fallback (fully-associative,
// classifying, miss-observed, non-LRU).

// feedBatches replays addrs through AccessBatch in randomly sized blocks
// (including empty and single-address blocks) and returns the total hit
// count the batch calls reported.
func feedBatches(rng *rand.Rand, c *Cache, addrs []uint64) int {
	hits := 0
	for lo := 0; lo < len(addrs); {
		n := rng.Intn(257)
		if lo+n > len(addrs) {
			n = len(addrs) - lo
		}
		hits += c.AccessBatch(addrs[lo : lo+n])
		lo += n
	}
	hits += c.AccessBatch(nil) // empty batch is a no-op
	return hits
}

// assertCacheEqual fails unless the two caches hold identical
// statistics, line state and recency order (tags, stamps and the LRU
// clock are compared directly; the fully-associative path is compared
// through its statistics and residency probes in the callers).
func assertCacheEqual(t *testing.T, label string, want, got *Cache) {
	t.Helper()
	if want.Stats() != got.Stats() {
		t.Fatalf("%s: stats diverge: scalar %+v batch %+v", label, want.Stats(), got.Stats())
	}
	if want.clock != got.clock {
		t.Fatalf("%s: clock diverges: scalar %d batch %d", label, want.clock, got.clock)
	}
	for i := range want.tags {
		if want.tags[i] != got.tags[i] {
			t.Fatalf("%s: tags[%d] diverge: scalar %#x batch %#x", label, i, want.tags[i], got.tags[i])
		}
		if want.stamps[i] != got.stamps[i] {
			t.Fatalf("%s: stamps[%d] diverge: scalar %d batch %d", label, i, want.stamps[i], got.stamps[i])
		}
	}
}

// TestAccessBatchMatchesScalar is the core property: over randomized
// configurations (direct-mapped through fully-associative, all three
// replacement policies, classifying on and off) and a structured address
// stream, batch replay must report the same hit count and leave the
// cache in the same state as per-address replay.
func TestAccessBatchMatchesScalar(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		tr := diffTrace(seed, 20000)
		for _, cfg := range randomConfigs(rng, 16) {
			for _, classify := range []bool{false, true} {
				mk := TryNew
				if classify {
					mk = TryNewClassifying
				}
				scalar, err := mk(cfg)
				if err != nil {
					t.Fatal(err)
				}
				batch, _ := mk(cfg)

				wantHits := 0
				for _, a := range tr.Addrs {
					if scalar.Access(a) {
						wantHits++
					}
				}
				gotHits := feedBatches(rng, batch, tr.Addrs)

				label := cfg.String()
				if classify {
					label += " classifying"
				}
				if wantHits != gotHits {
					t.Fatalf("%s: hit count diverges: scalar %d batch %d", label, wantHits, gotHits)
				}
				assertCacheEqual(t, label, scalar, batch)
			}
		}
	}
}

// TestAccessBatchEvictionOrder pins the batch kernel's LRU victim choice
// on a hand-built conflict pattern: three lines mapping to one two-way
// set must evict in recency order, identically on both paths.
func TestAccessBatchEvictionOrder(t *testing.T) {
	// 2 sets x 2 ways x 32B lines; A, B, C all map to set 0.
	cfg := Config{SizeBytes: 128, LineBytes: 32, Ways: 2}
	a, b, c := uint64(0), uint64(128), uint64(256)

	scalar := New(cfg)
	batch := New(cfg)

	seq := []uint64{a, b, a, c, b} // c evicts b (LRU), then b evicts a
	for _, addr := range seq {
		scalar.Access(addr)
	}
	batch.AccessBatch(seq)

	assertCacheEqual(t, cfg.String(), scalar, batch)
	for _, probe := range []struct {
		addr uint64
		want bool
	}{{a, false}, {b, true}, {c, true}} {
		if got := batch.Contains(probe.addr); got != probe.want {
			t.Errorf("after batch, Contains(%#x) = %v, want %v", probe.addr, got, probe.want)
		}
	}
}

// TestAccessBatchMixedWithScalar interleaves Access and AccessBatch
// calls on one cache against a purely scalar twin: the batch kernel's
// deferred clock and statistics write-back must leave the cache ready
// for scalar accesses at any boundary.
func TestAccessBatchMixedWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := diffTrace(7, 10000)
	cfg := Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4}

	scalar := New(cfg)
	mixed := New(cfg)
	for _, a := range tr.Addrs {
		scalar.Access(a)
	}
	for lo := 0; lo < len(tr.Addrs); {
		if rng.Intn(2) == 0 {
			mixed.Access(tr.Addrs[lo])
			lo++
			continue
		}
		n := min(rng.Intn(129), len(tr.Addrs)-lo)
		mixed.AccessBatch(tr.Addrs[lo : lo+n])
		lo += n
	}
	assertCacheEqual(t, cfg.String(), scalar, mixed)
}

// TestAccessBatchMissObserver verifies the miss-observer callback fires
// in the same order with the same line addresses under batch replay (the
// observer forces the scalar fallback; the contract still holds).
func TestAccessBatchMissObserver(t *testing.T) {
	tr := diffTrace(11, 5000)
	cfg := Config{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2}

	var wantMisses, gotMisses []uint64
	scalar := New(cfg)
	scalar.SetMissObserver(func(la uint64) { wantMisses = append(wantMisses, la) })
	batch := New(cfg)
	batch.SetMissObserver(func(la uint64) { gotMisses = append(gotMisses, la) })

	for _, a := range tr.Addrs {
		scalar.Access(a)
	}
	batch.AccessBatch(tr.Addrs)

	if len(wantMisses) != len(gotMisses) {
		t.Fatalf("miss sequence length diverges: scalar %d batch %d", len(wantMisses), len(gotMisses))
	}
	for i := range wantMisses {
		if wantMisses[i] != gotMisses[i] {
			t.Fatalf("miss %d diverges: scalar %#x batch %#x", i, wantMisses[i], gotMisses[i])
		}
	}
	assertCacheEqual(t, cfg.String(), scalar, batch)
}

// assertStackDistEqual compares every observable and internal fact of
// two profilers: totals, the full distance histogram, the live-line
// recency map and the virtual clock.
func assertStackDistEqual(t *testing.T, label string, want, got *StackDist) {
	t.Helper()
	if want.accesses != got.accesses || want.cold != got.cold || want.now != got.now {
		t.Fatalf("%s: profile diverges: scalar (acc %d cold %d now %d) batch (acc %d cold %d now %d)",
			label, want.accesses, want.cold, want.now, got.accesses, got.cold, got.now)
	}
	if len(want.hist) != len(got.hist) {
		t.Fatalf("%s: hist length diverges: scalar %d batch %d", label, len(want.hist), len(got.hist))
	}
	for d := range want.hist {
		if want.hist[d] != got.hist[d] {
			t.Fatalf("%s: hist[%d] diverges: scalar %d batch %d", label, d, want.hist[d], got.hist[d])
		}
	}
	if len(want.lastTime) != len(got.lastTime) {
		t.Fatalf("%s: live-line count diverges: scalar %d batch %d", label, len(want.lastTime), len(got.lastTime))
	}
	for la, wt := range want.lastTime {
		if gt, ok := got.lastTime[la]; !ok || gt != wt {
			t.Fatalf("%s: lastTime[%#x] diverges: scalar %d batch %d (present %v)", label, la, wt, gt, ok)
		}
	}
}

// TestStackDistBatchMatchesScalar checks the profiler's batch kernel
// reproduces the scalar profile bit-for-bit — histogram, cold count and
// internal recency state — across line sizes and batch boundaries.
func TestStackDistBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := diffTrace(5, 30000)
	for _, line := range []int{4, 32, 64, 256} {
		scalar := NewStackDist(line)
		batch := NewStackDist(line)
		for _, a := range tr.Addrs {
			scalar.Access(a)
		}
		for lo := 0; lo < len(tr.Addrs); {
			n := min(rng.Intn(513), len(tr.Addrs)-lo)
			batch.AccessBatch(tr.Addrs[lo : lo+n])
			lo += n
		}
		batch.AccessBatch(nil)
		assertStackDistEqual(t, "line "+FormatSize(line), scalar, batch)
		for _, size := range []int{1 << 10, 16 << 10, 256 << 10} {
			if s, b := scalar.MissRateAt(size), batch.MissRateAt(size); s != b {
				t.Fatalf("line %d: MissRateAt(%d) diverges: scalar %v batch %v", line, size, s, b)
			}
		}
	}
}

// TestStackDistBatchCompaction drives both profilers across the Fenwick
// compaction boundary with the clock pre-advanced to just below the cap,
// so a batch block straddles the compaction. The batch kernel must
// compact at exactly the access the scalar path does, or distances after
// renumbering diverge.
func TestStackDistBatchCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<14)) * 64
	}
	scalar := NewStackDist(64)
	batch := NewStackDist(64)
	// Jump the virtual clock to force compactions inside the replay; the
	// offset is identical on both sides, so profiles must stay identical.
	scalar.now = fenwickCap - 1000
	batch.now = fenwickCap - 1000

	for _, a := range addrs {
		scalar.Access(a)
	}
	for lo := 0; lo < len(addrs); {
		n := min(rng.Intn(777), len(addrs)-lo)
		batch.AccessBatch(addrs[lo : lo+n])
		lo += n
	}
	if scalar.now >= fenwickCap-1000+int32(len(addrs)) {
		t.Fatal("test never crossed the compaction boundary")
	}
	assertStackDistEqual(t, "compaction", scalar, batch)
}

// TestGroupSimAccessBatch feeds one grouped-sweep plan per address and a
// second in blocks; every configuration's statistics must match.
func TestGroupSimAccessBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := diffTrace(13, 15000)
	cfgs := randomConfigs(rng, 8)

	scalarPlan, err := planSweep(cfgs, true)
	if err != nil {
		t.Fatal(err)
	}
	batchPlan, _ := planSweep(cfgs, true)

	for _, s := range scalarPlan.sinks() {
		for _, a := range tr.Addrs {
			s.Access(a)
		}
	}
	for _, s := range batchPlan.sinks() {
		bs, ok := s.(batchSink)
		if !ok {
			t.Fatalf("plan sink %T does not support batch replay", s)
		}
		for lo := 0; lo < len(tr.Addrs); lo += 1024 {
			hi := min(lo+1024, len(tr.Addrs))
			bs.AccessBatch(tr.Addrs[lo:hi])
		}
	}

	want, got := scalarPlan.stats(), batchPlan.stats()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%v: grouped stats diverge: scalar %+v batch %+v", cfgs[i], want[i], got[i])
		}
	}
}

// FuzzAccessBatch differentially fuzzes the batch kernel against scalar
// replay: any configuration and batch length the fuzzer draws must agree
// on hit counts, statistics and final cache state. The corpus seeds the
// paper's organizations plus the fallback policies and degenerate batch
// lengths.
func FuzzAccessBatch(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(3), uint8(2), uint8(0), uint16(64))   // 4KB 2-way 32B
	f.Add(uint64(2), uint8(5), uint8(5), uint8(2), uint8(0), uint16(1))    // 32KB 2-way 128B, 1-addr batches
	f.Add(uint64(3), uint8(7), uint8(5), uint8(1), uint8(0), uint16(4096)) // 128KB direct 128B
	f.Add(uint64(4), uint8(4), uint8(4), uint8(0), uint8(0), uint16(100))  // 16KB FA (fallback)
	f.Add(uint64(5), uint8(3), uint8(3), uint8(4), uint8(1), uint16(33))   // 8KB 4-way FIFO (fallback)
	f.Add(uint64(6), uint8(3), uint8(5), uint8(2), uint8(2), uint16(7))    // 8KB 2-way random (fallback)

	f.Fuzz(func(t *testing.T, seed uint64, sizeLog, lineLog, ways, policy uint8, batchLen uint16) {
		cfg := Config{
			SizeBytes: 1 << (10 + sizeLog%8), // 1KB .. 128KB
			LineBytes: 1 << (2 + lineLog%7),  // 4B .. 256B
			Ways:      int(ways % 9),
			Policy:    Replacement(policy % 3),
		}
		if cfg.Validate() != nil {
			return
		}
		n := int(batchLen)%4096 + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		addrs := make([]uint64, 4096)
		base := uint64(0)
		for i := range addrs {
			switch r := rng.Float64(); {
			case r < 0.5:
				addrs[i] = uint64(rng.Intn(2 << 10))
			case r < 0.9:
				addrs[i] = base + uint64(rng.Intn(32<<10))
			default:
				base += uint64(rng.Intn(1 << 18))
				addrs[i] = base
			}
		}

		scalar := New(cfg)
		batch := New(cfg)
		wantHits := 0
		for _, a := range addrs {
			if scalar.Access(a) {
				wantHits++
			}
		}
		gotHits := 0
		for lo := 0; lo < len(addrs); lo += n {
			hi := min(lo+n, len(addrs))
			gotHits += batch.AccessBatch(addrs[lo:hi])
		}
		if wantHits != gotHits {
			t.Fatalf("%v batch %d: hit count diverges: scalar %d batch %d", cfg, n, wantHits, gotHits)
		}
		assertCacheEqual(t, cfg.String(), scalar, batch)
	})
}
