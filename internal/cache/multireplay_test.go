package cache

import (
	"context"
	"errors"
	"testing"
	"time"
)

// synthTrace builds a deterministic trace with enough structure to
// exercise hits, misses and conflicts across a range of configs.
func synthTrace(n int) *Trace {
	t := NewTrace(n)
	state := uint64(0x243F6A8885A308D3)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		// Mix streaming and reuse: half the accesses walk forward, half
		// revisit a small hot region, all 4-byte aligned.
		var a uint64
		if i%2 == 0 {
			a = uint64(i) * 4
		} else {
			a = (state % (1 << 12)) &^ 3
		}
		t.Access(a)
	}
	return t
}

// sweepConfigs is the shared multi-config sweep the equivalence tests use.
func sweepConfigs() []Config {
	return []Config{
		{SizeBytes: 1 << 10, LineBytes: 32, Ways: 1},
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2},
		{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2},
		{SizeBytes: 32 << 10, LineBytes: 128, Ways: 0},
		{SizeBytes: 64 << 10, LineBytes: 128, Ways: 8},
		{SizeBytes: 128 << 10, LineBytes: 256, Ways: 1},
	}
}

func TestSimulateConfigsConcurrentMatchesSerial(t *testing.T) {
	tr := synthTrace(50_000)
	cfgs := sweepConfigs()
	want := tr.SimulateConfigs(cfgs)
	got, err := tr.SimulateConfigsConcurrent(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if got[i] != want[i] {
			t.Errorf("%v: concurrent %+v != serial %+v", cfgs[i], got[i], want[i])
		}
	}
}

func TestReplayConcurrentSmallChunks(t *testing.T) {
	// Tiny chunks force many channel sends, shaking out ordering bugs.
	tr := synthTrace(10_000)
	cfgs := sweepConfigs()[:4]
	want := tr.SimulateConfigs(cfgs)
	sinks := make([]Sink, len(cfgs))
	caches := make([]*Cache, len(cfgs))
	for i, cfg := range cfgs {
		caches[i] = NewClassifying(cfg)
		sinks[i] = caches[i].Sink()
	}
	if err := tr.replayConcurrent(context.Background(), 7, sinks); err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if caches[i].Stats() != want[i] {
			t.Errorf("%v: chunked %+v != serial %+v", cfgs[i], caches[i].Stats(), want[i])
		}
	}
}

func TestReplayConcurrentStackDist(t *testing.T) {
	tr := synthTrace(20_000)
	serial := NewStackDist(32)
	tr.Replay(serial)
	concurrent := NewStackDist(32)
	if err := tr.ReplayConcurrent(context.Background(), concurrent); err != nil {
		t.Fatal(err)
	}
	sizes := []int{1 << 10, 4 << 10, 16 << 10}
	for _, sz := range sizes {
		if got, want := concurrent.MissRateAt(sz), serial.MissRateAt(sz); got != want {
			t.Errorf("stack-distance miss rate at %d: concurrent %v != serial %v", sz, got, want)
		}
	}
}

func TestReplayConcurrentEmptyAndNoSinks(t *testing.T) {
	tr := NewTrace(0)
	if err := tr.ReplayConcurrent(context.Background()); err != nil {
		t.Errorf("no sinks: %v", err)
	}
	c := New(Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 1})
	if err := tr.ReplayConcurrent(context.Background(), c.Sink()); err != nil {
		t.Errorf("empty trace: %v", err)
	}
	if c.Stats().Accesses != 0 {
		t.Errorf("empty trace produced accesses: %+v", c.Stats())
	}
}

func TestReplayConcurrentCancellation(t *testing.T) {
	tr := synthTrace(100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the pass must stop promptly
	done := make(chan error, 1)
	go func() {
		c := New(Config{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2})
		done <- tr.ReplayConcurrent(ctx, c.Sink())
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled replay returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled replay did not return promptly")
	}
}

func TestSimulateConfigsConcurrentInvalidConfig(t *testing.T) {
	tr := synthTrace(100)
	_, err := tr.SimulateConfigsConcurrent(context.Background(),
		[]Config{{SizeBytes: 3000, LineBytes: 32, Ways: 1}})
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Errorf("invalid config returned %v, want *ConfigError", err)
	}
	if _, err := tr.MissRatesConcurrent(context.Background(),
		[]Config{{SizeBytes: 1 << 10, LineBytes: 3, Ways: 1}}); err == nil {
		t.Error("MissRatesConcurrent accepted an invalid config")
	}
}

func TestConfigErrorFromEveryConstructor(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Ways: 1},            // zero size
		{SizeBytes: 3 << 10, LineBytes: 32, Ways: 1},      // non-power-of-two size
		{SizeBytes: 1 << 10, LineBytes: 48, Ways: 1},      // non-power-of-two line
		{SizeBytes: 1 << 10, LineBytes: 32, Ways: 64},     // ways > lines
		{SizeBytes: 256, LineBytes: 512, Ways: 1},         // size < line
		{SizeBytes: 1 << 10, LineBytes: 32, Ways: -1},     // negative ways
		{SizeBytes: 1 << 10, LineBytes: 32, Policy: FIFO}, // FIFO needs sets
	}
	for _, cfg := range bad {
		var ce *ConfigError
		if err := cfg.Validate(); !errors.As(err, &ce) {
			t.Errorf("Validate(%+v) = %v, want *ConfigError", cfg, err)
			continue
		}
		if _, err := TryNew(cfg); !errors.As(err, &ce) {
			t.Errorf("TryNew(%+v) = %v, want *ConfigError", cfg, err)
		}
		if _, err := TryNewClassifying(cfg); !errors.As(err, &ce) {
			t.Errorf("TryNewClassifying(%+v) = %v, want *ConfigError", cfg, err)
		}
		if _, err := NewSectored(cfg, 32); !errors.As(err, &ce) {
			t.Errorf("NewSectored(%+v) = %v, want *ConfigError", cfg, err)
		}
	}
	// Sectored-specific rejections are ConfigErrors too.
	good := Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}
	var ce *ConfigError
	if _, err := NewSectored(good, 3); !errors.As(err, &ce) {
		t.Errorf("NewSectored bad sector = %v, want *ConfigError", err)
	}
	if _, err := NewSectored(Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 0}, 32); !errors.As(err, &ce) {
		t.Errorf("NewSectored fully-assoc = %v, want *ConfigError", err)
	}
}
