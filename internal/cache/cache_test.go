package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	valid := []Config{
		{SizeBytes: 4096, LineBytes: 32, Ways: 2},
		{SizeBytes: 32 << 10, LineBytes: 128, Ways: 0},
		{SizeBytes: 128 << 10, LineBytes: 64, Ways: 1},
		{SizeBytes: 1 << 10, LineBytes: 4, Ways: 4},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", c, err)
		}
	}
	invalid := []Config{
		{SizeBytes: 0, LineBytes: 32},
		{SizeBytes: 3000, LineBytes: 32},
		{SizeBytes: 4096, LineBytes: 3},
		{SizeBytes: 4096, LineBytes: 2},
		{SizeBytes: 16, LineBytes: 32},
		{SizeBytes: 4096, LineBytes: 32, Ways: -1},
		{SizeBytes: 4096, LineBytes: 32, Ways: 3}, // 128 lines not divisible into pow2 sets
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("%v: expected validation error", c)
		}
	}
}

func TestConfigString(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 0}, "32KB fully-assoc 128B lines"},
		{Config{SizeBytes: 4 << 10, LineBytes: 32, Ways: 1}, "4KB direct-mapped 32B lines"},
		{Config{SizeBytes: 128 << 10, LineBytes: 64, Ways: 2}, "128KB 2-way 64B lines"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{32, "32B"}, {1024, "1KB"}, {32 << 10, "32KB"}, {1 << 20, "1MB"}, {3 << 20, "3MB"}, {1536, "1536B"},
	}
	for _, c := range cases {
		if got := FormatSize(c.n); got != c.want {
			t.Errorf("FormatSize(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestDirectMappedBasics(t *testing.T) {
	// 4 lines of 32 bytes, direct mapped.
	c := New(Config{SizeBytes: 128, LineBytes: 32, Ways: 1})
	if c.Access(0) {
		t.Error("first access should miss")
	}
	if !c.Access(4) {
		t.Error("same line should hit")
	}
	if !c.Access(31) {
		t.Error("end of line should hit")
	}
	if c.Access(32) {
		t.Error("next line should miss")
	}
	// Address 128 maps to the same set as 0 and evicts it.
	if c.Access(128) {
		t.Error("conflicting line should miss")
	}
	if c.Access(0) {
		t.Error("evicted line should miss")
	}
	s := c.Stats()
	if s.Accesses != 6 || s.Misses != 4 {
		t.Errorf("stats = %+v, want 6 accesses 4 misses", s)
	}
}

func TestTwoWayLRUEviction(t *testing.T) {
	// One set, two ways, 32B lines: addresses 0, 64, 128 all map to set 0.
	c := New(Config{SizeBytes: 64, LineBytes: 32, Ways: 2})
	c.Access(0)  // miss, load A
	c.Access(32) // miss, load B
	c.Access(0)  // hit, A is MRU
	c.Access(64) // miss, evict LRU = B
	if !c.Access(0) {
		t.Error("A should still be resident")
	}
	if c.Access(32) {
		t.Error("B should have been evicted")
	}
}

func TestFullyAssociativeLRU(t *testing.T) {
	c := New(Config{SizeBytes: 128, LineBytes: 32, Ways: 0}) // 4 lines
	for i := uint64(0); i < 4; i++ {
		if c.Access(i * 32) {
			t.Fatalf("access %d should miss", i)
		}
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Access(i * 32) {
			t.Fatalf("access %d should hit", i)
		}
	}
	c.Access(4 * 32) // evicts line 0 (LRU)
	if c.Access(0) {
		t.Error("line 0 should have been evicted")
	}
}

func TestFlush(t *testing.T) {
	for _, ways := range []int{0, 1, 2} {
		c := New(Config{SizeBytes: 128, LineBytes: 32, Ways: ways})
		c.Access(0)
		if !c.Contains(0) {
			t.Fatalf("ways=%d: line should be resident", ways)
		}
		c.Flush()
		if c.Contains(0) {
			t.Errorf("ways=%d: line resident after flush", ways)
		}
		if c.Access(0) {
			t.Errorf("ways=%d: hit after flush", ways)
		}
	}
}

func TestClassificationColdOnly(t *testing.T) {
	// Sequential streaming through a large cache: every miss is cold.
	c := NewClassifying(Config{SizeBytes: 1 << 20, LineBytes: 32, Ways: 2})
	for a := uint64(0); a < 1<<14; a += 4 {
		c.Access(a)
	}
	s := c.Stats()
	if s.Misses != s.Cold {
		t.Errorf("all misses should be cold: %+v", s)
	}
	if s.Capacity != 0 || s.Conflict != 0 {
		t.Errorf("no capacity/conflict expected: %+v", s)
	}
	wantMisses := uint64(1 << 14 / 32)
	if s.Misses != wantMisses {
		t.Errorf("misses = %d, want %d", s.Misses, wantMisses)
	}
}

func TestClassificationCapacity(t *testing.T) {
	// Cyclic sweep over 8 lines through a 4-line FA cache: after the first
	// pass every access misses, and all non-cold misses are capacity.
	c := NewClassifying(Config{SizeBytes: 128, LineBytes: 32, Ways: 0})
	for pass := 0; pass < 4; pass++ {
		for i := uint64(0); i < 8; i++ {
			c.Access(i * 32)
		}
	}
	s := c.Stats()
	if s.Cold != 8 {
		t.Errorf("cold = %d, want 8", s.Cold)
	}
	if s.Conflict != 0 {
		t.Errorf("conflict = %d, want 0 in fully associative", s.Conflict)
	}
	if s.Capacity != s.Misses-s.Cold {
		t.Errorf("capacity = %d, want %d", s.Capacity, s.Misses-s.Cold)
	}
	if s.Misses != 32 {
		t.Errorf("misses = %d, want 32 (every access misses under cyclic LRU)", s.Misses)
	}
}

func TestClassificationConflict(t *testing.T) {
	// Direct-mapped 4-line cache; ping-pong between two addresses that
	// map to the same set. A fully-associative cache of the same size
	// would hold both, so the misses are conflicts.
	c := NewClassifying(Config{SizeBytes: 128, LineBytes: 32, Ways: 1})
	for i := 0; i < 10; i++ {
		c.Access(0)
		c.Access(128)
	}
	s := c.Stats()
	if s.Cold != 2 {
		t.Errorf("cold = %d, want 2", s.Cold)
	}
	if s.Conflict != s.Misses-2 {
		t.Errorf("conflict = %d, want %d", s.Conflict, s.Misses-2)
	}
	if s.Capacity != 0 {
		t.Errorf("capacity = %d, want 0", s.Capacity)
	}
	if s.Misses != 20 {
		t.Errorf("misses = %d, want 20", s.Misses)
	}
}

func TestClassificationPartition(t *testing.T) {
	// Property: on random traces, Cold+Capacity+Conflict == Misses and
	// higher associativity at fixed size never increases conflict+capacity
	// + cold sum below cold count.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		addrs := make([]uint64, 5000)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1<<14)) &^ 3
		}
		for _, ways := range []int{0, 1, 2, 4} {
			c := NewClassifying(Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: ways})
			for _, a := range addrs {
				c.Access(a)
			}
			s := c.Stats()
			if s.Cold+s.Capacity+s.Conflict != s.Misses {
				t.Fatalf("ways=%d: 3C partition broken: %+v", ways, s)
			}
			if ways == 0 && s.Conflict != 0 {
				t.Fatalf("fully associative cache reported conflicts: %+v", s)
			}
		}
	}
}

func TestFullyAssocMatchesShadow(t *testing.T) {
	// Property: an N-way cache where N == number of lines behaves exactly
	// like the fully-associative cache (single set, LRU).
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 20000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 12))
	}
	cfgFA := Config{SizeBytes: 512, LineBytes: 32, Ways: 0}
	cfgNW := Config{SizeBytes: 512, LineBytes: 32, Ways: 16} // 16 lines, 16 ways
	fa, nw := New(cfgFA), New(cfgNW)
	for _, a := range addrs {
		if fa.Access(a) != nw.Access(a) {
			t.Fatal("N-way==lines cache diverged from fully associative")
		}
	}
}

func TestMissRateMonotonicInSize(t *testing.T) {
	// Property (for FA LRU — stack inclusion): bigger caches never miss
	// more on the same trace.
	rng := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 30000)
	for i := range addrs {
		// Mixture of sequential and random accesses.
		if rng.Intn(4) == 0 {
			addrs[i] = uint64(rng.Intn(1 << 14))
		} else {
			addrs[i] = uint64((i * 4) % (1 << 13))
		}
	}
	var prev uint64 = ^uint64(0)
	for _, size := range []int{256, 512, 1024, 2048, 4096} {
		c := New(Config{SizeBytes: size, LineBytes: 32, Ways: 0})
		for _, a := range addrs {
			c.Access(a)
		}
		m := c.Stats().Misses
		if m > prev {
			t.Fatalf("size %d: misses %d > smaller cache's %d", size, m, prev)
		}
		prev = m
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Accesses: 200, Misses: 20, Cold: 5}
	if s.MissRate() != 0.1 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if s.ColdRate() != 0.025 {
		t.Errorf("ColdRate = %v", s.ColdRate())
	}
	if s.BytesFetched(64) != 20*64 {
		t.Errorf("BytesFetched = %v", s.BytesFetched(64))
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.ColdRate() != 0 {
		t.Error("zero stats should have zero rates")
	}
}

func TestTryNewRejectsInvalid(t *testing.T) {
	if _, err := TryNew(Config{SizeBytes: 100, LineBytes: 32}); err == nil {
		t.Error("expected error for non-power-of-two size")
	}
	defer func() {
		if recover() == nil {
			t.Error("New should panic on invalid config")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 32})
}

func TestSinkHelpers(t *testing.T) {
	var got []uint64
	s := SinkFunc(func(a uint64) { got = append(got, a) })
	tee := Tee(s, Discard)
	tee.Access(1)
	tee.Access(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("tee delivered %v", got)
	}
	Discard.Access(99) // must not panic
}

func TestContainsDoesNotPerturbLRU(t *testing.T) {
	c := New(Config{SizeBytes: 64, LineBytes: 32, Ways: 2})
	c.Access(0)
	c.Access(32)
	// Probing 0 must not refresh it; 64 should still evict 0 (LRU).
	if !c.Contains(0) {
		t.Fatal("line 0 should be resident")
	}
	c.Access(64)
	if c.Contains(0) {
		t.Error("line 0 should have been evicted as LRU despite Contains probe")
	}
}

func TestQuickHitAfterAccess(t *testing.T) {
	// Property: immediately re-accessing any address hits, for any legal
	// configuration.
	f := func(addrSeed uint32, sizeExp, lineExp, waysExp uint8) bool {
		size := 1 << (6 + sizeExp%10) // 64B..32KB
		lineB := 1 << (2 + lineExp%6) // 4..128B
		if lineB > size {
			return true
		}
		ways := int(waysExp % 4) // 0..3
		cfg := Config{SizeBytes: size, LineBytes: lineB, Ways: ways}
		if cfg.Validate() != nil {
			return true
		}
		c := New(cfg)
		addr := uint64(addrSeed)
		c.Access(addr)
		return c.Access(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
