package cache

import (
	"math/rand"
	"testing"
)

// TestStackDistMatchesFALRU is a differential test of the one-pass
// stack-distance profiler against the direct simulator: for a random
// address stream, MissesAt(S/L) must equal the miss count of a fully
// associative LRU Cache (Ways == 0) of size S with line size L replayed
// over the same stream — Mattson's inclusion property says one profile
// pass answers every capacity at once, and the Fenwick-compacted
// implementation must not drift from it at any (S, L) point.
func TestStackDistMatchesFALRU(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))

	// A stream with structure at several scales, so different line sizes
	// and capacities all see a mix of hits, capacity misses and cold
	// misses: random addresses inside a hot working set, a wandering
	// medium-range pool, and occasional far streaming reads.
	const n = 60000
	addrs := make([]uint64, n)
	base := uint64(0)
	for i := range addrs {
		switch r := rng.Float64(); {
		case r < 0.5:
			addrs[i] = uint64(rng.Intn(4 << 10)) // hot set, well within most capacities
		case r < 0.9:
			addrs[i] = base + uint64(rng.Intn(64<<10))
		default:
			base += uint64(rng.Intn(1 << 20))
			addrs[i] = base
		}
	}

	// ~20 random (size, line) points across the interesting range.
	type point struct{ lineBytes, sizeBytes int }
	seen := map[point]bool{}
	var points []point
	for len(points) < 20 {
		line := 4 << rng.Intn(7)         // 4B .. 256B
		lines := 1 << (1 + rng.Intn(10)) // 2 .. 1024 lines
		p := point{line, line * lines}   // size stays a power of two
		if !seen[p] {
			seen[p] = true
			points = append(points, p)
		}
	}

	for _, p := range points {
		sd := NewStackDist(p.lineBytes)
		c := New(Config{SizeBytes: p.sizeBytes, LineBytes: p.lineBytes, Ways: 0})
		for _, a := range addrs {
			sd.Access(a)
			c.Access(a)
		}
		want := c.Stats().Misses
		got := sd.MissesAt(p.sizeBytes / p.lineBytes)
		if got != want {
			t.Errorf("size=%dB line=%dB: StackDist.MissesAt = %d, FA-LRU cache = %d",
				p.sizeBytes, p.lineBytes, got, want)
		}
		// The profiler's cold-miss count must match too: both sides see
		// the same distinct-line universe.
		if sd.ColdMisses() != uint64(sd.DistinctLines()) {
			t.Errorf("line=%dB: %d cold misses but %d distinct lines",
				p.lineBytes, sd.ColdMisses(), sd.DistinctLines())
		}
	}
}

// TestStackDistMissRateAtMatchesFALRU covers the byte-denominated
// wrapper on a smaller stream: MissRateAt(S) must equal the direct
// simulator's miss rate exactly (both are ratios of identical integer
// counts).
func TestStackDistMissRateAtMatchesFALRU(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const line = 32
	sd := NewStackDist(line)
	c := New(Config{SizeBytes: 8 << 10, LineBytes: line, Ways: 0})
	for i := 0; i < 20000; i++ {
		a := uint64(rng.Intn(32 << 10))
		sd.Access(a)
		c.Access(a)
	}
	if got, want := sd.MissRateAt(8<<10), c.Stats().MissRate(); got != want {
		t.Fatalf("MissRateAt(8K) = %v, FA-LRU = %v", got, want)
	}
}
