package cache

import (
	"math/bits"
)

// Sectored is a sectored (sub-block) cache: tags are kept at line
// granularity, but each line is divided into sectors with individual
// valid bits and a miss fetches only the needed sector. The organization
// trades the full-line prefetch effect (which Section 5's results show
// is valuable for blocked textures) against fill traffic: it is the
// classic alternative when large lines are wanted for tag economy but
// memory bandwidth is scarce, and the `sectored` experiment quantifies
// that trade on the texture workloads.
type Sectored struct {
	cfg         Config
	sectorBytes int

	lineShift   uint
	sectorShift uint
	sectorsPer  uint
	setMask     uint64
	ways        int
	clock       uint64

	tags  []line   // as in Cache: set-major, way-minor
	valid []uint64 // per (set,way): sector valid bitmask

	// Stats: Accesses/Misses count sector fetches; TagMisses counts
	// whole-line allocations.
	stats     Stats
	tagMisses uint64
}

// NewSectored returns a sectored cache with the given organization and
// sector size. The sector size must be a power of two in [4, LineBytes],
// and lines may have at most 64 sectors. Only LRU replacement and
// set-associative organizations are supported.
func NewSectored(cfg Config, sectorBytes int) (*Sectored, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ways == 0 {
		return nil, cfg.errf("sectored cache requires set associativity")
	}
	if cfg.Policy != LRU {
		return nil, cfg.errf("sectored cache supports LRU only")
	}
	if sectorBytes < 4 || bits.OnesCount(uint(sectorBytes)) != 1 || sectorBytes > cfg.LineBytes {
		return nil, cfg.errf("sector size %d must be a power of two in [4, %d]",
			sectorBytes, cfg.LineBytes)
	}
	if cfg.LineBytes/sectorBytes > 64 {
		return nil, cfg.errf("more than 64 sectors per line")
	}
	s := &Sectored{
		cfg:         cfg,
		sectorBytes: sectorBytes,
		lineShift:   uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		sectorShift: uint(bits.TrailingZeros(uint(sectorBytes))),
		setMask:     uint64(cfg.NumSets() - 1),
		ways:        cfg.Ways,
		tags:        make([]line, cfg.NumLines()),
		valid:       make([]uint64, cfg.NumLines()),
	}
	s.sectorsPer = s.lineShift - s.sectorShift
	for i := range s.tags {
		s.tags[i].tag = invalidTag
	}
	return s, nil
}

// Access presents one texel byte address; it returns true when both the
// line tag and the addressed sector are present.
func (s *Sectored) Access(addr uint64) bool {
	lineAddr := addr >> s.lineShift
	sector := (addr >> s.sectorShift) & ((1 << s.sectorsPer) - 1)
	sectorBit := uint64(1) << sector

	s.stats.Accesses++
	s.clock++

	set := int(lineAddr&s.setMask) * s.ways
	ways := s.tags[set : set+s.ways]
	victim := 0
	oldest := ^uint64(0)
	for i := range ways {
		if ways[i].tag == lineAddr {
			ways[i].lastUse = s.clock
			if s.valid[set+i]&sectorBit != 0 {
				return true
			}
			// Sector miss within a present line: fetch just the sector.
			s.valid[set+i] |= sectorBit
			s.stats.Misses++
			return false
		}
		if ways[i].tag == invalidTag {
			if oldest != 0 {
				oldest = 0
				victim = i
			}
			continue
		}
		if ways[i].lastUse < oldest {
			oldest = ways[i].lastUse
			victim = i
		}
	}
	// Line (tag) miss: allocate the line but fetch only this sector.
	ways[victim] = line{tag: lineAddr, lastUse: s.clock}
	s.valid[set+victim] = sectorBit
	s.stats.Misses++
	s.tagMisses++
	return false
}

// Sink returns a Sink view of the sectored cache.
func (s *Sectored) Sink() Sink {
	return sinkFunc(func(a uint64) { s.Access(a) })
}

// Stats returns the sector-granularity counters: Misses counts sector
// fetches, so BytesFetched(sectorBytes) is the fill traffic.
func (s *Sectored) Stats() Stats { return s.stats }

// TagMisses returns the number of whole-line allocations.
func (s *Sectored) TagMisses() uint64 { return s.tagMisses }

// SectorBytes returns the fetch granularity.
func (s *Sectored) SectorBytes() int { return s.sectorBytes }

// TrafficBytes returns the memory traffic of the fill stream: one sector
// per miss.
func (s *Sectored) TrafficBytes() uint64 {
	return s.stats.Misses * uint64(s.sectorBytes)
}
