package cache

import (
	"math/bits"
	"sort"
)

// StackDist is an LRU stack-distance profiler (Mattson et al.'s stack
// algorithm with a Fenwick-tree acceleration). Feeding it the texel
// address trace once yields the exact miss rate of a fully-associative
// LRU cache of *every* capacity simultaneously, which is how the
// miss-rate-versus-cache-size working-set curves (Figures 5.2, 5.6 and
// 6.2 of the paper) are produced without re-simulating per size.
//
// The profiler works at line granularity: construct it with the line size
// under study.
type StackDist struct {
	lineShift uint
	lineBytes int

	// lastTime maps a live line address to the virtual time of its most
	// recent access. Virtual times index the Fenwick tree.
	lastTime map[uint64]int32
	fenwick  []int32 // 1-based Fenwick tree over virtual time slots
	now      int32   // next virtual time to assign (1-based)

	hist     []uint64 // hist[d] = accesses with stack distance d (1-based)
	cold     uint64   // first-ever accesses (infinite distance)
	accesses uint64
}

// fenwickCap bounds the virtual-time axis. When the clock reaches it the
// profiler compacts: live lines are renumbered 1..n in recency order,
// preserving all distances. 1<<22 keeps the tree at 16 MB while making
// compactions rare even on hundred-million-access traces and leaving room
// for the ~2M distinct lines of the largest texture sets in the study.
const fenwickCap = 1 << 22

// NewStackDist returns a profiler for the given cache line size, which
// must be a power of two >= 4.
func NewStackDist(lineBytes int) *StackDist {
	if lineBytes < 4 || bits.OnesCount(uint(lineBytes)) != 1 {
		panic("cache: stack distance line size must be a power of two >= 4")
	}
	return &StackDist{
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
		lineBytes: lineBytes,
		lastTime:  make(map[uint64]int32),
		fenwick:   make([]int32, fenwickCap+1),
		now:       1,
	}
}

// LineBytes returns the line size the profiler was built for.
func (s *StackDist) LineBytes() int { return s.lineBytes }

// Access records one texel byte address.
func (s *StackDist) Access(addr uint64) {
	la := addr >> s.lineShift
	s.accesses++
	if s.now >= fenwickCap {
		s.compact()
	}
	t := s.now
	s.now++
	if lt, ok := s.lastTime[la]; ok {
		// Stack distance = number of distinct lines accessed since la's
		// last access, inclusive of la itself = live lines with last
		// access time >= lt.
		d := s.suffixCount(lt)
		s.record(d + 1) // +1 counts la itself; suffixCount excludes slot lt's own marker? see below
		s.fenwickAdd(lt, -1)
	} else {
		s.cold++
	}
	s.lastTime[la] = t
	s.fenwickAdd(t, 1)
}

// AccessBatch records every address of addrs in order, exactly as
// len(addrs) Access calls would. The per-access compaction check hoists
// to one capacity test per block: the block is split so the virtual
// clock never crosses fenwickCap inside the inner loop, which compacts
// at precisely the access the scalar kernel would — the profiler state
// is bit-identical, not merely distance-equivalent.
func (s *StackDist) AccessBatch(addrs []uint64) {
	for len(addrs) > 0 {
		room := fenwickCap - int(s.now)
		if room <= 0 {
			s.compact()
			continue
		}
		n := min(room, len(addrs))
		for _, addr := range addrs[:n] {
			la := addr >> s.lineShift
			t := s.now
			s.now++
			if lt, ok := s.lastTime[la]; ok {
				d := s.suffixCount(lt)
				s.record(d + 1)
				s.fenwickAdd(lt, -1)
			} else {
				s.cold++
			}
			s.lastTime[la] = t
			s.fenwickAdd(t, 1)
		}
		s.accesses += uint64(n)
		addrs = addrs[n:]
	}
}

// record tallies one access at stack distance d (1 = re-access of the MRU
// line).
func (s *StackDist) record(d int32) {
	for int(d) >= len(s.hist) {
		s.hist = append(s.hist, make([]uint64, 1+len(s.hist))...)
	}
	s.hist[d]++
}

// suffixCount returns the number of live markers at virtual times
// strictly greater than t.
func (s *StackDist) suffixCount(t int32) int32 {
	total := s.fenwickSum(s.now - 1)
	return total - s.fenwickSum(t)
}

func (s *StackDist) fenwickAdd(i int32, delta int32) {
	for ; i <= fenwickCap; i += i & (-i) {
		s.fenwick[i] += delta
	}
}

func (s *StackDist) fenwickSum(i int32) int32 {
	var sum int32
	for ; i > 0; i -= i & (-i) {
		sum += s.fenwick[i]
	}
	return sum
}

// timedLine pairs a live line address with its last-access virtual time,
// used only during compaction.
type timedLine struct {
	addr uint64
	t    int32
}

// compact renumbers live lines 1..n in recency order and rebuilds the
// Fenwick tree, freeing the virtual-time axis for reuse.
func (s *StackDist) compact() {
	live := make([]timedLine, 0, len(s.lastTime))
	for a, t := range s.lastTime {
		live = append(live, timedLine{a, t})
	}
	if len(live) >= fenwickCap {
		panic("cache: stack-distance profiler exceeded line capacity")
	}
	sort.Slice(live, func(i, j int) bool { return live[i].t < live[j].t })
	clear(s.fenwick)
	for i, p := range live {
		t := int32(i + 1)
		s.lastTime[p.addr] = t
		s.fenwickAdd(t, 1)
	}
	s.now = int32(len(live) + 1)
}

// Accesses returns the number of accesses profiled.
func (s *StackDist) Accesses() uint64 { return s.accesses }

// ColdMisses returns the number of first-ever line accesses.
func (s *StackDist) ColdMisses() uint64 { return s.cold }

// DistinctLines returns the number of distinct cache lines touched.
func (s *StackDist) DistinctLines() int { return len(s.lastTime) }

// MissesAt returns the number of misses a fully-associative LRU cache
// with the given capacity in lines would incur on the profiled trace.
func (s *StackDist) MissesAt(lines int) uint64 {
	if lines <= 0 {
		return s.accesses
	}
	var hits uint64
	for d := 1; d <= lines && d < len(s.hist); d++ {
		hits += s.hist[d]
	}
	return s.accesses - hits
}

// MissRateAt returns the fully-associative LRU miss rate at a cache of
// sizeBytes capacity (with the profiler's line size).
func (s *StackDist) MissRateAt(sizeBytes int) float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.MissesAt(sizeBytes/s.lineBytes)) / float64(s.accesses)
}

// Curve evaluates the miss rate at each of the given cache sizes in
// bytes, in order — one figure series per call.
func (s *StackDist) Curve(sizesBytes []int) []float64 {
	out := make([]float64, len(sizesBytes))
	for i, sz := range sizesBytes {
		out[i] = s.MissRateAt(sz)
	}
	return out
}
