package cache

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// FuzzReadTrace hardens the binary trace parser against corrupt input:
// it must either return an error or a well-formed trace, never panic.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	tr := NewTrace(0)
	for i := uint64(0); i < 100; i++ {
		tr.Access(i * 37)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("TXTR garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must round-trip to the same addresses.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again.Addrs) != len(got.Addrs) {
			t.Fatalf("round trip changed length: %d vs %d", len(again.Addrs), len(got.Addrs))
		}
		for i := range got.Addrs {
			if got.Addrs[i] != again.Addrs[i] {
				t.Fatalf("round trip changed address %d", i)
			}
		}
	})
}

// FuzzSimulateConfigsGrouped differentially fuzzes the grouped
// single-pass simulator against per-configuration serial simulation: any
// (seed, size, line, ways, policy) drawn by the fuzzer that validates
// must produce bit-identical Stats both ways. The seed corpus pins the
// paper's evaluation points: the Table 6.x / 7.1 organizations (4KB
// 2-way, 32KB 2-way, 128KB direct-mapped) across 32/64/128-byte lines.
func FuzzSimulateConfigsGrouped(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(3), uint8(2), uint8(0)) // 4KB  2-way   32B
	f.Add(uint64(2), uint8(2), uint8(4), uint8(2), uint8(0)) // 4KB  2-way   64B
	f.Add(uint64(3), uint8(5), uint8(5), uint8(2), uint8(0)) // 32KB 2-way  128B
	f.Add(uint64(4), uint8(7), uint8(5), uint8(1), uint8(0)) // 128KB direct 128B
	f.Add(uint64(5), uint8(4), uint8(4), uint8(0), uint8(0)) // 16KB FA      64B
	f.Add(uint64(6), uint8(3), uint8(3), uint8(4), uint8(1)) // 8KB 4-way FIFO (fallback)
	f.Add(uint64(7), uint8(3), uint8(5), uint8(2), uint8(2)) // 8KB 2-way random (fallback)

	f.Fuzz(func(t *testing.T, seed uint64, sizeLog, lineLog, ways, policy uint8) {
		cfg := Config{
			SizeBytes: 1 << (10 + sizeLog%8), // 1KB .. 128KB
			LineBytes: 1 << (2 + lineLog%7),  // 4B .. 256B
			Ways:      int(ways % 9),
			Policy:    Replacement(policy % 3),
		}
		if cfg.Validate() != nil {
			return // invalid draws are rejected identically by both paths
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		tr := NewTrace(2048)
		base := uint64(0)
		for i := 0; i < 2048; i++ {
			switch r := rng.Float64(); {
			case r < 0.5:
				tr.Access(uint64(rng.Intn(2 << 10)))
			case r < 0.9:
				tr.Access(base + uint64(rng.Intn(32<<10)))
			default:
				base += uint64(rng.Intn(1 << 18))
				tr.Access(base)
			}
		}
		want := tr.SimulateConfigs([]Config{cfg})
		got, err := tr.SimulateConfigsGrouped(context.Background(), []Config{cfg})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] {
			t.Fatalf("%+v: grouped %+v != serial %+v", cfg, got[0], want[0])
		}
	})
}
