package cache

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hardens the binary trace parser against corrupt input:
// it must either return an error or a well-formed trace, never panic.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	tr := NewTrace(0)
	for i := uint64(0); i < 100; i++ {
		tr.Access(i * 37)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("TXTR garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must round-trip to the same addresses.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again.Addrs) != len(got.Addrs) {
			t.Fatalf("round trip changed length: %d vs %d", len(again.Addrs), len(got.Addrs))
		}
		for i := range got.Addrs {
			if got.Addrs[i] != again.Addrs[i] {
				t.Fatalf("round trip changed address %d", i)
			}
		}
	})
}
