package cache

import (
	"context"
	"testing"

	"texcache/internal/obs"
)

// blindStream wraps a Trace behind the bare AddrStream interface so the
// stream replay paths cannot take their *Trace fast paths — the tests
// below exercise the generic per-cursor machinery a compact encoded
// trace would use.
type blindStream struct{ t *Trace }

func (b blindStream) Len() int       { return b.t.Len() }
func (b blindStream) Cursor() Cursor { return b.t.Cursor() }

// syntheticTrace builds a stream with texture-like locality: short runs
// of nearby addresses with periodic jumps between regions.
func syntheticTrace(n int) *Trace {
	t := NewTrace(n)
	addr := uint64(1 << 20)
	for i := 0; i < n; i++ {
		switch {
		case i%97 == 0:
			addr = uint64((i * 2654435761) % (1 << 24))
		case i%7 == 0:
			addr += 4096
		default:
			addr += 4
		}
		t.Access(addr)
	}
	return t
}

func TestTraceCursorYieldsExactStream(t *testing.T) {
	for _, n := range []int{0, 1, replayChunkLen - 1, replayChunkLen, replayChunkLen + 1, 3*replayChunkLen + 17} {
		tr := syntheticTrace(n)
		var got []uint64
		cur := tr.Cursor()
		for block := cur.Next(); block != nil; block = cur.Next() {
			if len(block) == 0 {
				t.Fatalf("n=%d: cursor yielded an empty non-nil block", n)
			}
			got = append(got, block...)
		}
		if len(got) != len(tr.Addrs) {
			t.Fatalf("n=%d: cursor yielded %d addresses, want %d", n, len(got), len(tr.Addrs))
		}
		for i := range got {
			if got[i] != tr.Addrs[i] {
				t.Fatalf("n=%d: address %d = %d, want %d", n, i, got[i], tr.Addrs[i])
			}
		}
	}
}

func TestTraceAccessBulkMatchesAccess(t *testing.T) {
	src := syntheticTrace(5000)
	var one, bulk Trace
	for _, a := range src.Addrs {
		one.Access(a)
	}
	for lo := 0; lo < len(src.Addrs); lo += 513 {
		bulk.AccessBulk(src.Addrs[lo:min(lo+513, len(src.Addrs))])
	}
	if len(one.Addrs) != len(bulk.Addrs) {
		t.Fatalf("bulk recorded %d addresses, Access recorded %d", len(bulk.Addrs), len(one.Addrs))
	}
	for i := range one.Addrs {
		if one.Addrs[i] != bulk.Addrs[i] {
			t.Fatalf("address %d: bulk %d != serial %d", i, bulk.Addrs[i], one.Addrs[i])
		}
	}
}

// TestReplayStreamMatchesReplay pins the core property: replaying the
// same stream through the generic cursor path produces sinks
// bit-identical to materialized Replay, for caches, the stack profiler
// and the grouped simulator alike.
func TestReplayStreamMatchesReplay(t *testing.T) {
	tr := syntheticTrace(100000)
	cfg := Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2}

	want := NewClassifying(cfg)
	tr.Replay(want.Sink())
	wantSD := NewStackDist(64)
	tr.Replay(wantSD)

	got := NewClassifying(cfg)
	gotSD := NewStackDist(64)
	ReplayStream(blindStream{tr}, got.Sink(), gotSD)

	if got.Stats() != want.Stats() {
		t.Errorf("stream stats %+v != materialized %+v", got.Stats(), want.Stats())
	}
	if gotSD.DistinctLines() != wantSD.DistinctLines() || gotSD.ColdMisses() != wantSD.ColdMisses() {
		t.Errorf("stream stack profile diverged: %d/%d lines, %d/%d cold",
			gotSD.DistinctLines(), wantSD.DistinctLines(), gotSD.ColdMisses(), wantSD.ColdMisses())
	}
}

func TestReplayStreamConcurrentMatchesSerial(t *testing.T) {
	tr := syntheticTrace(200000)
	cfgs := []Config{
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 1},
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2},
		{SizeBytes: 64 << 10, LineBytes: 128, Ways: 0},
		{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, Policy: FIFO},
	}
	ctx := context.Background()
	want := tr.SimulateConfigs(cfgs)

	got, err := SimulateConfigsStream(ctx, blindStream{tr}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if got[i] != want[i] {
			t.Errorf("%+v: stream %+v != serial %+v", cfgs[i], got[i], want[i])
		}
	}

	grouped, err := SimulateConfigsGroupedStream(ctx, blindStream{tr}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if grouped[i] != want[i] {
			t.Errorf("%+v: grouped stream %+v != serial %+v", cfgs[i], grouped[i], want[i])
		}
	}

	rates, err := MissRatesStream(ctx, blindStream{tr}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	gRates, err := MissRatesGroupedStream(ctx, blindStream{tr}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if rates[i] != want[i].MissRate() || gRates[i] != want[i].MissRate() {
			t.Errorf("%+v: stream rates %v/%v != serial %v", cfgs[i], rates[i], gRates[i], want[i].MissRate())
		}
	}
}

func TestReplayStreamConcurrentCancellation(t *testing.T) {
	tr := syntheticTrace(200000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2})
	if err := ReplayStreamConcurrent(ctx, blindStream{tr}, c.Sink()); err == nil {
		t.Error("cancelled stream replay returned nil error")
	}
	if err := ReplayStreamConcurrent(ctx, blindStream{tr}); err == nil {
		t.Error("cancelled empty-sink stream replay returned nil error")
	}
}

// TestReplayStreamMetrics verifies the generic stream paths account
// their address volume under the same replay.* metrics as the
// materialized paths.
func TestReplayStreamMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Attach(reg)
	defer obs.Detach()

	tr := syntheticTrace(50000)
	c := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2})
	ReplayStream(blindStream{tr}, c.Sink())
	if got := reg.Sub("replay").Counter("addresses").Value(); got != uint64(tr.Len()) {
		t.Errorf("replay.addresses = %d after ReplayStream, want %d", got, tr.Len())
	}
	c2 := New(Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2})
	if err := ReplayStreamConcurrent(context.Background(), blindStream{tr}, c.Sink(), c2.Sink()); err != nil {
		t.Fatal(err)
	}
	want := uint64(tr.Len()) + 2*uint64(tr.Len())
	if got := reg.Sub("replay").Counter("addresses").Value(); got != want {
		t.Errorf("replay.addresses = %d after concurrent stream pass, want %d", got, want)
	}
	if n := reg.Sub("replay").Timer("concurrent_pass").Count(); n != 1 {
		t.Errorf("replay.concurrent_pass count = %d, want 1", n)
	}
}
