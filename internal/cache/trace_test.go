package cache

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTraceRecordReplay(t *testing.T) {
	tr := NewTrace(4)
	tr.Access(100)
	tr.Access(200)
	tr.Access(100)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []uint64
	tr.Replay(SinkFunc(func(a uint64) { got = append(got, a) }))
	if !reflect.DeepEqual(got, []uint64{100, 200, 100}) {
		t.Errorf("replay delivered %v", got)
	}
}

func TestTraceSimulateConfigs(t *testing.T) {
	tr := NewTrace(0)
	for i := 0; i < 1000; i++ {
		tr.Access(uint64(i*4) % 2048)
	}
	cfgs := []Config{
		{SizeBytes: 256, LineBytes: 32, Ways: 0},
		{SizeBytes: 4096, LineBytes: 32, Ways: 0},
	}
	stats := tr.SimulateConfigs(cfgs)
	if len(stats) != 2 {
		t.Fatalf("got %d stats", len(stats))
	}
	if stats[0].Misses <= stats[1].Misses {
		t.Errorf("small cache should miss more: %v vs %v", stats[0].Misses, stats[1].Misses)
	}
	// The 4KB cache covers the 2KB footprint: only cold misses.
	if stats[1].Misses != stats[1].Cold {
		t.Errorf("oversized cache has non-cold misses: %+v", stats[1])
	}
	for _, s := range stats {
		if s.Accesses != 1000 {
			t.Errorf("accesses = %d", s.Accesses)
		}
		if s.Cold+s.Capacity+s.Conflict != s.Misses {
			t.Errorf("3C partition broken: %+v", s)
		}
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := NewTrace(0)
	for i := 0; i < 5000; i++ {
		tr.Access(uint64(rng.Int63n(1 << 30)))
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got.Addrs, tr.Addrs) {
		t.Error("round trip changed addresses")
	}
}

func TestTraceSerializationEmpty(t *testing.T) {
	tr := NewTrace(0)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty trace round-tripped to %d entries", got.Len())
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("expected magic mismatch error")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("expected error on empty input")
	}
	// Truncated body.
	tr := NewTrace(0)
	tr.Access(1)
	tr.Access(2)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes()[:buf.Len()-1])); err == nil {
		t.Error("expected error on truncated trace")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Small deltas encode small.
	if zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(0) != 0 {
		t.Error("zigzag ordering unexpected")
	}
}

func TestFALRUBasics(t *testing.T) {
	f := newFALRU(2)
	if f.access(1) {
		t.Error("cold access hit")
	}
	if !f.access(1) {
		t.Error("re-access missed")
	}
	f.access(2)
	f.access(3) // evicts 1 (LRU)
	if f.contains(1) {
		t.Error("1 should be evicted")
	}
	if !f.contains(2) || !f.contains(3) {
		t.Error("2 and 3 should be resident")
	}
	if f.len() != 2 {
		t.Errorf("len = %d", f.len())
	}
	f.reset()
	if f.len() != 0 || f.contains(2) {
		t.Error("reset did not clear")
	}
}

func TestFALRUMatchesReferenceModel(t *testing.T) {
	// Property: falru matches a naive slice-based LRU model.
	rng := rand.New(rand.NewSource(3))
	const capLines = 16
	f := newFALRU(capLines)
	var model []uint64 // model[0] is MRU
	touch := func(a uint64) bool {
		for i, v := range model {
			if v == a {
				model = append(model[:i], model[i+1:]...)
				model = append([]uint64{a}, model...)
				return true
			}
		}
		model = append([]uint64{a}, model...)
		if len(model) > capLines {
			model = model[:capLines]
		}
		return false
	}
	for i := 0; i < 50000; i++ {
		a := uint64(rng.Intn(40))
		if got, want := f.access(a), touch(a); got != want {
			t.Fatalf("step %d addr %d: falru=%v model=%v", i, a, got, want)
		}
	}
}
