package cache

// falru is a fully-associative LRU cache over line addresses with O(1)
// access. It is used directly for Ways==0 configurations and as the
// equal-size shadow cache that separates capacity from conflict misses.
//
// Entries live in a slab indexed by small ints and are chained into a
// doubly-linked recency list; a map resolves line address to slot.
type falru struct {
	capacity int
	index    map[uint64]int32
	nodes    []falruNode
	head     int32 // most recently used
	tail     int32 // least recently used
	free     int32 // head of free list (chained via next)
}

type falruNode struct {
	addr       uint64
	prev, next int32
}

const nilNode = int32(-1)

func newFALRU(capacity int) *falru {
	if capacity <= 0 {
		panic("cache: fully-associative capacity must be positive")
	}
	f := &falru{
		capacity: capacity,
		index:    make(map[uint64]int32, capacity),
		nodes:    make([]falruNode, capacity),
		head:     nilNode,
		tail:     nilNode,
	}
	f.initFreeList()
	return f
}

func (f *falru) initFreeList() {
	for i := range f.nodes {
		f.nodes[i].next = int32(i + 1)
	}
	f.nodes[len(f.nodes)-1].next = nilNode
	f.free = 0
}

func (f *falru) reset() {
	clear(f.index)
	f.head, f.tail = nilNode, nilNode
	f.initFreeList()
}

// access touches addr, returning true on hit. On miss the LRU entry is
// evicted if the cache is full and addr is inserted as MRU.
func (f *falru) access(addr uint64) bool {
	if i, ok := f.index[addr]; ok {
		f.moveToFront(i)
		return true
	}
	var slot int32
	if f.free != nilNode {
		slot = f.free
		f.free = f.nodes[slot].next
	} else {
		// Evict LRU.
		slot = f.tail
		delete(f.index, f.nodes[slot].addr)
		f.unlink(slot)
	}
	f.nodes[slot].addr = addr
	f.pushFront(slot)
	f.index[addr] = slot
	return false
}

func (f *falru) contains(addr uint64) bool {
	_, ok := f.index[addr]
	return ok
}

func (f *falru) len() int { return len(f.index) }

func (f *falru) unlink(i int32) {
	n := &f.nodes[i]
	if n.prev != nilNode {
		f.nodes[n.prev].next = n.next
	} else {
		f.head = n.next
	}
	if n.next != nilNode {
		f.nodes[n.next].prev = n.prev
	} else {
		f.tail = n.prev
	}
}

func (f *falru) pushFront(i int32) {
	n := &f.nodes[i]
	n.prev = nilNode
	n.next = f.head
	if f.head != nilNode {
		f.nodes[f.head].prev = i
	}
	f.head = i
	if f.tail == nilNode {
		f.tail = i
	}
}

func (f *falru) moveToFront(i int32) {
	if f.head == i {
		return
	}
	f.unlink(i)
	f.pushFront(i)
}
