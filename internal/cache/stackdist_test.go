package cache

import (
	"math/rand"
	"testing"
)

func TestStackDistSimpleSequence(t *testing.T) {
	s := NewStackDist(4) // line == one address unit of 4 bytes
	// Access lines A B C A: A's re-access has stack distance 3.
	s.Access(0) // A cold
	s.Access(4) // B cold
	s.Access(8) // C cold
	s.Access(0) // A, distance 3
	if s.ColdMisses() != 3 {
		t.Errorf("cold = %d, want 3", s.ColdMisses())
	}
	if s.Accesses() != 4 {
		t.Errorf("accesses = %d, want 4", s.Accesses())
	}
	// Capacity 3 lines: the re-access hits. Misses = 3 cold.
	if got := s.MissesAt(3); got != 3 {
		t.Errorf("MissesAt(3) = %d, want 3", got)
	}
	// Capacity 2 lines: the re-access misses too.
	if got := s.MissesAt(2); got != 4 {
		t.Errorf("MissesAt(2) = %d, want 4", got)
	}
}

func TestStackDistMRUHit(t *testing.T) {
	s := NewStackDist(4)
	s.Access(0)
	s.Access(0)
	s.Access(0)
	// Distance-1 re-accesses hit in any cache with >= 1 line.
	if got := s.MissesAt(1); got != 1 {
		t.Errorf("MissesAt(1) = %d, want 1", got)
	}
}

func TestStackDistMatchesDirectSimulation(t *testing.T) {
	// Property: for random traces, the profiler's miss count at capacity C
	// equals a directly simulated fully-associative LRU cache of C lines.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2000 + rng.Intn(3000)
		addrs := make([]uint64, n)
		for i := range addrs {
			switch rng.Intn(3) {
			case 0:
				addrs[i] = uint64(rng.Intn(1 << 12))
			case 1: // sequential run
				addrs[i] = uint64(i*8) % (1 << 11)
			default: // revisit a recent address
				if i > 10 {
					addrs[i] = addrs[i-1-rng.Intn(10)]
				}
			}
		}
		const lineB = 32
		s := NewStackDist(lineB)
		for _, a := range addrs {
			s.Access(a)
		}
		for _, lines := range []int{1, 2, 4, 8, 16, 64, 256} {
			c := New(Config{SizeBytes: lines * lineB, LineBytes: lineB, Ways: 0})
			for _, a := range addrs {
				c.Access(a)
			}
			want := c.Stats().Misses
			if got := s.MissesAt(lines); got != want {
				t.Fatalf("trial %d lines %d: stackdist misses %d, direct sim %d",
					trial, lines, got, want)
			}
		}
	}
}

func TestStackDistCompaction(t *testing.T) {
	// Force a compaction by exceeding the Fenwick capacity, then check
	// distances still match a direct simulation. Use a small synthetic
	// cap via many accesses over few lines: compaction triggers on the
	// clock, not on distinct lines, so a long trace suffices.
	s := NewStackDist(4)
	n := fenwickCap + 1000
	// Cycle over 8 lines: distances are all 8 after warmup.
	for i := 0; i < n; i++ {
		s.Access(uint64(i%8) * 4)
	}
	if got := s.MissesAt(8); got != 8 {
		t.Errorf("MissesAt(8) = %d, want 8 (cold only)", got)
	}
	if got := s.MissesAt(7); got != uint64(n) {
		t.Errorf("MissesAt(7) = %d, want %d (every access misses)", got, n)
	}
}

func TestStackDistCurve(t *testing.T) {
	s := NewStackDist(32)
	for i := 0; i < 10000; i++ {
		s.Access(uint64(i*4) % 4096)
	}
	sizes := []int{128, 512, 4096}
	curve := s.Curve(sizes)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Errorf("curve not monotone: %v", curve)
		}
	}
	// 4KB cache holds the whole 4KB working set: only cold misses remain.
	wantCold := float64(4096/32) / 10000
	if curve[2] != wantCold {
		t.Errorf("full-size miss rate = %v, want %v", curve[2], wantCold)
	}
}

func TestStackDistDistinctLines(t *testing.T) {
	s := NewStackDist(64)
	for a := uint64(0); a < 1024; a += 4 {
		s.Access(a)
	}
	if got := s.DistinctLines(); got != 16 {
		t.Errorf("DistinctLines = %d, want 16", got)
	}
	if s.LineBytes() != 64 {
		t.Errorf("LineBytes = %d", s.LineBytes())
	}
}

func TestStackDistInvalidLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad line size")
		}
	}()
	NewStackDist(3)
}
