package cache

import (
	"context"
	"math/rand"
	"testing"

	"texcache/internal/obs"
)

// diffTrace builds an address stream with structure at several scales —
// a hot set, a wandering medium-range pool and occasional far streaming
// jumps — so every line size and capacity sees a mix of hits, capacity
// misses, conflict misses and cold misses.
func diffTrace(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := NewTrace(n)
	base := uint64(0)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.5:
			tr.Access(uint64(rng.Intn(4 << 10)))
		case r < 0.9:
			tr.Access(base + uint64(rng.Intn(64<<10)))
		default:
			base += uint64(rng.Intn(1 << 20))
			tr.Access(base)
		}
	}
	return tr
}

// randomConfigs draws valid configurations across the interesting range:
// line sizes 4B-256B, sizes up to 256KB, every associativity including
// direct-mapped and fully-associative, and all three replacement
// policies (FIFO and random exercise the fallback path).
func randomConfigs(rng *rand.Rand, n int) []Config {
	var out []Config
	for len(out) < n {
		line := 4 << rng.Intn(7)
		lines := 1 << (1 + rng.Intn(10))
		cfg := Config{SizeBytes: line * lines, LineBytes: line}
		switch rng.Intn(4) {
		case 0:
			cfg.Ways = 0
		case 1:
			cfg.Ways = 1
		default:
			cfg.Ways = 1 << rng.Intn(4)
		}
		if cfg.Ways > lines {
			cfg.Ways = lines
		}
		if cfg.Ways > 0 {
			cfg.Policy = Replacement(rng.Intn(3))
		}
		if cfg.Validate() != nil {
			continue
		}
		out = append(out, cfg)
	}
	return out
}

// TestSimulateConfigsGroupedMatchesSerial is the differential gate of
// the grouped simulator: for randomized configurations over a structured
// stream, every Stats field — accesses, misses and the cold/capacity/
// conflict split — must equal per-configuration serial simulation
// exactly.
func TestSimulateConfigsGroupedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := diffTrace(1234, 60000)
	cfgs := randomConfigs(rng, 40)

	want := tr.SimulateConfigs(cfgs)
	got, err := tr.SimulateConfigsGrouped(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if got[i] != want[i] {
			t.Errorf("%v: grouped %+v != serial %+v", cfg, got[i], want[i])
		}
	}
}

// TestMissRatesGroupedMatchesConcurrent checks the rate-only form
// against the per-configuration concurrent replay.
func TestMissRatesGroupedMatchesConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := diffTrace(99, 30000)
	cfgs := randomConfigs(rng, 24)

	want, err := tr.MissRatesConcurrent(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.MissRatesGrouped(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if got[i] != want[i] {
			t.Errorf("%v: grouped rate %v != concurrent %v", cfg, got[i], want[i])
		}
	}
}

// TestGroupedDegenerateSweeps covers the edges: an empty configuration
// list, an empty trace, a single configuration, and a one-set
// set-associative cache (sets == 1 behaves fully associatively, so its
// misses can never classify as conflicts).
func TestGroupedDegenerateSweeps(t *testing.T) {
	ctx := context.Background()
	tr := diffTrace(5, 5000)

	if stats, err := tr.SimulateConfigsGrouped(ctx, nil); err != nil || len(stats) != 0 {
		t.Errorf("empty sweep = %v, %v", stats, err)
	}

	empty := NewTrace(0)
	stats, err := empty.SimulateConfigsGrouped(ctx, []Config{{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2}})
	if err != nil || stats[0] != (Stats{}) {
		t.Errorf("empty trace = %+v, %v", stats, err)
	}

	cfgs := []Config{
		{SizeBytes: 256, LineBytes: 64, Ways: 4}, // one set: 4 lines, 4 ways
		{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2},
	}
	want := tr.SimulateConfigs(cfgs)
	got, err := tr.SimulateConfigsGrouped(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if got[i] != want[i] {
			t.Errorf("%v: grouped %+v != serial %+v", cfgs[i], got[i], want[i])
		}
	}
	if got[0].Conflict != 0 {
		t.Errorf("one-set cache reported %d conflict misses", got[0].Conflict)
	}
}

// TestGroupedInvalidConfig verifies invalid configurations surface as
// *ConfigError before any replay work, from both grouped entry points.
func TestGroupedInvalidConfig(t *testing.T) {
	tr := diffTrace(3, 100)
	bad := []Config{{SizeBytes: 1 << 10, LineBytes: 48, Ways: 1}}
	if _, err := tr.SimulateConfigsGrouped(context.Background(), bad); !isConfigError(err) {
		t.Errorf("SimulateConfigsGrouped error = %v, want *ConfigError", err)
	}
	if _, err := tr.MissRatesGrouped(context.Background(), bad); !isConfigError(err) {
		t.Errorf("MissRatesGrouped error = %v, want *ConfigError", err)
	}
}

func isConfigError(err error) bool {
	_, ok := err.(*ConfigError)
	return ok
}

// TestGroupedCancellation: a pre-cancelled context stops the sweep and
// propagates the context error.
func TestGroupedCancellation(t *testing.T) {
	tr := diffTrace(11, 10000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.SimulateConfigsGrouped(ctx, []Config{{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2}}); err == nil {
		t.Error("cancelled grouped sweep returned nil error")
	}
}

// TestGroupsimObsCounters verifies the sweep planner accounts grouped
// configurations, fallbacks and saved passes in the groupsim namespace.
func TestGroupsimObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Attach(reg)
	defer obs.Detach()

	tr := diffTrace(21, 2000)
	cfgs := []Config{
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2},                 // grouped (32B)
		{SizeBytes: 8 << 10, LineBytes: 32, Ways: 4},                 // grouped (32B, same walk)
		{SizeBytes: 8 << 10, LineBytes: 64, Ways: 0},                 // grouped (64B)
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, Policy: FIFO},   // fallback
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, Policy: Random}, // fallback
	}
	if _, err := tr.SimulateConfigsGrouped(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	gs := reg.Sub("groupsim")
	if got := gs.Counter("grouped_configs").Value(); got != 3 {
		t.Errorf("groupsim.grouped_configs = %d, want 3", got)
	}
	if got := gs.Counter("fallback_configs").Value(); got != 2 {
		t.Errorf("groupsim.fallback_configs = %d, want 2", got)
	}
	// 3 grouped configs over 2 line-size groups: one walk saved.
	if got := gs.Counter("passes_saved").Value(); got != 1 {
		t.Errorf("groupsim.passes_saved = %d, want 1", got)
	}
}
