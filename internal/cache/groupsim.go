package cache

import (
	"context"
	"math/bits"

	"texcache/internal/obs"
)

// Single-pass all-configuration simulation (the Cheetah / Hill & Smith
// "all-associativity" algorithm). Mattson stack processing (stackdist.go)
// collapses every fully-associative LRU capacity into one trace walk;
// this file generalizes it to set-associative organizations: every sweep
// configuration that shares a line size and uses LRU replacement with
// power-of-two bit-selected sets is evaluated from one recency stack in
// one pass, so a size x associativity grid costs one walk per line size
// instead of one walk per configuration.
//
// The invariant that makes it work: under bit-selection indexing, the
// lines mapping to one set of a 2^k-set cache are exactly the lines whose
// low k line-address bits match, and per-set LRU state depends only on
// the subsequence of accesses to those lines. A reference therefore hits
// a (2^k sets, A ways) cache iff fewer than A distinct matching lines
// were referenced since its previous reference. One walk down the global
// recency stack, bucketing each intervening line by how many low address
// bits it shares with the referenced line, answers that predicate for
// every (k, A) point at once — and the walk length itself (the classic
// stack distance) answers both the fully-associative configurations and
// the equal-size fully-associative shadow that splits capacity from
// conflict misses.

// groupedCfg is one sweep configuration projected onto the group's
// recency stack: a (sets, ways) point, or a fully-associative capacity.
type groupedCfg struct {
	k     uint   // log2(NumSets); meaningful when !fa
	ways  uint64 // hit iff same-set distance < ways; meaningful when !fa
	lines uint64 // NumLines: FA capacity, and the 3C shadow capacity
	fa    bool   // fully associative (Ways == 0)

	misses   uint64 // non-cold misses (cold is shared per group)
	capacity uint64
	conflict uint64
}

// groupSim simulates every registered configuration of one line size in
// a single pass. It is a Sink; replay the trace through it once and read
// per-configuration Stats back with statsAt.
type groupSim struct {
	lineShift uint
	kmax      uint // largest log2(NumSets) across registered configs
	cfgs      []groupedCfg

	// The global recency (LRU) stack: a singly-linked list of every line
	// ever touched, most recent first, over a compact slab. Unlinking
	// needs no back pointers because every unlink is preceded by a walk
	// from the head that tracks the predecessor.
	nodes []gsNode
	head  int32

	// Line address -> stack slot, as an insert-only open-addressing table
	// (the stack never evicts, so no deletions and no tombstones). One
	// multiplicative hash plus a short linear probe beats the general map
	// on this single hottest lookup of the walk.
	htKeys  []uint64
	htSlots []int32
	htShift uint // 64 - log2(len(htSlots)); hash = (la * phi) >> htShift
	htUsed  int

	bucket []uint64 // scratch: intervening lines by shared-low-bit count
	cnt    []uint64 // scratch: suffix sums of bucket

	accesses uint64
	cold     uint64 // first-ever line references: a cold miss everywhere
}

type gsNode struct {
	addr uint64
	next int32
}

// gsHashMul is the 64-bit golden-ratio multiplier of Fibonacci hashing;
// the table start index is its product's top bits.
const gsHashMul = 0x9E3779B97F4A7C15

// newGroupSim returns an empty group for one line size. Configurations
// are registered with add before the trace is replayed.
func newGroupSim(lineBytes int) *groupSim {
	g := &groupSim{
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
		head:      nilNode,
		bucket:    make([]uint64, 1),
		cnt:       make([]uint64, 1),
	}
	g.htInit(13)
	return g
}

// htInit sizes the hash table at 2^logCap slots, all empty.
func (g *groupSim) htInit(logCap uint) {
	g.htKeys = make([]uint64, 1<<logCap)
	g.htSlots = make([]int32, 1<<logCap)
	for i := range g.htSlots {
		g.htSlots[i] = nilNode
	}
	g.htShift = 64 - logCap
	g.htUsed = 0
}

// htFind probes for la, returning its stack slot, the table index the
// probe ended at (la's index on hit, the insertion point on miss), and
// whether it was found.
func (g *groupSim) htFind(la uint64) (int32, uint64, bool) {
	mask := uint64(len(g.htSlots) - 1)
	for j := (la * gsHashMul) >> g.htShift; ; j = (j + 1) & mask {
		s := g.htSlots[j]
		if s == nilNode {
			return 0, j, false
		}
		if g.htKeys[j] == la {
			return s, j, true
		}
	}
}

// htInsert records la -> slot at the probe position htFind returned,
// growing (and re-probing) when the table passes 3/4 load.
func (g *groupSim) htInsert(la uint64, slot int32, j uint64) {
	if g.htUsed >= len(g.htSlots)/4*3 {
		old := g.htSlots
		oldKeys := g.htKeys
		oldUsed := g.htUsed
		g.htInit(64 - g.htShift + 1)
		for i, s := range old {
			if s != nilNode {
				_, jj, _ := g.htFind(oldKeys[i])
				g.htKeys[jj] = oldKeys[i]
				g.htSlots[jj] = s
			}
		}
		g.htUsed = oldUsed
		_, j, _ = g.htFind(la)
	}
	g.htKeys[j] = la
	g.htSlots[j] = slot
	g.htUsed++
}

// add registers one validated LRU configuration with the group's line
// size and returns its slot for statsAt.
func (g *groupSim) add(cfg Config) int {
	gc := groupedCfg{lines: uint64(cfg.NumLines())}
	if cfg.Ways == 0 {
		gc.fa = true
	} else {
		gc.k = uint(bits.TrailingZeros(uint(cfg.NumSets())))
		gc.ways = uint64(cfg.Ways)
		if gc.k > g.kmax {
			g.kmax = gc.k
			g.bucket = make([]uint64, g.kmax+1)
			g.cnt = make([]uint64, g.kmax+1)
		}
	}
	g.cfgs = append(g.cfgs, gc)
	return len(g.cfgs) - 1
}

// Access presents one texel byte address to every configuration in the
// group.
func (g *groupSim) Access(addr uint64) {
	la := addr >> g.lineShift
	g.accesses++
	if g.head != nilNode && g.nodes[g.head].addr == la {
		// Re-reference of the most recent line: a hit everywhere, with no
		// hash probe at all — the dominant case on texture streams, where
		// a filter footprint fetches the same line several times in a row.
		return
	}
	i, j, ok := g.htFind(la)
	if !ok {
		// First-ever reference: a cold miss in every configuration, and
		// the new line becomes the most recent. O(1) regardless of how
		// many configurations the group carries.
		g.cold++
		n := int32(len(g.nodes))
		g.nodes = append(g.nodes, gsNode{addr: la, next: g.head})
		g.head = n
		g.htInsert(la, n, j)
		return
	}

	nodes := g.nodes
	if nodes[g.head].next == i {
		// Distance 1 — one intervening line, the other common case on
		// texture streams (trilinear alternates two Mip levels). The
		// bucket collapses to a single comparison per configuration:
		// the intervening line is in la's set iff it shares at least the
		// set-index bits, and only a direct-mapped point can miss on it.
		k1 := uint(bits.TrailingZeros64(nodes[g.head].addr ^ la))
		for j := range g.cfgs {
			cf := &g.cfgs[j]
			if cf.fa {
				if cf.lines <= 1 {
					cf.misses++
					cf.capacity++
				}
				continue
			}
			if cf.ways == 1 && k1 >= cf.k {
				cf.misses++
				if cf.lines > 1 {
					cf.conflict++
				} else {
					cf.capacity++
				}
			}
		}
		nodes[g.head].next = nodes[i].next
		nodes[i].next = g.head
		g.head = i
		return
	}

	// Walk the stack down to la, bucketing each intervening line by how
	// many low line-address bits it shares with la (capped at kmax).
	// bucket is zeroed on the way out by the suffix-sum pass below, so
	// the scratch arrays cost one combined sweep, not two.
	bucket := g.bucket
	prev := g.head // predecessor of i once the walk ends (i != head here)
	for n := g.head; n != i; n = nodes[n].next {
		k := uint(bits.TrailingZeros64(nodes[n].addr ^ la))
		if k > g.kmax {
			k = g.kmax
		}
		bucket[k]++
		prev = n
	}
	// cnt[k] = lines above la that map to la's set under 2^k sets; the
	// k = 0 entry is the plain stack distance.
	cnt := g.cnt
	var sum uint64
	for k := int(g.kmax); k >= 0; k-- {
		sum += bucket[k]
		bucket[k] = 0
		cnt[k] = sum
	}
	above := sum

	for j := range g.cfgs {
		cf := &g.cfgs[j]
		if cf.fa {
			if above >= cf.lines {
				cf.misses++
				cf.capacity++
			}
			continue
		}
		if cnt[cf.k] >= cf.ways {
			cf.misses++
			// The 3C split: a miss that would hit an equal-size fully-
			// associative cache is a conflict miss, the rest are capacity.
			if above < cf.lines {
				cf.conflict++
			} else {
				cf.capacity++
			}
		}
	}

	// Move la to the top of the stack.
	g.nodes[prev].next = nodes[i].next
	g.nodes[i].next = g.head
	g.head = i
}

// AccessBatch presents a whole ordered block to the group, sparing the
// replay loops one interface call per address; the walk itself is
// unchanged, so results are bit-identical to per-address Access.
func (g *groupSim) AccessBatch(addrs []uint64) {
	for _, a := range addrs {
		g.Access(a)
	}
}

// statsAt assembles the Stats of the configuration registered at slot.
func (g *groupSim) statsAt(slot int) Stats {
	cf := &g.cfgs[slot]
	return Stats{
		Accesses: g.accesses,
		Misses:   cf.misses + g.cold,
		Cold:     g.cold,
		Capacity: cf.capacity,
		Conflict: cf.conflict,
	}
}

// sweepPlan routes each configuration of a grouped sweep to either a
// per-line-size group simulator or a per-configuration fallback cache.
type sweepPlan struct {
	groups    map[int]*groupSim // keyed by line size
	fallbacks []*Cache
	gsFor     []*groupSim // per config: its group, or nil when fallback
	slot      []int       // per config: index within its group or fallbacks
}

// planSweep validates cfgs and builds the routing plan. Configurations
// using LRU replacement are always coverable (Validate guarantees
// power-of-two set counts); FIFO and random replacement depend on more
// than the recency order, so they fall back to a dedicated Cache —
// classifying when classify is set, matching what SimulateConfigs and
// MissRatesConcurrent would have built.
func planSweep(cfgs []Config, classify bool) (*sweepPlan, error) {
	p := &sweepPlan{
		groups: map[int]*groupSim{},
		gsFor:  make([]*groupSim, len(cfgs)),
		slot:   make([]int, len(cfgs)),
	}
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if cfg.Policy == LRU {
			g := p.groups[cfg.LineBytes]
			if g == nil {
				g = newGroupSim(cfg.LineBytes)
				p.groups[cfg.LineBytes] = g
			}
			p.gsFor[i] = g
			p.slot[i] = g.add(cfg)
			continue
		}
		var c *Cache
		var err error
		if classify {
			c, err = TryNewClassifying(cfg)
		} else {
			c, err = TryNew(cfg)
		}
		if err != nil {
			return nil, err
		}
		p.slot[i] = len(p.fallbacks)
		p.fallbacks = append(p.fallbacks, c)
	}

	grouped := len(cfgs) - len(p.fallbacks)
	reg := obs.Default().Sub("groupsim")
	reg.Counter("grouped_configs").Add(uint64(grouped))
	reg.Counter("fallback_configs").Add(uint64(len(p.fallbacks)))
	if grouped > len(p.groups) {
		// Walks the grouping avoided versus per-config simulation.
		reg.Counter("passes_saved").Add(uint64(grouped - len(p.groups)))
	}
	return p, nil
}

// sinks returns every simulator of the plan as a replayable Sink list.
func (p *sweepPlan) sinks() []Sink {
	out := make([]Sink, 0, len(p.groups)+len(p.fallbacks))
	for _, g := range p.groups {
		out = append(out, g)
	}
	for _, c := range p.fallbacks {
		out = append(out, c.Sink())
	}
	return out
}

// stats gathers per-configuration statistics, index-aligned with the
// planned configuration list.
func (p *sweepPlan) stats() []Stats {
	out := make([]Stats, len(p.gsFor))
	for i, g := range p.gsFor {
		if g != nil {
			out[i] = g.statsAt(p.slot[i])
		} else {
			out[i] = p.fallbacks[p.slot[i]].Stats()
		}
	}
	return out
}

// SimulateConfigsGrouped is the single-pass form of SimulateConfigs: it
// groups every configuration sharing a line size and derives all of
// their statistics — hits, misses and the cold/capacity/conflict split —
// from one generalized stack simulation per line size, falling back to a
// per-configuration classifying cache only for replacement policies the
// stack algorithm cannot cover (FIFO, random). Results are bit-identical
// to SimulateConfigs and index-aligned with cfgs; only the work changes,
// from one trace walk per configuration to one per distinct line size.
// Invalid configurations surface as *ConfigError before any replay.
func (t *Trace) SimulateConfigsGrouped(ctx context.Context, cfgs []Config) ([]Stats, error) {
	return SimulateConfigsGroupedStream(ctx, t, cfgs)
}

// MissRatesGrouped is the single-pass form of MissRatesConcurrent: the
// miss rate of every configuration, index-aligned with cfgs, from one
// grouped stack simulation per line size (plain non-classifying caches
// on the fallback path, as MissRatesConcurrent builds).
func (t *Trace) MissRatesGrouped(ctx context.Context, cfgs []Config) ([]float64, error) {
	return MissRatesGroupedStream(ctx, t, cfgs)
}
