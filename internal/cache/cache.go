// Package cache implements the trace-driven texture-cache simulator at the
// heart of the study: a set-associative cache with LRU replacement,
// parameterized by total size, line size and associativity, with optional
// cold/capacity/conflict (3C) miss classification and an LRU stack-distance
// profiler that yields fully-associative miss rates at every cache size in
// a single pass over the trace.
//
// Addresses are byte addresses in the simulated texture memory. Texels are
// 32 bits and all layouts emit 4-byte-aligned addresses, so a texel access
// never straddles a cache line.
package cache

import (
	"fmt"
	"math/bits"
)

// Sink consumes a stream of texel byte addresses. The fragment generator
// calls Access once per texel fetch, mirroring the paper's simulator where
// "whenever the software-based fragment generator accesses a texel from
// memory, it also makes a call to the cache simulator".
type Sink interface {
	Access(addr uint64)
}

// Replacement selects the victim policy of a set-associative cache.
type Replacement int

const (
	// LRU evicts the least recently used way (the paper's policy).
	LRU Replacement = iota
	// FIFO evicts the oldest-filled way regardless of use.
	FIFO
	// Random evicts a deterministic-pseudo-random way.
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return "LRU"
	}
}

// Config describes a cache organization by the three parameters the paper
// studies: cache size, line size and associativity, plus the replacement
// policy (LRU in all of the paper's experiments; the alternatives exist
// for the ablation study).
type Config struct {
	// SizeBytes is the total data capacity in bytes. Must be a power of
	// two and a multiple of LineBytes.
	SizeBytes int
	// LineBytes is the line (block transfer) size in bytes. Must be a
	// power of two, at least 4.
	LineBytes int
	// Ways is the set associativity: 1 for direct mapped, N for N-way,
	// and 0 for fully associative.
	Ways int
	// Policy is the replacement policy. Non-LRU policies require a
	// set-associative organization (Ways > 0).
	Policy Replacement
}

// ConfigError reports a cache configuration rejected by validation. All
// validation paths in this package (Config.Validate, the checked
// constructors, NewSectored) return errors of this type, so callers can
// distinguish bad input from simulation failures with errors.As.
type ConfigError struct {
	// Config is the rejected configuration.
	Config Config
	// Reason explains what was wrong with it.
	Reason string
}

func (e *ConfigError) Error() string { return "cache: invalid config: " + e.Reason }

// errf builds a *ConfigError for the configuration.
func (c Config) errf(format string, args ...any) *ConfigError {
	return &ConfigError{Config: c, Reason: fmt.Sprintf(format, args...)}
}

// Validate reports whether the configuration is internally consistent.
// A non-nil result is always a *ConfigError.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || bits.OnesCount(uint(c.SizeBytes)) != 1 {
		return c.errf("size %d is not a positive power of two", c.SizeBytes)
	}
	if c.LineBytes < 4 || bits.OnesCount(uint(c.LineBytes)) != 1 {
		return c.errf("line size %d is not a power of two >= 4", c.LineBytes)
	}
	if c.SizeBytes < c.LineBytes {
		return c.errf("size %d smaller than line %d", c.SizeBytes, c.LineBytes)
	}
	if c.Ways < 0 {
		return c.errf("negative associativity %d", c.Ways)
	}
	if c.Policy != LRU && c.Ways == 0 {
		return c.errf("%v replacement requires set associativity", c.Policy)
	}
	if c.Policy < LRU || c.Policy > Random {
		return c.errf("unknown replacement policy %d", int(c.Policy))
	}
	if c.Ways > 0 {
		if c.NumLines()%c.Ways != 0 {
			return c.errf("%d lines not divisible by %d ways", c.NumLines(), c.Ways)
		}
		if bits.OnesCount(uint(c.NumSets())) != 1 {
			return c.errf("%d sets is not a power of two", c.NumSets())
		}
	}
	return nil
}

// NumLines returns the number of cache lines.
func (c Config) NumLines() int { return c.SizeBytes / c.LineBytes }

// NumSets returns the number of sets (1 when fully associative).
func (c Config) NumSets() int {
	if c.Ways == 0 {
		return 1
	}
	return c.NumLines() / c.Ways
}

// String renders the configuration in the style used by the paper's
// figures, e.g. "32KB 2-way 128B lines".
func (c Config) String() string {
	assoc := "fully-assoc"
	switch {
	case c.Ways == 1:
		assoc = "direct-mapped"
	case c.Ways > 1:
		assoc = fmt.Sprintf("%d-way", c.Ways)
	}
	s := fmt.Sprintf("%s %s %dB lines", FormatSize(c.SizeBytes), assoc, c.LineBytes)
	if c.Policy != LRU {
		s += " " + c.Policy.String()
	}
	return s
}

// FormatSize renders a byte count as the usual KB/MB shorthand.
func FormatSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Stats accumulates access and miss counts. When classification is
// enabled, Cold+Capacity+Conflict == Misses.
type Stats struct {
	Accesses uint64
	Misses   uint64
	Cold     uint64
	Capacity uint64
	Conflict uint64
}

// MissRate returns Misses/Accesses, or 0 for an empty trace.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// ColdRate returns Cold/Accesses, or 0 for an empty trace.
func (s Stats) ColdRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Cold) / float64(s.Accesses)
}

// BytesFetched returns the memory traffic implied by the misses for the
// given line size: every miss fills one full line from memory.
func (s Stats) BytesFetched(lineBytes int) uint64 {
	return s.Misses * uint64(lineBytes)
}

// line holds one cache line's tag and LRU timestamp. A valid line has
// tag != invalidTag. (The sectored cache keeps line metadata in this
// form; Cache itself flattens it into parallel tag/stamp arrays.)
type line struct {
	tag     uint64
	lastUse uint64
}

const invalidTag = ^uint64(0)

// Cache is a set-associative LRU cache simulator. The zero value is not
// usable; construct with New or NewClassifying.
//
// Line metadata is stored structure-of-arrays: the hit scan — the hot
// path a sweep runs once per texel per configuration — touches only the
// contiguous tags array, and recency stamps are read solely on the miss
// path when a victim must be chosen.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      int
	// tags and stamps are parallel arrays of NumLines entries; set i
	// occupies [i*ways, (i+1)*ways). stamps holds the last-use clock
	// under LRU and the fill clock under FIFO.
	tags       []uint64
	stamps     []uint64
	clock      uint64
	stats      Stats
	full       *falru          // fully-associative path (Ways == 0)
	shadow     *falru          // equal-size FA shadow for 3C classification
	everLoaded map[uint64]bool // lines ever resident, for cold-miss detection

	// onMiss, when non-nil, observes the byte address of every line
	// filled from memory — the input stream for DRAM and prefetch
	// timing models.
	onMiss func(lineByteAddr uint64)

	// rng drives Random replacement; deterministic so runs reproduce.
	rng uint64
}

// New returns a cache simulator for cfg. It panics if cfg is invalid,
// since configurations are experiment constants, not runtime input.
func New(cfg Config) *Cache {
	c, err := TryNew(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// TryNew is like New but reports invalid configurations as errors.
func TryNew(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		ways:      cfg.Ways,
		rng:       0x9E3779B97F4A7C15,
	}
	if cfg.Ways == 0 {
		c.full = newFALRU(cfg.NumLines())
	} else {
		c.setMask = uint64(cfg.NumSets() - 1)
		c.tags = make([]uint64, cfg.NumLines())
		c.stamps = make([]uint64, cfg.NumLines())
		for i := range c.tags {
			c.tags[i] = invalidTag
		}
	}
	return c, nil
}

// NewClassifying returns a cache simulator that additionally classifies
// every miss as cold, capacity or conflict using the standard 3C model:
// cold misses touch a line never resident before; of the remainder, a miss
// that would also miss in a fully-associative LRU cache of equal size is a
// capacity miss, and the rest are conflict misses.
func NewClassifying(cfg Config) *Cache {
	c, err := TryNewClassifying(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// TryNewClassifying is like NewClassifying but reports invalid
// configurations as errors (*ConfigError) instead of panicking.
func TryNewClassifying(cfg Config) (*Cache, error) {
	c, err := TryNew(cfg)
	if err != nil {
		return nil, err
	}
	c.everLoaded = make(map[uint64]bool)
	if c.full == nil {
		c.shadow = newFALRU(cfg.NumLines())
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// Flush invalidates all lines but keeps statistics, mirroring the paper's
// note that "the caches can be flushed if necessary when the textures
// change".
func (c *Cache) Flush() {
	if c.full != nil {
		c.full.reset()
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if c.shadow != nil {
		c.shadow.reset()
	}
}

// Access presents one texel byte address to the cache and returns true on
// a hit. Use Sink for the callback-style view that Trace.Replay expects.
func (c *Cache) Access(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	c.stats.Accesses++
	c.clock++

	var hit bool
	if c.full != nil {
		hit = c.full.access(lineAddr)
	} else {
		hit = c.accessSetAssoc(lineAddr)
	}
	if hit {
		if c.shadow != nil {
			c.shadow.access(lineAddr)
		}
		return true
	}
	c.stats.Misses++
	if c.onMiss != nil {
		c.onMiss(lineAddr << c.lineShift)
	}
	if c.everLoaded != nil {
		cold := !c.everLoaded[lineAddr]
		if cold {
			c.everLoaded[lineAddr] = true
		}
		switch {
		case cold:
			c.stats.Cold++
		case c.shadow == nil: // fully associative: no conflicts by definition
			c.stats.Capacity++
		case c.shadow.access(lineAddr):
			c.stats.Conflict++
		default:
			c.stats.Capacity++
		}
		if c.shadow != nil && cold {
			c.shadow.access(lineAddr)
		}
	}
	return false
}

// AccessBatch presents every address of addrs to the cache in order,
// exactly as len(addrs) Access calls would, and returns the number of
// hits. The replay paths hand whole blocks here instead of making one
// interface call per address. The dominant sweep shape — a set-
// associative LRU cache without 3C classification or a miss observer —
// takes a specialized loop that keeps the tag-array geometry and the
// clock in registers; every other organization falls back to the scalar
// kernel. Final cache state and statistics are bit-identical either way.
func (c *Cache) AccessBatch(addrs []uint64) int {
	if c.full != nil || c.everLoaded != nil || c.onMiss != nil || c.cfg.Policy != LRU {
		hits := 0
		for _, a := range addrs {
			if c.Access(a) {
				hits++
			}
		}
		return hits
	}
	shift, mask, ways := c.lineShift, c.setMask, c.ways
	tags, stamps := c.tags, c.stamps
	clock := c.clock
	hits := 0
	for _, addr := range addrs {
		lineAddr := addr >> shift
		clock++
		base := int(lineAddr&mask) * ways
		set := tags[base : base+ways : base+ways]
		victim := -1
		hit := false
		for i, tag := range set {
			if tag == lineAddr {
				stamps[base+i] = clock
				hit = true
				break
			}
			if tag == invalidTag && victim == -1 {
				victim = i
			}
		}
		if hit {
			hits++
			continue
		}
		if victim == -1 {
			st := stamps[base : base+ways : base+ways]
			oldest := st[0]
			victim = 0
			for i := 1; i < len(st); i++ {
				if st[i] < oldest {
					oldest = st[i]
					victim = i
				}
			}
		}
		set[victim] = lineAddr
		stamps[base+victim] = clock
	}
	c.clock = clock
	c.stats.Accesses += uint64(len(addrs))
	c.stats.Misses += uint64(len(addrs) - hits)
	return hits
}

func (c *Cache) accessSetAssoc(lineAddr uint64) bool {
	base := int(lineAddr&c.setMask) * c.ways
	tags := c.tags[base : base+c.ways : base+c.ways]
	victim := -1
	for i, tag := range tags {
		if tag == lineAddr {
			// A hit refreshes recency under LRU only; FIFO and random
			// ignore use.
			if c.cfg.Policy == LRU {
				c.stamps[base+i] = c.clock
			}
			return true
		}
		if tag == invalidTag && victim == -1 {
			// The first invalid way is always the preferred victim.
			victim = i
		}
	}
	if victim == -1 {
		if c.cfg.Policy == Random {
			victim = int(c.rngNext() % uint64(c.ways))
		} else {
			// LRU and FIFO both evict the smallest timestamp (unique,
			// since the clock advances every access); they differ in
			// whether hits refreshed it above.
			stamps := c.stamps[base : base+c.ways]
			oldest := stamps[0]
			victim = 0
			for i := 1; i < len(stamps); i++ {
				if stamps[i] < oldest {
					oldest = stamps[i]
					victim = i
				}
			}
		}
	}
	tags[victim] = lineAddr
	c.stamps[base+victim] = c.clock
	return false
}

// rngNext advances the deterministic xorshift used by Random replacement.
func (c *Cache) rngNext() uint64 {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return c.rng
}

// Contains reports whether the line holding addr is currently resident.
// It does not touch LRU state or statistics; intended for tests.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	if c.full != nil {
		return c.full.contains(lineAddr)
	}
	set := int(lineAddr&c.setMask) * c.ways
	for _, tag := range c.tags[set : set+c.ways] {
		if tag == lineAddr {
			return true
		}
	}
	return false
}

// SetMissObserver installs fn to receive the byte address of every line
// fill (miss), in access order. Pass nil to remove. The observer feeds
// the DRAM and prefetch timing models, which need the fill stream rather
// than the access stream.
func (c *Cache) SetMissObserver(fn func(lineByteAddr uint64)) { c.onMiss = fn }

// cacheSink adapts a Cache to the Sink interface, discarding the hit
// result that Access returns. It also satisfies the replay loops' batch
// fast path, so a cache behind a Sink still consumes whole blocks.
type cacheSink struct{ c *Cache }

func (s cacheSink) Access(addr uint64) { s.c.Access(addr) }

func (s cacheSink) AccessBatch(addrs []uint64) { s.c.AccessBatch(addrs) }

// Sink returns a Sink view of the cache for use with Trace.Replay and the
// fragment generator's access callback.
func (c *Cache) Sink() Sink { return cacheSink{c} }

// sinkFunc lets a plain function act as a Sink.
type sinkFunc func(uint64)

func (f sinkFunc) Access(addr uint64) { f(addr) }

// SinkFunc wraps fn as a Sink.
func SinkFunc(fn func(uint64)) Sink { return sinkFunc(fn) }

// Tee returns a Sink that forwards every access to all of sinks.
func Tee(sinks ...Sink) Sink {
	return sinkFunc(func(addr uint64) {
		for _, s := range sinks {
			s.Access(addr)
		}
	})
}

// Discard is a Sink that ignores all accesses.
var Discard Sink = sinkFunc(func(uint64) {})
