// Package perf implements the Section 7 machine model: a pipelined
// fragment generator at a fixed clock reading multiple texels per cycle
// from the SRAM texture cache, with memory bandwidth derived from miss
// rates and rendering performance derived from whether the miss latency
// is hidden by prefetching.
package perf

// Model holds the machine constants of Section 7.1.
type Model struct {
	// ClockHz is the fragment generator clock (the paper assumes 100 MHz
	// ASIC technology).
	ClockHz float64
	// TexelsPerCycle is the cache read bandwidth in texels (the paper's
	// banked cache reads 4).
	TexelsPerCycle int
	// TexelsPerFragment is the filter cost: 8 for trilinear Mip Mapping.
	TexelsPerFragment int
	// TexelBytes is the texel size (32 bits).
	TexelBytes int
	// MissLatencyCycles is the time to fill one line from DRAM when the
	// latency is not hidden ("roughly fifty 10ns cycles for a 128 byte
	// cache line" — scaled by line size).
	MissLatencyCyclesPer128B float64
}

// Default returns the paper's machine: 100 MHz, 4 texels/cycle, trilinear
// filtering, 32-bit texels, ~50-cycle 128-byte fills.
func Default() Model {
	return Model{
		ClockHz:                  100e6,
		TexelsPerCycle:           4,
		TexelsPerFragment:        8,
		TexelBytes:               4,
		MissLatencyCyclesPer128B: 50,
	}
}

// PeakFragmentsPerSecond returns the compute-limited fragment rate: the
// paper's 50 million textured fragments per second for the default model.
func (m Model) PeakFragmentsPerSecond() float64 {
	return m.ClockHz * float64(m.TexelsPerCycle) / float64(m.TexelsPerFragment)
}

// BandwidthBytesPerSecond converts a cache miss rate into the DRAM
// bandwidth needed to sustain peak fragment rate with the given line
// size: every miss fills one line.
func (m Model) BandwidthBytesPerSecond(missRate float64, lineBytes int) float64 {
	accessesPerSec := m.PeakFragmentsPerSecond() * float64(m.TexelsPerFragment)
	return missRate * accessesPerSec * float64(lineBytes)
}

// UncachedBandwidthBytesPerSecond returns the requirement of an
// equivalent-performance system with no cache: every texel lookup goes to
// dedicated DRAM (the paper's 1.5 GB/s reference point).
func (m Model) UncachedBandwidthBytesPerSecond() float64 {
	return float64(m.TexelBytes) * float64(m.TexelsPerFragment) * m.PeakFragmentsPerSecond()
}

// BandwidthReduction returns the ratio of the uncached requirement to the
// cached requirement — the paper's headline three-to-fifteen-times
// reduction.
func (m Model) BandwidthReduction(missRate float64, lineBytes int) float64 {
	b := m.BandwidthBytesPerSecond(missRate, lineBytes)
	if b == 0 {
		return 0
	}
	return m.UncachedBandwidthBytesPerSecond() / b
}

// missLatencyCycles scales the 128-byte fill latency to a line size:
// setup cost dominates, the burst scales with length.
func (m Model) missLatencyCycles(lineBytes int) float64 {
	const setup = 18 // cycles of RAS/CAS setup within the 50-cycle fill
	burstPer128 := m.MissLatencyCyclesPer128B - setup
	if burstPer128 < 0 {
		// A fill faster than the setup floor: treat it all as setup so
		// the latency never goes negative for short lines.
		return m.MissLatencyCyclesPer128B
	}
	return setup + burstPer128*float64(lineBytes)/128
}

// SustainedFragmentsPerSecond returns the rendering performance at the
// given miss rate. With latencyHidden (the Talisman-style prefetch of
// Section 7.1.1) the pipeline runs at peak as long as bandwidth is met;
// without it, every miss stalls the pipeline for the full fill latency.
func (m Model) SustainedFragmentsPerSecond(missRate float64, lineBytes int, latencyHidden bool) float64 {
	if latencyHidden {
		return m.PeakFragmentsPerSecond()
	}
	cyclesPerFragment := float64(m.TexelsPerFragment) / float64(m.TexelsPerCycle)
	missesPerFragment := missRate * float64(m.TexelsPerFragment)
	cyclesPerFragment += missesPerFragment * m.missLatencyCycles(lineBytes)
	return m.ClockHz / cyclesPerFragment
}
