package perf

import (
	"math"
	"testing"
)

func TestPeakFragmentRate(t *testing.T) {
	m := Default()
	// The paper: 100 MHz * 4 texels/cycle / 8 texels/fragment = 50M/s.
	if got := m.PeakFragmentsPerSecond(); got != 50e6 {
		t.Errorf("peak = %v, want 50e6", got)
	}
	// One texel per cycle would limit to 12.5M (Section 7.1.1).
	m.TexelsPerCycle = 1
	if got := m.PeakFragmentsPerSecond(); got != 12.5e6 {
		t.Errorf("1 texel/cycle peak = %v, want 12.5e6", got)
	}
}

func TestUncachedBandwidth(t *testing.T) {
	// 4 bytes/texel * 8 texels/fragment * 50M fragments/s = 1.6 GB/s
	// (the paper rounds to 1.5 GB/s).
	if got := Default().UncachedBandwidthBytesPerSecond(); got != 1.6e9 {
		t.Errorf("uncached = %v, want 1.6e9", got)
	}
}

func TestBandwidthScalesWithMissRateAndLine(t *testing.T) {
	m := Default()
	b1 := m.BandwidthBytesPerSecond(0.01, 32)
	// 1% of 400M accesses/s * 32B = 128 MB/s.
	if math.Abs(b1-128e6) > 1 {
		t.Errorf("bandwidth = %v, want 128e6", b1)
	}
	if b2 := m.BandwidthBytesPerSecond(0.02, 32); math.Abs(b2-2*b1) > 1 {
		t.Error("bandwidth not linear in miss rate")
	}
	if b3 := m.BandwidthBytesPerSecond(0.01, 64); math.Abs(b3-2*b1) > 1 {
		t.Error("bandwidth not linear in line size")
	}
}

func TestBandwidthReductionReproducesTable71(t *testing.T) {
	m := Default()
	// Table 7.1 pairs (miss rate in parentheses -> MB/s) from the 32KB
	// column: Flight 128B 0.87% -> 425 MB/s; Town 32B 0.81% -> 99 MB/s.
	flight := m.BandwidthBytesPerSecond(0.0087, 128)
	if math.Abs(flight-445e6) > 10e6 {
		t.Errorf("flight bandwidth = %v MB/s, want ~425-445", flight/1e6)
	}
	town := m.BandwidthBytesPerSecond(0.0081, 32)
	if math.Abs(town-103e6) > 6e6 {
		t.Errorf("town bandwidth = %v MB/s, want ~99-104", town/1e6)
	}
	// The paper's headline: 32KB-cache bandwidths of 100-450 MB/s are a
	// 3x to 15x reduction from the uncached 1.5 GB/s.
	if r := m.BandwidthReduction(0.0087, 128); r < 3 || r > 4.5 {
		t.Errorf("flight reduction = %v, want ~3.5x", r)
	}
	if r := m.BandwidthReduction(0.0081, 32); r < 13 || r > 17 {
		t.Errorf("town reduction = %v, want ~15x", r)
	}
	if m.BandwidthReduction(0, 32) != 0 {
		t.Error("zero miss rate should report 0 (undefined) reduction")
	}
}

func TestSustainedRateLatencyHidden(t *testing.T) {
	m := Default()
	if got := m.SustainedFragmentsPerSecond(0.05, 128, true); got != m.PeakFragmentsPerSecond() {
		t.Error("hidden latency should sustain peak")
	}
}

func TestSustainedRateStalls(t *testing.T) {
	m := Default()
	peak := m.PeakFragmentsPerSecond()
	got := m.SustainedFragmentsPerSecond(0.02, 128, false)
	if got >= peak {
		t.Errorf("unhidden latency should be below peak: %v", got)
	}
	// 2% misses * 8 accesses = 0.16 misses/fragment * 50 cycles = 8
	// stall cycles on top of 2 compute cycles: 10 cycles/fragment = 10M/s.
	if math.Abs(got-10e6) > 1e5 {
		t.Errorf("stalled rate = %v, want ~10e6", got)
	}
	// Zero miss rate converges to peak.
	if z := m.SustainedFragmentsPerSecond(0, 128, false); z != peak {
		t.Errorf("zero-miss stalled rate = %v, want peak", z)
	}
	// Higher clock makes the un-hidden penalty relatively worse
	// (Section 7.1.1: "more pronounced as we increase the clock rate").
	m2 := Default()
	m2.ClockHz *= 2
	frac1 := got / peak
	frac2 := m2.SustainedFragmentsPerSecond(0.02, 128, false) / m2.PeakFragmentsPerSecond()
	if frac2 != frac1 {
		// Same cycle counts, so the fraction is clock-invariant in this
		// model; the absolute gap doubles.
		t.Errorf("fraction changed: %v vs %v", frac1, frac2)
	}
}

func TestMissLatencyScalesWithLine(t *testing.T) {
	m := Default()
	l32 := m.missLatencyCycles(32)
	l128 := m.missLatencyCycles(128)
	if l128 != 50 {
		t.Errorf("128B latency = %v, want 50", l128)
	}
	if l32 >= l128 || l32 <= 18 {
		t.Errorf("32B latency = %v, want between setup and 50", l32)
	}
}

func TestMissLatencyNeverNegative(t *testing.T) {
	m := Default()
	m.MissLatencyCyclesPer128B = 10 // below the 18-cycle setup floor
	if l := m.missLatencyCycles(32); l < 0 || l > 10 {
		t.Errorf("short-fill latency = %v, want within [0, 10]", l)
	}
	if r := m.SustainedFragmentsPerSecond(0.01, 32, false); r <= 0 || r > m.PeakFragmentsPerSecond() {
		t.Errorf("sustained rate = %v out of range", r)
	}
}
