// Package arch is a deterministic cycle-level model of the prefetching
// texture-cache architecture of Igehy, Eldridge & Proudfoot 1998, the
// follow-up design Section 7 of Hakura & Gupta gestures at. The texture
// unit is a four-queue pipeline:
//
//	fragments -> [fragment FIFO] -> tags -> [request FIFO] -> memory
//	                                  \-> [reorder buffer] <- fills
//	          <- [result FIFO] <- filter <-/
//
// Every texel access tag-checks at the front of the fragment FIFO.
// Hits never stall: the access rides the FIFO and reads the cache when
// it reaches the filter. Misses enqueue a fill request (bounded by the
// miss-request FIFO), reserve a reorder-buffer slot for the returning
// line, and are hidden as long as the FIFO transit time covers the fill
// latency. A blocking-cache baseline — the paper's Section 6 machine,
// which stalls the whole pipeline on every miss — runs through the same
// cycle recurrence with the fragment FIFO collapsed, so the two
// organizations are directly comparable on identical traces.
//
// The model is timing-only: tag state advances at front time exactly as
// in plain replay (the fill is in flight before the consuming fragment
// arrives), so the miss pattern is bit-identical to cache.New over the
// same stream and only the cycle counts differ between pipelines.
// Internally times advance in access units (TexelsPerCycle units per
// pipeline cycle) to keep the arithmetic integral and deterministic.
package arch

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/obs"
)

// Pipeline selects the texture-unit organization the cycle model runs.
type Pipeline int

const (
	// Blocking is the baseline: the pipeline stalls for the full fill
	// round trip on every miss, so execution time grows linearly with
	// memory latency.
	Blocking Pipeline = iota
	// Prefetch is the Igehy-style pipeline: misses issue fills at tag
	// time and the fragment FIFO gives them lead time to complete.
	Prefetch
)

// String returns the wire name of the pipeline.
func (p Pipeline) String() string {
	if p == Prefetch {
		return "prefetch"
	}
	return "blocking"
}

// Paper-point defaults: the Section 7 fragment machine (4 texel reads
// per cycle, 8-texel trilinear fragments) in front of a memory system
// whose 100-cycle fill latency dominates its 4-cycle line transfer —
// the latency-tolerance regime the Igehy experiment sweeps.
const (
	DefaultFragmentFIFO      = 64
	DefaultRequestFIFO       = 32
	DefaultReorderBuffer     = 32
	DefaultResultFIFO        = 8
	DefaultTexelsPerCycle    = 4
	DefaultTexelsPerFragment = 8
	DefaultFillLatency       = 100
	DefaultFillOccupancy     = 4
)

// maxQueue bounds every queue depth and timing parameter; the limit is
// a sanity cap on simulator memory, far beyond any plausible hardware.
const maxQueue = 1 << 16

// Config describes one texture-unit organization for the cycle model.
type Config struct {
	// Cache is the tag-array organization shared by both pipelines.
	Cache cache.Config
	// Pipeline selects Blocking or Prefetch.
	Pipeline Pipeline
	// FragmentFIFO is the fragment queue depth in fragments: the lead
	// the tag stage runs ahead of the filter stage. Zero under Prefetch
	// degenerates to the blocking timing (tag and filter in lockstep).
	FragmentFIFO int
	// RequestFIFO bounds outstanding fill requests; when it fills, tag
	// checking stalls until the memory channel drains a request.
	RequestFIFO int
	// ReorderBuffer bounds fills awaiting consumption: each miss
	// reserves a slot at tag time and frees it when the filter consumes
	// the filled line.
	ReorderBuffer int
	// ResultFIFO is the filtered-fragment output queue depth in
	// fragments; zero means the filter hands each fragment off before
	// starting the next.
	ResultFIFO int
	// TexelsPerCycle is the cache read rate (4 in the paper's machine).
	TexelsPerCycle int
	// TexelsPerFragment is the filter cost (8 for trilinear).
	TexelsPerFragment int
	// FillLatency is the cycles from fill issue until the line starts
	// arriving.
	FillLatency int
	// FillOccupancy is the cycles one fill occupies the single memory
	// channel; back-to-back fills serialize on it.
	FillOccupancy int
}

// Default returns the paper-point machine for the given cache and
// pipeline.
func Default(c cache.Config, p Pipeline) Config {
	return Config{
		Cache:             c,
		Pipeline:          p,
		FragmentFIFO:      DefaultFragmentFIFO,
		RequestFIFO:       DefaultRequestFIFO,
		ReorderBuffer:     DefaultReorderBuffer,
		ResultFIFO:        DefaultResultFIFO,
		TexelsPerCycle:    DefaultTexelsPerCycle,
		TexelsPerFragment: DefaultTexelsPerFragment,
		FillLatency:       DefaultFillLatency,
		FillOccupancy:     DefaultFillOccupancy,
	}
}

// ConfigError reports a rejected architecture configuration; Validate
// (and everything that calls it) returns errors of this type, so
// callers can distinguish bad input from simulation failures with
// errors.As. Field uses the wire names of the architecture request
// ("fragment_fifo", "fill_latency", ...).
type ConfigError struct {
	// Config is the rejected configuration.
	Config Config
	// Field names the parameter at fault, in wire form.
	Field string
	// Reason explains what was wrong with it.
	Reason string
}

func (e *ConfigError) Error() string {
	return "arch: invalid config: " + e.Field + ": " + e.Reason
}

// errf builds a *ConfigError for the configuration.
func (c Config) errf(field, format string, args ...any) *ConfigError {
	return &ConfigError{Config: c, Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate reports whether the configuration is usable. A non-nil
// result is a *ConfigError naming the field, except for cache problems,
// which pass through as the cache package's own *cache.ConfigError.
func (c Config) Validate() error {
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.Pipeline != Blocking && c.Pipeline != Prefetch {
		return c.errf("pipeline", "unknown pipeline %d: want Blocking or Prefetch", int(c.Pipeline))
	}
	for _, f := range []struct {
		name  string
		v, lo int
	}{
		{"fragment_fifo", c.FragmentFIFO, 0},
		{"request_fifo", c.RequestFIFO, 1},
		{"reorder_buffer", c.ReorderBuffer, 1},
		{"result_fifo", c.ResultFIFO, 0},
		{"texels_per_cycle", c.TexelsPerCycle, 1},
		{"texels_per_fragment", c.TexelsPerFragment, 1},
		{"fill_latency", c.FillLatency, 0},
		{"fill_occupancy", c.FillOccupancy, 1},
	} {
		if f.v < f.lo {
			return c.errf(f.name, "%d: must be >= %d", f.v, f.lo)
		}
		if f.v > maxQueue {
			return c.errf(f.name, "%d: must be <= %d", f.v, maxQueue)
		}
	}
	return nil
}

// Result reports the timing outcome of running one frame's texel
// stream through the pipeline.
type Result struct {
	// Accesses and Misses describe the trace against the tag array;
	// they are identical across pipelines sharing a Timeline.
	Accesses uint64
	Misses   uint64
	// Fragments is the number of filtered fragments retired.
	Fragments uint64
	// TotalCyc is when the last fragment leaves the result FIFO;
	// ComputeCyc is the zero-miss lower bound (the raw read rate);
	// StallCyc is their difference, the cycles memory cost the machine.
	TotalCyc   uint64
	ComputeCyc uint64
	StallCyc   uint64
	// MaxInFlight is the high-water count of fills issued but not yet
	// returned; MaxReorder the high-water reorder-buffer occupancy;
	// MaxFragmentFIFO the high-water fragment-FIFO occupancy in
	// fragments.
	MaxInFlight     int
	MaxReorder      int
	MaxFragmentFIFO int
}

// Utilization returns compute cycles over total cycles (1 = fully
// hidden latency).
func (r Result) Utilization() float64 {
	if r.TotalCyc == 0 {
		return 0
	}
	return float64(r.ComputeCyc) / float64(r.TotalCyc)
}

// FragmentsPerSecond converts the cycle count into rendering
// performance at the given clock.
func (r Result) FragmentsPerSecond(clockHz float64) float64 {
	if r.TotalCyc == 0 {
		return 0
	}
	return float64(r.Fragments) / (float64(r.TotalCyc) / clockHz)
}

// Timeline is the cache half of a simulation, precomputed: the miss
// positions of one address stream against one tag-array configuration.
// Building it costs one cache replay; Simulate then reruns only the
// timing recurrence, so sweeping latencies and FIFO depths over the
// same (trace, cache) point is cheap. A Timeline is immutable after
// NewTimeline and safe for concurrent Simulate calls.
type Timeline struct {
	cfg      cache.Config
	accesses uint64
	misses   []uint64 // ascending access indices that missed
}

// NewTimeline replays the stream through a fresh cache and records
// where the misses fall. The tag array advances at tag-check order —
// the same order plain replay uses — so Misses matches cache.New over
// the same stream exactly.
func NewTimeline(cfg cache.Config, s cache.AddrStream) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cache.New(cfg)
	t := &Timeline{cfg: cfg}
	cur := s.Cursor()
	for block := cur.Next(); block != nil; block = cur.Next() {
		for _, a := range block {
			if !c.Access(a) {
				t.misses = append(t.misses, t.accesses)
			}
			t.accesses++
		}
	}
	obs.Default().Sub("arch").Counter("timelines").Inc()
	return t, nil
}

// Accesses returns the stream length the timeline was built from.
func (t *Timeline) Accesses() uint64 { return t.accesses }

// MissCount returns how many accesses missed.
func (t *Timeline) MissCount() uint64 { return uint64(len(t.misses)) }

// CacheConfig returns the tag-array configuration the timeline holds
// miss positions for.
func (t *Timeline) CacheConfig() cache.Config { return t.cfg }

// Simulate runs the cycle recurrence for one pipeline configuration
// over the recorded miss pattern. cfg.Cache must equal the
// configuration the timeline was built with.
func (t *Timeline) Simulate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Cache != t.cfg {
		return Result{}, cfg.errf("cache", "timeline was built for %s", t.cfg)
	}

	perCycle := uint64(cfg.TexelsPerCycle)
	fragTex := uint64(cfg.TexelsPerFragment)
	latU := uint64(cfg.FillLatency) * perCycle
	occU := uint64(cfg.FillOccupancy) * perCycle

	// The tag stage leads the filter stage by the fragment FIFO's texel
	// capacity. Lead 1 is the fused blocking machine: the tag check of
	// access i waits for the filter to finish access i-1, which is
	// exactly "stall the pipeline until the fill returns". Prefetch
	// with FragmentFIFO 0 degenerates to the same recurrence.
	lead := uint64(cfg.FragmentFIFO) * fragTex
	if cfg.Pipeline == Blocking || lead < 1 {
		lead = 1
	}
	reqDepth := cfg.RequestFIFO
	robDepth := cfg.ReorderBuffer
	resDepth := uint64(cfg.ResultFIFO)

	res := Result{Accesses: t.accesses, Misses: uint64(len(t.misses))}
	n := t.accesses
	if n == 0 {
		return res, nil
	}

	// Per-miss issue and release times index by miss ordinal; the ring
	// buffers hold the sliding windows the queue-depth constraints read.
	issue := make([]uint64, len(t.misses))
	release := make([]uint64, len(t.misses))
	bRing := make([]uint64, lead)            // filter finish times, last `lead` accesses
	retireRing := make([]uint64, resDepth+1) // result-FIFO retire times

	var (
		fPrev, bPrev, rPrev uint64 // previous tag, filter, retire times
		channelFree         uint64 // single memory channel busy-until
		fillDone            uint64
		j                   int    // next miss ordinal
		fifoPtr             uint64 // oldest access still in the fragment FIFO
		robPtr, inflPtr     int    // released / completed miss pointers
		maxOccAcc           uint64 // fragment-FIFO high water, in accesses
	)
	for i := uint64(0); i < n; i++ {
		// Tag stage: one access per unit, blocked by fragment-FIFO
		// space — the slot of access i-lead must have drained, and a
		// freed slot is reusable the following unit. The +1 is what
		// makes the collapsed (lead 1) machine exactly the serial
		// blocking cache: access i starts strictly after access i-1
		// completes, so each miss costs the full fill round trip.
		f := fPrev + 1
		if i >= lead {
			if w := bRing[(i-lead)%lead] + 1; w > f {
				f = w
			}
		}
		isMiss := j < len(t.misses) && t.misses[j] == i
		if isMiss {
			// A miss also needs a request-FIFO slot (freed when the
			// channel accepts request j-R) and a reorder-buffer slot
			// (freed when the filter consumes miss j-B).
			if j >= reqDepth {
				if w := issue[j-reqDepth]; w > f {
					f = w
				}
			}
			if j >= robDepth {
				if w := release[j-robDepth]; w > f {
					f = w
				}
			}
		}
		for fifoPtr < i && bRing[fifoPtr%lead] < f {
			fifoPtr++
		}
		if occ := i - fifoPtr + 1; occ > maxOccAcc {
			maxOccAcc = occ
		}
		if isMiss {
			// Fill issue: in order, serialized on channel occupancy.
			is := f
			if channelFree > is {
				is = channelFree
			}
			issue[j] = is
			channelFree = is + occU
			fillDone = is + latU + occU
			for inflPtr < j && issue[inflPtr]+latU+occU <= is {
				inflPtr++
			}
			if in := j - inflPtr + 1; in > res.MaxInFlight {
				res.MaxInFlight = in
			}
			for robPtr < j && release[robPtr] <= f {
				robPtr++
			}
			if ro := j - robPtr + 1; ro > res.MaxReorder {
				res.MaxReorder = ro
			}
		}

		// Filter stage: in-order consume, one access per unit. Hits
		// never wait on memory; a miss waits for its own fill.
		b := bPrev + 1
		if f > b {
			b = f
		}
		if isMiss && fillDone > b {
			b = fillDone
		}
		if i%fragTex == 0 {
			// Fragment start: a result-FIFO slot must be free, i.e.
			// fragment g-1-resDepth has retired.
			if g := i / fragTex; g > resDepth {
				if w := retireRing[(g-1-resDepth)%(resDepth+1)]; w > b {
					b = w
				}
			}
		}
		bRing[i%lead] = b
		if isMiss {
			release[j] = b
			j++
		}

		// Retire stage: the finished fragment leaves the result FIFO at
		// its own filter rate (size texels per fragment slot).
		if (i+1)%fragTex == 0 || i+1 == n {
			size := i%fragTex + 1
			r := b
			if w := rPrev + size; w > r {
				r = w
			}
			retireRing[(i/fragTex)%(resDepth+1)] = r
			rPrev = r
			res.Fragments++
		}
		fPrev, bPrev = f, b
	}

	res.TotalCyc = ceilDiv(rPrev, perCycle)
	res.ComputeCyc = ceilDiv(n, perCycle)
	res.StallCyc = res.TotalCyc - res.ComputeCyc
	res.MaxFragmentFIFO = int(ceilDiv(maxOccAcc, fragTex))

	reg := obs.Default().Sub("arch")
	reg.Counter("simulations").Inc()
	reg.Counter("stall_cycles").Add(res.StallCyc)
	reg.Gauge("in_flight_fills").Set(int64(res.MaxInFlight))
	reg.Gauge("rob_occupancy").Set(int64(res.MaxReorder))
	return res, nil
}

// Simulate replays one texel address stream through the pipeline:
// NewTimeline plus one Timeline.Simulate. Use a shared Timeline when
// sweeping timing parameters over the same (trace, cache) point.
func Simulate(cfg Config, s cache.AddrStream) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	t, err := NewTimeline(cfg.Cache, s)
	if err != nil {
		return Result{}, err
	}
	return t.Simulate(cfg)
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }
