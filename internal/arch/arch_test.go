package arch

import (
	"errors"
	"math/rand"
	"testing"

	"texcache/internal/cache"
)

func testCacheCfg() cache.Config {
	return cache.Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}
}

// strideTrace builds a trace with a controllable miss rate: repeated
// groups of `reuse` accesses to one line before moving to the next.
func strideTrace(lines, reuse int) *cache.Trace {
	tr := cache.NewTrace(lines * reuse)
	for l := 0; l < lines; l++ {
		for r := 0; r < reuse; r++ {
			tr.Access(uint64(l)*128 + uint64(r*4%128))
		}
	}
	return tr
}

// randomTrace builds a deterministic pseudo-random mix of hot-line hits
// and fresh-line misses — about 3% misses including short bursts, the
// texture-trace regime — to exercise the queue constraints.
func randomTrace(n int, seed int64) *cache.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := cache.NewTrace(n)
	next := uint64(1 << 20)
	for tr.Len() < n {
		r := rng.Intn(1000)
		switch {
		case r < 15: // fresh line: a cold miss
			tr.Access(next)
			next += 128
		case r < 20: // short burst of fresh lines
			for k := 0; k < 3; k++ {
				tr.Access(next)
				next += 128
			}
		default:
			tr.Access(uint64(rng.Intn(8)) * 128) // hot set: hits
		}
	}
	return tr
}

func TestValidateFields(t *testing.T) {
	good := Default(testCacheCfg(), Prefetch)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		field  string
		mutate func(*Config)
	}{
		{"pipeline", func(c *Config) { c.Pipeline = Pipeline(7) }},
		{"fragment_fifo", func(c *Config) { c.FragmentFIFO = -1 }},
		{"fragment_fifo", func(c *Config) { c.FragmentFIFO = maxQueue + 1 }},
		{"request_fifo", func(c *Config) { c.RequestFIFO = 0 }},
		{"reorder_buffer", func(c *Config) { c.ReorderBuffer = 0 }},
		{"result_fifo", func(c *Config) { c.ResultFIFO = -1 }},
		{"texels_per_cycle", func(c *Config) { c.TexelsPerCycle = 0 }},
		{"texels_per_fragment", func(c *Config) { c.TexelsPerFragment = 0 }},
		{"fill_latency", func(c *Config) { c.FillLatency = -1 }},
		{"fill_occupancy", func(c *Config) { c.FillOccupancy = 0 }},
	}
	for _, tc := range cases {
		bad := good
		tc.mutate(&bad)
		err := bad.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want *ConfigError, got %v", tc.field, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("field = %q, want %q (%v)", ce.Field, tc.field, err)
		}
	}
	bad := good
	bad.Cache.SizeBytes = 100
	var cce *cache.ConfigError
	if err := bad.Validate(); !errors.As(err, &cce) {
		t.Errorf("cache problem not a *cache.ConfigError: %v", err)
	}
	if _, err := Simulate(bad, cache.NewTrace(0)); err == nil {
		t.Error("Simulate accepted an invalid config")
	}
}

func TestTimelineMatchesCache(t *testing.T) {
	tr := randomTrace(1<<15, 1)
	tl, err := NewTimeline(testCacheCfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(testCacheCfg())
	tr.Replay(c.Sink())
	st := c.Stats()
	if tl.Accesses() != st.Accesses || tl.MissCount() != st.Misses {
		t.Errorf("timeline %d/%d misses, plain replay %d/%d",
			tl.MissCount(), tl.Accesses(), st.Misses, st.Accesses)
	}
	if tl.CacheConfig() != testCacheCfg() {
		t.Errorf("CacheConfig = %v", tl.CacheConfig())
	}
}

// TestBlockingClosedForm pins the blocking baseline against its exact
// closed form: every access costs one unit and every miss adds the full
// fill round trip, so TotalUnits = n + M*(latency+occupancy)*perCycle.
func TestBlockingClosedForm(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tr := randomTrace(1<<14, seed)
		cfg := Default(testCacheCfg(), Blocking)
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		per := uint64(cfg.TexelsPerCycle)
		units := res.Accesses + res.Misses*uint64(cfg.FillLatency+cfg.FillOccupancy)*per
		want := (units + per - 1) / per
		if res.TotalCyc != want {
			t.Errorf("seed %d: blocking TotalCyc = %d, closed form %d", seed, res.TotalCyc, want)
		}
		if res.TotalCyc != res.ComputeCyc+res.StallCyc {
			t.Errorf("seed %d: cycle accounting inconsistent: %+v", seed, res)
		}
	}
}

// TestBlockingLinearInLatency pins the defining property of the
// baseline: execution time grows linearly with fill latency.
func TestBlockingLinearInLatency(t *testing.T) {
	tr := randomTrace(1<<14, 4)
	tl, err := NewTimeline(testCacheCfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(testCacheCfg(), Blocking)
	cfg.FillLatency = 100
	r100, err := tl.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FillLatency = 200
	r200, err := tl.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := uint64(cfg.TexelsPerCycle)
	wantUnits := r100.TotalCyc*per + r100.Misses*100*per
	if got := r200.TotalCyc * per; got != wantUnits {
		t.Errorf("blocking not linear: 200-cycle total %d units, want %d", got, wantUnits)
	}
}

// TestHitsNeverStall: with a single cold miss up front, the prefetch
// pipeline pays at most that one fill and then streams at the compute
// rate.
func TestHitsNeverStall(t *testing.T) {
	tr := cache.NewTrace(4096)
	for i := 0; i < 4096; i++ {
		tr.Access(0)
	}
	cfg := Default(testCacheCfg(), Prefetch)
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 1 {
		t.Fatalf("misses = %d, want 1", res.Misses)
	}
	if res.StallCyc > uint64(cfg.FillLatency+cfg.FillOccupancy)+1 {
		t.Errorf("hit stream stalled %d cycles beyond the single cold fill", res.StallCyc)
	}
	if res.Fragments != res.Accesses/uint64(cfg.TexelsPerFragment) {
		t.Errorf("fragments = %d", res.Fragments)
	}
}

// TestZeroDepthPrefetchEqualsBlocking is the differential pin: a
// prefetch pipeline with no fragment FIFO is the blocking machine, and
// the cycle recurrence must agree exactly.
func TestZeroDepthPrefetchEqualsBlocking(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		tr := randomTrace(1<<14, seed)
		tl, err := NewTimeline(testCacheCfg(), tr)
		if err != nil {
			t.Fatal(err)
		}
		p := Default(testCacheCfg(), Prefetch)
		p.FragmentFIFO = 0
		b := Default(testCacheCfg(), Blocking)
		rp, err := tl.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := tl.Simulate(b)
		if err != nil {
			t.Fatal(err)
		}
		if rp != rb {
			t.Errorf("seed %d: zero-depth prefetch %+v != blocking %+v", seed, rp, rb)
		}
	}
}

// TestDeepFIFOHidesLatency: at the default depth the prefetch pipeline
// runs within 10% of its own zero-latency bound, while blocking at the
// same point is far slower.
func TestDeepFIFOHidesLatency(t *testing.T) {
	tr := randomTrace(1<<15, 6)
	tl, err := NewTimeline(testCacheCfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(testCacheCfg(), Prefetch)
	cfg.FillLatency = 0
	bound, err := tl.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FillLatency = 100
	hot, err := tl.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(hot.TotalCyc) > 1.10*float64(bound.TotalCyc) {
		t.Errorf("prefetch at 100-cycle latency %d cyc, zero-latency bound %d: not hidden",
			hot.TotalCyc, bound.TotalCyc)
	}
	blk, err := tl.Simulate(Default(testCacheCfg(), Blocking))
	if err != nil {
		t.Fatal(err)
	}
	if blk.TotalCyc < 2*hot.TotalCyc {
		t.Errorf("blocking %d cyc not >> prefetch %d cyc", blk.TotalCyc, hot.TotalCyc)
	}
	if hot.MaxInFlight < 2 {
		t.Errorf("latency hiding without overlapped fills? MaxInFlight = %d", hot.MaxInFlight)
	}
	if hot.MaxInFlight > cfg.ReorderBuffer {
		t.Errorf("MaxInFlight %d exceeds the reorder buffer %d", hot.MaxInFlight, cfg.ReorderBuffer)
	}
	if hot.MaxReorder > cfg.ReorderBuffer {
		t.Errorf("MaxReorder %d exceeds the reorder buffer %d", hot.MaxReorder, cfg.ReorderBuffer)
	}
	if hot.MaxFragmentFIFO > cfg.FragmentFIFO {
		t.Errorf("MaxFragmentFIFO %d exceeds the FIFO depth %d", hot.MaxFragmentFIFO, cfg.FragmentFIFO)
	}
}

// TestFIFODepthMonotone: more lead never hurts.
func TestFIFODepthMonotone(t *testing.T) {
	tr := randomTrace(1<<14, 7)
	tl, err := NewTimeline(testCacheCfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	prev := ^uint64(0)
	for _, depth := range []int{0, 2, 4, 8, 16, 32, 64, 128} {
		cfg := Default(testCacheCfg(), Prefetch)
		cfg.FragmentFIFO = depth
		res, err := tl.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCyc > prev {
			t.Errorf("depth %d: TotalCyc %d worse than shallower FIFO %d", depth, res.TotalCyc, prev)
		}
		prev = res.TotalCyc
	}
}

// TestShallowQueuesThrottle: starving the request FIFO or reorder
// buffer must cost cycles, never crash or deadlock.
func TestShallowQueuesThrottle(t *testing.T) {
	tr := randomTrace(1<<14, 8)
	tl, err := NewTimeline(testCacheCfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := tl.Simulate(Default(testCacheCfg(), Prefetch))
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.RequestFIFO = 1 },
		func(c *Config) { c.ReorderBuffer = 1 },
		func(c *Config) { c.ResultFIFO = 0 },
	} {
		cfg := Default(testCacheCfg(), Prefetch)
		mutate(&cfg)
		res, err := tl.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCyc < deep.TotalCyc {
			t.Errorf("%+v faster (%d) than the deep machine (%d)", cfg, res.TotalCyc, deep.TotalCyc)
		}
		if res.MaxReorder > cfg.ReorderBuffer {
			t.Errorf("MaxReorder %d exceeds depth %d", res.MaxReorder, cfg.ReorderBuffer)
		}
	}
}

// TestDeterminism: the cycle model is a pure function of (trace, cache,
// config) — repeated runs and the Timeline vs Simulate paths agree
// bit-for-bit.
func TestDeterminism(t *testing.T) {
	tr := randomTrace(1<<14, 11)
	cfg := Default(testCacheCfg(), Prefetch)
	first, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTimeline(testCacheCfg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := tl.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d diverged: %+v != %+v", run, again, first)
		}
	}
}

func TestTimelineCacheMismatch(t *testing.T) {
	tl, err := NewTimeline(testCacheCfg(), strideTrace(64, 8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(testCacheCfg(), Prefetch)
	cfg.Cache.SizeBytes = 8 << 10
	var ce *ConfigError
	if _, err := tl.Simulate(cfg); !errors.As(err, &ce) || ce.Field != "cache" {
		t.Errorf("mismatched cache accepted: %v", err)
	}
}

func TestEmptyStream(t *testing.T) {
	res, err := Simulate(Default(testCacheCfg(), Prefetch), cache.NewTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCyc != 0 || res.Fragments != 0 || res.Utilization() != 0 {
		t.Errorf("empty stream produced %+v", res)
	}
	if res.FragmentsPerSecond(100e6) != 0 {
		t.Error("empty stream has a fragment rate")
	}
}
