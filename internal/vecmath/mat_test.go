package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mat4AlmostEq(a, b Mat4) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almostEq(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestIdentityMul(t *testing.T) {
	id := Identity()
	m := Translate(Vec3{1, 2, 3}).Mul(RotateY(0.7))
	if !mat4AlmostEq(id.Mul(m), m) || !mat4AlmostEq(m.Mul(id), m) {
		t.Error("identity should be multiplicative unit")
	}
}

func TestTranslatePoint(t *testing.T) {
	m := Translate(Vec3{1, 2, 3})
	got := m.TransformPoint(Vec3{10, 20, 30})
	if got != (Vec3{11, 22, 33}) {
		t.Errorf("TransformPoint = %v", got)
	}
	// Directions ignore translation.
	d := m.TransformDir(Vec3{1, 0, 0})
	if d != (Vec3{1, 0, 0}) {
		t.Errorf("TransformDir = %v", d)
	}
}

func TestRotationsPreserveLength(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		angle := rng.Float64() * 2 * math.Pi
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		for _, m := range []Mat4{RotateX(angle), RotateY(angle), RotateZ(angle),
			RotateAxis(Vec3{1, 1, 1}, angle)} {
			got := m.TransformDir(v)
			if !almostEq(got.Len(), v.Len()) {
				t.Fatalf("rotation changed length: %v -> %v", v.Len(), got.Len())
			}
		}
	}
}

func TestRotateZQuarterTurn(t *testing.T) {
	m := RotateZ(math.Pi / 2)
	got := m.TransformDir(Vec3{1, 0, 0})
	if !vec3AlmostEq(got, Vec3{0, 1, 0}) {
		t.Errorf("RotateZ(90deg) x = %v, want y", got)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		m := Translate(Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}).
			Mul(RotateAxis(Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64() + 2}, rng.Float64())).
			Mul(Scale(Vec3{1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64()}))
		inv, ok := m.Inverse()
		if !ok {
			t.Fatal("invertible matrix reported singular")
		}
		if !mat4AlmostEq(m.Mul(inv), Identity()) {
			t.Fatalf("m * m^-1 != I for %v", m)
		}
	}
}

func TestSingularInverse(t *testing.T) {
	m := Scale(Vec3{1, 0, 1}) // rank deficient
	if _, ok := m.Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestDetProperties(t *testing.T) {
	if d := Identity().Det(); d != 1 {
		t.Errorf("det(I) = %v", d)
	}
	if d := Scale(Vec3{2, 3, 4}).Det(); !almostEq(d, 24) {
		t.Errorf("det(scale) = %v, want 24", d)
	}
	// Rotations have determinant 1.
	if d := RotateAxis(Vec3{1, 2, 3}, 1.1).Det(); !almostEq(d, 1) {
		t.Errorf("det(rot) = %v, want 1", d)
	}
}

func TestTranspose(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		m := Translate(Vec3{a, b, c}).Mul(RotateY(d))
		return mat4AlmostEq(m.Transpose().Transpose(), m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLookAtEyeMapsToOrigin(t *testing.T) {
	eye := Vec3{3, 4, 5}
	m := LookAt(eye, Vec3{0, 0, 0}, Vec3{0, 1, 0})
	got := m.TransformPoint(eye)
	if !vec3AlmostEq(got, Vec3{}) {
		t.Errorf("LookAt eye -> %v, want origin", got)
	}
	// Center should land on the negative Z axis at distance |eye|.
	c := m.TransformPoint(Vec3{0, 0, 0})
	if !almostEq(c.X, 0) || !almostEq(c.Y, 0) || c.Z >= 0 {
		t.Errorf("LookAt center -> %v, want on -Z axis", c)
	}
	if !almostEq(-c.Z, eye.Len()) {
		t.Errorf("center depth = %v, want %v", -c.Z, eye.Len())
	}
}

func TestPerspectiveMapsNearFar(t *testing.T) {
	near, far := 0.5, 100.0
	p := Perspective(math.Pi/2, 1, near, far)
	// Point on the near plane straight ahead maps to NDC z = -1.
	n := p.MulVec(Point4(Vec3{0, 0, -near})).PerspectiveDivide()
	if !almostEq(n.Z, -1) {
		t.Errorf("near plane z = %v, want -1", n.Z)
	}
	f := p.MulVec(Point4(Vec3{0, 0, -far})).PerspectiveDivide()
	if !almostEq(f.Z, 1) {
		t.Errorf("far plane z = %v, want 1", f.Z)
	}
	// A point at 45 degrees off-axis on the near plane hits the NDC edge.
	e := p.MulVec(Point4(Vec3{near, 0, -near})).PerspectiveDivide()
	if !almostEq(e.X, 1) {
		t.Errorf("edge x = %v, want 1", e.X)
	}
}

func TestOrthoMapsBox(t *testing.T) {
	m := Ortho(-2, 2, -1, 1, 0, 10)
	lo := m.TransformPoint(Vec3{-2, -1, 0})
	hi := m.TransformPoint(Vec3{2, 1, -10})
	if !vec3AlmostEq(lo, Vec3{-1, -1, -1}) {
		t.Errorf("ortho lo = %v", lo)
	}
	if !vec3AlmostEq(hi, Vec3{1, 1, 1}) {
		t.Errorf("ortho hi = %v", hi)
	}
}

func TestMulVecLinearity(t *testing.T) {
	m := Perspective(1, 1.5, 1, 50).Mul(LookAt(Vec3{1, 2, 3}, Vec3{}, Vec3{0, 1, 0}))
	shrink := func(x float64) float64 { return math.Remainder(x, 1e3) }
	f := func(ax, ay, az, bx, by, bz, s float64) bool {
		ax, ay, az = shrink(ax), shrink(ay), shrink(az)
		bx, by, bz, s = shrink(bx), shrink(by), shrink(bz), shrink(s)
		a := Vec4{ax, ay, az, 1}
		b := Vec4{bx, by, bz, 0}
		lhs := m.MulVec(a.Add(b.Scale(s)))
		rhs := m.MulVec(a).Add(m.MulVec(b).Scale(s))
		d := lhs.Sub(rhs)
		mag := 1 + math.Abs(ax) + math.Abs(bx) + math.Abs(s)*100
		return math.Abs(d.X)+math.Abs(d.Y)+math.Abs(d.Z)+math.Abs(d.W) < 1e-6*mag*mag
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
