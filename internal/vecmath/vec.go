// Package vecmath provides the small linear-algebra kernel used by the
// graphics pipeline: 2-, 3- and 4-component float64 vectors and 4x4
// matrices with the projective transforms needed for 3D rendering.
//
// The package is deliberately minimal and allocation-free: every type is a
// plain value and every operation returns a new value, so vectors and
// matrices can be composed without aliasing concerns.
package vecmath

import "math"

// Vec2 is a 2-component vector, used for texture coordinates and screen
// positions.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Lerp returns v + t*(w-v), the linear interpolation between v and w.
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y)}
}

// Vec3 is a 3-component vector, used for positions, normals and colors.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp returns v + t*(w-v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y), v.Z + t*(w.Z-v.Z)}
}

// Vec4 is a 4-component homogeneous vector.
type Vec4 struct {
	X, Y, Z, W float64
}

// Add returns v + w.
func (v Vec4) Add(w Vec4) Vec4 { return Vec4{v.X + w.X, v.Y + w.Y, v.Z + w.Z, v.W + w.W} }

// Sub returns v - w.
func (v Vec4) Sub(w Vec4) Vec4 { return Vec4{v.X - w.X, v.Y - w.Y, v.Z - w.Z, v.W - w.W} }

// Scale returns s*v.
func (v Vec4) Scale(s float64) Vec4 { return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s} }

// Dot returns the dot product of v and w.
func (v Vec4) Dot(w Vec4) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z + v.W*w.W }

// Lerp returns v + t*(w-v).
func (v Vec4) Lerp(w Vec4, t float64) Vec4 {
	return Vec4{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y), v.Z + t*(w.Z-v.Z), v.W + t*(w.W-v.W)}
}

// XYZ returns the first three components as a Vec3, discarding W.
func (v Vec4) XYZ() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// PerspectiveDivide returns the projection of v onto the W=1 hyperplane.
// It panics if W is zero; callers clip against the near plane first.
func (v Vec4) PerspectiveDivide() Vec3 {
	if v.W == 0 {
		panic("vecmath: perspective divide by zero W")
	}
	inv := 1 / v.W
	return Vec3{v.X * inv, v.Y * inv, v.Z * inv}
}

// Point4 promotes a 3D point to homogeneous coordinates with W=1.
func Point4(p Vec3) Vec4 { return Vec4{p.X, p.Y, p.Z, 1} }

// Dir4 promotes a 3D direction to homogeneous coordinates with W=0.
func Dir4(d Vec3) Vec4 { return Vec4{d.X, d.Y, d.Z, 0} }

// Clamp returns x limited to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
