package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-7 }

func vec3AlmostEq(a, b Vec3) bool {
	return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) && almostEq(a.Z, b.Z)
}

func TestVec2Basics(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -4}
	if got := a.Add(b); got != (Vec2{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := b.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Vec2{2, -1}) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-1, 0, 2}
	if got := a.Add(b); got != (Vec3{0, 2, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{2, 2, 1}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != (Vec3{-1, 0, 6}) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Dot(b); got != 5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if got := a.Cross(b); got != (Vec3{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", got)
	}
	shrink := func(x float64) float64 { return math.Remainder(x, 1e3) }
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{shrink(ax), shrink(ay), shrink(az)}
		b := Vec3{shrink(bx), shrink(by), shrink(bz)}
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Len()*b.Len()) * (1 + a.Len() + b.Len())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3NormalizeUnit(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := Vec3{x, y, z}
		if v.Len() == 0 || math.IsInf(v.Len(), 0) || math.IsNaN(v.Len()) {
			return true
		}
		n := v.Normalize()
		return math.Abs(n.Len()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	zero := Vec3{}
	if zero.Normalize() != zero {
		t.Error("Normalize(0) should be 0")
	}
}

func TestVec4PerspectiveDivide(t *testing.T) {
	v := Vec4{2, 4, 6, 2}
	if got := v.PerspectiveDivide(); got != (Vec3{1, 2, 3}) {
		t.Errorf("PerspectiveDivide = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on W=0")
		}
	}()
	Vec4{1, 1, 1, 0}.PerspectiveDivide()
}

func TestPoint4Dir4(t *testing.T) {
	p := Point4(Vec3{1, 2, 3})
	if p.W != 1 {
		t.Errorf("Point4 W = %v", p.W)
	}
	d := Dir4(Vec3{1, 2, 3})
	if d.W != 0 {
		t.Errorf("Dir4 W = %v", d.W)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestVec4Lerp(t *testing.T) {
	a := Vec4{0, 0, 0, 0}
	b := Vec4{2, 4, 6, 8}
	if got := a.Lerp(b, 0.25); got != (Vec4{0.5, 1, 1.5, 2}) {
		t.Errorf("Lerp = %v", got)
	}
}
