package vecmath

import "math"

// Mat4 is a 4x4 matrix in row-major storage: M[row][col]. Points transform
// as column vectors, M * v.
type Mat4 [4][4]float64

// Identity returns the 4x4 identity matrix.
func Identity() Mat4 {
	return Mat4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
}

// Mul returns the matrix product m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[i][k] * n[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// MulVec returns the matrix-vector product m * v.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z + m[0][3]*v.W,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z + m[1][3]*v.W,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z + m[2][3]*v.W,
		m[3][0]*v.X + m[3][1]*v.Y + m[3][2]*v.Z + m[3][3]*v.W,
	}
}

// TransformPoint applies m to the point p (W=1) and performs the
// perspective divide.
func (m Mat4) TransformPoint(p Vec3) Vec3 {
	return m.MulVec(Point4(p)).PerspectiveDivide()
}

// TransformDir applies m to the direction d (W=0) without translation.
func (m Mat4) TransformDir(d Vec3) Vec3 {
	return m.MulVec(Dir4(d)).XYZ()
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// Translate returns a translation matrix by t.
func Translate(t Vec3) Mat4 {
	m := Identity()
	m[0][3] = t.X
	m[1][3] = t.Y
	m[2][3] = t.Z
	return m
}

// Scale returns a non-uniform scaling matrix by s.
func Scale(s Vec3) Mat4 {
	m := Identity()
	m[0][0] = s.X
	m[1][1] = s.Y
	m[2][2] = s.Z
	return m
}

// RotateX returns a rotation about the X axis by angle radians.
func RotateX(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	m := Identity()
	m[1][1], m[1][2] = c, -s
	m[2][1], m[2][2] = s, c
	return m
}

// RotateY returns a rotation about the Y axis by angle radians.
func RotateY(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	m := Identity()
	m[0][0], m[0][2] = c, s
	m[2][0], m[2][2] = -s, c
	return m
}

// RotateZ returns a rotation about the Z axis by angle radians.
func RotateZ(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	m := Identity()
	m[0][0], m[0][1] = c, -s
	m[1][0], m[1][1] = s, c
	return m
}

// RotateAxis returns a rotation of angle radians about an arbitrary unit
// axis (Rodrigues' formula).
func RotateAxis(axis Vec3, angle float64) Mat4 {
	a := axis.Normalize()
	c, s := math.Cos(angle), math.Sin(angle)
	ic := 1 - c
	return Mat4{
		{c + a.X*a.X*ic, a.X*a.Y*ic - a.Z*s, a.X*a.Z*ic + a.Y*s, 0},
		{a.Y*a.X*ic + a.Z*s, c + a.Y*a.Y*ic, a.Y*a.Z*ic - a.X*s, 0},
		{a.Z*a.X*ic - a.Y*s, a.Z*a.Y*ic + a.X*s, c + a.Z*a.Z*ic, 0},
		{0, 0, 0, 1},
	}
}

// LookAt returns a right-handed view matrix placing the camera at eye,
// looking toward center, with the given up direction.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	view := Mat4{
		{s.X, s.Y, s.Z, 0},
		{u.X, u.Y, u.Z, 0},
		{-f.X, -f.Y, -f.Z, 0},
		{0, 0, 0, 1},
	}
	return view.Mul(Translate(Vec3{-eye.X, -eye.Y, -eye.Z}))
}

// Perspective returns an OpenGL-style perspective projection matrix.
// fovy is the vertical field of view in radians, aspect is width/height,
// and near/far are the positive distances to the clip planes.
func Perspective(fovy, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovy/2)
	var m Mat4
	m[0][0] = f / aspect
	m[1][1] = f
	m[2][2] = (far + near) / (near - far)
	m[2][3] = 2 * far * near / (near - far)
	m[3][2] = -1
	return m
}

// Ortho returns an orthographic projection matrix mapping the box
// [l,r]x[b,t]x[-n,-f] to the canonical [-1,1] cube.
func Ortho(l, r, b, t, n, f float64) Mat4 {
	var m Mat4
	m[0][0] = 2 / (r - l)
	m[1][1] = 2 / (t - b)
	m[2][2] = -2 / (f - n)
	m[0][3] = -(r + l) / (r - l)
	m[1][3] = -(t + b) / (t - b)
	m[2][3] = -(f + n) / (f - n)
	m[3][3] = 1
	return m
}

// Det returns the determinant of m.
func (m Mat4) Det() float64 {
	// Expansion by 2x2 cofactors of the first two rows (Laplace on rows 0,1).
	s0 := m[0][0]*m[1][1] - m[0][1]*m[1][0]
	s1 := m[0][0]*m[1][2] - m[0][2]*m[1][0]
	s2 := m[0][0]*m[1][3] - m[0][3]*m[1][0]
	s3 := m[0][1]*m[1][2] - m[0][2]*m[1][1]
	s4 := m[0][1]*m[1][3] - m[0][3]*m[1][1]
	s5 := m[0][2]*m[1][3] - m[0][3]*m[1][2]

	c5 := m[2][2]*m[3][3] - m[2][3]*m[3][2]
	c4 := m[2][1]*m[3][3] - m[2][3]*m[3][1]
	c3 := m[2][1]*m[3][2] - m[2][2]*m[3][1]
	c2 := m[2][0]*m[3][3] - m[2][3]*m[3][0]
	c1 := m[2][0]*m[3][2] - m[2][2]*m[3][0]
	c0 := m[2][0]*m[3][1] - m[2][1]*m[3][0]

	return s0*c5 - s1*c4 + s2*c3 + s3*c2 - s4*c1 + s5*c0
}

// Inverse returns the inverse of m and whether it exists. Singular
// matrices return the identity and false.
func (m Mat4) Inverse() (Mat4, bool) {
	s0 := m[0][0]*m[1][1] - m[0][1]*m[1][0]
	s1 := m[0][0]*m[1][2] - m[0][2]*m[1][0]
	s2 := m[0][0]*m[1][3] - m[0][3]*m[1][0]
	s3 := m[0][1]*m[1][2] - m[0][2]*m[1][1]
	s4 := m[0][1]*m[1][3] - m[0][3]*m[1][1]
	s5 := m[0][2]*m[1][3] - m[0][3]*m[1][2]

	c5 := m[2][2]*m[3][3] - m[2][3]*m[3][2]
	c4 := m[2][1]*m[3][3] - m[2][3]*m[3][1]
	c3 := m[2][1]*m[3][2] - m[2][2]*m[3][1]
	c2 := m[2][0]*m[3][3] - m[2][3]*m[3][0]
	c1 := m[2][0]*m[3][2] - m[2][2]*m[3][0]
	c0 := m[2][0]*m[3][1] - m[2][1]*m[3][0]

	det := s0*c5 - s1*c4 + s2*c3 + s3*c2 - s4*c1 + s5*c0
	if det == 0 {
		return Identity(), false
	}
	inv := 1 / det

	var r Mat4
	r[0][0] = (m[1][1]*c5 - m[1][2]*c4 + m[1][3]*c3) * inv
	r[0][1] = (-m[0][1]*c5 + m[0][2]*c4 - m[0][3]*c3) * inv
	r[0][2] = (m[3][1]*s5 - m[3][2]*s4 + m[3][3]*s3) * inv
	r[0][3] = (-m[2][1]*s5 + m[2][2]*s4 - m[2][3]*s3) * inv

	r[1][0] = (-m[1][0]*c5 + m[1][2]*c2 - m[1][3]*c1) * inv
	r[1][1] = (m[0][0]*c5 - m[0][2]*c2 + m[0][3]*c1) * inv
	r[1][2] = (-m[3][0]*s5 + m[3][2]*s2 - m[3][3]*s1) * inv
	r[1][3] = (m[2][0]*s5 - m[2][2]*s2 + m[2][3]*s1) * inv

	r[2][0] = (m[1][0]*c4 - m[1][1]*c2 + m[1][3]*c0) * inv
	r[2][1] = (-m[0][0]*c4 + m[0][1]*c2 - m[0][3]*c0) * inv
	r[2][2] = (m[3][0]*s4 - m[3][1]*s2 + m[3][3]*s0) * inv
	r[2][3] = (-m[2][0]*s4 + m[2][1]*s2 - m[2][3]*s0) * inv

	r[3][0] = (-m[1][0]*c3 + m[1][1]*c1 - m[1][2]*c0) * inv
	r[3][1] = (m[0][0]*c3 - m[0][1]*c1 + m[0][2]*c0) * inv
	r[3][2] = (-m[3][0]*s3 + m[3][1]*s1 - m[3][2]*s0) * inv
	r[3][3] = (m[2][0]*s3 - m[2][1]*s1 + m[2][2]*s0) * inv

	return r, true
}
