package banks

import (
	"testing"

	"texcache/internal/texture"
)

// quad emits one 2x2 bilinear footprint anchored at (u, v), with linear
// row-major addresses for a texture of width w.
func quad(a *Analyzer, u, v, w int) {
	for _, d := range [4][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		tu, tv := u+d[0], v+d[1]
		a.Record(texture.AccessEvent{
			TU: tu, TV: tv,
			Addr: uint64(tv*w+tu) * texture.TexelBytes,
		})
	}
}

func TestMortonAlwaysConflictFree(t *testing.T) {
	a := New()
	// Footprints at every alignment: morton never conflicts.
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			quad(a, u, v, 64)
		}
	}
	if a.Quads() != 64 {
		t.Fatalf("quads = %d", a.Quads())
	}
	if got := a.CyclesPerQuad(Morton); got != 1 {
		t.Errorf("morton cycles/quad = %v, want 1", got)
	}
}

func TestLinearInterleaveConflicts(t *testing.T) {
	a := New()
	// Power-of-two row stride: texels (u,v) and (u,v+1) are 64 texels
	// apart -> same bank under linear interleaving; every footprint has
	// two banks with two accesses each -> 2 cycles.
	for u := 0; u < 16; u += 2 {
		quad(a, u, 0, 64)
	}
	if got := a.CyclesPerQuad(Linear); got != 2 {
		t.Errorf("linear cycles/quad = %v, want 2", got)
	}
	if got := a.CyclesPerQuad(Morton); got != 1 {
		t.Errorf("morton cycles/quad = %v, want 1", got)
	}
	if a.Speedup() != 2 {
		t.Errorf("speedup = %v, want 2", a.Speedup())
	}
}

func TestEmptyAnalyzer(t *testing.T) {
	a := New()
	if a.CyclesPerQuad(Morton) != 0 || a.Speedup() != 0 {
		t.Error("empty analyzer should report zeros")
	}
}

func TestPartialFootprintNotCounted(t *testing.T) {
	a := New()
	a.Record(texture.AccessEvent{})
	a.Record(texture.AccessEvent{})
	if a.Quads() != 0 {
		t.Error("incomplete footprint counted")
	}
}

func TestInterleaveString(t *testing.T) {
	if Morton.String() != "morton" || Linear.String() != "linear" {
		t.Error("interleave names wrong")
	}
}
