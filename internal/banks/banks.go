// Package banks models the multi-ported SRAM cache organization of
// Section 7.1.2: cache data interleaved across four independently
// addressed banks at texel granularity, so the four texels of a bilinear
// footprint can be read in one cycle. With morton order (texels stored in
// 2x2 blocks, one texel of each block per bank) every aligned or
// unaligned 2x2 footprint touches all four banks; with linear (address)
// interleaving, footprints that straddle power-of-two row strides collide
// and take extra cycles.
package banks

import "texcache/internal/texture"

// Interleave selects how texels map to banks.
type Interleave int

const (
	// Morton interleaves by texel coordinate parity: bank = (v&1)<<1|(u&1),
	// the conflict-free distribution of Section 7.1.2.
	Morton Interleave = iota
	// Linear interleaves by memory address: bank = (addr/texelBytes) % 4.
	Linear
)

// String names the interleave.
func (i Interleave) String() string {
	if i == Linear {
		return "linear"
	}
	return "morton"
}

// NumBanks is the cache port count of the machine model.
const NumBanks = 4

// Analyzer consumes the sampler's access events, groups them into the
// 4-texel bilinear footprints the sampler is documented to emit, and
// counts the SRAM cycles each footprint needs under both interleaves
// (the maximum number of texels landing in one bank).
type Analyzer struct {
	quads  uint64
	cycles [2]uint64 // indexed by Interleave
	buf    [4]texture.AccessEvent
	n      int
}

// New returns an empty analyzer.
func New() *Analyzer { return &Analyzer{} }

// Record consumes one access event; every fourth completes a footprint.
func (a *Analyzer) Record(e texture.AccessEvent) {
	a.buf[a.n] = e
	a.n++
	if a.n < 4 {
		return
	}
	a.n = 0
	a.quads++
	a.cycles[Morton] += a.footprintCycles(Morton)
	a.cycles[Linear] += a.footprintCycles(Linear)
}

func (a *Analyzer) footprintCycles(il Interleave) uint64 {
	var perBank [NumBanks]int
	for _, e := range a.buf {
		var bank int
		if il == Morton {
			bank = (e.TV&1)<<1 | e.TU&1
		} else {
			bank = int(e.Addr/texture.TexelBytes) % NumBanks
		}
		perBank[bank]++
	}
	worst := 0
	for _, n := range perBank {
		if n > worst {
			worst = n
		}
	}
	return uint64(worst)
}

// Quads returns the number of complete 4-texel footprints analyzed.
func (a *Analyzer) Quads() uint64 { return a.quads }

// CyclesPerQuad returns the average SRAM cycles one footprint needs under
// the interleave: 1.0 is perfectly conflict-free.
func (a *Analyzer) CyclesPerQuad(il Interleave) float64 {
	if a.quads == 0 {
		return 0
	}
	return float64(a.cycles[il]) / float64(a.quads)
}

// Speedup returns how much faster morton interleaving reads footprints
// than linear interleaving on the analyzed trace.
func (a *Analyzer) Speedup() float64 {
	m := a.CyclesPerQuad(Morton)
	if m == 0 {
		return 0
	}
	return a.CyclesPerQuad(Linear) / m
}
