package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"texcache/internal/arch"
	"texcache/internal/cache"
	"texcache/internal/exp"
	"texcache/internal/prefetch"
	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func sweepReq() ExperimentRequest {
	return ExperimentRequest{
		Scene:   "goblet",
		Configs: []CacheConfig{{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}},
	}.Normalized()
}

func TestKind(t *testing.T) {
	if k := (ExperimentRequest{}).Kind(); k != KindExperiments {
		t.Errorf("empty request Kind = %v, want experiments", k)
	}
	if k := (ExperimentRequest{Experiments: []string{"fig5.2"}}).Kind(); k != KindExperiments {
		t.Errorf("experiments request Kind = %v", k)
	}
	for name, r := range map[string]ExperimentRequest{
		"scene":     {Scene: "town"},
		"configs":   {Configs: []CacheConfig{{}}},
		"layout":    {Layout: &Layout{Kind: "blocked"}},
		"traversal": {Traversal: &Traversal{Order: "hilbert"}},
	} {
		if k := r.Kind(); k != KindSweep {
			t.Errorf("%s request Kind = %v, want sweep", name, k)
		}
	}
}

func TestNormalized(t *testing.T) {
	n := ExperimentRequest{}.Normalized()
	if n.V != Version || n.Scale != DefaultScale {
		t.Errorf("Normalized zero = v%d scale %d, want v%d scale %d", n.V, n.Scale, Version, DefaultScale)
	}
	kept := ExperimentRequest{V: 1, Scale: 7}.Normalized()
	if kept.V != 1 || kept.Scale != 7 {
		t.Errorf("Normalized kept = v%d scale %d, want v1 scale 7", kept.V, kept.Scale)
	}
}

// TestValidate drives the one shared validation path through its error
// cases, pinning the field each error names and the HTTP status it maps
// to.
func TestValidate(t *testing.T) {
	mut := func(f func(*ExperimentRequest)) ExperimentRequest {
		r := sweepReq()
		f(&r)
		return r
	}
	cases := []struct {
		name       string
		req        ExperimentRequest
		wantField  string
		wantCode   string
		wantStatus int
	}{
		{name: "experiments default", req: ExperimentRequest{}.Normalized()},
		{name: "experiments named", req: ExperimentRequest{Experiments: []string{"fig5.2"}, Scenes: []string{"town"}}.Normalized()},
		{name: "sweep minimal", req: sweepReq()},
		{name: "sweep full", req: mut(func(r *ExperimentRequest) {
			r.Layout = &Layout{Kind: "6d", BlockW: 8, SuperBytes: 32 << 10}
			r.Traversal = &Traversal{Order: "hilbert"}
			r.Sweep = SweepPerConfig
		})},
		{name: "bad version", req: mut(func(r *ExperimentRequest) { r.V = 9 }),
			wantField: "v", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "negative scale", req: mut(func(r *ExperimentRequest) { r.Scale = -1 }),
			wantField: "scale", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "negative workers", req: mut(func(r *ExperimentRequest) { r.Workers = -1 }),
			wantField: "workers", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad sweep mode", req: mut(func(r *ExperimentRequest) { r.Sweep = "both" }),
			wantField: "sweep", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "unknown experiment", req: ExperimentRequest{Experiments: []string{"bogus"}}.Normalized(),
			wantField: "experiments", wantCode: CodeUnknownExperiment, wantStatus: http.StatusNotFound},
		{name: "unknown scene list", req: ExperimentRequest{Scenes: []string{"nowhere"}}.Normalized(),
			wantField: "scene", wantCode: CodeUnknownScene, wantStatus: http.StatusNotFound},
		{name: "sweep and experiments", req: mut(func(r *ExperimentRequest) { r.Experiments = []string{"fig5.2"} }),
			wantField: "experiments", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "sweep without scene", req: mut(func(r *ExperimentRequest) { r.Scene = "" }),
			wantField: "scene", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "sweep unknown scene", req: mut(func(r *ExperimentRequest) { r.Scene = "nowhere" }),
			wantField: "scene", wantCode: CodeUnknownScene, wantStatus: http.StatusNotFound},
		{name: "sweep without configs", req: mut(func(r *ExperimentRequest) { r.Configs = nil; r.Layout = &Layout{Kind: "blocked", BlockW: 8} }),
			wantField: "configs", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad layout kind", req: mut(func(r *ExperimentRequest) { r.Layout = &Layout{Kind: "spiral"} }),
			wantField: "layout", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad layout spec", req: mut(func(r *ExperimentRequest) { r.Layout = &Layout{Kind: "blocked", BlockW: 3} }),
			wantField: "layout", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad traversal", req: mut(func(r *ExperimentRequest) { r.Traversal = &Traversal{Order: "diagonal"} }),
			wantField: "traversal", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad cache policy", req: mut(func(r *ExperimentRequest) { r.Configs[0].Policy = "mru" }),
			wantField: "configs[0]", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad cache geometry", req: mut(func(r *ExperimentRequest) { r.Configs[0].SizeBytes = 100 }),
			wantField: "configs[0]", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.req)
			if tc.wantCode == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("Validate = %v (%T), want *api.Error", err, err)
			}
			if ae.Code != tc.wantCode || ae.Field != tc.wantField {
				t.Errorf("error code/field = %s/%s, want %s/%s", ae.Code, ae.Field, tc.wantCode, tc.wantField)
			}
			if got := ae.HTTPStatus(); got != tc.wantStatus {
				t.Errorf("HTTPStatus = %d, want %d", got, tc.wantStatus)
			}
			if ae.V != Version {
				t.Errorf("error body V = %d, want %d", ae.V, Version)
			}
		})
	}
}

// TestErrorUnwrap pins the compatibility contract: callers keyed to the
// pre-API typed errors keep working through errors.As.
func TestErrorUnwrap(t *testing.T) {
	var ue *exp.UnknownExperimentError
	err := Validate(ExperimentRequest{Experiments: []string{"bogus"}}.Normalized())
	if !errors.As(err, &ue) || ue.ID != "bogus" {
		t.Errorf("unknown experiment error does not unwrap to *exp.UnknownExperimentError: %v", err)
	}
	var se *scenes.UnknownSceneError
	bad := sweepReq()
	bad.Scene = "nowhere"
	err = Validate(bad)
	if !errors.As(err, &se) || se.Name != "nowhere" {
		t.Errorf("unknown scene error does not unwrap to *scenes.UnknownSceneError: %v", err)
	}
}

func TestWrapError(t *testing.T) {
	ae := WrapError(&exp.UnknownExperimentError{ID: "x"})
	if ae.Code != CodeUnknownExperiment {
		t.Errorf("WrapError(unknown experiment) code = %s", ae.Code)
	}
	if got := WrapError(ae); got != ae {
		t.Errorf("WrapError(*Error) should pass through")
	}
	if code := WrapError(errors.New("boom")).Code; code != CodeInternal {
		t.Errorf("WrapError(opaque) code = %s", code)
	}
}

// TestConversions pins wire → internal mapping for each enum family.
func TestConversions(t *testing.T) {
	spec, err := (Layout{Kind: "padded", BlockW: 8, PadBlocks: 1}).Spec()
	if err != nil || spec.Kind != texture.PaddedBlockedKind || spec.BlockW != 8 || spec.PadBlocks != 1 {
		t.Errorf("Layout.Spec = %+v, %v", spec, err)
	}
	// Round trip through LayoutFromSpec for every kind name.
	for _, kind := range []string{"nonblocked", "blocked", "padded", "6d", "williams", "compressed"} {
		s, err := (Layout{Kind: kind, BlockW: 8, PadBlocks: 1, SuperBytes: 32 << 10, Ratio: 2}).Spec()
		if err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
		if back := LayoutFromSpec(s); back.Kind != kind {
			t.Errorf("kind %s round-trips to %s", kind, back.Kind)
		}
	}
	trav, err := (Traversal{Order: "vertical", TileW: 32, TileH: 16}).Raster()
	if err != nil || trav.Order != raster.ColumnMajor || trav.TileW != 32 || trav.TileH != 16 {
		t.Errorf("Traversal.Raster = %+v, %v", trav, err)
	}
	cc, err := (CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, Policy: "fifo"}).Cache()
	if err != nil || cc.Policy != cache.FIFO || cc.SizeBytes != 16<<10 {
		t.Errorf("CacheConfig.Cache = %+v, %v", cc, err)
	}
	if _, err := (CacheConfig{Policy: "mru"}).Cache(); err == nil {
		t.Error("bad policy should error")
	}
}

// TestResolvedDefaults pins the post-Validate resolution helpers.
func TestResolvedDefaults(t *testing.T) {
	r := sweepReq()
	if spec := r.LayoutSpec(); spec.Kind != texture.BlockedKind || spec.BlockW != 8 {
		t.Errorf("default LayoutSpec = %+v, want blocked 8", spec)
	}
	if trav := r.RasterTraversal(); trav.Order != exp.DefaultTraversalFor("goblet").Order {
		t.Errorf("default traversal = %+v", trav)
	}
	town := r
	town.Scene = "town"
	if trav := town.RasterTraversal(); trav.Order != raster.ColumnMajor {
		t.Errorf("town default traversal = %+v, want column-major", trav)
	}
	cfgs := r.CacheConfigs()
	if len(cfgs) != 1 || cfgs[0].LineBytes != 128 {
		t.Errorf("CacheConfigs = %+v", cfgs)
	}
	cfg := ExperimentRequest{Scale: 4, Scenes: []string{"town"}, Sweep: SweepPerConfig, RenderWorkers: 3}.ExpConfig()
	if cfg.Scale != 4 || cfg.Sweep != exp.SweepPerConfig || cfg.RenderWorkers != 3 || len(cfg.Scenes) != 1 {
		t.Errorf("ExpConfig = %+v", cfg)
	}
}

// TestWireJSON pins the wire field names — renaming one is a breaking
// change the versioning policy forbids within a major version.
func TestWireJSON(t *testing.T) {
	req := ExperimentRequest{
		V: 1, Tenant: "t1", Scene: "goblet", Scale: 4, Sweep: SweepGrouped,
		Layout:    &Layout{Kind: "blocked", BlockW: 8},
		Traversal: &Traversal{Order: "hilbert"},
		Configs:   []CacheConfig{{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2, Policy: "lru"}},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"v":1`, `"tenant":"t1"`, `"scene":"goblet"`, `"scale":4`, `"sweep":"grouped"`,
		`"layout":{"kind":"blocked","block_w":8}`, `"traversal":{"order":"hilbert"}`,
		`"size_bytes":32768`, `"line_bytes":128`, `"ways":2`, `"policy":"lru"`,
	} {
		if !strings.Contains(string(b), field) {
			t.Errorf("wire JSON missing %s in %s", field, b)
		}
	}
	if omit, _ := json.Marshal(ExperimentRequest{}); string(omit) != "{}" {
		t.Errorf("zero request should marshal to {}, got %s", omit)
	}
	errBody, _ := json.Marshal(Errorf(CodeSaturated, "queue full"))
	want := `{"v":1,"code":"saturated","error":"queue full"}`
	if string(errBody) != want {
		t.Errorf("error body = %s, want %s", errBody, want)
	}
}

// ---- architecture kind ----

func archReq() ExperimentRequest {
	return ExperimentRequest{
		Scene:        "goblet",
		Architecture: &Architecture{},
	}.Normalized()
}

func TestArchitectureKind(t *testing.T) {
	if k := archReq().Kind(); k != KindArchitecture {
		t.Errorf("architecture request Kind = %v", k)
	}
	// The Architecture block wins the discrimination even when sweep
	// fields are also present.
	r := archReq()
	r.Configs = []CacheConfig{{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}}
	r.Layout = &Layout{Kind: "blocked", BlockW: 8}
	if k := r.Kind(); k != KindArchitecture {
		t.Errorf("architecture+configs request Kind = %v", k)
	}
}

// TestArchitectureNormalized pins the wire defaulting: every zero field
// becomes the paper-point machine, explicit values survive.
func TestArchitectureNormalized(t *testing.T) {
	a := archReq().Architecture
	want := Architecture{
		Pipeline:     PipelineBoth,
		FragmentFIFO: arch.DefaultFragmentFIFO, RequestFIFO: arch.DefaultRequestFIFO,
		ReorderBuffer: arch.DefaultReorderBuffer, ResultFIFO: arch.DefaultResultFIFO,
		TexelsPerCycle: arch.DefaultTexelsPerCycle, TexelsPerFragment: arch.DefaultTexelsPerFragment,
		FillLatency: arch.DefaultFillLatency, FillOccupancy: arch.DefaultFillOccupancy,
	}
	if *a != want {
		t.Errorf("Normalized zero Architecture = %+v, want %+v", *a, want)
	}
	kept := Architecture{Pipeline: PipelinePrefetch, FragmentFIFO: 4, FillLatency: 400}.Normalized()
	if kept.Pipeline != PipelinePrefetch || kept.FragmentFIFO != 4 || kept.FillLatency != 400 {
		t.Errorf("Normalized kept = %+v", kept)
	}
	if kept.RequestFIFO != arch.DefaultRequestFIFO {
		t.Errorf("Normalized left RequestFIFO = %d", kept.RequestFIFO)
	}
}

func TestValidateArchitecture(t *testing.T) {
	mut := func(f func(*ExperimentRequest)) ExperimentRequest {
		r := archReq()
		f(&r)
		return r
	}
	cases := []struct {
		name       string
		req        ExperimentRequest
		wantField  string
		wantCode   string
		wantStatus int
	}{
		{name: "minimal", req: archReq()},
		{name: "full", req: mut(func(r *ExperimentRequest) {
			r.Configs = []CacheConfig{{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2}}
			r.Layout = &Layout{Kind: "padded", BlockW: 8, PadBlocks: 4}
			r.Traversal = &Traversal{Order: "horizontal", TileW: 8, TileH: 8}
			r.Architecture = &Architecture{Pipeline: PipelinePrefetch, FragmentFIFO: 16, FillLatency: 200}
		})},
		{name: "with experiments", req: mut(func(r *ExperimentRequest) { r.Experiments = []string{"fig5.2"} }),
			wantField: "experiments", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "without scene", req: mut(func(r *ExperimentRequest) { r.Scene = "" }),
			wantField: "scene", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "unknown scene", req: mut(func(r *ExperimentRequest) { r.Scene = "nowhere" }),
			wantField: "scene", wantCode: CodeUnknownScene, wantStatus: http.StatusNotFound},
		{name: "bad pipeline", req: mut(func(r *ExperimentRequest) { r.Architecture.Pipeline = "speculative" }),
			wantField: "architecture.pipeline", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad fragment fifo", req: mut(func(r *ExperimentRequest) { r.Architecture.FragmentFIFO = -1 }),
			wantField: "architecture.fragment_fifo", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad fill latency", req: mut(func(r *ExperimentRequest) { r.Architecture.FillLatency = -5 }),
			wantField: "architecture.fill_latency", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad reorder buffer", req: mut(func(r *ExperimentRequest) { r.Architecture.ReorderBuffer = -2 }),
			wantField: "architecture.reorder_buffer", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad layout", req: mut(func(r *ExperimentRequest) { r.Layout = &Layout{Kind: "spiral"} }),
			wantField: "layout", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad traversal", req: mut(func(r *ExperimentRequest) { r.Traversal = &Traversal{Order: "diagonal"} }),
			wantField: "traversal", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
		{name: "bad cache config", req: mut(func(r *ExperimentRequest) { r.Configs = []CacheConfig{{SizeBytes: 100, LineBytes: 128}} }),
			wantField: "configs[0]", wantCode: CodeBadRequest, wantStatus: http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.req)
			if tc.wantCode == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("Validate = %v (%T), want *api.Error", err, err)
			}
			if ae.Code != tc.wantCode || ae.Field != tc.wantField {
				t.Errorf("error code/field = %s/%s, want %s/%s", ae.Code, ae.Field, tc.wantCode, tc.wantField)
			}
			if got := ae.HTTPStatus(); got != tc.wantStatus {
				t.Errorf("HTTPStatus = %d, want %d", got, tc.wantStatus)
			}
		})
	}
}

// TestArchConfigs pins the machine-list resolution: configs outer,
// pipelines inner, paper design point when no configs are named.
func TestArchConfigs(t *testing.T) {
	r := archReq()
	machines := r.ArchConfigs()
	if len(machines) != 2 {
		t.Fatalf("default ArchConfigs = %d machines, want blocking+prefetch", len(machines))
	}
	if machines[0].Pipeline != arch.Blocking || machines[1].Pipeline != arch.Prefetch {
		t.Errorf("pipeline order = %v, %v", machines[0].Pipeline, machines[1].Pipeline)
	}
	if machines[0].Cache != DefaultArchCache() {
		t.Errorf("default cache = %+v", machines[0].Cache)
	}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			t.Errorf("resolved machine invalid: %v", err)
		}
	}
	r.Architecture.Pipeline = PipelinePrefetch
	r.Configs = []CacheConfig{
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2},
		{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2},
	}
	machines = r.ArchConfigs()
	if len(machines) != 2 || machines[0].Cache.SizeBytes != 16<<10 || machines[1].Cache.SizeBytes != 32<<10 {
		t.Errorf("two-config prefetch ArchConfigs = %+v", machines)
	}
}

// TestArchitectureWireJSON pins the exact bytes of the architecture
// request — the wire-stability contract — and the additive-versioning
// discipline: unknown fields are rejected at the server boundary.
func TestArchitectureWireJSON(t *testing.T) {
	req := ExperimentRequest{
		V: 1, Scene: "goblet", Scale: 4,
		Architecture: &Architecture{
			Pipeline: "both", FragmentFIFO: 64, RequestFIFO: 32, ReorderBuffer: 32,
			ResultFIFO: 8, TexelsPerCycle: 4, TexelsPerFragment: 8,
			FillLatency: 100, FillOccupancy: 4,
		},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"v":1,"scene":"goblet",` +
		`"architecture":{"pipeline":"both","fragment_fifo":64,"request_fifo":32,` +
		`"reorder_buffer":32,"result_fifo":8,"texels_per_cycle":4,"texels_per_fragment":8,` +
		`"fill_latency":100,"fill_occupancy":4},"scale":4}`
	if string(b) != want {
		t.Errorf("wire bytes\n got %s\nwant %s", b, want)
	}

	// Round trip: the parsed form is the original struct.
	var back ExperimentRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scene != req.Scene || back.Architecture == nil || *back.Architecture != *req.Architecture {
		t.Errorf("round trip = %+v", back)
	}

	// A minimal request marshals with no architecture noise, and the
	// empty block round-trips through Normalized to the paper machine.
	minimal, _ := json.Marshal(ExperimentRequest{Scene: "goblet", Architecture: &Architecture{}})
	if string(minimal) != `{"scene":"goblet","architecture":{}}` {
		t.Errorf("minimal wire bytes = %s", minimal)
	}

	// Unknown fields inside the architecture block are rejected under
	// the server's DisallowUnknownFields decode.
	dec := json.NewDecoder(strings.NewReader(`{"scene":"goblet","architecture":{"fifo_depth":4}}`))
	dec.DisallowUnknownFields()
	var r ExperimentRequest
	if err := dec.Decode(&r); err == nil || !strings.Contains(err.Error(), "fifo_depth") {
		t.Errorf("unknown architecture field accepted: %v", err)
	}
}

// TestWrapErrorConfigTypes pins the classification of the typed config
// errors onto bad_request with their field names.
func TestWrapErrorConfigTypes(t *testing.T) {
	archErr := arch.Config{}.Validate() // invalid cache -> *cache.ConfigError
	var cce *cache.ConfigError
	if !errors.As(archErr, &cce) {
		t.Fatalf("zero arch config error = %T", archErr)
	}
	if ae := WrapError(archErr); ae.Code != CodeBadRequest || ae.Field != "configs" {
		t.Errorf("WrapError(cache config) = %s/%s", ae.Code, ae.Field)
	}

	bad := arch.Default(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}, arch.Prefetch)
	bad.FillOccupancy = 0
	if ae := WrapError(bad.Validate()); ae.Code != CodeBadRequest || ae.Field != "architecture.fill_occupancy" {
		t.Errorf("WrapError(arch config) = %s/%s", ae.Code, ae.Field)
	}

	pbad := prefetch.Default(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}, -1)
	if ae := WrapError(pbad.Validate()); ae.Code != CodeBadRequest || ae.Field != "fifo_depth" {
		t.Errorf("WrapError(prefetch config) = %s/%s", ae.Code, ae.Field)
	}
}
