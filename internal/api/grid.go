// Grid and Shard: the wire form of a sharded design-space exploration.
// A grid request names the axes of a cross-product — scenes, scales,
// layouts, traversals and cache configurations — instead of a single
// point; internal/shard enumerates it into a stable order of
// content-addressed work units, and an optional Shard block selects the
// deterministic 1/n slice a worker process runs. The enumeration (and
// therefore unit keys, shard assignment and output order) is part of the
// wire contract: the same grid always produces the same units in the
// same order, which is what lets a coordinator merge worker streams back
// into the byte-identical single-process output.
package api

import (
	"errors"
	"fmt"

	"texcache/internal/scenes"
)

// MaxGridUnits caps how many (trace, config) units one grid request may
// enumerate, protecting the server from an accidental combinatorial
// explosion. Shard the work across requests (or machines) instead.
const MaxGridUnits = 65536

// Grid describes a design-space cross-product. Every axis left empty
// takes the usual default: all four benchmark scenes, the request Scale,
// the paper's blocked 8x8 layout, each scene's reported scan direction.
// Configs is the one mandatory axis. Units enumerate trace-major:
// scenes x scales x layouts x traversals in the written order, with the
// config list innermost.
type Grid struct {
	// Scenes are the benchmark scenes to render; empty means all four.
	Scenes []string `json:"scenes,omitempty"`
	// Scales are the resolution divisors; empty means the request Scale
	// (itself defaulting to DefaultScale).
	Scales []int `json:"scales,omitempty"`
	// Layouts are the texture memory representations; empty means the
	// paper's blocked 8x8.
	Layouts []Layout `json:"layouts,omitempty"`
	// Traversals are the screen scan patterns; empty means each scene's
	// reported direction.
	Traversals []Traversal `json:"traversals,omitempty"`
	// Configs are the cache organizations replayed against every trace
	// of the grid; at least one is required.
	Configs []CacheConfig `json:"configs"`
}

// Shard selects the deterministic slice of the grid a worker runs:
// trace groups whose enumeration index is congruent to Index mod Count.
// Assignment is trace-affine — every config of one trace lands on the
// same worker — so each trace is rendered exactly once machine-wide
// even without a shared store.
type Shard struct {
	// Index is the zero-based worker number, 0 <= Index < Count.
	Index int `json:"index"`
	// Count is the total number of workers, >= 1.
	Count int `json:"count"`
}

// traceCount returns how many trace groups the grid enumerates once
// defaults are applied, and unitCount the total (trace, config) units.
func (g Grid) traceCount() int {
	n := len(g.Scenes)
	if n == 0 {
		n = len(scenes.Names())
	}
	if len(g.Scales) > 0 {
		n *= len(g.Scales)
	}
	if len(g.Layouts) > 0 {
		n *= len(g.Layouts)
	}
	if len(g.Traversals) > 0 {
		n *= len(g.Traversals)
	}
	return n
}

func (g Grid) unitCount() int { return g.traceCount() * len(g.Configs) }

// validateGrid checks a grid request: the grid axes are exclusive with
// every single-point field, each axis value must be valid on its own,
// and the enumeration must stay under MaxGridUnits.
func validateGrid(r ExperimentRequest) error {
	if len(r.Experiments) > 0 {
		return badRequest("experiments", "experiments and grid requests are mutually exclusive")
	}
	if r.Scene != "" || r.Layout != nil || r.Traversal != nil || len(r.Configs) > 0 {
		return badRequest("grid", "grid replaces the single-point scene/layout/traversal/configs fields; move them onto the grid axes")
	}
	if r.Architecture != nil {
		return badRequest("grid", "grid and architecture requests are mutually exclusive")
	}
	g := *r.Grid
	for i, name := range g.Scenes {
		if err := validScene(name); err != nil {
			var ae *Error
			if errors.As(err, &ae) {
				ae.Field = fmt.Sprintf("grid.scenes[%d]", i)
			}
			return err
		}
	}
	for i, s := range g.Scales {
		if s < 1 {
			return badRequest(fmt.Sprintf("grid.scales[%d]", i), "scale %d: must be >= 1 (1 = the paper's full size)", s)
		}
	}
	for i, l := range g.Layouts {
		spec, err := l.Spec()
		if err != nil {
			return badRequest(fmt.Sprintf("grid.layouts[%d]", i), "%v", err)
		}
		if err := spec.Validate(); err != nil {
			return badRequest(fmt.Sprintf("grid.layouts[%d]", i), "%v", err)
		}
	}
	for i, tv := range g.Traversals {
		if _, err := tv.Raster(); err != nil {
			return badRequest(fmt.Sprintf("grid.traversals[%d]", i), "%v", err)
		}
	}
	if len(g.Configs) == 0 {
		return badRequest("grid.configs", "grid request needs at least one cache configuration")
	}
	for i, wire := range g.Configs {
		cfg, err := wire.Cache()
		if err != nil {
			return badRequest(fmt.Sprintf("grid.configs[%d]", i), "%v", err)
		}
		if err := cfg.Validate(); err != nil {
			return badRequest(fmt.Sprintf("grid.configs[%d]", i), "%v", err)
		}
	}
	if n := g.unitCount(); n > MaxGridUnits {
		return badRequest("grid", "grid enumerates %d units (max %d); split it across requests", n, MaxGridUnits)
	}
	return validateShard(r)
}

// validateShard checks the optional shard selection against the grid.
func validateShard(r ExperimentRequest) error {
	s := r.Shard
	if s == nil {
		return nil
	}
	if s.Count < 1 {
		return badRequest("shard.count", "shard count %d: must be >= 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return badRequest("shard.index", "shard index %d: must be in [0, %d)", s.Index, s.Count)
	}
	return nil
}
