// Package api defines the versioned request/response vocabulary every
// entry point of the simulator speaks: the cmd/texsim CLI, the
// cmd/texserve experiment server, the cmd/texload load generator and the
// engine all construct and consume the same ExperimentRequest instead of
// carrying parallel flag and Config plumbing. The types are
// JSON-friendly — enums travel as the strings experiment output already
// uses ("blocked", "hilbert", "lru") — and the wire format is versioned:
// Version is echoed back in error bodies and response headers, and
// revisions within a major version are strictly additive (new optional
// fields only), so a v1 client can talk to any later v1 server.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"texcache/internal/arch"
	"texcache/internal/cache"
	"texcache/internal/exp"
	"texcache/internal/prefetch"
	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// Version is the wire-format major version. Servers echo it in error
// bodies ("v") and in the X-Texcache-Api-Version response header;
// requests may omit it (zero means "current").
const Version = 1

// Sweep replay modes, the wire form of exp.SweepMode.
const (
	// SweepGrouped answers every LRU configuration sharing a line size
	// from one trace walk; the default when the field is empty.
	SweepGrouped = "grouped"
	// SweepPerConfig replays one cache per configuration.
	SweepPerConfig = "per-config"
)

// DefaultScale is the resolution divisor a request gets when it leaves
// Scale zero: half resolution, the same fidelity/runtime tradeoff as
// exp.DefaultConfig and the texsim -scale default.
const DefaultScale = 2

// ExperimentRequest is the single description of a unit of simulation
// work. It comes in four kinds, discriminated by Kind():
//
//   - KindExperiments regenerates registered paper experiments:
//     Experiments names the IDs (empty = all), Scenes optionally
//     restricts the benchmark set.
//   - KindSweep renders one (Scene, Scale, Layout, Traversal) texel
//     stream — coalesced with every other request for the same key —
//     and replays Configs against it, answering a custom cache design
//     question without a registered experiment.
//   - KindArchitecture runs that same texel stream through the
//     cycle-level texture-unit pipelines instead: Architecture selects
//     blocking and/or prefetching organizations and their timing, and
//     Configs optionally overrides the cache design point.
//   - KindGrid enumerates the cross-product of Grid's axes into
//     deterministic work units and replays each (trace, config) point,
//     optionally sliced by Shard for multi-process runs.
//
// The zero value of every optional field means "the default": Scale 0
// is DefaultScale, a nil Layout is the paper's 8x8 blocked
// representation, a nil Traversal is the scene's reported scan
// direction, an empty Sweep is SweepGrouped, and Workers/RenderWorkers 0
// mean GOMAXPROCS.
type ExperimentRequest struct {
	// V is the wire-format version; 0 means the current Version.
	V int `json:"v,omitempty"`
	// Tenant identifies the requesting client for the server's fair
	// queuing; empty is a shared anonymous bucket.
	Tenant string `json:"tenant,omitempty"`

	// Experiments lists registered experiment IDs to run; empty means
	// every registered experiment (when the request is not a sweep).
	Experiments []string `json:"experiments,omitempty"`
	// Scenes restricts the benchmark scenes experiments run over; empty
	// means each experiment's own default set.
	Scenes []string `json:"scenes,omitempty"`

	// Scene names the benchmark to render for a sweep request.
	Scene string `json:"scene,omitempty"`
	// Layout selects the texture memory representation of a sweep
	// request; nil means blocked 8x8, the paper's Section 5.3 standard.
	Layout *Layout `json:"layout,omitempty"`
	// Traversal selects the screen scan pattern of a sweep request; nil
	// means the scene's reported rasterization direction.
	Traversal *Traversal `json:"traversal,omitempty"`
	// Configs are the cache organizations a sweep request replays; an
	// architecture request may also set them to override its default
	// design point.
	Configs []CacheConfig `json:"configs,omitempty"`

	// Architecture, when present, makes the request an architecture
	// comparison: the scene's texel stream runs through the cycle-level
	// texture-unit pipelines instead of plain cache replay.
	Architecture *Architecture `json:"architecture,omitempty"`

	// Grid, when present, makes the request a design-space exploration:
	// the cross-product of its axes is enumerated into deterministic,
	// content-addressed work units (see internal/shard) and every
	// (trace, config) unit is replayed. Exclusive with the single-point
	// scene/layout/traversal/configs fields and with Architecture.
	Grid *Grid `json:"grid,omitempty"`
	// Shard, when present on a grid request, restricts the run to the
	// deterministic 1/Count slice of trace groups assigned to Index, so
	// n worker processes cover the grid exactly once between them.
	Shard *Shard `json:"shard,omitempty"`

	// Scale divides screen and texture resolution; 1 is the paper's full
	// size, 0 means DefaultScale.
	Scale int `json:"scale,omitempty"`
	// Sweep selects the sweep replay mode, SweepGrouped or
	// SweepPerConfig; both are bit-identical, empty means grouped.
	Sweep string `json:"sweep,omitempty"`
	// Workers bounds how many experiments run concurrently (0 =
	// GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// RenderWorkers is the tile-parallel rasterization worker count per
	// render (0 = GOMAXPROCS, 1 = serial); traces are bit-identical at
	// any setting.
	RenderWorkers int `json:"render_workers,omitempty"`
}

// RequestKind discriminates the three shapes of ExperimentRequest.
type RequestKind int

const (
	// KindExperiments runs registered paper experiments.
	KindExperiments RequestKind = iota
	// KindSweep renders one scene trace and replays a configuration set.
	KindSweep
	// KindArchitecture runs one scene trace through the cycle-level
	// texture-unit pipelines (blocking vs prefetching).
	KindArchitecture
	// KindGrid enumerates a design-space cross-product into
	// content-addressed units and replays every (trace, config) point,
	// optionally restricted to one shard's slice.
	KindGrid
)

// Kind reports which shape the request has: a Grid block makes it a
// design-space exploration, an Architecture block an architecture
// comparison, any other sweep-only field a sweep.
func (r ExperimentRequest) Kind() RequestKind {
	if r.Grid != nil {
		return KindGrid
	}
	if r.Architecture != nil {
		return KindArchitecture
	}
	if r.Scene != "" || len(r.Configs) > 0 || r.Layout != nil || r.Traversal != nil {
		return KindSweep
	}
	return KindExperiments
}

// Normalized returns a copy with version and scale defaults filled in —
// V 0 becomes Version, Scale 0 becomes DefaultScale — and, for an
// architecture request, the Architecture block's zero fields replaced
// with the paper-point machine (Normalized below). Explicitly invalid
// values (negative scale, bad names) are left for Validate to reject.
func (r ExperimentRequest) Normalized() ExperimentRequest {
	if r.V == 0 {
		r.V = Version
	}
	if r.Scale == 0 {
		r.Scale = DefaultScale
	}
	if r.Architecture != nil {
		a := r.Architecture.Normalized()
		r.Architecture = &a
	}
	return r
}

// ResultIdentity is the canonical byte form of everything the request's
// output depends on: the Normalized request with the execution-only
// fields erased. Tenant routes queuing, Workers/RenderWorkers set
// parallelism, Sweep picks a replay strategy — all four are pinned
// bit-identical on the output by the engine's determinism tests, so two
// requests differing only there produce the same stream and share one
// identity. Everything else (scene, scale, layout, traversal, configs,
// architecture, grid, shard) changes the rows and stays in the key.
// JSON field order is the struct declaration, so the encoding is stable.
func (r ExperimentRequest) ResultIdentity() string {
	n := r.Normalized()
	n.Tenant = ""
	n.Workers = 0
	n.RenderWorkers = 0
	n.Sweep = ""
	b, err := json.Marshal(n)
	if err != nil {
		// Plain data fields only; Marshal cannot fail. Keep the error
		// visible rather than silently aliasing keys if that ever changes.
		panic("api: marshaling ExperimentRequest: " + err.Error())
	}
	return string(b)
}

// Layout is the wire form of texture.LayoutSpec: the kind travels as
// the string experiment output uses.
type Layout struct {
	// Kind is "nonblocked", "blocked", "padded", "6d", "williams" or
	// "compressed".
	Kind string `json:"kind"`
	// BlockW is the square block edge in texels (power of two), for the
	// blocked family.
	BlockW int `json:"block_w,omitempty"`
	// PadBlocks is the pad-block count per block row (power of two), for
	// "padded".
	PadBlocks int `json:"pad_blocks,omitempty"`
	// SuperBytes is the coarser blocking size in bytes for "6d".
	SuperBytes int `json:"super_bytes,omitempty"`
	// Ratio is the fixed compression ratio (2 or 4) for "compressed".
	Ratio int `json:"ratio,omitempty"`
}

// layoutKinds maps wire names onto texture layout kinds, the inverse of
// texture.LayoutKind.String.
var layoutKinds = map[string]texture.LayoutKind{
	"nonblocked": texture.NonBlockedKind,
	"blocked":    texture.BlockedKind,
	"padded":     texture.PaddedBlockedKind,
	"6d":         texture.SixDBlockedKind,
	"williams":   texture.WilliamsKind,
	"compressed": texture.CompressedKind,
}

// Spec converts the wire layout to the internal spec. Unknown kinds
// return an error naming the accepted set.
func (l Layout) Spec() (texture.LayoutSpec, error) {
	kind, ok := layoutKinds[l.Kind]
	if !ok {
		return texture.LayoutSpec{}, fmt.Errorf("layout kind %q: want one of %s", l.Kind, strings.Join(layoutKindNames(), ", "))
	}
	return texture.LayoutSpec{
		Kind: kind, BlockW: l.BlockW, PadBlocks: l.PadBlocks,
		SuperBytes: l.SuperBytes, Ratio: l.Ratio,
	}, nil
}

// LayoutFromSpec converts an internal spec to the wire form.
func LayoutFromSpec(s texture.LayoutSpec) Layout {
	return Layout{
		Kind: s.Kind.String(), BlockW: s.BlockW, PadBlocks: s.PadBlocks,
		SuperBytes: s.SuperBytes, Ratio: s.Ratio,
	}
}

// layoutKindNames lists the accepted layout kind strings, sorted by the
// internal enum so error messages are stable.
func layoutKindNames() []string {
	return []string{"nonblocked", "blocked", "padded", "6d", "williams", "compressed"}
}

// Traversal is the wire form of raster.Traversal.
type Traversal struct {
	// Order is "horizontal", "vertical" or "hilbert".
	Order string `json:"order"`
	// TileW and TileH enable static screen tiling when both are set.
	TileW int `json:"tile_w,omitempty"`
	TileH int `json:"tile_h,omitempty"`
}

// traversalOrders maps wire names onto scan orders.
var traversalOrders = map[string]raster.Order{
	"horizontal": raster.RowMajor,
	"vertical":   raster.ColumnMajor,
	"hilbert":    raster.HilbertOrder,
}

// Raster converts the wire traversal to the internal form.
func (t Traversal) Raster() (raster.Traversal, error) {
	order, ok := traversalOrders[t.Order]
	if !ok {
		return raster.Traversal{}, fmt.Errorf("traversal order %q: want horizontal, vertical or hilbert", t.Order)
	}
	return raster.Traversal{Order: order, TileW: t.TileW, TileH: t.TileH}, nil
}

// Architecture pipeline selections, the wire form of arch.Pipeline plus
// the "both" comparison default.
const (
	// PipelineBlocking runs only the blocking baseline.
	PipelineBlocking = "blocking"
	// PipelinePrefetch runs only the prefetching pipeline.
	PipelinePrefetch = "prefetch"
	// PipelineBoth runs both organizations over one shared timeline; the
	// default when the field is empty.
	PipelineBoth = "both"
)

// Architecture is the wire form of the cycle-level texture-unit
// comparison: which pipeline organizations to run and their timing
// parameters. Every zero field means the paper-point default
// (arch.Default); Normalized makes the defaulting explicit on the wire.
type Architecture struct {
	// Pipeline is "blocking", "prefetch" or "both"; empty means both.
	Pipeline string `json:"pipeline,omitempty"`
	// FragmentFIFO is the fragment queue depth in fragments (0 = the
	// paper point, 64). To model a no-FIFO prefetch machine explicitly,
	// select the blocking pipeline instead — its timing is identical.
	FragmentFIFO int `json:"fragment_fifo,omitempty"`
	// RequestFIFO bounds outstanding fill requests (0 = 32).
	RequestFIFO int `json:"request_fifo,omitempty"`
	// ReorderBuffer bounds fills awaiting consumption (0 = 32).
	ReorderBuffer int `json:"reorder_buffer,omitempty"`
	// ResultFIFO is the output queue depth in fragments (0 = 8).
	ResultFIFO int `json:"result_fifo,omitempty"`
	// TexelsPerCycle is the cache read rate (0 = 4).
	TexelsPerCycle int `json:"texels_per_cycle,omitempty"`
	// TexelsPerFragment is the filter cost (0 = 8, trilinear).
	TexelsPerFragment int `json:"texels_per_fragment,omitempty"`
	// FillLatency is the fill round-trip start in cycles (0 = 100).
	FillLatency int `json:"fill_latency,omitempty"`
	// FillOccupancy is the line transfer time in cycles (0 = 4).
	FillOccupancy int `json:"fill_occupancy,omitempty"`
}

// Normalized returns a copy with every zero field replaced by the
// paper-point default, so a served request and its echo agree on the
// machine that actually ran.
func (a Architecture) Normalized() Architecture {
	if a.Pipeline == "" {
		a.Pipeline = PipelineBoth
	}
	if a.FragmentFIFO == 0 {
		a.FragmentFIFO = arch.DefaultFragmentFIFO
	}
	if a.RequestFIFO == 0 {
		a.RequestFIFO = arch.DefaultRequestFIFO
	}
	if a.ReorderBuffer == 0 {
		a.ReorderBuffer = arch.DefaultReorderBuffer
	}
	if a.ResultFIFO == 0 {
		a.ResultFIFO = arch.DefaultResultFIFO
	}
	if a.TexelsPerCycle == 0 {
		a.TexelsPerCycle = arch.DefaultTexelsPerCycle
	}
	if a.TexelsPerFragment == 0 {
		a.TexelsPerFragment = arch.DefaultTexelsPerFragment
	}
	if a.FillLatency == 0 {
		a.FillLatency = arch.DefaultFillLatency
	}
	if a.FillOccupancy == 0 {
		a.FillOccupancy = arch.DefaultFillOccupancy
	}
	return a
}

// pipelines resolves the wire pipeline selection onto the arch enum.
func (a Architecture) pipelines() ([]arch.Pipeline, error) {
	switch a.Pipeline {
	case "", PipelineBoth:
		return []arch.Pipeline{arch.Blocking, arch.Prefetch}, nil
	case PipelineBlocking:
		return []arch.Pipeline{arch.Blocking}, nil
	case PipelinePrefetch:
		return []arch.Pipeline{arch.Prefetch}, nil
	default:
		return nil, fmt.Errorf("pipeline %q: want %q, %q or %q", a.Pipeline,
			PipelineBlocking, PipelinePrefetch, PipelineBoth)
	}
}

// archConfig assembles the arch configuration for one cache design
// point and pipeline. Call only after Validate.
func (a Architecture) archConfig(c cache.Config, p arch.Pipeline) arch.Config {
	a = a.Normalized()
	return arch.Config{
		Cache:             c,
		Pipeline:          p,
		FragmentFIFO:      a.FragmentFIFO,
		RequestFIFO:       a.RequestFIFO,
		ReorderBuffer:     a.ReorderBuffer,
		ResultFIFO:        a.ResultFIFO,
		TexelsPerCycle:    a.TexelsPerCycle,
		TexelsPerFragment: a.TexelsPerFragment,
		FillLatency:       a.FillLatency,
		FillOccupancy:     a.FillOccupancy,
	}
}

// DefaultArchCache is the cache design point an architecture request
// gets when it names no Configs: the paper's 32KB 2-way 128B-line
// texture cache.
func DefaultArchCache() cache.Config {
	return cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2}
}

// ArchCacheConfigs resolves the cache design points of an architecture
// request: Configs when given, the paper point otherwise. Call only
// after Validate.
func (r ExperimentRequest) ArchCacheConfigs() []cache.Config {
	if len(r.Configs) == 0 {
		return []cache.Config{DefaultArchCache()}
	}
	return r.CacheConfigs()
}

// ArchConfigs resolves the full machine list of an architecture
// request: the cross product of its cache design points and selected
// pipelines, in report order (configs outer, pipelines inner). Call
// only after Validate.
func (r ExperimentRequest) ArchConfigs() []arch.Config {
	if r.Architecture == nil {
		return nil
	}
	pipes, _ := r.Architecture.pipelines()
	var out []arch.Config
	for _, c := range r.ArchCacheConfigs() {
		for _, p := range pipes {
			out = append(out, r.Architecture.archConfig(c, p))
		}
	}
	return out
}

// CacheConfig is the wire form of cache.Config.
type CacheConfig struct {
	// SizeBytes is the total capacity (power of two).
	SizeBytes int `json:"size_bytes"`
	// LineBytes is the line size (power of two, >= 4).
	LineBytes int `json:"line_bytes"`
	// Ways is the associativity: 1 direct-mapped, N-way, 0 fully
	// associative.
	Ways int `json:"ways,omitempty"`
	// Policy is "lru" (default), "fifo" or "random".
	Policy string `json:"policy,omitempty"`
}

// cachePolicies maps wire names onto replacement policies.
var cachePolicies = map[string]cache.Replacement{
	"":       cache.LRU,
	"lru":    cache.LRU,
	"fifo":   cache.FIFO,
	"random": cache.Random,
}

// Cache converts the wire configuration to the internal form.
func (c CacheConfig) Cache() (cache.Config, error) {
	policy, ok := cachePolicies[c.Policy]
	if !ok {
		return cache.Config{}, fmt.Errorf("cache policy %q: want lru, fifo or random", c.Policy)
	}
	return cache.Config{
		SizeBytes: c.SizeBytes, LineBytes: c.LineBytes,
		Ways: c.Ways, Policy: policy,
	}, nil
}

// ExpConfig maps the request onto the experiment-harness configuration.
// The trace provider is a runtime concern and stays nil; the engine (or
// the server's shared cache) fills it in.
func (r ExperimentRequest) ExpConfig() exp.Config {
	cfg := exp.Config{
		Scale:         r.Scale,
		Scenes:        r.Scenes,
		RenderWorkers: r.RenderWorkers,
	}
	if r.Sweep == SweepPerConfig {
		cfg.Sweep = exp.SweepPerConfig
	}
	return cfg
}

// LayoutSpec resolves the sweep request's layout, defaulting to the
// paper's 8x8 blocked representation. Call only after Validate.
func (r ExperimentRequest) LayoutSpec() texture.LayoutSpec {
	if r.Layout == nil {
		return texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}
	}
	spec, _ := r.Layout.Spec()
	return spec
}

// RasterTraversal resolves the sweep request's traversal, defaulting to
// the scene's reported scan direction. Call only after Validate.
func (r ExperimentRequest) RasterTraversal() raster.Traversal {
	if r.Traversal == nil {
		return exp.DefaultTraversalFor(r.Scene)
	}
	trav, _ := r.Traversal.Raster()
	return trav
}

// CacheConfigs resolves the sweep request's cache configurations. Call
// only after Validate.
func (r ExperimentRequest) CacheConfigs() []cache.Config {
	out := make([]cache.Config, len(r.Configs))
	for i, c := range r.Configs {
		out[i], _ = c.Cache()
	}
	return out
}

// Error codes. Codes are wire-stable; messages are not.
const (
	// CodeBadRequest marks a request the server could not parse or that
	// failed validation.
	CodeBadRequest = "bad_request"
	// CodeUnknownExperiment marks an experiment ID outside the registry.
	CodeUnknownExperiment = "unknown_experiment"
	// CodeUnknownScene marks a scene name outside the benchmark set.
	CodeUnknownScene = "unknown_scene"
	// CodeSaturated marks a request rejected by queue-depth backpressure;
	// retry after the Retry-After interval.
	CodeSaturated = "saturated"
	// CodeInternal marks a server-side failure.
	CodeInternal = "internal"
)

// Error is the typed error every validation and serving path returns;
// it doubles as the JSON error body ("v", "code", "error", "field").
type Error struct {
	// V echoes the wire-format version.
	V int `json:"v"`
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message describes what was wrong, for humans.
	Message string `json:"error"`
	// Field names the request field at fault, when one is identifiable.
	Field string `json:"field,omitempty"`

	cause error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Field != "" {
		return "api: " + e.Field + ": " + e.Message
	}
	return "api: " + e.Message
}

// Unwrap exposes the underlying typed error (for example
// *exp.UnknownExperimentError or *scenes.UnknownSceneError), so callers
// keyed to the pre-API error types keep working through errors.As.
func (e *Error) Unwrap() error { return e.cause }

// HTTPStatus maps the error code onto the status the server responds
// with.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeUnknownExperiment, CodeUnknownScene:
		return http.StatusNotFound
	case CodeSaturated:
		return http.StatusTooManyRequests
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// badRequest builds a field-level validation error.
func badRequest(field, format string, args ...any) *Error {
	return &Error{V: Version, Code: CodeBadRequest, Field: field, Message: fmt.Sprintf(format, args...)}
}

// Errorf builds a typed error with the given code.
func Errorf(code, format string, args ...any) *Error {
	return &Error{V: Version, Code: code, Message: fmt.Sprintf(format, args...)}
}

// WrapError converts any error into the typed wire form, passing
// existing *Error values through and classifying the repository's typed
// errors onto their codes.
func WrapError(err error) *Error {
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	var (
		ue *exp.UnknownExperimentError
		se *scenes.UnknownSceneError
		ac *arch.ConfigError
		pc *prefetch.ConfigError
		cc *cache.ConfigError
	)
	switch {
	case errors.As(err, &ue):
		return &Error{V: Version, Code: CodeUnknownExperiment, Field: "experiments", Message: err.Error(), cause: err}
	case errors.As(err, &se):
		return &Error{V: Version, Code: CodeUnknownScene, Field: "scene", Message: err.Error(), cause: err}
	case errors.As(err, &ac):
		return &Error{V: Version, Code: CodeBadRequest, Field: "architecture." + ac.Field, Message: err.Error(), cause: err}
	case errors.As(err, &pc):
		return &Error{V: Version, Code: CodeBadRequest, Field: pc.Field, Message: err.Error(), cause: err}
	case errors.As(err, &cc):
		return &Error{V: Version, Code: CodeBadRequest, Field: "configs", Message: err.Error(), cause: err}
	default:
		return &Error{V: Version, Code: CodeInternal, Message: err.Error(), cause: err}
	}
}

// Validate checks the request as given (apply Normalized first when
// zero fields should mean defaults) and returns nil or an *Error whose
// code and field say what was wrong. It is the one validation path:
// texsim, texserve and the library facade all call it, so a request
// accepted anywhere is accepted everywhere.
func Validate(r ExperimentRequest) error {
	if r.V != 0 && r.V != Version {
		return badRequest("v", "unsupported api version %d (this build speaks %d)", r.V, Version)
	}
	if r.Scale < 1 {
		return badRequest("scale", "scale %d: must be >= 1 (1 = the paper's full size)", r.Scale)
	}
	if r.Workers < 0 {
		return badRequest("workers", "workers %d: must be >= 0 (0 = GOMAXPROCS)", r.Workers)
	}
	if r.RenderWorkers < 0 {
		return badRequest("render_workers", "render workers %d: must be >= 0 (0 = GOMAXPROCS)", r.RenderWorkers)
	}
	switch r.Sweep {
	case "", SweepGrouped, SweepPerConfig:
	default:
		return badRequest("sweep", "sweep mode %q: want %q or %q", r.Sweep, SweepGrouped, SweepPerConfig)
	}
	for _, name := range r.Scenes {
		if err := validScene(name); err != nil {
			return err
		}
	}
	if r.Shard != nil && r.Grid == nil {
		return badRequest("shard", "shard selection requires a grid request")
	}
	switch r.Kind() {
	case KindGrid:
		return validateGrid(r)
	case KindArchitecture:
		return validateArchitecture(r)
	case KindSweep:
		return validateSweep(r)
	}
	for _, id := range r.Experiments {
		if _, ok := exp.Lookup(id); !ok {
			cause := &exp.UnknownExperimentError{ID: id}
			return &Error{V: Version, Code: CodeUnknownExperiment, Field: "experiments",
				Message: cause.Error(), cause: cause}
		}
	}
	return nil
}

// validateSweep checks the sweep-only fields.
func validateSweep(r ExperimentRequest) error {
	if len(r.Experiments) > 0 {
		return badRequest("experiments", "experiments and sweep fields (scene/layout/traversal/configs) are mutually exclusive")
	}
	if r.Scene == "" {
		return badRequest("scene", "sweep request needs a scene (one of %s)", strings.Join(scenes.Names(), ", "))
	}
	if err := validScene(r.Scene); err != nil {
		return err
	}
	if len(r.Configs) == 0 {
		return badRequest("configs", "sweep request needs at least one cache configuration")
	}
	if r.Layout != nil {
		spec, err := r.Layout.Spec()
		if err != nil {
			return badRequest("layout", "%v", err)
		}
		if err := spec.Validate(); err != nil {
			return badRequest("layout", "%v", err)
		}
	}
	if r.Traversal != nil {
		if _, err := r.Traversal.Raster(); err != nil {
			return badRequest("traversal", "%v", err)
		}
	}
	for i, wire := range r.Configs {
		cfg, err := wire.Cache()
		if err != nil {
			return badRequest(fmt.Sprintf("configs[%d]", i), "%v", err)
		}
		if err := cfg.Validate(); err != nil {
			return badRequest(fmt.Sprintf("configs[%d]", i), "%v", err)
		}
	}
	return nil
}

// validateArchitecture checks an architecture request: the shared
// scene/layout/traversal/configs rules of a sweep (configs optional —
// the paper design point stands in), plus the Architecture block
// itself, whose field errors surface as "architecture.<field>".
func validateArchitecture(r ExperimentRequest) error {
	if len(r.Experiments) > 0 {
		return badRequest("experiments", "experiments and architecture requests are mutually exclusive")
	}
	if r.Scene == "" {
		return badRequest("scene", "architecture request needs a scene (one of %s)", strings.Join(scenes.Names(), ", "))
	}
	if err := validScene(r.Scene); err != nil {
		return err
	}
	if r.Layout != nil {
		spec, err := r.Layout.Spec()
		if err != nil {
			return badRequest("layout", "%v", err)
		}
		if err := spec.Validate(); err != nil {
			return badRequest("layout", "%v", err)
		}
	}
	if r.Traversal != nil {
		if _, err := r.Traversal.Raster(); err != nil {
			return badRequest("traversal", "%v", err)
		}
	}
	for i, wire := range r.Configs {
		cfg, err := wire.Cache()
		if err != nil {
			return badRequest(fmt.Sprintf("configs[%d]", i), "%v", err)
		}
		if err := cfg.Validate(); err != nil {
			return badRequest(fmt.Sprintf("configs[%d]", i), "%v", err)
		}
	}
	a := *r.Architecture
	if _, err := a.pipelines(); err != nil {
		return badRequest("architecture.pipeline", "%v", err)
	}
	// One arch.Validate per cache design point covers every machine the
	// request will run; the typed field comes back out on the wire as
	// "architecture.<field>".
	for _, c := range r.ArchCacheConfigs() {
		if err := a.archConfig(c, arch.Prefetch).Validate(); err != nil {
			var ce *arch.ConfigError
			if errors.As(err, &ce) {
				return badRequest("architecture."+ce.Field, "%s", ce.Reason)
			}
			return badRequest("architecture", "%v", err)
		}
	}
	return nil
}

// validScene checks a scene name against the benchmark set.
func validScene(name string) error {
	for _, n := range scenes.Names() {
		if n == name {
			return nil
		}
	}
	cause := &scenes.UnknownSceneError{Name: name}
	return &Error{V: Version, Code: CodeUnknownScene, Field: "scene",
		Message: cause.Error() + " (want " + strings.Join(scenes.Names(), ", ") + ")", cause: cause}
}
