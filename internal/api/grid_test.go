package api

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func gridReq() ExperimentRequest {
	return ExperimentRequest{
		Grid: &Grid{
			Scenes:  []string{"town", "flight"},
			Scales:  []int{4, 8},
			Configs: []CacheConfig{{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1}},
		},
	}.Normalized()
}

func TestGridKind(t *testing.T) {
	if k := gridReq().Kind(); k != KindGrid {
		t.Errorf("grid request Kind = %v, want grid", k)
	}
	// Grid wins the kind dispatch even when other fields are set (the
	// validator then rejects the combination).
	r := gridReq()
	r.Scene = "town"
	if k := r.Kind(); k != KindGrid {
		t.Errorf("grid+scene request Kind = %v, want grid", k)
	}
}

// TestValidateGrid drives validateGrid and validateShard through their
// error cases, pinning the field each error names.
func TestValidateGrid(t *testing.T) {
	mut := func(f func(*ExperimentRequest)) ExperimentRequest {
		r := gridReq()
		f(&r)
		return r
	}
	cases := []struct {
		name  string
		req   ExperimentRequest
		field string // empty = valid
	}{
		{name: "valid", req: gridReq()},
		{name: "valid empty axes", req: ExperimentRequest{
			Grid: &Grid{Configs: []CacheConfig{{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1}}},
		}.Normalized()},
		{name: "valid shard", req: mut(func(r *ExperimentRequest) { r.Shard = &Shard{Index: 1, Count: 4} })},
		{name: "shard without grid", req: ExperimentRequest{
			Scene:   "town",
			Configs: []CacheConfig{{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1}},
			Shard:   &Shard{Index: 0, Count: 2},
		}.Normalized(), field: "shard"},
		{name: "grid plus experiments", req: mut(func(r *ExperimentRequest) { r.Experiments = []string{"fig5.2"} }), field: "experiments"},
		{name: "grid plus scene", req: mut(func(r *ExperimentRequest) { r.Scene = "town" }), field: "grid"},
		{name: "grid plus configs", req: mut(func(r *ExperimentRequest) {
			r.Configs = []CacheConfig{{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1}}
		}), field: "grid"},
		{name: "grid plus architecture", req: mut(func(r *ExperimentRequest) { r.Architecture = &Architecture{} }), field: "grid"},
		{name: "bad scene", req: mut(func(r *ExperimentRequest) { r.Grid.Scenes[1] = "nowhere" }), field: "grid.scenes[1]"},
		{name: "bad scale", req: mut(func(r *ExperimentRequest) { r.Grid.Scales = []int{4, 0} }), field: "grid.scales[1]"},
		{name: "bad layout", req: mut(func(r *ExperimentRequest) { r.Grid.Layouts = []Layout{{Kind: "spiral"}} }), field: "grid.layouts[0]"},
		{name: "bad traversal", req: mut(func(r *ExperimentRequest) { r.Grid.Traversals = []Traversal{{Order: "zigzag"}} }), field: "grid.traversals[0]"},
		{name: "no configs", req: mut(func(r *ExperimentRequest) { r.Grid.Configs = nil }), field: "grid.configs"},
		{name: "bad config", req: mut(func(r *ExperimentRequest) {
			r.Grid.Configs = append(r.Grid.Configs, CacheConfig{SizeBytes: 100, LineBytes: 64, Ways: 1})
		}), field: "grid.configs[1]"},
		{name: "unit explosion", req: mut(func(r *ExperimentRequest) {
			r.Grid.Scales = make([]int, 0, MaxGridUnits)
			for i := 0; i < MaxGridUnits; i++ {
				r.Grid.Scales = append(r.Grid.Scales, i+1)
			}
		}), field: "grid"},
		{name: "shard zero count", req: mut(func(r *ExperimentRequest) { r.Shard = &Shard{Index: 0, Count: 0} }), field: "shard.count"},
		{name: "shard negative index", req: mut(func(r *ExperimentRequest) { r.Shard = &Shard{Index: -1, Count: 2} }), field: "shard.index"},
		{name: "shard index at count", req: mut(func(r *ExperimentRequest) { r.Shard = &Shard{Index: 2, Count: 2} }), field: "shard.index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.req)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("Validate = %v, want *api.Error naming %q", err, tc.field)
			}
			if ae.Field != tc.field {
				t.Errorf("error field = %q, want %q", ae.Field, tc.field)
			}
		})
	}
}

// TestGridWireJSON pins the grid/shard wire encoding: field names,
// omitted defaults, and a round trip through the HTTP body form.
func TestGridWireJSON(t *testing.T) {
	r := gridReq()
	r.Shard = &Shard{Index: 1, Count: 4}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"grid":{`, `"scenes":["town","flight"]`, `"scales":[4,8]`,
		`"configs":[{`, `"shard":{"index":1,"count":4}`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("wire form %s missing %s", b, want)
		}
	}
	for _, absent := range []string{`"layouts"`, `"traversals"`, `"scene"`} {
		if strings.Contains(string(b), absent) {
			t.Errorf("wire form %s should omit %s", b, absent)
		}
	}
	var back ExperimentRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind() != KindGrid || back.Shard == nil || back.Shard.Index != 1 || back.Shard.Count != 4 {
		t.Errorf("round trip = kind %v shard %+v", back.Kind(), back.Shard)
	}
	if err := Validate(back.Normalized()); err != nil {
		t.Errorf("round-tripped request invalid: %v", err)
	}
}
