// Package fb provides the framebuffer and depth buffer the pipeline
// renders into, with PNG export for visual verification of the synthetic
// scenes ("the images allow us to verify that the interpretation of the
// trace is accurate", Section 4.1).
package fb

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// Framebuffer is a W x H RGBA color buffer with a float32 depth buffer.
type Framebuffer struct {
	W, H  int
	Color []color.NRGBA
	Depth []float32
}

// New returns a cleared framebuffer: black color, maximum depth.
func New(w, h int) *Framebuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("fb: invalid dimensions %dx%d", w, h))
	}
	f := &Framebuffer{
		W:     w,
		H:     h,
		Color: make([]color.NRGBA, w*h),
		Depth: make([]float32, w*h),
	}
	f.Clear()
	return f
}

// Clear resets the color buffer to opaque black and the depth buffer to
// the far plane.
func (f *Framebuffer) Clear() {
	for i := range f.Color {
		f.Color[i] = color.NRGBA{A: 255}
		f.Depth[i] = math.MaxFloat32
	}
}

// DepthTest performs the z-buffer test for (x, y) at depth z and commits z
// on success, returning whether the fragment passed. Out-of-bounds
// coordinates fail.
func (f *Framebuffer) DepthTest(x, y int, z float64) bool {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return false
	}
	i := y*f.W + x
	if float32(z) >= f.Depth[i] {
		return false
	}
	f.Depth[i] = float32(z)
	return true
}

// SetPixel writes an RGB color in [0,1] to (x, y). Out-of-bounds writes
// are ignored.
func (f *Framebuffer) SetPixel(x, y int, r, g, b float64) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	f.Color[y*f.W+x] = color.NRGBA{
		R: clamp8(r),
		G: clamp8(g),
		B: clamp8(b),
		A: 255,
	}
}

// At returns the stored color at (x, y).
func (f *Framebuffer) At(x, y int) color.NRGBA { return f.Color[y*f.W+x] }

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

// Image returns the color buffer as an image.Image sharing no storage.
func (f *Framebuffer) Image() image.Image {
	img := image.NewNRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			img.SetNRGBA(x, y, f.Color[y*f.W+x])
		}
	}
	return img
}

// WritePNG encodes the color buffer as PNG.
func (f *Framebuffer) WritePNG(w io.Writer) error {
	if err := png.Encode(w, f.Image()); err != nil {
		return fmt.Errorf("fb: encoding PNG: %w", err)
	}
	return nil
}

// CoveredPixels counts pixels whose depth was written at least once —
// i.e. covered by some fragment.
func (f *Framebuffer) CoveredPixels() int {
	n := 0
	for _, d := range f.Depth {
		if d != math.MaxFloat32 {
			n++
		}
	}
	return n
}
