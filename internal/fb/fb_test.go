package fb

import (
	"bytes"
	"image/png"
	"testing"
)

func TestNewClears(t *testing.T) {
	f := New(4, 3)
	if f.CoveredPixels() != 0 {
		t.Error("fresh framebuffer reports coverage")
	}
	c := f.At(2, 1)
	if c.R != 0 || c.A != 255 {
		t.Errorf("cleared color = %v", c)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 5)
}

func TestDepthTest(t *testing.T) {
	f := New(4, 4)
	if !f.DepthTest(1, 1, 0.5) {
		t.Error("first fragment should pass")
	}
	if f.DepthTest(1, 1, 0.7) {
		t.Error("farther fragment should fail")
	}
	if !f.DepthTest(1, 1, 0.2) {
		t.Error("nearer fragment should pass")
	}
	if f.DepthTest(1, 1, 0.2) {
		t.Error("equal depth should fail (less-than test)")
	}
	if f.DepthTest(-1, 0, 0) || f.DepthTest(0, 4, 0) {
		t.Error("out of bounds should fail")
	}
	if f.CoveredPixels() != 1 {
		t.Errorf("covered = %d", f.CoveredPixels())
	}
}

func TestSetPixelClamps(t *testing.T) {
	f := New(2, 2)
	f.SetPixel(0, 0, -1, 0.5, 2)
	c := f.At(0, 0)
	if c.R != 0 || c.B != 255 {
		t.Errorf("clamping broken: %v", c)
	}
	if c.G < 127 || c.G > 128 {
		t.Errorf("G = %d, want ~127", c.G)
	}
	f.SetPixel(5, 5, 1, 1, 1) // silently ignored
}

func TestClearResets(t *testing.T) {
	f := New(2, 2)
	f.DepthTest(0, 0, 0.1)
	f.SetPixel(0, 0, 1, 0, 0)
	f.Clear()
	if f.CoveredPixels() != 0 {
		t.Error("clear did not reset depth")
	}
	if f.At(0, 0).R != 0 {
		t.Error("clear did not reset color")
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	f := New(8, 8)
	f.SetPixel(3, 4, 1, 0, 0)
	var buf bytes.Buffer
	if err := f.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 8 || img.Bounds().Dy() != 8 {
		t.Errorf("decoded bounds = %v", img.Bounds())
	}
	r, _, _, _ := img.At(3, 4).RGBA()
	if r != 0xffff {
		t.Errorf("red pixel round-tripped to %x", r)
	}
}
