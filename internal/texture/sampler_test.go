package texture

import (
	"math"
	"testing"

	"texcache/internal/cache"
)

func testTexture(t *testing.T, w, h int, spec LayoutSpec) *Texture {
	t.Helper()
	tex, err := NewTexture(0, Gradient(w, h, Texel{0, 0, 0, 255}, Texel{255, 255, 255, 255}), spec, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	return tex
}

func TestBilinearAccessCount(t *testing.T) {
	tex := testTexture(t, 16, 16, LayoutSpec{Kind: NonBlockedKind})
	n := 0
	s := &Sampler{Sink: cache.SinkFunc(func(uint64) { n++ })}
	s.Bilinear(tex, 0.3, 0.7)
	if n != 4 {
		t.Errorf("bilinear made %d accesses, want 4", n)
	}
}

func TestTrilinearAccessCount(t *testing.T) {
	tex := testTexture(t, 16, 16, LayoutSpec{Kind: NonBlockedKind})
	n := 0
	s := &Sampler{Sink: cache.SinkFunc(func(uint64) { n++ })}
	s.Trilinear(tex, 0.3, 0.7, 1.5)
	if n != 8 {
		t.Errorf("trilinear made %d accesses, want 8", n)
	}
}

func TestSampleDispatch(t *testing.T) {
	tex := testTexture(t, 16, 16, LayoutSpec{Kind: NonBlockedKind})
	var kinds []AccessKind
	s := &Sampler{OnAccess: func(e AccessEvent) { kinds = append(kinds, e.Kind) }}
	s.Sample(tex, 0.5, 0.5, -0.5) // magnified -> bilinear
	if len(kinds) != 4 {
		t.Fatalf("magnified sample made %d accesses", len(kinds))
	}
	for _, k := range kinds {
		if k != AccessBilinear {
			t.Errorf("magnified access kind = %v", k)
		}
	}
	kinds = kinds[:0]
	s.Sample(tex, 0.5, 0.5, 1.2) // minified -> trilinear
	lower, upper := 0, 0
	for _, k := range kinds {
		switch k {
		case AccessTrilinearLower:
			lower++
		case AccessTrilinearUpper:
			upper++
		}
	}
	if lower != 4 || upper != 4 {
		t.Errorf("trilinear split = %d lower / %d upper, want 4/4", lower, upper)
	}
}

func TestTrilinearLevelSelection(t *testing.T) {
	tex := testTexture(t, 16, 16, LayoutSpec{Kind: NonBlockedKind})
	var levels []int
	s := &Sampler{OnAccess: func(e AccessEvent) { levels = append(levels, e.Level) }}
	s.Trilinear(tex, 0.5, 0.5, 2.25)
	for i, l := range levels {
		want := 2
		if i >= 4 {
			want = 3
		}
		if l != want {
			t.Errorf("access %d at level %d, want %d", i, l, want)
		}
	}
}

func TestTrilinearClampsAtCoarsestLevel(t *testing.T) {
	tex := testTexture(t, 8, 8, LayoutSpec{Kind: NonBlockedKind}) // max level 3
	var levels []int
	s := &Sampler{OnAccess: func(e AccessEvent) { levels = append(levels, e.Level) }}
	s.Trilinear(tex, 0.5, 0.5, 10)
	if len(levels) != 8 {
		t.Fatalf("%d accesses", len(levels))
	}
	for _, l := range levels {
		if l != 3 {
			t.Errorf("level %d, want clamp to 3", l)
		}
	}
}

func TestBilinearInterpolatesExactly(t *testing.T) {
	// A 2x2 image with known corner values; sample at the exact center of
	// the four texel centers: all weights 0.25.
	base := NewImage(2, 2)
	base.Set(0, 0, Texel{0, 0, 0, 255})
	base.Set(1, 0, Texel{255, 0, 0, 255})
	base.Set(0, 1, Texel{0, 255, 0, 255})
	base.Set(1, 1, Texel{0, 0, 255, 255})
	tex := &Texture{Mip: &MipMap{Levels: []*Image{base}}}
	layout, err := NewLayout(LayoutSpec{Kind: NonBlockedKind}, tex.Mip.Dims(), NewArena())
	if err != nil {
		t.Fatal(err)
	}
	tex.Layout = layout
	s := &Sampler{}
	got := s.Bilinear(tex, 0.5, 0.5)
	want := 255.0 / 4 / 255
	if math.Abs(got.R-want) > 1e-12 || math.Abs(got.G-want) > 1e-12 || math.Abs(got.B-want) > 1e-12 {
		t.Errorf("center sample = %+v, want %v each", got, want)
	}
	if math.Abs(got.A-1) > 1e-12 {
		t.Errorf("alpha = %v, want 1", got.A)
	}
	// Sampling exactly at a texel center returns that texel.
	atCenter := s.Bilinear(tex, 0.25, 0.25) // texel (0,0) center
	if atCenter.R != 0 || atCenter.G != 0 || atCenter.B != 0 {
		t.Errorf("texel-center sample = %+v, want black", atCenter)
	}
}

func TestTrilinearBlendsLevels(t *testing.T) {
	// Level 0 all black, force level 1 all white, then check the blend
	// weight tracks frac(lambda).
	base := NewImage(4, 4)
	mip := BuildMipMap(base)
	mip.Levels[1].Fill(Texel{255, 255, 255, 255})
	layout, err := NewLayout(LayoutSpec{Kind: NonBlockedKind}, mip.Dims(), NewArena())
	if err != nil {
		t.Fatal(err)
	}
	tex := &Texture{Mip: mip, Layout: layout}
	s := &Sampler{}
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		lambda := 0.0 + frac
		var got Color
		if lambda == 0 {
			got = s.Trilinear(tex, 0.5, 0.5, 1e-9)
		} else {
			got = s.Trilinear(tex, 0.5, 0.5, lambda)
		}
		if math.Abs(got.R-frac) > 1e-6 {
			t.Errorf("lambda %v: R = %v, want %v", lambda, got.R, frac)
		}
	}
}

func TestSamplerWrapsRepeat(t *testing.T) {
	tex := testTexture(t, 8, 8, LayoutSpec{Kind: NonBlockedKind})
	s := &Sampler{}
	colorClose := func(a, b Color) bool {
		return math.Abs(a.R-b.R) < 1e-9 && math.Abs(a.G-b.G) < 1e-9 &&
			math.Abs(a.B-b.B) < 1e-9 && math.Abs(a.A-b.A) < 1e-9
	}
	a := s.Bilinear(tex, 0.3, 0.4)
	b := s.Bilinear(tex, 1.3, 2.4) // repeated coordinates
	if !colorClose(a, b) {
		t.Errorf("REPEAT wrap broken: %+v vs %+v", a, b)
	}
	c := s.Bilinear(tex, 0.3-1, 0.4-3)
	if !colorClose(a, c) {
		t.Errorf("negative wrap broken: %+v vs %+v", a, c)
	}
}

func TestSamplerAddressesMatchLayout(t *testing.T) {
	tex := testTexture(t, 8, 8, LayoutSpec{Kind: BlockedKind, BlockW: 4})
	var addrs []uint64
	var events []AccessEvent
	s := &Sampler{
		Sink:     cache.SinkFunc(func(a uint64) { addrs = append(addrs, a) }),
		OnAccess: func(e AccessEvent) { events = append(events, e) },
	}
	s.Trilinear(tex, 0.37, 0.81, 1.4)
	if len(addrs) != len(events) {
		t.Fatalf("%d addrs, %d events", len(addrs), len(events))
	}
	for i, e := range events {
		want := tex.Layout.Addresses(e.Level, e.TU, e.TV, nil)[0]
		if addrs[i] != want {
			t.Errorf("access %d: addr %d, layout says %d", i, addrs[i], want)
		}
	}
}

func TestClampToEdge(t *testing.T) {
	tex := testTexture(t, 8, 8, LayoutSpec{Kind: NonBlockedKind})
	tex.Wrap = ClampToEdge
	var events []AccessEvent
	s := &Sampler{OnAccess: func(e AccessEvent) { events = append(events, e) }}
	// Sampling past the right edge clamps every fetched texel to the
	// border column.
	s.Bilinear(tex, 1.5, 0.5)
	for _, e := range events {
		if e.TU != 7 {
			t.Errorf("clamped access at tu=%d, want 7", e.TU)
		}
		if e.TV < 0 || e.TV > 7 {
			t.Errorf("tv=%d out of range", e.TV)
		}
	}
	// Negative side clamps to zero.
	events = events[:0]
	s.Bilinear(tex, -0.5, 0.5)
	for _, e := range events {
		if e.TU != 0 {
			t.Errorf("clamped access at tu=%d, want 0", e.TU)
		}
	}
}

func TestNearestSingleAccess(t *testing.T) {
	tex := testTexture(t, 16, 16, LayoutSpec{Kind: NonBlockedKind})
	var events []AccessEvent
	s := &Sampler{OnAccess: func(e AccessEvent) { events = append(events, e) }}
	s.Nearest(tex, 0.3, 0.7, 0)
	if len(events) != 1 {
		t.Fatalf("nearest made %d accesses, want 1", len(events))
	}
	if events[0].Level != 0 {
		t.Errorf("magnified nearest used level %d", events[0].Level)
	}
	// Minified: picks the rounded level.
	events = events[:0]
	s.Nearest(tex, 0.3, 0.7, 2.4)
	if len(events) != 1 || events[0].Level != 2 {
		t.Errorf("nearest at lambda 2.4 -> %+v, want level 2", events)
	}
	// Lambda beyond the pyramid clamps.
	events = events[:0]
	s.Nearest(tex, 0.3, 0.7, 99)
	if events[0].Level != tex.Mip.MaxLevel() {
		t.Errorf("nearest clamped to level %d", events[0].Level)
	}
}

func TestColorOps(t *testing.T) {
	c := Color{0.5, 0.25, 1, 1}
	if got := c.Scale(2); got != (Color{1, 0.5, 2, 2}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := c.Add(Color{0.1, 0.1, 0.1, 0.1}); math.Abs(got.R-0.6) > 1e-12 {
		t.Errorf("Add = %+v", got)
	}
	if got := c.Modulate(Color{0.5, 4, 0, 1}); got != (Color{0.25, 1, 0, 1}) {
		t.Errorf("Modulate = %+v", got)
	}
}

func TestNewTextureError(t *testing.T) {
	if _, err := NewTexture(0, NewImage(4, 4), LayoutSpec{Kind: BlockedKind, BlockW: 3}, NewArena()); err == nil {
		t.Error("expected layout error to propagate")
	}
}
