package texture

import (
	"math"
	"testing"
)

func TestMipMapLevelCount(t *testing.T) {
	m := BuildMipMap(NewImage(16, 16))
	if m.NumLevels() != 5 { // 16, 8, 4, 2, 1
		t.Errorf("NumLevels = %d, want 5", m.NumLevels())
	}
	if m.MaxLevel() != 4 {
		t.Errorf("MaxLevel = %d", m.MaxLevel())
	}
	for i, im := range m.Levels {
		want := 16 >> i
		if im.W != want || im.H != want {
			t.Errorf("level %d is %dx%d, want %dx%d", i, im.W, im.H, want, want)
		}
	}
}

func TestMipMapNonSquare(t *testing.T) {
	m := BuildMipMap(NewImage(8, 2))
	dims := m.Dims()
	want := []LevelDims{{8, 2}, {4, 1}, {2, 1}, {1, 1}}
	if len(dims) != len(want) {
		t.Fatalf("dims = %v", dims)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Errorf("level %d dims = %v, want %v", i, dims[i], want[i])
		}
	}
}

func TestMipMapPreservesMean(t *testing.T) {
	// Property: box filtering preserves the image mean (within rounding).
	base := Noise(64, 64, 123)
	m := BuildMipMap(base)
	mean := func(im *Image) float64 {
		s := 0.0
		for _, p := range im.Pix {
			s += float64(p.R)
		}
		return s / float64(len(im.Pix))
	}
	m0 := mean(m.Levels[0])
	for l := 1; l < m.NumLevels(); l++ {
		ml := mean(m.Levels[l])
		if math.Abs(ml-m0) > float64(l) { // each level adds <=0.75 rounding bias
			t.Errorf("level %d mean %v drifted from base %v", l, ml, m0)
		}
	}
}

func TestMipMapConstantImageStaysConstant(t *testing.T) {
	base := NewImage(32, 32)
	base.Fill(Texel{100, 150, 200, 255})
	m := BuildMipMap(base)
	for l, im := range m.Levels {
		for _, p := range im.Pix {
			if p != (Texel{100, 150, 200, 255}) {
				t.Fatalf("level %d has texel %v", l, p)
			}
		}
	}
}

func TestMipMapTexelCountAndSize(t *testing.T) {
	m := BuildMipMap(NewImage(8, 8))
	want := 64 + 16 + 4 + 1 // 8x8 + 4x4 + 2x2 + 1x1
	if got := m.TexelCount(); got != want {
		t.Errorf("TexelCount = %d, want %d", got, want)
	}
	if got := m.SizeBytes(); got != want*TexelBytes {
		t.Errorf("SizeBytes = %d", got)
	}
}

func TestMipMapLevelClamps(t *testing.T) {
	m := BuildMipMap(NewImage(4, 4))
	if m.Level(-5) != m.Levels[0] {
		t.Error("negative level should clamp to 0")
	}
	if m.Level(99) != m.Levels[m.MaxLevel()] {
		t.Error("overflow level should clamp to max")
	}
}

func TestBoxFilterAveragesQuad(t *testing.T) {
	base := NewImage(2, 2)
	base.Set(0, 0, Texel{0, 0, 0, 0})
	base.Set(1, 0, Texel{40, 0, 0, 0})
	base.Set(0, 1, Texel{80, 0, 0, 0})
	base.Set(1, 1, Texel{120, 0, 0, 0})
	m := BuildMipMap(base)
	got := m.Levels[1].At(0, 0)
	if got.R != 60 {
		t.Errorf("box filter = %d, want 60", got.R)
	}
}
