package texture

import "testing"

func TestCompressedValidate(t *testing.T) {
	good := LayoutSpec{Kind: CompressedKind, BlockW: 8, Ratio: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid compressed spec rejected: %v", err)
	}
	for _, ratio := range []int{0, 1, 3, 8} {
		s := LayoutSpec{Kind: CompressedKind, BlockW: 8, Ratio: ratio}
		if err := s.Validate(); err == nil {
			t.Errorf("ratio %d accepted", ratio)
		}
	}
}

func TestCompressedFootprint(t *testing.T) {
	dims := BuildMipMap(NewImage(64, 64)).Dims()
	plain, err := NewLayout(LayoutSpec{Kind: BlockedKind, BlockW: 8}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewLayout(LayoutSpec{Kind: CompressedKind, BlockW: 8, Ratio: 4}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	if comp.SizeBytes() != plain.SizeBytes()/4 {
		t.Errorf("compressed footprint %d, want %d", comp.SizeBytes(), plain.SizeBytes()/4)
	}
	if comp.Name() != "compressed" {
		t.Errorf("name = %q", comp.Name())
	}
}

func TestCompressedAddressesInBoundsAndDistinct(t *testing.T) {
	dims := BuildMipMap(NewImage(32, 32)).Dims()
	for _, ratio := range []int{2, 4} {
		arena := NewArena()
		arena.Alloc(1000, 4) // nonzero base
		l, err := NewLayout(LayoutSpec{Kind: CompressedKind, BlockW: 4, Ratio: ratio}, dims, arena)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for level, d := range dims {
			for tv := 0; tv < d.H; tv++ {
				for tu := 0; tu < d.W; tu++ {
					a := l.Addresses(level, tu, tv, nil)[0]
					if a < l.Base() || a >= l.Base()+l.SizeBytes() {
						t.Fatalf("ratio %d: address %d outside [%d,%d)", ratio, a, l.Base(), l.Base()+l.SizeBytes())
					}
					if ratio == 4 {
						// At 4:1 every texel is one byte: addresses are
						// distinct.
						if seen[a] {
							t.Fatalf("ratio 4: address %d repeated", a)
						}
						seen[a] = true
					}
				}
			}
		}
	}
}

func TestCompressedPreservesBlockStructure(t *testing.T) {
	// Texels of one block stay contiguous in compressed memory.
	dims := []LevelDims{{32, 32}}
	l, err := NewLayout(LayoutSpec{Kind: CompressedKind, BlockW: 4, Ratio: 4}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi uint64 = ^uint64(0), 0
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			a := l.Addresses(0, 8+sx, 4+sy, nil)[0]
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
	}
	// 16 texels at 1 byte each: a 16-byte contiguous run.
	if hi-lo != 15 {
		t.Errorf("compressed block spans %d bytes, want 16", hi-lo+1)
	}
}
