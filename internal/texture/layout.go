package texture

import "fmt"

// Layout maps texel coordinates to simulated memory addresses. A Layout
// instance is bound to one texture's pyramid geometry and base address.
//
// All layouts except Williams produce exactly one address per texel; the
// Williams component-separated representation produces three (one per
// color plane), which is one of the caching problems Section 5.1 raises.
type Layout interface {
	// Addresses appends the byte address(es) read for texel (tu, tv) of
	// the given level to buf and returns the extended slice. Coordinates
	// must already be wrapped into the level's bounds.
	Addresses(level, tu, tv int, buf []uint64) []uint64

	// SizeBytes returns the total memory the representation occupies,
	// including any padding.
	SizeBytes() uint64

	// Base returns the starting address of the representation.
	Base() uint64

	// Cost returns the per-texel addressing cost in integer operations,
	// for the Table 2.1 accounting.
	Cost() AddrCost

	// Name identifies the representation in experiment output.
	Name() string
}

// AddrCost counts the integer operations of one texel address calculation.
// Only variable-operand work is charged, following Section 5.3.1's
// observation that constant shifts are free in hardware (they are wires).
type AddrCost struct {
	Adds   int // additions with variable operands
	Shifts int // shifts by level-dependent amounts
	Ands   int // bit-field extractions
}

// Total returns the total operation count.
func (c AddrCost) Total() int { return c.Adds + c.Shifts + c.Ands }

// LayoutKind selects a texture representation; it is the experiment-level
// switch between the memory organizations of Sections 5 and 6.
type LayoutKind int

const (
	// NonBlockedKind is the base representation of Section 5.2: each
	// level a row-major 2D array, RGBA stored contiguously.
	NonBlockedKind LayoutKind = iota
	// BlockedKind is the blocked (tiled) representation of Section 5.3:
	// square texel blocks ordered consecutively in memory.
	BlockedKind
	// PaddedBlockedKind adds pad blocks at the end of each block row
	// (Section 6.2, Figure 6.3a).
	PaddedBlockedKind
	// SixDBlockedKind adds a second, coarser level of blocking sized to
	// the cache (Section 6.2, Figure 6.3b).
	SixDBlockedKind
	// WilliamsKind is the component-separated Mip Map organization of
	// Williams' original paper (Section 5.1, Figure 5.1a).
	WilliamsKind
	// CompressedKind is the blocked representation over fixed-ratio
	// compressed texture memory (the Section 8 future-work direction,
	// after Beers et al.).
	CompressedKind
)

// String returns the name used in experiment output.
func (k LayoutKind) String() string {
	switch k {
	case NonBlockedKind:
		return "nonblocked"
	case BlockedKind:
		return "blocked"
	case PaddedBlockedKind:
		return "padded"
	case SixDBlockedKind:
		return "6d"
	case WilliamsKind:
		return "williams"
	case CompressedKind:
		return "compressed"
	default:
		return fmt.Sprintf("LayoutKind(%d)", int(k))
	}
}

// LayoutSpec carries the parameters needed to instantiate a layout for a
// texture. The zero value means "nonblocked".
type LayoutSpec struct {
	Kind LayoutKind
	// BlockW is the block dimension in texels (blocks are square, power
	// of two). Used by the blocked family.
	BlockW int
	// PadBlocks is the number of unused pad blocks appended to each row
	// of blocks (power of two). Used by PaddedBlockedKind.
	PadBlocks int
	// SuperBytes is the coarser block size in bytes for SixDBlockedKind,
	// normally the cache size.
	SuperBytes int
	// Ratio is the fixed compression ratio for CompressedKind: 2 or 4.
	Ratio int
}

// Validate reports whether the spec's parameters are usable.
func (s LayoutSpec) Validate() error {
	switch s.Kind {
	case NonBlockedKind, WilliamsKind:
		return nil
	case BlockedKind, PaddedBlockedKind, SixDBlockedKind, CompressedKind:
		if !IsPow2(s.BlockW) {
			return fmt.Errorf("texture: block width %d is not a power of two", s.BlockW)
		}
		if s.Kind == CompressedKind && s.Ratio != 2 && s.Ratio != 4 {
			return fmt.Errorf("texture: compression ratio %d not in {2, 4}", s.Ratio)
		}
		if s.Kind == PaddedBlockedKind && !IsPow2(s.PadBlocks) {
			return fmt.Errorf("texture: pad blocks %d is not a power of two", s.PadBlocks)
		}
		if s.Kind == SixDBlockedKind {
			if !IsPow2(s.SuperBytes) {
				return fmt.Errorf("texture: super-block bytes %d is not a power of two", s.SuperBytes)
			}
			if s.SuperBytes < s.BlockW*s.BlockW*TexelBytes {
				return fmt.Errorf("texture: super-block %dB smaller than one %dx%d block",
					s.SuperBytes, s.BlockW, s.BlockW)
			}
		}
		return nil
	default:
		return fmt.Errorf("texture: unknown layout kind %d", int(s.Kind))
	}
}

// NewLayout instantiates the layout described by spec for a pyramid with
// the given level dimensions, allocating its memory from arena.
func NewLayout(spec LayoutSpec, dims []LevelDims, arena *Arena) (Layout, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("texture: empty pyramid")
	}
	for _, d := range dims {
		if !IsPow2(d.W) || !IsPow2(d.H) {
			return nil, fmt.Errorf("texture: level dims %dx%d not powers of two", d.W, d.H)
		}
	}
	switch spec.Kind {
	case NonBlockedKind:
		return newNonBlocked(dims, arena), nil
	case BlockedKind:
		return newBlocked(dims, arena, spec.BlockW, 0, 0), nil
	case PaddedBlockedKind:
		return newBlocked(dims, arena, spec.BlockW, spec.PadBlocks, 0), nil
	case SixDBlockedKind:
		return newBlocked(dims, arena, spec.BlockW, 0, spec.SuperBytes), nil
	case WilliamsKind:
		return newWilliams(dims, arena), nil
	case CompressedKind:
		return newCompressedBlocked(dims, arena, spec.BlockW, spec.Ratio), nil
	}
	panic("unreachable")
}

// Arena is a bump allocator standing in for the malloc() calls the paper
// uses to place textures in memory: textures are laid out consecutively in
// a single simulated address space, in allocation order.
type Arena struct {
	next uint64
}

// NewArena returns an arena whose first allocation is at address 0.
func NewArena() *Arena { return &Arena{} }

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the base address.
func (a *Arena) Alloc(size, align uint64) uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic("texture: alignment must be a power of two")
	}
	base := (a.next + align - 1) &^ (align - 1)
	a.next = base + size
	return base
}

// Used returns the total bytes allocated so far, including alignment gaps.
func (a *Arena) Used() uint64 { return a.next }
