package texture

import "testing"

// TestLocateRoundTrip proves Addresses and Locate are inverse on every
// representation: for each texel, locating each of its addresses
// recovers the texel (and, for Williams, the component).
func TestLocateRoundTrip(t *testing.T) {
	dims := BuildMipMap(NewImage(32, 16)).Dims()
	specs := append(allSpecs(), LayoutSpec{Kind: CompressedKind, BlockW: 4, Ratio: 4})
	for _, spec := range specs {
		arena := NewArena()
		arena.Alloc(4096, 4) // offset the texture in memory
		l, err := NewLayout(spec, dims, arena)
		if err != nil {
			t.Fatal(err)
		}
		loc, ok := l.(Locator)
		if !ok {
			t.Fatalf("%s does not implement Locator", l.Name())
		}
		for level, d := range dims {
			for tv := 0; tv < d.H; tv++ {
				for tu := 0; tu < d.W; tu++ {
					for ci, a := range l.Addresses(level, tu, tv, nil) {
						gl, gu, gv, gc, ok := loc.Locate(a)
						if !ok {
							t.Fatalf("%s: L%d(%d,%d) addr %d not located", l.Name(), level, tu, tv, a)
						}
						if gl != level || gu != tu || gv != tv || gc != ci {
							t.Fatalf("%s: L%d(%d,%d)#%d located as L%d(%d,%d)#%d",
								l.Name(), level, tu, tv, ci, gl, gu, gv, gc)
						}
					}
				}
			}
		}
	}
}

// TestLocateRejectsOutside checks addresses before the texture, in pad
// blocks, and past the end are reported as unmapped.
func TestLocateRejectsOutside(t *testing.T) {
	dims := []LevelDims{{64, 64}}
	arena := NewArena()
	arena.Alloc(512, 4)
	l, err := NewLayout(LayoutSpec{Kind: PaddedBlockedKind, BlockW: 8, PadBlocks: 4}, dims, arena)
	if err != nil {
		t.Fatal(err)
	}
	loc := l.(Locator)
	if _, _, _, _, ok := loc.Locate(0); ok {
		t.Error("address before the texture located")
	}
	if _, _, _, _, ok := loc.Locate(l.Base() + l.SizeBytes() + 128); ok {
		t.Error("address after the texture located")
	}
	// A pad block sits right after the 8 data blocks of block-row 0:
	// texel offset 8 blocks * 64 texels.
	padAddr := l.Base() + 8*64*TexelBytes
	if _, _, _, _, ok := loc.Locate(padAddr); ok {
		t.Error("pad-block address located as a texel")
	}
	// Every real texel still resolves.
	a := l.Addresses(0, 63, 63, nil)[0]
	if _, tu, tv, _, ok := loc.Locate(a); !ok || tu != 63 || tv != 63 {
		t.Error("corner texel failed to locate")
	}
}

func TestLocateWilliamsComponents(t *testing.T) {
	dims := []LevelDims{{16, 16}}
	l, err := NewLayout(LayoutSpec{Kind: WilliamsKind}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	loc := l.(Locator)
	addrs := l.Addresses(0, 5, 9, nil)
	for want, a := range addrs {
		_, tu, tv, comp, ok := loc.Locate(a)
		if !ok || tu != 5 || tv != 9 || comp != want {
			t.Errorf("component %d at %d located as (%d,%d)#%d ok=%v", want, a, tu, tv, comp, ok)
		}
	}
}
