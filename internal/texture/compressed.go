package texture

// compressedBlocked models "rendering from compressed textures" (Beers,
// Agrawala & Chaddha, SIGGRAPH'96), the future-work direction the paper's
// conclusion proposes studying against cache architectures. Texture
// blocks are stored compressed in memory at a fixed ratio (block
// truncation coding style: e.g. 4:1, one byte per texel); the cache line
// fill decompresses, so a line of compressed memory covers ratio-times
// more texels. The layout is the blocked representation with the texel
// footprint shrunk by the ratio.
//
// Compressed texels must stay byte-addressable, so only power-of-two
// ratios up to 4 (one byte per texel) are supported.
type compressedBlocked struct {
	inner     *blocked
	base      uint64
	ratio     int
	sizeShift uint // log2(ratio)
}

func newCompressedBlocked(dims []LevelDims, arena *Arena, blockW, ratio int) *compressedBlocked {
	// Build the uncompressed blocked geometry in a shadow arena, then
	// scale every offset down by the ratio against the real base.
	inner := newBlocked(dims, NewArena(), blockW, 0, 0)
	c := &compressedBlocked{
		inner:     inner,
		ratio:     ratio,
		sizeShift: Log2(ratio),
	}
	c.base = arena.Alloc(inner.SizeBytes()>>c.sizeShift, TexelBytes)
	return c
}

func (c *compressedBlocked) Addresses(level, tu, tv int, buf []uint64) []uint64 {
	buf = c.inner.Addresses(level, tu, tv, buf)
	last := &buf[len(buf)-1]
	*last = c.base + (*last-c.inner.Base())>>c.sizeShift
	return buf
}

func (c *compressedBlocked) SizeBytes() uint64 { return c.inner.SizeBytes() >> c.sizeShift }
func (c *compressedBlocked) Base() uint64      { return c.base }
func (c *compressedBlocked) Name() string      { return "compressed" }

// Cost: blocked addressing plus one constant shift (free in hardware);
// the decompression cost lives in the line-fill path, not in addressing.
func (c *compressedBlocked) Cost() AddrCost { return c.inner.Cost() }

// Ratio returns the fixed compression ratio.
func (c *compressedBlocked) Ratio() int { return c.ratio }
