package texture

// williams models the Mip Map organization from Williams' original paper
// (Section 5.1, Figure 5.1a): each level's red, green and blue components
// are stored as separate 2D planes. Because the plane sizes are powers of
// two, the three component addresses of one texel are separated by powers
// of two bytes — exactly the property that makes them collide in a cache —
// and fetching one texel costs three separate accesses.
//
// Each component plane stores one byte per texel, padded to a power-of-two
// size so the inter-component stride is a power of two as in the original
// quadrant scheme.
type williams struct {
	base   uint64
	size   uint64
	levels []wLevel
}

type wLevel struct {
	base       uint64
	logW       uint
	h          int    // level height in texels
	compStride uint64 // byte distance between a texel's R, G and B planes
}

func newWilliams(dims []LevelDims, arena *Arena) *williams {
	w := &williams{levels: make([]wLevel, len(dims))}
	var end uint64
	for i, d := range dims {
		plane := uint64(d.W * d.H) // one byte per texel per component
		// Pad the plane to a power of two so component strides are powers
		// of two, as in the original memory organization.
		stride := uint64(1)
		for stride < plane {
			stride <<= 1
		}
		lb := arena.Alloc(3*stride, TexelBytes)
		if i == 0 {
			w.base = lb
		}
		w.levels[i] = wLevel{base: lb, logW: Log2(d.W), h: d.H, compStride: stride}
		end = lb + 3*stride
	}
	w.size = end - w.base
	return w
}

func (w *williams) Addresses(level, tu, tv int, buf []uint64) []uint64 {
	l := &w.levels[level]
	off := uint64(tv<<l.logW + tu)
	return append(buf,
		l.base+off,
		l.base+l.compStride+off,
		l.base+2*l.compStride+off,
	)
}

func (w *williams) SizeBytes() uint64 { return w.size }
func (w *williams) Base() uint64      { return w.base }
func (w *williams) Name() string      { return "williams" }

// Cost: the quadrant addressing itself is cheap (binary operations), but
// it must be performed for three component planes.
func (w *williams) Cost() AddrCost { return AddrCost{Adds: 6, Shifts: 3} }
