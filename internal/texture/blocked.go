package texture

// blocked implements the blocked (tiled) texture representation of
// Section 5.3 and its two conflict-avoiding refinements from Section 6.2:
// padding (unused pad blocks at the end of each block row) and 6D blocking
// (a second, coarser blocking level sized to the cache).
//
// Texels within a bw x bh block are consecutive in memory; blocks are
// row-major within their enclosing region (the level, or the super-block
// for the 6D variant). When a pyramid level is smaller than the block, the
// block shrinks to the level size, so the coarse 1x1..4x4 levels stay
// dense.
type blocked struct {
	base      uint64
	size      uint64
	name      string
	cost      AddrCost
	padBlocks int
	levels    []blkLevel
}

type blkLevel struct {
	base uint64
	w, h int // level dimensions in texels
	// Effective block dims for this level (clamped to level dims).
	logBW, logBH uint
	// Block grid stride: texel offset from one block row to the next,
	// including pad blocks.
	rowStrideTexels uint64
	// Super-block geometry (6D). logSW/logSH are the effective
	// super-block dims; superRowStrideTexels advances one super-block
	// row. sixD is false for plain/padded blocking.
	sixD              bool
	logSW, logSH      uint
	superTexels       uint64
	superPerRow       uint64
	blocksPerSuperRow uint64
}

// newBlocked builds the representation. padBlocks > 0 selects padding;
// superBytes > 0 selects 6D blocking. The two are mutually exclusive by
// construction in NewLayout.
func newBlocked(dims []LevelDims, arena *Arena, blockW, padBlocks, superBytes int) *blocked {
	b := &blocked{padBlocks: padBlocks}
	switch {
	case padBlocks > 0:
		b.name = "padded"
		// Base rep is 2 adds + 1 level-dependent shift; blocking adds two
		// additions (5.3.1) and padding one more (6.2).
		b.cost = AddrCost{Adds: 5, Shifts: 1}
	case superBytes > 0:
		b.name = "6d"
		b.cost = AddrCost{Adds: 6, Shifts: 1}
	default:
		b.name = "blocked"
		b.cost = AddrCost{Adds: 4, Shifts: 1}
	}

	var end uint64
	b.levels = make([]blkLevel, len(dims))
	for i, d := range dims {
		lv := blkLevel{w: d.W, h: d.H}
		ebw, ebh := min(blockW, d.W), min(blockW, d.H)
		lv.logBW, lv.logBH = Log2(ebw), Log2(ebh)
		blocksX := uint64(d.W / ebw)
		blockTexels := uint64(ebw * ebh)

		var levelTexels uint64
		if superBytes > 0 {
			// Square-ish super-block: the largest power-of-two square (in
			// texels) that fits in superBytes, clamped to the level and no
			// smaller than one block.
			s := 1
			for (s*2)*(s*2)*TexelBytes <= superBytes {
				s *= 2
			}
			esw, esh := min(s, d.W), min(s, d.H)
			esw, esh = max(esw, ebw), max(esh, ebh)
			lv.sixD = true
			lv.logSW, lv.logSH = Log2(esw), Log2(esh)
			lv.superTexels = uint64(esw * esh)
			lv.superPerRow = uint64(d.W / esw)
			lv.blocksPerSuperRow = uint64(esw / ebw)
			levelTexels = lv.superTexels * lv.superPerRow * uint64(d.H/esh)
		} else {
			lv.rowStrideTexels = (blocksX + uint64(padBlocks)) * blockTexels
			levelTexels = lv.rowStrideTexels * uint64(d.H/ebh)
		}

		lb := arena.Alloc(levelTexels*TexelBytes, TexelBytes)
		lv.base = lb
		if i == 0 {
			b.base = lb
		}
		b.levels[i] = lv
		end = lb + levelTexels*TexelBytes
	}
	b.size = end - b.base
	return b
}

func (b *blocked) Addresses(level, tu, tv int, buf []uint64) []uint64 {
	lv := &b.levels[level]
	bw := 1 << lv.logBW
	bh := 1 << lv.logBH
	sx := uint64(tu & (bw - 1))
	sy := uint64(tv & (bh - 1))
	bx := uint64(tu) >> lv.logBW
	by := uint64(tv) >> lv.logBH

	var texelOff uint64
	if lv.sixD {
		// Decompose the block coordinates into (super-block, block within
		// super-block).
		sbx := uint64(tu) >> lv.logSW
		sby := uint64(tv) >> lv.logSH
		ibx := bx & (lv.blocksPerSuperRow - 1)
		iby := by & ((1 << (lv.logSH - lv.logBH)) - 1)
		superIdx := sby*lv.superPerRow + sbx
		blockIdx := iby*lv.blocksPerSuperRow + ibx
		texelOff = superIdx*lv.superTexels + blockIdx<<(lv.logBW+lv.logBH)
	} else {
		texelOff = by*lv.rowStrideTexels + bx<<(lv.logBW+lv.logBH)
	}
	texelOff += sy<<lv.logBW + sx
	return append(buf, lv.base+texelOff*TexelBytes)
}

func (b *blocked) levelWidth(l int) int  { return b.levels[l].w }
func (b *blocked) levelHeight(l int) int { return b.levels[l].h }

func (b *blocked) SizeBytes() uint64 { return b.size }
func (b *blocked) Base() uint64      { return b.base }
func (b *blocked) Name() string      { return b.name }
func (b *blocked) Cost() AddrCost    { return b.cost }
