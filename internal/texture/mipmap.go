package texture

// MipMap is an image pyramid: Levels[0] is the original texture image and
// each subsequent level is a 2x2 box-filtered, down-sampled version of the
// previous one, ending at 1x1 (Section 2, Figure 2.2 of the paper).
type MipMap struct {
	Levels []*Image
}

// BuildMipMap constructs the full pyramid from a base image by repeated
// 2x2 box filtering. Non-square images halve each dimension independently,
// clamping at 1.
func BuildMipMap(base *Image) *MipMap {
	m := &MipMap{Levels: []*Image{base}}
	cur := base
	for cur.W > 1 || cur.H > 1 {
		nw, nh := max(1, cur.W/2), max(1, cur.H/2)
		next := NewImage(nw, nh)
		for y := 0; y < nh; y++ {
			for x := 0; x < nw; x++ {
				next.Set(x, y, boxFilter(cur, x, y))
			}
		}
		m.Levels = append(m.Levels, next)
		cur = next
	}
	return m
}

// boxFilter averages the up-to-2x2 source footprint of destination texel
// (x, y). When a dimension has already collapsed to 1, the footprint
// degenerates to 2x1, 1x2 or 1x1.
func boxFilter(src *Image, x, y int) Texel {
	x0, y0 := x*2, y*2
	x1, y1 := min(x0+1, src.W-1), min(y0+1, src.H-1)
	var r, g, b, a int
	n := 0
	for _, p := range [4][2]int{{x0, y0}, {x1, y0}, {x0, y1}, {x1, y1}} {
		t := src.At(p[0], p[1])
		r += int(t.R)
		g += int(t.G)
		b += int(t.B)
		a += int(t.A)
		n++
	}
	return Texel{uint8(r / n), uint8(g / n), uint8(b / n), uint8(a / n)}
}

// NumLevels returns the number of pyramid levels.
func (m *MipMap) NumLevels() int { return len(m.Levels) }

// MaxLevel returns the index of the coarsest (1x1) level.
func (m *MipMap) MaxLevel() int { return len(m.Levels) - 1 }

// Level returns level l, clamped to the valid range.
func (m *MipMap) Level(l int) *Image {
	if l < 0 {
		l = 0
	}
	if l > m.MaxLevel() {
		l = m.MaxLevel()
	}
	return m.Levels[l]
}

// TexelCount returns the total number of texels across all levels.
func (m *MipMap) TexelCount() int {
	n := 0
	for _, im := range m.Levels {
		n += im.W * im.H
	}
	return n
}

// SizeBytes returns the unpadded footprint of the whole pyramid; roughly
// 4/3 the base image size for square textures.
func (m *MipMap) SizeBytes() int { return m.TexelCount() * TexelBytes }

// Dims returns the per-level dimensions, used by layouts to compute
// addresses without holding the pixel data.
func (m *MipMap) Dims() []LevelDims {
	d := make([]LevelDims, len(m.Levels))
	for i, im := range m.Levels {
		d[i] = LevelDims{W: im.W, H: im.H}
	}
	return d
}

// LevelDims records the texel dimensions of one pyramid level.
type LevelDims struct {
	W, H int
}
