package texture

// Procedural texture image generators. Cache behavior depends only on the
// address stream, never on texel contents, but distinctive images make the
// rendered verification output legible and give the filtering tests
// meaningful data to interpolate.

// Checker returns a w x h checkerboard with cells x cells squares in the
// two given colors.
func Checker(w, h, cells int, a, b Texel) *Image {
	im := NewImage(w, h)
	cw, ch := max(1, w/cells), max(1, h/cells)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if ((x/cw)+(y/ch))%2 == 0 {
				im.Set(x, y, a)
			} else {
				im.Set(x, y, b)
			}
		}
	}
	return im
}

// Gradient returns a w x h image sweeping from c0 at the left edge to c1
// at the right, with a vertical brightness ramp for orientation cues.
func Gradient(w, h int, c0, c1 Texel) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		vy := 0.5 + 0.5*float64(y)/float64(max(1, h-1))
		for x := 0; x < w; x++ {
			t := float64(x) / float64(max(1, w-1))
			mix := func(a, b uint8) uint8 {
				return uint8((float64(a)*(1-t) + float64(b)*t) * vy)
			}
			im.Set(x, y, Texel{mix(c0.R, c1.R), mix(c0.G, c1.G), mix(c0.B, c1.B), 255})
		}
	}
	return im
}

// Noise returns a w x h image of deterministic value noise seeded by seed,
// resembling the satellite-photo style content of the Flight textures.
func Noise(w, h int, seed uint64) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// A few octaves of hashed lattice noise.
			v := 0.0
			amp := 0.5
			for oct := 0; oct < 4; oct++ {
				step := max(1, min(w, h)>>(2+oct))
				v += amp * latticeNoise(x/step, y/step, seed+uint64(oct))
				amp /= 2
			}
			g := uint8(Clamp01(v) * 255)
			im.Set(x, y, Texel{g, uint8(float64(g) * 0.8), uint8(float64(g) * 0.6), 255})
		}
	}
	return im
}

// latticeNoise hashes an integer lattice point to [0, 1).
func latticeNoise(x, y int, seed uint64) float64 {
	h := hash64(uint64(uint32(x))<<32 | uint64(uint32(y)) ^ seed*0x9E3779B97F4A7C15)
	return float64(h>>40) / float64(1<<24)
}

// hash64 is SplitMix64's finalizer, a strong 64-bit mixer.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Clamp01 limits x to [0, 1].
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Brick returns a w x h brick-wall pattern, the canonical repeated texture
// from Section 3.1.2's wall example.
func Brick(w, h int) *Image {
	im := NewImage(w, h)
	brick := Texel{170, 60, 45, 255}
	mortar := Texel{200, 195, 185, 255}
	bw, bh := max(4, w/4), max(2, h/4)
	for y := 0; y < h; y++ {
		row := y / bh
		for x := 0; x < w; x++ {
			xo := x
			if row%2 == 1 {
				xo += bw / 2
			}
			if y%bh == 0 || xo%bw == 0 {
				im.Set(x, y, mortar)
			} else {
				im.Set(x, y, brick)
			}
		}
	}
	return im
}
