package texture

import "testing"

func TestNewImagePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two dims")
		}
	}()
	NewImage(3, 4)
}

func TestImageSetAt(t *testing.T) {
	im := NewImage(4, 2)
	want := Texel{1, 2, 3, 4}
	im.Set(3, 1, want)
	if got := im.At(3, 1); got != want {
		t.Errorf("At = %v, want %v", got, want)
	}
	if got := im.At(0, 0); got != (Texel{}) {
		t.Errorf("unset texel = %v, want zero", got)
	}
}

func TestImageAtWrap(t *testing.T) {
	im := NewImage(4, 4)
	want := Texel{9, 9, 9, 9}
	im.Set(1, 2, want)
	cases := [][2]int{{1, 2}, {5, 6}, {-3, -2}, {1 + 40, 2 - 40}}
	for _, c := range cases {
		if got := im.AtWrap(c[0], c[1]); got != want {
			t.Errorf("AtWrap(%d,%d) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestImageSizeBytes(t *testing.T) {
	im := NewImage(8, 4)
	if got := im.SizeBytes(); got != 8*4*TexelBytes {
		t.Errorf("SizeBytes = %d", got)
	}
}

func TestImageFill(t *testing.T) {
	im := NewImage(2, 2)
	im.Fill(Texel{5, 6, 7, 8})
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if im.At(x, y) != (Texel{5, 6, 7, 8}) {
				t.Fatalf("Fill missed (%d,%d)", x, y)
			}
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := uint(0); i < 20; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(1<<%d) = %d", i, got)
		}
	}
}
