package texture

// Locator is the inverse of a Layout: it maps a byte address back to the
// texel (and component) that lives there. All five representations
// implement it; trace-inspection tools use it to annotate raw address
// streams, and the tests use it to prove each layout is a bijection.
type Locator interface {
	// Locate returns the texel whose storage contains the byte address.
	// comp is the color-plane index for the Williams representation
	// (always 0 elsewhere). ok is false for addresses outside the
	// texture (padding, pad blocks, or other textures' memory).
	Locate(addr uint64) (level, tu, tv, comp int, ok bool)
}

// Locate on the base nonblocked representation inverts
// addr = base_l + ((tv << logW) + tu) * TexelBytes.
func (nb *nonBlocked) Locate(addr uint64) (level, tu, tv, comp int, ok bool) {
	for l := len(nb.levels) - 1; l >= 0; l-- {
		lv := &nb.levels[l]
		if addr < lv.base {
			continue
		}
		off := (addr - lv.base) / TexelBytes
		tu = int(off & uint64(lv.w-1))
		tv = int(off >> lv.logW)
		if tv >= lv.h {
			return 0, 0, 0, 0, false
		}
		return l, tu, tv, 0, true
	}
	return 0, 0, 0, 0, false
}

// Locate on the blocked family inverts the block decomposition,
// reporting false inside pad blocks.
func (b *blocked) Locate(addr uint64) (level, tu, tv, comp int, ok bool) {
	for l := len(b.levels) - 1; l >= 0; l-- {
		lv := &b.levels[l]
		if addr < lv.base {
			continue
		}
		off := (addr - lv.base) / TexelBytes
		bw := uint64(1) << lv.logBW
		bh := uint64(1) << lv.logBH
		blockTexels := bw * bh

		var bx, by uint64
		if lv.sixD {
			superIdx := off / lv.superTexels
			inSuper := off % lv.superTexels
			blockIdx := inSuper >> (lv.logBW + lv.logBH)
			sbx := superIdx % lv.superPerRow
			sby := superIdx / lv.superPerRow
			ibx := blockIdx % lv.blocksPerSuperRow
			iby := blockIdx / lv.blocksPerSuperRow
			bx = sbx*lv.blocksPerSuperRow + ibx
			by = sby<<(lv.logSH-lv.logBH) + iby
		} else {
			by = off / lv.rowStrideTexels
			inRow := off % lv.rowStrideTexels
			bx = inRow / blockTexels
			if int(bx)*int(bw) >= b.levelWidth(l) {
				return 0, 0, 0, 0, false // pad block
			}
		}
		inBlock := off % blockTexels
		sx := inBlock & (bw - 1)
		sy := inBlock >> lv.logBW
		tu = int(bx*bw + sx)
		tv = int(by*bh + sy)
		if tu >= b.levelWidth(l) || tv >= b.levelHeight(l) {
			return 0, 0, 0, 0, false
		}
		return l, tu, tv, 0, true
	}
	return 0, 0, 0, 0, false
}

// Locate on the Williams representation identifies the component plane
// first, then inverts the row-major indexing.
func (w *williams) Locate(addr uint64) (level, tu, tv, comp int, ok bool) {
	for l := len(w.levels) - 1; l >= 0; l-- {
		lv := &w.levels[l]
		if addr < lv.base {
			continue
		}
		off := addr - lv.base
		comp = int(off / lv.compStride)
		if comp > 2 {
			return 0, 0, 0, 0, false
		}
		off %= lv.compStride
		tu = int(off & ((1 << lv.logW) - 1))
		tv = int(off >> lv.logW)
		if tv >= lv.h {
			return 0, 0, 0, 0, false // plane padding
		}
		return l, tu, tv, comp, true
	}
	return 0, 0, 0, 0, false
}

// Locate on the compressed representation scales back to the shadow
// blocked geometry.
func (c *compressedBlocked) Locate(addr uint64) (level, tu, tv, comp int, ok bool) {
	if addr < c.base || addr >= c.base+c.SizeBytes() {
		return 0, 0, 0, 0, false
	}
	inner := c.inner.Base() + (addr-c.base)<<c.sizeShift
	return c.inner.Locate(inner)
}
