package texture

import "testing"

// FuzzLayoutAddressing is the property check behind every address
// generator: for any valid layout spec and pyramid geometry, each texel's
// addresses stay inside [Base, Base+SizeBytes), no two (texel, component)
// pairs share an address, and Locate inverts Addresses exactly. This
// holds for the compressed representation too: texel starts are
// TexelBytes apart and the ratio shift is at most Log2(TexelBytes), so
// scaled offsets remain distinct.
//
// The raw fuzz bytes are folded into valid parameter ranges (power-of-two
// dims up to 64, the block/pad/super/ratio values Validate accepts) so
// every execution exercises a real layout rather than bouncing off
// NewLayout's validation.
func FuzzLayoutAddressing(f *testing.F) {
	// One seed per representation, with non-square dims and a non-trivial
	// parameter for each kind's knob.
	f.Add(uint8(0), uint8(5), uint8(3), uint8(0), uint8(0), uint8(0), uint8(0)) // nonblocked 32x8
	f.Add(uint8(1), uint8(4), uint8(5), uint8(3), uint8(0), uint8(0), uint8(0)) // blocked 16x32, 8x8 blocks
	f.Add(uint8(2), uint8(6), uint8(2), uint8(2), uint8(2), uint8(0), uint8(0)) // padded 64x4, 4 pad blocks
	f.Add(uint8(3), uint8(5), uint8(5), uint8(2), uint8(0), uint8(2), uint8(0)) // 6D 32x32, 256B super-blocks
	f.Add(uint8(4), uint8(3), uint8(6), uint8(0), uint8(0), uint8(0), uint8(0)) // williams 8x64
	f.Add(uint8(5), uint8(4), uint8(4), uint8(1), uint8(0), uint8(0), uint8(1)) // compressed 16x16, 4:1

	f.Fuzz(func(t *testing.T, kindSel, logW, logH, blockSel, padSel, superSel, ratioSel uint8) {
		spec := LayoutSpec{
			Kind:      LayoutKind(int(kindSel) % 6),
			BlockW:    1 << (blockSel % 4),
			PadBlocks: 1 << (padSel % 3),
			Ratio:     2 << (ratioSel % 2),
		}
		spec.SuperBytes = spec.BlockW * spec.BlockW * TexelBytes << (superSel % 3)
		dims := []LevelDims{{W: 1 << (logW % 7), H: 1 << (logH % 7)}}
		for d := dims[0]; d.W > 1 || d.H > 1; {
			d = LevelDims{W: max(d.W/2, 1), H: max(d.H/2, 1)}
			dims = append(dims, d)
		}

		arena := NewArena()
		// Offset the texture so Base() is non-zero and varies: an address
		// bug that only works at base 0 must not survive.
		arena.Alloc(uint64(kindSel)*1021+uint64(padSel)+1, TexelBytes)
		l, err := NewLayout(spec, dims, arena)
		if err != nil {
			// The folded parameters should always validate; a rejection
			// here means the folding and Validate have drifted apart.
			t.Fatalf("spec %+v rejected: %v", spec, err)
		}
		loc, ok := l.(Locator)
		if !ok {
			t.Fatalf("%s layout does not implement Locator", l.Name())
		}
		base, size := l.Base(), l.SizeBytes()
		wantN := 1
		if spec.Kind == WilliamsKind {
			wantN = 3
		}

		type texel struct{ level, tu, tv, comp int }
		owner := map[uint64]texel{}
		var buf []uint64
		for level, d := range dims {
			for tv := 0; tv < d.H; tv++ {
				for tu := 0; tu < d.W; tu++ {
					buf = l.Addresses(level, tu, tv, buf[:0])
					if len(buf) != wantN {
						t.Fatalf("%s: texel L%d(%d,%d) emitted %d addresses, want %d",
							l.Name(), level, tu, tv, len(buf), wantN)
					}
					for comp, a := range buf {
						if a < base || a >= base+size {
							t.Fatalf("%s: texel L%d(%d,%d) address %#x outside [%#x, %#x)",
								l.Name(), level, tu, tv, a, base, base+size)
						}
						me := texel{level, tu, tv, comp}
						if prev, dup := owner[a]; dup {
							t.Fatalf("%s: address %#x emitted for both %+v and %+v",
								l.Name(), a, prev, me)
						}
						owner[a] = me
						ll, ltu, ltv, lcomp, ok := loc.Locate(a)
						if !ok || ll != level || ltu != tu || ltv != tv || lcomp != comp {
							t.Fatalf("%s: Locate(%#x) = L%d(%d,%d) comp %d ok=%v, want L%d(%d,%d) comp %d",
								l.Name(), a, ll, ltu, ltv, lcomp, ok, level, tu, tv, comp)
						}
					}
				}
			}
		}

		// Addresses just outside the representation must not locate.
		if base > 0 {
			if _, _, _, _, ok := loc.Locate(base - 1); ok {
				t.Fatalf("%s: Locate(base-1) claimed ownership", l.Name())
			}
		}
		if _, _, _, _, ok := loc.Locate(base + size); ok {
			t.Fatalf("%s: Locate(base+size) claimed ownership", l.Name())
		}
	})
}
