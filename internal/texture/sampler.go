package texture

import (
	"math"

	"texcache/internal/cache"
)

// WrapMode selects how out-of-range texture coordinates are handled.
type WrapMode uint8

const (
	// Repeat tiles the texture (GL_REPEAT), the mode used throughout the
	// paper's scenes.
	Repeat WrapMode = iota
	// ClampToEdge pins coordinates to the border texels.
	ClampToEdge
)

// Texture binds a Mip Map pyramid to its memory representation. ID is a
// small dense index used by the statistics collectors. The zero Wrap is
// Repeat.
type Texture struct {
	ID     int
	Mip    *MipMap
	Layout Layout
	Wrap   WrapMode
}

// NewTexture builds the pyramid for base and lays it out in arena memory
// according to spec.
func NewTexture(id int, base *Image, spec LayoutSpec, arena *Arena) (*Texture, error) {
	mip := BuildMipMap(base)
	layout, err := NewLayout(spec, mip.Dims(), arena)
	if err != nil {
		return nil, err
	}
	return &Texture{ID: id, Mip: mip, Layout: layout}, nil
}

// Color is a filtered texture sample with components in [0, 1].
type Color struct {
	R, G, B, A float64
}

// Scale returns the color scaled component-wise by s.
func (c Color) Scale(s float64) Color {
	return Color{c.R * s, c.G * s, c.B * s, c.A * s}
}

// Add returns the component-wise sum of c and d.
func (c Color) Add(d Color) Color {
	return Color{c.R + d.R, c.G + d.G, c.B + d.B, c.A + d.A}
}

// Modulate returns the component-wise product of c and d, the paper's
// final "modulation with fragment color" step.
func (c Color) Modulate(d Color) Color {
	return Color{c.R * d.R, c.G * d.G, c.B * d.B, c.A * d.A}
}

// AccessKind classifies a texel fetch for the Section 3.1.2 locality
// statistics, which distinguish the lower (more detailed) and upper (less
// detailed) levels of a trilinear interpolation from bilinear accesses.
type AccessKind uint8

const (
	// AccessBilinear is a fetch for a magnified (bilinear) fragment.
	AccessBilinear AccessKind = iota
	// AccessTrilinearLower is a fetch from the more detailed of the two
	// trilinear levels.
	AccessTrilinearLower
	// AccessTrilinearUpper is a fetch from the less detailed level.
	AccessTrilinearUpper
)

// AccessEvent describes one texel fetch for statistics collection.
// (TU, TV) are the wrapped in-image coordinates; (RawU, RawV) are the
// pre-wrap coordinates, whose difference reveals texture repetition
// (Section 3.1.2's repeated-texture temporal locality). Addr is the
// texel's first memory address under the active layout.
//
// Events arrive in filter-footprint groups: each bilinear level fetch
// emits exactly four events in (x0,y0) (x1,y0) (x0,y1) (x1,y1) order, a
// property the bank-conflict analyzer relies on.
type AccessEvent struct {
	TexID      int
	Level      int
	TU, TV     int
	RawU, RawV int
	Addr       uint64
	Kind       AccessKind
}

// Sampler performs OpenGL 1.0 style Mip Mapped texture filtering while
// reporting every texel address to Sink (the cache simulator) and,
// optionally, every logical texel touch to OnAccess (the statistics
// collectors). A nil Sink suppresses address reporting.
type Sampler struct {
	Sink     cache.Sink
	OnAccess func(AccessEvent)

	// Fetches counts logical texel reads (one per fetch call, before
	// address expansion), the pipeline's texel-fetch statistic.
	Fetches uint64

	addrBuf []uint64 // scratch, reused across fetches
}

// Sample filters tex at normalized coordinates (u, v) with level-of-detail
// lambda = log2(texels per pixel). Negative lambda means the texture is
// magnified and a 4-texel bilinear fetch from the base level suffices;
// otherwise the standard 8-texel trilinear fetch spans the two adjacent
// pyramid levels.
func (s *Sampler) Sample(tex *Texture, u, v, lambda float64) Color {
	if lambda <= 0 {
		return s.Bilinear(tex, u, v)
	}
	return s.Trilinear(tex, u, v, lambda)
}

// Bilinear performs a 4-texel weighted average on the base level.
func (s *Sampler) Bilinear(tex *Texture, u, v float64) Color {
	return s.sampleLevel(tex, 0, u, v, AccessBilinear)
}

// Trilinear performs the 8-texel weighted average across the two levels
// whose detail straddles lambda. Lambda at or beyond the coarsest level
// clamps there (both quads then read the same level, as real hardware
// does, preserving the 8-access count the paper assumes).
func (s *Sampler) Trilinear(tex *Texture, u, v, lambda float64) Color {
	maxL := tex.Mip.MaxLevel()
	l0 := int(lambda)
	if l0 > maxL {
		l0 = maxL
	}
	l1 := min(l0+1, maxL)
	frac := lambda - float64(l0)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	c0 := s.sampleLevel(tex, l0, u, v, AccessTrilinearLower)
	c1 := s.sampleLevel(tex, l1, u, v, AccessTrilinearUpper)
	return c0.Scale(1 - frac).Add(c1.Scale(frac))
}

// sampleLevel performs one 2x2 bilinear fetch on the given level,
// reporting all four texel accesses.
func (s *Sampler) sampleLevel(tex *Texture, level int, u, v float64, kind AccessKind) Color {
	im := tex.Mip.Levels[level]
	x := u*float64(im.W) - 0.5
	y := v*float64(im.H) - 0.5
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)

	t00 := s.fetch(tex, level, x0, y0, kind)
	t10 := s.fetch(tex, level, x0+1, y0, kind)
	t01 := s.fetch(tex, level, x0, y0+1, kind)
	t11 := s.fetch(tex, level, x0+1, y0+1, kind)

	top := t00.Scale(1 - fx).Add(t10.Scale(fx))
	bot := t01.Scale(1 - fx).Add(t11.Scale(fx))
	return top.Scale(1 - fy).Add(bot.Scale(fy))
}

// Nearest performs a single-texel point-sampled fetch from the level
// nearest to lambda (GL_NEAREST_MIPMAP_NEAREST). The paper's machine
// always filters, but point sampling is the baseline mode of cheaper
// contemporaneous hardware.
func (s *Sampler) Nearest(tex *Texture, u, v, lambda float64) Color {
	level := 0
	if lambda > 0.5 {
		level = int(lambda + 0.5)
		if m := tex.Mip.MaxLevel(); level > m {
			level = m
		}
	}
	im := tex.Mip.Levels[level]
	return s.fetch(tex, level, int(math.Floor(u*float64(im.W))), int(math.Floor(v*float64(im.H))),
		AccessBilinear)
}

// wrap applies the texture's wrap mode to one coordinate.
func wrap(mode WrapMode, x, size int) int {
	switch mode {
	case ClampToEdge:
		if x < 0 {
			return 0
		}
		if x >= size {
			return size - 1
		}
		return x
	default:
		return x & (size - 1)
	}
}

// fetch reads one texel after wrapping, emitting its memory address(es)
// and access event.
func (s *Sampler) fetch(tex *Texture, level, tx, ty int, kind AccessKind) Color {
	s.Fetches++
	im := tex.Mip.Levels[level]
	tu := wrap(tex.Wrap, tx, im.W)
	tv := wrap(tex.Wrap, ty, im.H)

	if s.Sink != nil || s.OnAccess != nil {
		s.addrBuf = tex.Layout.Addresses(level, tu, tv, s.addrBuf[:0])
		if s.Sink != nil {
			for _, a := range s.addrBuf {
				s.Sink.Access(a)
			}
		}
		if s.OnAccess != nil {
			s.OnAccess(AccessEvent{
				TexID: tex.ID, Level: level,
				TU: tu, TV: tv,
				RawU: tx, RawV: ty,
				Addr: s.addrBuf[0],
				Kind: kind,
			})
		}
	}

	t := im.At(tu, tv)
	const inv = 1.0 / 255.0
	return Color{float64(t.R) * inv, float64(t.G) * inv, float64(t.B) * inv, float64(t.A) * inv}
}
