package texture

// nonBlocked is the base representation of Section 5.2: each Mip Map level
// is an independent row-major 2D array with the R, G, B and A components
// of a texel stored contiguously in one 32-bit word. Levels are allocated
// consecutively, finest first.
//
// Texel address = base + ((tv << lw) + tu) * TexelBytes
type nonBlocked struct {
	base   uint64
	size   uint64
	levels []nbLevel
}

type nbLevel struct {
	base uint64
	logW uint
	w, h int
}

func newNonBlocked(dims []LevelDims, arena *Arena) *nonBlocked {
	nb := &nonBlocked{levels: make([]nbLevel, len(dims))}
	var total uint64
	for i, d := range dims {
		sz := uint64(d.W*d.H) * TexelBytes
		lb := arena.Alloc(sz, TexelBytes)
		if i == 0 {
			nb.base = lb
		}
		nb.levels[i] = nbLevel{base: lb, logW: Log2(d.W), w: d.W, h: d.H}
		total = lb + sz - nb.base
	}
	nb.size = total
	return nb
}

func (nb *nonBlocked) Addresses(level, tu, tv int, buf []uint64) []uint64 {
	l := &nb.levels[level]
	return append(buf, l.base+uint64((tv<<l.logW)+tu)*TexelBytes)
}

func (nb *nonBlocked) SizeBytes() uint64 { return nb.size }
func (nb *nonBlocked) Base() uint64      { return nb.base }
func (nb *nonBlocked) Name() string      { return "nonblocked" }

// Cost: one variable shift (by lw, a function of the level) and two adds
// (base + row + column), per Section 5.2.1.
func (nb *nonBlocked) Cost() AddrCost { return AddrCost{Adds: 2, Shifts: 1} }
