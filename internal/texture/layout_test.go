package texture

import (
	"testing"
)

// allSpecs returns one spec of every kind with typical paper parameters.
func allSpecs() []LayoutSpec {
	return []LayoutSpec{
		{Kind: NonBlockedKind},
		{Kind: BlockedKind, BlockW: 4},
		{Kind: BlockedKind, BlockW: 8},
		{Kind: PaddedBlockedKind, BlockW: 8, PadBlocks: 4},
		{Kind: SixDBlockedKind, BlockW: 8, SuperBytes: 32 << 10},
		{Kind: WilliamsKind},
	}
}

func TestLayoutSpecValidate(t *testing.T) {
	for _, s := range allSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
	bad := []LayoutSpec{
		{Kind: BlockedKind, BlockW: 3},
		{Kind: BlockedKind, BlockW: 0},
		{Kind: PaddedBlockedKind, BlockW: 8, PadBlocks: 3},
		{Kind: SixDBlockedKind, BlockW: 8, SuperBytes: 100},
		{Kind: SixDBlockedKind, BlockW: 8, SuperBytes: 64}, // smaller than one block
		{Kind: LayoutKind(99)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v: expected error", s)
		}
	}
}

func TestLayoutKindString(t *testing.T) {
	want := map[LayoutKind]string{
		NonBlockedKind:    "nonblocked",
		BlockedKind:       "blocked",
		PaddedBlockedKind: "padded",
		SixDBlockedKind:   "6d",
		WilliamsKind:      "williams",
	}
	for k, w := range want {
		if got := k.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(k), got, w)
		}
	}
}

// TestLayoutBijective checks the core correctness property of every
// representation: distinct texels map to distinct, in-bounds, non-
// overlapping 4-byte words (1-byte words per component for Williams).
func TestLayoutBijective(t *testing.T) {
	dims := BuildMipMap(NewImage(32, 16)).Dims()
	for _, spec := range allSpecs() {
		arena := NewArena()
		base := arena.Alloc(128, 4) // offset the layout so Base() matters
		_ = base
		l, err := NewLayout(spec, dims, arena)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		seen := make(map[uint64]string)
		var buf []uint64
		for level, d := range dims {
			for tv := 0; tv < d.H; tv++ {
				for tu := 0; tu < d.W; tu++ {
					buf = l.Addresses(level, tu, tv, buf[:0])
					wantAddrs := 1
					if spec.Kind == WilliamsKind {
						wantAddrs = 3
					}
					if len(buf) != wantAddrs {
						t.Fatalf("%s: %d addresses per texel, want %d", l.Name(), len(buf), wantAddrs)
					}
					for ci, a := range buf {
						if a < l.Base() || a >= l.Base()+l.SizeBytes() {
							t.Fatalf("%s: address %d outside [%d, %d)", l.Name(), a, l.Base(), l.Base()+l.SizeBytes())
						}
						key := a
						if prev, dup := seen[key]; dup {
							t.Fatalf("%s: texel L%d(%d,%d)c%d collides with %s at %d",
								l.Name(), level, tu, tv, ci, prev, a)
						}
						seen[key] = levelKey(level, tu, tv, ci)
					}
				}
			}
		}
	}
}

func levelKey(l, u, v, c int) string {
	return string(rune('A'+l)) + ":" + itoa(u) + "," + itoa(v) + "#" + itoa(c)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestBlockedContiguity checks that the texels of one block occupy one
// contiguous run of memory — the property that lets a block share a cache
// line (Section 5.3.3: "texels that lie within a block are guaranteed not
// to conflict in the cache since they are stored consecutively").
func TestBlockedContiguity(t *testing.T) {
	dims := []LevelDims{{32, 32}}
	for _, spec := range []LayoutSpec{
		{Kind: BlockedKind, BlockW: 4},
		{Kind: PaddedBlockedKind, BlockW: 4, PadBlocks: 4},
		{Kind: SixDBlockedKind, BlockW: 4, SuperBytes: 1 << 10},
	} {
		l, err := NewLayout(spec, dims, NewArena())
		if err != nil {
			t.Fatal(err)
		}
		for by := 0; by < 8; by++ {
			for bx := 0; bx < 8; bx++ {
				var lo, hi uint64 = ^uint64(0), 0
				for sy := 0; sy < 4; sy++ {
					for sx := 0; sx < 4; sx++ {
						a := l.Addresses(0, bx*4+sx, by*4+sy, nil)[0]
						if a < lo {
							lo = a
						}
						if a > hi {
							hi = a
						}
					}
				}
				if hi-lo != (16-1)*TexelBytes {
					t.Fatalf("%s: block (%d,%d) spans [%d,%d], not contiguous",
						l.Name(), bx, by, lo, hi)
				}
			}
		}
	}
}

// TestBlockedMatchesPaperFormula verifies the blocked addressing against a
// literal transcription of the paper's Section 5.3.1 formulas.
func TestBlockedMatchesPaperFormula(t *testing.T) {
	const W, H, bw = 64, 32, 8
	dims := []LevelDims{{W, H}}
	arena := NewArena()
	l, err := NewLayout(LayoutSpec{Kind: BlockedKind, BlockW: bw}, dims, arena)
	if err != nil {
		t.Fatal(err)
	}
	lbw := Log2(bw)
	bs := Log2(bw * bw)
	rs := Log2(W * bw) // log2(width in texels * bh)
	base := l.Base()
	for tv := 0; tv < H; tv++ {
		for tu := 0; tu < W; tu++ {
			bx := uint64(tu) >> lbw
			by := uint64(tv) >> lbw
			blockAddr := base + ((by<<rs)+(bx<<bs))*TexelBytes
			sx := uint64(tu & (bw - 1))
			sy := uint64(tv & (bw - 1))
			want := blockAddr + ((sy<<lbw)+sx)*TexelBytes
			if got := l.Addresses(0, tu, tv, nil)[0]; got != want {
				t.Fatalf("(%d,%d): got %d, want %d", tu, tv, got, want)
			}
		}
	}
}

// TestPaddedStride verifies the Section 6.2 padding formula: the padded
// address equals the plain blocked address plus by << ps.
func TestPaddedStride(t *testing.T) {
	const W, H, bw, pad = 64, 64, 8, 4
	dims := []LevelDims{{W, H}}
	plain, err := NewLayout(LayoutSpec{Kind: BlockedKind, BlockW: bw}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	padded, err := NewLayout(LayoutSpec{Kind: PaddedBlockedKind, BlockW: bw, PadBlocks: pad}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	ps := Log2(bw * bw * pad)
	for tv := 0; tv < H; tv += 3 {
		for tu := 0; tu < W; tu += 5 {
			by := uint64(tv) / bw
			p := plain.Addresses(0, tu, tv, nil)[0] - plain.Base()
			q := padded.Addresses(0, tu, tv, nil)[0] - padded.Base()
			if q != p+(by<<ps)*TexelBytes {
				t.Fatalf("(%d,%d): padded %d != plain %d + %d", tu, tv, q, p, (by<<ps)*TexelBytes)
			}
		}
	}
	if padded.SizeBytes() <= plain.SizeBytes() {
		t.Error("padding should increase footprint")
	}
}

// TestSixDSuperBlockResidency verifies that an entire cache-size-aligned
// super-block region of texels occupies one contiguous cache-size run, so
// a square region of blocks maps into the cache without conflicts.
func TestSixDSuperBlockResidency(t *testing.T) {
	const W, H, bw = 256, 256, 8
	const cacheSize = 16 << 10 // 16KB -> 64x64 texel super-block
	dims := []LevelDims{{W, H}}
	l, err := NewLayout(LayoutSpec{Kind: SixDBlockedKind, BlockW: bw, SuperBytes: cacheSize}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	const super = 64 // sqrt(16KB / 4B)
	for _, origin := range [][2]int{{0, 0}, {64, 0}, {0, 64}, {128, 192}} {
		var lo, hi uint64 = ^uint64(0), 0
		for sy := 0; sy < super; sy++ {
			for sx := 0; sx < super; sx++ {
				a := l.Addresses(0, origin[0]+sx, origin[1]+sy, nil)[0]
				if a < lo {
					lo = a
				}
				if a > hi {
					hi = a
				}
			}
		}
		if hi-lo != cacheSize-TexelBytes {
			t.Fatalf("super-block at %v spans %d bytes, want %d", origin, hi-lo+TexelBytes, cacheSize)
		}
		if lo%cacheSize != l.Base()%cacheSize {
			t.Fatalf("super-block at %v starts at %d, not super-aligned", origin, lo)
		}
	}
}

// TestWilliamsPowerOfTwoStrides checks the pathology Section 5.1
// identifies: component addresses of one texel are separated by powers of
// two bytes.
func TestWilliamsPowerOfTwoStrides(t *testing.T) {
	dims := BuildMipMap(NewImage(64, 64)).Dims()
	l, err := NewLayout(LayoutSpec{Kind: WilliamsKind}, dims, NewArena())
	if err != nil {
		t.Fatal(err)
	}
	for level, d := range dims {
		a := l.Addresses(level, d.W/2, d.H/2, nil)
		if len(a) != 3 {
			t.Fatalf("level %d: %d component addresses", level, len(a))
		}
		d1, d2 := a[1]-a[0], a[2]-a[1]
		if d1 != d2 {
			t.Errorf("level %d: uneven component strides %d, %d", level, d1, d2)
		}
		if d1&(d1-1) != 0 {
			t.Errorf("level %d: component stride %d not a power of two", level, d1)
		}
	}
}

// TestLayoutBijectiveRandomDims re-runs the bijectivity property on
// randomized pyramid geometries (non-square, tiny, tall) for every kind,
// complementing the fixed-size exhaustive check above.
func TestLayoutBijectiveRandomDims(t *testing.T) {
	pow2 := []int{1, 2, 4, 8, 16, 32, 64}
	rng := newTestRand(0xD1E5)
	for trial := 0; trial < 25; trial++ {
		w := pow2[rng.next()%uint64(len(pow2))]
		h := pow2[rng.next()%uint64(len(pow2))]
		dims := BuildMipMap(NewImage(w, h)).Dims()
		for _, spec := range allSpecs() {
			l, err := NewLayout(spec, dims, NewArena())
			if err != nil {
				t.Fatalf("%dx%d %v: %v", w, h, spec, err)
			}
			seen := make(map[uint64]bool)
			var buf []uint64
			for level, d := range dims {
				for tv := 0; tv < d.H; tv++ {
					for tu := 0; tu < d.W; tu++ {
						buf = l.Addresses(level, tu, tv, buf[:0])
						for _, a := range buf {
							if a < l.Base() || a >= l.Base()+l.SizeBytes() {
								t.Fatalf("%dx%d %s: address %d out of bounds", w, h, l.Name(), a)
							}
							if seen[a] {
								t.Fatalf("%dx%d %s: address %d duplicated", w, h, l.Name(), a)
							}
							seen[a] = true
						}
					}
				}
			}
		}
	}
}

// newTestRand is a tiny deterministic xorshift for the randomized-dims
// property test.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed} }

func (r *testRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func TestArenaAlloc(t *testing.T) {
	a := NewArena()
	p0 := a.Alloc(10, 4)
	if p0 != 0 {
		t.Errorf("first alloc at %d, want 0", p0)
	}
	p1 := a.Alloc(4, 8)
	if p1 != 16 { // 10 rounded up to 16
		t.Errorf("aligned alloc at %d, want 16", p1)
	}
	if a.Used() != 20 {
		t.Errorf("Used = %d, want 20", a.Used())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad alignment")
		}
	}()
	a.Alloc(1, 3)
}

func TestLayoutCosts(t *testing.T) {
	dims := []LevelDims{{8, 8}}
	costs := map[LayoutKind]int{}
	for _, spec := range allSpecs() {
		l, err := NewLayout(spec, dims, NewArena())
		if err != nil {
			t.Fatal(err)
		}
		costs[spec.Kind] = l.Cost().Total()
	}
	// The paper's cost ordering: nonblocked < blocked < padded < 6D.
	if !(costs[NonBlockedKind] < costs[BlockedKind] &&
		costs[BlockedKind] < costs[PaddedBlockedKind] &&
		costs[PaddedBlockedKind] < costs[SixDBlockedKind]) {
		t.Errorf("cost ordering violated: %v", costs)
	}
	// Blocked costs exactly two more additions than nonblocked (5.3.1).
	nb, _ := NewLayout(LayoutSpec{Kind: NonBlockedKind}, dims, NewArena())
	bl, _ := NewLayout(LayoutSpec{Kind: BlockedKind, BlockW: 4}, dims, NewArena())
	if bl.Cost().Adds != nb.Cost().Adds+2 {
		t.Errorf("blocked adds = %d, want nonblocked+2 = %d", bl.Cost().Adds, nb.Cost().Adds+2)
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(LayoutSpec{Kind: BlockedKind, BlockW: 3}, []LevelDims{{4, 4}}, NewArena()); err == nil {
		t.Error("expected spec error")
	}
	if _, err := NewLayout(LayoutSpec{}, nil, NewArena()); err == nil {
		t.Error("expected empty pyramid error")
	}
	if _, err := NewLayout(LayoutSpec{}, []LevelDims{{3, 4}}, NewArena()); err == nil {
		t.Error("expected bad dims error")
	}
}

// TestSmallLevelsDense: pyramid levels smaller than the block shrink the
// block rather than padding the level, for every blocked variant.
func TestSmallLevelsDense(t *testing.T) {
	dims := BuildMipMap(NewImage(16, 16)).Dims() // down to 1x1
	for _, spec := range []LayoutSpec{
		{Kind: BlockedKind, BlockW: 8},
		{Kind: SixDBlockedKind, BlockW: 8, SuperBytes: 4 << 10},
	} {
		l, err := NewLayout(spec, dims, NewArena())
		if err != nil {
			t.Fatal(err)
		}
		// The 1x1 level must produce a valid address.
		a := l.Addresses(len(dims)-1, 0, 0, nil)
		if len(a) != 1 || a[0] >= l.Base()+l.SizeBytes() {
			t.Errorf("%s: bad 1x1 level address %v", l.Name(), a)
		}
	}
}
