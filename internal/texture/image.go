// Package texture implements the texture subsystem of the study: RGBA8
// texture images, Mip Map pyramid construction (Williams' pyramidal
// parametrics), the five memory representations whose cache behavior the
// paper analyzes (Williams component-separated, base nonblocked, blocked,
// padded blocked, and 6D blocked), a linear memory arena standing in for
// malloc(), and an OpenGL 1.0 style sampler performing bilinear and
// trilinear interpolation while emitting every texel address to the cache
// simulator.
package texture

import (
	"fmt"
	"math/bits"
)

// TexelBytes is the storage footprint of one texel. The paper allocates
// 32 bits per texel (RGBA8).
const TexelBytes = 4

// Texel is one RGBA8 texture pixel.
type Texel struct {
	R, G, B, A uint8
}

// Image is a 2D texture image with power-of-two dimensions, stored
// row-major. This is the logical image; where its texels live in simulated
// memory is the business of a Layout.
type Image struct {
	W, H int
	Pix  []Texel
}

// NewImage returns a w x h image. Both dimensions must be positive powers
// of two, matching the OpenGL restriction the paper notes.
func NewImage(w, h int) *Image {
	if !IsPow2(w) || !IsPow2(h) {
		panic(fmt.Sprintf("texture: dimensions %dx%d are not powers of two", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]Texel, w*h)}
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && bits.OnesCount(uint(n)) == 1 }

// Log2 returns log2(n) for a power of two n.
func Log2(n int) uint { return uint(bits.TrailingZeros(uint(n))) }

// At returns the texel at (x, y). Coordinates must be in bounds.
func (im *Image) At(x, y int) Texel { return im.Pix[y*im.W+x] }

// Set stores t at (x, y). Coordinates must be in bounds.
func (im *Image) Set(x, y int, t Texel) { im.Pix[y*im.W+x] = t }

// AtWrap returns the texel at (x, y) with REPEAT wrapping, the mode used
// throughout the study (Town and Goblet repeat their textures).
func (im *Image) AtWrap(x, y int) Texel {
	return im.Pix[(y&(im.H-1))*im.W+(x&(im.W-1))]
}

// SizeBytes returns the unpadded storage footprint of the image.
func (im *Image) SizeBytes() int { return im.W * im.H * TexelBytes }

// Fill sets every texel to t.
func (im *Image) Fill(t Texel) {
	for i := range im.Pix {
		im.Pix[i] = t
	}
}
