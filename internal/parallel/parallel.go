// Package parallel studies the open question the paper's conclusion
// poses: "how to balance the work among multiple fragment generators
// without reducing the spatial locality in each reference stream."
//
// The model is the architecture Section 3 sketches — multiple fragment
// generators sharing one DRAM texture memory, each with its own SRAM
// cache, partitioned in image space. No cache coherence is needed since
// texture data is read-only. The package compares the classic image-
// space partitions: interleaved scanlines (perfect balance, poor
// locality), contiguous strips (good locality, poor balance), and
// interleaved screen tiles (the compromise that later GPUs adopted).
package parallel

import (
	"fmt"

	"texcache/internal/cache"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// Partition selects the image-space work distribution.
type Partition int

const (
	// ScanlineInterleave gives generator i every (y mod N == i)-th row.
	ScanlineInterleave Partition = iota
	// StripPartition gives generator i the i-th horizontal band.
	StripPartition
	// TileInterleave deals fixed-size screen tiles round-robin along
	// tile rows.
	TileInterleave
)

// String names the partition scheme.
func (p Partition) String() string {
	switch p {
	case ScanlineInterleave:
		return "scanline-interleave"
	case StripPartition:
		return "strips"
	case TileInterleave:
		return "tile-interleave"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// Mask returns the pixel-ownership predicate of generator fg out of n,
// for a height-pixel screen. tile is the tile edge for TileInterleave.
func Mask(p Partition, n, fg, height, tile int) func(x, y int) bool {
	switch p {
	case ScanlineInterleave:
		return func(x, y int) bool { return y%n == fg }
	case StripPartition:
		band := (height + n - 1) / n
		return func(x, y int) bool { return y/band == fg }
	case TileInterleave:
		return func(x, y int) bool { return (x/tile+y/tile)%n == fg }
	default:
		panic("parallel: unknown partition")
	}
}

// FGResult is one fragment generator's share of a frame.
type FGResult struct {
	FG        int
	Fragments uint64
	Stats     cache.Stats
}

// Result summarizes a parallel rendering of one frame.
type Result struct {
	Partition Partition
	N         int
	PerFG     []FGResult
}

// TotalFragments sums the fragments over all generators.
func (r Result) TotalFragments() uint64 {
	var n uint64
	for _, f := range r.PerFG {
		n += f.Fragments
	}
	return n
}

// TotalMisses sums the cache misses over all generators, the shared
// DRAM's aggregate line-fill traffic.
func (r Result) TotalMisses() uint64 {
	var n uint64
	for _, f := range r.PerFG {
		n += f.Stats.Misses
	}
	return n
}

// LoadImbalance returns max/mean fragments across generators: 1.0 is a
// perfect balance; the frame time of a lock-step parallel machine scales
// with this factor.
func (r Result) LoadImbalance() float64 {
	if len(r.PerFG) == 0 {
		return 0
	}
	var max, sum uint64
	for _, f := range r.PerFG {
		sum += f.Fragments
		if f.Fragments > max {
			max = f.Fragments
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.PerFG))
	return float64(max) / mean
}

// AggregateMissRate returns total misses over total accesses.
func (r Result) AggregateMissRate() float64 {
	var acc, miss uint64
	for _, f := range r.PerFG {
		acc += f.Stats.Accesses
		miss += f.Stats.Misses
	}
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}

// Run renders the scene once per fragment generator (each masked to its
// image-space share) with a private cache per generator, and collects
// the per-generator statistics. tile is the tile edge for TileInterleave
// (ignored otherwise).
func Run(s *scenes.Scene, p Partition, n, tile int,
	layout texture.LayoutSpec, cacheCfg cache.Config) (Result, error) {

	if n < 1 {
		return Result{}, fmt.Errorf("parallel: need at least one generator, got %d", n)
	}
	res := Result{Partition: p, N: n, PerFG: make([]FGResult, n)}
	for fg := 0; fg < n; fg++ {
		c := cache.New(cacheCfg)
		r, err := s.Render(scenes.RenderOptions{
			Layout:       layout,
			Traversal:    s.DefaultTraversal(),
			Sink:         c.Sink(),
			FragmentMask: Mask(p, n, fg, s.Height, tile),
		})
		if err != nil {
			return Result{}, err
		}
		res.PerFG[fg] = FGResult{
			FG:        fg,
			Fragments: r.Stats.FragmentsTextured,
			Stats:     c.Stats(),
		}
	}
	return res, nil
}
