package parallel

import (
	"testing"

	"texcache/internal/cache"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func TestMaskPartitionsAreDisjointAndComplete(t *testing.T) {
	const w, h, n, tile = 64, 48, 4, 8
	for _, p := range []Partition{ScanlineInterleave, StripPartition, TileInterleave} {
		masks := make([]func(x, y int) bool, n)
		for fg := 0; fg < n; fg++ {
			masks[fg] = Mask(p, n, fg, h, tile)
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				owners := 0
				for fg := 0; fg < n; fg++ {
					if masks[fg](x, y) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("%v: pixel (%d,%d) owned by %d generators", p, x, y, owners)
				}
			}
		}
	}
}

func TestMaskUnknownPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Mask(Partition(99), 2, 0, 64, 8)
}

func TestPartitionString(t *testing.T) {
	if ScanlineInterleave.String() != "scanline-interleave" ||
		StripPartition.String() != "strips" ||
		TileInterleave.String() != "tile-interleave" {
		t.Error("partition names wrong")
	}
}

func runStudy(t *testing.T, p Partition, n int) Result {
	t.Helper()
	s, err := scenes.ByNameChecked("goblet", 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, p, n, 8,
		texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		cache.Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunFragmentsConserved(t *testing.T) {
	// The union of the generators' fragments equals a single-generator
	// render: partitions neither drop nor duplicate work.
	single := runStudy(t, StripPartition, 1)
	for _, p := range []Partition{ScanlineInterleave, StripPartition, TileInterleave} {
		multi := runStudy(t, p, 4)
		if multi.TotalFragments() != single.TotalFragments() {
			t.Errorf("%v: %d fragments across 4 FGs, single FG has %d",
				p, multi.TotalFragments(), single.TotalFragments())
		}
	}
}

func TestRunLoadBalanceOrdering(t *testing.T) {
	// Scanline interleaving balances almost perfectly; strips are worse
	// on a scene that does not fill the screen uniformly.
	scan := runStudy(t, ScanlineInterleave, 4)
	strips := runStudy(t, StripPartition, 4)
	if scan.LoadImbalance() > strips.LoadImbalance() {
		t.Errorf("scanline imbalance %.3f should not exceed strips %.3f",
			scan.LoadImbalance(), strips.LoadImbalance())
	}
	if scan.LoadImbalance() < 1 || strips.LoadImbalance() < 1 {
		t.Error("imbalance below 1 is impossible")
	}
}

func TestRunAggregateTrafficGrowsWithInterleaving(t *testing.T) {
	// Fine interleaving splits spatially adjacent fragments across
	// caches, so the aggregate DRAM traffic exceeds the strip partition's.
	scan := runStudy(t, ScanlineInterleave, 4)
	strips := runStudy(t, StripPartition, 4)
	if scan.TotalMisses() < strips.TotalMisses() {
		t.Errorf("scanline misses %d unexpectedly below strips %d",
			scan.TotalMisses(), strips.TotalMisses())
	}
}

func TestRunRejectsZeroGenerators(t *testing.T) {
	s, err := scenes.ByNameChecked("goblet", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, StripPartition, 0, 8,
		texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		cache.Config{SizeBytes: 4 << 10, LineBytes: 128, Ways: 2}); err == nil {
		t.Error("zero generators accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	var empty Result
	if empty.LoadImbalance() != 0 || empty.AggregateMissRate() != 0 {
		t.Error("empty result helpers should be 0")
	}
	r := Result{PerFG: []FGResult{
		{Fragments: 10, Stats: cache.Stats{Accesses: 80, Misses: 8}},
		{Fragments: 30, Stats: cache.Stats{Accesses: 240, Misses: 8}},
	}}
	if r.TotalFragments() != 40 || r.TotalMisses() != 16 {
		t.Error("totals wrong")
	}
	if got := r.LoadImbalance(); got != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
	if got := r.AggregateMissRate(); got != 0.05 {
		t.Errorf("aggregate miss rate = %v, want 0.05", got)
	}
}
