package report

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// fakeStringer exercises the Stringer fallback of jsonValue.
type fakeStringer struct{}

func (fakeStringer) String() string { return "stringy" }

// emitSample drives a small report through rep: a two-column table, two
// rows, and a note.
func emitSample(rep Reporter) {
	rep.BeginTable("sizes", []Column{
		{Name: "scene", Head: "%-8s", Cell: "%-8s"},
		{Name: "1KB", Head: "%9s", Cell: "%8.2f%%"},
	})
	rep.Row("goblet", 12.5)
	rep.Row("town", 0.25)
	rep.Note("paper: %s", "reference")
}

func TestTextRendering(t *testing.T) {
	var sb strings.Builder
	rep := NewText(&sb)
	emitSample(rep)
	want := "scene         1KB\n" +
		"goblet     12.50%\n" +
		"town        0.25%\n" +
		"paper: reference\n"
	if sb.String() != want {
		t.Errorf("text rendering:\n%q\nwant:\n%q", sb.String(), want)
	}
	if rep.Err() != nil {
		t.Errorf("Err() = %v", rep.Err())
	}
}

func TestTextDefaultsAndExtraValues(t *testing.T) {
	var sb strings.Builder
	rep := NewText(&sb)
	rep.BeginTable("t", []Column{{Name: "a"}})
	rep.Row(1, 2) // second value beyond the declared columns
	if got := sb.String(); got != "a\n12\n" {
		t.Errorf("default verbs: %q", got)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("disk full")
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestTextWriteErrorSurfaces(t *testing.T) {
	rep := NewText(&failWriter{budget: 4})
	emitSample(rep)
	if rep.Err() == nil {
		t.Error("write failure not surfaced")
	}
}

func TestJSONRendering(t *testing.T) {
	var sb strings.Builder
	rep := NewJSON(&sb)
	rep.Exp = "fig5.2"
	emitSample(rep)
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	var header struct {
		Exp     string   `json:"exp"`
		Type    string   `json:"type"`
		Table   string   `json:"table"`
		Columns []string `json:"columns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header line unparseable: %v\n%s", err, lines[0])
	}
	if header.Exp != "fig5.2" || header.Type != "table" || header.Table != "sizes" ||
		len(header.Columns) != 2 || header.Columns[0] != "scene" {
		t.Errorf("header = %+v", header)
	}
	var row struct {
		Type   string `json:"type"`
		Table  string `json:"table"`
		Values []any  `json:"values"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &row); err != nil {
		t.Fatalf("row line unparseable: %v\n%s", err, lines[1])
	}
	if row.Type != "row" || row.Table != "sizes" || len(row.Values) != 2 {
		t.Errorf("row = %+v", row)
	}
	if row.Values[0] != "goblet" || row.Values[1] != 12.5 {
		t.Errorf("row values = %v", row.Values)
	}
	var note struct {
		Type string `json:"type"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &note); err != nil {
		t.Fatalf("note line unparseable: %v\n%s", err, lines[3])
	}
	if note.Type != "note" || note.Text != "paper: reference" {
		t.Errorf("note = %+v", note)
	}
}

func TestJSONValueSanitization(t *testing.T) {
	var sb strings.Builder
	rep := NewJSON(&sb)
	rep.BeginTable("t", nil)
	rep.Row("  padded  ", math.NaN(), math.Inf(1), fakeStringer{}, uint64(7), nil, true)
	line := strings.Split(sb.String(), "\n")[1]
	var row struct {
		Values []any `json:"values"`
	}
	if err := json.Unmarshal([]byte(line), &row); err != nil {
		t.Fatalf("row unparseable: %v\n%s", err, line)
	}
	want := []any{"padded", "NaN", "+Inf", "stringy", float64(7), nil, true}
	if len(row.Values) != len(want) {
		t.Fatalf("values = %v", row.Values)
	}
	for i := range want {
		if row.Values[i] != want[i] {
			t.Errorf("values[%d] = %#v, want %#v", i, row.Values[i], want[i])
		}
	}
}

func TestJSONEscaping(t *testing.T) {
	var sb strings.Builder
	rep := NewJSON(&sb)
	rep.Note("quote %q and\ttab", "x")
	var note struct {
		Text string `json:"text"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &note); err != nil {
		t.Fatalf("escaped note unparseable: %v\n%s", err, sb.String())
	}
	if !strings.Contains(note.Text, `"x"`) || !strings.Contains(note.Text, "\t") {
		t.Errorf("note round-trip = %q", note.Text)
	}
}

func TestRecordingReplayMatchesDirect(t *testing.T) {
	var direct strings.Builder
	emitSample(NewText(&direct))

	rec := &Recording{}
	emitSample(rec)
	if rec.Text() != direct.String() {
		t.Errorf("recording text:\n%q\nwant:\n%q", rec.Text(), direct.String())
	}
	if rec.Len() != 4 || rec.Rows() != 2 {
		t.Errorf("Len=%d Rows=%d, want 4/2", rec.Len(), rec.Rows())
	}

	// JSON via replay matches JSON emitted directly.
	var viaReplay, directJSON strings.Builder
	rec.Replay(NewJSON(&viaReplay))
	emitSample(NewJSON(&directJSON))
	if viaReplay.String() != directJSON.String() {
		t.Errorf("replayed JSON:\n%s\nwant:\n%s", viaReplay.String(), directJSON.String())
	}
}

// TestNotePercentSafety pins that replaying a recorded note containing
// fmt verbs does not re-interpret them.
func TestNotePercentSafety(t *testing.T) {
	rec := &Recording{}
	rec.Note("miss rate 5%% at %s", "32KB")
	if got, want := rec.Text(), "miss rate 5% at 32KB\n"; got != want {
		t.Errorf("note = %q, want %q", got, want)
	}
}
