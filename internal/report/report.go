// Package report is the structured output layer of the experiment
// harness. Experiments do not write raw text to an io.Writer; they emit
// tables, rows and notes through the Reporter interface, and the caller
// chooses the rendering: Text reproduces the classic fixed-width tables
// byte-for-byte (pinned by the repository's golden tests), JSON emits
// one machine-readable object per line for downstream tooling, and
// Recording captures the stream so one run can be rendered both ways.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Column describes one column of a table: its header label plus the
// fmt verbs the text renderer uses. Verbs carry their own separators
// ("%-8s", " %12.1f", " %5dB"), so a column list reproduces a
// fixed-width table layout exactly. Zero-value verbs default to "%s"
// for the header and "%v" for cells.
type Column struct {
	// Name is the header label, and names the column in structured
	// renderings.
	Name string
	// Head is the fmt verb for the header cell.
	Head string
	// Cell is the fmt verb for data cells. A column may be header-only
	// (an annotation at the end of the header line); rows then supply
	// fewer values than there are columns.
	Cell string
}

func (c Column) head() string {
	if c.Head == "" {
		return "%s"
	}
	return c.Head
}

func (c Column) cell() string {
	if c.Cell == "" {
		return "%v"
	}
	return c.Cell
}

// Reporter receives an experiment's output as structure rather than
// bytes. Implementations must tolerate any value types in Row; the
// column verbs say how the text form renders them.
type Reporter interface {
	// BeginTable starts a table: the header renders immediately and
	// the columns apply to every following Row until the next
	// BeginTable.
	BeginTable(id string, cols []Column)
	// Row emits one data row under the current table.
	Row(values ...any)
	// Note emits one free-form line (section markers, commentary, the
	// paper's reference numbers).
	Note(format string, args ...any)
}

// Text renders the report as the classic fixed-width tables, identical
// to the output the experiments historically wrote straight to an
// io.Writer.
type Text struct {
	w    io.Writer
	cols []Column
	err  error
}

// NewText returns a Reporter writing fixed-width text to w.
func NewText(w io.Writer) *Text { return &Text{w: w} }

// Err returns the first write error encountered, if any.
func (t *Text) Err() error { return t.err }

func (t *Text) printf(format string, args ...any) {
	if _, err := fmt.Fprintf(t.w, format, args...); err != nil && t.err == nil {
		t.err = err
	}
}

// BeginTable prints the header line from the column labels.
func (t *Text) BeginTable(id string, cols []Column) {
	t.cols = cols
	for _, c := range cols {
		t.printf(c.head(), c.Name)
	}
	t.printf("\n")
}

// Row prints one data line using the current table's cell verbs.
func (t *Text) Row(values ...any) {
	for i, v := range values {
		verb := "%v"
		if i < len(t.cols) {
			verb = t.cols[i].cell()
		}
		t.printf(verb, v)
	}
	t.printf("\n")
}

// Note prints one free-form line.
func (t *Text) Note(format string, args ...any) {
	t.printf(format, args...)
	t.printf("\n")
}

// JSON renders the report as newline-delimited JSON: one object per
// table header, row or note. Every line carries "type" ("table", "row"
// or "note"); rows reference the table id they belong to, and when Exp
// is set every line is stamped with the experiment id, so the streams
// of a whole batch can share one pipe.
type JSON struct {
	w   io.Writer
	err error
	// Exp, when non-empty, is stamped on every emitted line as "exp".
	Exp   string
	table string
	cols  []Column
}

// NewJSON returns a Reporter writing NDJSON to w.
func NewJSON(w io.Writer) *JSON { return &JSON{w: w} }

// Err returns the first write error encountered, if any.
func (j *JSON) Err() error { return j.err }

// emit writes one NDJSON line. Fields are marshaled by hand so the key
// order is stable ("exp", "type", ...) and floats stay plain.
func (j *JSON) emit(typ string, fields ...[2]any) {
	var sb strings.Builder
	sb.WriteByte('{')
	if j.Exp != "" {
		sb.WriteString(`"exp":`)
		writeJSONValue(&sb, j.Exp)
		sb.WriteByte(',')
	}
	sb.WriteString(`"type":`)
	writeJSONValue(&sb, typ)
	for _, f := range fields {
		sb.WriteByte(',')
		writeJSONValue(&sb, f[0])
		sb.WriteByte(':')
		writeJSONValue(&sb, f[1])
	}
	sb.WriteString("}\n")
	if _, err := io.WriteString(j.w, sb.String()); err != nil && j.err == nil {
		j.err = err
	}
}

// BeginTable emits the table header object with the column names.
func (j *JSON) BeginTable(id string, cols []Column) {
	j.table = id
	j.cols = cols
	names := make([]any, 0, len(cols))
	for _, c := range cols {
		names = append(names, strings.TrimSpace(c.Name))
	}
	j.emit("table", [2]any{"table", id}, [2]any{"columns", names})
}

// Row emits one row object referencing the current table.
func (j *JSON) Row(values ...any) {
	vals := make([]any, len(values))
	for i, v := range values {
		vals[i] = jsonValue(v)
	}
	j.emit("row", [2]any{"table", j.table}, [2]any{"values", vals})
}

// Note emits one note object with the formatted text.
func (j *JSON) Note(format string, args ...any) {
	j.emit("note", [2]any{"text", fmt.Sprintf(format, args...)})
}

// jsonValue maps an arbitrary row value onto a JSON-safe one: numbers
// and strings pass through (strings trimmed of the layout padding),
// everything else renders via its String method or fmt.
func jsonValue(v any) any {
	switch x := v.(type) {
	case nil, bool:
		return x
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64:
		return x
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Sprint(x)
		}
		return x
	case float32:
		return jsonValue(float64(x))
	case string:
		return strings.TrimSpace(x)
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprint(x)
	}
}

// writeJSONValue marshals the small value vocabulary emit uses. Strings
// are escaped per RFC 8259; numbers render via strconv-style fmt verbs.
func writeJSONValue(sb *strings.Builder, v any) {
	switch x := v.(type) {
	case nil:
		sb.WriteString("null")
	case bool:
		fmt.Fprintf(sb, "%t", x)
	case string:
		writeJSONString(sb, x)
	case []any:
		sb.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeJSONValue(sb, jsonValue(e))
		}
		sb.WriteByte(']')
	case float64:
		// %g keeps integers integral and avoids exponent noise for the
		// magnitudes experiments emit.
		fmt.Fprintf(sb, "%g", x)
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64:
		fmt.Fprintf(sb, "%d", x)
	default:
		writeJSONString(sb, fmt.Sprint(x))
	}
}

// writeJSONString escapes s as a JSON string literal.
func writeJSONString(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(sb, `\u%04x`, r)
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('"')
}

// opKind discriminates recorded operations.
type opKind byte

const (
	opTable opKind = iota
	opRow
	opNote
)

// recOp is one recorded Reporter call. Notes are formatted at record
// time so replays are cheap and deterministic.
type recOp struct {
	kind opKind
	id   string
	cols []Column
	vals []any
	text string
}

// Recording captures a report stream so a single experiment run can be
// rendered several ways (the engine records once and serves both the
// text and JSON forms). The zero value is ready to use.
type Recording struct {
	ops []recOp
}

// BeginTable records a table header.
func (r *Recording) BeginTable(id string, cols []Column) {
	r.ops = append(r.ops, recOp{kind: opTable, id: id, cols: cols})
}

// Row records one data row.
func (r *Recording) Row(values ...any) {
	r.ops = append(r.ops, recOp{kind: opRow, vals: values})
}

// Note records one formatted line.
func (r *Recording) Note(format string, args ...any) {
	r.ops = append(r.ops, recOp{kind: opNote, text: fmt.Sprintf(format, args...)})
}

// Replay renders the recorded stream into dst in the original order.
func (r *Recording) Replay(dst Reporter) {
	for _, op := range r.ops {
		switch op.kind {
		case opTable:
			dst.BeginTable(op.id, op.cols)
		case opRow:
			dst.Row(op.vals...)
		case opNote:
			dst.Note("%s", op.text)
		}
	}
}

// Text renders the recording as the fixed-width text form.
func (r *Recording) Text() string {
	var sb strings.Builder
	r.Replay(NewText(&sb))
	return sb.String()
}

// Len returns the number of recorded operations.
func (r *Recording) Len() int { return len(r.ops) }

// Rows returns the number of recorded data rows, a cheap integrity
// signal for tests and progress displays.
func (r *Recording) Rows() int {
	n := 0
	for _, op := range r.ops {
		if op.kind == opRow {
			n++
		}
	}
	return n
}
