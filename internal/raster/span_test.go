package raster

import (
	"math/rand"
	"testing"
)

// TestSpanMatchesExhaustiveScan is the safety net for the span fast
// path: for random triangles, the span bounds must select exactly the
// pixels the per-pixel predicate accepts, on both axes.
func TestSpanMatchesExhaustiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const W, H = 48, 48
	for trial := 0; trial < 500; trial++ {
		v0 := vert(rng.Float64()*W, rng.Float64()*H, 0, 0)
		v1 := vert(rng.Float64()*W, rng.Float64()*H, 1, 0)
		v2 := vert(rng.Float64()*W, rng.Float64()*H, 0, 1)
		tr, ok := setup(v0, v1, v2)
		if !ok {
			continue
		}
		for py := 0; py < H; py++ {
			lo, hi := tr.spanX(py, 0, W-1)
			cy := float64(py) + 0.5
			for px := 0; px < W; px++ {
				_, _, _, in := tr.inside(float64(px)+0.5, cy)
				inSpan := px >= lo && px <= hi
				if in != inSpan {
					t.Fatalf("trial %d row %d px %d: inside=%v span=[%d,%d]",
						trial, py, px, in, lo, hi)
				}
			}
		}
		for px := 0; px < W; px++ {
			lo, hi := tr.spanY(px, 0, H-1)
			cx := float64(px) + 0.5
			for py := 0; py < H; py++ {
				_, _, _, in := tr.inside(cx, float64(py)+0.5)
				inSpan := py >= lo && py <= hi
				if in != inSpan {
					t.Fatalf("trial %d col %d py %d: inside=%v span=[%d,%d]",
						trial, px, py, in, lo, hi)
				}
			}
		}
	}
}

// TestSpanDegenerateRows covers rows entirely outside the triangle and
// horizontal/vertical edges (the a == 0 / b == 0 branches).
func TestSpanDegenerateRows(t *testing.T) {
	// Axis-aligned right triangle: a horizontal bottom edge and a
	// vertical left edge exercise the constant-predicate branches.
	tr, ok := setup(vert(4, 4, 0, 0), vert(20, 4, 1, 0), vert(4, 20, 0, 1))
	if !ok {
		t.Fatal("setup failed")
	}
	if lo, hi := tr.spanX(0, 0, 31); lo <= hi {
		t.Errorf("row above triangle has span [%d,%d]", lo, hi)
	}
	if lo, hi := tr.spanX(30, 0, 31); lo <= hi {
		t.Errorf("row below triangle has span [%d,%d]", lo, hi)
	}
	lo, hi := tr.spanX(10, 0, 31)
	if lo > hi || lo < 4 || hi > 14 {
		t.Errorf("interior row span [%d,%d] implausible", lo, hi)
	}
	if lo, hi := tr.spanY(2, 0, 31); lo <= hi {
		t.Errorf("column left of triangle has span [%d,%d]", lo, hi)
	}
}
