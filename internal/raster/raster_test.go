package raster

import (
	"math"
	"math/rand"
	"testing"
)

// vert builds a screen-space vertex with w=1 (no perspective) and the
// given UV.
func vert(x, y, u, v float64) Vert {
	return Vert{X: x, Y: y, Z: 0, InvW: 1, UW: u, VW: v, RW: 1, GW: 1, BW: 1}
}

func collect(v0, v1, v2 Vert, w, h int, trav Traversal) []Fragment {
	var out []Fragment
	Rasterize(v0, v1, v2, w, h, 16, 16, trav, func(f *Fragment) {
		out = append(out, *f)
	})
	return out
}

func TestFullScreenQuadCoverage(t *testing.T) {
	// Two triangles covering a 8x8 screen exactly: every pixel covered
	// exactly once (top-left rule at the shared diagonal).
	a := vert(0, 0, 0, 0)
	b := vert(8, 0, 1, 0)
	c := vert(8, 8, 1, 1)
	d := vert(0, 8, 0, 1)
	seen := map[[2]int]int{}
	emit := func(f *Fragment) { seen[[2]int{f.X, f.Y}]++ }
	Rasterize(a, b, c, 8, 8, 0, 0, Traversal{}, emit)
	Rasterize(a, c, d, 8, 8, 0, 0, Traversal{}, emit)
	if len(seen) != 64 {
		t.Fatalf("covered %d pixels, want 64", len(seen))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("pixel %v covered %d times", p, n)
		}
	}
}

func TestSharedEdgeNoDoubleCoverage(t *testing.T) {
	// Property: random triangle pairs sharing an edge never double-cover
	// and never leave gaps along the shared edge interior.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		p0 := vert(rng.Float64()*32, rng.Float64()*32, 0, 0)
		p1 := vert(rng.Float64()*32, rng.Float64()*32, 1, 0)
		pa := vert(rng.Float64()*32, rng.Float64()*32, 0, 1)
		pb := vert(rng.Float64()*32, rng.Float64()*32, 1, 1)
		seen := map[[2]int]int{}
		emit := func(f *Fragment) { seen[[2]int{f.X, f.Y}]++ }
		Rasterize(p0, p1, pa, 32, 32, 0, 0, Traversal{}, emit)
		Rasterize(p1, p0, pb, 32, 32, 0, 0, Traversal{}, emit)
		// pa and pb may be on the same side; only the "opposite sides"
		// cases exercise the shared edge, but double coverage is a bug in
		// every case when the two triangles do not overlap in area.
		side := func(p Vert) float64 {
			return (p1.X-p0.X)*(p.Y-p0.Y) - (p1.Y-p0.Y)*(p.X-p0.X)
		}
		if side(pa)*side(pb) < 0 {
			for p, n := range seen {
				if n != 1 {
					t.Fatalf("trial %d: pixel %v covered %d times", trial, p, n)
				}
			}
		}
	}
}

func TestTraversalOrdersSameCoverage(t *testing.T) {
	// Property: traversal order changes the sequence, never the set of
	// fragments or their attributes.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		v0 := vert(rng.Float64()*64, rng.Float64()*64, 0, 0)
		v1 := vert(rng.Float64()*64, rng.Float64()*64, 3, 0)
		v2 := vert(rng.Float64()*64, rng.Float64()*64, 0, 3)
		travs := []Traversal{
			{Order: RowMajor},
			{Order: ColumnMajor},
			{Order: RowMajor, TileW: 8, TileH: 8},
			{Order: ColumnMajor, TileW: 8, TileH: 8},
			{Order: RowMajor, TileW: 16, TileH: 4},
		}
		ref := map[[2]int]Fragment{}
		for _, f := range collect(v0, v1, v2, 64, 64, travs[0]) {
			ref[[2]int{f.X, f.Y}] = f
		}
		for _, trav := range travs[1:] {
			got := collect(v0, v1, v2, 64, 64, trav)
			if len(got) != len(ref) {
				t.Fatalf("trial %d trav %+v: %d fragments, want %d", trial, trav, len(got), len(ref))
			}
			for _, f := range got {
				r, ok := ref[[2]int{f.X, f.Y}]
				if !ok {
					t.Fatalf("trial %d trav %+v: unexpected fragment at (%d,%d)", trial, trav, f.X, f.Y)
				}
				if r != f {
					t.Fatalf("trial %d trav %+v: fragment attrs differ at (%d,%d):\n%+v\n%+v",
						trial, trav, f.X, f.Y, r, f)
				}
			}
		}
	}
}

func TestRowMajorOrdering(t *testing.T) {
	frags := collect(vert(0, 0, 0, 0), vert(16, 0, 1, 0), vert(0, 16, 0, 1), 16, 16, Traversal{Order: RowMajor})
	for i := 1; i < len(frags); i++ {
		a, b := frags[i-1], frags[i]
		if b.Y < a.Y || (b.Y == a.Y && b.X <= a.X) {
			t.Fatalf("row-major order violated: %v then %v", a, b)
		}
	}
}

func TestColumnMajorOrdering(t *testing.T) {
	frags := collect(vert(0, 0, 0, 0), vert(16, 0, 1, 0), vert(0, 16, 0, 1), 16, 16, Traversal{Order: ColumnMajor})
	for i := 1; i < len(frags); i++ {
		a, b := frags[i-1], frags[i]
		if b.X < a.X || (b.X == a.X && b.Y <= a.Y) {
			t.Fatalf("column-major order violated: %v then %v", a, b)
		}
	}
}

func TestTiledOrderingVisitsTileCompletely(t *testing.T) {
	// With 4x4 tiles over a full-screen right triangle, all fragments of
	// one tile must appear consecutively.
	trav := Traversal{Order: RowMajor, TileW: 4, TileH: 4}
	frags := collect(vert(0, 0, 0, 0), vert(16, 0, 1, 0), vert(0, 16, 0, 1), 16, 16, trav)
	tileOf := func(f Fragment) [2]int { return [2]int{f.X / 4, f.Y / 4} }
	seenTiles := map[[2]int]bool{}
	cur := [2]int{-1, -1}
	for _, f := range frags {
		tl := tileOf(f)
		if tl != cur {
			if seenTiles[tl] {
				t.Fatalf("tile %v revisited", tl)
			}
			seenTiles[tl] = true
			cur = tl
		}
	}
}

func TestAttributeInterpolationAffine(t *testing.T) {
	// With w=1 everywhere, interpolation is affine: u should equal x/16
	// (shifted by the half-pixel center) on an axis-aligned gradient.
	v0 := vert(0, 0, 0, 0)
	v1 := vert(16, 0, 1, 0)
	v2 := vert(0, 16, 0, 1)
	frags := collect(v0, v1, v2, 16, 16, Traversal{})
	for _, f := range frags {
		wantU := (float64(f.X) + 0.5) / 16
		wantV := (float64(f.Y) + 0.5) / 16
		if math.Abs(f.U-wantU) > 1e-12 || math.Abs(f.V-wantV) > 1e-12 {
			t.Fatalf("fragment (%d,%d): uv=(%g,%g), want (%g,%g)", f.X, f.Y, f.U, f.V, wantU, wantV)
		}
	}
}

func TestPerspectiveCorrectInterpolation(t *testing.T) {
	// A triangle with varying w: perspective-correct u at the midpoint of
	// an edge between w=1 and w=3 vertices is NOT the affine average.
	// Exact check: attributes pre-divided by w interpolate linearly; at
	// the screen midpoint of the edge, u = (u0/w0 + u1/w1)/2 / ((1/w0 + 1/w1)/2).
	v0 := Vert{X: 0, Y: 8, InvW: 1, UW: 0}
	v1 := Vert{X: 16, Y: 8, InvW: 1.0 / 3, UW: 1.0 / 3} // u=1, w=3
	v2 := Vert{X: 8, Y: 0, InvW: 1, UW: 0}
	var got *Fragment
	Rasterize(v0, v1, v2, 16, 16, 16, 16, Traversal{}, func(f *Fragment) {
		if f.X == 8 && f.Y == 7 {
			c := *f
			got = &c
		}
	})
	if got == nil {
		t.Fatal("midpoint fragment not covered")
	}
	// Independent reference: solve barycentrics of the pixel center and
	// apply the hyperbolic formula u = sum(wi*ui/wi) / sum(wi/wi).
	px, py := 8.5, 7.5
	area := (v1.X-v0.X)*(v2.Y-v0.Y) - (v1.Y-v0.Y)*(v2.X-v0.X)
	w0 := ((v1.X-px)*(v2.Y-py) - (v1.Y-py)*(v2.X-px)) / area
	w1 := ((v2.X-px)*(v0.Y-py) - (v2.Y-py)*(v0.X-px)) / area
	w2 := 1 - w0 - w1
	d := w0*v0.InvW + w1*v1.InvW + w2*v2.InvW
	wantU := (w0*v0.UW + w1*v1.UW + w2*v2.UW) / d
	if math.Abs(got.U-wantU) > 1e-12 {
		t.Errorf("perspective u = %v, want %v", got.U, wantU)
	}
	// And it must differ from the affine interpolation (u1 = 1 at v1).
	affine := w1 * 1.0
	if math.Abs(got.U-affine) < 1e-3 {
		t.Errorf("u = %v matches affine %v; perspective correction missing", got.U, affine)
	}
}

func TestLambdaMatchesScale(t *testing.T) {
	// UVs spanning [0,1] over a 16-pixel triangle with a 64-texel texture:
	// 4 texels per pixel -> lambda = 2 everywhere.
	v0 := vert(0, 0, 0, 0)
	v1 := vert(16, 0, 1, 0)
	v2 := vert(0, 16, 0, 1)
	var lambdas []float64
	Rasterize(v0, v1, v2, 16, 16, 64, 64, Traversal{}, func(f *Fragment) {
		lambdas = append(lambdas, f.Lambda)
	})
	if len(lambdas) == 0 {
		t.Fatal("no fragments")
	}
	for _, l := range lambdas {
		if math.Abs(l-2) > 1e-9 {
			t.Fatalf("lambda = %v, want 2", l)
		}
	}
}

func TestLambdaMagnification(t *testing.T) {
	// One texel stretched across many pixels gives negative lambda.
	v0 := vert(0, 0, 0, 0)
	v1 := vert(64, 0, 0.25, 0)
	v2 := vert(0, 64, 0, 0.25)
	var sample *Fragment
	Rasterize(v0, v1, v2, 64, 64, 16, 16, Traversal{}, func(f *Fragment) {
		if sample == nil {
			c := *f
			sample = &c
		}
	})
	if sample == nil {
		t.Fatal("no fragments")
	}
	if sample.Lambda >= 0 {
		t.Errorf("lambda = %v, want negative (magnified)", sample.Lambda)
	}
}

func TestDegenerateTriangleNoFragments(t *testing.T) {
	v := vert(5, 5, 0, 0)
	if got := collect(v, v, v, 16, 16, Traversal{}); len(got) != 0 {
		t.Errorf("degenerate triangle produced %d fragments", len(got))
	}
	// Collinear.
	if got := collect(vert(0, 0, 0, 0), vert(4, 4, 0, 0), vert(8, 8, 0, 0), 16, 16, Traversal{}); len(got) != 0 {
		t.Errorf("collinear triangle produced %d fragments", len(got))
	}
}

func TestWindingInsensitive(t *testing.T) {
	v0, v1, v2 := vert(1, 1, 0, 0), vert(14, 2, 1, 0), vert(7, 13, 0, 1)
	a := collect(v0, v1, v2, 16, 16, Traversal{})
	b := collect(v0, v2, v1, 16, 16, Traversal{})
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("winding changed coverage: %d vs %d", len(a), len(b))
	}
}

func TestOffscreenClampsToBounds(t *testing.T) {
	// A triangle partially off-screen only yields in-bounds fragments.
	frags := collect(vert(-10, -10, 0, 0), vert(30, -5, 1, 0), vert(5, 30, 0, 1), 16, 16, Traversal{})
	if len(frags) == 0 {
		t.Fatal("no fragments")
	}
	for _, f := range frags {
		if f.X < 0 || f.X >= 16 || f.Y < 0 || f.Y >= 16 {
			t.Fatalf("out-of-bounds fragment (%d,%d)", f.X, f.Y)
		}
	}
}

func TestZInterpolation(t *testing.T) {
	v0, v1, v2 := vert(0, 0, 0, 0), vert(16, 0, 1, 0), vert(0, 16, 0, 1)
	v0.Z, v1.Z, v2.Z = 0, 1, 1
	var zmin, zmax = math.Inf(1), math.Inf(-1)
	Rasterize(v0, v1, v2, 16, 16, 0, 0, Traversal{}, func(f *Fragment) {
		zmin = math.Min(zmin, f.Z)
		zmax = math.Max(zmax, f.Z)
	})
	if zmin < 0 || zmax > 1 {
		t.Errorf("z outside [0,1]: [%v, %v]", zmin, zmax)
	}
	if zmax-zmin < 0.5 {
		t.Errorf("z barely varies: [%v, %v]", zmin, zmax)
	}
}

func TestOrderString(t *testing.T) {
	if RowMajor.String() != "horizontal" || ColumnMajor.String() != "vertical" {
		t.Error("Order.String mismatch")
	}
}
