package raster

import "math"

// This file is the rasterizer half of the tile-parallel render path: a
// screen tiling (Grid), triangle-to-tile binning support (Bounds), and a
// clipped rasterization entry point (RasterizeRect) that tags every
// fragment with its rank — the fragment's position in the serial
// traversal order of its triangle. Ranks let per-tile fragment streams,
// produced concurrently, be merged back into the exact sequence
// Rasterize would have emitted: within one triangle the serial order of
// any two fragments is fully determined by the traversal, so a total
// order encodable per fragment, and a rect-restricted scan emits exactly
// the serial subsequence that lands inside the rect.

// Rect is an inclusive integer pixel rectangle. A rect with X0 > X1 or
// Y0 > Y1 is empty.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Empty reports whether the rect contains no pixels.
func (r Rect) Empty() bool { return r.X0 > r.X1 || r.Y0 > r.Y1 }

// Contains reports whether pixel (x, y) lies inside the rect.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x <= r.X1 && y >= r.Y0 && y <= r.Y1
}

// Intersect returns the intersection of two rects (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		X0: maxInt(r.X0, o.X0), Y0: maxInt(r.Y0, o.Y0),
		X1: minInt(r.X1, o.X1), Y1: minInt(r.Y1, o.Y1),
	}
}

// Grid is a static decomposition of a width x height screen into
// tile x tile pixel tiles anchored at the origin; the rightmost column
// and bottom row shrink to the screen edge. Tiles are indexed row-major.
type Grid struct {
	W, H, Tile int
	NX, NY     int
}

// NewGrid builds the tiling. Tile sizes below 1 are clamped to the full
// screen (a single tile).
func NewGrid(w, h, tile int) Grid {
	if tile < 1 {
		tile = maxInt(w, h)
	}
	return Grid{
		W: w, H: h, Tile: tile,
		NX: (w + tile - 1) / tile,
		NY: (h + tile - 1) / tile,
	}
}

// NumTiles returns the tile count.
func (g Grid) NumTiles() int { return g.NX * g.NY }

// Rect returns the pixel rect of tile i.
func (g Grid) Rect(i int) Rect {
	tx, ty := i%g.NX, i/g.NX
	return Rect{
		X0: tx * g.Tile, Y0: ty * g.Tile,
		X1: minInt((tx+1)*g.Tile-1, g.W-1),
		Y1: minInt((ty+1)*g.Tile-1, g.H-1),
	}
}

// TileRange returns the inclusive tile-coordinate range overlapping a
// (screen-clamped) pixel rect, for binning.
func (g Grid) TileRange(r Rect) (tx0, ty0, tx1, ty1 int) {
	return r.X0 / g.Tile, r.Y0 / g.Tile, r.X1 / g.Tile, r.Y1 / g.Tile
}

// Bounds returns the clamped integer pixel bounding box Rasterize scans
// for the triangle — the pixels whose centers can be covered — and
// whether it is non-empty. It does not reject degenerate triangles;
// RasterizeRect (like Rasterize) emits nothing for those.
func Bounds(v0, v1, v2 Vert, width, height int) (Rect, bool) {
	minX := math.Min(v0.X, math.Min(v1.X, v2.X))
	maxX := math.Max(v0.X, math.Max(v1.X, v2.X))
	minY := math.Min(v0.Y, math.Min(v1.Y, v2.Y))
	maxY := math.Max(v0.Y, math.Max(v1.Y, v2.Y))
	b := Rect{
		X0: clampInt(int(math.Ceil(minX-0.5)), 0, width-1),
		X1: clampInt(int(math.Floor(maxX-0.5)), 0, width-1),
		Y0: clampInt(int(math.Ceil(minY-0.5)), 0, height-1),
		Y1: clampInt(int(math.Floor(maxY-0.5)), 0, height-1),
	}
	return b, !b.Empty()
}

// Rank packing. Untiled scans order fragments by (major, minor) pixel
// coordinate, so 32 bits per axis always suffice. Statically tiled scans
// order by (tile major, tile minor, pixel major, pixel minor), packed as
// 18+18+14+14 bits — enough for screens up to 16384 pixels on a side,
// far beyond the paper's 1280x1024. Hilbert ranks are the raw curve
// distance over the bounding box's enclosing power-of-two square.
const (
	rankPixBits  = 14
	rankTileBits = 18
)

// RasterizeRect scans the triangle exactly as Rasterize does but emits
// only the fragments inside clip, each tagged with its rank in the
// serial traversal order. Restricting the scan never changes a
// fragment's values: coverage and shading depend only on the pixel and
// the triangle setup, and the span searches are exact on any
// sub-interval. Consequently, for any partition of the screen into
// rects, concatenating the per-rect streams in rank order reproduces
// Rasterize's emission sequence bit for bit.
func RasterizeRect(v0, v1, v2 Vert, width, height int, texW, texH int, trav Traversal, clip Rect, emit func(*Fragment, uint64)) {
	t, ok := setup(v0, v1, v2)
	if !ok {
		return
	}
	bbox, ok := Bounds(v0, v1, v2, width, height)
	if !ok {
		return
	}
	tw, th := float64(texW), float64(texH)
	var frag Fragment

	if trav.Order == HilbertOrder {
		// The serial scan walks the full curve over the bounding box's
		// enclosing square; the curve distance is the rank. Walking the
		// whole curve per clip rect is redundant across tiles but keeps
		// the rank identical to the serial visit index by construction.
		scanHilbertRanked(bbox, clip, func(px, py int, d uint64) {
			if w0, w1, w2, in := t.inside(float64(px)+0.5, float64(py)+0.5); in {
				t.shade(px, py, w0, w1, w2, tw, th, &frag)
				emit(&frag, d)
			}
		})
		return
	}

	visible := bbox.Intersect(clip)
	if visible.Empty() {
		return
	}

	// scanRectRanked is Rasterize's scanRect over a sub-rect, with the
	// rank of each emitted fragment supplied by rank(px, py).
	scanRectRanked := func(r Rect, rank func(px, py int) uint64) {
		if trav.Order == RowMajor {
			for py := r.Y0; py <= r.Y1; py++ {
				cy := float64(py) + 0.5
				lo, hi := t.spanX(py, r.X0, r.X1)
				for px := lo; px <= hi; px++ {
					if w0, w1, w2, in := t.inside(float64(px)+0.5, cy); in {
						t.shade(px, py, w0, w1, w2, tw, th, &frag)
						emit(&frag, rank(px, py))
					}
				}
			}
			return
		}
		for px := r.X0; px <= r.X1; px++ {
			cx := float64(px) + 0.5
			lo, hi := t.spanY(px, r.Y0, r.Y1)
			for py := lo; py <= hi; py++ {
				if w0, w1, w2, in := t.inside(cx, float64(py)+0.5); in {
					t.shade(px, py, w0, w1, w2, tw, th, &frag)
					emit(&frag, rank(px, py))
				}
			}
		}
	}

	if !trav.Tiled() {
		if trav.Order == RowMajor {
			scanRectRanked(visible, func(px, py int) uint64 {
				return uint64(py)<<32 | uint64(px)
			})
		} else {
			scanRectRanked(visible, func(px, py int) uint64 {
				return uint64(px)<<32 | uint64(py)
			})
		}
		return
	}

	// Static traversal tiling: the serial scan visits the traversal
	// tiles overlapping the bounding box in order, scanning each
	// tile-bbox intersection. Only the rank depends on the visit order,
	// so it is enough to scan the clipped portion of every such tile
	// with a rank lexicographic in (tile major, tile minor, pixel major,
	// pixel minor).
	tx0, tx1 := bbox.X0/trav.TileW, bbox.X1/trav.TileW
	ty0, ty1 := bbox.Y0/trav.TileH, bbox.Y1/trav.TileH
	scanTileRanked := func(tx, ty int) {
		tile := Rect{
			X0: tx * trav.TileW, Y0: ty * trav.TileH,
			X1: (tx+1)*trav.TileW - 1, Y1: (ty+1)*trav.TileH - 1,
		}
		r := tile.Intersect(bbox).Intersect(clip)
		if r.Empty() {
			return
		}
		var rank func(px, py int) uint64
		if trav.Order == RowMajor {
			rank = func(px, py int) uint64 {
				return uint64(ty)<<(rankTileBits+2*rankPixBits) |
					uint64(tx)<<(2*rankPixBits) |
					uint64(py)<<rankPixBits | uint64(px)
			}
		} else {
			rank = func(px, py int) uint64 {
				return uint64(tx)<<(rankTileBits+2*rankPixBits) |
					uint64(ty)<<(2*rankPixBits) |
					uint64(px)<<rankPixBits | uint64(py)
			}
		}
		scanRectRanked(r, rank)
	}
	// Tile visit order must mirror Rasterize's so each clip stream is
	// emitted in ascending rank.
	if trav.Order == RowMajor {
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				scanTileRanked(tx, ty)
			}
		}
	} else {
		for tx := tx0; tx <= tx1; tx++ {
			for ty := ty0; ty <= ty1; ty++ {
				scanTileRanked(tx, ty)
			}
		}
	}
}

// scanHilbertRanked visits the pixels of bbox that fall inside clip in
// Peano-Hilbert order, passing each pixel's distance along the curve
// (over the bounding box's enclosing power-of-two square) as its rank.
func scanHilbertRanked(bbox, clip Rect, visit func(px, py int, d uint64)) {
	w := bbox.X1 - bbox.X0 + 1
	h := bbox.Y1 - bbox.Y0 + 1
	if w <= 0 || h <= 0 {
		return
	}
	side := 1
	for side < w || side < h {
		side <<= 1
	}
	for d := 0; d < side*side; d++ {
		x, y := hilbertD2XY(side, d)
		if x < w && y < h {
			px, py := bbox.X0+x, bbox.Y0+y
			if clip.Contains(px, py) {
				visit(px, py, uint64(d))
			}
		}
	}
}
