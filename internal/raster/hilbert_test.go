package raster

import (
	"testing"
)

func TestHilbertD2XYIsBijective(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		seen := make(map[[2]int]bool, n*n)
		for d := 0; d < n*n; d++ {
			x, y := hilbertD2XY(n, d)
			if x < 0 || x >= n || y < 0 || y >= n {
				t.Fatalf("n=%d d=%d: (%d,%d) out of range", n, d, x, y)
			}
			if seen[[2]int{x, y}] {
				t.Fatalf("n=%d d=%d: (%d,%d) repeated", n, d, x, y)
			}
			seen[[2]int{x, y}] = true
		}
		if len(seen) != n*n {
			t.Fatalf("n=%d: covered %d cells", n, len(seen))
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// The defining property: consecutive curve points are 4-neighbors.
	const n = 32
	px, py := hilbertD2XY(n, 0)
	for d := 1; d < n*n; d++ {
		x, y := hilbertD2XY(n, d)
		dist := abs(x-px) + abs(y-py)
		if dist != 1 {
			t.Fatalf("d=%d: jump from (%d,%d) to (%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestHilbertTraversalSameCoverage(t *testing.T) {
	v0 := vert(1, 2, 0, 0)
	v1 := vert(30, 5, 1, 0)
	v2 := vert(10, 28, 0, 1)
	ref := map[[2]int]Fragment{}
	for _, f := range collect(v0, v1, v2, 32, 32, Traversal{Order: RowMajor}) {
		ref[[2]int{f.X, f.Y}] = f
	}
	got := collect(v0, v1, v2, 32, 32, Traversal{Order: HilbertOrder})
	if len(got) != len(ref) {
		t.Fatalf("hilbert covered %d fragments, row-major %d", len(got), len(ref))
	}
	for _, f := range got {
		if r, ok := ref[[2]int{f.X, f.Y}]; !ok || r != f {
			t.Fatalf("hilbert fragment differs at (%d,%d)", f.X, f.Y)
		}
	}
}

func TestHilbertOrderLocality(t *testing.T) {
	// Consecutive fragments along the Hilbert path over a full-square
	// triangle pair stay close: mean |dx|+|dy| must be far below the
	// row-major full-width jumps... for a single large triangle the
	// curve's step distance is 1 except when skipping outside pixels.
	frags := collect(vert(0, 0, 0, 0), vert(32, 0, 1, 0), vert(0, 32, 0, 1), 32, 32,
		Traversal{Order: HilbertOrder})
	if len(frags) == 0 {
		t.Fatal("no fragments")
	}
	sum, n := 0, 0
	for i := 1; i < len(frags); i++ {
		sum += abs(frags[i].X-frags[i-1].X) + abs(frags[i].Y-frags[i-1].Y)
		n++
	}
	mean := float64(sum) / float64(n)
	if mean > 2.5 {
		t.Errorf("hilbert mean step = %v, want near 1", mean)
	}
}

func TestOrderStringHilbert(t *testing.T) {
	if HilbertOrder.String() != "hilbert" {
		t.Error("hilbert order name wrong")
	}
}
