package raster

// Hilbert-order traversal. Footnote 1 of the paper observes that "the
// screen rasterization path that would lead to the smallest working set
// would follow a Peano-Hilbert order since this would traverse a region
// of the texture in a spatially contiguous manner". This file provides
// that path as a third traversal mode so the claim can be tested.

// HilbertOrder scans pixels along a Peano-Hilbert space-filling curve
// covering the triangle's bounding box. It ignores Traversal tiling: the
// curve is itself a recursive tiling.
const HilbertOrder Order = 2

// hilbertD2XY converts a distance d along the Hilbert curve of a 2^k x
// 2^k grid (n = 2^k) into (x, y) coordinates. Standard bit-twiddling
// walk from the least significant quadrant upward.
func hilbertD2XY(n int, d int) (x, y int) {
	rx, ry := 0, 0
	t := d
	for s := 1; s < n; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(n, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = n - 1 - x
			y = n - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// scanHilbert emits the pixels of [x0,x1]x[y0,y1] in Hilbert order over
// the smallest enclosing power-of-two square anchored at (x0, y0),
// invoking visit for each in-range pixel.
func scanHilbert(x0, y0, x1, y1 int, visit func(px, py int)) {
	w, h := x1-x0+1, y1-y0+1
	side := 1
	for side < w || side < h {
		side <<= 1
	}
	for d := 0; d < side*side; d++ {
		x, y := hilbertD2XY(side, d)
		if x < w && y < h {
			visit(x0+x, y0+y)
		}
	}
}
