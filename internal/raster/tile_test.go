package raster

import (
	"math/rand"
	"sort"
	"testing"
)

// partitionTraversals is the traversal matrix the tile-parallel
// equivalence properties are checked against: every order, untiled and
// statically tiled, including non-square tiles that do not divide the
// render-tile size evenly.
var partitionTraversals = map[string]Traversal{
	"horizontal":        {Order: RowMajor},
	"vertical":          {Order: ColumnMajor},
	"hilbert":           {Order: HilbertOrder},
	"tiled8-horizontal": {Order: RowMajor, TileW: 8, TileH: 8},
	"tiled16x8-vert":    {Order: ColumnMajor, TileW: 16, TileH: 8},
	"tiled24x8-horiz":   {Order: RowMajor, TileW: 24, TileH: 8},
}

// randTri returns a random triangle covering a plausible screen area,
// with attributes varied enough that any reordering of fragments would
// change the captured values.
func randTri(rng *rand.Rand, w, h int) (Vert, Vert, Vert) {
	v := func() Vert {
		return Vert{
			X:    rng.Float64()*float64(w+20) - 10,
			Y:    rng.Float64()*float64(h+20) - 10,
			Z:    rng.Float64()*2 - 1,
			InvW: 0.2 + rng.Float64(),
			UW:   rng.Float64(),
			VW:   rng.Float64(),
			RW:   rng.Float64(),
			GW:   rng.Float64(),
			BW:   rng.Float64(),
		}
	}
	return v(), v(), v()
}

type rankedFrag struct {
	f    Fragment
	rank uint64
}

// TestRasterizeRectPartition is the core tile-parallel correctness
// property: for any partition of the screen into rects, collecting each
// rect's RasterizeRect fragments and sorting the union by rank must
// reproduce Rasterize's emission sequence exactly — same fragments,
// same values, same order.
func TestRasterizeRectPartition(t *testing.T) {
	const w, h = 97, 61 // deliberately not multiples of any tile size
	rng := rand.New(rand.NewSource(42))
	for name, trav := range partitionTraversals {
		t.Run(name, func(t *testing.T) {
			for n := 0; n < 40; n++ {
				v0, v1, v2 := randTri(rng, w, h)

				var serial []Fragment
				Rasterize(v0, v1, v2, w, h, 64, 64, trav, func(f *Fragment) {
					serial = append(serial, *f)
				})

				for _, tile := range []int{16, 23, 64} {
					grid := NewGrid(w, h, tile)
					var merged []rankedFrag
					for i := 0; i < grid.NumTiles(); i++ {
						RasterizeRect(v0, v1, v2, w, h, 64, 64, trav, grid.Rect(i),
							func(f *Fragment, rank uint64) {
								merged = append(merged, rankedFrag{f: *f, rank: rank})
							})
					}
					sort.SliceStable(merged, func(a, b int) bool {
						return merged[a].rank < merged[b].rank
					})
					if len(merged) != len(serial) {
						t.Fatalf("tri %d tile %d: %d fragments, serial has %d",
							n, tile, len(merged), len(serial))
					}
					for i := range serial {
						if merged[i].f != serial[i] {
							t.Fatalf("tri %d tile %d: fragment %d differs:\nserial  %+v\nmerged  %+v (rank %d)",
								n, tile, i, serial[i], merged[i].f, merged[i].rank)
						}
						if i > 0 && merged[i].rank == merged[i-1].rank {
							t.Fatalf("tri %d tile %d: duplicate rank %d at %d",
								n, tile, merged[i].rank, i)
						}
					}
				}
			}
		})
	}
}

// TestRasterizeRectFullScreenIsSerial checks the degenerate partition:
// one rect covering the screen must emit the serial sequence directly,
// already in ascending rank order.
func TestRasterizeRectFullScreenIsSerial(t *testing.T) {
	const w, h = 80, 64
	rng := rand.New(rand.NewSource(7))
	for name, trav := range partitionTraversals {
		t.Run(name, func(t *testing.T) {
			for n := 0; n < 10; n++ {
				v0, v1, v2 := randTri(rng, w, h)
				var serial []Fragment
				Rasterize(v0, v1, v2, w, h, 64, 64, trav, func(f *Fragment) {
					serial = append(serial, *f)
				})
				var got []Fragment
				last := uint64(0)
				first := true
				RasterizeRect(v0, v1, v2, w, h, 64, 64, trav, Rect{0, 0, w - 1, h - 1},
					func(f *Fragment, rank uint64) {
						if !first && rank <= last {
							t.Fatalf("tri %d: rank not increasing: %d after %d", n, rank, last)
						}
						first, last = false, rank
						got = append(got, *f)
					})
				if len(got) != len(serial) {
					t.Fatalf("tri %d: %d fragments, serial has %d", n, len(got), len(serial))
				}
				for i := range serial {
					if got[i] != serial[i] {
						t.Fatalf("tri %d: fragment %d differs", n, i)
					}
				}
			}
		})
	}
}

func TestGrid(t *testing.T) {
	g := NewGrid(100, 50, 32)
	if g.NX != 4 || g.NY != 2 || g.NumTiles() != 8 {
		t.Fatalf("grid = %+v", g)
	}
	// Tiles must partition the screen exactly.
	seen := map[[2]int]int{}
	for i := 0; i < g.NumTiles(); i++ {
		r := g.Rect(i)
		if r.Empty() {
			t.Fatalf("tile %d empty: %+v", i, r)
		}
		for y := r.Y0; y <= r.Y1; y++ {
			for x := r.X0; x <= r.X1; x++ {
				seen[[2]int{x, y}]++
			}
		}
	}
	if len(seen) != 100*50 {
		t.Fatalf("tiles cover %d pixels, want %d", len(seen), 100*50)
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("pixel %v covered %d times", p, n)
		}
	}
	// TileRange over the full screen must span the whole grid.
	tx0, ty0, tx1, ty1 := g.TileRange(Rect{0, 0, 99, 49})
	if tx0 != 0 || ty0 != 0 || tx1 != 3 || ty1 != 1 {
		t.Fatalf("TileRange = %d,%d..%d,%d", tx0, ty0, tx1, ty1)
	}
	// A degenerate tile size falls back to one tile.
	if g := NewGrid(64, 64, 0); g.NumTiles() != 1 {
		t.Fatalf("zero tile size: %d tiles", g.NumTiles())
	}
}

func TestBoundsMatchesRasterize(t *testing.T) {
	const w, h = 64, 64
	rng := rand.New(rand.NewSource(3))
	for n := 0; n < 50; n++ {
		v0, v1, v2 := randTri(rng, w, h)
		bbox, ok := Bounds(v0, v1, v2, w, h)
		any := false
		Rasterize(v0, v1, v2, w, h, 0, 0, Traversal{}, func(f *Fragment) {
			any = true
			if !bbox.Contains(f.X, f.Y) {
				t.Fatalf("tri %d: fragment (%d,%d) outside bounds %+v", n, f.X, f.Y, bbox)
			}
		})
		if any && !ok {
			t.Fatalf("tri %d: Bounds empty but fragments emitted", n)
		}
	}
}
