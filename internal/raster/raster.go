// Package raster implements the fragment generator's rasterization stage:
// half-plane (edge-function) triangle rasterization with perspective-
// correct attribute interpolation, analytic level-of-detail derivatives
// for Mip Map selection, and the three screen traversal orders the paper
// studies — horizontal (row major), vertical (column major), and
// statically tiled (Section 6).
package raster

import (
	"math"
)

// Order selects the scanning direction, both within a tile and between
// tiles.
type Order int

const (
	// RowMajor scans x fastest (the paper's "horizontal rasterization").
	RowMajor Order = iota
	// ColumnMajor scans y fastest ("vertical rasterization").
	ColumnMajor
)

// String names the order as the figures do.
func (o Order) String() string {
	switch o {
	case ColumnMajor:
		return "vertical"
	case HilbertOrder:
		return "hilbert"
	default:
		return "horizontal"
	}
}

// Traversal describes how the screen is walked during rasterization.
// TileW/TileH of zero mean untiled scanning across the whole triangle;
// otherwise the screen is statically decomposed into TileW x TileH pixel
// tiles anchored at the origin, tiles are visited in Order, and pixels
// within each tile are scanned in Order (Figure 6.1b).
type Traversal struct {
	Order        Order
	TileW, TileH int
}

// Tiled reports whether a static screen tiling is in effect.
func (t Traversal) Tiled() bool { return t.TileW > 0 && t.TileH > 0 }

// Fragment is one covered screen pixel with its interpolated attributes,
// ready for texturing: NDC depth Z, perspective-correct normalized
// texture coordinates (U, V), Mip Map level-of-detail Lambda
// (log2 of texels per pixel), and the shading color.
type Fragment struct {
	X, Y    int
	Z       float64
	U, V    float64
	Lambda  float64
	R, G, B float64
}

// Vert is a post-projection vertex prepared by the pipeline: screen-space
// position, NDC depth, and attributes pre-divided by clip-space w for
// perspective-correct interpolation.
type Vert struct {
	X, Y       float64 // screen pixel coordinates
	Z          float64 // NDC depth in [-1, 1]
	InvW       float64 // 1 / w_clip
	UW, VW     float64 // u/w, v/w
	RW, GW, BW float64 // shade color / w
}

// tri holds the per-triangle setup: edge functions and attribute
// gradients, all linear in screen space.
type tri struct {
	// Edge functions E_i(x,y) = eA[i]*x + eB[i]*y + eC[i], positive
	// inside for all three after orientation normalization.
	eA, eB, eC [3]float64
	topLeft    [3]bool
	invArea    float64

	v0, v1, v2 Vert

	// Gradients of the linearly interpolated quantities.
	gxD, gyD float64 // d(1/w)/dx, /dy
	gxU, gyU float64 // d(u/w)/dx, /dy
	gxV, gyV float64 // d(v/w)/dx, /dy
}

// setup builds the triangle's edge equations and gradients. Returns false
// for degenerate (zero-area) triangles.
func setup(v0, v1, v2 Vert) (tri, bool) {
	area := (v1.X-v0.X)*(v2.Y-v0.Y) - (v1.Y-v0.Y)*(v2.X-v0.X)
	if area == 0 {
		return tri{}, false
	}
	if area < 0 {
		// Normalize to counter-clockwise so edge functions are positive
		// inside.
		v1, v2 = v2, v1
		area = -area
	}
	t := tri{v0: v0, v1: v1, v2: v2, invArea: 1 / area}

	edges := [3][2]Vert{{v1, v2}, {v2, v0}, {v0, v1}}
	for i, e := range edges {
		a, b := e[0], e[1]
		t.eA[i] = a.Y - b.Y
		t.eB[i] = b.X - a.X
		t.eC[i] = a.X*b.Y - a.Y*b.X
		// Top-left fill rule: an edge is "top" if horizontal and going
		// left (for CCW), "left" if it goes downward in a y-down screen.
		t.topLeft[i] = (a.Y == b.Y && b.X < a.X) || (b.Y > a.Y)
	}

	// Gradients of barycentric weights: dwi/dx = eA[i]*invArea, so the
	// gradient of any linearly interpolated attribute f with vertex
	// values f0, f1, f2 is sum(fi * eA[i]) * invArea.
	grad := func(f0, f1, f2 float64) (gx, gy float64) {
		gx = (f0*t.eA[0] + f1*t.eA[1] + f2*t.eA[2]) * t.invArea
		gy = (f0*t.eB[0] + f1*t.eB[1] + f2*t.eB[2]) * t.invArea
		return
	}
	t.gxD, t.gyD = grad(v0.InvW, v1.InvW, v2.InvW)
	t.gxU, t.gyU = grad(v0.UW, v1.UW, v2.UW)
	t.gxV, t.gyV = grad(v0.VW, v1.VW, v2.VW)
	return t, true
}

// inside evaluates coverage at pixel-center (cx, cy), applying the
// top-left rule on exact edge hits so abutting triangles never double-
// cover a pixel.
func (t *tri) inside(cx, cy float64) (w0, w1, w2 float64, ok bool) {
	var e [3]float64
	for i := 0; i < 3; i++ {
		e[i] = t.eA[i]*cx + t.eB[i]*cy + t.eC[i]
		if e[i] < 0 || (e[i] == 0 && !t.topLeft[i]) {
			return 0, 0, 0, false
		}
	}
	return e[0] * t.invArea, e[1] * t.invArea, e[2] * t.invArea, true
}

// edgePass evaluates one edge's coverage predicate at (cx, cy), the same
// expression and comparison inside uses, so span search and per-pixel
// testing can never disagree.
func (t *tri) edgePass(i int, cx, cy float64) bool {
	e := t.eA[i]*cx + t.eB[i]*cy + t.eC[i]
	return e > 0 || (e == 0 && t.topLeft[i])
}

// spanX returns the inclusive pixel range within [lo, hi] whose centers
// on row py pass all three edges. Each edge predicate is monotone along
// the row (linear in x with fixed sign of slope, and IEEE multiply/add
// are monotone), so the passing set per edge is a half-interval found by
// binary search on the exact predicate; the triangle span is the
// intersection. Returns lo > hi when the row is empty.
func (t *tri) spanX(py, lo, hi int) (int, int) {
	cy := float64(py) + 0.5
	for i := 0; i < 3 && lo <= hi; i++ {
		pass := func(px int) bool { return t.edgePass(i, float64(px)+0.5, cy) }
		switch a := t.eA[i]; {
		case a > 0: // monotone non-decreasing: passing suffix
			if !pass(hi) {
				return 1, 0
			}
			if !pass(lo) {
				l, h := lo, hi // pass(l) false, pass(h) true
				for h-l > 1 {
					if m := (l + h) / 2; pass(m) {
						h = m
					} else {
						l = m
					}
				}
				lo = h
			}
		case a < 0: // monotone non-increasing: passing prefix
			if !pass(lo) {
				return 1, 0
			}
			if !pass(hi) {
				l, h := lo, hi // pass(l) true, pass(h) false
				for h-l > 1 {
					if m := (l + h) / 2; pass(m) {
						l = m
					} else {
						h = m
					}
				}
				hi = l
			}
		default: // constant along the row
			if !pass(lo) {
				return 1, 0
			}
		}
	}
	return lo, hi
}

// spanY is spanX for a column: the predicate is monotone in y with the
// sign of eB.
func (t *tri) spanY(px, lo, hi int) (int, int) {
	cx := float64(px) + 0.5
	for i := 0; i < 3 && lo <= hi; i++ {
		pass := func(py int) bool { return t.edgePass(i, cx, float64(py)+0.5) }
		switch b := t.eB[i]; {
		case b > 0:
			if !pass(hi) {
				return 1, 0
			}
			if !pass(lo) {
				l, h := lo, hi
				for h-l > 1 {
					if m := (l + h) / 2; pass(m) {
						h = m
					} else {
						l = m
					}
				}
				lo = h
			}
		case b < 0:
			if !pass(lo) {
				return 1, 0
			}
			if !pass(hi) {
				l, h := lo, hi
				for h-l > 1 {
					if m := (l + h) / 2; pass(m) {
						l = m
					} else {
						h = m
					}
				}
				hi = l
			}
		default:
			if !pass(lo) {
				return 1, 0
			}
		}
	}
	return lo, hi
}

// shade computes the fragment attributes at pixel (px, py) with
// barycentric weights (w0, w1, w2).
func (t *tri) shade(px, py int, w0, w1, w2, texW, texH float64, f *Fragment) {
	d := w0*t.v0.InvW + w1*t.v1.InvW + w2*t.v2.InvW
	invD := 1 / d
	nU := w0*t.v0.UW + w1*t.v1.UW + w2*t.v2.UW
	nV := w0*t.v0.VW + w1*t.v1.VW + w2*t.v2.VW

	f.X, f.Y = px, py
	f.Z = w0*t.v0.Z + w1*t.v1.Z + w2*t.v2.Z
	f.U = nU * invD
	f.V = nV * invD
	f.R = (w0*t.v0.RW + w1*t.v1.RW + w2*t.v2.RW) * invD
	f.G = (w0*t.v0.GW + w1*t.v1.GW + w2*t.v2.GW) * invD
	f.B = (w0*t.v0.BW + w1*t.v1.BW + w2*t.v2.BW) * invD

	if texW > 0 {
		// Perspective-correct screen-space derivatives of the texel
		// coordinates via the quotient rule: u = nU/d, so
		// du/dx = (nU' * d - nU * d') / d^2.
		invD2 := invD * invD
		dudx := (t.gxU*d - nU*t.gxD) * invD2 * texW
		dudy := (t.gyU*d - nU*t.gyD) * invD2 * texW
		dvdx := (t.gxV*d - nV*t.gxD) * invD2 * texH
		dvdy := (t.gyV*d - nV*t.gyD) * invD2 * texH
		rho := math.Max(math.Hypot(dudx, dvdx), math.Hypot(dudy, dvdy))
		if rho > 0 {
			f.Lambda = math.Log2(rho)
		} else {
			f.Lambda = math.Inf(-1)
		}
	} else {
		f.Lambda = 0
	}
}

// Rasterize scans the triangle (v0, v1, v2) over a width x height screen
// using the given traversal, invoking emit for every covered pixel.
// texW/texH are the base-level texture dimensions used for level-of-
// detail; pass zero for untextured triangles.
func Rasterize(v0, v1, v2 Vert, width, height int, texW, texH int, trav Traversal, emit func(*Fragment)) {
	t, ok := setup(v0, v1, v2)
	if !ok {
		return
	}

	// Integer pixel bounds: pixels whose centers can be covered.
	minX := math.Min(v0.X, math.Min(v1.X, v2.X))
	maxX := math.Max(v0.X, math.Max(v1.X, v2.X))
	minY := math.Min(v0.Y, math.Min(v1.Y, v2.Y))
	maxY := math.Max(v0.Y, math.Max(v1.Y, v2.Y))
	x0 := clampInt(int(math.Ceil(minX-0.5)), 0, width-1)
	x1 := clampInt(int(math.Floor(maxX-0.5)), 0, width-1)
	y0 := clampInt(int(math.Ceil(minY-0.5)), 0, height-1)
	y1 := clampInt(int(math.Floor(maxY-0.5)), 0, height-1)
	if x0 > x1 || y0 > y1 {
		return
	}

	tw, th := float64(texW), float64(texH)
	var frag Fragment
	if trav.Order == HilbertOrder {
		// Peano-Hilbert path over the bounding box (footnote 1); the
		// curve subsumes tiling.
		scanHilbert(x0, y0, x1, y1, func(px, py int) {
			if w0, w1, w2, in := t.inside(float64(px)+0.5, float64(py)+0.5); in {
				t.shade(px, py, w0, w1, w2, tw, th, &frag)
				emit(&frag)
			}
		})
		return
	}
	// scanRect walks rows (or columns) as spans: binary search finds the
	// covered interval, then only covered pixels are shaded — the
	// incremental span processing of a classical scanline rasterizer,
	// with coverage decided by the identical edge predicate either way.
	scanRect := func(rx0, ry0, rx1, ry1 int) {
		if trav.Order == RowMajor {
			for py := ry0; py <= ry1; py++ {
				cy := float64(py) + 0.5
				lo, hi := t.spanX(py, rx0, rx1)
				for px := lo; px <= hi; px++ {
					if w0, w1, w2, in := t.inside(float64(px)+0.5, cy); in {
						t.shade(px, py, w0, w1, w2, tw, th, &frag)
						emit(&frag)
					}
				}
			}
			return
		}
		for px := rx0; px <= rx1; px++ {
			cx := float64(px) + 0.5
			lo, hi := t.spanY(px, ry0, ry1)
			for py := lo; py <= hi; py++ {
				if w0, w1, w2, in := t.inside(cx, float64(py)+0.5); in {
					t.shade(px, py, w0, w1, w2, tw, th, &frag)
					emit(&frag)
				}
			}
		}
	}

	if !trav.Tiled() {
		scanRect(x0, y0, x1, y1)
		return
	}

	// Static screen tiling: visit the tiles overlapping the bounding box
	// in traversal order, scanning the intersection of each tile with the
	// box.
	tx0, tx1 := x0/trav.TileW, x1/trav.TileW
	ty0, ty1 := y0/trav.TileH, y1/trav.TileH
	scanTile := func(tx, ty int) {
		rx0 := maxInt(x0, tx*trav.TileW)
		rx1 := minInt(x1, (tx+1)*trav.TileW-1)
		ry0 := maxInt(y0, ty*trav.TileH)
		ry1 := minInt(y1, (ty+1)*trav.TileH-1)
		scanRect(rx0, ry0, rx1, ry1)
	}
	if trav.Order == RowMajor {
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				scanTile(tx, ty)
			}
		}
	} else {
		for tx := tx0; tx <= tx1; tx++ {
			for ty := ty0; ty <= ty1; ty++ {
				scanTile(tx, ty)
			}
		}
	}
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
