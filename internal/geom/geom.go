// Package geom defines the geometric primitives consumed by the graphics
// pipeline — vertices, triangles and meshes — plus the procedural mesh
// generators (grids, lathes, terrain) used to synthesize the benchmark
// scenes.
package geom

import (
	"texcache/internal/vecmath"
)

// Vertex is one triangle corner with the attributes the pipeline
// interpolates: object-space position, unit normal for lighting,
// normalized texture coordinates and a base color.
type Vertex struct {
	Pos    vecmath.Vec3
	Normal vecmath.Vec3
	UV     vecmath.Vec2
	Color  vecmath.Vec3
}

// Triangle is the rendering primitive. TexID indexes the scene's texture
// table; a negative TexID renders untextured.
type Triangle struct {
	V     [3]Vertex
	TexID int
}

// Mesh is an ordered triangle list. Order matters: the paper's simulator
// rasterizes triangles "in the same order that they are specified in the
// input", and the texture runlength statistics depend on it.
type Mesh struct {
	Tris []Triangle
}

// Add appends a triangle built from three vertices and a texture ID.
func (m *Mesh) Add(a, b, c Vertex, texID int) {
	m.Tris = append(m.Tris, Triangle{V: [3]Vertex{a, b, c}, TexID: texID})
}

// AddQuad appends the two triangles of the quad (a, b, c, d), given in
// fan order around the perimeter.
func (m *Mesh) AddQuad(a, b, c, d Vertex, texID int) {
	m.Add(a, b, c, texID)
	m.Add(a, c, d, texID)
}

// Append concatenates other's triangles onto m, preserving order.
func (m *Mesh) Append(other *Mesh) {
	m.Tris = append(m.Tris, other.Tris...)
}

// Len returns the triangle count.
func (m *Mesh) Len() int { return len(m.Tris) }

// Transform applies the matrix to all vertex positions and its rotational
// part to normals, returning a new mesh. The transform must be rigid or
// uniformly scaling for normals to remain correct, which is all the scene
// generators need.
func (m *Mesh) Transform(mat vecmath.Mat4) *Mesh {
	out := &Mesh{Tris: make([]Triangle, len(m.Tris))}
	for i, tr := range m.Tris {
		nt := tr
		for j := range nt.V {
			nt.V[j].Pos = mat.TransformPoint(tr.V[j].Pos)
			nt.V[j].Normal = mat.TransformDir(tr.V[j].Normal).Normalize()
		}
		out.Tris[i] = nt
	}
	return out
}

// UVScale multiplies all texture coordinates, which controls texture
// repetition across a surface (Section 3.1.2's repeated-texture
// temporal locality).
func (m *Mesh) UVScale(su, sv float64) *Mesh {
	out := &Mesh{Tris: make([]Triangle, len(m.Tris))}
	for i, tr := range m.Tris {
		nt := tr
		for j := range nt.V {
			nt.V[j].UV = vecmath.Vec2{X: tr.V[j].UV.X * su, Y: tr.V[j].UV.Y * sv}
		}
		out.Tris[i] = nt
	}
	return out
}
