package geom

import (
	"math"
	"testing"

	"texcache/internal/vecmath"
)

func TestMeshAddQuad(t *testing.T) {
	m := Quad(2, 2, 7)
	if m.Len() != 2 {
		t.Fatalf("quad has %d triangles", m.Len())
	}
	for _, tr := range m.Tris {
		if tr.TexID != 7 {
			t.Errorf("TexID = %d", tr.TexID)
		}
	}
}

func TestQuadSpansAndUVs(t *testing.T) {
	m := Quad(4, 2, 0)
	minX, maxX := math.Inf(1), math.Inf(-1)
	minU, maxU := math.Inf(1), math.Inf(-1)
	for _, tr := range m.Tris {
		for _, v := range tr.V {
			minX = math.Min(minX, v.Pos.X)
			maxX = math.Max(maxX, v.Pos.X)
			minU = math.Min(minU, v.UV.X)
			maxU = math.Max(maxU, v.UV.X)
			if v.Normal != (vecmath.Vec3{Z: 1}) {
				t.Errorf("normal = %v", v.Normal)
			}
		}
	}
	if minX != -2 || maxX != 2 {
		t.Errorf("x span [%v, %v]", minX, maxX)
	}
	if minU != 0 || maxU != 1 {
		t.Errorf("u span [%v, %v]", minU, maxU)
	}
}

func TestMeshAppendPreservesOrder(t *testing.T) {
	a := Quad(1, 1, 0)
	b := Quad(1, 1, 1)
	m := &Mesh{}
	m.Append(a)
	m.Append(b)
	if m.Len() != 4 {
		t.Fatalf("len = %d", m.Len())
	}
	if m.Tris[0].TexID != 0 || m.Tris[3].TexID != 1 {
		t.Error("append broke ordering")
	}
}

func TestMeshTransform(t *testing.T) {
	m := Quad(2, 2, 0).Transform(vecmath.Translate(vecmath.Vec3{X: 10}))
	for _, tr := range m.Tris {
		for _, v := range tr.V {
			if v.Pos.X < 9 || v.Pos.X > 11 {
				t.Errorf("translated x = %v", v.Pos.X)
			}
			// Normals unaffected by translation.
			if math.Abs(v.Normal.Len()-1) > 1e-12 {
				t.Errorf("normal not unit: %v", v.Normal)
			}
		}
	}
	// Rotation rotates normals.
	r := Quad(2, 2, 0).Transform(vecmath.RotateY(math.Pi / 2))
	n := r.Tris[0].V[0].Normal
	if math.Abs(n.X-1) > 1e-9 {
		t.Errorf("rotated normal = %v, want +X", n)
	}
}

func TestMeshUVScale(t *testing.T) {
	m := Quad(1, 1, 0).UVScale(4, 2)
	maxU, maxV := 0.0, 0.0
	for _, tr := range m.Tris {
		for _, v := range tr.V {
			maxU = math.Max(maxU, v.UV.X)
			maxV = math.Max(maxV, v.UV.Y)
		}
	}
	if maxU != 4 || maxV != 2 {
		t.Errorf("uv scale -> (%v, %v)", maxU, maxV)
	}
}

func TestGridTriangleCountAndHeights(t *testing.T) {
	h := func(u, v float64) float64 { return 10 * u }
	m := Grid(4, 3, 100, 50, h, 0)
	if m.Len() != 4*3*2 {
		t.Fatalf("grid has %d triangles, want 24", m.Len())
	}
	for _, tr := range m.Tris {
		for _, v := range tr.V {
			wantY := 10 * v.Pos.X / 100
			if math.Abs(v.Pos.Y-wantY) > 1e-9 {
				t.Errorf("height at x=%v is %v, want %v", v.Pos.X, v.Pos.Y, wantY)
			}
			if v.Pos.X < 0 || v.Pos.X > 100 || v.Pos.Z < 0 || v.Pos.Z > 50 {
				t.Errorf("grid point out of bounds: %v", v.Pos)
			}
			if math.Abs(v.Normal.Len()-1) > 1e-9 {
				t.Errorf("normal not unit: %v", v.Normal)
			}
		}
	}
}

func TestLatheGeometry(t *testing.T) {
	profile := func(tt float64) (float64, float64) { return 1, tt } // cylinder
	m := Lathe(profile, 4, 8, 2, 3)
	if m.Len() != 4*8*2 {
		t.Fatalf("lathe has %d triangles", m.Len())
	}
	for _, tr := range m.Tris {
		if tr.TexID != 3 {
			t.Fatalf("TexID = %d", tr.TexID)
		}
		for _, v := range tr.V {
			r := math.Hypot(v.Pos.X, v.Pos.Z)
			if math.Abs(r-1) > 1e-9 {
				t.Errorf("cylinder radius = %v", r)
			}
			if v.Pos.Y < 0 || v.Pos.Y > 1 {
				t.Errorf("cylinder y = %v", v.Pos.Y)
			}
			// Cylinder normals point outward radially.
			dot := v.Normal.Dot(vecmath.Vec3{X: v.Pos.X, Z: v.Pos.Z})
			if dot < 0.9 {
				t.Errorf("normal %v not radial at %v", v.Normal, v.Pos)
			}
		}
	}
	// U repeats uRepeat times.
	maxU := 0.0
	for _, tr := range m.Tris {
		for _, v := range tr.V {
			maxU = math.Max(maxU, v.UV.X)
		}
	}
	if maxU != 2 {
		t.Errorf("max u = %v, want 2", maxU)
	}
}
