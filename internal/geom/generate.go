package geom

import (
	"math"

	"texcache/internal/vecmath"
)

// Quad returns a single-quad mesh in the XY plane, centered at the origin,
// spanning [-w/2, w/2] x [-h/2, h/2], facing +Z, with UVs covering [0,1].
func Quad(w, h float64, texID int) *Mesh {
	hw, hh := w/2, h/2
	n := vecmath.Vec3{Z: 1}
	white := vecmath.Vec3{X: 1, Y: 1, Z: 1}
	v := func(x, y, u, vv float64) Vertex {
		return Vertex{
			Pos:    vecmath.Vec3{X: x, Y: y},
			Normal: n,
			UV:     vecmath.Vec2{X: u, Y: vv},
			Color:  white,
		}
	}
	m := &Mesh{}
	m.AddQuad(v(-hw, -hh, 0, 1), v(hw, -hh, 1, 1), v(hw, hh, 1, 0), v(-hw, hh, 0, 0), texID)
	return m
}

// Grid returns a (nx x ny)-cell tessellated rectangle in the XZ plane
// spanning [0,w] x [0,d], with heights from the height function (y up).
// UVs cover [0,1] across the whole grid. Used for the Flight terrain.
func Grid(nx, ny int, w, d float64, height func(u, v float64) float64, texID int) *Mesh {
	white := vecmath.Vec3{X: 1, Y: 1, Z: 1}
	vert := func(i, j int) Vertex {
		u := float64(i) / float64(nx)
		v := float64(j) / float64(ny)
		y := height(u, v)
		// Normal from central differences of the height field.
		const e = 1e-3
		dydu := (height(u+e, v) - height(u-e, v)) / (2 * e * w)
		dydv := (height(u, v+e) - height(u, v-e)) / (2 * e * d)
		n := vecmath.Vec3{X: -dydu, Y: 1, Z: -dydv}.Normalize()
		return Vertex{
			Pos:    vecmath.Vec3{X: u * w, Y: y, Z: v * d},
			Normal: n,
			UV:     vecmath.Vec2{X: u, Y: v},
			Color:  white,
		}
	}
	m := &Mesh{}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			a, b := vert(i, j), vert(i+1, j)
			c, e := vert(i+1, j+1), vert(i, j+1)
			m.AddQuad(a, b, c, e, texID)
		}
	}
	return m
}

// Lathe returns a surface of revolution about the Y axis: profile gives
// (radius, y) for parameter t in [0,1] from bottom to top, swept through
// segs angular segments with rings vertical subdivisions. U wraps uRepeat
// times around the circumference; V runs bottom to top. Used for the
// Goblet scene's curved, small-triangle geometry.
func Lathe(profile func(t float64) (r, y float64), rings, segs int, uRepeat float64, texID int) *Mesh {
	white := vecmath.Vec3{X: 1, Y: 1, Z: 1}
	vert := func(ring, seg int) Vertex {
		t := float64(ring) / float64(rings)
		r, y := profile(t)
		ang := 2 * math.Pi * float64(seg) / float64(segs)
		sin, cos := math.Sin(ang), math.Cos(ang)
		// Approximate normal from the profile slope.
		const e = 1e-3
		r2, y2 := profile(math.Min(1, t+e))
		dr, dy := r2-r, y2-y
		// Tangent along profile is (dr, dy); outward normal is (dy, -dr)
		// rotated around the axis.
		nr, ny := dy, -dr
		l := math.Hypot(nr, ny)
		if l == 0 {
			nr, ny = 1, 0
			l = 1
		}
		n := vecmath.Vec3{X: cos * nr / l, Y: ny / l, Z: sin * nr / l}
		return Vertex{
			Pos:    vecmath.Vec3{X: r * cos, Y: y, Z: r * sin},
			Normal: n,
			UV:     vecmath.Vec2{X: uRepeat * float64(seg) / float64(segs), Y: 1 - t},
			Color:  white,
		}
	}
	m := &Mesh{}
	for ring := 0; ring < rings; ring++ {
		for seg := 0; seg < segs; seg++ {
			a := vert(ring, seg)
			b := vert(ring, seg+1)
			c := vert(ring+1, seg+1)
			d := vert(ring+1, seg)
			m.AddQuad(a, b, c, d, texID)
		}
	}
	return m
}
