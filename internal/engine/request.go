// Request-centric entry point: RunRequest executes one api.ExperimentRequest,
// the single description of a unit of work every binary and the library
// facade construct. Experiment-kind requests route through the batch
// scheduler (Run); sweep-kind requests render their (scene, scale,
// layout, traversal) stream through the same trace provider — so
// identical sweeps coalesce onto one render — and replay the requested
// cache configurations against it.
package engine

import (
	"context"
	"time"

	"texcache/internal/api"
	"texcache/internal/cache"
	"texcache/internal/exp"
	"texcache/internal/obs"
	"texcache/internal/report"
)

// SweepID is the Result.ID (and report table id) of sweep-kind requests.
const SweepID = "sweep"

// RunRequest executes req, normalized and validated, and streams results
// exactly as Run does. The request must already have passed
// api.Validate; RunRequest re-validates cheaply and fails fast with the
// typed *api.Error otherwise.
func (e *Engine) RunRequest(ctx context.Context, req api.ExperimentRequest) (<-chan Result, error) {
	req = req.Normalized()
	if err := api.Validate(req); err != nil {
		return nil, err
	}
	if req.Kind() == api.KindSweep {
		return e.runSweep(ctx, req)
	}
	return e.Run(ctx, req.Experiments, req.ExpConfig())
}

// sweepColumns lays out the sweep result table: one row per requested
// cache configuration with its classified statistics.
func sweepColumns() []report.Column {
	return []report.Column{
		{Name: "Configuration", Head: "%-36s", Cell: "%-36s"},
		{Name: "Miss rate", Head: "%10s", Cell: "%9.3f%%"},
		{Name: "Accesses", Head: "%12s", Cell: "%12d"},
		{Name: "Misses", Head: "%12s", Cell: "%12d"},
		{Name: "Cold", Head: "%10s", Cell: "%10d"},
		{Name: "Capacity", Head: "%10s", Cell: "%10d"},
		{Name: "Conflict", Head: "%10s", Cell: "%10d"},
	}
}

// runSweep renders the request's texel stream through the engine's trace
// provider and replays the configuration set, emitting one result whose
// recording is a single classified-statistics table. The provider's
// single-flight keying is what coalesces identical concurrent sweeps:
// any number of requests for the same (scene, scale, layout, traversal)
// cost one render.
func (e *Engine) runSweep(ctx context.Context, req api.ExperimentRequest) (<-chan Result, error) {
	cfg := req.ExpConfig()
	if e.opts.sweepSet {
		cfg.Sweep = e.opts.Sweep
	}
	prov, err := e.traces()
	if err != nil {
		return nil, err
	}
	out := make(chan Result, 1)
	go func() {
		defer close(out)
		r := Result{Index: 0, ID: SweepID, Title: "custom cache sweep: " + req.Scene}
		start := time.Now()
		rec := &report.Recording{}
		r.Err = sweepInto(ctx, req, cfg, prov, rec)
		r.Elapsed = time.Since(start)
		r.Report = rec
		r.Output = rec.Text()
		obs.Default().Sub("engine").Timer("sweep_request").Observe(r.Elapsed)
		out <- r
	}()
	return out, nil
}

// sweepInto does the sweep work: one trace, one (grouped or
// per-configuration) replay pass, one table.
func sweepInto(ctx context.Context, req api.ExperimentRequest, cfg exp.Config, prov exp.TraceProvider, rep report.Reporter) error {
	key := exp.TraceKey{
		Scene:     req.Scene,
		Layout:    req.LayoutSpec(),
		Traversal: req.RasterTraversal(),
	}
	str, err := prov.SceneTrace(ctx, key, cfg.EffectiveScale())
	if err != nil {
		return err
	}
	cfgs := req.CacheConfigs()
	var stats []cache.Stats
	if cfg.Sweep == exp.SweepPerConfig {
		stats, err = cache.SimulateConfigsStream(ctx, str, cfgs)
	} else {
		stats, err = cache.SimulateConfigsGroupedStream(ctx, str, cfgs)
	}
	if err != nil {
		return err
	}
	rep.Note("scene %s at scale %d, %s layout, %d addresses", req.Scene,
		cfg.EffectiveScale(), key.Layout.Kind, str.Len())
	rep.BeginTable(SweepID, sweepColumns())
	for i, s := range stats {
		rep.Row(cfgs[i].String(), 100*s.MissRate(), s.Accesses, s.Misses,
			s.Cold, s.Capacity, s.Conflict)
	}
	return nil
}
