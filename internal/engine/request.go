// Request-centric entry point: RunRequest executes one api.ExperimentRequest,
// the single description of a unit of work every binary and the library
// facade construct. Experiment-kind requests route through the batch
// scheduler (Run); sweep-kind requests render their (scene, scale,
// layout, traversal) stream through the same trace provider — so
// identical sweeps coalesce onto one render — and replay the requested
// cache configurations against it.
package engine

import (
	"context"
	"time"

	"texcache/internal/api"
	"texcache/internal/arch"
	"texcache/internal/cache"
	"texcache/internal/exp"
	"texcache/internal/obs"
	"texcache/internal/report"
)

// SweepID is the Result.ID (and report table id) of sweep-kind requests.
const SweepID = "sweep"

// ArchID is the Result.ID (and report table id) of architecture-kind
// requests.
const ArchID = "architecture"

// RunRequest executes req, normalized and validated, and streams results
// exactly as Run does. The request must already have passed
// api.Validate; RunRequest re-validates cheaply and fails fast with the
// typed *api.Error otherwise.
func (e *Engine) RunRequest(ctx context.Context, req api.ExperimentRequest) (<-chan Result, error) {
	req = req.Normalized()
	if err := api.Validate(req); err != nil {
		return nil, err
	}
	switch req.Kind() {
	case api.KindGrid:
		return e.runGrid(ctx, req)
	case api.KindArchitecture:
		return e.runArchitecture(ctx, req)
	case api.KindSweep:
		return e.runSweep(ctx, req)
	}
	return e.Run(ctx, req.Experiments, req.ExpConfig())
}

// sweepColumns lays out the sweep result table: one row per requested
// cache configuration with its classified statistics.
func sweepColumns() []report.Column {
	return []report.Column{
		{Name: "Configuration", Head: "%-36s", Cell: "%-36s"},
		{Name: "Miss rate", Head: "%10s", Cell: "%9.3f%%"},
		{Name: "Accesses", Head: "%12s", Cell: "%12d"},
		{Name: "Misses", Head: "%12s", Cell: "%12d"},
		{Name: "Cold", Head: "%10s", Cell: "%10d"},
		{Name: "Capacity", Head: "%10s", Cell: "%10d"},
		{Name: "Conflict", Head: "%10s", Cell: "%10d"},
	}
}

// runSweep renders the request's texel stream through the engine's trace
// provider and replays the configuration set, emitting one result whose
// recording is a single classified-statistics table. The provider's
// single-flight keying is what coalesces identical concurrent sweeps:
// any number of requests for the same (scene, scale, layout, traversal)
// cost one render.
func (e *Engine) runSweep(ctx context.Context, req api.ExperimentRequest) (<-chan Result, error) {
	cfg := req.ExpConfig()
	if e.opts.sweepSet {
		cfg.Sweep = e.opts.Sweep
	}
	prov, err := e.traces()
	if err != nil {
		return nil, err
	}
	out := make(chan Result, 1)
	go func() {
		defer close(out)
		r := Result{Index: 0, ID: SweepID, Title: "custom cache sweep: " + req.Scene}
		start := time.Now()
		rec := &report.Recording{}
		r.Err = sweepInto(ctx, req, cfg, prov, rec)
		r.Elapsed = time.Since(start)
		r.Report = rec
		r.Output = rec.Text()
		obs.Default().Sub("engine").Timer("sweep_request").Observe(r.Elapsed)
		out <- r
	}()
	return out, nil
}

// archColumns lays out the architecture result table: one row per
// (cache configuration, pipeline) machine with its cycle accounting and
// queue high-water marks.
func archColumns() []report.Column {
	return []report.Column{
		{Name: "Configuration", Head: "%-36s", Cell: "%-36s"},
		{Name: "Pipeline", Head: " %-9s", Cell: " %-9s"},
		{Name: "Cycles", Head: "%12s", Cell: "%12d"},
		{Name: "Stall", Head: "%12s", Cell: "%12d"},
		{Name: "Util", Head: "%8s", Cell: "%7.3f%%"},
		{Name: "Mfrag/s", Head: "%9s", Cell: "%9.1f"},
		{Name: "InFlight", Head: "%9s", Cell: "%9d"},
		{Name: "ROB", Head: "%5s", Cell: "%5d"},
	}
}

// runArchitecture renders the request's texel stream through the
// engine's trace provider — coalescing with any concurrent request for
// the same (scene, scale, layout, traversal) key — and runs the
// cycle-level pipeline comparison, emitting one result whose recording
// is a single timing table.
func (e *Engine) runArchitecture(ctx context.Context, req api.ExperimentRequest) (<-chan Result, error) {
	cfg := req.ExpConfig()
	prov, err := e.traces()
	if err != nil {
		return nil, err
	}
	out := make(chan Result, 1)
	go func() {
		defer close(out)
		r := Result{Index: 0, ID: ArchID, Title: "texture-unit architecture comparison: " + req.Scene}
		start := time.Now()
		rec := &report.Recording{}
		r.Err = archInto(ctx, req, cfg, prov, rec)
		r.Elapsed = time.Since(start)
		r.Report = rec
		r.Output = rec.Text()
		obs.Default().Sub("engine").Timer("arch_request").Observe(r.Elapsed)
		out <- r
	}()
	return out, nil
}

// archInto does the architecture work: one trace, one miss timeline per
// cache design point, one cycle simulation per machine, one table. The
// fragment rate is quoted at the paper's 100MHz clock.
func archInto(ctx context.Context, req api.ExperimentRequest, cfg exp.Config, prov exp.TraceProvider, rep report.Reporter) error {
	key := exp.TraceKey{
		Scene:     req.Scene,
		Layout:    req.LayoutSpec(),
		Traversal: req.RasterTraversal(),
	}
	str, err := prov.SceneTrace(ctx, key, cfg.EffectiveScale())
	if err != nil {
		return err
	}
	machines := req.ArchConfigs()
	rep.Note("scene %s at scale %d, %s layout, %d addresses", req.Scene,
		cfg.EffectiveScale(), key.Layout.Kind, str.Len())
	rep.BeginTable(ArchID, archColumns())
	timelines := map[cache.Config]*arch.Timeline{}
	for _, m := range machines {
		if err := ctx.Err(); err != nil {
			return err
		}
		tl, ok := timelines[m.Cache]
		if !ok {
			if tl, err = arch.NewTimeline(m.Cache, str); err != nil {
				return err
			}
			timelines[m.Cache] = tl
		}
		res, err := tl.Simulate(m)
		if err != nil {
			return err
		}
		rep.Row(m.Cache.String(), m.Pipeline.String(), res.TotalCyc, res.StallCyc,
			100*res.Utilization(), res.FragmentsPerSecond(100e6)/1e6,
			res.MaxInFlight, res.MaxReorder)
	}
	return nil
}

// sweepInto does the sweep work: one trace, one (grouped or
// per-configuration) replay pass, one table.
func sweepInto(ctx context.Context, req api.ExperimentRequest, cfg exp.Config, prov exp.TraceProvider, rep report.Reporter) error {
	key := exp.TraceKey{
		Scene:     req.Scene,
		Layout:    req.LayoutSpec(),
		Traversal: req.RasterTraversal(),
	}
	str, err := prov.SceneTrace(ctx, key, cfg.EffectiveScale())
	if err != nil {
		return err
	}
	cfgs := req.CacheConfigs()
	var stats []cache.Stats
	if cfg.Sweep == exp.SweepPerConfig {
		stats, err = cache.SimulateConfigsStream(ctx, str, cfgs)
	} else {
		stats, err = cache.SimulateConfigsGroupedStream(ctx, str, cfgs)
	}
	if err != nil {
		return err
	}
	rep.Note("scene %s at scale %d, %s layout, %d addresses", req.Scene,
		cfg.EffectiveScale(), key.Layout.Kind, str.Len())
	rep.BeginTable(SweepID, sweepColumns())
	for i, s := range stats {
		rep.Row(cfgs[i].String(), 100*s.MissRate(), s.Accesses, s.Misses,
			s.Cold, s.Capacity, s.Conflict)
	}
	return nil
}
