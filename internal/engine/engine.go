// Package engine runs batches of registered experiments concurrently.
// Two levels of sharing make a batch cheaper than the sum of its parts:
// a keyed single-flight trace cache renders each (scene, layout,
// traversal) stream once for every experiment that needs it, and the
// cache layer's concurrent replay lets one pass over a trace feed a
// whole sweep of cache configurations. Results stream back on a channel
// as experiments finish, tagged with their position in the request so
// callers can re-serialize deterministic output.
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"texcache/internal/exp"
	"texcache/internal/obs"
	"texcache/internal/report"
	"texcache/internal/trace"
)

// Result is one finished experiment. Index is the experiment's position
// in the requested ID list, so a consumer that wants the serial order
// can reorder the stream by Index.
type Result struct {
	Index   int
	ID      string
	Title   string
	Output  string // the text rendering of everything the experiment emitted
	Err     error  // non-nil if the experiment failed or was cancelled
	Elapsed time.Duration
	// Report is the recorded structured output, replayable into any
	// report.Reporter (e.g. report.JSON for machine-readable batches).
	// Nil when the experiment was skipped before running.
	Report *report.Recording
}

// Progress describes one completed (or skipped) experiment within a
// running batch, for live progress display.
type Progress struct {
	// Completed counts experiments finished so far, including this one;
	// Total is the batch size.
	Completed, Total int
	// ID names the experiment that just finished.
	ID string
	// Elapsed is its wall time (zero when skipped before running).
	Elapsed time.Duration
	// Err is the experiment's error, nil on success.
	Err error
}

// Options configures an engine.
type Options struct {
	// Workers bounds how many experiments run at once. Zero or negative
	// means GOMAXPROCS.
	Workers int
	// Prewarm renders the traces declared by each experiment's Needs
	// hook through the worker pool before any experiment starts, so the
	// first experiments don't serialize on shared renders.
	Prewarm bool
	// RenderWorkers is the tile-parallel rasterization worker count for
	// the engine-installed trace cache. Zero or negative means
	// GOMAXPROCS; one forces serial rendering. Traces (and therefore
	// every experiment's output) are bit-identical at any setting.
	// Ignored when the caller supplies its own Config.Traces provider.
	RenderWorkers int
	// TraceDir, when non-empty, attaches a persistent on-disk trace
	// store to the engine-installed trace cache: renders are written
	// back and later batches load them instead of rendering. Results are
	// bit-identical with or without it. Ignored when the caller supplies
	// its own Config.Traces provider.
	TraceDir string
	// Progress, when non-nil, is called once per finished experiment.
	// Calls are serialized and Completed is monotonic, but they arrive in
	// completion order, not request order. The callback runs on an engine
	// goroutine and must not block on the result channel.
	Progress func(Progress)
	// Sweep, when set (sweepSet), overrides the batch Config's sweep
	// replay mode. Both modes produce bit-identical experiment output.
	Sweep    exp.SweepMode
	sweepSet bool
	// Traces, when non-nil, is the trace provider installed on every
	// batch whose Config does not bring its own — the hook through which
	// a long-running server shares one TraceCache (and its coalesced
	// renders) across many engines. RenderWorkers and TraceDir are
	// ignored when it is set.
	Traces exp.TraceProvider
	// Prune enables Pareto-dominance pruning on grid requests: design
	// points provably dominated by an already-measured point (see
	// internal/shard) are skipped instead of replayed. Lossless for the
	// reported frontier; the skipped rows are simply absent.
	Prune bool
	// FrontierFile, when non-empty and Prune is set, persists measured
	// frontier points to this append-only NDJSON file and preloads any
	// points already in it, so re-runs (and a coordinator's workers
	// sharing the path) skip points earlier measurements dominate.
	FrontierFile string
	// ResultCache, when non-nil, is the finished-stream memoization tier
	// RunRequestNDJSON consults before running anything — the hook
	// through which a long-running server serves repeated requests as
	// stored bytes. Shared caches coalesce identical concurrent requests
	// onto one simulation. ResultDir is ignored when it is set.
	ResultCache *ResultCache
	// ResultDir, when non-empty and ResultCache is nil, attaches a fresh
	// result cache with a persistent tier rooted at this directory, so
	// repeated NDJSON runs across process restarts are served from
	// <sha256(key)>.result files instead of re-simulated.
	ResultDir string
}

// Option mutates Options.
type Option func(*Options)

// WithWorkers bounds the number of concurrently running experiments.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithPrewarm toggles rendering declared traces ahead of the experiments.
func WithPrewarm(on bool) Option { return func(o *Options) { o.Prewarm = on } }

// WithRenderWorkers sets the tile-parallel rasterization worker count
// used by the engine's trace cache (0 = GOMAXPROCS, 1 = serial).
func WithRenderWorkers(n int) Option { return func(o *Options) { o.RenderWorkers = n } }

// WithProgress installs a per-experiment completion callback.
func WithProgress(fn func(Progress)) Option { return func(o *Options) { o.Progress = fn } }

// WithTraceDir attaches a persistent trace store rooted at dir to the
// engine's trace cache; empty disables the store.
func WithTraceDir(dir string) Option { return func(o *Options) { o.TraceDir = dir } }

// WithSweepMode forces every experiment in the batch to replay its
// configuration sweeps in the given mode, overriding Config.Sweep.
func WithSweepMode(m exp.SweepMode) Option {
	return func(o *Options) { o.Sweep, o.sweepSet = m, true }
}

// WithPruning toggles Pareto-dominance pruning for grid requests.
func WithPruning(on bool) Option { return func(o *Options) { o.Prune = on } }

// WithFrontierFile persists (and preloads) measured frontier points in
// the given append-only NDJSON file during pruned grid runs; empty
// disables persistence.
func WithFrontierFile(path string) Option { return func(o *Options) { o.FrontierFile = path } }

// WithResultCache installs a shared result cache on the engine: every
// cacheable RunRequestNDJSON call checks it before simulating, so
// repeated requests are served as stored bytes and identical concurrent
// requests coalesce onto one run.
func WithResultCache(rc *ResultCache) Option {
	return func(o *Options) { o.ResultCache = rc }
}

// WithResultDir attaches a persistent result store rooted at dir to a
// fresh engine-owned result cache; empty disables result caching.
// Ignored when WithResultCache installs a shared cache.
func WithResultDir(dir string) Option { return func(o *Options) { o.ResultDir = dir } }

// WithTraces installs a shared trace provider on the engine: every batch
// run without its own Config.Traces uses it instead of a fresh
// TraceCache, so renders coalesce across batches (and, in texserve,
// across client requests).
func WithTraces(p exp.TraceProvider) Option {
	return func(o *Options) { o.Traces = p }
}

// Engine schedules experiment batches.
type Engine struct {
	opts Options
}

// New returns an engine with the given options applied over defaults
// (Workers = GOMAXPROCS, Prewarm on).
func New(opts ...Option) *Engine {
	o := Options{Workers: runtime.GOMAXPROCS(0), Prewarm: true}
	for _, f := range opts {
		f(&o)
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{opts: o}
}

// Run executes the experiments named by ids (all registered experiments
// when ids is empty) and streams one Result per experiment as each
// finishes. The returned channel is closed after the last result.
//
// Unknown IDs fail fast with *exp.UnknownExperimentError before any work
// starts. When cfg.Traces is nil the engine installs a shared TraceCache
// so the batch renders each needed (scene, layout, traversal) stream
// exactly once; a caller-supplied provider is left in place.
//
// Cancelling ctx stops the batch: queued experiments are skipped and
// running ones return their context error, reported through Result.Err.
func (e *Engine) Run(ctx context.Context, ids []string, cfg exp.Config) (<-chan Result, error) {
	exps, err := resolve(ids)
	if err != nil {
		return nil, err
	}
	if cfg.Traces == nil {
		p, err := e.traces()
		if err != nil {
			return nil, err
		}
		cfg.Traces = p
	}
	if e.opts.sweepSet {
		cfg.Sweep = e.opts.Sweep
	}

	out := make(chan Result, len(exps))
	sem := make(chan struct{}, e.opts.Workers)
	var wg sync.WaitGroup

	// Engine-level metrics: queue depth (experiments waiting for a
	// worker slot), busy workers, and a completion counter. All handles
	// are nil when no registry is attached, making every update a no-op.
	reg := obs.Default().Sub("engine")
	queued := reg.Gauge("queue_depth")
	busy := reg.Gauge("busy_workers")
	finished := reg.Counter("experiments")

	// progress serializes the completion callback and keeps Completed
	// monotonic across concurrently finishing experiments.
	var progressMu sync.Mutex
	completed := 0
	progress := func(r Result) {
		finished.Inc()
		if e.opts.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		completed++
		e.opts.Progress(Progress{
			Completed: completed, Total: len(exps),
			ID: r.ID, Elapsed: r.Elapsed, Err: r.Err,
		})
	}

	go func() {
		defer close(out)
		if e.opts.Prewarm {
			e.prewarm(ctx, exps, cfg, sem)
		}
		for i, ex := range exps {
			wg.Add(1)
			go func(i int, ex exp.Experiment) {
				defer wg.Done()
				queued.Add(1)
				select {
				case sem <- struct{}{}:
					queued.Add(-1)
					busy.Add(1)
					defer func() {
						busy.Add(-1)
						<-sem
					}()
				case <-ctx.Done():
					queued.Add(-1)
					r := Result{Index: i, ID: ex.ID, Title: ex.Title, Err: ctx.Err()}
					progress(r)
					out <- r
					return
				}
				r := runOne(ctx, i, ex, cfg)
				progress(r)
				out <- r
			}(i, ex)
		}
		wg.Wait()
		obs.Default().Emit("batch.done", "", int64(len(exps)))
	}()
	return out, nil
}

// traces resolves the trace provider a batch uses when its Config does
// not bring one: the engine's shared provider when installed, otherwise
// a fresh single-flight TraceCache (with the persistent tier attached
// when TraceDir is set).
func (e *Engine) traces() (exp.TraceProvider, error) {
	if e.opts.Traces != nil {
		return e.opts.Traces, nil
	}
	tc := NewTraceCache()
	tc.RenderWorkers = e.opts.RenderWorkers
	if e.opts.TraceDir != "" {
		store, err := trace.Open(e.opts.TraceDir)
		if err != nil {
			return nil, err
		}
		tc.Store = store
	}
	return tc, nil
}

// results resolves the result cache RunRequestNDJSON uses: the shared
// cache when installed, else a fresh one with the persistent tier when
// ResultDir is set, else nil (no result caching).
func (e *Engine) results() (*ResultCache, error) {
	if e.opts.ResultCache != nil {
		return e.opts.ResultCache, nil
	}
	if e.opts.ResultDir == "" {
		return nil, nil
	}
	rc := NewResultCache()
	if err := rc.AttachDir(e.opts.ResultDir); err != nil {
		return nil, err
	}
	return rc, nil
}

// resolve maps IDs to experiments, defaulting to the whole registry.
func resolve(ids []string) ([]exp.Experiment, error) {
	if len(ids) == 0 {
		return exp.All(), nil
	}
	exps := make([]exp.Experiment, len(ids))
	for i, id := range ids {
		ex, ok := exp.Lookup(id)
		if !ok {
			return nil, &exp.UnknownExperimentError{ID: id}
		}
		exps[i] = ex
	}
	return exps, nil
}

// prewarm renders the batch's declared trace needs, deduplicated, through
// the same worker pool the experiments will use. Errors are ignored here:
// a failing render will fail again, visibly, inside the experiment that
// needs it.
func (e *Engine) prewarm(ctx context.Context, exps []exp.Experiment, cfg exp.Config, sem chan struct{}) {
	seen := map[exp.TraceKey]bool{}
	var keys []exp.TraceKey
	for _, ex := range exps {
		if ex.Needs == nil {
			continue
		}
		for _, k := range ex.Needs(cfg) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k exp.TraceKey) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			_, _ = cfg.Traces.SceneTrace(ctx, k, cfg.EffectiveScale())
		}(k)
	}
	wg.Wait()
}

// runOne executes a single experiment, recording its structured output
// and per-experiment wall time.
func runOne(ctx context.Context, i int, ex exp.Experiment, cfg exp.Config) Result {
	r := Result{Index: i, ID: ex.ID, Title: ex.Title}
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	reg := obs.Default()
	reg.Emit("experiment.start", ex.ID, 0)
	rec := &report.Recording{}
	start := time.Now()
	r.Err = ex.Run(ctx, cfg, rec)
	r.Elapsed = time.Since(start)
	r.Report = rec
	r.Output = rec.Text()
	reg.Sub("engine").Timer("experiment").Observe(r.Elapsed)
	reg.Emit("experiment.done", ex.ID, int64(r.Elapsed))
	return r
}
