// Package engine runs batches of registered experiments concurrently.
// Two levels of sharing make a batch cheaper than the sum of its parts:
// a keyed single-flight trace cache renders each (scene, layout,
// traversal) stream once for every experiment that needs it, and the
// cache layer's concurrent replay lets one pass over a trace feed a
// whole sweep of cache configurations. Results stream back on a channel
// as experiments finish, tagged with their position in the request so
// callers can re-serialize deterministic output.
package engine

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"time"

	"texcache/internal/exp"
)

// Result is one finished experiment. Index is the experiment's position
// in the requested ID list, so a consumer that wants the serial order
// can reorder the stream by Index.
type Result struct {
	Index   int
	ID      string
	Title   string
	Output  string // everything the experiment wrote
	Err     error  // non-nil if the experiment failed or was cancelled
	Elapsed time.Duration
}

// Options configures an engine.
type Options struct {
	// Workers bounds how many experiments run at once. Zero or negative
	// means GOMAXPROCS.
	Workers int
	// Prewarm renders the traces declared by each experiment's Needs
	// hook through the worker pool before any experiment starts, so the
	// first experiments don't serialize on shared renders.
	Prewarm bool
}

// Option mutates Options.
type Option func(*Options)

// WithWorkers bounds the number of concurrently running experiments.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithPrewarm toggles rendering declared traces ahead of the experiments.
func WithPrewarm(on bool) Option { return func(o *Options) { o.Prewarm = on } }

// Engine schedules experiment batches.
type Engine struct {
	opts Options
}

// New returns an engine with the given options applied over defaults
// (Workers = GOMAXPROCS, Prewarm on).
func New(opts ...Option) *Engine {
	o := Options{Workers: runtime.GOMAXPROCS(0), Prewarm: true}
	for _, f := range opts {
		f(&o)
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{opts: o}
}

// Run executes the experiments named by ids (all registered experiments
// when ids is empty) and streams one Result per experiment as each
// finishes. The returned channel is closed after the last result.
//
// Unknown IDs fail fast with *exp.UnknownExperimentError before any work
// starts. When cfg.Traces is nil the engine installs a shared TraceCache
// so the batch renders each needed (scene, layout, traversal) stream
// exactly once; a caller-supplied provider is left in place.
//
// Cancelling ctx stops the batch: queued experiments are skipped and
// running ones return their context error, reported through Result.Err.
func (e *Engine) Run(ctx context.Context, ids []string, cfg exp.Config) (<-chan Result, error) {
	exps, err := resolve(ids)
	if err != nil {
		return nil, err
	}
	if cfg.Traces == nil {
		cfg.Traces = NewTraceCache()
	}

	out := make(chan Result, len(exps))
	sem := make(chan struct{}, e.opts.Workers)
	var wg sync.WaitGroup

	go func() {
		defer close(out)
		if e.opts.Prewarm {
			e.prewarm(ctx, exps, cfg, sem)
		}
		for i, ex := range exps {
			wg.Add(1)
			go func(i int, ex exp.Experiment) {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					out <- Result{Index: i, ID: ex.ID, Title: ex.Title, Err: ctx.Err()}
					return
				}
				out <- runOne(ctx, i, ex, cfg)
			}(i, ex)
		}
		wg.Wait()
	}()
	return out, nil
}

// resolve maps IDs to experiments, defaulting to the whole registry.
func resolve(ids []string) ([]exp.Experiment, error) {
	if len(ids) == 0 {
		return exp.All(), nil
	}
	exps := make([]exp.Experiment, len(ids))
	for i, id := range ids {
		ex, ok := exp.Lookup(id)
		if !ok {
			return nil, &exp.UnknownExperimentError{ID: id}
		}
		exps[i] = ex
	}
	return exps, nil
}

// prewarm renders the batch's declared trace needs, deduplicated, through
// the same worker pool the experiments will use. Errors are ignored here:
// a failing render will fail again, visibly, inside the experiment that
// needs it.
func (e *Engine) prewarm(ctx context.Context, exps []exp.Experiment, cfg exp.Config, sem chan struct{}) {
	seen := map[exp.TraceKey]bool{}
	var keys []exp.TraceKey
	for _, ex := range exps {
		if ex.Needs == nil {
			continue
		}
		for _, k := range ex.Needs(cfg) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k exp.TraceKey) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			_, _ = cfg.Traces.SceneTrace(ctx, k, cfg.EffectiveScale())
		}(k)
	}
	wg.Wait()
}

// runOne executes a single experiment, capturing its output.
func runOne(ctx context.Context, i int, ex exp.Experiment, cfg exp.Config) Result {
	r := Result{Index: i, ID: ex.ID, Title: ex.Title}
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	var buf bytes.Buffer
	start := time.Now()
	r.Err = ex.Run(ctx, cfg, &buf)
	r.Elapsed = time.Since(start)
	r.Output = buf.String()
	return r
}
