package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"texcache/internal/exp"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/texture"
)

var testCfg = exp.Config{Scale: 8, Scenes: []string{"goblet"}}

func collect(t *testing.T, ch <-chan Result) map[string]Result {
	t.Helper()
	out := map[string]Result{}
	for r := range ch {
		out[r.ID] = r
	}
	return out
}

func TestRunMatchesSerial(t *testing.T) {
	ids := []string{"fig5.2", "fig5.7", "replacement", "sectored"}
	want := map[string]string{}
	for _, id := range ids {
		ex, ok := exp.Lookup(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		var sb strings.Builder
		if err := ex.Run(context.Background(), testCfg, report.NewText(&sb)); err != nil {
			t.Fatalf("serial %s: %v", id, err)
		}
		want[id] = sb.String()
	}

	ch, err := New(WithWorkers(4)).Run(context.Background(), ids, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	if len(got) != len(ids) {
		t.Fatalf("engine returned %d results, want %d", len(got), len(ids))
	}
	for _, id := range ids {
		r := got[id]
		if r.Err != nil {
			t.Errorf("%s: %v", id, r.Err)
		}
		if r.Output != want[id] {
			t.Errorf("%s: engine output differs from serial run\nengine:\n%s\nserial:\n%s",
				id, r.Output, want[id])
		}
	}
}

func TestRunIndexesFollowRequestOrder(t *testing.T) {
	ids := []string{"table2.1", "table4.1"}
	ch, err := New().Run(context.Background(), ids, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range ch {
		if ids[r.Index] != r.ID {
			t.Errorf("result %s carries index %d (= %s)", r.ID, r.Index, ids[r.Index])
		}
		if r.Title == "" {
			t.Errorf("%s: missing title", r.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	_, err := New().Run(context.Background(), []string{"fig5.2", "bogus"}, testCfg)
	var ue *exp.UnknownExperimentError
	if !errors.As(err, &ue) || ue.ID != "bogus" {
		t.Fatalf("Run(bogus) = %v, want *exp.UnknownExperimentError{bogus}", err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch, err := New().Run(ctx, []string{"fig5.2", "fig5.7"}, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[string]Result, 1)
	go func() { done <- collect(t, ch) }()
	select {
	case got := <-done:
		for id, r := range got {
			if r.Err == nil {
				t.Errorf("%s completed under a cancelled context", id)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not drain promptly")
	}
}

func TestTraceCacheSingleFlight(t *testing.T) {
	tc := NewTraceCache()
	key := exp.TraceKey{
		Scene:     "goblet",
		Layout:    texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		Traversal: raster.Traversal{Order: raster.RowMajor},
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tc.SceneTrace(context.Background(), key, 8)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	if n := tc.Renders(); n != 1 {
		t.Errorf("%d concurrent requests caused %d renders, want 1", callers, n)
	}
	// A different scale is a different stream.
	if _, err := tc.SceneTrace(context.Background(), key, 16); err != nil {
		t.Fatal(err)
	}
	if n := tc.Renders(); n != 2 {
		t.Errorf("scale change reused a render: renders = %d, want 2", n)
	}
}

func TestTraceCacheErrorNotCached(t *testing.T) {
	tc := NewTraceCache()
	bad := exp.TraceKey{Scene: "no-such-scene"}
	if _, err := tc.SceneTrace(context.Background(), bad, 8); err == nil {
		t.Fatal("unknown scene rendered")
	}
	if _, err := tc.SceneTrace(context.Background(), bad, 8); err == nil {
		t.Fatal("unknown scene rendered on retry")
	}
	if n := tc.Renders(); n != 2 {
		t.Errorf("failed render was cached: renders = %d, want 2 attempts", n)
	}
}

func TestEngineSharesRendersAcrossExperiments(t *testing.T) {
	// fig5.7 and replacement both need goblet blocked-8 traces; a shared
	// cache must render strictly fewer streams than the sum of their
	// needs run privately.
	tc := NewTraceCache()
	cfg := testCfg
	cfg.Traces = tc
	ch, err := New(WithWorkers(2)).Run(context.Background(), []string{"fig5.7", "replacement"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range ch {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
	// fig5.7 needs 2 directions x 1 scene; replacement needs the same
	// default-direction stream. Without sharing that is 3 renders; with
	// sharing the default-direction render is reused.
	if n := tc.Renders(); n > 2 {
		t.Errorf("batch rendered %d streams, want <= 2 with sharing", n)
	}
}

func TestNewDefaults(t *testing.T) {
	e := New(WithWorkers(-3))
	if e.opts.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", e.opts.Workers)
	}
	e = New(WithPrewarm(false), WithWorkers(7))
	if e.opts.Prewarm || e.opts.Workers != 7 {
		t.Errorf("options not applied: %+v", e.opts)
	}
}
