package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"texcache/internal/exp"
	"texcache/internal/raster"
	"texcache/internal/report"
	"texcache/internal/texture"
	"texcache/internal/trace"
)

var testCfg = exp.Config{Scale: 8, Scenes: []string{"goblet"}}

func collect(t *testing.T, ch <-chan Result) map[string]Result {
	t.Helper()
	out := map[string]Result{}
	for r := range ch {
		out[r.ID] = r
	}
	return out
}

func TestRunMatchesSerial(t *testing.T) {
	ids := []string{"fig5.2", "fig5.7", "replacement", "sectored"}
	want := map[string]string{}
	for _, id := range ids {
		ex, ok := exp.Lookup(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		var sb strings.Builder
		if err := ex.Run(context.Background(), testCfg, report.NewText(&sb)); err != nil {
			t.Fatalf("serial %s: %v", id, err)
		}
		want[id] = sb.String()
	}

	ch, err := New(WithWorkers(4)).Run(context.Background(), ids, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	if len(got) != len(ids) {
		t.Fatalf("engine returned %d results, want %d", len(got), len(ids))
	}
	for _, id := range ids {
		r := got[id]
		if r.Err != nil {
			t.Errorf("%s: %v", id, r.Err)
		}
		if r.Output != want[id] {
			t.Errorf("%s: engine output differs from serial run\nengine:\n%s\nserial:\n%s",
				id, r.Output, want[id])
		}
	}
}

func TestRunIndexesFollowRequestOrder(t *testing.T) {
	ids := []string{"table2.1", "table4.1"}
	ch, err := New().Run(context.Background(), ids, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range ch {
		if ids[r.Index] != r.ID {
			t.Errorf("result %s carries index %d (= %s)", r.ID, r.Index, ids[r.Index])
		}
		if r.Title == "" {
			t.Errorf("%s: missing title", r.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	_, err := New().Run(context.Background(), []string{"fig5.2", "bogus"}, testCfg)
	var ue *exp.UnknownExperimentError
	if !errors.As(err, &ue) || ue.ID != "bogus" {
		t.Fatalf("Run(bogus) = %v, want *exp.UnknownExperimentError{bogus}", err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch, err := New().Run(ctx, []string{"fig5.2", "fig5.7"}, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[string]Result, 1)
	go func() { done <- collect(t, ch) }()
	select {
	case got := <-done:
		for id, r := range got {
			if r.Err == nil {
				t.Errorf("%s completed under a cancelled context", id)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not drain promptly")
	}
}

func TestTraceCacheSingleFlight(t *testing.T) {
	tc := NewTraceCache()
	key := exp.TraceKey{
		Scene:     "goblet",
		Layout:    texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		Traversal: raster.Traversal{Order: raster.RowMajor},
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tc.SceneTrace(context.Background(), key, 8)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	if n := tc.Renders(); n != 1 {
		t.Errorf("%d concurrent requests caused %d renders, want 1", callers, n)
	}
	// A different scale is a different stream.
	if _, err := tc.SceneTrace(context.Background(), key, 16); err != nil {
		t.Fatal(err)
	}
	if n := tc.Renders(); n != 2 {
		t.Errorf("scale change reused a render: renders = %d, want 2", n)
	}
}

func TestTraceCacheErrorNotCached(t *testing.T) {
	tc := NewTraceCache()
	bad := exp.TraceKey{Scene: "no-such-scene"}
	if _, err := tc.SceneTrace(context.Background(), bad, 8); err == nil {
		t.Fatal("unknown scene rendered")
	}
	if _, err := tc.SceneTrace(context.Background(), bad, 8); err == nil {
		t.Fatal("unknown scene rendered on retry")
	}
	if n := tc.Renders(); n != 2 {
		t.Errorf("failed render was cached: renders = %d, want 2 attempts", n)
	}
}

func TestTraceCachePersistentTier(t *testing.T) {
	dir := t.TempDir()
	store, err := trace.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := exp.TraceKey{
		Scene:     "goblet",
		Layout:    texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		Traversal: raster.Traversal{Order: raster.RowMajor},
	}

	cold := NewTraceCache()
	cold.Store = store
	want, err := cold.SceneTrace(context.Background(), key, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n := cold.Renders(); n != 1 {
		t.Fatalf("cold run performed %d renders, want 1", n)
	}

	// A fresh cache on the same store serves the stream without
	// rendering, bit-identical to the cold run's.
	warm := NewTraceCache()
	warm.Store = store
	got, err := warm.SceneTrace(context.Background(), key, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Renders(); n != 0 {
		t.Errorf("warm run performed %d renders, want 0", n)
	}
	if got.Len() != want.Len() {
		t.Fatalf("warm stream has %d addresses, cold %d", got.Len(), want.Len())
	}
	gc, wc := got.Cursor(), want.Cursor()
	for wb := wc.Next(); wb != nil; wb = wc.Next() {
		gb := gc.Next()
		if len(gb) != len(wb) {
			t.Fatal("warm stream block sizes diverge from cold")
		}
		for i := range wb {
			if gb[i] != wb[i] {
				t.Fatalf("warm stream diverges from cold at a block offset %d", i)
			}
		}
	}

	// A corrupted entry silently falls back to rendering.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("store entries: %v (err %v)", ents, err)
	}
	p := filepath.Join(dir, ents[0].Name())
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rere := NewTraceCache()
	rere.Store = store
	if _, err := rere.SceneTrace(context.Background(), key, 8); err != nil {
		t.Fatal(err)
	}
	if n := rere.Renders(); n != 1 {
		t.Errorf("corrupted entry caused %d renders, want 1", n)
	}
}

func TestRunWithTraceDirMatchesSerial(t *testing.T) {
	id := "fig5.2"
	ex, ok := exp.Lookup(id)
	if !ok {
		t.Fatalf("missing experiment %s", id)
	}
	var sb strings.Builder
	if err := ex.Run(context.Background(), testCfg, report.NewText(&sb)); err != nil {
		t.Fatal(err)
	}
	want := sb.String()

	// Run 0 populates the store cold; run 1 is a fresh engine warm from
	// disk. Both must match the serial reference byte for byte.
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		ch, err := New(WithTraceDir(dir)).Run(context.Background(), []string{id}, testCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range collect(t, ch) {
			if r.Err != nil {
				t.Fatalf("run %d: %v", run, r.Err)
			}
			if r.Output != want {
				t.Errorf("run %d: trace-store output differs from serial run", run)
			}
		}
	}

	// An unusable directory fails fast.
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithTraceDir(filepath.Join(f, "sub"))).Run(context.Background(), []string{id}, testCfg); err == nil {
		t.Error("Run with an unusable -trace-dir succeeded")
	}
}

func TestEngineSharesRendersAcrossExperiments(t *testing.T) {
	// fig5.7 and replacement both need goblet blocked-8 traces; a shared
	// cache must render strictly fewer streams than the sum of their
	// needs run privately.
	tc := NewTraceCache()
	cfg := testCfg
	cfg.Traces = tc
	ch, err := New(WithWorkers(2)).Run(context.Background(), []string{"fig5.7", "replacement"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := range ch {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
	// fig5.7 needs 2 directions x 1 scene; replacement needs the same
	// default-direction stream. Without sharing that is 3 renders; with
	// sharing the default-direction render is reused.
	if n := tc.Renders(); n > 2 {
		t.Errorf("batch rendered %d streams, want <= 2 with sharing", n)
	}
}

func TestNewDefaults(t *testing.T) {
	e := New(WithWorkers(-3))
	if e.opts.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", e.opts.Workers)
	}
	e = New(WithPrewarm(false), WithWorkers(7))
	if e.opts.Prewarm || e.opts.Workers != 7 {
		t.Errorf("options not applied: %+v", e.opts)
	}
}
