package engine

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"texcache/internal/api"
	"texcache/internal/exp"
)

// drainOne reads the single result a one-shot request emits.
func drainOne(t *testing.T, ch <-chan Result) Result {
	t.Helper()
	r, ok := <-ch
	if !ok {
		t.Fatal("result channel closed without a result")
	}
	if _, more := <-ch; more {
		t.Fatal("one-shot request emitted more than one result")
	}
	return r
}

func TestRunRequestSweep(t *testing.T) {
	req := sweepReq("goblet")
	ch, err := New().RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r := drainOne(t, ch)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.ID != SweepID || !strings.Contains(r.Output, "Miss rate") {
		t.Errorf("sweep result %q output:\n%s", r.ID, r.Output)
	}

	// The per-config replay mode is bit-identical to grouped.
	ch2, err := New(WithSweepMode(exp.SweepPerConfig)).RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := drainOne(t, ch2); r2.Err != nil || r2.Output != r.Output {
		t.Errorf("per-config sweep differs from grouped (err %v)", r2.Err)
	}

	// An unknown scene fails validation before any work starts.
	if _, err := New().RunRequest(context.Background(), sweepReq("no-such-scene")); err == nil {
		t.Error("unknown scene sweep accepted")
	}
}

func TestRunRequestArchitecture(t *testing.T) {
	req := api.ExperimentRequest{
		Scene:        "goblet",
		Scale:        8,
		Architecture: &api.Architecture{},
	}
	ch, err := New().RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r := drainOne(t, ch)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.ID != ArchID || !strings.Contains(r.Output, "Pipeline") {
		t.Errorf("architecture result %q output:\n%s", r.ID, r.Output)
	}
}

func TestRunRequestExperiments(t *testing.T) {
	req := api.ExperimentRequest{
		Experiments: []string{"fig5.2"}, Scenes: []string{"goblet"}, Scale: 8,
	}
	ch, err := New().RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r := drainOne(t, ch); r.Err != nil || r.ID != "fig5.2" {
		t.Fatalf("experiments request: %v (id %s)", r.Err, r.ID)
	}
}

func TestRunRequestInvalid(t *testing.T) {
	req := api.ExperimentRequest{Scene: "goblet", Scale: -1}
	if _, err := New().RunRequest(context.Background(), req); err == nil {
		t.Error("invalid request accepted")
	}
}

func gridReq() api.ExperimentRequest {
	return api.ExperimentRequest{
		Grid: &api.Grid{
			Scenes: []string{"goblet"},
			Configs: []api.CacheConfig{
				{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2},
				{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2},
			},
		},
		Scale: 8,
	}
}

func TestRunRequestGrid(t *testing.T) {
	ch, err := New().RunRequest(context.Background(), gridReq())
	if err != nil {
		t.Fatal(err)
	}
	var exhaustive string
	for r := range ch {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		exhaustive = r.Output
	}
	if !strings.Contains(exhaustive, "Cost") {
		t.Errorf("grid output missing cost column:\n%s", exhaustive)
	}

	// The pruned run reports the same frontier (dominated rows become
	// notes) and the frontier file round-trips.
	ff := filepath.Join(t.TempDir(), "frontier.ndjson")
	for run := 0; run < 2; run++ {
		ch, err := New(WithPruning(true), WithFrontierFile(ff)).RunRequest(context.Background(), gridReq())
		if err != nil {
			t.Fatal(err)
		}
		for r := range ch {
			if r.Err != nil {
				t.Fatalf("pruned run %d: %v", run, r.Err)
			}
		}
	}

	// A shard slice of count 1 covers the whole grid.
	req := gridReq()
	req.Shard = &api.Shard{Index: 0, Count: 1}
	ch2, err := New().RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for r := range ch2 {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		n++
	}
	if n != 1 {
		t.Errorf("sharded grid emitted %d groups, want 1", n)
	}
}

func TestStreamNDJSONOrdersByIndex(t *testing.T) {
	// Results arriving out of order serialize in index order.
	ch, err := New(WithWorkers(2)).RunRequest(context.Background(), api.ExperimentRequest{
		Experiments: []string{"fig5.2", "table2.1"}, Scenes: []string{"goblet"}, Scale: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	seen := []int{}
	if err := StreamNDJSON(&buf, ch, func(r Result) { seen = append(seen, r.Index) }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("callback order %v, want [0 1]", seen)
	}
	if buf.Len() == 0 || buf.Bytes()[buf.Len()-1] != '\n' {
		t.Error("NDJSON stream empty or missing trailing newline")
	}
}

func TestRunRequestNDJSONWarmIdentical(t *testing.T) {
	rc := NewResultCache()
	e := New(WithResultCache(rc))
	req := sweepReq("goblet")

	var cold, warm bytes.Buffer
	if err := e.RunRequestNDJSON(context.Background(), req, &cold, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.RunRequestNDJSON(context.Background(), req, &warm, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Error("warm NDJSON stream differs from cold")
	}
	if rc.Produced() != 1 || rc.Hits() != 1 {
		t.Errorf("Produced %d Hits %d, want 1/1", rc.Produced(), rc.Hits())
	}

	// A fresh engine sharing a ResultDir serves the stored stream.
	dir := t.TempDir()
	var first, second bytes.Buffer
	if err := New(WithResultDir(dir)).RunRequestNDJSON(context.Background(), req, &first, nil); err != nil {
		t.Fatal(err)
	}
	if err := New(WithResultDir(dir)).RunRequestNDJSON(context.Background(), req, &second, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) || !bytes.Equal(first.Bytes(), cold.Bytes()) {
		t.Error("result-dir stream not byte-identical across engines")
	}
}

func TestRunRequestNDJSONGridBypasses(t *testing.T) {
	rc := NewResultCache()
	e := New(WithResultCache(rc))
	var a, b bytes.Buffer
	for _, w := range []*bytes.Buffer{&a, &b} {
		if err := e.RunRequestNDJSON(context.Background(), gridReq(), w, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("grid NDJSON stream not deterministic")
	}
	if rc.Misses() != 0 && rc.Hits() != 0 {
		t.Errorf("grid request touched the result cache: misses %d hits %d", rc.Misses(), rc.Hits())
	}
	if rc.Produced() != 0 {
		t.Errorf("grid request produced a cache entry: %d", rc.Produced())
	}
}

func TestRunRequestNDJSONNoCache(t *testing.T) {
	// Without a result cache configured the NDJSON path still streams.
	var buf bytes.Buffer
	if err := New().RunRequestNDJSON(context.Background(), sweepReq("goblet"), &buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("uncached NDJSON stream is empty")
	}

	// Invalid requests fail before any bytes.
	var out bytes.Buffer
	if err := New().RunRequestNDJSON(context.Background(), api.ExperimentRequest{Scene: "goblet", Scale: -1}, &out, nil); err == nil || out.Len() != 0 {
		t.Errorf("invalid request: err %v, %d bytes written", err, out.Len())
	}

	// An unusable result dir fails fast.
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(WithResultDir(filepath.Join(f, "sub"))).RunRequestNDJSON(context.Background(), sweepReq("goblet"), &buf, nil); err == nil {
		t.Error("unusable result dir accepted")
	}
}

func TestOptionSetters(t *testing.T) {
	rc := NewResultCache()
	tc := NewTraceCache()
	called := false
	e := New(
		WithRenderWorkers(2),
		WithProgress(func(Progress) { called = true }),
		WithTraces(tc),
		WithResultCache(rc),
		WithResultDir("ignored"),
	)
	if e.opts.RenderWorkers != 2 || e.opts.Traces == nil || e.opts.ResultCache != rc {
		t.Errorf("options not applied: %+v", e.opts)
	}
	got, err := e.results()
	if err != nil || got != rc {
		t.Errorf("results() = %v, %v; want the shared cache", got, err)
	}
	ch, err := e.Run(context.Background(), []string{"table2.1"}, exp.Config{Scale: 8, Scenes: []string{"goblet"}})
	if err != nil {
		t.Fatal(err)
	}
	for range ch {
	}
	if !called {
		t.Error("progress callback never fired")
	}
}
