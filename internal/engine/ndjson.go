package engine

import (
	"io"

	"texcache/internal/report"
)

// StreamNDJSON re-serializes a result stream as newline-delimited JSON:
// each result's recorded report replays through a JSON reporter stamped
// with the experiment ID, reordered into request (Index) order so the
// bytes are deterministic whatever the completion order. Both cmd/texsim
// -json and the texserve response body are this function, which is what
// makes their output byte-identical for the same request.
//
// onResult, when non-nil, runs after each result's lines are written (in
// index order) — texserve uses it to flush the HTTP stream and append
// typed error lines, texsim to log failures. StreamNDJSON returns the
// first write or result error; later results are still drained and
// written so a mid-batch failure doesn't truncate the stream.
func StreamNDJSON(w io.Writer, results <-chan Result, onResult func(Result)) error {
	var firstErr error
	pending := map[int]Result{}
	next := 0
	emit := func(r Result) {
		if r.Report != nil {
			jr := report.NewJSON(w)
			jr.Exp = r.ID
			r.Report.Replay(jr)
			if err := jr.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		if onResult != nil {
			onResult(r)
		}
	}
	for r := range results {
		pending[r.Index] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			emit(q)
		}
	}
	return firstErr
}
