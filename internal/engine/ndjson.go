package engine

import (
	"context"
	"io"

	"texcache/internal/api"
	"texcache/internal/report"
)

// StreamNDJSON re-serializes a result stream as newline-delimited JSON:
// each result's recorded report replays through a JSON reporter stamped
// with the experiment ID, reordered into request (Index) order so the
// bytes are deterministic whatever the completion order. Both cmd/texsim
// -json and the texserve response body are this function, which is what
// makes their output byte-identical for the same request.
//
// onResult, when non-nil, runs after each result's lines are written (in
// index order) — texserve uses it to flush the HTTP stream and append
// typed error lines, texsim to log failures. StreamNDJSON returns the
// first write or result error; later results are still drained and
// written so a mid-batch failure doesn't truncate the stream.
func StreamNDJSON(w io.Writer, results <-chan Result, onResult func(Result)) error {
	var firstErr error
	pending := map[int]Result{}
	next := 0
	emit := func(r Result) {
		if r.Report != nil {
			jr := report.NewJSON(w)
			jr.Exp = r.ID
			r.Report.Replay(jr)
			if err := jr.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		if onResult != nil {
			onResult(r)
		}
	}
	for r := range results {
		pending[r.Index] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			emit(q)
		}
	}
	return firstErr
}

// RunRequestNDJSON executes req and writes its NDJSON stream to w —
// RunRequest piped through StreamNDJSON, with the engine's result cache
// (when configured and the request is Cacheable) consulted first. A
// warm request is served as stored bytes, byte-identical to a fresh
// run; a cold one simulates while streaming, and the finished stream is
// cached for the next caller. Grid requests always simulate: their row
// set depends on pruning frontier state (see Cacheable).
//
// onResult fires per finished result exactly as in StreamNDJSON on the
// producing path; requests served from the cache complete without
// callbacks since the stream is written whole.
func (e *Engine) RunRequestNDJSON(ctx context.Context, req api.ExperimentRequest, w io.Writer, onResult func(Result)) error {
	req = req.Normalized()
	if err := api.Validate(req); err != nil {
		return err
	}
	rc, err := e.results()
	if err != nil {
		return err
	}
	if rc == nil || !Cacheable(req) {
		results, err := e.RunRequest(ctx, req)
		if err != nil {
			return err
		}
		return StreamNDJSON(w, results, onResult)
	}
	return rc.Serve(ctx, req, w, onResult, func(tw io.Writer, cb func(Result)) error {
		results, err := e.RunRequest(ctx, req)
		if err != nil {
			return err
		}
		return StreamNDJSON(tw, results, cb)
	})
}
