package engine

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"

	"texcache/internal/cache"
	"texcache/internal/exp"
	"texcache/internal/obs"
	"texcache/internal/scenes"
	"texcache/internal/trace"
)

// traceCacheKey is a TraceKey plus the run scale: the full identity of a
// rendered address stream.
type traceCacheKey struct {
	key   exp.TraceKey
	scale int
}

// traceEntry is one slot of the trace cache. ready is closed once
// str/err are final; waiters block on it (or their context) instead of
// holding the cache lock through a render. elem is the entry's LRU node,
// nil while the production is in flight (in-flight entries are never
// evicted); size is the stream's resident footprint.
type traceEntry struct {
	key   traceCacheKey
	ready chan struct{}
	str   cache.AddrStream
	err   error
	elem  *list.Element
	size  int64
}

// Default budgets for the memory tier: enough for any one batch's
// working set, small enough that a long-lived texserve mixing many
// (scene, scale, layout, traversal) keys stays bounded. Evicted traces
// re-render (or re-load from the store) bit-identically on the next
// request, so eviction is never a correctness event.
const (
	defaultTraceMaxEntries = 512
	defaultTraceMaxBytes   = 512 << 20
)

// TraceCache memoizes rendered traces keyed by (scene, layout, traversal,
// scale) with single-flight semantics: when several experiments request
// the same stream concurrently, exactly one goroutine produces it and the
// rest wait for that result. It implements exp.TraceProvider, so
// installing one as Config.Traces makes every experiment in a batch share
// renders.
//
// Entries are held in the compact delta encoding (internal/trace), so a
// batch's working set is several times smaller than materialized traces;
// replay consumes the encoded blocks directly. With a Store attached the
// cache gains a persistent tier: a memory miss first tries the store, and
// freshly rendered traces are written back, so a later run with the same
// store skips rendering entirely.
//
// Failed renders are not cached: the entry is removed so a later request
// (perhaps with a different deadline) retries.
type TraceCache struct {
	// RenderWorkers is the tile-parallel rasterization worker count each
	// render uses; zero or negative means GOMAXPROCS, one forces the
	// serial reference path. Traces are bit-identical at any setting.
	// Set before the first SceneTrace call.
	RenderWorkers int

	// Store, when non-nil, is the persistent tier consulted between a
	// memory miss and a render, and written back after each render. Store
	// failures are never fatal: a bad load is a miss, a failed save
	// leaves the in-memory entry intact. Set before the first SceneTrace
	// call.
	Store *trace.Store

	// MaxEntries and MaxBytes bound the memory tier; above either budget
	// the least-recently-used completed entry is evicted. Zero means the
	// default budget (512 entries, 512MB), negative means unlimited. Set
	// before the first SceneTrace call.
	MaxEntries int
	MaxBytes   int64

	mu        sync.Mutex
	entries   map[traceCacheKey]*traceEntry
	lru       *list.List // completed entries, front = most recently used
	bytes     int64      // sum of completed entry sizes
	renders   int        // number of actual renders performed, for tests/metrics
	storeHits int        // number of loads served by the persistent tier
	evictions int        // completed entries dropped to stay within budget
}

// NewTraceCache returns an empty trace cache with default budgets.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: map[traceCacheKey]*traceEntry{}, lru: list.New()}
}

// Renders reports how many renders the cache has actually performed —
// the denominator of its hit rate. Store hits don't count: a warm
// persistent tier serves a whole batch with zero renders.
func (tc *TraceCache) Renders() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.renders
}

// StoreHits reports how many trace requests the persistent tier served
// without a render — the warm-store number a sharded re-run's "rendered
// nothing" claim rests on.
func (tc *TraceCache) StoreHits() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.storeHits
}

// Evictions reports how many completed entries the memory tier has
// dropped to stay within its budget.
func (tc *TraceCache) Evictions() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.evictions
}

// Len reports the number of completed entries resident in memory.
func (tc *TraceCache) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.lru == nil {
		return 0
	}
	return tc.lru.Len()
}

// SceneTrace returns the address stream for key at the given scale,
// producing it (store load, else render) on the calling goroutine if no
// other request got there first. Waiters respect ctx: a cancelled waiter
// returns early while the production (owned by another caller) continues
// for whoever still wants it.
func (tc *TraceCache) SceneTrace(ctx context.Context, key exp.TraceKey, scale int) (cache.AddrStream, error) {
	if scale < 1 {
		scale = 1
	}
	ck := traceCacheKey{key: key, scale: scale}

	reg := obs.Default().Sub("engine").Sub("trace_cache")
	tc.mu.Lock()
	if tc.lru == nil {
		tc.lru = list.New()
	}
	if e, ok := tc.entries[ck]; ok {
		if e.elem != nil {
			tc.lru.MoveToFront(e.elem)
		}
		tc.mu.Unlock()
		// A hit is any request served by an existing entry, including
		// dedupe hits that wait on an in-flight production.
		reg.Counter("hits").Inc()
		select {
		case <-e.ready:
			return e.str, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &traceEntry{key: ck, ready: make(chan struct{})}
	tc.entries[ck] = e
	tc.mu.Unlock()

	e.str, e.err = tc.produce(ctx, ck)
	if e.err != nil {
		// Drop failed entries so the next request retries.
		tc.mu.Lock()
		delete(tc.entries, ck)
		tc.mu.Unlock()
	} else {
		tc.install(e, reg)
	}
	close(e.ready)
	return e.str, e.err
}

// install publishes a completed entry into the LRU and evicts over
// budget. Evicted entries simply leave the map: a stream already handed
// to replayers stays valid (it is immutable), and the next request for
// its key re-produces it bit-identically.
func (tc *TraceCache) install(e *traceEntry, reg *obs.Registry) {
	e.size = streamSize(e.str)
	maxEntries, maxBytes := tc.MaxEntries, tc.MaxBytes
	if maxEntries == 0 {
		maxEntries = defaultTraceMaxEntries
	}
	if maxBytes == 0 {
		maxBytes = defaultTraceMaxBytes
	}
	tc.mu.Lock()
	e.elem = tc.lru.PushFront(e)
	tc.bytes += e.size
	evicted := 0
	for tc.lru.Len() > 1 &&
		((maxEntries > 0 && tc.lru.Len() > maxEntries) ||
			(maxBytes > 0 && tc.bytes > maxBytes)) {
		back := tc.lru.Back()
		v := back.Value.(*traceEntry)
		tc.lru.Remove(back)
		delete(tc.entries, v.key)
		tc.bytes -= v.size
		tc.evictions++
		evicted++
	}
	tc.mu.Unlock()
	for i := 0; i < evicted; i++ {
		reg.Counter("evictions").Inc()
	}
}

// streamSize estimates a stream's resident footprint: the compact
// encoding reports its exact byte size, anything else is approximated
// by its address count.
func streamSize(str cache.AddrStream) int64 {
	if sized, ok := str.(interface{ SizeBytes() int }); ok {
		return int64(sized.SizeBytes())
	}
	if str == nil {
		return 0
	}
	return int64(str.Len())
}

// produce fills one cache slot: persistent tier first, then a render
// compacted and written back.
func (tc *TraceCache) produce(ctx context.Context, ck traceCacheKey) (cache.AddrStream, error) {
	reg := obs.Default().Sub("engine").Sub("trace_cache")
	if tc.Store != nil {
		if c, ok := tc.Store.Load(storeKey(ck)); ok {
			tc.mu.Lock()
			tc.storeHits++
			tc.mu.Unlock()
			reg.Counter("store_hits").Inc()
			return c, nil
		}
	}
	tc.mu.Lock()
	tc.renders++
	tc.mu.Unlock()
	reg.Counter("renders").Inc()

	tr, err := renderTrace(ctx, ck, tc.effectiveRenderWorkers())
	if err != nil {
		return nil, err
	}
	c := trace.CompactFromTrace(tr)
	if tc.Store != nil {
		// Best effort: an unwritable store degrades to cold runs, not
		// failures.
		_ = tc.Store.Save(storeKey(ck), c)
	}
	return c, nil
}

// storeKey canonicalizes a trace identity for the persistent store. The
// layout and traversal structs render via %+v, so any new field (which
// would change the address stream) automatically changes the key.
func storeKey(ck traceCacheKey) trace.Key {
	return trace.Key{
		Scene:     ck.key.Scene,
		Scale:     ck.scale,
		Layout:    fmt.Sprintf("%+v", ck.key.Layout),
		Traversal: fmt.Sprintf("%+v", ck.key.Traversal),
		Version:   trace.CodecVersion,
	}
}

// effectiveRenderWorkers resolves the configured worker count.
func (tc *TraceCache) effectiveRenderWorkers() int {
	if tc.RenderWorkers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return tc.RenderWorkers
}

// renderTrace performs the actual scene render for one cache slot, on
// the tile-parallel path when workers allows it. The trace is
// bit-identical either way.
func renderTrace(ctx context.Context, ck traceCacheKey, workers int) (*cache.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := scenes.ByNameChecked(ck.key.Scene, ck.scale)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	tr, _, err := s.TraceParallel(ck.key.Layout, ck.key.Traversal, workers)
	return tr, err
}
