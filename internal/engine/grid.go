// Grid-kind requests: the engine enumerates the design-space
// cross-product through internal/shard, schedules one unit of work per
// trace group on the worker pool, and emits one result per group whose
// rows are keyed by content-addressed unit tags. A Shard selection on
// the request restricts the run to that worker's trace-affine slice;
// results keep their slice-local indexes, so StreamNDJSON emits each
// worker's groups in increasing global order and the coordinator's
// k-way merge can reassemble the canonical stream.
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"texcache/internal/api"
	"texcache/internal/cache"
	"texcache/internal/cost"
	"texcache/internal/exp"
	"texcache/internal/obs"
	"texcache/internal/report"
	"texcache/internal/shard"
)

// gridColumns lays out the grid result table: one row per (trace,
// config) unit with its classified statistics and hardware cost.
func gridColumns() []report.Column {
	return []report.Column{
		{Name: "Unit", Head: "%-20s", Cell: "%-20s"},
		{Name: "Configuration", Head: " %-36s", Cell: " %-36s"},
		{Name: "Miss rate", Head: "%10s", Cell: "%9.3f%%"},
		{Name: "Accesses", Head: "%12s", Cell: "%12d"},
		{Name: "Misses", Head: "%12s", Cell: "%12d"},
		{Name: "Cold", Head: "%10s", Cell: "%10d"},
		{Name: "Capacity", Head: "%10s", Cell: "%10d"},
		{Name: "Conflict", Head: "%10s", Cell: "%10d"},
		{Name: "Cost", Head: "%12s", Cell: "%12d"},
	}
}

// runGrid executes a grid-kind request: enumerate, take this shard's
// slice, and run each trace group through the worker pool. One Result
// per group, indexed by slice position so the NDJSON stream orders by
// increasing global trace index.
func (e *Engine) runGrid(ctx context.Context, req api.ExperimentRequest) (<-chan Result, error) {
	groups, err := shard.Enumerate(*req.Grid, req.Scale)
	if err != nil {
		return nil, err
	}
	sl := shard.Slice{Count: 1}
	if req.Shard != nil {
		sl = shard.Slice{Index: req.Shard.Index, Count: req.Shard.Count}
	}
	mine := shard.Assigned(groups, sl)
	prov, err := e.traces()
	if err != nil {
		return nil, err
	}
	var pruner *shard.Pruner
	if e.opts.Prune {
		pruner = shard.NewPruner()
		if e.opts.FrontierFile != "" {
			if err := pruner.AttachFile(e.opts.FrontierFile); err != nil {
				return nil, err
			}
		}
	}

	reg := obs.Default().Sub("shard")
	tracesC := reg.Counter("trace_groups")
	unitsC := reg.Counter("units")
	prunedC := reg.Counter("pruned")

	out := make(chan Result, len(mine))
	sem := make(chan struct{}, e.opts.Workers)
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		for i, g := range mine {
			wg.Add(1)
			go func(i int, g shard.TraceGroup) {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					out <- Result{Index: i, ID: g.Tag(), Title: gridTitle(g), Err: ctx.Err()}
					return
				}
				tracesC.Inc()
				out <- runTraceGroup(ctx, i, g, prov, pruner, unitsC, prunedC)
			}(i, g)
		}
		wg.Wait()
		if pruner != nil {
			pruner.Close()
		}
		obs.Default().Emit("grid.done", "", int64(len(mine)))
	}()
	return out, nil
}

// gridTitle renders a group's human-readable title for text output.
func gridTitle(g shard.TraceGroup) string {
	return fmt.Sprintf("grid trace %s: scene %s at scale %d", g.Tag(), g.TK.Scene, g.Scale)
}

// runTraceGroup runs all of one trace group's units, recording the
// result table.
func runTraceGroup(ctx context.Context, i int, g shard.TraceGroup, prov exp.TraceProvider, pruner *shard.Pruner, unitsC, prunedC *obs.Counter) Result {
	r := Result{Index: i, ID: g.Tag(), Title: gridTitle(g)}
	start := time.Now()
	rec := &report.Recording{}
	r.Err = gridGroupInto(ctx, g, prov, pruner, rec, unitsC, prunedC)
	r.Elapsed = time.Since(start)
	r.Report = rec
	r.Output = rec.Text()
	obs.Default().Sub("engine").Timer("grid_group").Observe(r.Elapsed)
	return r
}

// gridGroupInto does one trace group's work: render (or load) the
// trace, then replay its configs — in a single grouped pass when
// exhaustive, or sequentially with dominance checks when pruning. The
// two replay paths produce bit-identical statistics (pinned by the
// cache package's differential tests), so a unit measured on either
// path contributes the same row bytes.
func gridGroupInto(ctx context.Context, g shard.TraceGroup, prov exp.TraceProvider, pruner *shard.Pruner, rep report.Reporter, unitsC, prunedC *obs.Counter) error {
	str, err := prov.SceneTrace(ctx, g.TK, g.Scale)
	if err != nil {
		return err
	}
	rep.Note("scene %s at scale %d, %s layout, %d addresses", g.TK.Scene,
		g.Scale, g.TK.Layout.Kind, str.Len())
	rep.BeginTable(shard.GridTableID, gridColumns())

	row := func(u shard.Unit, s cache.Stats, hw int64) {
		rep.Row(u.Tag(), u.Config.String(), 100*s.MissRate(), s.Accesses,
			s.Misses, s.Cold, s.Capacity, s.Conflict, hw)
	}

	if pruner == nil {
		cfgs := make([]cache.Config, len(g.Units))
		for j, u := range g.Units {
			cfgs[j] = u.Config
		}
		stats, err := cache.SimulateConfigsGroupedStream(ctx, str, cfgs)
		if err != nil {
			return err
		}
		for j, s := range stats {
			unitsC.Inc()
			row(g.Units[j], s, cost.ConfigCost(g.Units[j].Config).Total())
		}
		return nil
	}

	// Pruning path: sequential per-config replay so each measurement can
	// tighten the bounds before the next dominance check. Decisions use
	// only same-trace state, so they are deterministic however many
	// groups run concurrently.
	for _, u := range g.Units {
		if err := ctx.Err(); err != nil {
			return err
		}
		hw := cost.ConfigCost(u.Config).Total()
		if by, ok := pruner.Dominated(g.Key, u.Config, hw); ok {
			prunedC.Inc()
			rep.Note("pruned %s (%s, cost %d): dominated by measured %s", u.Tag(), u.Config, hw, by)
			continue
		}
		stats, err := cache.SimulateConfigsStream(ctx, str, []cache.Config{u.Config})
		if err != nil {
			return err
		}
		s := stats[0]
		pruner.Observe(shard.Point{
			Trace: g.Key, Unit: u.Tag(), Label: u.Config.String(), Config: u.Config,
			Accesses: s.Accesses, Misses: s.Misses, Cold: s.Cold, Cost: hw,
		})
		unitsC.Inc()
		row(u, s, hw)
	}
	return nil
}
