package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"texcache/internal/api"
	"texcache/internal/exp"
	"texcache/internal/raster"
	"texcache/internal/texture"
)

// sweepReq builds a small cacheable sweep request; the scene name keys
// the result identity, so distinct names make distinct cache entries.
func sweepReq(scene string) api.ExperimentRequest {
	return api.ExperimentRequest{
		Scene: scene,
		Configs: []api.CacheConfig{
			{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2},
		},
		Scale: 8,
	}
}

// fakeProduce returns a produce function that writes payload and counts
// its invocations.
func fakeProduce(payload string, runs *int, mu *sync.Mutex) func(w io.Writer, cb func(Result)) error {
	return func(w io.Writer, cb func(Result)) error {
		mu.Lock()
		*runs++
		mu.Unlock()
		_, err := w.Write([]byte(payload))
		return err
	}
}

func serveString(t *testing.T, rc *ResultCache, req api.ExperimentRequest, produce func(w io.Writer, cb func(Result)) error) string {
	t.Helper()
	var buf bytes.Buffer
	err := rc.Serve(context.Background(), req, &buf, nil, func(w io.Writer, cb func(Result)) error {
		return produce(w, cb)
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestResultCacheSingleFlight(t *testing.T) {
	rc := NewResultCache()
	req := sweepReq("goblet")
	var mu sync.Mutex
	runs := 0
	produce := fakeProduce("line1\nline2\n", &runs, &mu)

	const clients = 16
	var wg sync.WaitGroup
	outs := make([]string, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			errs[i] = rc.Serve(context.Background(), req, &buf, nil, func(w io.Writer, cb func(Result)) error {
				return produce(w, cb)
			})
			outs[i] = buf.String()
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if outs[i] != "line1\nline2\n" {
			t.Errorf("client %d got %q", i, outs[i])
		}
	}
	if runs != 1 {
		t.Errorf("%d concurrent requests ran produce %d times, want 1", clients, runs)
	}
	if got := rc.Produced(); got != 1 {
		t.Errorf("Produced() = %d, want 1", got)
	}
	if h, c, m := rc.Hits(), rc.Coalesced(), rc.Misses(); m != 1 || h+c != clients-1 {
		t.Errorf("hits %d + coalesced %d, misses %d; want hits+coalesced=%d, misses=1", h, c, m, clients-1)
	}
}

func TestResultCacheHitServesStoredBytes(t *testing.T) {
	rc := NewResultCache()
	req := sweepReq("goblet")
	var mu sync.Mutex
	runs := 0
	produce := fakeProduce("payload\n", &runs, &mu)

	first := serveString(t, rc, req, produce)
	second := serveString(t, rc, req, produce)
	if first != second || first != "payload\n" {
		t.Fatalf("warm bytes differ: %q vs %q", first, second)
	}
	if runs != 1 {
		t.Errorf("repeat request re-ran produce: runs = %d", runs)
	}
	if rc.Hits() != 1 || rc.Misses() != 1 {
		t.Errorf("hits %d misses %d, want 1/1", rc.Hits(), rc.Misses())
	}
	if rc.Len() != 1 || rc.SizeBytes() != int64(len("payload\n")) {
		t.Errorf("Len %d SizeBytes %d", rc.Len(), rc.SizeBytes())
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	rc := NewResultCache()
	rc.MaxEntries = 2
	var mu sync.Mutex
	runs := 0
	produce := fakeProduce("x\n", &runs, &mu)

	scenes := []string{"a", "b", "c"}
	for _, s := range scenes {
		serveString(t, rc, sweepReq(s), produce)
	}
	if rc.Len() != 2 {
		t.Errorf("capped cache holds %d entries, want 2", rc.Len())
	}
	if rc.Evictions() != 1 {
		t.Errorf("Evictions() = %d, want 1", rc.Evictions())
	}
	// "a" was least recently served and must re-produce; the re-produced
	// bytes are identical (eviction is never a correctness event).
	before := runs
	if got := serveString(t, rc, sweepReq("a"), produce); got != "x\n" {
		t.Errorf("re-produced entry differs: %q", got)
	}
	if runs != before+1 {
		t.Errorf("evicted entry served without re-producing (runs %d -> %d)", before, runs)
	}
}

func TestResultCacheByteBudget(t *testing.T) {
	rc := NewResultCache()
	rc.MaxBytes = 8 // tiny: every completed entry exceeds it
	var mu sync.Mutex
	runs := 0
	produce := fakeProduce("0123456789\n", &runs, &mu)

	serveString(t, rc, sweepReq("a"), produce)
	serveString(t, rc, sweepReq("b"), produce)
	// Over-budget, but the most recent entry always survives.
	if rc.Len() != 1 {
		t.Errorf("byte-capped cache holds %d entries, want 1", rc.Len())
	}
	if rc.Evictions() == 0 {
		t.Error("byte budget never evicted")
	}
}

func TestResultCacheUnlimited(t *testing.T) {
	rc := NewResultCache()
	rc.MaxEntries = -1
	rc.MaxBytes = -1
	var mu sync.Mutex
	runs := 0
	produce := fakeProduce("x\n", &runs, &mu)
	for i := 0; i < 10; i++ {
		serveString(t, rc, sweepReq(fmt.Sprintf("s%d", i)), produce)
	}
	if rc.Len() != 10 || rc.Evictions() != 0 {
		t.Errorf("unlimited cache: Len %d Evictions %d, want 10/0", rc.Len(), rc.Evictions())
	}
}

func TestResultCacheFailedProduceNotCached(t *testing.T) {
	rc := NewResultCache()
	req := sweepReq("goblet")
	boom := errors.New("boom")
	runs := 0
	err := rc.Serve(context.Background(), req, &bytes.Buffer{}, nil, func(w io.Writer, cb func(Result)) error {
		runs++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Serve err = %v, want boom", err)
	}
	// The failure was not cached: the next request runs again and can
	// succeed.
	var buf bytes.Buffer
	err = rc.Serve(context.Background(), req, &buf, nil, func(w io.Writer, cb func(Result)) error {
		runs++
		_, werr := w.Write([]byte("ok\n"))
		return werr
	})
	if err != nil || buf.String() != "ok\n" {
		t.Fatalf("retry after failure: %v, %q", err, buf.String())
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2", runs)
	}
}

func TestResultCachePerResultErrorPoisons(t *testing.T) {
	rc := NewResultCache()
	req := sweepReq("goblet")
	runs := 0
	// The stream writes fine but one result carries an error: the bytes
	// went to the caller yet must not be replayed to future clients.
	err := rc.Serve(context.Background(), req, &bytes.Buffer{}, nil, func(w io.Writer, cb func(Result)) error {
		runs++
		w.Write([]byte("row\n"))
		cb(Result{ID: "x", Err: errors.New("experiment failed")})
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "not cacheable") {
		t.Fatalf("Serve err = %v, want not-cacheable error", err)
	}
	serveString(t, rc, req, fakeProduce("clean\n", &runs, &sync.Mutex{}))
	if runs != 2 {
		t.Errorf("poisoned entry was served: runs = %d, want 2", runs)
	}
}

func TestResultCacheOnResultForwarded(t *testing.T) {
	rc := NewResultCache()
	var ids []string
	err := rc.Serve(context.Background(), sweepReq("goblet"), &bytes.Buffer{}, func(r Result) {
		ids = append(ids, r.ID)
	}, func(w io.Writer, cb func(Result)) error {
		cb(Result{ID: "one"})
		cb(Result{ID: "two"})
		_, werr := w.Write([]byte("x\n"))
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "one" || ids[1] != "two" {
		t.Errorf("onResult saw %v, want [one two]", ids)
	}
}

func TestResultCacheCancelledWaiter(t *testing.T) {
	rc := NewResultCache()
	req := sweepReq("goblet")
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rc.Serve(context.Background(), req, &bytes.Buffer{}, nil, func(w io.Writer, cb func(Result)) error {
			close(started)
			<-release
			_, err := w.Write([]byte("x\n"))
			return err
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := rc.Serve(ctx, req, &bytes.Buffer{}, nil, func(w io.Writer, cb func(Result)) error {
		t.Error("cancelled waiter became a producer")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
}

func TestResultCachePersistentTier(t *testing.T) {
	dir := t.TempDir()
	req := sweepReq("goblet")
	var mu sync.Mutex
	runs := 0
	produce := fakeProduce("stored\n", &runs, &mu)

	cold := NewResultCache()
	if err := cold.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	want := serveString(t, cold, req, produce)

	// A fresh cache on the same directory serves the stored bytes
	// without producing.
	warm := NewResultCache()
	if err := warm.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	got := serveString(t, warm, req, produce)
	if got != want {
		t.Fatalf("stored bytes differ: %q vs %q", got, want)
	}
	if runs != 1 {
		t.Errorf("persistent tier missed: runs = %d, want 1", runs)
	}
	if warm.StoreHits() != 1 || warm.Produced() != 0 {
		t.Errorf("StoreHits %d Produced %d, want 1/0", warm.StoreHits(), warm.Produced())
	}

	// Corrupting the entry degrades to a miss: the next fresh cache
	// re-produces and the damaged file is removed.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("store entries: %v (err %v)", ents, err)
	}
	name := ents[0].Name()
	if !strings.HasSuffix(name, ".result") {
		t.Fatalf("entry name %q, want *.result", name)
	}
	p := filepath.Join(dir, name)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rere := NewResultCache()
	if err := rere.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := serveString(t, rere, req, produce); got != want {
		t.Fatalf("re-produced bytes differ: %q", got)
	}
	if runs != 2 || rere.Produced() != 1 {
		t.Errorf("corrupt entry served: runs %d Produced %d", runs, rere.Produced())
	}

	// Truncated and wrong-magic entries are equally misses.
	for _, bad := range [][]byte{{}, []byte("short"), append([]byte("NOTMAGIC!"), raw[9:]...)} {
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewResultCache()
		if err := fresh.AttachDir(dir); err != nil {
			t.Fatal(err)
		}
		if got := serveString(t, fresh, req, produce); got != want {
			t.Fatalf("damaged entry (%d bytes) served wrong bytes: %q", len(bad), got)
		}
	}

	// An unusable directory fails fast on attach.
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewResultCache().AttachDir(filepath.Join(f, "sub")); err == nil {
		t.Error("AttachDir under a plain file succeeded")
	}
}

func TestResultCacheKeyMismatchIsMiss(t *testing.T) {
	// Two different requests never alias, even through the persistent
	// tier: the canonical key is echoed into the entry and verified.
	dir := t.TempDir()
	var mu sync.Mutex
	runs := 0
	rc := NewResultCache()
	if err := rc.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	a := serveString(t, rc, sweepReq("goblet"), fakeProduce("A\n", &runs, &mu))
	b := serveString(t, rc, sweepReq("town"), fakeProduce("B\n", &runs, &mu))
	if a == b || runs != 2 {
		t.Fatalf("distinct requests aliased: %q %q runs=%d", a, b, runs)
	}
}

func TestCacheable(t *testing.T) {
	if !Cacheable(sweepReq("goblet")) {
		t.Error("sweep request not cacheable")
	}
	if !Cacheable(api.ExperimentRequest{Experiments: []string{"fig5.2"}}) {
		t.Error("experiments request not cacheable")
	}
	if !Cacheable(api.ExperimentRequest{Scene: "goblet", Architecture: &api.Architecture{}}) {
		t.Error("architecture request not cacheable")
	}
	grid := api.ExperimentRequest{Grid: &api.Grid{
		Scenes:  []string{"goblet"},
		Configs: []api.CacheConfig{{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2}},
	}}
	if Cacheable(grid) {
		t.Error("grid request cacheable; pruning makes its rows frontier-dependent")
	}
}

func TestResultKeyIgnoresExecutionFields(t *testing.T) {
	base := sweepReq("goblet")
	_, want := resultKey(base)

	same := base
	same.Tenant = "alice"
	same.Workers = 7
	same.RenderWorkers = 3
	same.Sweep = api.SweepPerConfig
	if _, got := resultKey(same); got != want {
		t.Error("execution-only fields changed the result key")
	}

	for name, mut := range map[string]func(*api.ExperimentRequest){
		"scene":  func(r *api.ExperimentRequest) { r.Scene = "town" },
		"scale":  func(r *api.ExperimentRequest) { r.Scale = 4 },
		"config": func(r *api.ExperimentRequest) { r.Configs[0].Ways = 4 },
		"layout": func(r *api.ExperimentRequest) { r.Layout = &api.Layout{Kind: "nonblocked"} },
	} {
		diff := base
		diff.Configs = append([]api.CacheConfig(nil), base.Configs...)
		mut(&diff)
		if _, got := resultKey(diff); got == want {
			t.Errorf("%s change did not change the result key", name)
		}
	}
}

func TestTraceCacheLRUEviction(t *testing.T) {
	// A capped trace cache stays within budget and re-renders evicted
	// traces correctly.
	tc := NewTraceCache()
	tc.MaxEntries = 1
	keys := []string{"goblet", "town"}
	lens := map[string]int{}
	for _, scene := range keys {
		str, err := tc.SceneTrace(context.Background(), traceKeyFor(scene), 16)
		if err != nil {
			t.Fatal(err)
		}
		lens[scene] = str.Len()
	}
	if tc.Len() != 1 {
		t.Errorf("capped trace cache holds %d entries, want 1", tc.Len())
	}
	if tc.Evictions() != 1 {
		t.Errorf("Evictions() = %d, want 1", tc.Evictions())
	}
	// goblet was evicted: asking again re-renders and the stream is
	// identical in length (full bit-identity is pinned elsewhere).
	str, err := tc.SceneTrace(context.Background(), traceKeyFor("goblet"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if str.Len() != lens["goblet"] {
		t.Errorf("re-rendered trace has %d addresses, first render had %d", str.Len(), lens["goblet"])
	}
	if n := tc.Renders(); n != 3 {
		t.Errorf("renders = %d, want 3 (two cold + one re-render)", n)
	}
}

// traceKeyFor is the default blocked-8 row-major trace key for a scene.
func traceKeyFor(scene string) exp.TraceKey {
	return exp.TraceKey{
		Scene:     scene,
		Layout:    texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8},
		Traversal: raster.Traversal{Order: raster.RowMajor},
	}
}
