package engine

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"texcache/internal/api"
	"texcache/internal/obs"
	"texcache/internal/trace"
)

// ResultFormatVersion names the NDJSON result serialization. It
// participates in every result-cache key, so bumping it (whenever
// StreamNDJSON's byte output changes — new fields, reordered lines,
// different number formatting) orphans stale cached streams instead of
// serving them.
const ResultFormatVersion = 1

// Cacheable reports whether req's finished stream may be served from a
// ResultCache. Grid requests are excluded by design: with pruning
// enabled their row set depends on the Pareto frontier accumulated so
// far (and on any frontier file preloaded into the run), so the stream
// is not a pure function of the request. Sweep, architecture and
// experiment requests are pure — same request, same bytes, pinned by
// the determinism tests — and cache freely.
func Cacheable(req api.ExperimentRequest) bool {
	return req.Kind() != api.KindGrid
}

// resultKey canonicalizes a request's result identity. The canonical
// string is echoed into persistent entries for verification; the hex
// SHA-256 hash is the memory key and the <hash>.result filename stem.
// Every version that can change the bytes is in the key: the API wire
// version (request semantics), the trace codec version (address
// generation), and the result format version (serialization).
func resultKey(req api.ExperimentRequest) (canonical, hash string) {
	canonical = "api=" + strconv.Itoa(api.Version) +
		"\ncodec=" + trace.CodecVersion +
		"\nresult=" + strconv.Itoa(ResultFormatVersion) +
		"\nrequest=" + req.ResultIdentity() + "\n"
	sum := sha256.Sum256([]byte(canonical))
	return canonical, hex.EncodeToString(sum[:])
}

// resultEntry is one slot of the result cache. ready is closed once
// data/err are final; coalesced waiters block on it (or their context)
// instead of re-running the request. elem is the entry's LRU list node,
// nil while the production is still in flight (in-flight entries are
// never evicted).
type resultEntry struct {
	key       string // hex hash, the map key and filename stem
	canonical string // pre-hash canonical key, echoed into stored entries
	ready     chan struct{}
	data      []byte
	err       error
	elem      *list.Element
}

// Default budgets for the memory tier. 256 finished streams at the
// observed ~2-60KB per stream is a few MB of memory; the byte budget
// backstops pathological giant streams.
const (
	defaultResultMaxEntries = 256
	defaultResultMaxBytes   = 64 << 20
)

// ResultCache memoizes finished NDJSON result streams keyed by the
// canonical request identity, with single-flight semantics: when several
// clients ask for the same request concurrently, exactly one runs the
// simulation (streaming its rows out as they are produced) and the rest
// wait, then receive the identical bytes. It is the tier above the
// TraceCache: a trace hit skips rendering but still replays the cache
// simulation, a result hit skips everything and writes stored bytes.
//
// The memory tier is a bounded LRU over completed entries; above the
// entry or byte budget the least-recently-served stream is evicted (and
// re-produced on the next request — eviction is never a correctness
// event). With Dir attached the cache gains a persistent tier mirroring
// the trace store: entries live as <sha256(key)>.result files written
// atomically (temp file + rename), verified on load (magic, key echo,
// payload checksum), with any damaged entry deleted and treated as a
// miss.
//
// Failed productions are not cached: the entry is dropped so a later
// request (perhaps with a different deadline) retries. Only streams that
// finished with no result error and no write error are stored.
type ResultCache struct {
	// MaxEntries and MaxBytes bound the memory tier; zero means the
	// default budget (256 entries, 64MB), negative means unlimited. Set
	// before the first Serve call.
	MaxEntries int
	MaxBytes   int64

	// Dir, when non-empty, roots the persistent tier. Use AttachDir to
	// set it with directory creation and a fail-fast error.
	Dir string

	mu      sync.Mutex
	entries map[string]*resultEntry
	lru     *list.List // completed entries, front = most recently served
	bytes   int64      // sum of completed entry sizes

	hits, misses, coalesced, evictions int
	produced, storeHits                int
}

// NewResultCache returns an empty memory-only result cache with default
// budgets.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: map[string]*resultEntry{}, lru: list.New()}
}

// AttachDir roots the persistent tier at dir, creating the directory.
func (rc *ResultCache) AttachDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("engine: opening result store: %w", err)
	}
	rc.Dir = dir
	return nil
}

// Hits reports requests served from a completed entry (memory tier).
func (rc *ResultCache) Hits() int { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.hits }

// Misses reports requests that found no entry and became producers.
func (rc *ResultCache) Misses() int { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.misses }

// Coalesced reports requests that waited on an in-flight production.
func (rc *ResultCache) Coalesced() int { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.coalesced }

// Evictions reports completed entries dropped to stay within budget.
func (rc *ResultCache) Evictions() int { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.evictions }

// Produced reports how many times the cache actually ran a simulation —
// the "exactly one simulation per distinct key" number. Persistent-tier
// loads don't count.
func (rc *ResultCache) Produced() int { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.produced }

// StoreHits reports misses served by the persistent tier without a run.
func (rc *ResultCache) StoreHits() int { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.storeHits }

// Len reports the number of completed entries resident in memory.
func (rc *ResultCache) Len() int { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.lru.Len() }

// SizeBytes reports the total bytes of completed entries in memory.
func (rc *ResultCache) SizeBytes() int64 { rc.mu.Lock(); defer rc.mu.Unlock(); return rc.bytes }

// init lazily readies the maps so a zero-value ResultCache works.
func (rc *ResultCache) init() {
	if rc.entries == nil {
		rc.entries = map[string]*resultEntry{}
	}
	if rc.lru == nil {
		rc.lru = list.New()
	}
}

// Serve writes the finished NDJSON stream for req to w. A hit writes
// stored bytes; a miss runs produce exactly once per key across all
// concurrent callers, streaming its output to w as it is generated
// while teeing a copy for the cache. onResult (may be nil) is forwarded
// to produce so the producer's per-result callbacks (HTTP flushes,
// error trailers) still fire; waiters served from stored bytes get no
// callbacks — the stream is already complete when they write it.
//
// The producer's context governs the production; a cancelled waiter
// returns early while the run continues for whoever still wants it.
func (rc *ResultCache) Serve(ctx context.Context, req api.ExperimentRequest, w io.Writer, onResult func(Result), produce func(io.Writer, func(Result)) error) error {
	canonical, key := resultKey(req)
	reg := obs.Default().Sub("engine").Sub("result_cache")

	rc.mu.Lock()
	rc.init()
	if e, ok := rc.entries[key]; ok {
		if e.elem != nil {
			// Completed entry: serve stored bytes.
			rc.lru.MoveToFront(e.elem)
			rc.hits++
			rc.mu.Unlock()
			reg.Counter("hits").Inc()
			_, err := w.Write(e.data)
			return err
		}
		// In flight: wait for the producer, then serve its bytes.
		rc.coalesced++
		rc.mu.Unlock()
		reg.Counter("coalesced").Inc()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return ctx.Err()
		}
		if e.err != nil {
			return e.err
		}
		_, err := w.Write(e.data)
		return err
	}
	e := &resultEntry{key: key, canonical: canonical, ready: make(chan struct{})}
	rc.entries[key] = e
	rc.misses++
	rc.mu.Unlock()
	reg.Counter("misses").Inc()

	// Persistent tier: a stored stream is promoted into memory and
	// served without a run.
	if data, ok := rc.loadStored(canonical, key); ok {
		rc.mu.Lock()
		rc.storeHits++
		rc.mu.Unlock()
		reg.Counter("store_hits").Inc()
		rc.complete(e, data, false)
		_, err := w.Write(data)
		return err
	}

	rc.mu.Lock()
	rc.produced++
	rc.mu.Unlock()
	reg.Counter("produced").Inc()

	// Run the simulation, streaming to the caller while buffering the
	// bytes for the cache. A result-level error (Result.Err) poisons the
	// stream for caching even when the writer never failed.
	var buf bytes.Buffer
	failed := false
	cb := func(r Result) {
		if r.Err != nil {
			failed = true
		}
		if onResult != nil {
			onResult(r)
		}
	}
	err := produce(io.MultiWriter(w, &buf), cb)
	if err != nil || failed || ctx.Err() != nil {
		if err == nil {
			err = ctx.Err()
		}
		e.err = err
		if e.err == nil {
			// A per-result failure with a healthy stream: the bytes went
			// out (with the caller's error trailer), but they describe a
			// failed run and must not be replayed to future clients.
			e.err = fmt.Errorf("engine: result stream not cacheable: a result failed")
		}
		rc.mu.Lock()
		delete(rc.entries, key)
		rc.mu.Unlock()
		close(e.ready)
		return e.err
	}
	rc.complete(e, buf.Bytes(), true)
	return nil
}

// complete publishes a finished entry: installs it in the LRU, evicts
// over budget, wakes waiters, and (for fresh productions) writes the
// persistent tier back.
func (rc *ResultCache) complete(e *resultEntry, data []byte, save bool) {
	reg := obs.Default().Sub("engine").Sub("result_cache")
	e.data = data
	rc.mu.Lock()
	e.elem = rc.lru.PushFront(e)
	rc.bytes += int64(len(data))
	maxEntries, maxBytes := rc.MaxEntries, rc.MaxBytes
	if maxEntries == 0 {
		maxEntries = defaultResultMaxEntries
	}
	if maxBytes == 0 {
		maxBytes = defaultResultMaxBytes
	}
	evicted := 0
	for rc.lru.Len() > 1 &&
		((maxEntries > 0 && rc.lru.Len() > maxEntries) ||
			(maxBytes > 0 && rc.bytes > maxBytes)) {
		back := rc.lru.Back()
		v := back.Value.(*resultEntry)
		rc.lru.Remove(back)
		delete(rc.entries, v.key)
		rc.bytes -= int64(len(v.data))
		rc.evictions++
		evicted++
	}
	rc.mu.Unlock()
	for i := 0; i < evicted; i++ {
		reg.Counter("evictions").Inc()
	}
	close(e.ready)
	if save && rc.Dir != "" {
		// Best effort: an unwritable store degrades to cold repeats, not
		// failures.
		if rc.saveStored(e.canonical, e.key, data) == nil {
			reg.Counter("store_saves").Inc()
		}
	}
}

// resultMagic begins every persistent entry: "TXRESULT" then format
// version 1.
var resultMagic = [9]byte{'T', 'X', 'R', 'E', 'S', 'U', 'L', 'T', 1}

// File layout after the magic, little-endian, mirroring the trace
// store:
//
//	uint32   key length    (echo of the canonical key string)
//	string   canonical key
//	uint64   payload length in bytes
//	[32]byte SHA-256 of payload
//	bytes    payload (the finished NDJSON stream)

// maxResultKeyLen bounds the untrusted key-length field on load.
const maxResultKeyLen = 1 << 20

// storedPath returns the persistent entry filename for a key hash.
func (rc *ResultCache) storedPath(hash string) string {
	return filepath.Join(rc.Dir, hash+".result")
}

// loadStored reads and verifies one persistent entry; any damaged entry
// is deleted and reported as a miss.
func (rc *ResultCache) loadStored(canonical, hash string) ([]byte, bool) {
	if rc.Dir == "" {
		return nil, false
	}
	data, err := rc.loadStoredVerified(canonical, hash)
	if err != nil {
		if !os.IsNotExist(err) {
			obs.Default().Sub("engine").Sub("result_cache").Counter("corrupt").Inc()
			// Present but unusable: remove it so the next save starts
			// clean. Removal failure is irrelevant — it stays a miss.
			os.Remove(rc.storedPath(hash))
		}
		return nil, false
	}
	return data, true
}

func (rc *ResultCache) loadStoredVerified(canonical, hash string) ([]byte, error) {
	raw, err := os.ReadFile(rc.storedPath(hash))
	if err != nil {
		return nil, err
	}
	if len(raw) < len(resultMagic)+4 {
		return nil, fmt.Errorf("engine: result entry shorter than header")
	}
	if !bytes.Equal(raw[:len(resultMagic)], resultMagic[:]) {
		return nil, fmt.Errorf("engine: bad result entry magic %q", raw[:len(resultMagic)])
	}
	raw = raw[len(resultMagic):]
	keyLen := binary.LittleEndian.Uint32(raw[:4])
	raw = raw[4:]
	if keyLen > maxResultKeyLen || uint64(len(raw)) < uint64(keyLen)+40 {
		return nil, fmt.Errorf("engine: result entry truncated in header")
	}
	if string(raw[:keyLen]) != canonical {
		return nil, fmt.Errorf("engine: result entry key mismatch")
	}
	raw = raw[keyLen:]
	payloadLen := binary.LittleEndian.Uint64(raw[:8])
	var sum [32]byte
	copy(sum[:], raw[8:40])
	raw = raw[40:]
	if uint64(len(raw)) != payloadLen {
		return nil, fmt.Errorf("engine: result payload is %d bytes, header says %d", len(raw), payloadLen)
	}
	if sha256.Sum256(raw) != sum {
		return nil, fmt.Errorf("engine: result payload checksum mismatch")
	}
	return raw, nil
}

// saveStored writes one persistent entry atomically (temp file +
// rename), so a reader never observes a partial entry and racing
// writers each install a complete one.
func (rc *ResultCache) saveStored(canonical, hash string, data []byte) error {
	hdr := make([]byte, 0, len(resultMagic)+4+len(canonical)+40)
	hdr = append(hdr, resultMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(canonical)))
	hdr = append(hdr, canonical...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(data)))
	sum := sha256.Sum256(data)
	hdr = append(hdr, sum[:]...)

	f, err := os.CreateTemp(rc.Dir, hash+".tmp-*")
	if err != nil {
		return fmt.Errorf("engine: saving result entry: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(hdr); err == nil {
		_, err = f.Write(data)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, rc.storedPath(hash))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: saving result entry: %w", err)
	}
	return nil
}
