// Pareto frontier of the design space — miss rate against the hardware
// cost of each cache organization — and the lossless pruner that lets a
// grid run skip provably dominated design points before replaying them.
//
// The pruner's soundness argument: a unit c (trace t, config with cost
// cost(c)) may be skipped only when some already-measured point f on the
// same trace has cost(f) < cost(c) strictly AND missRate(f) <= lb(c),
// where lb(c) is a provable lower bound on c's miss rate:
//
//   - the compulsory floor: cold misses are first touches of a line,
//     which depend only on the line size, not on capacity or
//     associativity — so any measured point at c's line size gives
//     missRate(c) >= cold/accesses;
//   - LRU inclusion: at a fixed line size and set count, an LRU cache
//     with more ways holds a superset of every set's stack (Mattson), so
//     a measured LRU point q with the same sets/line and >= ways gives
//     missRate(c) >= missRate(q).
//
// Every skipped point is then strictly dominated by a measured point, so
// the frontier of measured points equals the frontier of the full grid:
// if a skipped s had displaced a frontier point p, the f that dominated s
// (cost(f) < cost(s), miss(f) <= miss(s)) would itself dominate p —
// contradiction. Ties are never skipped (the cost comparison is strict),
// so exact-tie frontier members always get measured.
package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"texcache/internal/api"
	"texcache/internal/cache"
)

// Point is one measured design point: a (trace, config) unit with its
// replay statistics and hardware cost.
type Point struct {
	// Trace is the owning trace group's content key.
	Trace string
	// Unit is the unit's Tag (global index + content key).
	Unit string
	// Label is the configuration's display string ("32KB 2-way 128B
	// lines"); rows and frontier output carry it verbatim.
	Label string
	// Config is the cache organization; zero-valued on points parsed
	// back from an output stream (the frontier needs only the numbers).
	Config cache.Config
	// Accesses, Misses and Cold are the replay's integer statistics —
	// kept as integers so the miss rate recomputes identically on every
	// path (worker, coordinator, collector).
	Accesses, Misses, Cold uint64
	// Cost is the configuration's hardware cost (cost.ConfigCost).
	Cost int64
}

// MissRate returns Misses/Accesses, 0 for an empty trace — the same
// arithmetic cache.Stats.MissRate performs, so rates agree bit-for-bit.
func (p Point) MissRate() float64 {
	if p.Accesses == 0 {
		return 0
	}
	return float64(p.Misses) / float64(p.Accesses)
}

// dominates reports whether a strictly dominates b in (miss rate, cost):
// no worse on both axes, strictly better on at least one.
func dominates(a, b Point) bool {
	am, bm := a.MissRate(), b.MissRate()
	if am > bm || a.Cost > b.Cost {
		return false
	}
	return am < bm || a.Cost < b.Cost
}

// Frontier returns the non-dominated subset of pts in canonical order:
// cost ascending, then miss rate, then unit tag. Exact ties on both
// axes are all kept — they are equally good designs.
func Frontier(pts []Point) []Point {
	var out []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		if mi, mj := out[i].MissRate(), out[j].MissRate(); mi != mj {
			return mi < mj
		}
		return out[i].Unit < out[j].Unit
	})
	return out
}

// coldFloor is the compulsory-miss floor observed for one line size on
// one trace.
type coldFloor struct {
	cold, accesses uint64
}

// traceState is the pruner's per-trace view: measured points plus the
// cold floor per line size.
type traceState struct {
	points []Point
	cold   map[int]coldFloor
}

// Pruner accumulates measured design points per trace and answers
// "provably dominated?" queries with the lossless bounds documented at
// the top of the file. It is safe for concurrent use by the engine's
// trace-group workers; prune decisions stay deterministic because all
// bounds are per-trace and each trace's units replay sequentially on
// one goroutine.
//
// With AttachFile, measured points also persist to an append-only
// NDJSON file and prior runs' points are loaded at start — so a re-run
// (or a coordinator's workers sharing the file) skips points the
// earlier measurements already dominate.
type Pruner struct {
	mu      sync.Mutex
	byTrace map[string]*traceState
	file    *os.File
	skipped int
}

// NewPruner returns an empty pruner.
func NewPruner() *Pruner {
	return &Pruner{byTrace: map[string]*traceState{}}
}

// filePoint is the frontier file's NDJSON line: a Point with the config
// in wire form so it round-trips through api.CacheConfig.
type filePoint struct {
	Trace    string          `json:"trace"`
	Unit     string          `json:"unit"`
	Label    string          `json:"label"`
	Config   api.CacheConfig `json:"config"`
	Accesses uint64          `json:"accesses"`
	Misses   uint64          `json:"misses"`
	Cold     uint64          `json:"cold"`
	Cost     int64           `json:"cost"`
}

// AttachFile loads any points already recorded in path and opens it for
// appending, creating it if needed. Malformed lines (a torn tail from a
// killed run) are skipped, not fatal.
func (p *Pruner) AttachFile(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("shard: frontier file: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var fp filePoint
		if err := json.Unmarshal([]byte(line), &fp); err != nil {
			continue
		}
		cfg, err := fp.Config.Cache()
		if err != nil {
			continue
		}
		p.record(Point{
			Trace: fp.Trace, Unit: fp.Unit, Label: fp.Label, Config: cfg,
			Accesses: fp.Accesses, Misses: fp.Misses, Cold: fp.Cold, Cost: fp.Cost,
		}, false)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return fmt.Errorf("shard: frontier file: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("shard: frontier file: %w", err)
	}
	p.mu.Lock()
	p.file = f
	p.mu.Unlock()
	return nil
}

// Close releases the frontier file, if attached.
func (p *Pruner) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	err := p.file.Close()
	p.file = nil
	return err
}

// Observe records one measured point, appending it to the frontier file
// when attached (best effort: a full disk degrades persistence, not the
// run).
func (p *Pruner) Observe(pt Point) {
	p.record(pt, true)
}

// record is Observe plus the load path (which must not re-append).
func (p *Pruner) record(pt Point, persist bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.byTrace[pt.Trace]
	if t == nil {
		t = &traceState{cold: map[int]coldFloor{}}
		p.byTrace[pt.Trace] = t
	}
	t.points = append(t.points, pt)
	if pt.Config.LineBytes > 0 && pt.Accesses > 0 {
		if _, ok := t.cold[pt.Config.LineBytes]; !ok {
			t.cold[pt.Config.LineBytes] = coldFloor{cold: pt.Cold, accesses: pt.Accesses}
		}
	}
	if persist && p.file != nil {
		line, err := json.Marshal(filePoint{
			Trace: pt.Trace, Unit: pt.Unit, Label: pt.Label,
			Config: api.CacheConfig{
				SizeBytes: pt.Config.SizeBytes, LineBytes: pt.Config.LineBytes,
				Ways: pt.Config.Ways, Policy: strings.ToLower(pt.Config.Policy.String()),
			},
			Accesses: pt.Accesses, Misses: pt.Misses, Cold: pt.Cold, Cost: pt.Cost,
		})
		if err == nil {
			_, _ = p.file.Write(append(line, '\n'))
		}
	}
}

// effectiveWays resolves the fully associative shorthand (Ways 0) to the
// actual way count for inclusion comparisons.
func effectiveWays(c cache.Config) int {
	if c.Ways == 0 {
		return c.NumLines()
	}
	return c.Ways
}

// Dominated reports whether the (traceKey, cfg, cost) unit is provably
// strictly dominated by an already-measured point on the same trace,
// returning that point's label for the skip note. The bounds are
// documented at the top of the file; when no sound lower bound exists
// yet for cfg's line size, the unit is never skipped.
func (p *Pruner) Dominated(traceKey string, cfg cache.Config, cost int64) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.byTrace[traceKey]
	if t == nil {
		return "", false
	}
	lb := -1.0
	if f, ok := t.cold[cfg.LineBytes]; ok && f.accesses > 0 {
		lb = float64(f.cold) / float64(f.accesses)
	}
	if cfg.Policy == cache.LRU {
		sets, ways := cfg.NumSets(), effectiveWays(cfg)
		for _, q := range t.points {
			if q.Config.Policy == cache.LRU && q.Config.LineBytes == cfg.LineBytes &&
				q.Config.NumSets() == sets && effectiveWays(q.Config) >= ways {
				if mr := q.MissRate(); mr > lb {
					lb = mr
				}
			}
		}
	}
	if lb < 0 {
		return "", false
	}
	for _, q := range t.points {
		if q.Cost < cost && q.MissRate() <= lb {
			p.skipped++
			return q.Label, true
		}
	}
	return "", false
}

// Skipped reports how many Dominated queries answered true — the
// pruner's own count of configs never replayed.
func (p *Pruner) Skipped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.skipped
}
