// Package shard partitions a design-space grid into deterministic,
// content-addressed work units so the exploration can be split across
// worker processes and merged back together bit-identically.
//
// Enumerate expands an api.Grid cross-product into trace groups — one
// per (scene, scale, layout, traversal) — each carrying its (trace,
// config) units in a stable global order. Both groups and units are
// content-addressed: their keys hash the fully resolved identity, so a
// grid that spells a default out explicitly keys identically to one
// that leaves it blank, and any change that would alter the simulated
// stream changes the key.
//
// Sharding is trace-affine: Assigned hands worker i of n every group
// whose index is congruent to i mod n, all of a trace's configs
// together. That guarantees each trace is rendered exactly once
// machine-wide (no two workers ever want the same render) and keeps the
// Pareto pruner's per-trace reasoning deterministic regardless of how
// many workers run.
//
// The other half of the package reassembles results: Collector parses
// the engine's grid NDJSON rows back into measured points, MergeStreams
// k-way merges per-shard streams into the canonical unsharded order,
// and pareto.go computes (and prunes against) the miss-rate/cost
// frontier.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"texcache/internal/api"
	"texcache/internal/cache"
	"texcache/internal/exp"
	"texcache/internal/raster"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

// Slice identifies one worker's share of a grid: the trace groups with
// Index ≡ Index (mod Count). The zero Count is invalid; {0, 1} is the
// whole grid.
type Slice struct {
	Index, Count int
}

// Unit is one (trace, config) design point: the atom of grid work.
type Unit struct {
	// Index is the unit's position in the whole grid's enumeration,
	// counted across all trace groups.
	Index int
	// Key is the 12-hex-digit content hash of the fully resolved
	// (scene, scale, layout, traversal, config) identity.
	Key string
	// Config is the cache organization this unit replays.
	Config cache.Config
}

// Tag renders the unit's stable identity for output rows: global index
// plus content key, e.g. "u00007-3f2a90c1d44e".
func (u Unit) Tag() string { return fmt.Sprintf("u%05d-%s", u.Index, u.Key) }

// TraceGroup is every unit sharing one rendered trace, the granule of
// shard assignment and of engine scheduling.
type TraceGroup struct {
	// Index is the group's position in the grid's trace enumeration.
	Index int
	// Key is the 12-hex-digit content hash of the resolved trace
	// identity (scene, scale, layout, traversal).
	Key string
	// Scale is the resolution divisor this group renders at.
	Scale int
	// TK is the render key the trace provider consumes.
	TK exp.TraceKey
	// Units are the group's design points, in grid config order.
	Units []Unit
}

// Tag renders the group's stable identity, e.g. "t00003-9c41bb07e2aa";
// every NDJSON line of the group is stamped with it, which is what the
// stream merge orders by.
func (g TraceGroup) Tag() string { return fmt.Sprintf("t%05d-%s", g.Index, g.Key) }

// ParseTraceTag recovers the global trace index from a Tag rendering.
func ParseTraceTag(tag string) (int, error) {
	var idx int
	var key string
	if _, err := fmt.Sscanf(tag, "t%05d-%s", &idx, &key); err != nil || idx < 0 {
		return 0, fmt.Errorf("shard: malformed trace tag %q", tag)
	}
	return idx, nil
}

// contentKey hashes a canonical identity rendering to the 12-hex-digit
// short form used in tags and store-style keys.
func contentKey(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:6])
}

// Enumerate expands the grid into trace groups in the canonical order:
// scenes x scales x layouts x traversals as written (trace-major), the
// config list innermost. Empty axes take their defaults — all benchmark
// scenes, the given request scale, the paper's blocked 8x8 layout, each
// scene's reported scan direction. The grid must already have passed
// api.Validate; resolution errors (which Validate would have caught)
// are returned as-is.
func Enumerate(g api.Grid, scale int) ([]TraceGroup, error) {
	sceneList := g.Scenes
	if len(sceneList) == 0 {
		sceneList = scenes.Names()
	}
	if scale < 1 {
		scale = api.DefaultScale
	}
	scales := g.Scales
	if len(scales) == 0 {
		scales = []int{scale}
	}
	layouts := make([]texture.LayoutSpec, 0, 1)
	if len(g.Layouts) == 0 {
		layouts = append(layouts, texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8})
	} else {
		for _, l := range g.Layouts {
			spec, err := l.Spec()
			if err != nil {
				return nil, err
			}
			layouts = append(layouts, spec)
		}
	}
	configs := make([]cache.Config, 0, len(g.Configs))
	for _, wire := range g.Configs {
		cfg, err := wire.Cache()
		if err != nil {
			return nil, err
		}
		configs = append(configs, cfg)
	}

	var groups []TraceGroup
	unitIdx := 0
	for _, scene := range sceneList {
		for _, sc := range scales {
			for _, layout := range layouts {
				// The traversal default is per-scene, so it resolves
				// inside the scene loop.
				traversals := make([]raster.Traversal, 0, 1)
				if len(g.Traversals) == 0 {
					traversals = append(traversals, exp.DefaultTraversalFor(scene))
				} else {
					for _, wire := range g.Traversals {
						t, err := wire.Raster()
						if err != nil {
							return nil, err
						}
						traversals = append(traversals, t)
					}
				}
				for _, trav := range traversals {
					tk := exp.TraceKey{Scene: scene, Layout: layout, Traversal: trav}
					traceID := fmt.Sprintf("%s|%d|%+v|%+v", scene, sc, layout, trav)
					grp := TraceGroup{
						Index: len(groups),
						Key:   contentKey(traceID),
						Scale: sc,
						TK:    tk,
						Units: make([]Unit, 0, len(configs)),
					}
					for _, cfg := range configs {
						grp.Units = append(grp.Units, Unit{
							Index:  unitIdx,
							Key:    contentKey(traceID + fmt.Sprintf("|%+v", cfg)),
							Config: cfg,
						})
						unitIdx++
					}
					groups = append(groups, grp)
				}
			}
		}
	}
	return groups, nil
}

// Assigned filters groups down to the slice's share: trace-affine
// modulo assignment, preserving enumeration order. A Slice of {0, 1}
// returns groups unchanged.
func Assigned(groups []TraceGroup, s Slice) []TraceGroup {
	if s.Count <= 1 {
		return groups
	}
	out := make([]TraceGroup, 0, (len(groups)+s.Count-1)/s.Count)
	for _, g := range groups {
		if g.Index%s.Count == s.Index {
			out = append(out, g)
		}
	}
	return out
}
