package shard

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"texcache/internal/api"
	"texcache/internal/cache"
	"texcache/internal/scenes"
	"texcache/internal/texture"
)

func twoConfigGrid() api.Grid {
	return api.Grid{
		Scenes: []string{"town", "flight"},
		Scales: []int{4},
		Configs: []api.CacheConfig{
			{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1},
			{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2},
		},
	}
}

// TestEnumerate pins the canonical enumeration: order, indices, scales
// and unit counts.
func TestEnumerate(t *testing.T) {
	groups, err := Enumerate(twoConfigGrid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("Enumerate = %d groups, want 2", len(groups))
	}
	wantScenes := []string{"town", "flight"}
	unitIdx := 0
	for i, g := range groups {
		if g.Index != i {
			t.Errorf("group %d Index = %d", i, g.Index)
		}
		if g.TK.Scene != wantScenes[i] {
			t.Errorf("group %d scene = %q, want %q", i, g.TK.Scene, wantScenes[i])
		}
		if g.Scale != 4 {
			t.Errorf("group %d Scale = %d, want grid scale 4", i, g.Scale)
		}
		if len(g.Units) != 2 {
			t.Fatalf("group %d has %d units, want 2", i, len(g.Units))
		}
		for _, u := range g.Units {
			if u.Index != unitIdx {
				t.Errorf("unit Index = %d, want %d (global, trace-major)", u.Index, unitIdx)
			}
			unitIdx++
		}
	}
}

// TestEnumerateDeterministic pins that enumeration is a pure function of
// the grid: two calls agree exactly, including content keys.
func TestEnumerateDeterministic(t *testing.T) {
	a, err := Enumerate(twoConfigGrid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(twoConfigGrid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Enumerate is not deterministic across calls")
	}
}

// TestEnumerateDefaults pins the default axes — all scenes, request
// scale, blocked 8x8, per-scene traversal — and that spelling the layout
// default out explicitly produces identical content keys.
func TestEnumerateDefaults(t *testing.T) {
	minimal := api.Grid{Configs: []api.CacheConfig{{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1}}}
	groups, err := Enumerate(minimal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(scenes.Names()) {
		t.Fatalf("default grid = %d groups, want one per scene (%d)", len(groups), len(scenes.Names()))
	}
	for i, g := range groups {
		if g.TK.Scene != scenes.Names()[i] {
			t.Errorf("group %d scene = %q, want %q", i, g.TK.Scene, scenes.Names()[i])
		}
		if g.Scale != api.DefaultScale {
			t.Errorf("group %d Scale = %d, want DefaultScale %d", i, g.Scale, api.DefaultScale)
		}
		if g.TK.Layout != (texture.LayoutSpec{Kind: texture.BlockedKind, BlockW: 8}) {
			t.Errorf("group %d layout = %+v, want blocked 8x8", i, g.TK.Layout)
		}
	}

	explicit := minimal
	explicit.Layouts = []api.Layout{{Kind: "blocked", BlockW: 8}}
	eg, err := Enumerate(explicit, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range groups {
		if eg[i].Key != groups[i].Key {
			t.Errorf("explicit blocked-8x8 key %q != default key %q: content addressing must resolve defaults", eg[i].Key, groups[i].Key)
		}
		if eg[i].Units[0].Key != groups[i].Units[0].Key {
			t.Errorf("unit keys differ between explicit and default layout spelling")
		}
	}
}

// TestAssigned pins the trace-affine modulo partition: slices are
// disjoint, cover everything, preserve order, and {i, 1} is the whole
// grid.
func TestAssigned(t *testing.T) {
	groups := make([]TraceGroup, 7)
	for i := range groups {
		groups[i] = TraceGroup{Index: i, Key: fmt.Sprintf("%012x", i)}
	}
	if got := Assigned(groups, Slice{Index: 0, Count: 1}); len(got) != len(groups) {
		t.Errorf("Slice{0,1} = %d groups, want all %d", len(got), len(groups))
	}
	const n = 3
	seen := map[int]int{}
	for i := 0; i < n; i++ {
		part := Assigned(groups, Slice{Index: i, Count: n})
		last := -1
		for _, g := range part {
			if g.Index%n != i {
				t.Errorf("slice %d got group %d", i, g.Index)
			}
			if g.Index <= last {
				t.Errorf("slice %d out of order: %d after %d", i, g.Index, last)
			}
			last = g.Index
			seen[g.Index]++
		}
	}
	for i := range groups {
		if seen[i] != 1 {
			t.Errorf("group %d assigned %d times, want exactly once", i, seen[i])
		}
	}
}

// TestTraceTags pins the tag rendering and its parse inverse.
func TestTraceTags(t *testing.T) {
	g := TraceGroup{Index: 3, Key: "9c41bb07e2aa"}
	if g.Tag() != "t00003-9c41bb07e2aa" {
		t.Errorf("Tag = %q", g.Tag())
	}
	idx, err := ParseTraceTag(g.Tag())
	if err != nil || idx != 3 {
		t.Errorf("ParseTraceTag(%q) = %d, %v", g.Tag(), idx, err)
	}
	u := Unit{Index: 7, Key: "3f2a90c1d44e"}
	if u.Tag() != "u00007-3f2a90c1d44e" {
		t.Errorf("unit Tag = %q", u.Tag())
	}
	for _, bad := range []string{"", "pareto", "x00003-9c41bb07e2aa", "t-1"} {
		if _, err := ParseTraceTag(bad); err == nil {
			t.Errorf("ParseTraceTag(%q) = nil error", bad)
		}
	}
}

// TestFrontier pins the non-dominated filter: dominated points drop,
// exact ties survive, output is cost-sorted.
func TestFrontier(t *testing.T) {
	pt := func(unit string, miss, acc uint64, cost int64) Point {
		return Point{Trace: "t", Unit: unit, Misses: miss, Accesses: acc, Cost: cost}
	}
	pts := []Point{
		pt("a", 50, 1000, 100), // frontier: cheapest
		pt("b", 30, 1000, 200), // frontier: cheaper than c, worse miss
		pt("c", 10, 1000, 400), // frontier: best miss
		pt("d", 40, 1000, 300), // dominated by b (less cost, fewer misses)
		pt("e", 30, 1000, 200), // exact tie with b: kept
		pt("f", 50, 1000, 150), // dominated by a on cost at equal miss
	}
	f := Frontier(pts)
	var units []string
	for _, p := range f {
		units = append(units, p.Unit)
	}
	if got := strings.Join(units, ","); got != "a,b,e,c" {
		t.Errorf("Frontier = %s, want a,b,e,c", got)
	}
}

// TestPrunerBounds drives both lower bounds: the cold floor shared by
// every config at a line size, and LRU stack inclusion.
func TestPrunerBounds(t *testing.T) {
	p := NewPruner()
	cheap := cache.Config{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1, Policy: cache.LRU}
	big := cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, Policy: cache.LRU}

	// Nothing measured: never prune.
	if label, ok := p.Dominated("tr", big, 9999); ok {
		t.Fatalf("empty pruner pruned against %q", label)
	}

	// The cheap config measured at the compulsory floor (misses == cold)
	// makes every strictly costlier config at that line size dominated.
	p.Observe(Point{
		Trace: "tr", Unit: "u00000-abc", Label: cheap.String(), Config: cheap,
		Accesses: 1000, Misses: 100, Cold: 100, Cost: 500,
	})
	if _, ok := p.Dominated("tr", big, 9999); !ok {
		t.Error("costlier config not pruned against a compulsory-floor measurement")
	}
	// Equal cost is never pruned: the comparison is strict.
	if _, ok := p.Dominated("tr", big, 500); ok {
		t.Error("equal-cost config pruned; ties must be measured")
	}
	// A different line size has no floor yet, so no bound applies to a
	// non-LRU config there.
	other := cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 2, Policy: cache.FIFO}
	if _, ok := p.Dominated("tr", other, 9999); ok {
		t.Error("config at unmeasured line size pruned without a sound bound")
	}
	// Different trace: bounds never cross traces.
	if _, ok := p.Dominated("other-trace", big, 9999); ok {
		t.Error("bounds leaked across traces")
	}

	// LRU inclusion: a measured 4-way point lower-bounds a candidate with
	// the same sets/line and fewer ways, even above the cold floor.
	p2 := NewPruner()
	measured := cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, Policy: cache.LRU}
	p2.Observe(Point{
		Trace: "tr", Unit: "u00000-abc", Label: measured.String(), Config: measured,
		Accesses: 1000, Misses: 300, Cold: 100, Cost: 500,
	})
	// Same sets (64), fewer ways: missRate >= 30% is a valid bound, and
	// the measured point (cost 500 < 600, 30% <= 30%) dominates.
	cand := cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2, Policy: cache.LRU}
	if cand.NumSets() != measured.NumSets() {
		t.Fatalf("test setup: sets %d vs %d", cand.NumSets(), measured.NumSets())
	}
	if _, ok := p2.Dominated("tr", cand, 600); !ok {
		t.Error("LRU inclusion bound not applied")
	}
	// The same candidate under FIFO has no inclusion property; only the
	// 10% cold floor applies, which the 30% measurement doesn't reach.
	fifoCand := cand
	fifoCand.Policy = cache.FIFO
	if _, ok := p2.Dominated("tr", fifoCand, 600); ok {
		t.Error("inclusion bound wrongly applied to a non-LRU candidate")
	}
	if p2.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", p2.Skipped())
	}
}

// TestPrunerFileRoundTrip pins the frontier file: points observed by one
// pruner are loaded by the next, malformed tail lines are skipped.
func TestPrunerFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frontier.ndjson")
	cheap := cache.Config{SizeBytes: 2 << 10, LineBytes: 64, Ways: 1, Policy: cache.LRU}

	p := NewPruner()
	if err := p.AttachFile(path); err != nil {
		t.Fatal(err)
	}
	p.Observe(Point{
		Trace: "tr", Unit: "u00000-abc", Label: cheap.String(), Config: cheap,
		Accesses: 1000, Misses: 100, Cold: 100, Cost: 500,
	})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn tail from a killed run.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trace":"tr","unit":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2 := NewPruner()
	if err := p2.AttachFile(path); err != nil {
		t.Fatalf("AttachFile with torn tail: %v", err)
	}
	defer p2.Close()
	big := cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, Policy: cache.LRU}
	if label, ok := p2.Dominated("tr", big, 9999); !ok || label != cheap.String() {
		t.Errorf("reloaded pruner Dominated = %q, %v; want dominated by %q", label, ok, cheap.String())
	}
}

// TestCollectorAndMerge feeds hand-built worker streams through the
// collector and merge: canonical order out, duplicate and missing
// groups rejected.
func TestCollectorAndMerge(t *testing.T) {
	row := func(trace string, unit string, miss, acc float64, cost int64) string {
		return fmt.Sprintf(`{"exp":%q,"type":"row","table":"grid","values":[%q,"cfg",%g,%g,%g,10,0,0,%d]}`,
			trace, unit, 100*miss/acc, acc, miss, cost)
	}
	t0, t1, t2 := "t00000-aaaaaaaaaaaa", "t00001-bbbbbbbbbbbb", "t00002-cccccccccccc"
	// Worker 0 owns groups 0 and 2; worker 1 owns group 1.
	w0 := row(t0, "u00000-x", 50, 1000, 100) + "\n" + row(t2, "u00004-x", 10, 1000, 300) + "\n"
	w1 := row(t1, "u00002-x", 30, 1000, 200) + "\n"

	var buf bytes.Buffer
	col := NewCollector()
	w := io.MultiWriter(&buf, col)
	if err := MergeStreams(w, []io.Reader{strings.NewReader(w0), strings.NewReader(w1)}, 3); err != nil {
		t.Fatal(err)
	}
	want := row(t0, "u00000-x", 50, 1000, 100) + "\n" + row(t1, "u00002-x", 30, 1000, 200) + "\n" + row(t2, "u00004-x", 10, 1000, 300) + "\n"
	if buf.String() != want {
		t.Errorf("merged stream:\n%s\nwant:\n%s", buf.String(), want)
	}
	if got := strings.Join(col.Traces(), ","); got != t0+","+t1+","+t2 {
		t.Errorf("collector traces = %s", got)
	}
	if pts := col.Points(t1); len(pts) != 1 || pts[0].Misses != 30 || pts[0].Cost != 200 {
		t.Errorf("collector points for %s = %+v", t1, pts)
	}

	// Duplicate group: both streams claim group 0.
	err := MergeStreams(io.Discard, []io.Reader{strings.NewReader(w0), strings.NewReader(w0)}, 3)
	if err == nil || !strings.Contains(err.Error(), "more than one stream") {
		t.Errorf("duplicate merge error = %v", err)
	}
	// Missing group: expected 3, got 2.
	err = MergeStreams(io.Discard, []io.Reader{strings.NewReader(w0)}, 3)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing-group merge error = %v", err)
	}
	// Count mismatch at the tail.
	err = MergeStreams(io.Discard, []io.Reader{strings.NewReader(w0), strings.NewReader(w1)}, 4)
	if err == nil || !strings.Contains(err.Error(), "want 4") {
		t.Errorf("count mismatch merge error = %v", err)
	}
}

// TestCollectorFrontierOutput pins the appended frontier lines: stamped
// "exp":"pareto", per trace in stream order, dominated rows absent.
func TestCollectorFrontierOutput(t *testing.T) {
	col := NewCollector()
	rows := []string{
		`{"exp":"t00000-aaaaaaaaaaaa","type":"note","text":"ignored"}`,
		`{"exp":"t00000-aaaaaaaaaaaa","type":"row","table":"grid","values":["u00000-x","cheap",5,1000,50,10,0,0,100]}`,
		`{"exp":"t00000-aaaaaaaaaaaa","type":"row","table":"grid","values":["u00001-x","dominated",5,1000,50,10,0,0,200]}`,
		`{"exp":"t00000-aaaaaaaaaaaa","type":"row","table":"grid","values":["u00002-x","best",1,1000,10,10,0,0,400]}`,
	}
	if _, err := col.Write([]byte(strings.Join(rows, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := col.WriteFrontier(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `"exp":"pareto"`) {
		t.Errorf("frontier output not stamped pareto:\n%s", s)
	}
	if !strings.Contains(s, `"u00000-x"`) || !strings.Contains(s, `"u00002-x"`) {
		t.Errorf("frontier missing non-dominated units:\n%s", s)
	}
	if strings.Contains(s, `"u00001-x"`) {
		t.Errorf("dominated unit leaked into frontier:\n%s", s)
	}
}
