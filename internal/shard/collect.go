// Reassembly of grid output: Collector parses the engine's NDJSON grid
// rows back into measured points (to recompute the Pareto frontier from
// the exact bytes a run emitted), and MergeStreams k-way merges the
// per-shard worker streams back into the canonical unsharded order.
package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"texcache/internal/report"
)

// GridTableID is the report table id of grid result rows.
const GridTableID = "grid"

// FrontierID stamps the frontier lines appended after a full grid view
// ("exp":"pareto"), keeping them distinguishable from per-trace rows.
const FrontierID = "pareto"

// Collector is an io.Writer that parses a grid NDJSON stream as it is
// written, gathering every measured row into per-trace points. Tee the
// run's output through one (io.MultiWriter) and call WriteFrontier to
// append the Pareto frontier computed from exactly the rows emitted.
type Collector struct {
	rest  []byte
	order []string           // trace tags, first-appearance order
	pts   map[string][]Point // rows per trace tag
	err   error
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{pts: map[string][]Point{}}
}

// Write implements io.Writer over the NDJSON stream; partial lines are
// buffered across calls. Parse errors are sticky and surface from
// WriteFrontier, never from Write, so the tee'd stream is undisturbed.
func (c *Collector) Write(p []byte) (int, error) {
	c.rest = append(c.rest, p...)
	for {
		nl := bytes.IndexByte(c.rest, '\n')
		if nl < 0 {
			return len(p), nil
		}
		line := c.rest[:nl]
		c.rest = c.rest[nl+1:]
		if err := c.line(line); err != nil && c.err == nil {
			c.err = err
		}
	}
}

// gridRow is the wire shape of one NDJSON line the collector cares
// about.
type gridRow struct {
	Exp    string `json:"exp"`
	Type   string `json:"type"`
	Table  string `json:"table"`
	Values []any  `json:"values"`
}

// line parses one NDJSON line, keeping grid rows and ignoring notes,
// table headers and other tables.
func (c *Collector) line(b []byte) error {
	if len(bytes.TrimSpace(b)) == 0 {
		return nil
	}
	var row gridRow
	if err := json.Unmarshal(b, &row); err != nil {
		return fmt.Errorf("shard: malformed NDJSON line %q: %w", b, err)
	}
	if row.Type != "row" || row.Table != GridTableID {
		return nil
	}
	// Grid row layout (gridColumns in internal/engine): unit tag,
	// configuration label, miss %, accesses, misses, cold, capacity,
	// conflict, cost.
	if len(row.Values) < 9 {
		return fmt.Errorf("shard: grid row with %d values (want 9): %q", len(row.Values), b)
	}
	unit, _ := row.Values[0].(string)
	label, _ := row.Values[1].(string)
	acc, ok1 := asUint(row.Values[3])
	miss, ok2 := asUint(row.Values[4])
	cold, ok3 := asUint(row.Values[5])
	cost, ok4 := asInt(row.Values[8])
	if unit == "" || !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("shard: grid row values malformed: %q", b)
	}
	if _, seen := c.pts[row.Exp]; !seen {
		c.order = append(c.order, row.Exp)
	}
	c.pts[row.Exp] = append(c.pts[row.Exp], Point{
		Trace: row.Exp, Unit: unit, Label: label,
		Accesses: acc, Misses: miss, Cold: cold, Cost: cost,
	})
	return nil
}

// asUint converts a decoded JSON number to uint64. Counts in grid rows
// are far below 2^53, so the float64 round-trip is exact.
func asUint(v any) (uint64, bool) {
	f, ok := v.(float64)
	if !ok || f < 0 || f != float64(uint64(f)) {
		return 0, false
	}
	return uint64(f), true
}

// asInt converts a decoded JSON number to int64.
func asInt(v any) (int64, bool) {
	f, ok := v.(float64)
	if !ok || f != float64(int64(f)) {
		return 0, false
	}
	return int64(f), true
}

// FrontierColumns lays out the frontier table appended after a full
// grid view: one row per non-dominated design point, grouped by trace.
func FrontierColumns() []report.Column {
	return []report.Column{
		{Name: "Trace", Head: "%-20s", Cell: "%-20s"},
		{Name: "Unit", Head: " %-20s", Cell: " %-20s"},
		{Name: "Configuration", Head: " %-36s", Cell: " %-36s"},
		{Name: "Miss rate", Head: "%10s", Cell: "%9.3f%%"},
		{Name: "Cost", Head: "%12s", Cell: "%12d"},
	}
}

// WriteFrontier appends the Pareto frontier of everything the collector
// saw — per trace, in stream order — as NDJSON lines stamped
// "exp":"pareto". Whoever owns the full grid view calls it (the plain
// single-process run and the coordinator both do, from the same parsed
// rows), which is what keeps their outputs byte-identical.
func (c *Collector) WriteFrontier(w io.Writer) error {
	if c.err != nil {
		return c.err
	}
	j := report.NewJSON(w)
	j.Exp = FrontierID
	j.BeginTable(FrontierID, FrontierColumns())
	for _, tag := range c.order {
		for _, p := range Frontier(c.pts[tag]) {
			j.Row(tag, p.Unit, p.Label, 100*p.MissRate(), p.Cost)
		}
	}
	return j.Err()
}

// Points returns the collected rows for one trace tag (tests use this
// to cross-check frontiers).
func (c *Collector) Points(tag string) []Point { return c.pts[tag] }

// Traces returns the trace tags seen, in stream order.
func (c *Collector) Traces() []string { return c.order }

// Err surfaces any sticky parse error.
func (c *Collector) Err() error { return c.err }

// mergeReader is one worker stream being merged: a scanner plus the
// buffered first line (and parsed trace index) of its current block.
type mergeReader struct {
	sc   *bufio.Scanner
	line []byte
	idx  int
	done bool
}

// advance loads the reader's next line, parsing its trace tag index.
func (m *mergeReader) advance() error {
	if !m.sc.Scan() {
		if err := m.sc.Err(); err != nil {
			return err
		}
		m.done = true
		return nil
	}
	m.line = append(m.line[:0], m.sc.Bytes()...)
	var tagged struct {
		Exp string `json:"exp"`
	}
	if err := json.Unmarshal(m.line, &tagged); err != nil {
		return fmt.Errorf("shard: malformed NDJSON line %q: %w", m.line, err)
	}
	idx, err := ParseTraceTag(tagged.Exp)
	if err != nil {
		return err
	}
	m.idx = idx
	return nil
}

// MergeStreams k-way merges the NDJSON streams of a sharded grid run
// back into canonical order and writes the result to w. Every line of a
// worker stream is stamped with its trace group's tag, and each stream
// carries its blocks in increasing global trace index (StreamNDJSON
// orders by result index), so a classic lookahead merge reconstructs
// the exact single-process byte stream. traces is the expected group
// count (from Enumerate); a missing or duplicated group is an error —
// the coordinator's check that its workers covered the grid exactly.
func MergeStreams(w io.Writer, streams []io.Reader, traces int) error {
	readers := make([]*mergeReader, 0, len(streams))
	for _, s := range streams {
		sc := bufio.NewScanner(s)
		sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
		m := &mergeReader{sc: sc}
		if err := m.advance(); err != nil {
			return err
		}
		if !m.done {
			readers = append(readers, m)
		}
	}
	next := 0
	for len(readers) > 0 {
		best := -1
		for i, m := range readers {
			if best < 0 || m.idx < readers[best].idx {
				best = i
			}
		}
		m := readers[best]
		if m.idx != next {
			if m.idx < next {
				return fmt.Errorf("shard: trace group %d emitted by more than one stream", m.idx)
			}
			return fmt.Errorf("shard: trace group %d missing from merged streams", next)
		}
		cur := m.idx
		for !m.done && m.idx == cur {
			if _, err := w.Write(append(m.line, '\n')); err != nil {
				return err
			}
			if err := m.advance(); err != nil {
				return err
			}
		}
		next++
		if m.done {
			readers = append(readers[:best], readers[best+1:]...)
		}
	}
	if next != traces {
		return fmt.Errorf("shard: merged %d trace groups, want %d", next, traces)
	}
	return nil
}
