// Package trace provides a compact in-memory encoding for texel address
// traces and a persistent content-addressed on-disk store for them.
//
// A rendered frame's address stream is strongly local — texture accesses
// walk nearby texels, so consecutive addresses differ by small signed
// deltas. The Compact encoding exploits that: addresses are zigzag
// delta-encoded as varints in sync blocks of blockLen addresses, where
// each block opens with its first address in absolute form. Against the
// 8 bytes/address of a materialized []uint64 this typically shrinks the
// footprint several-fold, and replay streams block by block straight out
// of the encoded bytes (Compact implements cache.AddrStream), so a sweep
// never materializes the full slice.
package trace

import (
	"encoding/binary"
	"fmt"
	"time"

	"texcache/internal/cache"
	"texcache/internal/obs"
)

// blockLen is the sync-block size in addresses. Each block restarts the
// delta chain with an absolute address, so decoding needs no state older
// than one block and a corrupt tail cannot poison more than blockLen
// decoded addresses before the checksum rejects the file anyway. It
// matches the replay chunk length, so each Cursor.Next decodes exactly
// one block into one buffer.
const blockLen = 1 << 14

// Compact is a delta-encoded texel address trace. The zero value is an
// empty trace; build one with CompactFromTrace or Decode one back into a
// materialized *cache.Trace.
type Compact struct {
	data  []byte // encoded sync blocks, back to back
	count int    // number of encoded addresses
}

// CompactFromTrace encodes a materialized trace. The input is not
// retained.
func CompactFromTrace(t *cache.Trace) *Compact {
	return CompactFromAddrs(t.Addrs)
}

// CompactFromAddrs encodes an address slice. The input is not retained.
func CompactFromAddrs(addrs []uint64) *Compact {
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	// A delta of ±127 fits one varint byte and texture locality keeps
	// most deltas that small; reserving 2 bytes/address avoids regrowth
	// on all but adversarial streams without over-committing.
	buf := make([]byte, 0, 2*len(addrs))
	var scratch [binary.MaxVarintLen64]byte
	var prev uint64
	for i, a := range addrs {
		if i%blockLen == 0 {
			// Sync point: absolute address, fresh delta chain.
			k := binary.PutUvarint(scratch[:], a)
			buf = append(buf, scratch[:k]...)
		} else {
			k := binary.PutUvarint(scratch[:], zigzag(int64(a)-int64(prev)))
			buf = append(buf, scratch[:k]...)
		}
		prev = a
	}
	c := &Compact{data: buf, count: len(addrs)}
	if reg != nil {
		tr := reg.Sub("trace")
		tr.Timer("encode").ObserveSince(start)
		tr.Counter("raw_bytes").Add(8 * uint64(len(addrs)))
		tr.Counter("compact_bytes").Add(uint64(len(buf)))
	}
	return c
}

// Len returns the number of encoded addresses.
func (c *Compact) Len() int { return c.count }

// SizeBytes returns the encoded footprint in bytes.
func (c *Compact) SizeBytes() int { return len(c.data) }

// Ratio returns the compression ratio versus a materialized []uint64
// (8 bytes/address); zero for an empty trace.
func (c *Compact) Ratio() float64 {
	if len(c.data) == 0 {
		return 0
	}
	return float64(8*c.count) / float64(len(c.data))
}

// Cursor returns an iterator that decodes one sync block per Next call
// into a reused buffer; Compact implements cache.AddrStream, so the
// stream replay entry points consume it directly.
func (c *Compact) Cursor() cache.Cursor {
	return &cursor{data: c.data, remaining: c.count}
}

// cursor decodes a Compact stream block by block. Each cursor owns its
// buffer, so concurrent replays take independent cursors and never share
// decoded state.
type cursor struct {
	data      []byte
	remaining int
	buf       []uint64
}

func (cu *cursor) Next() []uint64 {
	if cu.remaining <= 0 {
		return nil
	}
	n := min(cu.remaining, blockLen)
	if cu.buf == nil {
		cu.buf = make([]uint64, blockLen)
	}
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	// The encoder wrote these bytes, so decoding cannot fail; a store
	// file's checksum is verified before a Compact is ever constructed
	// from disk. Varint truncation would surface as k <= 0.
	var prev uint64
	for i := 0; i < n; i++ {
		u, k := binary.Uvarint(cu.data)
		if k <= 0 {
			// Unreachable for encoder-produced bytes; stop cleanly rather
			// than loop on a malformed tail.
			cu.remaining = 0
			return cu.buf[:i:i]
		}
		cu.data = cu.data[k:]
		if i == 0 {
			prev = u // sync point: absolute
		} else {
			prev = uint64(int64(prev) + unzigzag(u))
		}
		cu.buf[i] = prev
	}
	cu.remaining -= n
	if reg != nil {
		reg.Sub("trace").Timer("decode").ObserveSince(start)
	}
	return cu.buf[:n:n]
}

// Decode materializes the full address slice as a *cache.Trace.
func (c *Compact) Decode() *cache.Trace {
	t := cache.NewTrace(c.count)
	cur := c.Cursor()
	for b := cur.Next(); b != nil; b = cur.Next() {
		t.AccessBulk(b)
	}
	return t
}

// validate walks the encoded bytes and checks they decode to exactly
// count addresses with no bytes left over. Store loads run it after the
// checksum, so a file that passes both replays exactly count addresses.
func (c *Compact) validate() error {
	data := c.data
	for i := 0; i < c.count; i++ {
		_, k := binary.Uvarint(data)
		if k <= 0 {
			return fmt.Errorf("trace: encoded stream truncated at address %d of %d", i, c.count)
		}
		data = data[k:]
	}
	if len(data) != 0 {
		return fmt.Errorf("trace: %d trailing bytes after %d addresses", len(data), c.count)
	}
	return nil
}

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
