package trace

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"texcache/internal/obs"
)

func testKey() Key {
	return Key{
		Scene:     "goblet",
		Scale:     4,
		Layout:    "{Kind:blocked8 BlockW:8}",
		Traversal: "{Order:horizontal}",
		Version:   CodecVersion,
	}
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreSaveLoad(t *testing.T) {
	s := openStore(t)
	k := testKey()
	if _, ok := s.Load(k); ok {
		t.Fatal("empty store reported a hit")
	}
	want := CompactFromAddrs(texturedAddrs(60000))
	if err := s.Save(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(k)
	if !ok {
		t.Fatal("saved entry missed")
	}
	if got.Len() != want.Len() {
		t.Fatalf("loaded %d addresses, want %d", got.Len(), want.Len())
	}
	ga, wa := got.Decode(), want.Decode()
	for i := range wa.Addrs {
		if ga.Addrs[i] != wa.Addrs[i] {
			t.Fatalf("address %d: %d != %d", i, ga.Addrs[i], wa.Addrs[i])
		}
	}
}

func TestStoreOpenFailure(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "store")); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}
}

func TestStoreKeyHashDistinguishesFields(t *testing.T) {
	base := testKey()
	seen := map[string]string{base.Hash(): "base"}
	variants := map[string]Key{
		"scene":     {Scene: "quake", Scale: 4, Layout: base.Layout, Traversal: base.Traversal, Version: base.Version},
		"scale":     {Scene: "goblet", Scale: 2, Layout: base.Layout, Traversal: base.Traversal, Version: base.Version},
		"layout":    {Scene: "goblet", Scale: 4, Layout: "{Kind:nonblocked}", Traversal: base.Traversal, Version: base.Version},
		"traversal": {Scene: "goblet", Scale: 4, Layout: base.Layout, Traversal: "{Order:vertical}", Version: base.Version},
		"options":   {Scene: "goblet", Scale: 4, Layout: base.Layout, Traversal: base.Traversal, Options: "x", Version: base.Version},
		"version":   {Scene: "goblet", Scale: 4, Layout: base.Layout, Traversal: base.Traversal, Version: "txc1"},
	}
	for field, k := range variants {
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("changing %s collides with %s", field, prev)
		}
		seen[h] = field
	}
}

// TestStoreStaleVersionMisses pins the regeneration path for format
// bumps: an entry saved under an older codec version is simply invisible
// to the current key, not an error.
func TestStoreStaleVersionMisses(t *testing.T) {
	s := openStore(t)
	old := testKey()
	old.Version = "txc1"
	if err := s.Save(old, CompactFromAddrs(texturedAddrs(100))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(testKey()); ok {
		t.Fatal("current-version key loaded a stale-version entry")
	}
	if _, ok := s.Load(old); !ok {
		t.Fatal("stale entry not loadable under its own key")
	}
}

// corrupt loads the entry file, applies f, and writes it back.
func corrupt(t *testing.T, s *Store, k Key, f func([]byte) []byte) {
	t.Helper()
	p := s.path(k)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, f(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCorruptionIsSilentMiss(t *testing.T) {
	k := testKey()
	cases := []struct {
		name string
		f    func([]byte) []byte
	}{
		{"truncated header", func(raw []byte) []byte { return raw[:10] }},
		{"truncated payload", func(raw []byte) []byte { return raw[:len(raw)-7] }},
		{"empty file", func(raw []byte) []byte { return nil }},
		{"bad magic", func(raw []byte) []byte { raw[0] = 'Z'; return raw }},
		{"flipped payload bit", func(raw []byte) []byte { raw[len(raw)-1] ^= 0x40; return raw }},
		{"huge key length", func(raw []byte) []byte { raw[8], raw[9], raw[10], raw[11] = 0xff, 0xff, 0xff, 0xff; return raw }},
		{"wrong key echo", func(raw []byte) []byte { raw[12+6] ^= 0x01; return raw }},
		{"trailing garbage", func(raw []byte) []byte { return append(raw, 0xAA) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openStore(t)
			if err := s.Save(k, CompactFromAddrs(texturedAddrs(40000))); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s, k, tc.f)
			if _, ok := s.Load(k); ok {
				t.Fatal("corrupted entry loaded")
			}
			// The damaged file must be gone so regeneration starts clean.
			if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
				t.Errorf("corrupted entry not deleted (stat err: %v)", err)
			}
			// And the slot is reusable.
			if err := s.Save(k, CompactFromAddrs(texturedAddrs(100))); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Load(k); !ok {
				t.Fatal("regenerated entry missed")
			}
		})
	}
}

// TestStoreConcurrentWriters races writers and readers on one key under
// the race detector: every load must observe either a miss or one
// writer's complete, checksum-valid entry.
func TestStoreConcurrentWriters(t *testing.T) {
	s := openStore(t)
	k := testKey()
	traces := make([]*Compact, 4)
	for i := range traces {
		traces[i] = CompactFromAddrs(texturedAddrs(10000 + i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := s.Save(k, traces[w]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if c, ok := s.Load(k); ok {
					if c.Len() < 10000 || c.Len() > 10003 {
						t.Errorf("load observed a torn entry: %d addresses", c.Len())
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	c, ok := s.Load(k)
	if !ok {
		t.Fatal("no entry after concurrent writes")
	}
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	// No temp files may survive the race.
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		for _, e := range ents {
			t.Errorf("leftover store file: %s", e.Name())
		}
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Attach(reg)
	defer obs.Detach()

	s := openStore(t)
	k := testKey()
	s.Load(k)
	c := CompactFromAddrs(texturedAddrs(20000))
	if err := s.Save(k, c); err != nil {
		t.Fatal(err)
	}
	s.Load(k)
	corrupt(t, s, k, func(raw []byte) []byte { raw[len(raw)-1] ^= 0x40; return raw })
	s.Load(k)

	st := reg.Sub("trace").Sub("store")
	if got := st.Counter("hits").Value(); got != 1 {
		t.Errorf("store hits = %d, want 1", got)
	}
	if got := st.Counter("misses").Value(); got != 2 {
		t.Errorf("store misses = %d, want 2", got)
	}
	if got := st.Counter("corrupt").Value(); got != 1 {
		t.Errorf("store corrupt = %d, want 1", got)
	}
	if got := st.Counter("saves").Value(); got != 1 {
		t.Errorf("store saves = %d, want 1", got)
	}
	if got := st.Counter("bytes_written").Value(); got != uint64(c.SizeBytes()) {
		t.Errorf("store bytes_written = %d, want %d", got, c.SizeBytes())
	}
}
