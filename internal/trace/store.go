package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"texcache/internal/obs"
)

// CodecVersion names the encoded trace format. It participates in every
// store key, so bumping it (when the encoding or the renderer's address
// generation changes) orphans old files rather than misreading them.
const CodecVersion = "txc2"

// Key identifies one rendered address stream for the store: everything
// the stream depends on, and nothing it doesn't (cache parameters never
// appear — that is the whole point of trace-driven simulation). Layout,
// Traversal and Options are caller-canonicalized strings; two keys are
// the same entry iff every field matches.
type Key struct {
	Scene     string
	Scale     int
	Layout    string
	Traversal string
	Options   string
	Version   string
}

// canonical renders the key as the exact byte string that is hashed for
// the filename and embedded in the file for verification.
func (k Key) canonical() string {
	return "scene=" + k.Scene +
		"\nscale=" + strconv.Itoa(k.Scale) +
		"\nlayout=" + k.Layout +
		"\ntraversal=" + k.Traversal +
		"\noptions=" + k.Options +
		"\nversion=" + k.Version + "\n"
}

// Hash returns the content address of the key: the hex SHA-256 of its
// canonical form, which is also the store filename stem.
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.canonical()))
	return hex.EncodeToString(sum[:])
}

// Store is a content-addressed directory of encoded traces. Entries are
// written atomically (temp file + rename) and verified on load (magic,
// key echo, payload checksum); any damaged or unreadable entry is
// treated as a miss and deleted, so corruption silently regenerates.
// Concurrent writers racing on one key are safe: each renames its own
// complete temp file, and either winner's bytes are a valid entry for
// the key.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the entry filename for a key.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.Hash()+".trace")
}

// storeMagic begins every store file: "TXSTORE" then format version 2
// (version 1 was the raw cache.Trace stream format, which carried no
// key echo or checksum).
var storeMagic = [8]byte{'T', 'X', 'S', 'T', 'O', 'R', 'E', 2}

// File layout after the magic, all little-endian:
//
//	uint32  key length     (echo of Key.canonical, guards hash collisions
//	string  canonical key   and lets tools identify entries)
//	uint64  address count
//	uint64  payload length in bytes
//	[32]byte SHA-256 of payload
//	bytes   payload (Compact sync blocks)

// maxKeyLen bounds the untrusted key-length field on load.
const maxKeyLen = 1 << 16

// Load returns the stored trace for key, or (nil, false) on any miss:
// absent, truncated, checksum mismatch, wrong key echo, or undecodable.
// Damaged entries are deleted so the regenerated trace can take the
// slot. Load never fails loudly — the caller always holds the fallback
// (render and Save).
func (s *Store) Load(k Key) (*Compact, bool) {
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	c, err := s.load(k)
	if reg != nil {
		st := reg.Sub("trace").Sub("store")
		st.Timer("load").ObserveSince(start)
		if err == nil {
			st.Counter("hits").Inc()
		} else {
			st.Counter("misses").Inc()
			if !os.IsNotExist(err) {
				st.Counter("corrupt").Inc()
			}
		}
	}
	if err != nil {
		if !os.IsNotExist(err) {
			// Anything present but unusable is removed so the next Save
			// starts clean. Removal failure is irrelevant: it stays a miss.
			os.Remove(s.path(k))
		}
		return nil, false
	}
	return c, true
}

// load reads and fully verifies one entry.
func (s *Store) load(k Key) (*Compact, error) {
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, err
	}
	if len(raw) < len(storeMagic)+4 {
		return nil, fmt.Errorf("trace: store entry shorter than header")
	}
	if !bytes.Equal(raw[:8], storeMagic[:]) {
		return nil, fmt.Errorf("trace: bad store magic %q", raw[:8])
	}
	raw = raw[8:]
	keyLen := binary.LittleEndian.Uint32(raw[:4])
	raw = raw[4:]
	if keyLen > maxKeyLen || uint64(len(raw)) < uint64(keyLen)+48 {
		return nil, fmt.Errorf("trace: store entry truncated in header")
	}
	if string(raw[:keyLen]) != k.canonical() {
		return nil, fmt.Errorf("trace: store entry key mismatch")
	}
	raw = raw[keyLen:]
	count := binary.LittleEndian.Uint64(raw[:8])
	payloadLen := binary.LittleEndian.Uint64(raw[8:16])
	var sum [32]byte
	copy(sum[:], raw[16:48])
	raw = raw[48:]
	if uint64(len(raw)) != payloadLen {
		return nil, fmt.Errorf("trace: store payload is %d bytes, header says %d", len(raw), payloadLen)
	}
	if sha256.Sum256(raw) != sum {
		return nil, fmt.Errorf("trace: store payload checksum mismatch")
	}
	c := &Compact{data: raw, count: int(count)}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Save writes the trace under key, atomically: the complete entry lands
// in a temp file in the store directory and is renamed into place, so a
// reader never observes a partial entry and racing writers each install
// a complete one.
func (s *Store) Save(k Key, c *Compact) error {
	reg := obs.Default()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	err := s.save(k, c)
	if reg != nil {
		st := reg.Sub("trace").Sub("store")
		st.Timer("save").ObserveSince(start)
		if err == nil {
			st.Counter("saves").Inc()
			st.Counter("bytes_written").Add(uint64(c.SizeBytes()))
		}
	}
	return err
}

func (s *Store) save(k Key, c *Compact) error {
	key := k.canonical()
	hdr := make([]byte, 0, 8+4+len(key)+48)
	hdr = append(hdr, storeMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(key)))
	hdr = append(hdr, key...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(c.count))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(c.data)))
	sum := sha256.Sum256(c.data)
	hdr = append(hdr, sum[:]...)

	f, err := os.CreateTemp(s.dir, k.Hash()+".tmp-*")
	if err != nil {
		return fmt.Errorf("trace: saving store entry: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(hdr); err == nil {
		_, err = f.Write(c.data)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(k))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: saving store entry: %w", err)
	}
	return nil
}
