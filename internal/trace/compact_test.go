package trace

import (
	"testing"

	"texcache/internal/cache"
	"texcache/internal/obs"
)

// texturedAddrs builds an address stream with the locality shape of a
// texture-mapped frame: runs of small steps inside a block, jumps at
// block and region boundaries, occasional far jumps between textures.
func texturedAddrs(n int) []uint64 {
	addrs := make([]uint64, n)
	addr := uint64(1 << 21)
	for i := range addrs {
		switch {
		case i%1009 == 0:
			addr = uint64((i*2654435761 + 12345) % (1 << 26))
		case i%31 == 0:
			addr += 8192
		case i%5 == 0:
			addr -= 4
		default:
			addr += 4
		}
		addrs[i] = addr
	}
	return addrs
}

func TestCompactRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, blockLen - 1, blockLen, blockLen + 1, 3*blockLen + 99} {
		addrs := texturedAddrs(n)
		c := CompactFromAddrs(addrs)
		if c.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, c.Len())
		}
		got := c.Decode()
		if got.Len() != n {
			t.Fatalf("n=%d: decoded %d addresses", n, got.Len())
		}
		for i := range addrs {
			if got.Addrs[i] != addrs[i] {
				t.Fatalf("n=%d: address %d decoded as %d, want %d", n, i, got.Addrs[i], addrs[i])
			}
		}
		if err := c.validate(); err != nil {
			t.Fatalf("n=%d: validate: %v", n, err)
		}
	}
}

func TestCompactFromTrace(t *testing.T) {
	tr := &cache.Trace{Addrs: texturedAddrs(5000)}
	c := CompactFromTrace(tr)
	got := c.Decode()
	for i := range tr.Addrs {
		if got.Addrs[i] != tr.Addrs[i] {
			t.Fatalf("address %d: %d != %d", i, got.Addrs[i], tr.Addrs[i])
		}
	}
}

func TestCompactExtremeDeltas(t *testing.T) {
	// Alternating extremes produce the largest possible zigzag deltas;
	// the encoding must survive full-width swings in both directions.
	addrs := []uint64{0, ^uint64(0), 0, 1 << 63, 1, ^uint64(0) - 1, 42}
	c := CompactFromAddrs(addrs)
	got := c.Decode()
	for i := range addrs {
		if got.Addrs[i] != addrs[i] {
			t.Fatalf("address %d: %d != %d", i, got.Addrs[i], addrs[i])
		}
	}
}

func TestCompactRatio(t *testing.T) {
	addrs := texturedAddrs(200000)
	c := CompactFromAddrs(addrs)
	if r := c.Ratio(); r < 3 {
		t.Errorf("compression ratio %.2f on texture-like stream, want >= 3", r)
	}
	if c.SizeBytes() != len(c.data) {
		t.Errorf("SizeBytes %d != data length %d", c.SizeBytes(), len(c.data))
	}
	var empty Compact
	if empty.Ratio() != 0 {
		t.Errorf("empty trace ratio = %v, want 0", empty.Ratio())
	}
}

// TestCompactReplayMatchesTrace is the bit-identity check at the unit
// level: replaying the compact form through the cache simulator yields
// exactly the statistics of the materialized trace.
func TestCompactReplayMatchesTrace(t *testing.T) {
	tr := &cache.Trace{Addrs: texturedAddrs(150000)}
	c := CompactFromTrace(tr)

	cfg := cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2}
	want := cache.NewClassifying(cfg)
	tr.Replay(want.Sink())
	got := cache.NewClassifying(cfg)
	cache.ReplayStream(c, got.Sink())
	if got.Stats() != want.Stats() {
		t.Errorf("compact replay %+v != materialized %+v", got.Stats(), want.Stats())
	}
}

func TestCompactCursorsIndependent(t *testing.T) {
	c := CompactFromAddrs(texturedAddrs(3 * blockLen))
	a, b := c.Cursor(), c.Cursor()
	ba := a.Next()
	bb := b.Next()
	if &ba[0] == &bb[0] {
		t.Fatal("two cursors share a decode buffer")
	}
	// Draining one cursor must not disturb the other.
	for blk := a.Next(); blk != nil; blk = a.Next() {
	}
	n := len(bb)
	for blk := b.Next(); blk != nil; blk = b.Next() {
		n += len(blk)
	}
	if n != c.Len() {
		t.Fatalf("second cursor yielded %d addresses, want %d", n, c.Len())
	}
}

func TestCompactMalformedTailStops(t *testing.T) {
	c := CompactFromAddrs(texturedAddrs(100))
	// Truncate mid-varint: the cursor must stop rather than spin, and
	// validate must reject the stream.
	c.data = c.data[:len(c.data)-1]
	cur := c.Cursor()
	total := 0
	for b := cur.Next(); b != nil; b = cur.Next() {
		total += len(b)
	}
	if total >= 100 {
		t.Fatalf("truncated stream still yielded %d addresses", total)
	}
	if err := c.validate(); err == nil {
		t.Fatal("validate accepted a truncated stream")
	}
	c.data = append(c.data, 0, 0, 0)
	if err := c.validate(); err == nil {
		t.Fatal("validate accepted trailing bytes")
	}
}

func TestCompactMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Attach(reg)
	defer obs.Detach()

	addrs := texturedAddrs(50000)
	c := CompactFromAddrs(addrs)
	tr := reg.Sub("trace")
	if got := tr.Counter("raw_bytes").Value(); got != 8*uint64(len(addrs)) {
		t.Errorf("trace.raw_bytes = %d, want %d", got, 8*len(addrs))
	}
	if got := tr.Counter("compact_bytes").Value(); got != uint64(c.SizeBytes()) {
		t.Errorf("trace.compact_bytes = %d, want %d", got, c.SizeBytes())
	}
	if tr.Timer("encode").Count() != 1 {
		t.Errorf("trace.encode count = %d, want 1", tr.Timer("encode").Count())
	}
	c.Decode()
	if tr.Timer("decode").Count() == 0 {
		t.Error("trace.decode never observed")
	}
}
