package dram

import "testing"

func TestTimingValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default timing invalid: %v", err)
	}
	bad := Default()
	bad.Banks = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	neg := Default()
	neg.TRP = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestFillCycles(t *testing.T) {
	tm := Default() // 8B bus, 3-3-3
	// 64B line: 8 transfer cycles. Page hit: 3 + 8 = 11. Miss: +3+3 = 17.
	if got := tm.FillCycles(64, true); got != 11 {
		t.Errorf("page-hit fill = %d, want 11", got)
	}
	if got := tm.FillCycles(64, false); got != 17 {
		t.Errorf("page-miss fill = %d, want 17", got)
	}
	// Longer bursts amortize setup: utilization of a 256B miss fill is
	// 32/(3+3+3+32) = 78%, versus 32B at 4/(13) = 31%.
	long := float64(tm.transferCycles(256)) / float64(tm.FillCycles(256, false))
	short := float64(tm.transferCycles(32)) / float64(tm.FillCycles(32, false))
	if long <= short {
		t.Errorf("long bursts should utilize better: %v vs %v", long, short)
	}
}

func TestNewSimRejectsBadInput(t *testing.T) {
	if _, err := NewSim(Default(), 0); err == nil {
		t.Error("zero line accepted")
	}
	bad := Default()
	bad.BusBytes = 0
	if _, err := NewSim(bad, 64); err == nil {
		t.Error("invalid timing accepted")
	}
}

func TestPageHitTracking(t *testing.T) {
	s, err := NewSim(Default(), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same row (bank 0, row 0): first access misses the closed page,
	// the rest hit.
	if s.Fill(0) {
		t.Error("first fill should miss the page")
	}
	if !s.Fill(64) || !s.Fill(128) {
		t.Error("same-row fills should hit the open page")
	}
	// Row 4 maps to bank 0 again (4 banks): conflicts with row 0.
	rowBytes := uint64(Default().RowBytes)
	if s.Fill(4 * rowBytes) {
		t.Error("bank-conflicting row should miss")
	}
	if s.Fill(0) {
		t.Error("original row was closed by the conflict")
	}
	// Row 1 is in bank 1: independent of bank 0's state.
	if s.Fill(rowBytes) {
		t.Error("fresh bank should start closed")
	}
	if !s.Fill(rowBytes + 64) {
		t.Error("open row in bank 1 should hit")
	}
	st := s.Stats()
	if st.Fills != 7 || st.PageHits != 3 {
		t.Errorf("stats = %+v, want 7 fills 3 hits", st)
	}
}

func TestBusUtilizationImprovesWithLineSize(t *testing.T) {
	// A dense sequential fill stream: bigger lines -> fewer setups per
	// byte -> higher utilization (the Section 3.2 claim).
	util := func(lineBytes int) float64 {
		s, err := NewSim(Default(), lineBytes)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < 1<<20; a += uint64(lineBytes) {
			s.Fill(a)
		}
		return s.Stats().BusUtilization()
	}
	u32, u128 := util(32), util(128)
	if u128 <= u32 {
		t.Errorf("128B lines should utilize the bus better: %v vs %v", u128, u32)
	}
	if u32 <= 0 || u128 > 1 {
		t.Errorf("utilization out of range: %v, %v", u32, u128)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	s, err := NewSim(Default(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if s.EffectiveBandwidth() != 0 {
		t.Error("empty sim should report zero bandwidth")
	}
	for a := uint64(0); a < 1<<18; a += 128 {
		s.Fill(a)
	}
	eff, raw := s.EffectiveBandwidth(), s.RawBandwidth()
	if raw != 800e6 {
		t.Errorf("raw bandwidth = %v, want 800e6", raw)
	}
	if eff <= 0 || eff >= raw {
		t.Errorf("effective bandwidth %v out of (0, raw)", eff)
	}
	// Sequential 128B fills on a 2KB page: 16 fills per page, 15 hits.
	if hr := s.Stats().PageHitRate(); hr < 0.9 {
		t.Errorf("sequential page hit rate = %v, want ~15/16", hr)
	}
	if got := s.Stats().AvgFillCycles(); got <= 0 {
		t.Errorf("avg fill cycles = %v", got)
	}
}

func TestRandomStreamPageHitRateLow(t *testing.T) {
	s, _ := NewSim(Default(), 128)
	// Strided fills that jump a page every time.
	stride := uint64(Default().RowBytes)*uint64(Default().Banks) + uint64(Default().RowBytes)
	a := uint64(0)
	for i := 0; i < 10000; i++ {
		s.Fill(a)
		a += stride
	}
	if hr := s.Stats().PageHitRate(); hr > 0.01 {
		t.Errorf("page-jumping stream hit rate = %v, want ~0", hr)
	}
}
